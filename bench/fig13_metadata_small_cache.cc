// Figure 13: DDFS metadata access overhead when the fingerprint cache is
// insufficient to hold all fingerprints (paper: 512 MB cache vs ~2 GB of
// fingerprint metadata; here scaled to 1/4 of the dataset's metadata).
#include "metadata_exp.h"

int main() {
  freqdedup::exp::runMetadataExperiment(
      "Figure 13", /*cacheBytes=*/900'000,
      "insufficient (paper: 512 MB)");
  return 0;
}
