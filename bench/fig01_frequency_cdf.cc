// Figure 1: frequency distributions of chunks in the FSL and VM datasets —
// frequency (log scale in the paper) against the CDF of unique chunks.
// Prints the frequency at fixed CDF quantiles plus the skew summary the
// paper's Section 1 quotes (share of chunks below frequency 100, count of
// chunks above 10^4 — scaled datasets hit proportionally smaller maxima).
#include <algorithm>
#include <cstdio>

#include "expcommon.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

void report(const Dataset& dataset) {
  const auto points = frequencyCdf(dataset);
  printf("\n[%s] %zu backups, %zu unique chunks\n", dataset.name.c_str(),
         dataset.backupCount(),
         datasetFrequencies(dataset).size());
  printRow({"cdf", "frequency"});
  for (const double q :
       {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 0.9999, 1.0}) {
    const auto it = std::lower_bound(
        points.begin(), points.end(), q,
        [](const FrequencyCdfPoint& p, double value) { return p.cdf < value; });
    const FrequencyCdfPoint& p = it == points.end() ? points.back() : *it;
    printRow({fmtDouble(q, 4), std::to_string(p.frequency)});
  }

  const FrequencyMap freq = datasetFrequencies(dataset);
  uint64_t below100 = 0, above1k = 0, maxFreq = 0;
  for (const auto& [fp, count] : freq) {
    below100 += count < 100;
    above1k += count > 1000;
    maxFreq = std::max(maxFreq, count);
  }
  printf("skew: %.3f%% of chunks occur <100 times; %llu chunks occur >1000 "
         "times; max frequency %llu\n",
         100.0 * static_cast<double>(below100) /
             static_cast<double>(freq.size()),
         static_cast<unsigned long long>(above1k),
         static_cast<unsigned long long>(maxFreq));
}

}  // namespace

int main() {
  printTitle("Figure 1", "frequency distributions of duplicate chunks");
  report(fslDataset());
  report(vmDataset());
  return 0;
}
