// Figure 6: ciphertext-only inference rates with the earliest backup fixed
// as auxiliary information and varying target backups.
#include "expcommon.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

void run(const Dataset& dataset, bool fixedSizeChunks) {
  const auto& aux = dataset.backups[0].records;
  printf("\n[%s] aux=%s\n", dataset.name.c_str(),
         dataset.backups[0].label.c_str());
  printRow({"target", "basic", "locality", "advanced"});
  for (size_t t = 1; t < dataset.backupCount(); ++t) {
    const EncryptedTrace target = encryptTarget(dataset, t);
    const double basic = basicRatePct(target, aux);
    const double locality =
        localityRatePct(target, aux, ciphertextOnlyConfig(false));
    const double advanced =
        fixedSizeChunks
            ? locality
            : localityRatePct(target, aux, ciphertextOnlyConfig(true));
    printRow({dataset.backups[t].label, fmtPct(basic), fmtPct(locality),
              fmtPct(advanced)});
  }
}

}  // namespace

int main() {
  printTitle("Figure 6",
             "ciphertext-only inference rate, varying target backups");
  run(fslDataset(), false);
  run(synDataset(), false);
  run(vmDataset(), true);
  return 0;
}
