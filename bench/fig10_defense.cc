// Figure 10: defense effectiveness — inference rate of the advanced
// locality-based attack in known-plaintext mode against (i) MinHash
// encryption alone and (ii) the combined MinHash + scrambling scheme,
// across leakage rates 0 .. 0.2 %. Segments: 512 KB / 1 MB / 2 MB.
#include "expcommon.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

void run(const Dataset& dataset, size_t auxIndex, size_t targetIndex,
         bool fixedSizeChunks) {
  const auto& aux = dataset.backups[auxIndex].records;
  printf("\n[%s] aux=%s target=%s\n", dataset.name.c_str(),
         dataset.backups[auxIndex].label.c_str(),
         dataset.backups[targetIndex].label.c_str());
  printRow({"leakage", "minhash", "combined"});

  for (const double leakPct : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    std::vector<std::string> row{fmtDouble(leakPct, 2) + "%"};
    for (const bool scramble : {false, true}) {
      DefenseConfig defense;
      defense.scramble = scramble;
      defense.fpBits = fpBitsFor(dataset);
      defense.segment.avgChunkBytes = avgChunkBytesFor(dataset);
      const EncryptedTrace target = minHashEncryptTrace(
          dataset.backups[targetIndex].records, defense);
      const AttackConfig config =
          leakPct == 0.0
              ? ciphertextOnlyConfig(!fixedSizeChunks)
              : knownPlaintextConfig(!fixedSizeChunks, target, leakPct, 31);
      row.push_back(fmtPct(localityRatePct(target, aux, config)));
    }
    printRow(row);
  }
}

}  // namespace

int main() {
  printTitle("Figure 10",
             "defense effectiveness: MinHash encryption and scrambling");
  run(fslDataset(), 2, 4, false);
  run(synDataset(), 0, 5, false);
  run(vmDataset(), 8, 12, true);
  return 0;
}
