// Figure 4: impact of the locality-based attack's parameters u, v, w
// (ciphertext-only mode). FSL: auxiliary = Mar 22, target = May 21;
// VM: auxiliary = week 12, target = week 13. The w sweep is scaled by the
// dataset-size ratio (paper sweeps 50k..200k on ~30M-unique-chunk backups).
#include "expcommon.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

struct Scenario {
  const Dataset* dataset;
  size_t auxIndex;
  size_t targetIndex;
  const char* label;
};

void sweep(const Scenario& s) {
  const EncryptedTrace target = encryptTarget(*s.dataset, s.targetIndex);
  const auto& aux = s.dataset->backups[s.auxIndex].records;

  printf("\n[%s] aux=%s target=%s\n", s.label,
         s.dataset->backups[s.auxIndex].label.c_str(),
         s.dataset->backups[s.targetIndex].label.c_str());

  printRow({"u", "inference"});
  for (const size_t u : {1u, 3u, 5u, 7u, 10u, 13u, 15u, 17u, 20u}) {
    AttackConfig config;
    config.u = u;
    config.v = 20;
    config.w = 1000;  // paper: 100k (scaled)
    printRow({std::to_string(u),
              fmtPct(localityRatePct(target, aux, config))});
  }

  printRow({"v", "inference"});
  for (const size_t v : {5u, 10u, 15u, 20u, 25u, 30u, 35u, 40u}) {
    AttackConfig config;
    config.u = 10;
    config.v = v;
    config.w = 1000;
    printRow({std::to_string(v),
              fmtPct(localityRatePct(target, aux, config))});
  }

  printRow({"w", "inference"});
  for (const size_t w : {500u, 1000u, 1500u, 2000u}) {  // paper: 50k..200k
    AttackConfig config;
    config.u = 10;
    config.v = 20;
    config.w = w;
    printRow({std::to_string(w),
              fmtPct(localityRatePct(target, aux, config))});
  }
}

}  // namespace

int main() {
  printTitle("Figure 4", "impact of u, v, w on the locality-based attack");
  sweep({&fslDataset(), 2, 4, "FSL"});
  sweep({&vmDataset(), 11, 12, "VM"});
  return 0;
}
