// Ablation (paper Section 8): random convergent encryption (RCE) randomizes
// ciphertext bodies but attaches deterministic tags for duplicate detection.
// An adversary simply counts tags instead of ciphertexts, so frequency
// analysis is unaffected. At trace level an RCE tag is the plaintext
// fingerprint itself; this bench shows the advanced attack achieving the
// same inference rate against RCE tag streams as against deterministic MLE.
#include "expcommon.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

/// RCE at trace level: the observable dedup identity of each chunk is its
/// deterministic tag. (Bodies are random and carry no dedup signal.)
EncryptedTrace rceTagTrace(const std::vector<ChunkRecord>& plain) {
  EncryptedTrace out;
  out.records = plain;  // tag stream == plaintext fingerprint stream
  out.truth.reserve(plain.size());
  for (const auto& r : plain) out.truth.emplace(r.fp, r.fp);
  return out;
}

}  // namespace

int main() {
  printTitle("Ablation: RCE tags",
             "deterministic dedup tags leak exactly like MLE ciphertexts");
  const Dataset& fsl = fslDataset();
  const size_t targetIndex = fsl.backupCount() - 1;
  printRow({"aux", "MLE adv", "RCE-tags adv"});
  for (size_t aux = 0; aux + 1 < fsl.backupCount(); ++aux) {
    const auto& auxRecords = fsl.backups[aux].records;
    const EncryptedTrace mleTarget = encryptTarget(fsl, targetIndex);
    const EncryptedTrace rceTarget =
        rceTagTrace(fsl.backups[targetIndex].records);
    printRow({fsl.backups[aux].label,
              fmtPct(localityRatePct(mleTarget, auxRecords,
                                     ciphertextOnlyConfig(true))),
              fmtPct(localityRatePct(rceTarget, auxRecords,
                                     ciphertextOnlyConfig(true)))});
  }
  printf("\nConclusion: randomizing bodies without randomizing dedup "
         "identities does not mitigate frequency analysis.\n");
  return 0;
}
