// Figure 11: storage efficiency — cumulative storage saving after each
// backup under original MLE (chunk-based deduplication) and the combined
// MinHash encryption + scrambling scheme, for all three datasets.
#include "expcommon.h"

#include "core/storage_saving.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

void run(const Dataset& dataset) {
  DefenseConfig defense;
  defense.scramble = true;
  defense.fpBits = fpBitsFor(dataset);
  defense.segment.avgChunkBytes = avgChunkBytesFor(dataset);

  printf("\n[%s]\n", dataset.name.c_str());
  printRow({"backup", "MLE", "combined", "MLE ratio", "comb ratio"});
  CumulativeDedup mle, combined;
  for (const auto& backup : dataset.backups) {
    const SavingPoint mlePoint = mle.addBackup(
        mleEncryptTrace(backup.records, fpBitsFor(dataset)).records,
        backup.label);
    const SavingPoint combinedPoint = combined.addBackup(
        minHashEncryptTrace(backup.records, defense).records, backup.label);
    printRow({backup.label, fmtDouble(mlePoint.savingPct, 1) + "%",
              fmtDouble(combinedPoint.savingPct, 1) + "%",
              fmtDouble(mlePoint.dedupRatio, 1) + "x",
              fmtDouble(combinedPoint.dedupRatio, 1) + "x"});
  }
}

}  // namespace

int main() {
  printTitle("Figure 11",
             "storage saving: MLE vs combined MinHash + scrambling");
  run(fslDataset());
  run(synDataset());
  run(vmDataset());
  return 0;
}
