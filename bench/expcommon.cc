#include "expcommon.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "chunking/cdc_chunker.h"
#include "datagen/fsl_gen.h"
#include "datagen/snapshot_gen.h"
#include "datagen/vm_gen.h"
#include "trace/trace_io.h"

namespace freqdedup::exp {

double benchScale() {
  static const double scale = [] {
    const char* env = std::getenv("FDD_BENCH_SCALE");
    if (env == nullptr) return kDefaultBenchScale;
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end == env || *end != '\0' || !(parsed >= 0.1) || parsed > 1000.0) {
      fprintf(stderr, "warning: invalid FDD_BENCH_SCALE '%s'; using %.1f\n",
              env, kDefaultBenchScale);
      return kDefaultBenchScale;
    }
    return parsed;
  }();
  return scale;
}

uint32_t attackThreads() {
  static const uint32_t threads = [] {
    const char* env = std::getenv("FDD_ATTACK_THREADS");
    if (env != nullptr) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1 && parsed <= 1024)
        return static_cast<uint32_t>(parsed);
      fprintf(stderr, "warning: invalid FDD_ATTACK_THREADS '%s'\n", env);
    }
    return std::max(1u, std::thread::hardware_concurrency());
  }();
  return threads;
}

namespace {

size_t scaleCount(size_t base) {
  return static_cast<size_t>(std::llround(base * benchScale()));
}

/// Parses "BYTES" with an optional K/M/G suffix; returns false on garbage.
bool parseBytes(const char* text, uint64_t& out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end == text) return false;
  uint64_t mult = 1;
  switch (*end) {
    case '\0':
      break;
    case 'k': case 'K': mult = 1ull << 10; ++end; break;
    case 'm': case 'M': mult = 1ull << 20; ++end; break;
    case 'g': case 'G': mult = 1ull << 30; ++end; break;
    default: return false;
  }
  if (*end != '\0') return false;
  out = parsed * mult;
  return true;
}

}  // namespace

uint64_t memBudgetBytes() {
  static const uint64_t budget = [] {
    const char* env = std::getenv("FDD_MEM_BUDGET");
    uint64_t parsed = 0;
    if (env == nullptr) return parsed;
    if (!parseBytes(env, parsed)) {
      fprintf(stderr, "warning: invalid FDD_MEM_BUDGET '%s'; unlimited\n",
              env);
      parsed = 0;
    }
    return parsed;
  }();
  return budget;
}

std::string spillDir() {
  const char* env = std::getenv("FDD_SPILL_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

size_t scaledW() { return scaleCount(2000); }
size_t scaledWKnownPlaintext() { return scaleCount(5000); }

namespace {

// Bump when generator parameters change so stale caches are not reused.
constexpr const char* kCacheVersion = "v4";

std::string cachePath(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "fdd_bench_cache";
  std::filesystem::create_directories(dir);
  char scaleTag[32];
  snprintf(scaleTag, sizeof(scaleTag), "s%.2f", benchScale());
  return (dir / (name + "-" + scaleTag + "-" + kCacheVersion + ".fdtr"))
      .string();
}

Dataset loadOrGenerate(const std::string& name,
                       Dataset (*generate)()) {
  const std::string path = cachePath(name);
  if (std::filesystem::exists(path)) {
    try {
      return loadDataset(path);
    } catch (const std::exception&) {
      // Corrupt/stale cache: fall through and regenerate.
    }
  }
  Dataset dataset = generate();
  try {
    saveDataset(dataset, path);
  } catch (const std::exception&) {
    // Caching is best-effort.
  }
  return dataset;
}

Dataset makeFsl() {
  FslGenParams params;
  params.filesPerUser =
      static_cast<int>(scaleCount(static_cast<size_t>(params.filesPerUser)));
  params.sharedTemplateFiles = scaleCount(params.sharedTemplateFiles);
  return generateFslDataset(params);
}

Dataset makeVm() {
  VmGenParams params;
  params.baseImageChunks = scaleCount(params.baseImageChunks);
  return generateVmDataset(params);
}

Dataset makeSyn() {
  const CdcChunker chunker;  // 2 KB / 8 KB / 16 KB
  CorpusParams corpus;
  corpus.fileCount =
      static_cast<int>(scaleCount(static_cast<size_t>(corpus.fileCount)));
  corpus.targetBytes = static_cast<uint64_t>(
      std::llround(static_cast<double>(corpus.targetBytes) * benchScale()));
  return generateSyntheticDataset(corpus, SnapshotGenParams{}, chunker);
}

}  // namespace

const Dataset& fslDataset() {
  static const Dataset dataset = loadOrGenerate("fsl", makeFsl);
  return dataset;
}

const Dataset& vmDataset() {
  static const Dataset dataset = loadOrGenerate("vm", makeVm);
  return dataset;
}

const Dataset& synDataset() {
  static const Dataset dataset = loadOrGenerate("syn", makeSyn);
  return dataset;
}

int fpBitsFor(const Dataset& dataset) {
  return dataset.name == "synthetic" ? kFullFpBits : kFslFpBits;
}

uint64_t avgChunkBytesFor(const Dataset& dataset) {
  return dataset.name == "vm-like" ? 4096 : 8192;
}

EncryptedTrace encryptTarget(const Dataset& dataset, size_t backupIndex) {
  return mleEncryptTrace(dataset.backups.at(backupIndex).records,
                         fpBitsFor(dataset), attackThreads());
}

double basicRatePct(const EncryptedTrace& target,
                    const std::vector<ChunkRecord>& aux) {
  return 100.0 *
         inferenceRate(basicAttack(target.records, aux, /*sizeAware=*/false,
                                   attackThreads()),
                       target);
}

double localityRatePct(const EncryptedTrace& target,
                       const std::vector<ChunkRecord>& aux,
                       const AttackConfig& config) {
  return 100.0 *
         inferenceRate(localityAttack(target.records, aux, config), target);
}

AttackConfig ciphertextOnlyConfig(bool sizeAware) {
  AttackConfig config;
  config.u = 1;
  config.v = 15;
  config.w = scaledW();
  config.sizeAware = sizeAware;
  config.threads = attackThreads();
  config.memBudgetBytes = memBudgetBytes();
  config.spillDir = spillDir();
  return config;
}

AttackConfig knownPlaintextConfig(bool sizeAware, const EncryptedTrace& target,
                                  double leakagePct, uint64_t seed) {
  AttackConfig config;
  config.mode = AttackMode::kKnownPlaintext;
  config.v = 15;
  config.w = scaledWKnownPlaintext();
  config.sizeAware = sizeAware;
  config.threads = attackThreads();
  config.memBudgetBytes = memBudgetBytes();
  config.spillDir = spillDir();
  Rng rng(seed);
  config.leakedPairs = sampleLeakedPairs(target, leakagePct / 100.0, rng);
  return config;
}

void printTitle(const std::string& figure, const std::string& caption) {
  printf("\n=== %s — %s ===\n", figure.c_str(), caption.c_str());
}

void printRow(const std::vector<std::string>& cells) {
  for (const auto& cell : cells) printf("%-14s", cell.c_str());
  printf("\n");
}

std::string fmtPct(double pct) {
  char buf[32];
  if (pct != 0.0 && pct < 0.01) {
    snprintf(buf, sizeof(buf), "%.4f%%", pct);
  } else {
    snprintf(buf, sizeof(buf), "%.2f%%", pct);
  }
  return buf;
}

std::string fmtDouble(double v, int precision) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

uint32_t threadsFlag(int argc, char** argv, uint32_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--threads") continue;
    if (i + 1 >= argc) {
      fprintf(stderr, "warning: --threads needs a value; using %u\n",
              fallback);
      return fallback;
    }
    char* end = nullptr;
    const long parsed = std::strtol(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0' || parsed < 1 ||
        parsed > 1'000'000) {
      fprintf(stderr, "warning: invalid --threads '%s'; using %u\n",
              argv[i + 1], fallback);
      return fallback;
    }
    return static_cast<uint32_t>(parsed);
  }
  return fallback;
}

std::string stringFlag(int argc, char** argv, const std::string& name,
                       const std::string& fallback) {
  const std::string flag = "--" + name;
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return fallback;
}

uint64_t bytesFlag(int argc, char** argv, const std::string& name,
                   uint64_t fallback) {
  const std::string flag = "--" + name;
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] != flag) continue;
    uint64_t parsed = 0;
    if (parseBytes(argv[i + 1], parsed)) return parsed;
    fprintf(stderr, "warning: invalid %s '%s'; using %llu\n", flag.c_str(),
            argv[i + 1], static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return fallback;
}

namespace {
uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Stopwatch::Stopwatch() : startNanos_(nowNanos()) {}

void Stopwatch::reset() { startNanos_ = nowNanos(); }

double Stopwatch::elapsedSeconds() const {
  return static_cast<double>(nowNanos() - startNanos_) * 1e-9;
}

double throughputMBps(uint64_t bytes, double seconds) {
  return seconds <= 0.0 ? 0.0 : static_cast<double>(bytes) / 1e6 / seconds;
}

}  // namespace freqdedup::exp
