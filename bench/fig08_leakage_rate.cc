// Figure 8: known-plaintext mode — inference rate against the leakage rate
// (0 .. 0.2 % of the target backup's unique ciphertext chunks leaked as
// ciphertext-plaintext pairs). FSL: aux = Mar 22 -> target May 21;
// synthetic: aux = snapshot 0 -> target snapshot 5; VM: aux = week 9 ->
// target week 13 (locality == advanced under fixed-size chunking).
#include "expcommon.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

void run(const Dataset& dataset, size_t auxIndex, size_t targetIndex,
         bool fixedSizeChunks) {
  const EncryptedTrace target = encryptTarget(dataset, targetIndex);
  const auto& aux = dataset.backups[auxIndex].records;
  printf("\n[%s] aux=%s target=%s\n", dataset.name.c_str(),
         dataset.backups[auxIndex].label.c_str(),
         dataset.backups[targetIndex].label.c_str());
  printRow({"leakage", "locality", "advanced"});
  for (const double leakPct : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    const double locality = localityRatePct(
        target, aux,
        leakPct == 0.0
            ? ciphertextOnlyConfig(false)
            : knownPlaintextConfig(false, target, leakPct, 99));
    const double advanced =
        fixedSizeChunks
            ? locality
            : localityRatePct(
                  target, aux,
                  leakPct == 0.0
                      ? ciphertextOnlyConfig(true)
                      : knownPlaintextConfig(true, target, leakPct, 99));
    printRow({fmtDouble(leakPct, 2) + "%", fmtPct(locality),
              fmtPct(advanced)});
  }
}

}  // namespace

int main() {
  printTitle("Figure 8", "known-plaintext inference rate vs leakage rate");
  run(fslDataset(), 2, 4, false);
  run(synDataset(), 0, 5, false);
  run(vmDataset(), 8, 12, true);
  return 0;
}
