// Shared setup for the figure-reproduction benches: standard datasets with
// fixed seeds (cached on disk so the suite does not regenerate them per
// binary), attack wrappers, and aligned table printing.
//
// Scaling note (see EXPERIMENTS.md): the seed datasets were sized to ~10^5
// unique chunks per backup. Now that the COUNT and neighbor-analysis phases
// run on the parallel analysis engine, the default bench scale is
// kDefaultBenchScale x that; override with the FDD_BENCH_SCALE environment
// variable (e.g. FDD_BENCH_SCALE=1 for the historical size, =20 to approach
// the paper's 10^7-unique-chunk backups on a big machine). The locality
// attack's w parameter scales by the same factor relative to the paper's
// parameters, as do the DDFS fingerprint-cache sizes. Attack index builds
// use FDD_ATTACK_THREADS workers (default: all hardware threads); results
// are bit-identical at every thread count.
#pragma once

#include <string>
#include <vector>

#include "core/attack_eval.h"
#include "core/attacks.h"
#include "core/defense.h"
#include "trace/backup_trace.h"

namespace freqdedup::exp {

/// Default multiplier on the seed dataset scale (~10^5 unique chunks).
inline constexpr double kDefaultBenchScale = 2.0;

/// Dataset scale factor: FDD_BENCH_SCALE or kDefaultBenchScale.
double benchScale();

/// Worker threads for attack index builds: FDD_ATTACK_THREADS or all
/// hardware threads.
uint32_t attackThreads();

/// Memory budget (bytes, K/M/G suffixes accepted) for attack index builds:
/// FDD_MEM_BUDGET or 0 (unlimited). Budget-exceeding builds spill to disk.
uint64_t memBudgetBytes();

/// Spill directory for budgeted attack index builds: FDD_SPILL_DIR or empty
/// (the system temp directory).
std::string spillDir();

/// The paper's default attack parameters (Section 5.3), with w scaled by the
/// dataset-size ratio (paper: 200k of ~30M unique chunks; here ~100k unique
/// at scale 1, times benchScale()).
size_t scaledW();
size_t scaledWKnownPlaintext();  // paper: 500k

/// FSL-like dataset (6 users, 5 monthly backups). Cached after first call.
const Dataset& fslDataset();

/// VM-like dataset (8 students, 13 weekly backups). Cached after first call.
const Dataset& vmDataset();

/// Synthetic content dataset (initial snapshot + 10 derived). Cached.
const Dataset& synDataset();

/// Fingerprint width used when encrypting a dataset's traces.
int fpBitsFor(const Dataset& dataset);

/// Average plaintext chunk size, for segmenting a dataset's streams.
uint64_t avgChunkBytesFor(const Dataset& dataset);

/// MLE-encrypts one backup of a dataset (deterministic baseline encryption).
EncryptedTrace encryptTarget(const Dataset& dataset, size_t backupIndex);

/// Runs the basic / locality / advanced attack and returns the inference
/// rate in percent.
double basicRatePct(const EncryptedTrace& target,
                    const std::vector<ChunkRecord>& aux);
double localityRatePct(const EncryptedTrace& target,
                       const std::vector<ChunkRecord>& aux,
                       const AttackConfig& config);

/// Standard ciphertext-only config (u=1, v=15, scaled w, parallel builds).
AttackConfig ciphertextOnlyConfig(bool sizeAware);

/// Standard known-plaintext config with freshly sampled leaked pairs.
AttackConfig knownPlaintextConfig(bool sizeAware, const EncryptedTrace& target,
                                  double leakagePct, uint64_t seed);

/// Table printing: fixed-width columns, pipe-separated.
void printTitle(const std::string& figure, const std::string& caption);
void printRow(const std::vector<std::string>& cells);
std::string fmtPct(double pct);
std::string fmtDouble(double v, int precision = 2);

// --- Throughput-bench helpers (shared by pipeline_throughput and any bench
// that measures wall-clock rates) ---

/// Parses `--threads N` from argv; returns `fallback` when absent. Ignores
/// unrelated arguments so benches can layer their own flags.
uint32_t threadsFlag(int argc, char** argv, uint32_t fallback = 1);

/// Parses `--<name> VALUE` from argv; returns `fallback` when absent.
std::string stringFlag(int argc, char** argv, const std::string& name,
                       const std::string& fallback);

/// Parses `--<name> BYTES` from argv (K/M/G suffixes accepted, e.g. "64M");
/// returns `fallback` when absent or invalid.
uint64_t bytesFlag(int argc, char** argv, const std::string& name,
                   uint64_t fallback);

/// Wall-clock stopwatch (steady clock).
class Stopwatch {
 public:
  Stopwatch();
  void reset();
  [[nodiscard]] double elapsedSeconds() const;

 private:
  uint64_t startNanos_;
};

/// Megabytes (1e6 bytes) per second; 0 when elapsed time is 0.
double throughputMBps(uint64_t bytes, double seconds);

}  // namespace freqdedup::exp
