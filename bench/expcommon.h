// Shared setup for the figure-reproduction benches: standard datasets with
// fixed seeds (cached on disk so the suite does not regenerate them per
// binary), attack wrappers, and aligned table printing.
//
// Scaling note (see EXPERIMENTS.md): datasets are scaled to ~10^5 unique
// chunks per backup so every figure regenerates in minutes. The locality
// attack's w parameter and the DDFS fingerprint-cache sizes are scaled by
// the same factor relative to the paper's 10^7-unique-chunk backups.
#pragma once

#include <string>
#include <vector>

#include "core/attack_eval.h"
#include "core/attacks.h"
#include "core/defense.h"
#include "trace/backup_trace.h"

namespace freqdedup::exp {

/// The paper's default attack parameters (Section 5.3), with w scaled by the
/// dataset-size ratio (paper: 200k of ~30M unique chunks; here ~100k unique).
inline constexpr size_t kScaledW = 2000;
inline constexpr size_t kScaledWKnownPlaintext = 5000;  // paper: 500k

/// FSL-like dataset (6 users, 5 monthly backups). Cached after first call.
const Dataset& fslDataset();

/// VM-like dataset (8 students, 13 weekly backups). Cached after first call.
const Dataset& vmDataset();

/// Synthetic content dataset (initial snapshot + 10 derived). Cached.
const Dataset& synDataset();

/// Fingerprint width used when encrypting a dataset's traces.
int fpBitsFor(const Dataset& dataset);

/// Average plaintext chunk size, for segmenting a dataset's streams.
uint64_t avgChunkBytesFor(const Dataset& dataset);

/// MLE-encrypts one backup of a dataset (deterministic baseline encryption).
EncryptedTrace encryptTarget(const Dataset& dataset, size_t backupIndex);

/// Runs the basic / locality / advanced attack and returns the inference
/// rate in percent.
double basicRatePct(const EncryptedTrace& target,
                    const std::vector<ChunkRecord>& aux);
double localityRatePct(const EncryptedTrace& target,
                       const std::vector<ChunkRecord>& aux,
                       const AttackConfig& config);

/// Standard ciphertext-only config (u=1, v=15, scaled w).
AttackConfig ciphertextOnlyConfig(bool sizeAware);

/// Standard known-plaintext config with freshly sampled leaked pairs.
AttackConfig knownPlaintextConfig(bool sizeAware, const EncryptedTrace& target,
                                  double leakagePct, uint64_t seed);

/// Table printing: fixed-width columns, pipe-separated.
void printTitle(const std::string& figure, const std::string& caption);
void printRow(const std::vector<std::string>& cells);
std::string fmtPct(double pct);
std::string fmtDouble(double v, int precision = 2);

// --- Throughput-bench helpers (shared by pipeline_throughput and any bench
// that measures wall-clock rates) ---

/// Parses `--threads N` from argv; returns `fallback` when absent. Ignores
/// unrelated arguments so benches can layer their own flags.
uint32_t threadsFlag(int argc, char** argv, uint32_t fallback = 1);

/// Wall-clock stopwatch (steady clock).
class Stopwatch {
 public:
  Stopwatch();
  void reset();
  [[nodiscard]] double elapsedSeconds() const;

 private:
  uint64_t startNanos_;
};

/// Megabytes (1e6 bytes) per second; 0 when elapsed time is 0.
double throughputMBps(uint64_t bytes, double seconds);

}  // namespace freqdedup::exp
