// Shared driver for the DDFS metadata-access experiments (Figures 13/14):
// feed the FSL dataset's backups — encrypted under MLE or under the combined
// MinHash + scrambling scheme — through the DDFS-like engine and report the
// per-backup metadata access (update/index/loading) in MB.
//
// Cache scaling: what matters is the cache size relative to the *unique*
// fingerprint metadata. The paper's 512 MB cache holds ~1/4 of its dataset's
// unique fingerprints ("insufficient") and the 4 GB cache holds all of them
// ("sufficient"). Our scaled FSL dataset has ~111k unique fingerprints
// (~3.6 MB at 32 B each), so the two regimes are ~0.9 MB and ~7 MB.
#pragma once

#include <cstdio>
#include <utility>

#include "expcommon.h"
#include "obs/metrics.h"
#include "storage/dedup_engine.h"

namespace freqdedup::exp {

inline void runMetadataExperiment(const char* figure, uint64_t cacheBytes,
                                  const char* regime) {
  const Dataset& fsl = fslDataset();
  uint64_t logicalInstances = 0;
  for (const auto& backup : fsl.backups)
    logicalInstances += backup.chunkCount();

  printTitle(figure, std::string("DDFS metadata access, fingerprint cache ") +
                         regime);
  printf("fingerprint cache: %.1f MB (%llu entries); total fingerprint "
         "instances: %llu (%.1f MB of metadata)\n",
         cacheBytes / 1e6,
         static_cast<unsigned long long>(cacheBytes / kFpMetadataBytes),
         static_cast<unsigned long long>(logicalInstances),
         logicalInstances * kFpMetadataBytes / 1e6);

  for (const bool combinedScheme : {false, true}) {
    DedupEngineParams params;
    params.containerBytes = 4 * 1024 * 1024;
    params.cacheBytes = cacheBytes;
    params.expectedFingerprints = logicalInstances;
    params.bloomFpr = 0.01;
    DedupEngine engine(params);

    DefenseConfig defense;
    defense.scramble = true;
    defense.segment.avgChunkBytes = avgChunkBytesFor(fsl);

    printf("\n[%s]\n", combinedScheme ? "combined" : "MLE");
    printRow({"backup", "update MB", "index MB", "loading MB", "total MB"});
    // Per-backup intervals come straight from the engine's metrics registry:
    // snapshot before/after and diff, instead of hand-copied stat structs.
    obs::MetricsSnapshot previous = engine.metricsSnapshot();
    for (const auto& backup : fsl.backups) {
      if (combinedScheme) {
        engine.ingestBackup(
            minHashEncryptTrace(backup.records, defense).records);
      } else {
        engine.ingestBackup(mleEncryptTrace(backup.records).records);
      }
      obs::MetricsSnapshot now = engine.metricsSnapshot();
      const MetadataAccessStats delta =
          MetadataAccessStats::fromSnapshot(now.delta(previous));
      previous = std::move(now);
      printRow({backup.label, fmtDouble(delta.updateBytes / 1e6, 2),
                fmtDouble(delta.indexBytes / 1e6, 2),
                fmtDouble(delta.loadingBytes / 1e6, 2),
                fmtDouble(delta.totalBytes() / 1e6, 2)});
    }
    engine.flushOpenContainer();
    printf("stored %llu unique chunks in %zu containers; dedup ratio %.1fx\n",
           static_cast<unsigned long long>(engine.stats().uniqueChunks),
           engine.containerCount(), engine.stats().dedupRatio());
  }
}

}  // namespace freqdedup::exp
