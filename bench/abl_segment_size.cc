// Ablation: the MinHash segment-size trade-off. Smaller segments mean more
// distinct minima (stronger frequency disturbance, better defense) but more
// duplicate chunks encrypted under different keys (worse storage saving).
// Sweeps the average segment size; min/max scale with it (paper uses
// 512 KB / 1 MB / 2 MB).
#include "expcommon.h"

#include "core/storage_saving.h"

using namespace freqdedup;
using namespace freqdedup::exp;

int main() {
  printTitle("Ablation: segment size",
             "defense strength vs storage cost across MinHash segment sizes");
  const Dataset& fsl = fslDataset();
  const size_t auxIndex = 2, targetIndex = 4;
  const auto& aux = fsl.backups[auxIndex].records;

  printRow({"avg segment", "advanced", "saving", "vs MLE"});

  // MLE baseline saving across all backups.
  CumulativeDedup mleDedup;
  SavingPoint mlePoint;
  for (const auto& backup : fsl.backups)
    mlePoint = mleDedup.addBackup(mleEncryptTrace(backup.records).records);

  for (const uint64_t avgKb : {256u, 512u, 1024u, 2048u, 4096u}) {
    DefenseConfig defense;
    defense.scramble = true;
    defense.segment.minBytes = avgKb * 1024 / 2;
    defense.segment.avgBytes = avgKb * 1024;
    defense.segment.maxBytes = avgKb * 1024 * 2;
    defense.segment.avgChunkBytes = avgChunkBytesFor(fsl);

    const EncryptedTrace target =
        minHashEncryptTrace(fsl.backups[targetIndex].records, defense);
    const double attack = localityRatePct(
        target, aux, knownPlaintextConfig(true, target, 0.2, 29));

    CumulativeDedup combinedDedup;
    SavingPoint combinedPoint;
    for (const auto& backup : fsl.backups) {
      combinedPoint = combinedDedup.addBackup(
          minHashEncryptTrace(backup.records, defense).records);
    }
    printRow({std::to_string(avgKb) + " KB", fmtPct(attack),
              fmtDouble(combinedPoint.savingPct, 1) + "%",
              "-" + fmtDouble(mlePoint.savingPct - combinedPoint.savingPct,
                              1) +
                  " pts"});
  }
  return 0;
}
