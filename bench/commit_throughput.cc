// Durable-commit throughput of the group-commit WAL against the per-op
// fdatasync baseline, at several concurrent-committer counts.
//
//   commit_throughput [--commits N] [--json PATH]
//
// Each committer repeatedly appends one index-sized record to a fresh LogKv
// and blocks until it is durable (put + sync — exactly what a backup commit
// does to the metadata path). Modes:
//   per-op  every append is written and fdatasynced individually (the
//           pre-WAL behaviour a durable store would have had)
//   group   appends join the current slot; one leader writes and fdatasyncs
//           the whole group (WiredTiger-style group commit)
// at committers {1, 8, 64}, with the TOTAL commit count fixed (default
// 2048) so every cell does the same work. Reports commits/s, the actual
// fdatasync count, and the mean records per sync group; writes a
// machine-readable summary to --json (default BENCH_wal.json). Every cell
// is verified: the store must hold every committed key afterwards.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "expcommon.h"
#include "kvstore/logkv.h"
#include "obs/metrics.h"

namespace freqdedup {
namespace {

constexpr uint32_t kCommitterCounts[] = {1, 8, 64};

struct CellResult {
  uint32_t committers = 0;
  bool group = false;
  uint64_t commits = 0;
  double seconds = 0;
  uint64_t fsyncs = 0;
  double meanGroupRecords = 0;
};

CellResult runCell(const std::string& dir, uint32_t committers, bool group,
                   uint64_t totalCommits) {
  const std::string path = dir + "/commit_bench.log";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".ckpt");

  LogKvOptions options;
  options.checkpointBytes = UINT64_MAX;  // measure the log, not checkpoints
  options.wal.syncMode = group ? WalOptions::SyncMode::kGroup
                               : WalOptions::SyncMode::kPerOp;
  LogKv kv(path, options);
  obs::MetricsRegistry registry;
  kv.bindMetrics(registry);

  const uint64_t perThread = totalCommits / committers;
  // A ~64-byte value: the size class of a chunk-index or refcount record.
  const ByteVec value(64, 0xAB);

  std::vector<std::thread> threads;
  threads.reserve(committers);
  exp::Stopwatch watch;
  for (uint32_t t = 0; t < committers; ++t) {
    threads.emplace_back([&kv, &value, t, perThread] {
      for (uint64_t i = 0; i < perThread; ++i) {
        const ByteVec key =
            toBytes("c" + std::to_string(t) + "/" + std::to_string(i));
        kv.put(key, value);
        // Block until this commit is durable. In group mode, concurrent
        // committers parked here share one leader fdatasync.
        kv.sync(kv.appendedLsn());
      }
    });
  }
  for (auto& th : threads) th.join();
  const double seconds = watch.elapsedSeconds();

  CellResult r;
  r.committers = committers;
  r.group = group;
  r.commits = perThread * committers;
  r.seconds = seconds;
  const obs::MetricsSnapshot snap = registry.snapshot();
  r.fsyncs = snap.counter("wal.syncs");
  r.meanGroupRecords = snap.histogram("wal.group_records").mean();

  // Verify before reporting: every committed key must be present.
  if (kv.size() != r.commits) {
    fprintf(stderr, "ERROR: store holds %zu keys, expected %llu\n", kv.size(),
            static_cast<unsigned long long>(r.commits));
    exit(1);
  }
  return r;
}

void writeJson(const std::string& path, uint64_t totalCommits,
               const std::vector<CellResult>& cells) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    exit(1);
  }
  fprintf(f, "{\n");
  fprintf(f, "  \"total_commits\": %llu,\n",
          static_cast<unsigned long long>(totalCommits));
  fprintf(f, "  \"hardware_threads\": %u,\n",
          std::thread::hardware_concurrency());
  fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i];
    fprintf(f,
            "    {\"committers\": %u, \"mode\": \"%s\", \"commits\": %llu, "
            "\"seconds\": %.4f, \"commits_per_sec\": %.1f, \"fsyncs\": %llu, "
            "\"mean_group_records\": %.2f}%s\n",
            r.committers, r.group ? "group" : "per_op",
            static_cast<unsigned long long>(r.commits), r.seconds,
            r.seconds > 0 ? static_cast<double>(r.commits) / r.seconds : 0.0,
            static_cast<unsigned long long>(r.fsyncs), r.meanGroupRecords,
            i + 1 < cells.size() ? "," : "");
  }
  fprintf(f, "  ],\n");
  // Headline ratio: group vs per-op commits/s at the highest contention.
  double perOp = 0;
  double grouped = 0;
  for (const CellResult& r : cells) {
    if (r.committers != kCommitterCounts[std::size(kCommitterCounts) - 1])
      continue;
    const double rate =
        r.seconds > 0 ? static_cast<double>(r.commits) / r.seconds : 0.0;
    (r.group ? grouped : perOp) = rate;
  }
  fprintf(f, "  \"group_vs_per_op_at_max_committers\": %.2f,\n",
          perOp > 0 ? grouped / perOp : 0.0);
  fprintf(f, "  \"obs_enabled\": %s\n", obs::kObsEnabled ? "true" : "false");
  fprintf(f, "}\n");
  fclose(f);
  printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace freqdedup

int main(int argc, char** argv) {
  using namespace freqdedup;
  const uint64_t totalCommits = static_cast<uint64_t>(
      std::atoll(exp::stringFlag(argc, argv, "commits", "2048").c_str()));
  const std::string jsonPath =
      exp::stringFlag(argc, argv, "json", "BENCH_wal.json");
  if (totalCommits == 0) {
    fprintf(stderr, "--commits must be >= 1\n");
    return 1;
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "fdd_commit_bench").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  exp::printTitle("commit_throughput",
                  "durable metadata commits: group-commit WAL vs per-op "
                  "fdatasync, " + std::to_string(totalCommits) +
                  " total commits per cell");
  exp::printRow({"committers", "mode", "commits/s", "fsyncs", "recs/group"});

  std::vector<CellResult> cells;
  for (const uint32_t committers : kCommitterCounts) {
    for (const bool group : {false, true}) {
      const CellResult r = runCell(dir, committers, group, totalCommits);
      cells.push_back(r);
      exp::printRow(
          {std::to_string(r.committers), r.group ? "group" : "per-op",
           exp::fmtDouble(
               r.seconds > 0
                   ? static_cast<double>(r.commits) / r.seconds
                   : 0.0,
               1),
           std::to_string(r.fsyncs), exp::fmtDouble(r.meanGroupRecords, 2)});
    }
  }

  writeJson(jsonPath, totalCommits, cells);
  std::filesystem::remove_all(dir);
  return 0;
}
