// Figure 9: known-plaintext mode with a fixed 0.05 % leakage rate and
// varying auxiliary backups. Targets are fixed as in Figure 8 (FSL May 21,
// synthetic snapshot 5, VM week 13).
#include "expcommon.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

void run(const Dataset& dataset, size_t targetIndex, size_t maxAux,
         bool fixedSizeChunks) {
  const EncryptedTrace target = encryptTarget(dataset, targetIndex);
  printf("\n[%s] target=%s leakage=0.05%%\n", dataset.name.c_str(),
         dataset.backups[targetIndex].label.c_str());
  printRow({"aux", "locality", "advanced"});
  for (size_t aux = 0; aux < maxAux; ++aux) {
    const auto& auxRecords = dataset.backups[aux].records;
    const double locality = localityRatePct(
        target, auxRecords, knownPlaintextConfig(false, target, 0.05, 7));
    const double advanced =
        fixedSizeChunks
            ? locality
            : localityRatePct(target, auxRecords,
                              knownPlaintextConfig(true, target, 0.05, 7));
    printRow({dataset.backups[aux].label, fmtPct(locality),
              fmtPct(advanced)});
  }
}

}  // namespace

int main() {
  printTitle("Figure 9",
             "known-plaintext inference rate, varying auxiliary backups");
  run(fslDataset(), 4, 4, false);
  run(synDataset(), 5, 5, false);
  run(vmDataset(), 12, 12, true);
  return 0;
}
