// Throughput of the attack-analysis engine (src/analysis/) on the scaled
// FSL dataset: chunks/sec for the COUNT phase, the CSR neighbor-index build,
// and the end-to-end ciphertext-only locality attack, at 1 and N threads.
//
//   attack_throughput [--threads N] [--json PATH]
//
// N defaults to 8 (the figure the acceptance tracking uses); --json writes a
// machine-readable summary (default BENCH_attack.json in the working
// directory). Interning is done once up front — the phases measure the
// engine's parallel index builds and the attack itself, which is what the
// legacy hash-map core serialized.
//
// Every multi-threaded attack result is checked to be bit-identical to the
// 1-thread engine's result before the numbers are reported; a divergence
// aborts the bench.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/attack_engine.h"
#include "expcommon.h"

namespace freqdedup {
namespace {

using analysis::AttackEngine;
using analysis::ChunkStreamIndex;
using analysis::FrequencyIndex;
using analysis::NeighborIndex;

struct PhaseResult {
  double serialCps = 0;    // chunks/sec at 1 thread
  double parallelCps = 0;  // chunks/sec at N threads

  [[nodiscard]] double speedup() const {
    return serialCps > 0 ? parallelCps / serialCps : 0.0;
  }
};

/// Best-of-`reps` seconds for one timed phase.
template <typename Fn>
double bestSeconds(int reps, Fn&& fn) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    exp::Stopwatch watch;
    fn();
    const double elapsed = watch.elapsedSeconds();
    if (best < 0 || elapsed < best) best = elapsed;
  }
  return best;
}

double countPhaseSeconds(const ChunkStreamIndex& cipher,
                         const ChunkStreamIndex& plain, uint32_t threads) {
  // Force the parallel slice-and-reduce plan (threshold 0) so the phase
  // measures the parallel implementation itself; the engine's own cost
  // model would fall back to the serial pass below ~2M records and the
  // multi-thread column would just re-measure the serial plan.
  return bestSeconds(3, [&] {
    FrequencyIndex::build(cipher, threads, /*parallelThreshold=*/0);
    FrequencyIndex::build(plain, threads, /*parallelThreshold=*/0);
  });
}

double neighborPhaseSeconds(const ChunkStreamIndex& cipher,
                            const ChunkStreamIndex& plain,
                            uint32_t threads) {
  using Side = NeighborIndex::Side;
  return bestSeconds(3, [&] {
    NeighborIndex::build(cipher, Side::kLeft, threads);
    NeighborIndex::build(cipher, Side::kRight, threads);
    NeighborIndex::build(plain, Side::kLeft, threads);
    NeighborIndex::build(plain, Side::kRight, threads);
  });
}

AttackResult attackPhase(const ChunkStreamIndex& cipher,
                         const ChunkStreamIndex& plain, uint32_t threads,
                         double& seconds) {
  AttackConfig config = exp::ciphertextOnlyConfig(/*sizeAware=*/false);
  config.threads = threads;
  // Engine construction copies the stream indexes; keep that setup cost
  // outside the timed region — the attack call itself (index builds + walk)
  // is the phase being measured.
  AttackEngine engine(cipher, plain, {threads});
  exp::Stopwatch watch;
  AttackResult result = engine.localityAttack(config);
  seconds = watch.elapsedSeconds();
  return result;
}

void printPhase(const char* name, const PhaseResult& r) {
  exp::printRow({name, exp::fmtDouble(r.serialCps / 1e6, 2) + " Mc/s",
                 exp::fmtDouble(r.parallelCps / 1e6, 2) + " Mc/s",
                 exp::fmtDouble(r.speedup()) + "x"});
}

void writeJson(const std::string& path, const Dataset& dataset,
               size_t records, size_t unique, uint32_t threads,
               const PhaseResult& count, const PhaseResult& neighbor,
               const PhaseResult& attack, bool identical) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    exit(1);
  }
  fprintf(f, "{\n");
  fprintf(f, "  \"dataset\": \"%s\",\n", dataset.name.c_str());
  fprintf(f, "  \"bench_scale\": %.2f,\n", exp::benchScale());
  fprintf(f, "  \"stream_records\": %zu,\n", records);
  fprintf(f, "  \"unique_chunks\": %zu,\n", unique);
  fprintf(f, "  \"parallel_threads\": %u,\n", threads);
  fprintf(f, "  \"results_identical_across_threads\": %s,\n",
          identical ? "true" : "false");
  const auto phase = [&](const char* name, const PhaseResult& r,
                         const char* trailer) {
    fprintf(f,
            "  \"%s\": {\"threads1_chunks_per_sec\": %.0f, "
            "\"threads%u_chunks_per_sec\": %.0f, \"speedup\": %.2f}%s\n",
            name, r.serialCps, threads, r.parallelCps, r.speedup(), trailer);
  };
  phase("count", count, ",");
  phase("neighbor_build", neighbor, ",");
  phase("locality_attack", attack, "");
  fprintf(f, "}\n");
  fclose(f);
  printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace freqdedup

int main(int argc, char** argv) {
  using namespace freqdedup;
  const uint32_t threads = exp::threadsFlag(argc, argv, 8);
  const std::string jsonPath =
      exp::stringFlag(argc, argv, "json", "BENCH_attack.json");

  const Dataset& fsl = exp::fslDataset();
  const size_t targetIndex = fsl.backupCount() - 1;
  const EncryptedTrace target = exp::encryptTarget(fsl, targetIndex);
  const auto& aux = fsl.backups[targetIndex - 1].records;

  const ChunkStreamIndex cipher = ChunkStreamIndex::build(target.records);
  const ChunkStreamIndex plain = ChunkStreamIndex::build(aux);
  const size_t records = cipher.recordCount() + plain.recordCount();
  const size_t unique = cipher.uniqueCount() + plain.uniqueCount();

  exp::printTitle("attack_throughput",
                  "analysis-engine phases on " + fsl.name + " (scale " +
                      exp::fmtDouble(exp::benchScale(), 1) + ", target " +
                      fsl.backups[targetIndex].label + ", " +
                      std::to_string(records) + " records, " +
                      std::to_string(unique) + " unique)");
  exp::printRow({"phase", "1 thread", std::to_string(threads) + " threads",
                 "speedup"});

  const auto cps = [&](double seconds) {
    return seconds > 0 ? static_cast<double>(records) / seconds : 0.0;
  };

  PhaseResult count;
  count.serialCps = cps(countPhaseSeconds(cipher, plain, 1));
  count.parallelCps = cps(countPhaseSeconds(cipher, plain, threads));
  printPhase("count", count);

  PhaseResult neighbor;
  neighbor.serialCps = cps(neighborPhaseSeconds(cipher, plain, 1));
  neighbor.parallelCps = cps(neighborPhaseSeconds(cipher, plain, threads));
  printPhase("neighbor-build", neighbor);

  PhaseResult attack;
  double seconds = 0;
  const AttackResult serialResult = attackPhase(cipher, plain, 1, seconds);
  attack.serialCps = cps(seconds);
  const AttackResult parallelResult =
      attackPhase(cipher, plain, threads, seconds);
  attack.parallelCps = cps(seconds);
  printPhase("locality-attack", attack);

  const bool identical =
      serialResult.inferred == parallelResult.inferred &&
      serialResult.processedPairs == parallelResult.processedPairs;
  printf("\ninference rate %.2f%% (%llu pairs processed); "
         "results identical across thread counts: %s\n",
         100.0 * inferenceRate(serialResult, target),
         static_cast<unsigned long long>(serialResult.processedPairs),
         identical ? "yes" : "NO");
  if (!identical) {
    fprintf(stderr, "ERROR: parallel attack diverged from serial engine\n");
    return 1;
  }

  writeJson(jsonPath, fsl, records, unique, threads, count, neighbor, attack,
            identical);
  return 0;
}
