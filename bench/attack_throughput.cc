// Throughput of the attack-analysis engine (src/analysis/) on the scaled
// FSL dataset: chunks/sec for the COUNT phase, the CSR neighbor-index build,
// and the end-to-end ciphertext-only locality attack, at 1 and N threads,
// plus the same neighbor build + attack under a memory budget (the
// external-memory spill pipeline).
//
//   attack_throughput [--threads N] [--json PATH] [--mem-budget BYTES]
//                     [--spill-dir DIR]
//
// N defaults to 8 (the figure the acceptance tracking uses); --json writes a
// machine-readable summary (default BENCH_attack.json in the working
// directory). --mem-budget (default 4M, K/M/G suffixes accepted) bounds the
// budgeted phases' intermediate memory; at the default bench scale it is
// small enough to force the spill pipeline. Interning is done once up front
// — the phases measure the engine's index builds and the attack itself,
// which is what the legacy hash-map core serialized.
//
// Timing: every phase is warmed up once, then repeated until the samples
// total >= 200 ms (at least 3 samples); the reported time is the median.
// The previous best-of-3 single-shot scheme bottomed out below the clock
// resolution on sub-millisecond phases and reported nonsense rates.
//
// Every multi-threaded and every budgeted attack result is checked to be
// bit-identical to the 1-thread unbudgeted engine's result before the
// numbers are reported; a divergence aborts the bench.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/attack_engine.h"
#include "expcommon.h"

namespace freqdedup {
namespace {

using analysis::AnalysisBudget;
using analysis::AnalysisBuildStats;
using analysis::AttackEngine;
using analysis::ChunkStreamIndex;
using analysis::ComputePlan;
using analysis::FrequencyBuildOptions;
using analysis::FrequencyIndex;
using analysis::NeighborBuildOptions;
using analysis::NeighborIndex;

constexpr double kMinTotalSeconds = 0.2;
constexpr size_t kMinSamples = 3;

struct PhaseResult {
  double serialCps = 0;    // chunks/sec at 1 thread
  double parallelCps = 0;  // chunks/sec at N threads
  const char* plan = "serial";  // plan the N-thread measurement executed

  [[nodiscard]] double speedup() const {
    return serialCps > 0 ? parallelCps / serialCps : 0.0;
  }
};

/// Median seconds of one timed phase: one warm-up call, then samples until
/// they total kMinTotalSeconds (>= kMinSamples), median reported.
template <typename Fn>
double medianSeconds(Fn&& timedOnce) {
  timedOnce();  // warm-up: page in data, populate caches
  std::vector<double> samples;
  double total = 0;
  while (samples.size() < kMinSamples || total < kMinTotalSeconds) {
    const double s = timedOnce();
    samples.push_back(s);
    total += s;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

double countPhaseSeconds(const ChunkStreamIndex& cipher,
                         const ChunkStreamIndex& plain,
                         const FrequencyBuildOptions& options) {
  return medianSeconds([&] {
    exp::Stopwatch watch;
    FrequencyIndex::build(cipher, options);
    FrequencyIndex::build(plain, options);
    return watch.elapsedSeconds();
  });
}

double neighborPhaseSeconds(const ChunkStreamIndex& cipher,
                            const ChunkStreamIndex& plain,
                            const NeighborBuildOptions& options) {
  using Side = NeighborIndex::Side;
  return medianSeconds([&] {
    exp::Stopwatch watch;
    NeighborIndex::build(cipher, Side::kLeft, options);
    NeighborIndex::build(cipher, Side::kRight, options);
    NeighborIndex::build(plain, Side::kLeft, options);
    NeighborIndex::build(plain, Side::kRight, options);
    return watch.elapsedSeconds();
  });
}

/// One locality attack on a fresh engine (the engine caches indexes, so
/// reusing one would only measure the walk). Engine construction copies the
/// stream indexes; that setup stays outside the timed region.
AttackResult attackOnce(const ChunkStreamIndex& cipher,
                        const ChunkStreamIndex& plain,
                        const analysis::AnalysisOptions& options,
                        const AttackConfig& config, double& seconds) {
  AttackEngine engine(cipher, plain, options);
  exp::Stopwatch watch;
  AttackResult result = engine.localityAttack(config);
  seconds = watch.elapsedSeconds();
  return result;
}

double attackPhaseSeconds(const ChunkStreamIndex& cipher,
                          const ChunkStreamIndex& plain,
                          const analysis::AnalysisOptions& options,
                          const AttackConfig& config) {
  return medianSeconds([&] {
    double seconds = 0;
    attackOnce(cipher, plain, options, config, seconds);
    return seconds;
  });
}

void printPhase(const char* name, const PhaseResult& r) {
  exp::printRow({name, exp::fmtDouble(r.serialCps / 1e6, 2) + " Mc/s",
                 exp::fmtDouble(r.parallelCps / 1e6, 2) + " Mc/s",
                 exp::fmtDouble(r.speedup()) + "x", r.plan});
}

void writeJson(const std::string& path, const Dataset& dataset,
               size_t records, size_t unique, uint32_t threads,
               uint64_t memBudget, const PhaseResult& count,
               const PhaseResult& neighbor, const PhaseResult& attack,
               double budgetedCps, const AnalysisBuildStats& budgetedStats,
               bool identicalThreads, bool identicalBudgets) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    exit(1);
  }
  fprintf(f, "{\n");
  fprintf(f, "  \"dataset\": \"%s\",\n", dataset.name.c_str());
  fprintf(f, "  \"bench_scale\": %.2f,\n", exp::benchScale());
  fprintf(f, "  \"stream_records\": %zu,\n", records);
  fprintf(f, "  \"unique_chunks\": %zu,\n", unique);
  fprintf(f, "  \"parallel_threads\": %u,\n", threads);
  fprintf(f, "  \"mem_budget_bytes\": %llu,\n",
          static_cast<unsigned long long>(memBudget));
  fprintf(f, "  \"results_identical_across_threads\": %s,\n",
          identicalThreads ? "true" : "false");
  fprintf(f, "  \"results_identical_across_budgets\": %s,\n",
          identicalBudgets ? "true" : "false");
  const auto phase = [&](const char* name, const PhaseResult& r) {
    fprintf(f,
            "  \"%s\": {\"threads1_chunks_per_sec\": %.0f, "
            "\"threads%u_chunks_per_sec\": %.0f, \"speedup\": %.2f, "
            "\"plan\": \"%s\"},\n",
            name, r.serialCps, threads, r.parallelCps, r.speedup(), r.plan);
  };
  phase("count", count);
  phase("neighbor_build", neighbor);
  phase("locality_attack", attack);
  fprintf(f,
          "  \"budgeted_neighbor_build\": {\"chunks_per_sec\": %.0f, "
          "\"plan\": \"%s\", \"shards\": %llu, \"spill_bytes\": %llu, "
          "\"spill_files\": %llu, \"peak_tracked_bytes\": %llu}\n",
          budgetedCps, budgetedStats.plan,
          static_cast<unsigned long long>(budgetedStats.shards),
          static_cast<unsigned long long>(budgetedStats.spillBytes),
          static_cast<unsigned long long>(budgetedStats.spillFiles),
          static_cast<unsigned long long>(budgetedStats.peakTrackedBytes));
  fprintf(f, "}\n");
  fclose(f);
  printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace freqdedup

int main(int argc, char** argv) {
  using namespace freqdedup;
  const uint32_t threads = exp::threadsFlag(argc, argv, 8);
  const std::string jsonPath =
      exp::stringFlag(argc, argv, "json", "BENCH_attack.json");
  const uint64_t memBudget =
      exp::bytesFlag(argc, argv, "mem-budget", 4ull << 20);
  const std::string spillDir = exp::stringFlag(argc, argv, "spill-dir", "");

  const Dataset& fsl = exp::fslDataset();
  const size_t targetIndex = fsl.backupCount() - 1;
  const EncryptedTrace target = exp::encryptTarget(fsl, targetIndex);
  const auto& aux = fsl.backups[targetIndex - 1].records;

  const ChunkStreamIndex cipher = ChunkStreamIndex::build(target.records);
  const ChunkStreamIndex plain = ChunkStreamIndex::build(aux);
  const size_t records = cipher.recordCount() + plain.recordCount();
  const size_t unique = cipher.uniqueCount() + plain.uniqueCount();
  const AnalysisBudget budget{memBudget, spillDir};

  exp::printTitle("attack_throughput",
                  "analysis-engine phases on " + fsl.name + " (scale " +
                      exp::fmtDouble(exp::benchScale(), 1) + ", target " +
                      fsl.backups[targetIndex].label + ", " +
                      std::to_string(records) + " records, " +
                      std::to_string(unique) + " unique)");
  exp::printRow({"phase", "1 thread", std::to_string(threads) + " threads",
                 "speedup", "plan"});

  const auto cps = [&](double seconds) {
    return seconds > 0 ? static_cast<double>(records) / seconds : 0.0;
  };

  // COUNT. The N-thread column forces the parallel sub-range plan so it
  // measures the parallel implementation itself even when the cost model
  // would (correctly) pick serial at this scale or core count.
  FrequencyBuildOptions freqSerial;
  FrequencyBuildOptions freqParallel;
  freqParallel.threads = threads;
  freqParallel.plan = ComputePlan::kParallel;
  PhaseResult count;
  count.serialCps = cps(countPhaseSeconds(cipher, plain, freqSerial));
  count.parallelCps = cps(countPhaseSeconds(cipher, plain, freqParallel));
  count.plan = FrequencyIndex::build(cipher, freqParallel).stats.plan;
  printPhase("count", count);

  // Neighbor build, unbudgeted: serial vs forced-parallel in-memory.
  NeighborBuildOptions nbSerial;
  NeighborBuildOptions nbParallel;
  nbParallel.threads = threads;
  nbParallel.plan = ComputePlan::kParallel;
  PhaseResult neighbor;
  neighbor.serialCps = cps(neighborPhaseSeconds(cipher, plain, nbSerial));
  neighbor.parallelCps = cps(neighborPhaseSeconds(cipher, plain, nbParallel));
  neighbor.plan =
      NeighborIndex::build(cipher, NeighborIndex::Side::kLeft, nbParallel)
          .buildStats()
          .plan;
  printPhase("neighbor-build", neighbor);

  // End-to-end locality attack, unbudgeted.
  AttackConfig config = exp::ciphertextOnlyConfig(/*sizeAware=*/false);
  config.threads = threads;
  config.memBudgetBytes = 0;
  config.spillDir.clear();
  analysis::AnalysisOptions serialOpts;
  analysis::AnalysisOptions parallelOpts;
  parallelOpts.threads = threads;
  parallelOpts.plan = ComputePlan::kParallel;
  PhaseResult attack;
  attack.serialCps =
      cps(attackPhaseSeconds(cipher, plain, serialOpts, config));
  attack.parallelCps =
      cps(attackPhaseSeconds(cipher, plain, parallelOpts, config));
  attack.plan = "parallel";
  printPhase("locality-attack", attack);

  double seconds = 0;
  const AttackResult serialResult =
      attackOnce(cipher, plain, serialOpts, config, seconds);
  const AttackResult parallelResult =
      attackOnce(cipher, plain, parallelOpts, config, seconds);

  // Budgeted phases: same neighbor build and attack under --mem-budget. At
  // the default scale and budget the cost model picks the spill pipeline.
  NeighborBuildOptions nbBudgeted;
  nbBudgeted.threads = threads;
  nbBudgeted.budget = budget;
  const double budgetedCps =
      cps(neighborPhaseSeconds(cipher, plain, nbBudgeted));
  const AnalysisBuildStats budgetedStats =
      NeighborIndex::build(cipher, NeighborIndex::Side::kLeft, nbBudgeted)
          .buildStats();
  exp::printRow({"neighbor-budgeted", "-",
                 exp::fmtDouble(budgetedCps / 1e6, 2) + " Mc/s", "-",
                 budgetedStats.plan});

  analysis::AnalysisOptions budgetedOpts;
  budgetedOpts.threads = threads;
  budgetedOpts.budget = budget;
  const AttackResult budgetedResult =
      attackOnce(cipher, plain, budgetedOpts, config, seconds);

  const bool identicalThreads =
      serialResult.inferred == parallelResult.inferred &&
      serialResult.processedPairs == parallelResult.processedPairs;
  const bool identicalBudgets =
      serialResult.inferred == budgetedResult.inferred &&
      serialResult.processedPairs == budgetedResult.processedPairs;
  printf("\ninference rate %.2f%% (%llu pairs processed); "
         "identical across threads: %s; identical across budgets: %s\n",
         100.0 * inferenceRate(serialResult, target),
         static_cast<unsigned long long>(serialResult.processedPairs),
         identicalThreads ? "yes" : "NO", identicalBudgets ? "yes" : "NO");
  if (!identicalThreads || !identicalBudgets) {
    fprintf(stderr, "ERROR: attack result diverged from serial engine\n");
    return 1;
  }

  writeJson(jsonPath, fsl, records, unique, threads, memBudget, count,
            neighbor, attack, budgetedCps, budgetedStats, identicalThreads,
            identicalBudgets);
  return 0;
}
