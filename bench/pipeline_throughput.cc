// Throughput of the parallel ingest pipeline vs. the serial DedupEngine on
// the synthetic FSL-like and VM-like corpora.
//
//   pipeline_throughput [--threads N] [--stream-chunk-bytes M] [--json PATH]
//
// Every run notes whether the metrics registry is live or compiled out
// (FREQDEDUP_OBS=OFF) — comparing MB/s across the two builds is the
// observability overhead measurement. --json writes one JSON object per
// corpus/config row, with the counters taken from the pipeline's metrics
// snapshot rather than ad-hoc stats structs.
//
// Two workloads per corpus:
//  - dedup-only: the raw trace streamed straight into the dedup stage;
//  - crypto+dedup: a per-chunk transform that emulates client-side
//    fingerprint+encrypt cost (SHA-256 over the chunk's size in bytes) runs
//    in the parallel worker stage before dedup — the realistic ingest shape.
//
// The pipeline must reproduce the serial engine's dedup ratio and
// unique-chunk count exactly (shard routing is per-fingerprint); the bench
// verifies that on every run and reports wall-clock MB/s and speedup.
//
// With --stream-chunk-bytes M, additionally benchmarks the real-bytes
// session client (DedupClient/BackupSession) against the one-shot
// BackupManager::backup path: a synthetic object is streamed through a
// session in M-byte appends, recipes are verified identical to the one-shot
// run, and both paths' MB/s are reported.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chunking/cdc_chunker.h"
#include "client/dedup_client.h"
#include "common/hash.h"
#include "expcommon.h"
#include "pipeline/parallel_ingest_pipeline.h"
#include "storage/backup_manager.h"
#include "storage/container_backup_store.h"
#include "storage/dedup_engine.h"

namespace freqdedup {
namespace {

DedupEngineParams engineParams() {
  DedupEngineParams p;
  p.containerBytes = 512 * 1024;
  p.cacheBytes = 64 * 1024 * kFpMetadataBytes;
  p.expectedFingerprints = 2'000'000;
  return p;
}

/// Emulates the client-side fingerprint+encrypt stage: hashes `size` bytes
/// of scratch data seeded by the fingerprint, like encrypting the chunk.
ChunkRecord cryptoTransform(const ChunkRecord& r) {
  thread_local ByteVec scratch;
  if (scratch.size() < r.size) scratch.resize(r.size);
  for (size_t i = 0; i < r.size; i += 512)
    scratch[i] = static_cast<uint8_t>(mix64(r.fp ^ i));
  const Digest d = sha256(ByteView(scratch.data(), r.size));
  return {fpFromDigest(d), r.size};
}

struct RunResult {
  double seconds = 0;
  DedupEngineStats stats;
};

/// Logical bytes of the corpus, from the trace itself. Throughput must not
/// depend on registry counters: under FREQDEDUP_OBS=OFF the snapshot reads
/// zero, yet the MB/s comparison against that build is the whole point.
uint64_t datasetLogicalBytes(const Dataset& dataset) {
  uint64_t bytes = 0;
  for (const auto& backup : dataset.backups)
    for (const auto& r : backup.records) bytes += r.size;
  return bytes;
}

/// JSON rows accumulated across corpora when --json is set.
FILE* g_json = nullptr;
bool g_jsonFirstRow = true;

void jsonRow(const Dataset& dataset, bool withCrypto, const char* config,
             uint32_t threads, const RunResult& r) {
  if (g_json == nullptr) return;
  fprintf(g_json, "%s  {\"corpus\": \"%s\", \"workload\": \"%s\", "
          "\"config\": \"%s\", \"threads\": %u, \"seconds\": %.4f, "
          "\"mbps\": %.1f, \"logical_chunks\": %llu, "
          "\"logical_bytes\": %llu, \"unique_chunks\": %llu, "
          "\"unique_bytes\": %llu}",
          g_jsonFirstRow ? "" : ",\n", dataset.name.c_str(),
          withCrypto ? "crypto+dedup" : "dedup-only", config, threads,
          r.seconds,
          exp::throughputMBps(datasetLogicalBytes(dataset), r.seconds),
          static_cast<unsigned long long>(r.stats.logicalChunks),
          static_cast<unsigned long long>(r.stats.logicalBytes),
          static_cast<unsigned long long>(r.stats.uniqueChunks),
          static_cast<unsigned long long>(r.stats.uniqueBytes));
  g_jsonFirstRow = false;
}

RunResult run(const Dataset& dataset, uint32_t threads, bool withCrypto) {
  PipelineOptions options;
  options.parallelism = threads;
  ParallelIngestPipeline pipeline(engineParams(), options,
                                  withCrypto ? cryptoTransform : nullptr);
  exp::Stopwatch watch;
  for (const auto& backup : dataset.backups)
    pipeline.ingestBackup(backup.records);
  pipeline.finish();
  const double seconds = watch.elapsedSeconds();
  // Counters come from the engines' registries — same snapshots the CLI
  // stats dump reads — not from a separately maintained stats struct.
  return {seconds, DedupEngineStats::fromSnapshot(pipeline.metricsSnapshot())};
}

void benchCorpus(const Dataset& dataset, uint32_t threads, bool withCrypto) {
  exp::printTitle("pipeline_throughput",
                  dataset.name + (withCrypto ? " (crypto+dedup)"
                                             : " (dedup-only)"));
  exp::printRow({"config", "wall", "throughput", "speedup", "dedup-ratio",
                 "unique"});

  const uint64_t logicalBytes = datasetLogicalBytes(dataset);
  const RunResult serial = run(dataset, 1, withCrypto);
  exp::printRow({"serial",
                 exp::fmtDouble(serial.seconds, 3) + " s",
                 exp::fmtDouble(exp::throughputMBps(logicalBytes,
                                                    serial.seconds),
                                1) +
                     " MB/s",
                 "1.00x", exp::fmtDouble(serial.stats.dedupRatio()),
                 std::to_string(serial.stats.uniqueChunks)});
  jsonRow(dataset, withCrypto, "serial", 1, serial);

  const RunResult parallel = run(dataset, threads, withCrypto);
  jsonRow(dataset, withCrypto, "parallel", threads, parallel);
  const double speedup =
      parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0.0;
  exp::printRow({"threads=" + std::to_string(threads),
                 exp::fmtDouble(parallel.seconds, 3) + " s",
                 exp::fmtDouble(exp::throughputMBps(logicalBytes,
                                                    parallel.seconds),
                                1) +
                     " MB/s",
                 exp::fmtDouble(speedup) + "x",
                 exp::fmtDouble(parallel.stats.dedupRatio()),
                 std::to_string(parallel.stats.uniqueChunks)});

  // The counter-based divergence check only means something when the
  // registry is live; the OFF build reads zeros on both sides.
  if (obs::kObsEnabled &&
      (parallel.stats.uniqueChunks != serial.stats.uniqueChunks ||
       parallel.stats.uniqueBytes != serial.stats.uniqueBytes)) {
    printf("ERROR: parallel dedup diverged from serial "
           "(unique %llu vs %llu)\n",
           static_cast<unsigned long long>(parallel.stats.uniqueChunks),
           static_cast<unsigned long long>(serial.stats.uniqueChunks));
    exit(1);
  }
}

/// Synthetic object with clustered cross-region duplication, large enough
/// for throughput to stabilize.
ByteVec sessionBenchContent() {
  constexpr size_t kBytes = 64 << 20;
  Rng rng(42);
  ByteVec data(kBytes / 2);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  data.insert(data.end(), data.begin(), data.begin() + kBytes / 2);  // dups
  return data;
}

void benchSession(size_t appendBytes, uint32_t threads,
                  EncryptionScheme scheme, const char* schemeName) {
  const ByteVec content = sessionBenchContent();
  KeyManager km(toBytes("bench-secret"));
  CdcChunker chunker;
  BackupOptions options;
  options.scheme = scheme;
  options.parallelism = threads;

  exp::printTitle("pipeline_throughput",
                  std::string("session streaming vs one-shot (") +
                      schemeName + ", " + std::to_string(appendBytes) +
                      "-byte appends, threads=" + std::to_string(threads) +
                      ")");
  exp::printRow({"path", "wall", "throughput", "chunks"});

  // One-shot: the whole buffer through BackupManager::backup.
  BackupOutcome oneShot;
  double oneShotSeconds = 0;
  {
    MemBackupStore store;
    BackupManager manager(store, km, chunker, options);
    exp::Stopwatch watch;
    oneShot = manager.backup("bench-object", content);
    oneShotSeconds = watch.elapsedSeconds();
  }
  exp::printRow({"one-shot", exp::fmtDouble(oneShotSeconds, 3) + " s",
                 exp::fmtDouble(
                     exp::throughputMBps(content.size(), oneShotSeconds), 1) +
                     " MB/s",
                 std::to_string(oneShot.chunkCount)});

  // Streaming: the same bytes through one session in appendBytes pieces.
  BackupOutcome streamed;
  double streamSeconds = 0;
  {
    MemBackupStore store;
    DedupClient client(store, km, chunker, options);
    exp::Stopwatch watch;
    BackupSession session = client.beginBackup("bench-object");
    for (size_t off = 0; off < content.size(); off += appendBytes)
      session.append(ByteView(content.data() + off,
                              std::min(appendBytes, content.size() - off)));
    streamed = session.finish();
    streamSeconds = watch.elapsedSeconds();
  }
  exp::printRow({"session", exp::fmtDouble(streamSeconds, 3) + " s",
                 exp::fmtDouble(
                     exp::throughputMBps(content.size(), streamSeconds), 1) +
                     " MB/s",
                 std::to_string(streamed.chunkCount)});

  if (streamed.fileRecipe != oneShot.fileRecipe ||
      streamed.keyRecipe != oneShot.keyRecipe) {
    printf("ERROR: streaming session diverged from the one-shot path\n");
    exit(1);
  }
}

}  // namespace
}  // namespace freqdedup

int main(int argc, char** argv) {
  using namespace freqdedup;
  const uint32_t threads = exp::threadsFlag(argc, argv, 4);
  const std::string streamChunk =
      exp::stringFlag(argc, argv, "stream-chunk-bytes", "");
  const std::string jsonPath = exp::stringFlag(argc, argv, "json", "");
  // The registry-on vs FREQDEDUP_OBS=OFF MB/s delta of this bench is the
  // hot-path overhead measurement; every output says which build ran.
  printf("metrics registry: %s\n",
         obs::kObsEnabled ? "enabled" : "compiled out (FREQDEDUP_OBS=OFF)");
  if (!jsonPath.empty()) {
    g_json = fopen(jsonPath.c_str(), "w");
    if (g_json == nullptr) {
      fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    fprintf(g_json, "{\n\"obs_enabled\": %s,\n\"rows\": [\n",
            obs::kObsEnabled ? "true" : "false");
  }
  if (!streamChunk.empty()) {
    size_t appendBytes = 0;
    try {
      appendBytes = std::stoull(streamChunk);
    } catch (const std::exception&) {
    }
    if (appendBytes == 0) {
      fprintf(stderr,
              "invalid --stream-chunk-bytes '%s' (need a positive "
              "byte count)\n",
              streamChunk.c_str());
      return 2;
    }
    benchSession(appendBytes, threads, EncryptionScheme::kMle, "MLE");
    benchSession(appendBytes, threads, EncryptionScheme::kMinHashScrambled,
                 "MinHash+scramble");
    return 0;
  }
  benchCorpus(exp::fslDataset(), threads, /*withCrypto=*/false);
  benchCorpus(exp::fslDataset(), threads, /*withCrypto=*/true);
  benchCorpus(exp::vmDataset(), threads, /*withCrypto=*/false);
  benchCorpus(exp::vmDataset(), threads, /*withCrypto=*/true);
  if (g_json != nullptr) {
    fprintf(g_json, "\n]\n}\n");
    fclose(g_json);
    printf("\nwrote %s\n", jsonPath.c_str());
  }
  return 0;
}
