// Throughput of the parallel ingest pipeline vs. the serial DedupEngine on
// the synthetic FSL-like and VM-like corpora.
//
//   pipeline_throughput [--threads N]
//
// Two workloads per corpus:
//  - dedup-only: the raw trace streamed straight into the dedup stage;
//  - crypto+dedup: a per-chunk transform that emulates client-side
//    fingerprint+encrypt cost (SHA-256 over the chunk's size in bytes) runs
//    in the parallel worker stage before dedup — the realistic ingest shape.
//
// The pipeline must reproduce the serial engine's dedup ratio and
// unique-chunk count exactly (shard routing is per-fingerprint); the bench
// verifies that on every run and reports wall-clock MB/s and speedup.
#include <cstdio>
#include <string>
#include <vector>

#include "common/hash.h"
#include "expcommon.h"
#include "pipeline/parallel_ingest_pipeline.h"
#include "storage/dedup_engine.h"

namespace freqdedup {
namespace {

DedupEngineParams engineParams() {
  DedupEngineParams p;
  p.containerBytes = 512 * 1024;
  p.cacheBytes = 64 * 1024 * kFpMetadataBytes;
  p.expectedFingerprints = 2'000'000;
  return p;
}

/// Emulates the client-side fingerprint+encrypt stage: hashes `size` bytes
/// of scratch data seeded by the fingerprint, like encrypting the chunk.
ChunkRecord cryptoTransform(const ChunkRecord& r) {
  thread_local ByteVec scratch;
  if (scratch.size() < r.size) scratch.resize(r.size);
  for (size_t i = 0; i < r.size; i += 512)
    scratch[i] = static_cast<uint8_t>(mix64(r.fp ^ i));
  const Digest d = sha256(ByteView(scratch.data(), r.size));
  return {fpFromDigest(d), r.size};
}

struct RunResult {
  double seconds = 0;
  DedupEngineStats stats;
};

RunResult run(const Dataset& dataset, uint32_t threads, bool withCrypto) {
  PipelineOptions options;
  options.parallelism = threads;
  ParallelIngestPipeline pipeline(engineParams(), options,
                                  withCrypto ? cryptoTransform : nullptr);
  exp::Stopwatch watch;
  for (const auto& backup : dataset.backups)
    pipeline.ingestBackup(backup.records);
  pipeline.finish();
  return {watch.elapsedSeconds(), pipeline.stats()};
}

void benchCorpus(const Dataset& dataset, uint32_t threads, bool withCrypto) {
  exp::printTitle("pipeline_throughput",
                  dataset.name + (withCrypto ? " (crypto+dedup)"
                                             : " (dedup-only)"));
  exp::printRow({"config", "wall", "throughput", "speedup", "dedup-ratio",
                 "unique"});

  const RunResult serial = run(dataset, 1, withCrypto);
  exp::printRow({"serial",
                 exp::fmtDouble(serial.seconds, 3) + " s",
                 exp::fmtDouble(exp::throughputMBps(serial.stats.logicalBytes,
                                                    serial.seconds),
                                1) +
                     " MB/s",
                 "1.00x", exp::fmtDouble(serial.stats.dedupRatio()),
                 std::to_string(serial.stats.uniqueChunks)});

  const RunResult parallel = run(dataset, threads, withCrypto);
  const double speedup =
      parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0.0;
  exp::printRow({"threads=" + std::to_string(threads),
                 exp::fmtDouble(parallel.seconds, 3) + " s",
                 exp::fmtDouble(
                     exp::throughputMBps(parallel.stats.logicalBytes,
                                         parallel.seconds),
                     1) +
                     " MB/s",
                 exp::fmtDouble(speedup) + "x",
                 exp::fmtDouble(parallel.stats.dedupRatio()),
                 std::to_string(parallel.stats.uniqueChunks)});

  if (parallel.stats.uniqueChunks != serial.stats.uniqueChunks ||
      parallel.stats.uniqueBytes != serial.stats.uniqueBytes) {
    printf("ERROR: parallel dedup diverged from serial "
           "(unique %llu vs %llu)\n",
           static_cast<unsigned long long>(parallel.stats.uniqueChunks),
           static_cast<unsigned long long>(serial.stats.uniqueChunks));
    exit(1);
  }
}

}  // namespace
}  // namespace freqdedup

int main(int argc, char** argv) {
  using namespace freqdedup;
  const uint32_t threads = exp::threadsFlag(argc, argv, 4);
  benchCorpus(exp::fslDataset(), threads, /*withCrypto=*/false);
  benchCorpus(exp::fslDataset(), threads, /*withCrypto=*/true);
  benchCorpus(exp::vmDataset(), threads, /*withCrypto=*/false);
  benchCorpus(exp::vmDataset(), threads, /*withCrypto=*/true);
  return 0;
}
