// Compression x deduplication on the FSL- and VM-like corpora.
//
//   storage_bench [--json PATH] [--mb M]
//
// Replays each dataset's backup traces into a fresh persistent store with
// per-container compression enabled, twice per dataset:
//   plain  — chunk payloads are synthesized *plaintext* (text-like bytes,
//            deterministic per fingerprint), the only place compression can
//            win in an encrypted-dedup system (client-side, pre-encryption);
//   mle    — the same chunks convergently encrypted (key = SHA-256(chunk)),
//            demonstrating the paper-relevant negative: ciphertext is
//            incompressible, so the codec frames fall back to the legacy
//            format and the compression ratio stays ~1.0.
// Reported per row: logical MB, unique (post-dedup) MB, physical on-disk MB,
// and the dedup / compression / combined ratios. Physical bytes are measured
// from the container files themselves, so the numbers hold with metrics
// compiled out. --json writes BENCH_storage.json; --mb caps the logical
// bytes replayed per run (default 96 MB) to bound CI time.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/rng.h"
#include "crypto/mle.h"
#include "expcommon.h"
#include "obs/metrics.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

namespace fs = std::filesystem;
using exp::fmtDouble;
using exp::printRow;
using exp::printTitle;

constexpr uint64_t kDefaultLogicalCapBytes = 96ull * 1000 * 1000;

/// Deterministic plaintext-like content for a trace fingerprint: a short
/// fp-derived motif repeated with sparse mutations, giving the intra-chunk
/// redundancy real text and VM images have (compresses a few x) while
/// distinct fingerprints still produce distinct bytes.
ByteVec synthPlaintext(Fp fp, uint32_t size) {
  ByteVec bytes(size);
  Rng rng(fp ^ 0x5DEECE66Dull);
  uint8_t motif[64];
  for (auto& b : motif)
    b = static_cast<uint8_t>("etaoin shrdlu cmfwyp"[rng.next() % 20]);
  for (uint32_t i = 0; i < size; ++i) bytes[i] = motif[i % sizeof(motif)];
  // One mutation per ~256 bytes keeps the content from being a pure cycle.
  for (uint32_t at = 0; at < size; at += 256)
    bytes[at + rng.next() % std::min<uint32_t>(256, size - at)] =
        static_cast<uint8_t>(rng.next());
  return bytes;
}

struct RunResult {
  uint64_t logicalBytes = 0;
  uint64_t uniqueRawBytes = 0;
  uint64_t physicalBytes = 0;
  uint64_t compressedContainers = 0;
  uint64_t totalContainers = 0;

  [[nodiscard]] double dedupRatio() const {
    return uniqueRawBytes ? static_cast<double>(logicalBytes) / uniqueRawBytes
                          : 0.0;
  }
  [[nodiscard]] double compressionRatio() const {
    return physicalBytes ? static_cast<double>(uniqueRawBytes) / physicalBytes
                         : 0.0;
  }
  [[nodiscard]] double combinedRatio() const {
    return physicalBytes ? static_cast<double>(logicalBytes) / physicalBytes
                         : 0.0;
  }
};

uint64_t directoryBytes(const std::string& dir) {
  if (!fs::exists(dir)) return 0;
  uint64_t total = 0;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file()) total += entry.file_size();
  return total;
}

/// Replays a dataset's traces into a fresh compressed store. `encrypt`
/// switches the payloads from synthesized plaintext to their convergent
/// (MLE) ciphertext.
RunResult replay(const Dataset& dataset, bool encrypt, uint64_t logicalCap) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("fdd_storage_bench_" + dataset.name + (encrypt ? "_mle" : "_plain")))
          .string();
  fs::remove_all(dir);
  StoreOptions options;
  options.codec = ContainerCodec::kZstd;  // falls back to built-in deflate
  ConvergentEncryption mle;

  RunResult result;
  {
    FileBackupStore store(dir, options);
    for (const BackupTrace& backup : dataset.backups) {
      for (const ChunkRecord& record : backup.records) {
        if (result.logicalBytes >= logicalCap) break;
        ByteVec bytes = synthPlaintext(record.fp, record.size);
        if (encrypt) bytes = mle.encrypt(bytes);
        result.logicalBytes += bytes.size();
        if (store.putChunk(record.fp, bytes))
          result.uniqueRawBytes += bytes.size();
      }
      if (result.logicalBytes >= logicalCap) break;
    }
    store.flush();
    if (obs::kObsEnabled) {
      const obs::MetricsSnapshot ms = store.metricsSnapshot();
      result.compressedContainers = ms.counter("store.compressed_containers");
    }
    result.totalContainers = store.containerCount();
  }
  result.physicalBytes = directoryBytes(dir + "/containers") +
                         directoryBytes(dir + "/cold");
  fs::remove_all(dir);
  return result;
}

void writeJson(const std::string& path,
               const std::vector<std::pair<std::string, RunResult>>& plain,
               const std::vector<std::pair<std::string, RunResult>>& mle) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const auto emit = [&](const RunResult& r) {
    fprintf(f,
            "{\"logical_mb\": %.2f, \"unique_mb\": %.2f, "
            "\"physical_mb\": %.2f, \"dedup_ratio\": %.3f, "
            "\"compression_ratio\": %.3f, \"combined_ratio\": %.3f, "
            "\"compressed_containers\": %llu, \"total_containers\": %llu}",
            r.logicalBytes / 1e6, r.uniqueRawBytes / 1e6,
            r.physicalBytes / 1e6, r.dedupRatio(), r.compressionRatio(),
            r.combinedRatio(),
            static_cast<unsigned long long>(r.compressedContainers),
            static_cast<unsigned long long>(r.totalContainers));
  };
  fprintf(f, "{\n  \"bench\": \"storage_compression_dedup\",\n");
  fprintf(f, "  \"codec\": \"%s\",\n",
          codecName(effectiveCodec(ContainerCodec::kZstd)));
  fprintf(f, "  \"datasets\": {\n");
  for (size_t i = 0; i < plain.size(); ++i) {
    fprintf(f, "    \"%s\": {\"plain\": ", plain[i].first.c_str());
    emit(plain[i].second);
    fprintf(f, ", \"mle\": ");
    emit(mle[i].second);
    fprintf(f, "}%s\n", i + 1 < plain.size() ? "," : "");
  }
  fprintf(f, "  },\n  \"obs_enabled\": %s\n}\n",
          obs::kObsEnabled ? "true" : "false");
  fclose(f);
  printf("wrote %s\n", path.c_str());
}

int run(int argc, char** argv) {
  const std::string jsonPath =
      exp::stringFlag(argc, argv, "json", "BENCH_storage.json");
  const uint64_t logicalCap = exp::bytesFlag(
      argc, argv, "mb", kDefaultLogicalCapBytes / 1'000'000) * 1'000'000;

  printTitle("storage", "compression x dedup, codec=" +
                            std::string(codecName(effectiveCodec(
                                ContainerCodec::kZstd))));
  printRow({"dataset", "payload", "logical MB", "unique MB", "physical MB",
            "dedup", "compress", "combined"});

  std::vector<std::pair<std::string, RunResult>> plainRuns, mleRuns;
  for (const Dataset* dataset : {&exp::fslDataset(), &exp::vmDataset()}) {
    for (const bool encrypt : {false, true}) {
      const RunResult r = replay(*dataset, encrypt, logicalCap);
      printRow({dataset->name, encrypt ? "mle" : "plain",
                fmtDouble(r.logicalBytes / 1e6, 1),
                fmtDouble(r.uniqueRawBytes / 1e6, 1),
                fmtDouble(r.physicalBytes / 1e6, 1),
                fmtDouble(r.dedupRatio()) + "x",
                fmtDouble(r.compressionRatio()) + "x",
                fmtDouble(r.combinedRatio()) + "x"});
      (encrypt ? mleRuns : plainRuns).emplace_back(dataset->name, r);
    }
  }

  // The bench's two headline claims, enforced so CI notices regressions:
  // plaintext payloads must compress, ciphertext payloads must not.
  for (const auto& [name, r] : plainRuns) {
    if (r.compressionRatio() < 1.2) {
      fprintf(stderr, "FAIL: %s plain compression ratio %.3f < 1.2\n",
              name.c_str(), r.compressionRatio());
      return 1;
    }
  }
  for (const auto& [name, r] : mleRuns) {
    if (r.compressionRatio() > 1.05) {
      fprintf(stderr,
              "FAIL: %s mle compression ratio %.3f > 1.05 "
              "(ciphertext should be incompressible)\n",
              name.c_str(), r.compressionRatio());
      return 1;
    }
  }

  if (!jsonPath.empty()) writeJson(jsonPath, plainRuns, mleRuns);
  return 0;
}

}  // namespace
}  // namespace freqdedup

int main(int argc, char** argv) { return freqdedup::run(argc, argv); }
