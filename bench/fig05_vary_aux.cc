// Figure 5: ciphertext-only inference rates with a fixed (latest) target
// backup and varying auxiliary backups, for the basic, locality-based and
// advanced locality-based attacks on all three datasets. For the VM dataset
// (fixed-size chunks) the locality-based and advanced attacks coincide.
#include "expcommon.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

void run(const Dataset& dataset, bool fixedSizeChunks) {
  const size_t targetIndex = dataset.backupCount() - 1;
  const EncryptedTrace target = encryptTarget(dataset, targetIndex);
  printf("\n[%s] target=%s\n", dataset.name.c_str(),
         dataset.backups[targetIndex].label.c_str());
  printRow({"aux", "basic", "locality", "advanced"});
  for (size_t aux = 0; aux < targetIndex; ++aux) {
    const auto& auxRecords = dataset.backups[aux].records;
    const double basic = basicRatePct(target, auxRecords);
    const double locality =
        localityRatePct(target, auxRecords, ciphertextOnlyConfig(false));
    const double advanced =
        fixedSizeChunks
            ? locality
            : localityRatePct(target, auxRecords, ciphertextOnlyConfig(true));
    printRow({dataset.backups[aux].label, fmtPct(basic), fmtPct(locality),
              fmtPct(advanced)});
  }
}

}  // namespace

int main() {
  printTitle("Figure 5",
             "ciphertext-only inference rate, varying auxiliary backups");
  run(fslDataset(), false);
  run(synDataset(), false);
  run(vmDataset(), true);
  return 0;
}
