// freqdedupd request throughput: concurrent remote tenants driving
// backup+restore streams through the daemon's socket, framed protocol and
// worker pool.
//
//   server_throughput [--backups N] [--backup-kb KB] [--json PATH]
//
// One in-process FreqDedupServer on a unix socket; cells vary concurrent
// client connections {1, 4, 8} (each its own tenant — so the cross-tenant
// dedup bookkeeping is on the hot path) with the TOTAL backup count fixed
// (default 64 backups of 1 MiB) so every cell does the same work. Each
// backup is open → frame-sized appends → finish (durable group commit);
// afterwards every client restores one of its backups and byte-verifies it.
// Reports backups/s, ingest MB/s, and exact p50/p99 backup latency from the
// sorted per-backup latency vector; writes BENCH_server.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "expcommon.h"
#include "obs/metrics.h"
#include "server/client_conn.h"
#include "server/server.h"

namespace freqdedup::server {
namespace {

constexpr uint32_t kClientCounts[] = {1, 4, 8};

struct CellResult {
  uint32_t clients = 0;
  uint64_t backups = 0;
  uint64_t bytes = 0;
  double seconds = 0;
  double p50Ms = 0;
  double p99Ms = 0;
  bool verified = false;
};

/// Exact percentile of a sorted latency vector (nearest-rank).
double percentileMs(const std::vector<double>& sortedMs, double p) {
  if (sortedMs.empty()) return 0;
  const size_t rank = std::min(
      sortedMs.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sortedMs.size())));
  return sortedMs[rank];
}

ByteVec backupContent(uint64_t seed, size_t n) {
  // Low-entropy pages mixed with random ones: some dedup across backups so
  // both the new-chunk and duplicate paths are exercised.
  Rng rng(seed);
  ByteVec data(n);
  for (size_t i = 0; i < n; i += 4096) {
    const bool dup = rng.bernoulli(0.3);
    const uint64_t pageSeed = dup ? 42 : rng.next();
    Rng page(pageSeed);
    for (size_t j = i; j < std::min(n, i + 4096); ++j)
      data[j] = static_cast<uint8_t>(page.next());
  }
  return data;
}

CellResult runCell(const std::string& baseDir, uint32_t clients,
                   uint64_t totalBackups, size_t backupBytes) {
  const std::string dir = baseDir + "/c" + std::to_string(clients);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ServerOptions options;
  options.address = "unix:" + dir + "/sock";
  options.threads = std::max(4u, clients);
  options.allowShutdown = false;
  FreqDedupServer srv(dir + "/store", options);
  srv.start();
  const std::string addr = srv.boundAddress().str();

  const uint64_t perClient = totalBackups / clients;
  std::mutex latMu;
  std::vector<double> latenciesMs;
  latenciesMs.reserve(perClient * clients);
  std::vector<bool> verified(clients, false);

  std::vector<std::thread> threads;
  threads.reserve(clients);
  exp::Stopwatch watch;
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      RemoteDedupClient client(addr, "tenant" + std::to_string(c), "pw");
      std::vector<double> mine;
      mine.reserve(perClient);
      for (uint64_t i = 0; i < perClient; ++i) {
        const ByteVec content =
            backupContent((static_cast<uint64_t>(c) << 32) | i, backupBytes);
        exp::Stopwatch one;
        const RemoteBackup b =
            client.openBackup("obj" + std::to_string(i));
        client.append(b, content);
        client.finishBackup(b);
        mine.push_back(one.elapsedSeconds() * 1e3);
      }
      // Byte-verify the last backup through the restore path.
      const ByteVec expected = backupContent(
          (static_cast<uint64_t>(c) << 32) | (perClient - 1), backupBytes);
      verified[c] = client.restoreAll(
                        "obj" + std::to_string(perClient - 1)) == expected;
      std::lock_guard lock(latMu);
      latenciesMs.insert(latenciesMs.end(), mine.begin(), mine.end());
    });
  }
  for (auto& th : threads) th.join();
  const double seconds = watch.elapsedSeconds();
  srv.stop();

  std::sort(latenciesMs.begin(), latenciesMs.end());
  CellResult r;
  r.clients = clients;
  r.backups = perClient * clients;
  r.bytes = r.backups * backupBytes;
  r.seconds = seconds;
  r.p50Ms = percentileMs(latenciesMs, 0.50);
  r.p99Ms = percentileMs(latenciesMs, 0.99);
  r.verified = std::all_of(verified.begin(), verified.end(),
                           [](bool v) { return v; });
  if (!r.verified) {
    fprintf(stderr, "ERROR: restore verification failed at %u clients\n",
            clients);
    exit(1);
  }
  std::filesystem::remove_all(dir);
  return r;
}

void writeJson(const std::string& path, uint64_t totalBackups,
               size_t backupBytes, const std::vector<CellResult>& cells) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    exit(1);
  }
  fprintf(f, "{\n");
  fprintf(f, "  \"total_backups\": %llu,\n",
          static_cast<unsigned long long>(totalBackups));
  fprintf(f, "  \"backup_bytes\": %zu,\n", backupBytes);
  fprintf(f, "  \"hardware_threads\": %u,\n",
          std::thread::hardware_concurrency());
  fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i];
    const double mbps =
        r.seconds > 0
            ? static_cast<double>(r.bytes) / (1024.0 * 1024.0) / r.seconds
            : 0.0;
    fprintf(f,
            "    {\"clients\": %u, \"backups\": %llu, \"seconds\": %.4f, "
            "\"backups_per_sec\": %.1f, \"ingest_mb_per_sec\": %.1f, "
            "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"verified\": %s}%s\n",
            r.clients, static_cast<unsigned long long>(r.backups), r.seconds,
            r.seconds > 0 ? static_cast<double>(r.backups) / r.seconds : 0.0,
            mbps, r.p50Ms, r.p99Ms, r.verified ? "true" : "false",
            i + 1 < cells.size() ? "," : "");
  }
  fprintf(f, "  ],\n");
  fprintf(f, "  \"obs_enabled\": %s\n", obs::kObsEnabled ? "true" : "false");
  fprintf(f, "}\n");
  fclose(f);
  printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace freqdedup::server

int main(int argc, char** argv) {
  using namespace freqdedup;
  using namespace freqdedup::server;
  const uint64_t totalBackups = static_cast<uint64_t>(
      std::atoll(exp::stringFlag(argc, argv, "backups", "64").c_str()));
  const size_t backupKb = static_cast<size_t>(
      std::atoll(exp::stringFlag(argc, argv, "backup-kb", "1024").c_str()));
  const std::string jsonPath =
      exp::stringFlag(argc, argv, "json", "BENCH_server.json");
  if (totalBackups == 0 || backupKb == 0) {
    fprintf(stderr, "--backups and --backup-kb must be >= 1\n");
    return 1;
  }
  const size_t backupBytes = backupKb * 1024;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "fdd_server_bench").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  exp::printTitle("server_throughput",
                  "freqdedupd socket ingest: " + std::to_string(totalBackups) +
                      " backups x " + std::to_string(backupKb) +
                      " KiB per cell, concurrent tenant connections");
  exp::printRow({"clients", "backups/s", "MB/s", "p50 ms", "p99 ms"});

  std::vector<CellResult> cells;
  for (const uint32_t clients : kClientCounts) {
    const CellResult r = runCell(dir, clients, totalBackups, backupBytes);
    cells.push_back(r);
    const double mbps =
        r.seconds > 0
            ? static_cast<double>(r.bytes) / (1024.0 * 1024.0) / r.seconds
            : 0.0;
    exp::printRow(
        {std::to_string(r.clients),
         exp::fmtDouble(r.seconds > 0
                            ? static_cast<double>(r.backups) / r.seconds
                            : 0.0,
                        1),
         exp::fmtDouble(mbps, 1), exp::fmtDouble(r.p50Ms, 2),
         exp::fmtDouble(r.p99Ms, 2)});
  }

  writeJson(jsonPath, totalBackups, backupBytes, cells);
  std::filesystem::remove_all(dir);
  return 0;
}
