// Ablation: how much of the combined defense comes from each half?
// Compares, under the advanced attack (known-plaintext, 0.2 % leakage):
//   - no defense (deterministic MLE),
//   - MinHash encryption only,
//   - scrambling only (MLE on the scrambled stream),
//   - the combined scheme.
#include "expcommon.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

EncryptedTrace scrambleOnlyTrace(const std::vector<ChunkRecord>& plain,
                                 int fpBits, uint64_t avgChunkBytes) {
  SegmentParams params;
  params.avgChunkBytes = avgChunkBytes;
  Rng rng(17);
  const auto scrambled = scrambleTrace(plain, params, rng);
  return mleEncryptTrace(scrambled, fpBits);
}

}  // namespace

int main() {
  printTitle("Ablation: scrambling vs MinHash",
             "contribution of each defense half (advanced attack, "
             "known-plaintext 0.2% leakage)");
  const Dataset& fsl = fslDataset();
  const size_t auxIndex = 2, targetIndex = 4;
  const auto& aux = fsl.backups[auxIndex].records;
  const auto& plainTarget = fsl.backups[targetIndex].records;
  const int fpBits = fpBitsFor(fsl);
  const uint64_t avgChunk = avgChunkBytesFor(fsl);

  const auto evaluate = [&](const EncryptedTrace& target) {
    return localityRatePct(target, aux,
                           knownPlaintextConfig(true, target, 0.2, 13));
  };

  DefenseConfig minhashOnly;
  minhashOnly.fpBits = fpBits;
  minhashOnly.segment.avgChunkBytes = avgChunk;
  DefenseConfig combined = minhashOnly;
  combined.scramble = true;

  printRow({"defense", "advanced"});
  printRow({"none (MLE)", fmtPct(evaluate(encryptTarget(fsl, targetIndex)))});
  printRow({"minhash-only",
            fmtPct(evaluate(minHashEncryptTrace(plainTarget, minhashOnly)))});
  printRow({"scramble-only",
            fmtPct(evaluate(scrambleOnlyTrace(plainTarget, fpBits,
                                              avgChunk)))});
  printRow({"combined",
            fmtPct(evaluate(minHashEncryptTrace(plainTarget, combined)))});
  return 0;
}
