// google-benchmark microbenchmarks for the building blocks: hashing, Rabin
// rolling hash, content-defined chunking, AES-CTR / MLE encryption, the
// persistent key-value store, the DDFS dedup engine, and the attack-analysis
// engine's index builds.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "analysis/attack_engine.h"
#include "chunking/cdc_chunker.h"
#include "chunking/rabin.h"
#include "common/hash.h"
#include "common/rng.h"
#include "core/attacks.h"
#include "core/defense.h"
#include "crypto/mle.h"
#include "kvstore/logkv.h"
#include "pipeline/parallel_ingest_pipeline.h"
#include "storage/dedup_engine.h"

namespace freqdedup {
namespace {

ByteVec randomBytes(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

void BM_Sha256(benchmark::State& state) {
  const ByteVec data = randomBytes(1, static_cast<size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(8192)->Arg(65536);

void BM_RabinSlide(benchmark::State& state) {
  const ByteVec data = randomBytes(2, 1 << 16);
  RabinWindow window;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.slide(data[i++ & 0xFFFF]));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RabinSlide);

void BM_CdcChunking(benchmark::State& state) {
  const ByteVec data = randomBytes(3, 4 << 20);
  const CdcChunker chunker;
  for (auto _ : state) benchmark::DoNotOptimize(chunker.split(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_CdcChunking);

void BM_MleEncrypt(benchmark::State& state) {
  const ByteVec chunk = randomBytes(4, static_cast<size_t>(state.range(0)));
  const ConvergentEncryption mle;
  for (auto _ : state) benchmark::DoNotOptimize(mle.encrypt(chunk));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MleEncrypt)->Arg(4096)->Arg(8192);

void BM_ServerAidedKeyDerivation(benchmark::State& state) {
  const KeyManager km(toBytes("bench-secret"));
  Fp fp = 0;
  for (auto _ : state) benchmark::DoNotOptimize(km.deriveChunkKey(fp++));
}
BENCHMARK(BM_ServerAidedKeyDerivation);

void BM_LogKvPut(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "bench_logkv.log").string();
  std::filesystem::remove(path);
  LogKv kv(path);
  const ByteVec value = randomBytes(5, 24);
  uint64_t key = 0;
  for (auto _ : state) kv.put(kvKeyFromU64(key++), value);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  std::filesystem::remove(path);
}
BENCHMARK(BM_LogKvPut);

void BM_DedupEngineIngest(benchmark::State& state) {
  Rng rng(6);
  std::vector<ChunkRecord> records(100'000);
  for (auto& r : records) r = {rng.uniformInt(0, 30'000), 8192};
  DedupEngineParams params;
  params.cacheBytes = 8192 * kFpMetadataBytes;
  params.expectedFingerprints = 200'000;
  for (auto _ : state) {
    DedupEngine engine(params);
    engine.ingestBackup(records);
    benchmark::DoNotOptimize(engine.stats());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_DedupEngineIngest)->Unit(benchmark::kMillisecond);

void BM_ParallelPipelineIngest(benchmark::State& state) {
  Rng rng(6);
  std::vector<ChunkRecord> records(100'000);
  for (auto& r : records) r = {rng.uniformInt(0, 30'000), 8192};
  DedupEngineParams params;
  params.cacheBytes = 8192 * kFpMetadataBytes;
  params.expectedFingerprints = 200'000;
  PipelineOptions options;
  options.parallelism = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    ParallelIngestPipeline pipeline(params, options);
    pipeline.ingestBackup(records);
    pipeline.finish();
    benchmark::DoNotOptimize(pipeline.stats());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_ParallelPipelineIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_FrequencyIndexBuild(benchmark::State& state) {
  Rng rng(7);
  std::vector<ChunkRecord> records(50'000);
  for (auto& r : records) r = {rng.uniformInt(0, 20'000), 8192};
  const auto stream = analysis::ChunkStreamIndex::build(records);
  const auto threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    // Threshold 0 forces the parallel plan so Arg(4) measures it.
    benchmark::DoNotOptimize(
        analysis::FrequencyIndex::build(stream, threads,
                                        /*parallelThreshold=*/0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_FrequencyIndexBuild)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_NeighborIndexBuild(benchmark::State& state) {
  Rng rng(7);
  std::vector<ChunkRecord> records(50'000);
  for (auto& r : records) r = {rng.uniformInt(0, 20'000), 8192};
  const auto stream = analysis::ChunkStreamIndex::build(records);
  const auto threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::NeighborIndex::build(
        stream, analysis::NeighborIndex::Side::kLeft, threads));
    benchmark::DoNotOptimize(analysis::NeighborIndex::build(
        stream, analysis::NeighborIndex::Side::kRight, threads));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_NeighborIndexBuild)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_LocalityAttack(benchmark::State& state) {
  // Two synthetic backups with realistic churn for a small attack kernel.
  Rng rng(8);
  std::vector<ChunkRecord> aux(20'000);
  for (auto& r : aux) r = {rng.next(), 8192};
  std::vector<ChunkRecord> targetPlain = aux;
  for (int i = 0; i < 400; ++i)
    targetPlain[rng.pickIndex(targetPlain.size())] = {rng.next(), 8192};
  const EncryptedTrace target = mleEncryptTrace(targetPlain);
  AttackConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(localityAttack(target.records, aux, config));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(targetPlain.size()));
}
BENCHMARK(BM_LocalityAttack)->Unit(benchmark::kMillisecond);

void BM_MinHashEncryptTrace(benchmark::State& state) {
  Rng rng(9);
  std::vector<ChunkRecord> records(50'000);
  for (auto& r : records) r = {rng.next(), 8192};
  DefenseConfig defense;
  defense.scramble = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(minHashEncryptTrace(records, defense));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_MinHashEncryptTrace)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace freqdedup

BENCHMARK_MAIN();
