// Figure 14: DDFS metadata access overhead when the fingerprint cache is
// large enough to hold every unique fingerprint (paper: 4 GB; here scaled
// to 2x the dataset's total fingerprint metadata).
#include "metadata_exp.h"

int main() {
  freqdedup::exp::runMetadataExperiment(
      "Figure 14", /*cacheBytes=*/7'200'000,
      "sufficient (paper: 4 GB)");
  return 0;
}
