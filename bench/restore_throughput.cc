// Throughput of the batched, pipelined restore engine against the pre-PR5
// chunk-at-a-time baseline, on a container-local recipe (one object backed
// up sequentially into a fresh persistent store).
//
//   restore_throughput [--threads N] [--mb M] [--json PATH]
//
// Measures MB/s at restore threads {1, N} x block cache {cold, warm} —
// cold reopens the store (the cache starts empty by contract), warm
// re-runs the restore on the same instance — plus the chunk-at-a-time
// baseline (one getChunk + serial decrypt per recipe entry) on its own
// cold open, and a tiered section: every container is demoted to a
// simulated cold object store (GC demotion), then one restore runs
// against the cold tier (transparently promoting), one against the
// freshly promoted hot tier, and one cache-warm. N defaults to 8, M
// (object size) to 64.
// --json writes a machine-readable summary (default BENCH_restore.json),
// matching the BENCH_attack.json conventions; the recorded speedups
// reflect the machine's real core count, which the JSON notes.
//
// Every restore pass is SHA-256-checked against the generated object
// before any number is reported; a divergence aborts the bench.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "chunking/cdc_chunker.h"
#include "client/dedup_client.h"
#include "common/hash.h"
#include "common/rng.h"
#include "crypto/mle.h"
#include "expcommon.h"
#include "obs/metrics.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

constexpr uint64_t kContainerBytes = 4 * 1024 * 1024;
constexpr uint64_t kBenchBlockCacheBytes = 64 * kContainerBytes;

StoreOptions benchStoreOptions() {
  StoreOptions o;
  o.containerBytes = kContainerBytes;
  o.blockCacheBytes = kBenchBlockCacheBytes;
  return o;
}

/// Tiering setup for the tiered rows: demote everything during GC into a
/// cold store simulating a modest object store (2 ms/op, 200 MB/s).
StoreOptions tieredStoreOptions() {
  StoreOptions o = benchStoreOptions();
  o.coldTier.demoteOnGc = true;
  o.coldTier.hotBytes = 0;
  o.coldTier.keepHotRecent = 0;
  o.coldTier.sim.readLatencyUs = 2000;
  o.coldTier.sim.writeLatencyUs = 2000;
  o.coldTier.sim.bytesPerSecond = 200ull * 1000 * 1000;
  return o;
}

ByteVec makeObject(size_t bytes) {
  // Mostly unique content with a little cross-object-style duplication
  // (every 16th MiB repeats), so dedup and duplicate-chunk reads are
  // exercised without destroying container locality.
  Rng rng(4242);
  ByteVec data(bytes);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  constexpr size_t kMiB = 1 << 20;
  for (size_t off = 16 * kMiB; off + kMiB <= data.size(); off += 16 * kMiB)
    std::copy(data.begin(), data.begin() + kMiB,
              data.begin() + static_cast<ptrdiff_t>(off));
  return data;
}

Digest digestOf(const ByteVec& bytes) {
  Sha256Stream stream;
  stream.update(bytes);
  return stream.finish();
}

/// The pre-PR5 restore loop: one getChunk round trip and one serial
/// decrypt per recipe entry (the baseline this engine replaces). Mirrors
/// the frozen tests/client/legacy_restore_reference.h oracle (kept in sync
/// by hand: bench/ deliberately does not include test headers) with bench
/// policy — any divergence aborts instead of throwing.
Digest chunkAtATimeRestore(BackupStore& store, const BackupOutcome& outcome,
                           uint64_t& bytesOut) {
  Sha256Stream stream;
  bytesOut = 0;
  for (size_t i = 0; i < outcome.fileRecipe.entries.size(); ++i) {
    const RecipeEntry& entry = outcome.fileRecipe.entries[i];
    const ByteVec cipher = store.getChunk(entry.cipherFp);
    if (fpOfContent(cipher) != entry.cipherFp) {
      fprintf(stderr, "baseline: ciphertext fingerprint mismatch\n");
      exit(1);
    }
    const ByteVec plain =
        MleScheme::decryptWithKey(outcome.keyRecipe.keys[i], cipher);
    if (entry.plainFp != 0 && fpOfContent(plain) != entry.plainFp) {
      fprintf(stderr, "baseline: plaintext fingerprint mismatch\n");
      exit(1);
    }
    bytesOut += plain.size();
    stream.update(plain);
  }
  if (bytesOut != outcome.fileRecipe.fileSize) {
    fprintf(stderr, "baseline: size mismatch\n");
    exit(1);
  }
  return stream.finish();
}

RestoreOptions benchRestoreOptions(uint32_t threads) {
  RestoreOptions o;
  o.parallelism = threads;
  o.readAheadBatches = 4;
  o.batchBytes = kContainerBytes;
  return o;
}

/// One timed restore pass through the batched engine; checks the digest.
double timedBatchedPass(DedupClient& client, const BackupOutcome& outcome,
                        const Digest& expected) {
  Sha256Stream stream;
  RestoreSession session =
      client.beginRestore(outcome.fileRecipe, outcome.keyRecipe);
  exp::Stopwatch watch;
  const uint64_t bytes =
      session.streamTo([&stream](ByteView b) { stream.update(b); });
  const double seconds = watch.elapsedSeconds();
  if (stream.finish() != expected) {
    fprintf(stderr, "ERROR: batched restore bytes diverged from the object\n");
    exit(1);
  }
  return exp::throughputMBps(bytes, seconds);
}

struct CacheResult {
  double coldMBps = 0;
  double warmMBps = 0;
  // Store-registry counters after both passes: the warm pass's read
  // locality (loads vs cache hits) in the same snapshot the CLI reads.
  uint64_t containerLoads = 0;
  uint64_t readCacheHits = 0;
  uint64_t chunkReads = 0;
  uint64_t batchReads = 0;
};

struct TieredResult {
  double coldMBps = 0;      // every container served by the cold tier
  double promotedMBps = 0;  // fresh open after promotion: hot-tier disk
  double warmMBps = 0;      // same instance again: block cache
  uint64_t demoted = 0;
  uint64_t coldReads = 0;
  uint64_t promotions = 0;
};

void writeJson(const std::string& path, size_t objectBytes, size_t chunks,
               size_t containers, uint32_t threads, double baselineMBps,
               const CacheResult& t1, const CacheResult& tN,
               const TieredResult& tiered) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    exit(1);
  }
  fprintf(f, "{\n");
  fprintf(f, "  \"object_bytes\": %zu,\n", objectBytes);
  fprintf(f, "  \"container_bytes\": %llu,\n",
          static_cast<unsigned long long>(kContainerBytes));
  fprintf(f, "  \"chunk_count\": %zu,\n", chunks);
  fprintf(f, "  \"container_count\": %zu,\n", containers);
  fprintf(f, "  \"hardware_threads\": %u,\n",
          std::thread::hardware_concurrency());
  fprintf(f, "  \"parallel_threads\": %u,\n", threads);
  fprintf(f, "  \"results_identical_bytes\": true,\n");
  fprintf(f, "  \"baseline_chunk_at_a_time\": {\"cold_mbps\": %.1f},\n",
          baselineMBps);
  fprintf(f,
          "  \"batched_threads1\": {\"cold_mbps\": %.1f, "
          "\"warm_mbps\": %.1f},\n",
          t1.coldMBps, t1.warmMBps);
  // With --threads 1 the multi-thread column IS the 1-thread column;
  // emitting it again would duplicate the "batched_threads1" JSON key.
  if (threads != 1) {
    fprintf(f,
            "  \"batched_threads%u\": {\"cold_mbps\": %.1f, "
            "\"warm_mbps\": %.1f},\n",
            threads, tN.coldMBps, tN.warmMBps);
  }
  fprintf(f, "  \"speedup_warm_threads%u_vs_baseline\": %.2f,\n", threads,
          baselineMBps > 0 ? tN.warmMBps / baselineMBps : 0.0);
  fprintf(f,
          "  \"store_reads_threads%u\": {\"container_loads\": %llu, "
          "\"read_cache_hits\": %llu, \"chunk_reads\": %llu, "
          "\"batch_reads\": %llu},\n",
          threads, static_cast<unsigned long long>(tN.containerLoads),
          static_cast<unsigned long long>(tN.readCacheHits),
          static_cast<unsigned long long>(tN.chunkReads),
          static_cast<unsigned long long>(tN.batchReads));
  fprintf(f,
          "  \"tiered\": {\"cold_mbps\": %.1f, \"promoted_mbps\": %.1f, "
          "\"warm_mbps\": %.1f, \"containers_demoted\": %llu, "
          "\"cold_reads\": %llu, \"promotions\": %llu},\n",
          tiered.coldMBps, tiered.promotedMBps, tiered.warmMBps,
          static_cast<unsigned long long>(tiered.demoted),
          static_cast<unsigned long long>(tiered.coldReads),
          static_cast<unsigned long long>(tiered.promotions));
  fprintf(f, "  \"obs_enabled\": %s\n", obs::kObsEnabled ? "true" : "false");
  fprintf(f, "}\n");
  fclose(f);
  printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace freqdedup

int main(int argc, char** argv) {
  using namespace freqdedup;
  const uint32_t threads = exp::threadsFlag(argc, argv, 8);
  const size_t objectMb = static_cast<size_t>(
      std::atol(exp::stringFlag(argc, argv, "mb", "64").c_str()));
  const std::string jsonPath =
      exp::stringFlag(argc, argv, "json", "BENCH_restore.json");
  if (objectMb == 0) {
    fprintf(stderr, "--mb must be >= 1\n");
    return 1;
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "fdd_restore_bench").string();
  std::filesystem::remove_all(dir);

  const ByteVec object = makeObject(objectMb << 20);
  const Digest expected = digestOf(object);

  // Backup once: a sequential single-object store, i.e. a container-local
  // recipe (duplicate chunks still point back into earlier containers).
  KeyManager km(toBytes("restore-bench-secret"));
  CdcChunker chunker;  // default 8 KiB average chunks
  BackupOutcome outcome;
  size_t containerCount = 0;
  {
    FileBackupStore store(dir, benchStoreOptions());
    BackupOptions backup;
    backup.parallelism = std::max(threads, 1u);
    DedupClient client(store, km, chunker, backup);
    BackupSession session = client.beginBackup("bench.img");
    session.append(object);
    outcome = session.finish();
    store.flush();
    containerCount = store.containerCount();
  }

  exp::printTitle("restore_throughput",
                  "batched restore engine vs chunk-at-a-time, " +
                      std::to_string(objectMb) + " MiB object, " +
                      std::to_string(outcome.fileRecipe.entries.size()) +
                      " chunks, " + std::to_string(containerCount) +
                      " containers (" +
                      std::to_string(std::thread::hardware_concurrency()) +
                      " hardware threads)");
  exp::printRow({"path", "cache", "MB/s"});

  // Baseline: cold open, chunk-at-a-time.
  double baselineMBps = 0;
  {
    FileBackupStore store(dir, benchStoreOptions());
    uint64_t bytes = 0;
    exp::Stopwatch watch;
    const Digest got = chunkAtATimeRestore(store, outcome, bytes);
    baselineMBps = exp::throughputMBps(bytes, watch.elapsedSeconds());
    if (got != expected) {
      fprintf(stderr, "ERROR: baseline restore bytes diverged\n");
      return 1;
    }
  }
  exp::printRow({"chunk-at-a-time (pre-PR5)", "cold",
                 exp::fmtDouble(baselineMBps, 1)});

  const auto runBatched = [&](uint32_t t) {
    CacheResult r;
    FileBackupStore store(dir, benchStoreOptions());
    DedupClient client(store, benchRestoreOptions(t));
    r.coldMBps = timedBatchedPass(client, outcome, expected);  // cache fills
    r.warmMBps = timedBatchedPass(client, outcome, expected);  // cache hot
    const obs::MetricsSnapshot snap = store.metricsSnapshot();
    r.containerLoads = snap.counter("store.container_loads");
    r.readCacheHits = snap.counter("store.read_cache_hits");
    r.chunkReads = snap.counter("store.chunk_reads");
    r.batchReads = snap.counter("store.batch_reads");
    exp::printRow({"batched, " + std::to_string(t) + " thread(s)", "cold",
                   exp::fmtDouble(r.coldMBps, 1)});
    exp::printRow({"batched, " + std::to_string(t) + " thread(s)", "warm",
                   exp::fmtDouble(r.warmMBps, 1)});
    return r;
  };
  const CacheResult t1 = runBatched(1);
  const CacheResult tN = threads == 1 ? t1 : runBatched(threads);

  // Tiered rows: demote every container to the simulated cold store, then
  // restore once against the cold tier (promoting as it goes), once against
  // the freshly promoted hot tier, and once cache-warm.
  TieredResult tiered;
  {
    FileBackupStore store(dir, tieredStoreOptions());
    // The sections above never run GC, but demotion rides collectGarbage();
    // a manifest must pin the chunks live first or GC reclaims the whole
    // (refcount-zero) store out from under the restores.
    std::vector<Fp> live;
    live.reserve(outcome.fileRecipe.entries.size());
    for (const RecipeEntry& entry : outcome.fileRecipe.entries)
      live.push_back(entry.cipherFp);
    store.recordBackup("bench.img", live);
    tiered.demoted = store.collectGarbage().containersDemoted;
    DedupClient client(store, benchRestoreOptions(threads));
    tiered.coldMBps = timedBatchedPass(client, outcome, expected);
    const StoreReadStats reads = store.readStats();
    tiered.coldReads = reads.coldReads;
    tiered.promotions = reads.promotions;
  }
  {
    FileBackupStore store(dir, tieredStoreOptions());
    DedupClient client(store, benchRestoreOptions(threads));
    tiered.promotedMBps = timedBatchedPass(client, outcome, expected);
    tiered.warmMBps = timedBatchedPass(client, outcome, expected);
  }
  exp::printRow({"tiered, " + std::to_string(threads) + " thread(s)", "cold",
                 exp::fmtDouble(tiered.coldMBps, 1)});
  exp::printRow({"tiered, " + std::to_string(threads) + " thread(s)",
                 "promoted", exp::fmtDouble(tiered.promotedMBps, 1)});
  exp::printRow({"tiered, " + std::to_string(threads) + " thread(s)", "warm",
                 exp::fmtDouble(tiered.warmMBps, 1)});

  printf("\nwarm %u-thread batched vs chunk-at-a-time baseline: %.2fx "
         "(all passes byte-identical)\n",
         threads, baselineMBps > 0 ? tN.warmMBps / baselineMBps : 0.0);

  writeJson(jsonPath, object.size(), outcome.fileRecipe.entries.size(),
            containerCount, threads, baselineMBps, t1, tN, tiered);
  std::filesystem::remove_all(dir);
  return 0;
}
