// Figure 7: sliding-window attacks — auxiliary backup t, target backup t+s.
// FSL and synthetic report s = 1, 2 for the locality-based and advanced
// attacks; VM reports s = 1, 2, 3 (locality == advanced for fixed-size).
#include "expcommon.h"

using namespace freqdedup;
using namespace freqdedup::exp;

namespace {

void run(const Dataset& dataset, const std::vector<int>& shifts,
         bool fixedSizeChunks) {
  printf("\n[%s]\n", dataset.name.c_str());
  std::vector<std::string> header{"aux"};
  for (const int s : shifts) {
    header.push_back("s=" + std::to_string(s));
    if (!fixedSizeChunks) header.push_back("s=" + std::to_string(s) + " adv");
  }
  printRow(header);
  for (size_t t = 0; t + 1 < dataset.backupCount(); ++t) {
    std::vector<std::string> row{dataset.backups[t].label};
    for (const int s : shifts) {
      const size_t targetIndex = t + static_cast<size_t>(s);
      if (targetIndex >= dataset.backupCount()) {
        row.push_back("-");
        if (!fixedSizeChunks) row.push_back("-");
        continue;
      }
      const EncryptedTrace target = encryptTarget(dataset, targetIndex);
      const auto& aux = dataset.backups[t].records;
      row.push_back(fmtPct(
          localityRatePct(target, aux, ciphertextOnlyConfig(false))));
      if (!fixedSizeChunks) {
        row.push_back(fmtPct(
            localityRatePct(target, aux, ciphertextOnlyConfig(true))));
      }
    }
    printRow(row);
  }
}

}  // namespace

int main() {
  printTitle("Figure 7", "inference rate over a sliding window");
  run(fslDataset(), {1, 2}, false);
  run(synDataset(), {1, 2}, false);
  run(vmDataset(), {1, 2, 3}, true);
  return 0;
}
