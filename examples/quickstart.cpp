// Quickstart: the full encrypted-deduplication pipeline via the session
// client.
//
//   DedupClient --beginBackup()--> BackupSession: append streamed content ->
//   content-defined chunking -> server-aided MLE -> deduplicated chunk store
//   -> file/key recipes -> commit; then beginRestore() streams it back out.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "chunking/cdc_chunker.h"
#include "client/dedup_client.h"
#include "common/rng.h"
#include "storage/container_backup_store.h"

using namespace freqdedup;

namespace {

ByteVec makeDocument(uint64_t seed, size_t bytes) {
  Rng rng(seed);
  ByteVec data(bytes);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

}  // namespace

int main() {
  // 1. A chunk store (in-memory here; FileBackupStore for persistence) and
  //    a DupLESS-style key manager holding the global secret.
  MemBackupStore store;
  KeyManager keyManager(toBytes("quickstart-global-secret"));

  // 2. Content-defined chunking with 8 KB average chunks.
  CdcChunker chunker;

  // 3. The shared client; it vends one cheap session per in-flight object.
  //    Sessions stream: append() any number of times, in any granularity —
  //    the object never needs to fit in memory at once.
  DedupClient client(store, keyManager, chunker, {});

  // Back up version 1 of a 4 MB document, streamed in 64 KB appends.
  ByteVec document = makeDocument(1, 4 << 20);
  BackupSession v1Session = client.beginBackup("report-v1");
  for (size_t off = 0; off < document.size(); off += 64 << 10)
    v1Session.append(ByteView(document.data() + off,
                              std::min<size_t>(64 << 10,
                                               document.size() - off)));
  const BackupOutcome v1 = v1Session.finish();
  printf("v1: %zu chunks, %zu new, %zu duplicate\n", v1.chunkCount,
         v1.newChunks, v1.duplicateChunks);

  // Edit 1%% of the document in one clustered region and back up again:
  // deduplication removes everything outside the edited region.
  for (size_t i = 1 << 20; i < (1 << 20) + (4 << 20) / 100; ++i)
    document[i] ^= 0xA5;
  BackupSession v2Session = client.beginBackup("report-v2");
  v2Session.append(document);  // whole-buffer appends work too
  const BackupOutcome v2 = v2Session.finish();
  printf("v2: %zu chunks, %zu new, %zu duplicate (%.1f%% deduplicated)\n",
         v2.chunkCount, v2.newChunks, v2.duplicateChunks,
         100.0 * static_cast<double>(v2.duplicateChunks) /
             static_cast<double>(v2.chunkCount));

  // Recipes are sealed under the user's own key before storage.
  const AesKey userKey = userKeyFromPassphrase("quickstart-pass");
  Rng rng(7);
  client.commitBackup("report-v2", v2, userKey, rng);

  // Restore as a stream: chunks are verified end-to-end and handed to the
  // sink in order (here re-assembled just to byte-compare).
  ByteVec restored;
  restored.reserve(document.size());
  client.beginRestore("report-v2", userKey)
      .streamTo([&restored](ByteView bytes) { appendBytes(restored, bytes); });
  printf("restore: %s (%zu bytes)\n",
         restored == document ? "OK, bit-exact" : "MISMATCH",
         restored.size());

  printf("store: %llu unique chunks, %.2f MB stored for %.2f MB logical "
         "(dedup ratio %.2fx)\n",
         static_cast<unsigned long long>(store.stats().uniqueChunks),
         store.stats().storedBytes / 1e6, store.stats().logicalBytes / 1e6,
         store.stats().dedupRatio());
  return restored == document ? 0 : 1;
}
