// Quickstart: the full encrypted-deduplication pipeline on in-memory data.
//
//   content -> content-defined chunking -> server-aided MLE -> deduplicated
//   chunk store -> file/key recipes -> restore -> verify.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "chunking/cdc_chunker.h"
#include "common/rng.h"
#include "storage/backup_manager.h"
#include "storage/container_backup_store.h"

using namespace freqdedup;

namespace {

ByteVec makeDocument(uint64_t seed, size_t bytes) {
  Rng rng(seed);
  ByteVec data(bytes);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

}  // namespace

int main() {
  // 1. A chunk store (in-memory here; FileBackupStore for persistence) and
  //    a DupLESS-style key manager holding the global secret.
  MemBackupStore store;
  KeyManager keyManager(toBytes("quickstart-global-secret"));

  // 2. Content-defined chunking with 8 KB average chunks.
  CdcChunker chunker;

  // 3. A backup client using deterministic server-aided MLE.
  BackupManager manager(store, keyManager, chunker, {});

  // Back up version 1 of a 4 MB document.
  ByteVec document = makeDocument(1, 4 << 20);
  const BackupOutcome v1 = manager.backup("report-v1", document);
  printf("v1: %zu chunks, %zu new, %zu duplicate\n", v1.chunkCount,
         v1.newChunks, v1.duplicateChunks);

  // Edit 1%% of the document in one clustered region and back up again:
  // deduplication removes everything outside the edited region.
  for (size_t i = 1 << 20; i < (1 << 20) + (4 << 20) / 100; ++i)
    document[i] ^= 0xA5;
  const BackupOutcome v2 = manager.backup("report-v2", document);
  printf("v2: %zu chunks, %zu new, %zu duplicate (%.1f%% deduplicated)\n",
         v2.chunkCount, v2.newChunks, v2.duplicateChunks,
         100.0 * static_cast<double>(v2.duplicateChunks) /
             static_cast<double>(v2.chunkCount));

  // Recipes are sealed under the user's own key before storage.
  AesKey userKey{};
  userKey.fill(0x42);
  Rng rng(7);
  manager.commitBackup("report-v2", v2, userKey, rng);

  // Restore and verify.
  const ByteVec restored = manager.restoreByName("report-v2", userKey);
  printf("restore: %s (%zu bytes)\n",
         restored == document ? "OK, bit-exact" : "MISMATCH",
         restored.size());

  printf("store: %llu unique chunks, %.2f MB stored for %.2f MB logical "
         "(dedup ratio %.2fx)\n",
         static_cast<unsigned long long>(store.stats().uniqueChunks),
         store.stats().storedBytes / 1e6, store.stats().logicalBytes / 1e6,
         store.stats().dedupRatio());
  return restored == document ? 0 : 1;
}
