// backup_system: a miniature encrypted-deduplication backup tool over a real
// directory tree, using the persistent store (containers on disk + log-
// structured fingerprint index) and the combined MinHash + scrambling scheme.
//
// Built on the session-based streaming client: files are streamed through
// BackupSession / RestoreSession in fixed-size I/O buffers, so arbitrarily
// large files back up and restore in bounded memory.
//
// Usage:
//   backup_system backup  <store-dir> <source-dir> <passphrase>
//   backup_system restore <store-dir> <dest-dir>  <passphrase>
//   backup_system delete  <store-dir> <name>      # then `gc` to reclaim
//   backup_system gc      <store-dir>
//   backup_system verify  <store-dir>
//   backup_system list    <store-dir>
//   backup_system stats   <store-dir> [--json]
//   backup_system serve   <store-dir> <address>   # run the freqdedupd server
//   backup_system demo                      # self-contained tmp-dir demo
//
// Remote mode — the same operations against a running freqdedupd daemon
// (`--remote=<addr>` with an optional `--tenant=<id>`, default "default").
// The daemon authenticates every connection against the tenant's registered
// passphrase; subcommands without a positional passphrase take `--pass=`:
//   backup_system backup   <source-dir> <passphrase> --remote=<addr>
//   backup_system restore  <dest-dir>   <passphrase> --remote=<addr>
//   backup_system delete   <name>     --remote=<addr> [--pass=<passphrase>]
//   backup_system list                --remote=<addr> [--pass=<passphrase>]
//   backup_system stats               --remote=<addr> [--pass=<passphrase>]
//   backup_system shutdown            --remote=<addr> [--pass=<passphrase>]
//
// Every state-touching subcommand accepts a trailing `--stats` (human
// text) or `--stats=json` (one JSON object per line) flag that dumps the
// metrics registry — client/session counters plus the store's own
// instance registry — after the operation finishes.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "chunking/cdc_chunker.h"
#include "client/dedup_client.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "server/client_conn.h"
#include "server/server.h"
#include "storage/file_backup_store.h"

using namespace freqdedup;
namespace fs = std::filesystem;

namespace {

/// I/O buffer for streaming files through sessions — the largest piece of a
/// file this tool ever holds.
constexpr size_t kIoBufferBytes = 1 << 20;

BackupOptions defenseOptions() {
  BackupOptions options;
  options.scheme = EncryptionScheme::kMinHashScrambled;
  return options;
}

enum class StatsFlag { kNone, kText, kJson };

/// Consumes a trailing `--stats` / `--stats=json` anywhere in argv so the
/// positional arguments stay where each subcommand expects them.
StatsFlag extractStatsFlag(int& argc, char** argv) {
  StatsFlag flag = StatsFlag::kNone;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      flag = StatsFlag::kText;
    } else if (std::strcmp(argv[i], "--stats=json") == 0) {
      flag = StatsFlag::kJson;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return flag;
}

/// Consumes a trailing `--<name>=<value>` option anywhere in argv. Returns
/// the value, or the empty string when absent.
std::string extractOption(int& argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = argv[i] + prefix.size();
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return value;
}

/// Consumes a valueless `--<name>` flag anywhere in argv.
bool extractFlag(int& argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  bool present = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      present = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return present;
}

/// Store configuration shared by every local subcommand, parsed from the
/// trailing flags: --compress=<none|zstd|deflate>, --cache-bytes=<n[kmg]>,
/// --demote-on-gc, --hot-bytes=<n[kmg]>, --keep-hot=<n>. Reads always work
/// regardless of these flags (codecs and tier placement are discovered per
/// container); they only shape new writes, the block-cache budget, and GC
/// demotion.
StoreOptions g_storeOptions;

void extractStoreOptions(int& argc, char** argv) {
  if (const std::string codec = extractOption(argc, argv, "compress");
      !codec.empty()) {
    const auto parsed = codecFromName(codec);
    if (!parsed)
      throw std::invalid_argument("unknown codec '" + codec +
                                  "' (none|zstd|deflate)");
    g_storeOptions.codec = *parsed;
  }
  if (const std::string bytes = extractOption(argc, argv, "cache-bytes");
      !bytes.empty())
    g_storeOptions.blockCacheBytes = server::parseByteSize(bytes);
  if (extractFlag(argc, argv, "demote-on-gc"))
    g_storeOptions.coldTier.demoteOnGc = true;
  if (const std::string bytes = extractOption(argc, argv, "hot-bytes");
      !bytes.empty()) {
    g_storeOptions.coldTier.hotBytes = server::parseByteSize(bytes);
    g_storeOptions.coldTier.demoteOnGc = true;
  }
  if (const std::string keep = extractOption(argc, argv, "keep-hot");
      !keep.empty())
    g_storeOptions.coldTier.keepHotRecent =
        static_cast<uint32_t>(std::stoul(keep));
}

/// Dumps the process-wide registry (sessions, pipeline, chunking) merged
/// with the store's per-instance registry (cache, containers, GC).
void dumpStats(const FileBackupStore& store, StatsFlag flag) {
  if (flag == StatsFlag::kNone) return;
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  snapshot.merge(store.metricsSnapshot());
  if (flag == StatsFlag::kJson) {
    printf("%s\n", snapshot.toJson().c_str());
  } else {
    printf("--- stats ---\n%s", snapshot.toText().c_str());
  }
}

void printRecovery(const FileBackupStore& store) {
  const StoreRecoveryStats& rs = store.recoveryStats();
  if (rs.orphanContainersRemoved + rs.corruptContainers + rs.entriesDropped ==
      0)
    return;
  printf("recovery: %llu orphan containers removed, %llu corrupt containers "
         "quarantined, %llu index entries dropped\n",
         static_cast<unsigned long long>(rs.orphanContainersRemoved),
         static_cast<unsigned long long>(rs.corruptContainers),
         static_cast<unsigned long long>(rs.entriesDropped));
}

/// Streams one file from disk through a backup session in kIoBufferBytes
/// reads (never loads the file whole).
BackupOutcome backupFile(DedupClient& client, const std::string& name,
                         const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  BackupSession session = client.beginBackup(name);
  ByteVec buffer(kIoBufferBytes);
  while (in) {
    in.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
    const auto got = static_cast<size_t>(in.gcount());
    if (got == 0) break;
    session.append(ByteView(buffer.data(), got));
  }
  // A mid-file read error must not be mistaken for EOF: committing a
  // silently truncated backup would be data loss.
  if (in.bad() || (in.fail() && !in.eof()))
    throw std::runtime_error("read error on " + path.string());
  return session.finish();
}

int doBackup(const std::string& storeDir, const std::string& sourceDir,
             const std::string& passphrase,
             StatsFlag stats = StatsFlag::kNone) {
  FileBackupStore store(storeDir, g_storeOptions);
  printRecovery(store);
  KeyManager keyManager(toBytes("backup-system-global-secret"));
  CdcChunker chunker;
  DedupClient client(store, keyManager, chunker, defenseOptions());
  const AesKey userKey = userKeyFromPassphrase(passphrase);
  // OS-entropy seed: this rng draws the recipe-sealing IVs, and a
  // deterministic seed (e.g. hashed paths) would replay the same AES-CTR
  // IV sequence on every run against the same store.
  Rng rng(secureSeed());

  size_t files = 0, newChunks = 0, dupChunks = 0;
  for (const auto& entry : fs::recursive_directory_iterator(sourceDir)) {
    if (!entry.is_regular_file()) continue;
    const std::string rel =
        fs::relative(entry.path(), sourceDir).generic_string();
    const BackupOutcome outcome = backupFile(client, rel, entry.path());
    client.commitBackup(rel, outcome, userKey, rng);
    ++files;
    newChunks += outcome.newChunks;
    dupChunks += outcome.duplicateChunks;
  }
  store.flush();
  printf("backed up %zu files: %zu new chunks, %zu duplicates "
         "(dedup ratio %.2fx, %zu containers)\n",
         files, newChunks, dupChunks, store.stats().dedupRatio(),
         store.containerCount());
  dumpStats(store, stats);
  return 0;
}

int doRestore(const std::string& storeDir, const std::string& destDir,
              const std::string& passphrase,
              StatsFlag stats = StatsFlag::kNone) {
  FileBackupStore store(storeDir, g_storeOptions);
  printRecovery(store);
  // Restore-only client (no chunker or key manager) on the batched engine:
  // parallel decrypt + container read-ahead, sized to the machine.
  RestoreOptions restoreOptions;
  restoreOptions.parallelism =
      std::clamp(std::thread::hardware_concurrency(), 1u, 8u);
  restoreOptions.readAheadBatches = 4;
  DedupClient client(store, restoreOptions);
  const AesKey userKey = userKeyFromPassphrase(passphrase);

  size_t files = 0;
  for (const std::string& name : client.listBackups()) {
    RestoreSession session = client.beginRestore(name, userKey);
    const fs::path out = fs::path(destDir) / name;
    fs::create_directories(out.parent_path());
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("cannot create " + out.string());
    // Chunks stream straight to disk; the file never materializes in memory.
    session.streamTo([&file](ByteView bytes) {
      file.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
      if (!file) throw std::runtime_error("short write");
    });
    // Flush explicitly: destructor-time flush errors are swallowed and
    // would let a truncated restore count as success.
    file.close();
    if (file.fail())
      throw std::runtime_error("failed to finish writing " + out.string());
    ++files;
  }
  printf("restored %zu files into %s\n", files, destDir.c_str());
  dumpStats(store, stats);
  return 0;
}

int doDelete(const std::string& storeDir, const std::string& name,
             StatsFlag stats = StatsFlag::kNone) {
  FileBackupStore store(storeDir, g_storeOptions);
  DedupClient client(store);
  if (!client.deleteBackup(name)) {
    fprintf(stderr, "no backup named '%s'\n", name.c_str());
    return 1;
  }
  printf("deleted '%s'; run `backup_system gc %s` to reclaim space\n",
         name.c_str(), storeDir.c_str());
  dumpStats(store, stats);
  return 0;
}

int doGc(const std::string& storeDir, StatsFlag stats = StatsFlag::kNone) {
  FileBackupStore store(storeDir, g_storeOptions);
  const GcStats gc = store.collectGarbage();
  printf("gc: reclaimed %llu chunks (%.2f MB) from %llu containers, "
         "relocated %llu live chunks, demoted %llu containers\n",
         static_cast<unsigned long long>(gc.chunksReclaimed),
         static_cast<double>(gc.bytesReclaimed) / 1e6,
         static_cast<unsigned long long>(gc.containersCompacted),
         static_cast<unsigned long long>(gc.chunksRelocated),
         static_cast<unsigned long long>(gc.containersDemoted));
  dumpStats(store, stats);
  return 0;
}

int doVerify(const std::string& storeDir,
             StatsFlag stats = StatsFlag::kNone) {
  FileBackupStore store(storeDir, g_storeOptions);
  printRecovery(store);
  const StoreCheckReport report = store.verify();
  printf("verify: %llu chunks, %llu containers, %llu backups checked\n",
         static_cast<unsigned long long>(report.chunksChecked),
         static_cast<unsigned long long>(report.containersChecked),
         static_cast<unsigned long long>(report.backupsChecked));
  for (const std::string& error : report.errors)
    fprintf(stderr, "  error: %s\n", error.c_str());
  printf("%s\n", report.ok() ? "store is consistent" : "STORE IS DAMAGED");
  dumpStats(store, stats);
  return report.ok() ? 0 : 1;
}

int doList(const std::string& storeDir) {
  FileBackupStore store(storeDir, g_storeOptions);
  for (const std::string& name : store.listBackups())
    printf("%s\n", name.c_str());
  return 0;
}

int doStats(const std::string& storeDir,
            StatsFlag stats = StatsFlag::kText) {
  FileBackupStore store(storeDir, g_storeOptions);
  if (stats == StatsFlag::kJson) {
    dumpStats(store, stats);
    return 0;
  }
  printf("store %s: %llu unique chunks, %.2f MB stored, %zu containers, "
         "%zu backups\n",
         storeDir.c_str(),
         static_cast<unsigned long long>(store.stats().uniqueChunks),
         store.stats().storedBytes / 1e6, store.containerCount(),
         store.listBackups().size());
  dumpStats(store, stats);
  return 0;
}

// ---- Remote mode: the same operations through a freqdedupd daemon ----

using server::RemoteDedupClient;

/// Streams one file through a remote backup session in kIoBufferBytes
/// appends — the remote twin of backupFile().
server::RemoteBackupResult remoteBackupFile(RemoteDedupClient& client,
                                            const std::string& name,
                                            const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  const server::RemoteBackup backup = client.openBackup(name);
  ByteVec buffer(kIoBufferBytes);
  while (in) {
    in.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
    const auto got = static_cast<size_t>(in.gcount());
    if (got == 0) break;
    client.append(backup, ByteView(buffer.data(), got));
  }
  if (in.bad() || (in.fail() && !in.eof())) {
    client.abortBackup(backup);
    throw std::runtime_error("read error on " + path.string());
  }
  return client.finishBackup(backup);
}

int doRemoteBackup(const std::string& address, const std::string& tenant,
                   const std::string& sourceDir,
                   const std::string& passphrase) {
  RemoteDedupClient client(address, tenant, passphrase);
  size_t files = 0, newChunks = 0, dupChunks = 0, crossTenant = 0;
  for (const auto& entry : fs::recursive_directory_iterator(sourceDir)) {
    if (!entry.is_regular_file()) continue;
    const std::string rel =
        fs::relative(entry.path(), sourceDir).generic_string();
    const server::RemoteBackupResult result =
        remoteBackupFile(client, rel, entry.path());
    ++files;
    newChunks += result.newChunks;
    dupChunks += result.duplicateChunks;
    crossTenant += result.crossTenantDuplicates;
  }
  printf("backed up %zu files as tenant '%s': %zu new chunks, %zu "
         "duplicates (%zu cross-tenant)\n",
         files, tenant.c_str(), newChunks, dupChunks, crossTenant);
  return 0;
}

int doRemoteRestore(const std::string& address, const std::string& tenant,
                    const std::string& destDir,
                    const std::string& passphrase) {
  RemoteDedupClient client(address, tenant, passphrase);
  size_t files = 0;
  for (const std::string& name : client.listBackups()) {
    const fs::path out = fs::path(destDir) / name;
    fs::create_directories(out.parent_path());
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("cannot create " + out.string());
    client.restore(name, [&file](ByteView bytes) {
      file.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
      if (!file) throw std::runtime_error("short write");
    });
    file.close();
    if (file.fail())
      throw std::runtime_error("failed to finish writing " + out.string());
    ++files;
  }
  printf("restored %zu files into %s\n", files, destDir.c_str());
  return 0;
}

int doRemoteDelete(const std::string& address, const std::string& tenant,
                   const std::string& passphrase, const std::string& name) {
  RemoteDedupClient client(address, tenant, passphrase);
  if (!client.deleteBackup(name)) {
    fprintf(stderr, "no backup named '%s'\n", name.c_str());
    return 1;
  }
  printf("deleted '%s' (tenant '%s')\n", name.c_str(), tenant.c_str());
  return 0;
}

int doRemoteList(const std::string& address, const std::string& tenant,
                 const std::string& passphrase) {
  RemoteDedupClient client(address, tenant, passphrase);
  for (const std::string& name : client.listBackups())
    printf("%s\n", name.c_str());
  return 0;
}

int doRemoteStats(const std::string& address, const std::string& tenant,
                  const std::string& passphrase) {
  RemoteDedupClient client(address, tenant, passphrase);
  printf("%s\n", client.statsJson().c_str());
  return 0;
}

int doRemoteShutdown(const std::string& address, const std::string& tenant,
                     const std::string& passphrase) {
  RemoteDedupClient client(address, tenant, passphrase);
  client.shutdownServer();
  printf("shutdown requested\n");
  return 0;
}

int doServe(const std::string& storeDir, const std::string& address) {
  server::ServerOptions options;
  options.address = address;
  options.store = g_storeOptions;
  server::FreqDedupServer srv(storeDir, options);
  srv.start();
  printf("freqdedupd listening on %s (store %s)\n",
         srv.boundAddress().str().c_str(), storeDir.c_str());
  fflush(stdout);
  srv.waitShutdownRequested();
  srv.stop();
  printf("freqdedupd stopped\n");
  return 0;
}

int doDemo() {
  const fs::path base = fs::temp_directory_path() / "fdd_backup_demo";
  fs::remove_all(base);
  const fs::path source = base / "source";
  const fs::path storeDir = base / "store";
  const fs::path restored = base / "restored";
  fs::create_directories(source / "docs");

  // A small synthetic tree with duplicated content across files.
  Rng rng(1);
  ByteVec shared(512 * 1024);
  for (auto& b : shared) b = static_cast<uint8_t>(rng.next());
  for (int i = 0; i < 5; ++i) {
    // Each file is the shared content with one clustered 4 KB edit, so
    // content-defined chunking deduplicates everything else across files.
    ByteVec content = shared;
    const size_t at = rng.pickIndex(content.size() - 4096);
    for (size_t k = 0; k < 4096; ++k) content[at + k] ^= 0xFF;
    writeFile((source / "docs" / ("file" + std::to_string(i) + ".bin"))
                  .string(),
              content);
  }

  doBackup(storeDir.string(), source.string(), "demo-pass");

  // Delete one backup, reclaim its unshared chunks, and verify the store
  // still checks out before restoring the survivors.
  doDelete(storeDir.string(), "docs/file0.bin");
  doGc(storeDir.string());
  bool ok = doVerify(storeDir.string()) == 0;
  fs::remove(source / "docs" / "file0.bin");

  doRestore(storeDir.string(), restored.string(), "demo-pass");

  // Verify every surviving file restored byte-for-byte.
  for (const auto& entry : fs::recursive_directory_iterator(source)) {
    if (!entry.is_regular_file()) continue;
    const auto rel = fs::relative(entry.path(), source);
    ok = ok && readFile(entry.path().string()) ==
                   readFile((restored / rel).string());
  }
  printf("verification: %s\n", ok ? "all files bit-exact" : "MISMATCH");
  doStats(storeDir.string());
  fs::remove_all(base);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  StatsFlag stats = extractStatsFlag(argc, argv);
  const std::string remote = extractOption(argc, argv, "remote");
  std::string tenant = extractOption(argc, argv, "tenant");
  if (tenant.empty()) tenant = "default";
  // Tenant credential for remote subcommands that take no positional
  // passphrase (the daemon authenticates every Hello against the tenant's
  // registered verifier).
  const std::string pass = extractOption(argc, argv, "pass");
  try {
    extractStoreOptions(argc, argv);
  } catch (const std::exception& e) {
    fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const std::string mode = argc > 1 ? argv[1] : "demo";
  try {
    if (!remote.empty()) {
      if (mode == "backup" && argc == 4)
        return doRemoteBackup(remote, tenant, argv[2], argv[3]);
      if (mode == "restore" && argc == 4)
        return doRemoteRestore(remote, tenant, argv[2], argv[3]);
      if (mode == "delete" && argc == 3)
        return doRemoteDelete(remote, tenant, pass, argv[2]);
      if (mode == "list" && argc == 2)
        return doRemoteList(remote, tenant, pass);
      if (mode == "stats" && argc == 2)
        return doRemoteStats(remote, tenant, pass);
      if (mode == "shutdown" && argc == 2)
        return doRemoteShutdown(remote, tenant, pass);
      fprintf(stderr,
              "usage (remote): backup_system backup <source> <passphrase> "
              "--remote=<addr> [--tenant=<id>]\n"
              "                backup_system restore <dest> <passphrase> "
              "--remote=<addr> [--tenant=<id>]\n"
              "                backup_system delete <name> --remote=<addr> "
              "[--pass=<passphrase>]\n"
              "                backup_system list|stats|shutdown "
              "--remote=<addr> [--pass=<passphrase>]\n");
      return 2;
    }
    if (mode == "serve" && argc == 4) return doServe(argv[2], argv[3]);
    if (mode == "backup" && argc == 5)
      return doBackup(argv[2], argv[3], argv[4], stats);
    if (mode == "restore" && argc == 5)
      return doRestore(argv[2], argv[3], argv[4], stats);
    if (mode == "delete" && argc == 4)
      return doDelete(argv[2], argv[3], stats);
    if (mode == "gc" && argc == 3) return doGc(argv[2], stats);
    if (mode == "verify" && argc == 3) return doVerify(argv[2], stats);
    if (mode == "list" && argc == 3) return doList(argv[2]);
    if (mode == "stats" && argc == 3)
      return doStats(argv[2],
                     stats == StatsFlag::kJson ? StatsFlag::kJson
                                               : StatsFlag::kText);
    if (mode == "demo") return doDemo();
  } catch (const std::exception& e) {
    fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  fprintf(stderr,
          "usage: backup_system backup <store> <source> <passphrase>\n"
          "       backup_system restore <store> <dest> <passphrase>\n"
          "       backup_system delete <store> <name>\n"
          "       backup_system gc <store>\n"
          "       backup_system verify <store>\n"
          "       backup_system list <store>\n"
          "       backup_system stats <store> [--stats=json]\n"
          "       backup_system serve <store> <address>\n"
          "       backup_system demo\n"
          "flags: --stats | --stats=json   dump the metrics registry after\n"
          "       any subcommand above\n"
          "       --remote=<addr> [--tenant=<id>]   run backup/restore/\n"
          "       delete/list/stats/shutdown against a freqdedupd daemon\n"
          "store: --compress=<none|zstd|deflate>  codec for new containers\n"
          "       --cache-bytes=<n[kmg]>  block-cache byte budget\n"
          "       --demote-on-gc          move cold containers to <store>/cold\n"
          "       --hot-bytes=<n[kmg]>    hot-tier target (implies demotion)\n"
          "       --keep-hot=<n>          newest containers never demoted\n");
  return 2;
}
