// Attack demo: what an honest-but-curious adversary learns from watching a
// deterministic encrypted-deduplication upload stream.
//
// Generates an FSL-like backup series, takes one prior backup as the
// adversary's auxiliary information, and runs the paper's three inference
// attacks against the MLE-encrypted latest backup.
//
// Build and run:  ./build/examples/attack_demo
#include <cstdio>

#include "core/attack_eval.h"
#include "core/attacks.h"
#include "core/defense.h"
#include "datagen/fsl_gen.h"

using namespace freqdedup;

int main() {
  // A storage workload: 6 users, 5 monthly full backups.
  printf("generating FSL-like backup series...\n");
  const Dataset dataset = generateFslDataset();
  const size_t targetIndex = dataset.backupCount() - 1;
  const size_t auxIndex = targetIndex - 1;

  // What the adversary sees: the ciphertext chunk stream of the latest
  // backup (deterministic MLE) ...
  const EncryptedTrace target =
      mleEncryptTrace(dataset.backups[targetIndex].records, kFslFpBits);
  // ... and what it already knows: the plaintext chunks of a prior backup.
  const auto& aux = dataset.backups[auxIndex].records;

  printf("target backup '%s': %zu logical chunks, %zu unique\n",
         dataset.backups[targetIndex].label.c_str(),
         target.records.size(),
         uniqueFingerprints(target.records).size());
  printf("auxiliary backup '%s': %zu logical chunks\n\n",
         dataset.backups[auxIndex].label.c_str(), aux.size());

  // Attack 1: classical frequency analysis (Algorithm 1).
  const AttackResult basic = basicAttack(target.records, aux);
  printf("basic attack:    %7.4f%% of unique chunks inferred\n",
         100.0 * inferenceRate(basic, target));

  // Attack 2: the locality-based attack (Algorithm 2, u=1 v=15).
  AttackConfig config;
  config.w = 2000;  // scaled from the paper's 200k (see EXPERIMENTS.md)
  const AttackResult locality = localityAttack(target.records, aux, config);
  printf("locality attack: %7.4f%% inferred (%llu pairs processed)\n",
         100.0 * inferenceRate(locality, target),
         static_cast<unsigned long long>(locality.processedPairs));

  // Attack 3: the advanced locality-based attack (Algorithm 3) adds the
  // chunk-size channel — block ciphers preserve the block count.
  config.sizeAware = true;
  const AttackResult advanced = localityAttack(target.records, aux, config);
  printf("advanced attack: %7.4f%% inferred\n",
         100.0 * inferenceRate(advanced, target));

  // Known-plaintext mode: a stolen device leaks 0.1% of the target's pairs.
  Rng rng(3);
  config.mode = AttackMode::kKnownPlaintext;
  config.w = 5000;
  config.leakedPairs = sampleLeakedPairs(target, 0.001, rng);
  const AttackResult kp = localityAttack(target.records, aux, config);
  printf("advanced attack + 0.1%% leakage: %7.4f%% inferred\n",
         100.0 * inferenceRate(kp, target));

  printf("\nTakeaway: deterministic encrypted deduplication leaks enough\n"
         "frequency and adjacency structure for an adversary to map a large\n"
         "fraction of ciphertext chunks back to known plaintext chunks.\n");
  return 0;
}
