// Defense demo: the same adversary as attack_demo, now facing MinHash
// encryption and scrambling. Shows the inference rate collapsing while the
// storage saving stays close to plain MLE deduplication.
//
// Build and run:  ./build/examples/defense_demo
#include <cstdio>

#include "core/attack_eval.h"
#include "core/attacks.h"
#include "core/defense.h"
#include "core/storage_saving.h"
#include "datagen/fsl_gen.h"

using namespace freqdedup;

namespace {

double attackPct(const EncryptedTrace& target,
                 const std::vector<ChunkRecord>& aux) {
  AttackConfig config;
  config.sizeAware = true;  // strongest attack: advanced, known-plaintext
  config.mode = AttackMode::kKnownPlaintext;
  config.w = 5000;
  Rng rng(11);
  config.leakedPairs = sampleLeakedPairs(target, 0.002, rng);
  return 100.0 * inferenceRate(localityAttack(target.records, aux, config),
                               target);
}

}  // namespace

int main() {
  printf("generating FSL-like backup series...\n");
  const Dataset dataset = generateFslDataset();
  const size_t targetIndex = dataset.backupCount() - 1;
  const auto& plainTarget = dataset.backups[targetIndex].records;
  const auto& aux = dataset.backups[targetIndex - 1].records;

  // Baseline: deterministic MLE.
  const EncryptedTrace mleTarget = mleEncryptTrace(plainTarget, kFslFpBits);
  printf("\nadvanced attack (0.2%% leakage) against...\n");
  printf("  deterministic MLE:      %6.2f%%\n", attackPct(mleTarget, aux));

  // Defense 1: MinHash encryption (Algorithm 4) — one key per segment,
  // derived from the segment's minimum fingerprint.
  DefenseConfig minhashOnly;
  const EncryptedTrace minhashTarget =
      minHashEncryptTrace(plainTarget, minhashOnly);
  printf("  MinHash encryption:     %6.2f%%\n",
         attackPct(minhashTarget, aux));

  // Defense 2: + scrambling (Algorithm 5) — per-segment order shuffle that
  // destroys the chunk-locality signal the attack crawls on.
  DefenseConfig combined;
  combined.scramble = true;
  const EncryptedTrace combinedTarget =
      minHashEncryptTrace(plainTarget, combined);
  printf("  combined (+scrambling): %6.2f%%\n",
         attackPct(combinedTarget, aux));

  // The price: storage saving across the whole series.
  CumulativeDedup mleDedup, combinedDedup;
  SavingPoint mlePoint, combinedPoint;
  for (const auto& backup : dataset.backups) {
    mlePoint = mleDedup.addBackup(
        mleEncryptTrace(backup.records, kFslFpBits).records);
    combinedPoint = combinedDedup.addBackup(
        minHashEncryptTrace(backup.records, combined).records);
  }
  printf("\nstorage saving after %zu backups:\n", dataset.backupCount());
  printf("  deterministic MLE:      %6.2f%% (dedup %.1fx)\n",
         mlePoint.savingPct, mlePoint.dedupRatio);
  printf("  combined defense:       %6.2f%% (dedup %.1fx)\n",
         combinedPoint.savingPct, combinedPoint.dedupRatio);
  printf("\nTakeaway: breaking determinism per segment and destroying\n"
         "chunk locality suppresses frequency analysis to a fraction of a\n"
         "percent while keeping deduplication effective.\n");
  return 0;
}
