// Calibration harness: prints dataset statistics and headline attack numbers
// so generator parameters can be tuned against the paper's reported shapes.
// Not part of the benchmark suite.
#include <chrono>
#include <cstdio>

#include "chunking/cdc_chunker.h"
#include "core/attack_eval.h"
#include "core/attacks.h"
#include "core/defense.h"
#include "datagen/fsl_gen.h"
#include "datagen/snapshot_gen.h"
#include "datagen/vm_gen.h"

using namespace freqdedup;

namespace {

double nowSec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

void datasetReport(const Dataset& d) {
  const DatasetStats s = computeDatasetStats(d);
  printf("%s: %zu backups, logical %.2f GB (%llu chunks), unique %.2f GB "
         "(%llu chunks), dedup %.1fx saving %.1f%%\n",
         d.name.c_str(), d.backups.size(),
         s.logicalBytes / 1e9, (unsigned long long)s.logicalChunks,
         s.uniqueBytes / 1e9, (unsigned long long)s.uniqueChunks,
         s.dedupRatio(), s.storageSavingPct());
  for (const auto& b : d.backups) {
    printf("  %-10s logical=%zu unique=%zu\n", b.label.c_str(),
           b.chunkCount(), b.uniqueChunkCount());
  }
}

void attackReport(const Dataset& d, size_t auxIdx, size_t targetIdx,
                  int fpBits) {
  const EncryptedTrace target =
      mleEncryptTrace(d.backups[targetIdx].records, fpBits);
  const auto& aux = d.backups[auxIdx].records;

  double t0 = nowSec();
  const AttackResult basic = basicAttack(target.records, aux);
  double tBasic = nowSec() - t0;

  AttackConfig cfg;  // u=1 v=15 w=200k
  const char* wEnv = getenv("CAL_W");
  if (wEnv != nullptr) cfg.w = static_cast<size_t>(atoll(wEnv));
  t0 = nowSec();
  const AttackResult loc = localityAttack(target.records, aux, cfg);
  double tLoc = nowSec() - t0;

  cfg.sizeAware = true;
  t0 = nowSec();
  const AttackResult adv = localityAttack(target.records, aux, cfg);
  double tAdv = nowSec() - t0;

  printf("  aux=%zu -> target=%zu: basic=%.4f%% loc=%.2f%% adv=%.2f%% "
         "(%.1fs/%.1fs/%.1fs) [loc T=%zu proc=%llu correct=%llu]\n",
         auxIdx, targetIdx, 100.0 * inferenceRate(basic, target),
         100.0 * inferenceRate(loc, target),
         100.0 * inferenceRate(adv, target), tBasic, tLoc, tAdv,
         loc.inferred.size(), (unsigned long long)loc.processedPairs,
         (unsigned long long)correctInferences(loc, target));
}

void defenseReport(const Dataset& d, size_t auxIdx, size_t targetIdx,
                   int fpBits, uint64_t avgChunk) {
  DefenseConfig dc;
  dc.fpBits = fpBits;
  dc.segment.avgChunkBytes = avgChunk;
  AttackConfig cfg;
  cfg.mode = AttackMode::kKnownPlaintext;
  cfg.w = 500'000;
  cfg.sizeAware = true;
  Rng rng(99);

  for (const bool scramble : {false, true}) {
    dc.scramble = scramble;
    const EncryptedTrace target =
        minHashEncryptTrace(d.backups[targetIdx].records, dc);
    cfg.leakedPairs = sampleLeakedPairs(target, 0.002, rng);
    const AttackResult adv =
        localityAttack(target.records, d.backups[auxIdx].records, cfg);
    printf("  defense %-9s leak=0.2%%: adv=%.3f%%\n",
           scramble ? "combined" : "minhash",
           100.0 * inferenceRate(adv, target));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";

  if (which == "all" || which == "fsl") {
    double t0 = nowSec();
    const Dataset fsl = generateFslDataset();
    printf("[fsl gen %.1fs]\n", nowSec() - t0);
    datasetReport(fsl);
    for (size_t aux = 0; aux + 1 < fsl.backups.size(); ++aux)
      attackReport(fsl, aux, fsl.backups.size() - 1, kFslFpBits);
    defenseReport(fsl, 2, fsl.backups.size() - 1, kFslFpBits, 8192);
  }
  if (which == "all" || which == "vm") {
    double t0 = nowSec();
    const Dataset vm = generateVmDataset();
    printf("[vm gen %.1fs]\n", nowSec() - t0);
    datasetReport(vm);
    for (size_t aux : {0u, 3u, 7u, 8u, 10u, 11u})
      attackReport(vm, aux, vm.backups.size() - 1, kFslFpBits);
    defenseReport(vm, 8, vm.backups.size() - 1, kFslFpBits, 4096);
  }
  if (which == "all" || which == "syn") {
    double t0 = nowSec();
    const CdcChunker chunker;
    const Dataset syn =
        generateSyntheticDataset(CorpusParams{}, SnapshotGenParams{}, chunker);
    printf("[syn gen %.1fs]\n", nowSec() - t0);
    datasetReport(syn);
    for (size_t aux : {0u, 4u, 9u})
      attackReport(syn, aux, syn.backups.size() - 1, kFullFpBits);
    defenseReport(syn, 0, 5, kFullFpBits, 8192);
  }
  return 0;
}
