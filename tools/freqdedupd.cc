// freqdedupd: the dedup server daemon.
//
// Serves the wire protocol (src/server/wire.h) over a Unix or TCP socket on
// top of one persistent store, multiplexing any number of concurrent tenant
// connections. Runs in the foreground; stop it with SIGINT/SIGTERM or a
// remote Shutdown request (`backup_system shutdown --remote=<addr>`).
//
// Usage:
//   freqdedupd <store-dir> <address> [options]
//     <address>               unix:<path> | tcp:<host>:<port> | <path>
//   options:
//     --threads=<n>           request worker threads (default 4)
//     --quota-bytes=<n[kmg]>  per-tenant logical-byte quota (default: none)
//     --quota-backups=<n>     per-tenant backup-count quota (default: none)
//     --compress=<codec>      codec for new containers: none|zstd|deflate
//     --cache-bytes=<n[kmg]>  block-cache byte budget (default 64m)
//     --demote-on-gc          demote cold containers during GC
//     --hot-bytes=<n[kmg]>    hot-tier byte target (implies --demote-on-gc)
//     --keep-hot=<n>          newest containers never demoted (default 1)
//     --no-shutdown           ignore remote Shutdown requests
//     --stats=json            dump the metrics registry on exit
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "server/server.h"

using namespace freqdedup;
using namespace freqdedup::server;

namespace {

FreqDedupServer* g_server = nullptr;

void onSignal(int) {
  // Async-signal-safe: requestShutdown is one atomic store, observed by
  // waitShutdownRequested's timed wait. Cleanup happens back in main().
  if (g_server != nullptr) g_server->requestShutdown();
  // Restore defaults so a second signal stays lethal if the drain wedges.
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  std::string storeDir, address;
  ServerOptions options;
  bool statsJson = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      options.threads =
          static_cast<uint32_t>(std::stoul(arg.substr(strlen("--threads="))));
    } else if (arg.rfind("--quota-bytes=", 0) == 0) {
      options.quota.maxLogicalBytes =
          parseByteSize(arg.substr(strlen("--quota-bytes=")));
    } else if (arg.rfind("--quota-backups=", 0) == 0) {
      options.quota.maxBackups =
          std::stoull(arg.substr(strlen("--quota-backups=")));
    } else if (arg.rfind("--compress=", 0) == 0) {
      const std::string name = arg.substr(strlen("--compress="));
      const auto codec = codecFromName(name);
      if (!codec) {
        fprintf(stderr, "unknown codec '%s' (none|zstd|deflate)\n",
                name.c_str());
        return 2;
      }
      options.store.codec = *codec;
    } else if (arg.rfind("--cache-bytes=", 0) == 0) {
      options.store.blockCacheBytes =
          parseByteSize(arg.substr(strlen("--cache-bytes=")));
    } else if (arg == "--demote-on-gc") {
      options.store.coldTier.demoteOnGc = true;
    } else if (arg.rfind("--hot-bytes=", 0) == 0) {
      options.store.coldTier.hotBytes =
          parseByteSize(arg.substr(strlen("--hot-bytes=")));
      options.store.coldTier.demoteOnGc = true;
    } else if (arg.rfind("--keep-hot=", 0) == 0) {
      options.store.coldTier.keepHotRecent =
          static_cast<uint32_t>(std::stoul(arg.substr(strlen("--keep-hot="))));
    } else if (arg == "--no-shutdown") {
      options.allowShutdown = false;
    } else if (arg == "--stats=json") {
      statsJson = true;
    } else if (storeDir.empty()) {
      storeDir = arg;
    } else if (address.empty()) {
      address = arg;
    } else {
      fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (storeDir.empty() || address.empty()) {
    fprintf(stderr,
            "usage: freqdedupd <store-dir> <address> [--threads=N]\n"
            "                  [--quota-bytes=N[kmg]] [--quota-backups=N]\n"
            "                  [--compress=none|zstd|deflate]\n"
            "                  [--cache-bytes=N[kmg]] [--demote-on-gc]\n"
            "                  [--hot-bytes=N[kmg]] [--keep-hot=N]\n"
            "                  [--no-shutdown] [--stats=json]\n"
            "  <address> = unix:<path> | tcp:<host>:<port> | <path>\n");
    return 2;
  }

  options.address = address;
  try {
    FreqDedupServer server(storeDir, options);
    server.start();
    g_server = &server;
    // First SIGINT/SIGTERM drains gracefully; a second one kills outright.
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    // Scripts wait for this exact line before connecting.
    printf("freqdedupd listening on %s (store %s)\n",
           server.boundAddress().str().c_str(), storeDir.c_str());
    fflush(stdout);
    server.waitShutdownRequested();
    server.stop();
    g_server = nullptr;
    if (statsJson) {
      obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::global().snapshot();
      snapshot.merge(server.store().metricsSnapshot());
      printf("%s\n", snapshot.toJson().c_str());
    }
    printf("freqdedupd stopped\n");
    return 0;
  } catch (const std::exception& e) {
    fprintf(stderr, "freqdedupd: %s\n", e.what());
    return 1;
  }
}
