// fsck: offline consistency checker for a persistent backup store.
//
// Opens the store (which runs crash-safe recovery: LogKv replay, container
// trailer validation, orphan removal), then cross-checks every index entry
// against its container, every backup manifest against the index, and every
// reference count against the manifest occurrence sums.
//
// Usage: fsck <store-dir> [--gc]
//   --gc   additionally reclaim unreferenced chunks and compact containers
//
// Exit code: 0 when the store is consistent, 1 when damage was found,
// 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "storage/file_backup_store.h"

using namespace freqdedup;

int main(int argc, char** argv) {
  std::string dir;
  bool runGc = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gc") == 0) {
      runGc = true;
    } else if (dir.empty()) {
      dir = argv[i];
    } else {
      dir.clear();
      break;
    }
  }
  if (dir.empty()) {
    fprintf(stderr, "usage: fsck <store-dir> [--gc]\n");
    return 2;
  }

  try {
    FileBackupStore store(dir);
    const StoreRecoveryStats& rs = store.recoveryStats();
    printf("recovery: %llu containers validated, %llu orphans removed, "
           "%llu corrupt quarantined, %llu index entries dropped\n",
           static_cast<unsigned long long>(rs.containersValidated),
           static_cast<unsigned long long>(rs.orphanContainersRemoved),
           static_cast<unsigned long long>(rs.corruptContainers),
           static_cast<unsigned long long>(rs.entriesDropped));

    const StoreCheckReport report = store.verify();
    printf("checked: %llu chunks, %llu containers, %llu backups\n",
           static_cast<unsigned long long>(report.chunksChecked),
           static_cast<unsigned long long>(report.containersChecked),
           static_cast<unsigned long long>(report.backupsChecked));
    for (const std::string& error : report.errors)
      fprintf(stderr, "error: %s\n", error.c_str());

    if (runGc) {
      const GcStats gc = store.collectGarbage();
      printf("gc: reclaimed %llu chunks (%llu bytes), compacted %llu "
             "containers, relocated %llu live chunks\n",
             static_cast<unsigned long long>(gc.chunksReclaimed),
             static_cast<unsigned long long>(gc.bytesReclaimed),
             static_cast<unsigned long long>(gc.containersCompacted),
             static_cast<unsigned long long>(gc.chunksRelocated));
    }

    printf("%s\n", report.ok() ? "clean" : "DAMAGED");
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    fprintf(stderr, "fsck: %s\n", e.what());
    return 1;
  }
}
