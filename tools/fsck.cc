// fsck: offline consistency checker for a persistent backup store.
//
// Opens the store (which runs crash-safe recovery: LogKv replay, container
// trailer validation, orphan removal), then cross-checks every index entry
// against its container, every backup manifest against the index, and every
// reference count against the manifest occurrence sums.
//
// Usage: fsck <store-dir> [--gc] [--deep <passphrase>] [--threads N]
//             [--stats[=json]]
//   --gc      additionally reclaim unreferenced chunks and compact containers
//   --deep    additionally stream-restore every backup through a discarding
//             sink (RestoreSession), verifying each chunk's ciphertext and
//             plaintext fingerprints end-to-end — in O(read window) memory.
//             Requires the passphrase the backups were committed with
//             (backup_system-compatible). Rides the batched restore engine:
//             container-locality batches, read-ahead, parallel decrypt.
//             Reports per-phase wall times and the store's container-read
//             counters (loads, cache hits, batched reads) when done.
//   --threads worker threads for --deep (default: all hardware threads).
//   --cache-bytes=N[kmg]  byte budget of the block cache the deep pass reads
//             through (default 64m; larger budgets keep more shared
//             containers resident across backups).
//   --stats   dump the full metrics registry after all phases (text, or one
//             JSON object with --stats=json).
//
// Exit code: 0 when the store is consistent, 1 when damage was found,
// 2 on usage errors.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "client/dedup_client.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "storage/file_backup_store.h"

using namespace freqdedup;

namespace {

/// Wall-clock milliseconds spent in one fsck phase.
class PhaseTimer {
 public:
  PhaseTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Streams every committed backup through a counting sink; any fingerprint
/// or size mismatch surfaces as a per-backup error. Returns the number of
/// damaged backups.
size_t deepVerify(FileBackupStore& store, const std::string& passphrase,
                  uint32_t threads) {
  // Restore-only client on the batched engine: the deep verify reads whole
  // containers, keeps them in the read cache across backups that share
  // chunks, and decrypt+verify runs on `threads` workers.
  RestoreOptions restoreOptions;
  restoreOptions.parallelism = std::max(threads, 1u);
  restoreOptions.readAheadBatches = 4;
  DedupClient client(store, restoreOptions);
  const AesKey userKey = userKeyFromPassphrase(passphrase);
  size_t damaged = 0;
  for (const std::string& name : client.listBackups()) {
    try {
      RestoreSession session = client.beginRestore(name, userKey);
      uint64_t bytes = 0;
      session.streamTo([&bytes](ByteView b) { bytes += b.size(); });
      printf("deep: %s OK (%llu bytes, %zu chunks)\n", name.c_str(),
             static_cast<unsigned long long>(bytes), session.chunkCount());
    } catch (const std::exception& e) {
      fprintf(stderr, "deep: %s FAILED: %s\n", name.c_str(), e.what());
      ++damaged;
    }
  }
  return damaged;
}

}  // namespace

enum class StatsDump { kNone, kText, kJson };

int main(int argc, char** argv) {
  std::string dir;
  std::string deepPassphrase;
  uint32_t threads = std::max(std::thread::hardware_concurrency(), 1u);
  StoreOptions storeOptions;
  bool runGc = false;
  bool runDeep = false;
  bool usageError = false;
  StatsDump statsFlag = StatsDump::kNone;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gc") == 0) {
      runGc = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      statsFlag = StatsDump::kText;
    } else if (std::strcmp(argv[i], "--stats=json") == 0) {
      statsFlag = StatsDump::kJson;
    } else if (std::strcmp(argv[i], "--deep") == 0) {
      // The passphrase must follow and must not look like a flag —
      // otherwise `--deep --gc` would silently use "--gc" as the
      // passphrase and report a clean store as DAMAGED.
      if (i + 1 >= argc || argv[i + 1][0] == '-') {
        usageError = true;
        break;
      }
      runDeep = true;
      deepPassphrase = argv[++i];
    } else if (std::strncmp(argv[i], "--cache-bytes=", 14) == 0) {
      storeOptions.blockCacheBytes = server::parseByteSize(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const long n = i + 1 < argc ? std::atol(argv[i + 1]) : 0;
      if (n <= 0) {
        usageError = true;
        break;
      }
      threads = static_cast<uint32_t>(n);
      ++i;
    } else if (dir.empty() && argv[i][0] != '-') {
      dir = argv[i];
    } else {
      usageError = true;
      break;
    }
  }
  if (dir.empty() || usageError) {
    fprintf(stderr,
            "usage: fsck <store-dir> [--gc] [--deep <passphrase>] "
            "[--threads N] [--cache-bytes=N[kmg]] [--stats[=json]]\n");
    return 2;
  }

  try {
    const PhaseTimer openTimer;
    FileBackupStore store(dir, storeOptions);
    const double openMs = openTimer.elapsedMs();
    const StoreRecoveryStats& rs = store.recoveryStats();
    printf("recovery: %llu containers validated, %llu orphans removed, "
           "%llu corrupt quarantined, %llu index entries dropped\n",
           static_cast<unsigned long long>(rs.containersValidated),
           static_cast<unsigned long long>(rs.orphanContainersRemoved),
           static_cast<unsigned long long>(rs.corruptContainers),
           static_cast<unsigned long long>(rs.entriesDropped));
    {
      // Index recovery breakdown: how much state came from the checkpoint
      // vs. from replaying the WAL tail past its watermark.
      const obs::MetricsSnapshot open = store.metricsSnapshot();
      printf("index: checkpoint %s (%llu records), WAL tail replayed: "
             "%llu records (%llu bytes)\n",
             open.counter("ckpt.loads") > 0 ? "loaded" : "absent",
             static_cast<unsigned long long>(
                 open.counter("ckpt.load_records")),
             static_cast<unsigned long long>(
                 open.counter("wal.replay.records")),
             static_cast<unsigned long long>(open.counter("wal.replay.bytes")));
    }

    const PhaseTimer verifyTimer;
    const StoreCheckReport report = store.verify();
    const double verifyMs = verifyTimer.elapsedMs();
    printf("checked: %llu chunks, %llu containers, %llu backups\n",
           static_cast<unsigned long long>(report.chunksChecked),
           static_cast<unsigned long long>(report.containersChecked),
           static_cast<unsigned long long>(report.backupsChecked));
    for (const std::string& error : report.errors)
      fprintf(stderr, "error: %s\n", error.c_str());

    size_t deepDamaged = 0;
    double deepMs = 0;
    if (runDeep) {
      const PhaseTimer deepTimer;
      deepDamaged = deepVerify(store, deepPassphrase, threads);
      deepMs = deepTimer.elapsedMs();
    }

    double gcMs = 0;
    if (runGc) {
      const PhaseTimer gcTimer;
      const GcStats gc = store.collectGarbage();
      gcMs = gcTimer.elapsedMs();
      printf("gc: reclaimed %llu chunks (%llu bytes), compacted %llu "
             "containers, relocated %llu live chunks\n",
             static_cast<unsigned long long>(gc.chunksReclaimed),
             static_cast<unsigned long long>(gc.bytesReclaimed),
             static_cast<unsigned long long>(gc.containersCompacted),
             static_cast<unsigned long long>(gc.chunksRelocated));
    }

    printf("phases: open %.1f ms, verify %.1f ms", openMs, verifyMs);
    if (runDeep) printf(", deep %.1f ms", deepMs);
    if (runGc) printf(", gc %.1f ms", gcMs);
    printf("\n");
    if (runDeep) {
      // The deep pass is where read locality matters: loads vs cache hits
      // shows how well backups shared containers across the sweep.
      const obs::MetricsSnapshot ms = store.metricsSnapshot();
      printf(
          "deep reads: %llu container loads, %llu cache hits, "
          "%llu chunk reads in %llu batches\n",
          static_cast<unsigned long long>(ms.counter("store.container_loads")),
          static_cast<unsigned long long>(
              ms.counter("store.read_cache_hits")),
          static_cast<unsigned long long>(ms.counter("store.chunk_reads")),
          static_cast<unsigned long long>(ms.counter("store.batch_reads")));
    }
    if (statsFlag != StatsDump::kNone) {
      obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::global().snapshot();
      snapshot.merge(store.metricsSnapshot());
      if (statsFlag == StatsDump::kJson) {
        printf("%s\n", snapshot.toJson().c_str());
      } else {
        printf("--- stats ---\n%s", snapshot.toText().c_str());
      }
    }

    const bool ok = report.ok() && deepDamaged == 0;
    printf("%s\n", ok ? "clean" : "DAMAGED");
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    fprintf(stderr, "fsck: %s\n", e.what());
    return 1;
  }
}
