#!/usr/bin/env bash
# End-to-end freqdedupd smoke: start the daemon, drive concurrent tenant
# clients through backup -> restore -> byte-compare -> delete over the
# socket, validate the server/tenant metrics, shut the daemon down remotely
# and check it exits cleanly, then GC + fsck the store it leaves behind.
#
# Usage: server_smoke.sh <build-dir> <work-dir>
# Exits non-zero on any failure. Used by CI (plain and ASan+UBSan builds).
set -euo pipefail

BUILD_DIR=${1:?usage: server_smoke.sh <build-dir> <work-dir>}
WORK_DIR=${2:?usage: server_smoke.sh <build-dir> <work-dir>}
DAEMON="$BUILD_DIR/tools/freqdedupd"
CLIENT="$BUILD_DIR/examples/backup_system"
TOOLS_DIR="$(cd "$(dirname "$0")" && pwd)"

rm -rf "$WORK_DIR"
mkdir -p "$WORK_DIR"/src-acme "$WORK_DIR"/src-beta
SOCK="unix:$WORK_DIR/freqdedupd.sock"
STORE="$WORK_DIR/store"

# Distinct data per tenant plus one shared file, so the smoke crosses the
# cross-tenant dedup path too.
head -c 4194304 /dev/urandom > "$WORK_DIR/src-acme/big.bin"
head -c  524288 /dev/urandom > "$WORK_DIR/src-acme/small.bin"
head -c 2097152 /dev/urandom > "$WORK_DIR/src-beta/other.bin"
cp "$WORK_DIR/src-acme/big.bin" "$WORK_DIR/src-beta/big.bin"

"$DAEMON" "$STORE" "$SOCK" --threads=4 --quota-bytes=64m \
    --stats=json > "$WORK_DIR/daemon.log" 2>&1 &
DAEMON_PID=$!
trap 'kill "$DAEMON_PID" 2>/dev/null || true' EXIT

# The daemon prints "freqdedupd listening on ..." once it is accepting.
for _ in $(seq 1 100); do
  grep -q "freqdedupd listening on" "$WORK_DIR/daemon.log" && break
  kill -0 "$DAEMON_PID" 2>/dev/null || {
    echo "daemon died during startup:"; cat "$WORK_DIR/daemon.log"; exit 1; }
  sleep 0.1
done
grep -q "freqdedupd listening on" "$WORK_DIR/daemon.log" || {
  echo "daemon never started listening:"; cat "$WORK_DIR/daemon.log"; exit 1; }

# Two tenants back up CONCURRENTLY through the one daemon.
"$CLIENT" backup "$WORK_DIR/src-acme" acme-pass \
    --remote="$SOCK" --tenant=acme &
ACME_PID=$!
"$CLIENT" backup "$WORK_DIR/src-beta" beta-pass \
    --remote="$SOCK" --tenant=beta &
BETA_PID=$!
wait "$ACME_PID"
wait "$BETA_PID"

# Namespaces: each tenant lists exactly its own files.
"$CLIENT" list --remote="$SOCK" --tenant=acme --pass=acme-pass | sort > "$WORK_DIR/acme.list"
printf 'big.bin\nsmall.bin\n' | diff - "$WORK_DIR/acme.list"
"$CLIENT" list --remote="$SOCK" --tenant=beta --pass=beta-pass | sort > "$WORK_DIR/beta.list"
printf 'big.bin\nother.bin\n' | diff - "$WORK_DIR/beta.list"

# Tenant auth: claiming acme's id with the wrong passphrase must fail.
if "$CLIENT" list --remote="$SOCK" --tenant=acme --pass=wrong-pass \
    > /dev/null 2>&1; then
  echo "wrong passphrase was accepted for tenant acme"; exit 1
fi

# Restore (concurrently) and byte-compare everything.
"$CLIENT" restore "$WORK_DIR/out-acme" acme-pass \
    --remote="$SOCK" --tenant=acme &
ACME_PID=$!
"$CLIENT" restore "$WORK_DIR/out-beta" beta-pass \
    --remote="$SOCK" --tenant=beta &
BETA_PID=$!
wait "$ACME_PID"
wait "$BETA_PID"
cmp "$WORK_DIR/src-acme/big.bin"   "$WORK_DIR/out-acme/big.bin"
cmp "$WORK_DIR/src-acme/small.bin" "$WORK_DIR/out-acme/small.bin"
cmp "$WORK_DIR/src-beta/big.bin"   "$WORK_DIR/out-beta/big.bin"
cmp "$WORK_DIR/src-beta/other.bin" "$WORK_DIR/out-beta/other.bin"

# Live stats over the socket must pass the daemon invariants.
"$CLIENT" stats --remote="$SOCK" --tenant=acme --pass=acme-pass > "$WORK_DIR/stats.json"
python3 "$TOOLS_DIR/check_stats.py" "$WORK_DIR/stats.json"

# Delete one backup per tenant; acme's copy of big.bin must survive beta's.
"$CLIENT" delete small.bin --remote="$SOCK" --tenant=acme --pass=acme-pass
"$CLIENT" delete big.bin   --remote="$SOCK" --tenant=beta --pass=beta-pass
"$CLIENT" restore "$WORK_DIR/out-acme2" acme-pass \
    --remote="$SOCK" --tenant=acme
cmp "$WORK_DIR/src-acme/big.bin" "$WORK_DIR/out-acme2/big.bin"

# Remote shutdown; the daemon must exit 0 and dump a clean final snapshot.
"$CLIENT" shutdown --remote="$SOCK" --tenant=acme --pass=acme-pass
DAEMON_RC=0
wait "$DAEMON_PID" || DAEMON_RC=$?
trap - EXIT
if [ "$DAEMON_RC" -ne 0 ]; then
  echo "daemon exited with $DAEMON_RC:"; cat "$WORK_DIR/daemon.log"; exit 1
fi
grep -q "freqdedupd stopped" "$WORK_DIR/daemon.log"
python3 "$TOOLS_DIR/check_stats.py" "$WORK_DIR/daemon.log"

# The store the daemon leaves behind is a normal store: GC the deleted
# backups' chunks, then deep-verify a surviving tenant namespace.
"$CLIENT" gc "$STORE"
"$BUILD_DIR/tools/fsck" "$STORE" || { echo "fsck failed"; exit 1; }

echo "server smoke OK"
