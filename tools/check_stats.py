#!/usr/bin/env python3
"""Sanity-check a --stats=json dump from backup_system or fsck.

Usage: check_stats.py <file> [<file>...]

Each file is CLI output whose last '{'-prefixed line is the single-line
JSON metrics snapshot (or a bare .json file). Checks, per file:
  - the snapshot parses and has the counters/gauges/histograms sections;
  - at least one work counter is nonzero (a backup that chunked nothing,
    or a restore that streamed nothing, is a broken run);
  - the container read cache hit rate is a real rate in [0, 1];
  - block cache accounting: hits + misses == lookups, and the byte
    gauges respect cached_bytes <= peak_cached_bytes <= budget_bytes
    (the budget gauge is only emitted for bounded caches);
  - tiering: tier.promotions <= tier.cold_reads (every promotion is
    driven by a cold read) and the placement gauges are non-negative;
  - settled gauges: restore.prefetch_window and queue depths read 0;
  - every histogram's count/sum/bucket totals are internally consistent.

When the snapshot carries freqdedupd counters (any "server." counter), it is
additionally checked as a daemon dump:
  - server.requests > 0 and server.request_errors <= server.requests;
  - frame accounting: frames_rx >= requests, frames_tx > 0, bytes flowing;
  - connection lifecycle: connections_opened >= connections_closed > 0,
    server.active_connections == opened - closed;
  - per tenant: cross_tenant_dedup_hits <= dedup_hits <= chunks, and the
    usage gauges (logical_bytes, backups) are non-negative.

Exit code 0 when every file passes, 1 otherwise.
"""
import json
import sys

WORK_COUNTERS = (
    "chunk.chunks_produced",
    "restore.chunks_streamed",
    "store.chunk_reads",
    "store.put_chunks",
)
SETTLED_GAUGES = (
    "restore.prefetch_window",
    "pipeline.raw_queue_depth",
    "pipeline.shard_queue_depth",
)


def extract_snapshot(path):
    text = open(path, encoding="utf-8").read().strip()
    lines = [ln for ln in text.splitlines() if ln.startswith("{")]
    if not lines:
        raise ValueError("no JSON object line found")
    return json.loads(lines[-1])


def check_server(snap):
    """freqdedupd-specific invariants; no-op for non-daemon snapshots."""
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    if not any(name.startswith("server.") for name in counters):
        return []
    errors = []

    requests = counters.get("server.requests", 0)
    if requests <= 0:
        errors.append("server.requests is zero in a daemon dump")
    if counters.get("server.request_errors", 0) > requests:
        errors.append(
            f"server.request_errors {counters.get('server.request_errors')} "
            f"> server.requests {requests}"
        )
    # Every request arrives in a frame (the Hello frame makes rx strictly
    # greater in practice, but >= is the invariant).
    if counters.get("server.frames_rx", 0) < requests:
        errors.append(
            f"server.frames_rx {counters.get('server.frames_rx', 0)} < "
            f"server.requests {requests}"
        )
    if counters.get("server.frames_tx", 0) <= 0:
        errors.append("server.frames_tx is zero")
    if counters.get("server.bytes_rx", 0) <= 0:
        errors.append("server.bytes_rx is zero")

    opened = counters.get("server.connections_opened", 0)
    closed = counters.get("server.connections_closed", 0)
    if opened <= 0:
        errors.append("server.connections_opened is zero in a daemon dump")
    # Every auth failure happened on some accepted connection.
    if counters.get("server.auth_failures", 0) > opened:
        errors.append(
            f"server.auth_failures {counters.get('server.auth_failures')} "
            f"> connections_opened {opened}"
        )
    if closed > opened:
        errors.append(
            f"server.connections_closed {closed} > connections_opened {opened}"
        )
    # The gauge must agree with the counters at snapshot time (the snapshot
    # itself is usually served over one still-open connection).
    active = gauges.get("server.active_connections")
    if active is not None and active != opened - closed:
        errors.append(
            f"server.active_connections {active} != opened-closed "
            f"{opened - closed}"
        )

    # Per-tenant dedup accounting: cross-tenant hits are a subset of dedup
    # hits, which are a subset of chunks written.
    tenants = set()
    for name in counters:
        if name.startswith("tenant.") and name.count(".") >= 2:
            tenants.add(name.split(".")[1])
    for tenant in sorted(tenants):
        chunks = counters.get(f"tenant.{tenant}.chunks", 0)
        dedup = counters.get(f"tenant.{tenant}.dedup_hits", 0)
        cross = counters.get(f"tenant.{tenant}.cross_tenant_dedup_hits", 0)
        if cross > dedup:
            errors.append(
                f"tenant {tenant}: cross_tenant_dedup_hits {cross} > "
                f"dedup_hits {dedup}"
            )
        if dedup > chunks:
            errors.append(
                f"tenant {tenant}: dedup_hits {dedup} > chunks {chunks}"
            )
        for gauge in ("logical_bytes", "backups"):
            v = gauges.get(f"tenant.{tenant}.{gauge}", 0)
            if v < 0:
                errors.append(f"tenant {tenant}: gauge {gauge} negative: {v}")
    return errors


def check(path):
    errors = []
    snap = extract_snapshot(path)
    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            errors.append(f"missing section '{section}'")
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})

    if not any(counters.get(name, 0) > 0 for name in WORK_COUNTERS):
        errors.append(f"all work counters are zero ({', '.join(WORK_COUNTERS)})")

    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    lookups = counters.get("cache.lookups", 0)
    if hits < 0 or misses < 0:
        errors.append("negative cache counters")
    elif hits + misses > 0:
        rate = hits / (hits + misses)
        if not 0.0 <= rate <= 1.0:
            errors.append(f"cache hit rate {rate} outside [0, 1]")
    # Every lookup resolves as exactly one hit or one miss.
    if hits + misses != lookups:
        errors.append(
            f"cache.hits {hits} + cache.misses {misses} != "
            f"cache.lookups {lookups}"
        )

    # Byte-budget accounting: the resident bytes never exceed the peak, and
    # the peak never exceeds the configured budget. cache.budget_bytes is
    # only emitted for bounded caches, so its absence skips the budget leg.
    cached = gauges.get("cache.cached_bytes", 0)
    peak = gauges.get("cache.peak_cached_bytes", 0)
    budget = gauges.get("cache.budget_bytes")
    if cached < 0:
        errors.append(f"cache.cached_bytes negative: {cached}")
    if cached > peak:
        errors.append(
            f"cache.cached_bytes {cached} > cache.peak_cached_bytes {peak}"
        )
    if budget is not None:
        if cached > budget:
            errors.append(
                f"cache.cached_bytes {cached} > cache.budget_bytes {budget}"
            )
        if peak > budget:
            errors.append(
                f"cache.peak_cached_bytes {peak} > "
                f"cache.budget_bytes {budget}"
            )

    # Tiering: promotions only happen in service of a cold read, and the
    # placement gauges (container/byte counts per tier) can never go
    # negative no matter how demote/promote/gc interleave.
    promotions = counters.get("tier.promotions", 0)
    cold_reads = counters.get("tier.cold_reads", 0)
    if promotions > cold_reads:
        errors.append(
            f"tier.promotions {promotions} > tier.cold_reads {cold_reads}"
        )
    for name in ("tier.hot_containers", "tier.hot_bytes",
                 "tier.cold_containers", "tier.cold_bytes"):
        v = gauges.get(name, 0)
        if v < 0:
            errors.append(f"gauge {name} negative: {v}")

    for name in SETTLED_GAUGES:
        if gauges.get(name, 0) != 0:
            errors.append(f"gauge {name} did not settle to 0: {gauges[name]}")

    errors.extend(check_server(snap))

    for name, h in snap.get("histograms", {}).items():
        bucket_total = sum(count for _, count in h.get("buckets", []))
        if bucket_total != h.get("count", 0):
            errors.append(
                f"histogram {name}: bucket counts {bucket_total} != "
                f"count {h.get('count', 0)}"
            )
        if h.get("count", 0) > 0 and h.get("max", 0) < h.get("min", 0):
            errors.append(f"histogram {name}: max < min")
        if h.get("count", 0) == 0 and h.get("sum", 0) != 0:
            errors.append(f"histogram {name}: empty but sum != 0")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            errors = check(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            errors = [str(e)]
        if errors:
            failed = True
            for e in errors:
                print(f"{path}: FAIL: {e}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
