#!/usr/bin/env python3
"""Sanity-check a --stats=json dump from backup_system or fsck.

Usage: check_stats.py <file> [<file>...]

Each file is CLI output whose last '{'-prefixed line is the single-line
JSON metrics snapshot (or a bare .json file). Checks, per file:
  - the snapshot parses and has the counters/gauges/histograms sections;
  - at least one work counter is nonzero (a backup that chunked nothing,
    or a restore that streamed nothing, is a broken run);
  - the container read cache hit rate is a real rate in [0, 1];
  - settled gauges: restore.prefetch_window and queue depths read 0;
  - every histogram's count/sum/bucket totals are internally consistent.

Exit code 0 when every file passes, 1 otherwise.
"""
import json
import sys

WORK_COUNTERS = (
    "chunk.chunks_produced",
    "restore.chunks_streamed",
    "store.chunk_reads",
    "store.put_chunks",
)
SETTLED_GAUGES = (
    "restore.prefetch_window",
    "pipeline.raw_queue_depth",
    "pipeline.shard_queue_depth",
)


def extract_snapshot(path):
    text = open(path, encoding="utf-8").read().strip()
    lines = [ln for ln in text.splitlines() if ln.startswith("{")]
    if not lines:
        raise ValueError("no JSON object line found")
    return json.loads(lines[-1])


def check(path):
    errors = []
    snap = extract_snapshot(path)
    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            errors.append(f"missing section '{section}'")
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})

    if not any(counters.get(name, 0) > 0 for name in WORK_COUNTERS):
        errors.append(f"all work counters are zero ({', '.join(WORK_COUNTERS)})")

    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    if hits < 0 or misses < 0:
        errors.append("negative cache counters")
    elif hits + misses > 0:
        rate = hits / (hits + misses)
        if not 0.0 <= rate <= 1.0:
            errors.append(f"cache hit rate {rate} outside [0, 1]")

    for name in SETTLED_GAUGES:
        if gauges.get(name, 0) != 0:
            errors.append(f"gauge {name} did not settle to 0: {gauges[name]}")

    for name, h in snap.get("histograms", {}).items():
        bucket_total = sum(count for _, count in h.get("buckets", []))
        if bucket_total != h.get("count", 0):
            errors.append(
                f"histogram {name}: bucket counts {bucket_total} != "
                f"count {h.get('count', 0)}"
            )
        if h.get("count", 0) > 0 and h.get("max", 0) < h.get("min", 0):
            errors.append(f"histogram {name}: max < min")
        if h.get("count", 0) == 0 and h.get("sum", 0) != 0:
            errors.append(f"histogram {name}: empty but sum != 0")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            errors = check(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            errors = [str(e)]
        if errors:
            failed = True
            for e in errors:
                print(f"{path}: FAIL: {e}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
