// End-to-end daemon tests over the socket: lifecycle, handshake policing,
// malformed-frame handling (connection-fatal), abort/empty-backup edges,
// stats content, quota-accounting recovery across a daemon restart, and
// remote shutdown.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "server/client_conn.h"
#include "server/server.h"
#include "server/socket.h"
#include "server/wire.h"

namespace freqdedup::server {
namespace {

ByteVec randomContent(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

class ServerE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& info = *::testing::UnitTest::GetInstance()->current_test_info();
    base_ = (std::filesystem::temp_directory_path() /
             ("fdd_e2e_" + std::string(info.name())))
                .string();
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override {
    server_.reset();
    std::filesystem::remove_all(base_);
  }

  void startServer(ServerOptions options = {}) {
    if (options.address.empty()) options.address = "unix:" + base_ + "/sock";
    options.store.containerBytes = 256 * 1024;
    server_ = std::make_unique<FreqDedupServer>(base_ + "/store", options);
    server_->start();
  }

  [[nodiscard]] RemoteDedupClient connect(const std::string& tenant) const {
    return RemoteDedupClient(server_->boundAddress().str(), tenant, "pw");
  }

  /// Raw (non-client) connection for protocol-violation tests.
  [[nodiscard]] Fd rawConnect() const {
    return connectTo(server_->boundAddress());
  }

  std::string base_;
  std::unique_ptr<FreqDedupServer> server_;
};

TEST_F(ServerE2E, BackupRestoreDeleteOverTcp) {
  ServerOptions options;
  options.address = "tcp:127.0.0.1:0";  // ephemeral port
  startServer(options);
  ASSERT_EQ(server_->boundAddress().kind, Address::Kind::kTcp);
  ASSERT_NE(server_->boundAddress().port, 0);

  RemoteDedupClient client = connect("acme");
  const ByteVec content = randomContent(1, 300 * 1024);
  const RemoteBackup b = client.openBackup("vm.img");
  // Multiple appends exercise the streaming path.
  const size_t half = content.size() / 2;
  client.append(b, ByteView(content.data(), half));
  client.append(b, ByteView(content.data() + half, content.size() - half));
  const RemoteBackupResult result = client.finishBackup(b);
  EXPECT_GT(result.chunkCount, 0u);
  EXPECT_EQ(result.newChunks + result.duplicateChunks, result.chunkCount);

  EXPECT_EQ(client.restoreAll("vm.img"), content);
  EXPECT_TRUE(client.deleteBackup("vm.img"));
  EXPECT_FALSE(client.deleteBackup("vm.img"));
}

TEST_F(ServerE2E, EmptyBackupRoundTrips) {
  startServer();
  RemoteDedupClient client = connect("acme");
  const RemoteBackup b = client.openBackup("empty");
  const RemoteBackupResult result = client.finishBackup(b);
  EXPECT_EQ(result.chunkCount, 0u);
  EXPECT_TRUE(client.restoreAll("empty").empty());
}

TEST_F(ServerE2E, AbortedBackupIsNeverVisible) {
  startServer();
  RemoteDedupClient client = connect("acme");
  const RemoteBackup b = client.openBackup("doomed");
  client.append(b, randomContent(2, 32 * 1024));
  client.abortBackup(b);
  EXPECT_TRUE(client.listBackups().empty());
  // Operating on the aborted id is a clean semantic error, not a hang or
  // connection loss.
  try {
    client.finishBackup(b);
    FAIL() << "finish of aborted backup succeeded";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
  EXPECT_TRUE(client.listBackups().empty());  // connection still alive
}

TEST_F(ServerE2E, HelloRejectsBadMagicAndVersion) {
  startServer();
  {
    Fd fd = rawConnect();
    Hello bad;
    bad.magic = 0xDEADBEEF;
    bad.tenant = "acme";
    writeFrame(fd.get(), encode(bad));
    const auto reply = readFrame(fd.get());
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(decodeErrorReply(*reply).code, ErrorCode::kProtocol);
    // Server closes after the error.
    EXPECT_FALSE(readFrame(fd.get()).has_value());
  }
  {
    Fd fd = rawConnect();
    Hello bad;
    bad.version = kWireVersion + 7;
    bad.tenant = "acme";
    writeFrame(fd.get(), encode(bad));
    const auto reply = readFrame(fd.get());
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(decodeErrorReply(*reply).code, ErrorCode::kBadRequest);
  }
  {
    // Invalid tenant id ('/' would break the namespace encoding).
    Fd fd = rawConnect();
    Hello bad;
    bad.tenant = "a/b";
    writeFrame(fd.get(), encode(bad));
    const auto reply = readFrame(fd.get());
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(decodeErrorReply(*reply).code, ErrorCode::kBadRequest);
  }
}

TEST_F(ServerE2E, RequestBeforeHelloIsRejected) {
  startServer();
  Fd fd = rawConnect();
  writeFrame(fd.get(), encode(ListBackups{}));
  const auto reply = readFrame(fd.get());
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(decodeErrorReply(*reply).code, ErrorCode::kProtocol);
  EXPECT_FALSE(readFrame(fd.get()).has_value());
}

TEST_F(ServerE2E, MalformedFrameClosesConnectionButNotServer) {
  startServer();
  {
    // Garbage bytes that are not even a frame: the server drops the
    // connection (possibly after a best-effort protocol error).
    Fd fd = rawConnect();
    const ByteVec junk = randomContent(3, 64);
    writeFull(fd.get(), junk.data(), junk.size());
    // Either an ErrorReply arrives or the socket just closes; both are
    // acceptable, crashing or hanging is not.
    try {
      while (readFrame(fd.get()).has_value()) {
      }
    } catch (const std::exception&) {
    }
  }
  {
    // A valid frame whose payload is an unknown message type.
    Fd fd = rawConnect();
    writeFrame(fd.get(), ByteVec{0x3F});
    try {
      const auto reply = readFrame(fd.get());
      if (reply)
        EXPECT_EQ(decodeErrorReply(*reply).code, ErrorCode::kProtocol);
    } catch (const std::exception&) {
    }
  }
  // The daemon survived both abuses and serves normal clients.
  RemoteDedupClient client = connect("acme");
  const RemoteBackup b = client.openBackup("still-alive");
  client.append(b, randomContent(4, 8 * 1024));
  client.finishBackup(b);
  EXPECT_EQ(client.restoreAll("still-alive"), randomContent(4, 8 * 1024));
}

TEST_F(ServerE2E, StatsExposeServerAndTenantCounters) {
  startServer();
  RemoteDedupClient client = connect("acme");
  const RemoteBackup b = client.openBackup("obj");
  client.append(b, randomContent(5, 64 * 1024));
  client.finishBackup(b);

  const std::string json = client.statsJson();
  EXPECT_NE(json.find("server.requests"), std::string::npos) << json;
  EXPECT_NE(json.find("server.connections_opened"), std::string::npos);
  EXPECT_NE(json.find("tenant.acme.chunks"), std::string::npos);
  EXPECT_NE(json.find("tenant.acme.logical_bytes"), std::string::npos);
  EXPECT_NE(json.find("tenant.acme.backups_committed"), std::string::npos);
}

TEST_F(ServerE2E, RestartRecoversTenantAccounting) {
  // Quota small enough that recovery errors would change admission.
  ServerOptions options;
  options.address = "unix:" + base_ + "/sock";
  options.quota.maxLogicalBytes = 100 * 1024;
  options.quota.maxBackups = 3;
  startServer(options);
  {
    RemoteDedupClient client = connect("acme");
    const RemoteBackup b = client.openBackup("a");
    client.append(b, randomContent(6, 60 * 1024));
    client.finishBackup(b);
  }
  // Restart the daemon over the same store.
  server_.reset();
  startServer(options);
  EXPECT_EQ(server_->tenants().logicalBytes("acme"), 60u * 1024);
  EXPECT_EQ(server_->tenants().backupCount("acme"), 1u);
  {
    RemoteDedupClient client = connect("acme");
    // Old backup still restorable.
    EXPECT_EQ(client.restoreAll("a"), randomContent(6, 60 * 1024));
    // The recovered 60k of usage must make another 60k backup fail...
    const RemoteBackup b = client.openBackup("b");
    client.append(b, randomContent(7, 60 * 1024));
    try {
      client.finishBackup(b);
      FAIL() << "recovered accounting did not enforce the quota";
    } catch (const RemoteError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kQuotaExceeded);
    }
    // ...while replacing the existing one (delta accounting) still fits.
    const RemoteBackup r = client.openBackup("a");
    client.append(r, randomContent(8, 80 * 1024));
    client.finishBackup(r);
    EXPECT_EQ(client.restoreAll("a"), randomContent(8, 80 * 1024));
  }
  EXPECT_EQ(server_->tenants().logicalBytes("acme"), 80u * 1024);
}

TEST_F(ServerE2E, ConcurrentConnectionsOneTenant) {
  startServer();
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RemoteDedupClient client = connect("acme");
      const std::string name = "obj" + std::to_string(t);
      const ByteVec content =
          randomContent(static_cast<uint64_t>(100 + t), 32 * 1024);
      const RemoteBackup b = client.openBackup(name);
      client.append(b, content);
      client.finishBackup(b);
      ASSERT_EQ(client.restoreAll(name), content);
    });
  }
  for (auto& th : threads) th.join();
  RemoteDedupClient client = connect("acme");
  EXPECT_EQ(client.listBackups().size(), static_cast<size_t>(kThreads));
}

TEST_F(ServerE2E, RemoteShutdownWhenAllowed) {
  ServerOptions options;
  options.allowShutdown = true;
  startServer(options);
  {
    RemoteDedupClient client = connect("acme");
    client.shutdownServer();
  }
  // waitShutdownRequested returns promptly once the request landed.
  server_->waitShutdownRequested();
  EXPECT_TRUE(server_->shutdownRequested());
  server_->stop();
}

TEST_F(ServerE2E, RemoteShutdownRejectedWhenDisallowed) {
  ServerOptions options;
  options.allowShutdown = false;
  startServer(options);
  RemoteDedupClient client = connect("acme");
  try {
    client.shutdownServer();
    FAIL() << "shutdown succeeded on allowShutdown=false server";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
  EXPECT_FALSE(server_->shutdownRequested());
}

TEST_F(ServerE2E, WrongTenantPassphraseIsRejected) {
  startServer();
  // First Hello registers the tenant's verifier...
  { RemoteDedupClient client = connect("acme"); }
  // ...after which a mismatching passphrase is an auth failure and the
  // connection is closed (no post-failure requests sneak through).
  Fd fd = rawConnect();
  Hello hello;
  hello.tenant = "acme";
  hello.passphrase = "not-pw";
  writeFrame(fd.get(), encode(hello));
  const auto reply = readFrame(fd.get());
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(decodeErrorReply(*reply).code, ErrorCode::kAuthFailed);
  EXPECT_FALSE(readFrame(fd.get()).has_value());
  // The correct passphrase still works.
  RemoteDedupClient client = connect("acme");
  EXPECT_TRUE(client.listBackups().empty());
}

TEST_F(ServerE2E, AuthVerifierSurvivesRestart) {
  ServerOptions options;
  options.address = "unix:" + base_ + "/sock";
  startServer(options);
  {
    RemoteDedupClient client = connect("acme");
    const RemoteBackup b = client.openBackup("a");
    client.append(b, randomContent(20, 16 * 1024));
    client.finishBackup(b);
  }
  server_.reset();
  startServer(options);
  // The verifier persisted: a wrong passphrase cannot re-register the
  // tenant after a restart, and the right one still restores.
  try {
    RemoteDedupClient bad(server_->boundAddress().str(), "acme", "guess");
    FAIL() << "wrong passphrase accepted after restart";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAuthFailed);
  }
  RemoteDedupClient client = connect("acme");
  EXPECT_EQ(client.restoreAll("a"), randomContent(20, 16 * 1024));
}

TEST_F(ServerE2E, ShutdownRejectedOverTcp) {
  // Even with allowShutdown on, a TCP peer is never privileged — shutdown
  // is reserved for same-uid unix-socket peers (SO_PEERCRED).
  ServerOptions options;
  options.address = "tcp:127.0.0.1:0";
  options.allowShutdown = true;
  startServer(options);
  RemoteDedupClient client = connect("acme");
  try {
    client.shutdownServer();
    FAIL() << "TCP peer was allowed to shut the daemon down";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
  EXPECT_FALSE(server_->shutdownRequested());
  // The connection survives the refusal.
  EXPECT_TRUE(client.listBackups().empty());
}

TEST_F(ServerE2E, ListPaginatesLargeTenants) {
  ServerOptions options;
  options.listBytesPerReply = 32;  // force multi-page listings
  startServer(options);
  RemoteDedupClient client = connect("acme");
  std::vector<std::string> expected;
  for (int i = 0; i < 12; ++i) {
    const std::string name = "backup-" + std::to_string(100 + i);
    client.finishBackup(client.openBackup(name));
    expected.push_back(name);
  }
  // The client walks the continuation cursor transparently...
  EXPECT_EQ(client.listBackups(), expected);

  // ...and the raw protocol really does truncate and resume.
  Fd fd = rawConnect();
  Hello hello;
  hello.tenant = "acme";
  hello.passphrase = "pw";
  writeFrame(fd.get(), encode(hello));
  ASSERT_TRUE(readFrame(fd.get()).has_value());
  writeFrame(fd.get(), encode(ListBackups{}));
  const auto pageRaw = readFrame(fd.get());
  ASSERT_TRUE(pageRaw.has_value());
  const ListResult page = decodeListResult(*pageRaw);
  EXPECT_TRUE(page.truncated);
  ASSERT_FALSE(page.names.empty());
  EXPECT_LT(page.names.size(), expected.size());
  ListBackups next;
  next.startAfter = page.names.back();
  writeFrame(fd.get(), encode(next));
  const auto page2Raw = readFrame(fd.get());
  ASSERT_TRUE(page2Raw.has_value());
  const ListResult page2 = decodeListResult(*page2Raw);
  ASSERT_FALSE(page2.names.empty());
  EXPECT_GT(page2.names.front(), page.names.back());
}

TEST_F(ServerE2E, PerConnectionOpenStreamCaps) {
  startServer();
  RemoteDedupClient client = connect("acme");
  client.finishBackup(client.openBackup("obj"));

  Fd fd = rawConnect();
  Hello hello;
  hello.tenant = "acme";
  hello.passphrase = "pw";
  writeFrame(fd.get(), encode(hello));
  ASSERT_TRUE(readFrame(fd.get()).has_value());
  // 64 concurrently open backups are fine; the 65th is a clean semantic
  // error, and likewise for restores.
  for (int i = 0; i < 64; ++i) {
    writeFrame(fd.get(), encode(BackupOpen{"b" + std::to_string(i)}));
    const auto reply = readFrame(fd.get());
    ASSERT_TRUE(reply.has_value());
    decodeBackupOpened(*reply);
  }
  writeFrame(fd.get(), encode(BackupOpen{"one-too-many"}));
  auto reply = readFrame(fd.get());
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(decodeErrorReply(*reply).code, ErrorCode::kBadRequest);
  for (int i = 0; i < 64; ++i) {
    writeFrame(fd.get(), encode(RestoreOpen{"obj"}));
    const auto opened = readFrame(fd.get());
    ASSERT_TRUE(opened.has_value());
    decodeRestoreOpened(*opened);
  }
  writeFrame(fd.get(), encode(RestoreOpen{"obj"}));
  reply = readFrame(fd.get());
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(decodeErrorReply(*reply).code, ErrorCode::kBadRequest);
}

TEST_F(ServerE2E, RestoreRangeSemantics) {
  startServer();
  RemoteDedupClient client = connect("acme");
  const ByteVec content = randomContent(9, 100 * 1024);
  const RemoteBackup b = client.openBackup("obj");
  client.append(b, content);
  client.finishBackup(b);

  // Drive the range protocol by hand to pin down clamp/EOF behavior.
  Fd fd = rawConnect();
  Hello hello;
  hello.tenant = "acme";
  hello.passphrase = "pw";
  writeFrame(fd.get(), encode(hello));
  ASSERT_TRUE(readFrame(fd.get()).has_value());

  writeFrame(fd.get(), encode(RestoreOpen{"obj"}));
  const auto openedRaw = readFrame(fd.get());
  ASSERT_TRUE(openedRaw.has_value());
  const RestoreOpened opened = decodeRestoreOpened(*openedRaw);
  EXPECT_EQ(opened.size, content.size());

  // Range in the middle returns exactly the requested bytes.
  writeFrame(fd.get(), encode(RestoreRange{opened.restoreId, 1000, 5000}));
  auto data = readFrame(fd.get());
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(decodeRestoreData(*data).data,
            ByteVec(content.begin() + 1000, content.begin() + 6000));

  // Range past the end: empty data (EOF signal), not an error.
  writeFrame(fd.get(),
             encode(RestoreRange{opened.restoreId, opened.size + 10, 100}));
  data = readFrame(fd.get());
  ASSERT_TRUE(data.has_value());
  EXPECT_TRUE(decodeRestoreData(*data).data.empty());

  // Length clamped at the object end.
  writeFrame(fd.get(),
             encode(RestoreRange{opened.restoreId, opened.size - 7, 1000}));
  data = readFrame(fd.get());
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(decodeRestoreData(*data).data,
            ByteVec(content.end() - 7, content.end()));

  writeFrame(fd.get(), encode(RestoreClose{opened.restoreId}));
  const auto ok = readFrame(fd.get());
  ASSERT_TRUE(ok.has_value());
  decodeOk(*ok);

  // Unknown restore id after close: clean semantic error.
  writeFrame(fd.get(), encode(RestoreRange{opened.restoreId, 0, 10}));
  const auto err = readFrame(fd.get());
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(decodeErrorReply(*err).code, ErrorCode::kBadRequest);
}

}  // namespace
}  // namespace freqdedup::server
