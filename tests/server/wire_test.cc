// Wire protocol codec tests: every message round-trips, the frame codec
// enforces CRC + length, and the bounds-checked reader rejects malformed
// input (truncation, oversize fields, trailing garbage) with WireError.
#include "server/wire.h"

#include <gtest/gtest.h>

#include <string>

#include "common/varint.h"

namespace freqdedup::server {
namespace {

TEST(Wire, FrameRoundTrip) {
  const ByteVec payload = toBytes("hello frame");
  const ByteVec frame = encodeFrame(payload);
  EXPECT_EQ(frame.size(), payload.size() + kFrameHeaderBytes);
  EXPECT_EQ(decodeFrame(frame), payload);
}

TEST(Wire, FrameRejectsCorruptCrc) {
  ByteVec frame = encodeFrame(toBytes("payload"));
  frame.back() ^= 0x01;
  EXPECT_THROW(decodeFrame(frame), WireError);
}

TEST(Wire, FrameRejectsTruncationAndTrailingBytes) {
  const ByteVec frame = encodeFrame(toBytes("payload"));
  // Truncation at every prefix length.
  for (size_t len = 0; len < frame.size(); ++len)
    EXPECT_THROW(decodeFrame(ByteView(frame.data(), len)), WireError) << len;
  // One trailing byte after a valid frame.
  ByteVec extended = frame;
  extended.push_back(0);
  EXPECT_THROW(decodeFrame(extended), WireError);
}

TEST(Wire, FrameRejectsOversizeLengthWithoutAllocating) {
  // Header claims a payload far over the cap; decode must reject on the
  // length field alone.
  ByteVec frame;
  putU32(frame, 0);                    // crc (never reached)
  putU32(frame, 0xFFFFFFFFu);          // absurd length
  EXPECT_THROW(decodeFrame(frame), WireError);
}

TEST(Wire, HelloRoundTrip) {
  Hello in;
  in.tenant = "acme";
  in.passphrase = "secret words";
  const Hello out = decodeHello(encode(in));
  EXPECT_EQ(out.magic, kHelloMagic);
  EXPECT_EQ(out.version, kWireVersion);
  EXPECT_EQ(out.tenant, "acme");
  EXPECT_EQ(out.passphrase, "secret words");
}

TEST(Wire, AllMessagesRoundTrip) {
  EXPECT_EQ(decodeHelloOk(encode(HelloOk{})).maxFrameBytes, kMaxFrameBytes);
  EXPECT_EQ(decodeBackupOpen(encode(BackupOpen{"vm.img"})).name, "vm.img");
  EXPECT_EQ(decodeBackupOpened(encode(BackupOpened{42})).backupId, 42u);
  {
    BackupAppend in;
    in.backupId = 7;
    in.data = toBytes("chunk data");
    const BackupAppend out = decodeBackupAppend(encode(in));
    EXPECT_EQ(out.backupId, 7u);
    EXPECT_EQ(out.data, toBytes("chunk data"));
  }
  EXPECT_EQ(decodeBackupFinish(encode(BackupFinish{9})).backupId, 9u);
  EXPECT_EQ(decodeBackupAbort(encode(BackupAbort{3})).backupId, 3u);
  {
    const BackupDone out =
        decodeBackupDone(encode(BackupDone{100, 60, 40, 12}));
    EXPECT_EQ(out.chunkCount, 100u);
    EXPECT_EQ(out.newChunks, 60u);
    EXPECT_EQ(out.duplicateChunks, 40u);
    EXPECT_EQ(out.crossTenantDuplicates, 12u);
  }
  EXPECT_EQ(decodeRestoreOpen(encode(RestoreOpen{"x"})).name, "x");
  {
    const RestoreOpened out = decodeRestoreOpened(encode(RestoreOpened{5, 999}));
    EXPECT_EQ(out.restoreId, 5u);
    EXPECT_EQ(out.size, 999u);
  }
  {
    const RestoreRange out =
        decodeRestoreRange(encode(RestoreRange{5, 4096, 65536}));
    EXPECT_EQ(out.restoreId, 5u);
    EXPECT_EQ(out.offset, 4096u);
    EXPECT_EQ(out.length, 65536u);
  }
  {
    RestoreData in;
    in.data = toBytes("restored bytes");
    EXPECT_EQ(decodeRestoreData(encode(in)).data, toBytes("restored bytes"));
  }
  EXPECT_EQ(decodeRestoreClose(encode(RestoreClose{5})).restoreId, 5u);
  EXPECT_EQ(decodeDeleteBackup(encode(DeleteBackup{"gone"})).name, "gone");
  EXPECT_EQ(decodeListBackups(encode(ListBackups{})).startAfter, "");
  {
    ListBackups in;
    in.startAfter = "vm-042.img";
    EXPECT_EQ(decodeListBackups(encode(in)).startAfter, "vm-042.img");
  }
  {
    ListResult in;
    in.names = {"a", "b/c", ""};
    const ListResult out = decodeListResult(encode(in));
    EXPECT_EQ(out.names, in.names);
    EXPECT_FALSE(out.truncated);
  }
  {
    ListResult in;
    in.names = {"page-end"};
    in.truncated = true;
    const ListResult out = decodeListResult(encode(in));
    EXPECT_EQ(out.names, in.names);
    EXPECT_TRUE(out.truncated);
  }
  decodeStatsRequest(encode(StatsRequest{}));
  EXPECT_EQ(decodeStatsResult(encode(StatsResult{"{}"})).json, "{}");
  decodeShutdown(encode(Shutdown{}));
  decodeOk(encode(Ok{}));
  {
    const ErrorReply out = decodeErrorReply(
        encode(ErrorReply{ErrorCode::kQuotaExceeded, "too big"}));
    EXPECT_EQ(out.code, ErrorCode::kQuotaExceeded);
    EXPECT_EQ(out.message, "too big");
  }
}

TEST(Wire, DecodersRejectWrongTypeByte) {
  EXPECT_THROW(decodeHello(encode(Ok{})), WireError);
  EXPECT_THROW(decodeBackupOpen(encode(Hello{})), WireError);
  EXPECT_THROW(decodeOk(encode(Shutdown{})), WireError);
}

TEST(Wire, DecodersRejectTrailingGarbage) {
  ByteVec payload = encode(BackupFinish{1});
  payload.push_back(0x00);
  EXPECT_THROW(decodeBackupFinish(payload), WireError);

  ByteVec ok = encode(Ok{});
  ok.push_back(0xFF);
  EXPECT_THROW(decodeOk(ok), WireError);
}

TEST(Wire, ReaderRejectsOversizeStringBeforeAllocation) {
  // A BackupOpen whose name length field claims more than the cap: the
  // decoder must throw on the cap check, not attempt the allocation.
  ByteVec payload;
  payload.push_back(static_cast<uint8_t>(MsgType::kBackupOpen));
  putVarint(payload, kMaxNameBytes + 1);
  EXPECT_THROW(decodeBackupOpen(payload), WireError);
}

TEST(Wire, ReaderRejectsLengthBeyondPayload) {
  // Name length under the cap but beyond the actual bytes present.
  ByteVec payload;
  payload.push_back(static_cast<uint8_t>(MsgType::kBackupOpen));
  putVarint(payload, 100);
  payload.push_back('x');  // only 1 of the claimed 100 bytes
  EXPECT_THROW(decodeBackupOpen(payload), WireError);
}

TEST(Wire, ListCountValidatedAgainstPayload) {
  // A ListResult claiming 2^19 names with no bytes behind them must be
  // rejected before any reserve.
  ByteVec payload;
  payload.push_back(static_cast<uint8_t>(MsgType::kListResult));
  payload.push_back(0);  // truncated flag
  putVarint(payload, 1u << 19);
  EXPECT_THROW(decodeListResult(payload), WireError);
}

TEST(Wire, ListResultRejectsBadTruncatedFlag) {
  ByteVec payload;
  payload.push_back(static_cast<uint8_t>(MsgType::kListResult));
  payload.push_back(7);  // flag must be 0 or 1
  putVarint(payload, 0);
  EXPECT_THROW(decodeListResult(payload), WireError);
}

TEST(Wire, PeekTypeRejectsEmptyAndUnknown) {
  EXPECT_THROW(peekType({}), WireError);
  const ByteVec unknown{0x3F};  // gap between request and response ranges
  EXPECT_THROW(peekType(unknown), WireError);
  const ByteVec high{0xFF};
  EXPECT_THROW(peekType(high), WireError);
}

TEST(Wire, ErrorReplyRejectsUnknownCode) {
  ByteVec payload;
  payload.push_back(static_cast<uint8_t>(MsgType::kError));
  putU32(payload, 999);
  putVarint(payload, 0);
  EXPECT_THROW(decodeErrorReply(payload), WireError);
}

}  // namespace
}  // namespace freqdedup::server
