// Deterministic fuzzing of the wire deserializers: truncation at every
// length and seeded bit flips over valid encoded frames. The contract under
// test is the hardening one from wire.h — a decoder fed malformed input
// must throw WireError (or, for a flip that happens to produce another
// valid encoding, return normally); it must never crash, read out of
// bounds, or allocate based on an unvalidated length. Run under
// ASan/UBSan in CI, these tests turn "never reads out of bounds" from a
// comment into a checked property.
#include "server/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace freqdedup::server {
namespace {

/// One decoder under test: name + a callable that decodes a payload and
/// discards the result.
struct Decoder {
  const char* name;
  std::function<void(ByteView)> decode;
};

std::vector<std::pair<ByteVec, Decoder>> corpus() {
  std::vector<std::pair<ByteVec, Decoder>> out;
  auto add = [&out](ByteVec payload, const char* name,
                    std::function<void(ByteView)> fn) {
    out.emplace_back(std::move(payload), Decoder{name, std::move(fn)});
  };

  Hello hello;
  hello.tenant = "tenant-a";
  hello.passphrase = "open sesame";
  add(encode(hello), "Hello", [](ByteView p) { decodeHello(p); });
  add(encode(HelloOk{}), "HelloOk", [](ByteView p) { decodeHelloOk(p); });
  add(encode(BackupOpen{"backups/vm.img"}), "BackupOpen",
      [](ByteView p) { decodeBackupOpen(p); });
  add(encode(BackupOpened{12345}), "BackupOpened",
      [](ByteView p) { decodeBackupOpened(p); });
  BackupAppend append;
  append.backupId = 7;
  append.data = toBytes("some chunked data payload for the append frame");
  add(encode(append), "BackupAppend",
      [](ByteView p) { decodeBackupAppend(p); });
  add(encode(BackupFinish{7}), "BackupFinish",
      [](ByteView p) { decodeBackupFinish(p); });
  add(encode(BackupAbort{7}), "BackupAbort",
      [](ByteView p) { decodeBackupAbort(p); });
  add(encode(BackupDone{1000, 400, 600, 50}), "BackupDone",
      [](ByteView p) { decodeBackupDone(p); });
  add(encode(RestoreOpen{"backups/vm.img"}), "RestoreOpen",
      [](ByteView p) { decodeRestoreOpen(p); });
  add(encode(RestoreOpened{9, 1u << 30}), "RestoreOpened",
      [](ByteView p) { decodeRestoreOpened(p); });
  add(encode(RestoreRange{9, 65536, 1 << 20}), "RestoreRange",
      [](ByteView p) { decodeRestoreRange(p); });
  RestoreData rdata;
  rdata.data = toBytes("restored bytes crossing the wire");
  add(encode(rdata), "RestoreData", [](ByteView p) { decodeRestoreData(p); });
  add(encode(RestoreClose{9}), "RestoreClose",
      [](ByteView p) { decodeRestoreClose(p); });
  add(encode(DeleteBackup{"old-backup"}), "DeleteBackup",
      [](ByteView p) { decodeDeleteBackup(p); });
  ListBackups listReq;
  listReq.startAfter = "vm-041.img";
  add(encode(listReq), "ListBackups",
      [](ByteView p) { decodeListBackups(p); });
  ListResult list;
  list.names = {"a", "vm.img", "nested/name/with/slashes", ""};
  list.truncated = true;
  add(encode(list), "ListResult", [](ByteView p) { decodeListResult(p); });
  add(encode(StatsRequest{}), "StatsRequest",
      [](ByteView p) { decodeStatsRequest(p); });
  add(encode(StatsResult{"{\"server\":{\"requests\":1}}"}), "StatsResult",
      [](ByteView p) { decodeStatsResult(p); });
  add(encode(Shutdown{}), "Shutdown", [](ByteView p) { decodeShutdown(p); });
  add(encode(Ok{}), "Ok", [](ByteView p) { decodeOk(p); });
  add(encode(ErrorReply{ErrorCode::kNotFound, "no such backup"}), "ErrorReply",
      [](ByteView p) { decodeErrorReply(p); });
  return out;
}

/// Decoding malformed input must either throw WireError or succeed (when a
/// mutation lands on a don't-care byte or produces another valid message).
/// Anything else — a different exception, a crash, a sanitizer report — is
/// a hardening failure.
void mustThrowWireErrorOrSucceed(const Decoder& d, ByteView payload,
                                 const std::string& context) {
  try {
    d.decode(payload);
  } catch (const WireError&) {
    // Expected rejection path.
  } catch (const std::exception& e) {
    FAIL() << d.name << " " << context << ": threw non-WireError: "
           << e.what();
  }
}

TEST(WireFuzz, TruncationAtEveryLength) {
  for (const auto& [payload, decoder] : corpus()) {
    // Every strict prefix of a valid payload must be cleanly rejected: a
    // well-formed message consumes its input exactly, so a prefix is always
    // missing bytes some field claimed.
    for (size_t len = 0; len < payload.size(); ++len) {
      const ByteView prefix(payload.data(), len);
      EXPECT_THROW(decoder.decode(prefix), WireError)
          << decoder.name << " accepted a " << len << "-byte prefix of its "
          << payload.size() << "-byte encoding";
    }
  }
}

TEST(WireFuzz, TrailingGarbageAfterEveryMessage) {
  for (const auto& [payload, decoder] : corpus()) {
    for (const uint8_t extra : {uint8_t{0x00}, uint8_t{0xFF}}) {
      ByteVec extended = payload;
      extended.push_back(extra);
      EXPECT_THROW(decoder.decode(extended), WireError)
          << decoder.name << " accepted a trailing 0x" << std::hex
          << unsigned{extra};
    }
  }
}

TEST(WireFuzz, SingleBitFlips) {
  // Exhaustive single-bit flips: payloads are small enough that all
  // size*8 mutants per message stay cheap.
  for (const auto& [payload, decoder] : corpus()) {
    for (size_t byte = 0; byte < payload.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        ByteVec mutant = payload;
        mutant[byte] ^= static_cast<uint8_t>(1u << bit);
        mustThrowWireErrorOrSucceed(
            decoder, mutant,
            "bit flip @" + std::to_string(byte) + "." + std::to_string(bit));
      }
    }
  }
}

TEST(WireFuzz, RandomMultiByteMutations) {
  Rng rng(0xF077D00DULL);
  for (const auto& [payload, decoder] : corpus()) {
    for (int round = 0; round < 256; ++round) {
      ByteVec mutant = payload;
      const int edits = 1 + static_cast<int>(rng.next() % 4);
      for (int e = 0; e < edits; ++e) {
        if (mutant.empty()) break;
        mutant[rng.next() % mutant.size()] =
            static_cast<uint8_t>(rng.next() & 0xFF);
      }
      mustThrowWireErrorOrSucceed(decoder, mutant,
                                  "mutation round " + std::to_string(round));
    }
  }
}

TEST(WireFuzz, RandomGarbagePayloads) {
  // Pure noise fed to every decoder: no valid structure at all.
  Rng rng(20260808);
  for (int round = 0; round < 512; ++round) {
    ByteVec garbage(rng.next() % 64);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.next() & 0xFF);
    for (const auto& [payload, decoder] : corpus())
      mustThrowWireErrorOrSucceed(decoder, garbage,
                                  "garbage round " + std::to_string(round));
  }
}

TEST(WireFuzz, FrameCodecBitFlips) {
  // Flips over the full frame (header + payload): every mutant must either
  // throw or decode to some payload; CRC makes "decodes fine" astronomically
  // unlikely but it is not a correctness violation.
  const ByteVec frame = encodeFrame(toBytes("framed payload with crc"));
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      ByteVec mutant = frame;
      mutant[byte] ^= static_cast<uint8_t>(1u << bit);
      try {
        (void)decodeFrame(mutant);
      } catch (const WireError&) {
      }
    }
  }
}

TEST(WireFuzz, FrameTruncationAtEveryLength) {
  const ByteVec frame = encodeFrame(toBytes("framed payload with crc"));
  for (size_t len = 0; len < frame.size(); ++len)
    EXPECT_THROW(decodeFrame(ByteView(frame.data(), len)), WireError) << len;
}

}  // namespace
}  // namespace freqdedup::server
