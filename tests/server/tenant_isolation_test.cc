// Tenant-isolation guarantees of freqdedupd: one shared chunk store, but a
// tenant can only ever see, restore or delete its own backups; quotas fail
// with a clean protocol error; and concurrent multi-tenant traffic over the
// socket restores bit-identical to the in-process client reading the same
// store.
#include <gtest/gtest.h>

#include <filesystem>
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chunking/cdc_chunker.h"
#include "client/dedup_client.h"
#include "common/rng.h"
#include "server/client_conn.h"
#include "server/server.h"
#include "server/tenant.h"
#include "storage/backup_store.h"

namespace freqdedup::server {
namespace {

ByteVec randomContent(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

class TenantIsolation : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& info = *::testing::UnitTest::GetInstance()->current_test_info();
    base_ = (std::filesystem::temp_directory_path() /
             ("fdd_tenant_" + std::string(info.name())))
                .string();
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override {
    server_.reset();
    std::filesystem::remove_all(base_);
  }

  /// Starts a daemon on a unix socket under the test dir.
  void startServer(TenantQuota quota = {}) {
    ServerOptions options;
    options.address = "unix:" + base_ + "/sock";
    options.threads = 4;
    options.quota = quota;
    options.store.containerBytes = 256 * 1024;
    options.allowShutdown = false;
    server_ = std::make_unique<FreqDedupServer>(base_ + "/store", options);
    server_->start();
  }

  [[nodiscard]] RemoteDedupClient connect(const std::string& tenant) const {
    return RemoteDedupClient(server_->boundAddress().str(), tenant,
                             "pass-" + tenant);
  }

  /// One whole remote backup in frame-sized pieces.
  static RemoteBackupResult backup(RemoteDedupClient& c,
                                   const std::string& name, ByteView data) {
    const RemoteBackup b = c.openBackup(name);
    c.append(b, data);
    return c.finishBackup(b);
  }

  /// listBackups in deterministic order (the store's listing order is
  /// index-implementation-defined).
  static std::vector<std::string> sortedList(RemoteDedupClient& c) {
    std::vector<std::string> names = c.listBackups();
    std::sort(names.begin(), names.end());
    return names;
  }

  std::string base_;
  std::unique_ptr<FreqDedupServer> server_;
};

TEST_F(TenantIsolation, ListShowsOnlyOwnBackups) {
  startServer();
  RemoteDedupClient acme = connect("acme");
  RemoteDedupClient beta = connect("beta");

  backup(acme, "vm.img", randomContent(1, 64 * 1024));
  backup(acme, "db.img", randomContent(2, 32 * 1024));
  backup(beta, "vm.img", randomContent(3, 48 * 1024));

  EXPECT_EQ(sortedList(acme),
            (std::vector<std::string>{"db.img", "vm.img"}));
  EXPECT_EQ(sortedList(beta), (std::vector<std::string>{"vm.img"}));
}

TEST_F(TenantIsolation, CannotRestoreAnotherTenantsBackup) {
  startServer();
  RemoteDedupClient acme = connect("acme");
  RemoteDedupClient beta = connect("beta");

  backup(acme, "secret.img", randomContent(4, 64 * 1024));

  // Same bare name, different namespace: not found for beta.
  try {
    beta.restoreAll("secret.img");
    FAIL() << "beta restored acme's backup";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
  // Even naming the scoped store-side name directly must not escape the
  // caller's namespace (it just becomes "t/beta/t/acme/secret.img").
  try {
    beta.restoreAll("t/acme/secret.img");
    FAIL() << "beta escaped its namespace via a scoped name";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
  // The owner still restores fine after the probing.
  EXPECT_EQ(acme.restoreAll("secret.img"), randomContent(4, 64 * 1024));
}

TEST_F(TenantIsolation, CannotDeleteAnotherTenantsBackup) {
  startServer();
  RemoteDedupClient acme = connect("acme");
  RemoteDedupClient beta = connect("beta");

  const ByteVec content = randomContent(5, 64 * 1024);
  backup(acme, "vm.img", content);

  EXPECT_FALSE(beta.deleteBackup("vm.img"));
  EXPECT_FALSE(beta.deleteBackup("t/acme/vm.img"));
  // Unaffected: still listed and restorable by its owner.
  EXPECT_EQ(sortedList(acme), (std::vector<std::string>{"vm.img"}));
  EXPECT_EQ(acme.restoreAll("vm.img"), content);
  // The owner's delete works.
  EXPECT_TRUE(acme.deleteBackup("vm.img"));
  EXPECT_TRUE(acme.listBackups().empty());
}

TEST_F(TenantIsolation, CannotImpersonateAnotherTenant) {
  startServer();
  RemoteDedupClient acme = connect("acme");
  backup(acme, "secret.img", randomContent(12, 64 * 1024));

  // Claiming acme's tenant id with a different passphrase must fail the
  // handshake outright — the id alone grants nothing once its verifier is
  // registered, so the namespace (list/restore/delete) is unreachable.
  try {
    RemoteDedupClient mallory(server_->boundAddress().str(), "acme",
                              "pass-mallory");
    FAIL() << "wrong passphrase connected as acme";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAuthFailed);
  }
  // The legitimate tenant is unaffected.
  EXPECT_EQ(acme.restoreAll("secret.img"), randomContent(12, 64 * 1024));
}

TEST_F(TenantIsolation, QuotaExhaustionIsACleanProtocolError) {
  TenantQuota quota;
  quota.maxLogicalBytes = 100 * 1024;
  startServer(quota);
  RemoteDedupClient acme = connect("acme");

  // First backup fits.
  backup(acme, "a", randomContent(6, 80 * 1024));
  // Second would exceed the byte budget: the finish must fail with
  // kQuotaExceeded and the connection must remain usable.
  const RemoteBackup b = acme.openBackup("b");
  acme.append(b, randomContent(7, 64 * 1024));
  try {
    acme.finishBackup(b);
    FAIL() << "finish over quota succeeded";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kQuotaExceeded);
  }
  // Connection still works; the rejected backup was never committed.
  EXPECT_EQ(sortedList(acme), (std::vector<std::string>{"a"}));
  // And the quota is per tenant: another tenant is unaffected.
  RemoteDedupClient beta = connect("beta");
  backup(beta, "b", randomContent(7, 64 * 1024));
  EXPECT_EQ(sortedList(beta), (std::vector<std::string>{"b"}));
}

TEST_F(TenantIsolation, BackupCountQuota) {
  TenantQuota quota;
  quota.maxBackups = 2;
  startServer(quota);
  RemoteDedupClient acme = connect("acme");

  backup(acme, "a", randomContent(8, 8 * 1024));
  backup(acme, "b", randomContent(9, 8 * 1024));
  const RemoteBackup third = acme.openBackup("c");
  acme.append(third, randomContent(10, 8 * 1024));
  try {
    acme.finishBackup(third);
    FAIL() << "third backup exceeded maxBackups=2";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kQuotaExceeded);
  }
  // Replacing an existing name is not a new backup and must still work.
  backup(acme, "a", randomContent(11, 8 * 1024));
  EXPECT_EQ(acme.restoreAll("a"), randomContent(11, 8 * 1024));
}

TEST_F(TenantIsolation, ConcurrentTenantsRestoreBitIdentical) {
  startServer();
  constexpr int kTenants = 4;
  constexpr int kBackupsPerTenant = 3;

  // Content deliberately overlaps across tenants (seed reuse) so the
  // cross-tenant dedup path is exercised while each tenant's restore must
  // still return exactly its own bytes.
  auto contentFor = [](int tenant, int backup) {
    return randomContent(static_cast<uint64_t>(backup),
                         48 * 1024 + 4096u * static_cast<size_t>(tenant));
  };

  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      RemoteDedupClient client = connect("tenant" + std::to_string(t));
      for (int i = 0; i < kBackupsPerTenant; ++i)
        backup(client, "obj" + std::to_string(i), contentFor(t, i));
      for (int i = 0; i < kBackupsPerTenant; ++i)
        ASSERT_EQ(client.restoreAll("obj" + std::to_string(i)),
                  contentFor(t, i));
    });
  }
  for (auto& th : threads) th.join();

  // Stop the daemon and read the same store with the IN-PROCESS client:
  // remote restores must match what a local DedupClient sees, proving the
  // socket path adds no transformation. The daemon stores recipes sealed
  // under userKeyFromPassphrase(hello.passphrase) at the scoped name.
  server_.reset();
  auto store = makeBackupStore(StoreBackend::kFile, base_ + "/store",
                               {.containerBytes = 256 * 1024});
  DedupClient local(*store);
  for (int t = 0; t < kTenants; ++t) {
    const std::string tenant = "tenant" + std::to_string(t);
    const AesKey key = userKeyFromPassphrase("pass-" + tenant);
    for (int i = 0; i < kBackupsPerTenant; ++i) {
      RestoreSession session = local.beginRestore(
          scopedBackupName(tenant, "obj" + std::to_string(i)), key);
      EXPECT_EQ(session.readAll(), contentFor(t, i));
    }
  }
}

TEST_F(TenantIsolation, CrossTenantDedupIsCountedNotShared) {
  startServer();
  const ByteVec shared = randomContent(42, 128 * 1024);

  RemoteDedupClient acme = connect("acme");
  const RemoteBackupResult first = backup(acme, "vm.img", shared);
  EXPECT_GT(first.newChunks, 0u);
  EXPECT_EQ(first.crossTenantDuplicates, 0u);

  // Same bytes from another tenant: everything dedups, and every duplicate
  // not previously stored by beta itself counts as cross-tenant — the
  // leakage surface the paper's frequency attacker exploits.
  RemoteDedupClient beta = connect("beta");
  const RemoteBackupResult second = backup(beta, "vm.img", shared);
  EXPECT_EQ(second.newChunks, 0u);
  EXPECT_EQ(second.duplicateChunks, second.chunkCount);
  EXPECT_GT(second.crossTenantDuplicates, 0u);

  // Sharing chunks must not leak names or bytes across the namespace.
  EXPECT_EQ(sortedList(beta), (std::vector<std::string>{"vm.img"}));
  EXPECT_EQ(beta.restoreAll("vm.img"), shared);
  EXPECT_TRUE(acme.deleteBackup("vm.img"));
  // beta's copy survives acme's delete (its manifest holds the refs).
  EXPECT_EQ(beta.restoreAll("vm.img"), shared);
}

}  // namespace
}  // namespace freqdedup::server
