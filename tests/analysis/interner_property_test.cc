// Property tests for the open-addressing FpInterner: against an
// unordered_map reference on random streams, on adversarial fingerprints
// that all collide into the same probe chain, and batch (internAll) vs
// one-at-a-time interning across rehash boundaries.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "analysis/stream_index.h"
#include "common/rng.h"

namespace freqdedup::analysis {
namespace {

/// Reference semantics: first-appearance-order dense IDs.
class MapInterner {
 public:
  ChunkId intern(Fp fp) {
    const auto [it, inserted] =
        ids_.try_emplace(fp, static_cast<ChunkId>(fps_.size()));
    if (inserted) fps_.push_back(fp);
    return it->second;
  }
  [[nodiscard]] const std::vector<Fp>& fps() const { return fps_; }

 private:
  std::unordered_map<Fp, ChunkId, FpHash> ids_;
  std::vector<Fp> fps_;
};

std::vector<ChunkRecord> toRecords(const std::vector<Fp>& fps) {
  std::vector<ChunkRecord> records;
  records.reserve(fps.size());
  for (const Fp fp : fps) records.push_back({fp, 100});
  return records;
}

void expectMatchesReference(const std::vector<Fp>& stream) {
  MapInterner reference;
  FpInterner one;           // one-at-a-time
  FpInterner batched;       // internAll
  for (const Fp fp : stream) {
    EXPECT_EQ(one.intern(fp), reference.intern(fp));
  }
  const auto records = toRecords(stream);
  std::vector<ChunkId> ids;
  batched.internAll(records, ids);
  ASSERT_EQ(ids.size(), stream.size());
  ASSERT_EQ(batched.uniqueCount(), reference.fps().size());
  EXPECT_EQ(batched.fps(), reference.fps());
  EXPECT_EQ(one.fps(), reference.fps());
  for (size_t j = 0; j < stream.size(); ++j) {
    EXPECT_EQ(batched.fpOf(ids[j]), stream[j]);
  }
  // Lookups round-trip for every interned fingerprint, and miss for others.
  for (ChunkId id = 0; id < batched.uniqueCount(); ++id) {
    EXPECT_EQ(batched.idOf(batched.fpOf(id)).value(), id);
  }
  EXPECT_FALSE(batched.idOf(0xDEADBEEFCAFEBABEull).has_value());
}

TEST(FpInternerProperty, RandomStreamsMatchUnorderedMap) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    std::vector<Fp> stream;
    Fp fresh = 1'000'000;
    for (size_t j = 0; j < 50'000; ++j) {
      // Zipf-ish mix: hot pool, warm pool, fresh singletons.
      if (rng.bernoulli(0.5)) {
        stream.push_back(rng.uniformInt(0, 100));
      } else if (rng.bernoulli(0.5)) {
        stream.push_back(rng.uniformInt(0, 20'000));
      } else {
        stream.push_back(fresh++);
      }
    }
    expectMatchesReference(stream);
  }
}

TEST(FpInternerProperty, AdversarialCollidingFingerprints) {
  // Fingerprints chosen (by brute force) so mix64 lands every one of them in
  // the same initial slot of a 64-slot table: the worst probe chain the
  // table can see, crossing several growth rehashes.
  std::vector<Fp> colliding;
  for (Fp fp = 0; colliding.size() < 4000; ++fp) {
    if ((static_cast<size_t>(mix64(fp)) & 63u) == 0) colliding.push_back(fp);
  }
  // Each fingerprint appears twice: second pass must find, not re-insert.
  std::vector<Fp> stream = colliding;
  stream.insert(stream.end(), colliding.begin(), colliding.end());
  expectMatchesReference(stream);

  FpInterner interner;
  for (const Fp fp : colliding) interner.intern(fp);
  EXPECT_EQ(interner.uniqueCount(), colliding.size());
  for (size_t i = 0; i < colliding.size(); ++i) {
    EXPECT_EQ(interner.intern(colliding[i]), static_cast<ChunkId>(i));
  }
}

TEST(FpInternerProperty, ReserveDoesNotDisturbAssignment) {
  std::vector<Fp> stream;
  for (Fp fp = 0; fp < 10'000; ++fp) stream.push_back(fp * 2654435761u);
  FpInterner plain;
  FpInterner reserved;
  reserved.reserve(stream.size());
  for (const Fp fp : stream) {
    EXPECT_EQ(plain.intern(fp), reserved.intern(fp));
  }
  EXPECT_EQ(plain.fps(), reserved.fps());
}

TEST(FpInternerProperty, InternAllResumesAfterManualInterns) {
  // Mixing the two entry points on one interner keeps IDs dense and stable.
  FpInterner interner;
  EXPECT_EQ(interner.intern(1000), 0u);
  EXPECT_EQ(interner.intern(2000), 1u);
  const auto records = toRecords({2000, 3000, 1000, 3000});
  std::vector<ChunkId> ids;
  interner.internAll(records, ids);
  EXPECT_EQ(ids, (std::vector<ChunkId>{1, 2, 0, 2}));
  EXPECT_EQ(interner.uniqueCount(), 3u);
}

}  // namespace
}  // namespace freqdedup::analysis
