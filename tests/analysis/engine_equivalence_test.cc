// Golden equivalence tests: the analysis engine must reproduce the frozen
// legacy serial implementation bit-identically — same inferred mapping and
// same processed-pair count — for all three attacks, both attack modes, and
// every thread count.
#include <gtest/gtest.h>

#include "analysis/attack_engine.h"
#include "common/rng.h"
#include "core/attack_eval.h"
#include "core/defense.h"
#include "datagen/fsl_gen.h"
#include "legacy_reference.h"

namespace freqdedup {
namespace {

constexpr uint32_t kThreadCounts[] = {1, 2, 8};

/// Deterministic chunk size per fingerprint (a fingerprint fixes its
/// content and hence its size); mixes several AES-block size classes.
uint32_t sizeFor(Fp fp) {
  return static_cast<uint32_t>(100 + 16 * (fp % 7));
}

/// A random stream with locality (motif runs), skewed frequencies, and
/// fresh singletons — the structural features the attacks exploit.
std::vector<ChunkRecord> randomStream(uint64_t seed, size_t length) {
  Rng rng(seed);
  std::vector<ChunkRecord> records;
  records.reserve(length);
  Fp freshFp = 1'000'000 + seed * 10'000'000;
  while (records.size() < length) {
    if (rng.bernoulli(0.6)) {
      // A motif: a short run from a small hot pool (ties + adjacency).
      const Fp base = rng.uniformInt(0, 40) * 10;
      const size_t run = 1 + rng.uniformInt(0, 6);
      for (size_t i = 0; i < run && records.size() < length; ++i) {
        const Fp fp = base + i;
        records.push_back({fp, sizeFor(fp)});
      }
    } else {
      const Fp fp = rng.bernoulli(0.5) ? rng.uniformInt(500, 700) : freshFp++;
      records.push_back({fp, sizeFor(fp)});
    }
  }
  return records;
}

/// A perturbed copy: what a neighboring backup of the same source looks
/// like (shared runs, some churn).
std::vector<ChunkRecord> perturb(std::vector<ChunkRecord> records,
                                 uint64_t seed) {
  Rng rng(seed);
  for (auto& r : records) {
    if (rng.bernoulli(0.05)) {
      const Fp fp = 2'000'000 + rng.uniformInt(0, 100'000);
      r = {fp, sizeFor(fp)};
    }
  }
  return records;
}

void expectIdentical(const AttackResult& expected, const AttackResult& got,
                     const std::string& label) {
  EXPECT_EQ(expected.processedPairs, got.processedPairs) << label;
  ASSERT_EQ(expected.inferred.size(), got.inferred.size()) << label;
  for (const auto& [cipherFp, plainFp] : expected.inferred) {
    const auto it = got.inferred.find(cipherFp);
    ASSERT_NE(it, got.inferred.end()) << label;
    EXPECT_EQ(it->second, plainFp) << label;
  }
}

void checkAllAttacks(const EncryptedTrace& target,
                     const std::vector<ChunkRecord>& aux,
                     const std::vector<InferredPair>& leaked,
                     const std::string& label) {
  for (const bool sizeAware : {false, true}) {
    const AttackResult legacyBasic =
        legacy::basicAttack(target.records, aux, sizeAware);

    AttackConfig co;
    co.u = 3;
    co.v = 5;
    co.w = 500;
    co.sizeAware = sizeAware;
    const AttackResult legacyCo =
        legacy::localityAttack(target.records, aux, co);

    AttackConfig kp = co;
    kp.mode = AttackMode::kKnownPlaintext;
    kp.leakedPairs = leaked;
    const AttackResult legacyKp =
        legacy::localityAttack(target.records, aux, kp);

    for (const uint32_t threads : kThreadCounts) {
      const std::string tag = label + (sizeAware ? " sized" : " plain") +
                              " threads=" + std::to_string(threads);
      analysis::AttackEngine engine = analysis::AttackEngine::fromRecords(
          target.records, aux, {threads});
      expectIdentical(legacyBasic, engine.basicAttack(sizeAware),
                      tag + " basic");
      expectIdentical(legacyCo, engine.localityAttack(co),
                      tag + " ciphertext-only");
      expectIdentical(legacyKp, engine.localityAttack(kp),
                      tag + " known-plaintext");
      if (threads > 1) {
        // The cost model may (correctly) pick serial plans on small streams
        // or single-core machines; force the parallel plan so the parallel
        // build paths are pinned against the legacy reference everywhere.
        analysis::AnalysisOptions forced;
        forced.threads = threads;
        forced.plan = analysis::ComputePlan::kParallel;
        analysis::AttackEngine forcedEngine =
            analysis::AttackEngine::fromRecords(target.records, aux, forced);
        expectIdentical(legacyBasic, forcedEngine.basicAttack(sizeAware),
                        tag + " basic forced-parallel");
        expectIdentical(legacyCo, forcedEngine.localityAttack(co),
                        tag + " ciphertext-only forced-parallel");
        expectIdentical(legacyKp, forcedEngine.localityAttack(kp),
                        tag + " known-plaintext forced-parallel");
      }
    }
  }
}

TEST(EngineEquivalence, RandomizedTraces) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<ChunkRecord> plainTarget = randomStream(seed, 2500);
    const std::vector<ChunkRecord> aux = perturb(plainTarget, seed + 100);
    const EncryptedTrace target = mleEncryptTrace(plainTarget);
    Rng rng(seed + 200);
    const std::vector<InferredPair> leaked =
        sampleLeakedPairs(target, 0.01, rng);
    checkAllAttacks(target, aux, leaked, "seed=" + std::to_string(seed));
  }
}

TEST(EngineEquivalence, FslMiniDataset) {
  FslGenParams params;
  params.users = 2;
  params.filesPerUser = 20;
  params.backups = 2;
  params.sharedTemplateFiles = 10;
  const Dataset dataset = generateFslDataset(params);
  const EncryptedTrace target =
      mleEncryptTrace(dataset.backups[1].records, kFslFpBits);
  Rng rng(77);
  const std::vector<InferredPair> leaked =
      sampleLeakedPairs(target, 0.002, rng);
  checkAllAttacks(target, dataset.backups[0].records, leaked, "fsl-mini");
}

TEST(EngineEquivalence, MinHashDefenseEvaluation) {
  // The defense evaluation path: attacks against MinHash-encrypted (and
  // scrambled) targets must also match the legacy engine exactly.
  const std::vector<ChunkRecord> plainTarget = randomStream(9, 2000);
  const std::vector<ChunkRecord> aux = perturb(plainTarget, 42);
  for (const bool scramble : {false, true}) {
    DefenseConfig defense;
    defense.scramble = scramble;
    defense.segment.avgChunkBytes = 128;
    defense.segment.minBytes = 1 << 10;
    defense.segment.avgBytes = 2 << 10;
    defense.segment.maxBytes = 4 << 10;
    const EncryptedTrace target = minHashEncryptTrace(plainTarget, defense);
    Rng rng(5);
    const std::vector<InferredPair> leaked =
        sampleLeakedPairs(target, 0.01, rng);
    checkAllAttacks(target, aux, leaked,
                    scramble ? "minhash+scramble" : "minhash");
  }
}

TEST(EngineEquivalence, EmptyAndDegenerateStreams) {
  const std::vector<ChunkRecord> empty;
  const std::vector<ChunkRecord> one{{42, 100}};
  for (const uint32_t threads : kThreadCounts) {
    analysis::AnalysisOptions options{threads};
    {
      analysis::AttackEngine engine =
          analysis::AttackEngine::fromRecords(empty, empty, options);
      EXPECT_TRUE(engine.basicAttack(false).inferred.empty());
      AttackConfig config;
      EXPECT_TRUE(engine.localityAttack(config).inferred.empty());
    }
    {
      analysis::AttackEngine engine =
          analysis::AttackEngine::fromRecords(one, empty, options);
      EXPECT_TRUE(engine.basicAttack(true).inferred.empty());
    }
    {
      analysis::AttackEngine engine =
          analysis::AttackEngine::fromRecords(one, one, options);
      const AttackResult result = engine.basicAttack(false);
      ASSERT_EQ(result.inferred.size(), 1u);
      EXPECT_EQ(result.inferred.at(42), 42u);
    }
  }
}

TEST(EngineEquivalence, WrapperApiUsesEngine) {
  // The core API (basicAttack/localityAttack) is a thin wrapper over the
  // engine; spot-check it against the legacy reference too, including the
  // config.threads knob.
  const std::vector<ChunkRecord> plainTarget = randomStream(4, 1500);
  const std::vector<ChunkRecord> aux = perturb(plainTarget, 8);
  const EncryptedTrace target = mleEncryptTrace(plainTarget);

  expectIdentical(legacy::basicAttack(target.records, aux, false),
                  basicAttack(target.records, aux, false, 8), "wrapper basic");

  AttackConfig config;
  config.v = 3;
  config.w = 100;
  config.sizeAware = true;
  const AttackResult legacyResult =
      legacy::localityAttack(target.records, aux, config);
  config.threads = 8;
  expectIdentical(legacyResult, localityAttack(target.records, aux, config),
                  "wrapper locality");
}

}  // namespace
}  // namespace freqdedup
