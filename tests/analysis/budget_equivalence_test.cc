// Equivalence pins for the memory-budgeted builds: every index and every
// attack result must be bit-identical across budgets (tiny budget forcing
// maximal spill, a mid budget, unlimited) and thread counts, on randomized
// traces and an FSL-mini dataset. Thread counts above 1 force the parallel
// plan so the parallel pipelines stay covered on single-core CI boxes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/attack_engine.h"
#include "analysis/budget.h"
#include "analysis/frequency_index.h"
#include "analysis/neighbor_index.h"
#include "analysis/stream_index.h"
#include "common/rng.h"
#include "core/attack_eval.h"
#include "datagen/fsl_gen.h"

namespace freqdedup::analysis {
namespace {

constexpr uint32_t kThreadCounts[] = {1, 2, 8};

struct BudgetCase {
  uint64_t bytes;
  const char* label;
};

// 4 KB forces the maximum shard count the stream supports; 256 KB is a mid
// budget (several shards); 0 is unlimited (in-memory pipeline).
constexpr BudgetCase kBudgets[] = {
    {4u << 10, "tiny"}, {256u << 10, "mid"}, {0, "unlimited"}};

uint32_t sizeFor(Fp fp) {
  return static_cast<uint32_t>(100 + 16 * (fp % 7));
}

/// Random stream with motif runs, skewed frequencies, and fresh singletons
/// (same structure the engine-equivalence suite uses).
std::vector<ChunkRecord> randomStream(uint64_t seed, size_t length) {
  Rng rng(seed);
  std::vector<ChunkRecord> records;
  records.reserve(length);
  Fp freshFp = 1'000'000 + seed * 10'000'000;
  while (records.size() < length) {
    if (rng.bernoulli(0.6)) {
      const Fp base = rng.uniformInt(0, 40) * 10;
      const size_t run = 1 + rng.uniformInt(0, 6);
      for (size_t i = 0; i < run && records.size() < length; ++i) {
        const Fp fp = base + i;
        records.push_back({fp, sizeFor(fp)});
      }
    } else {
      const Fp fp = rng.bernoulli(0.5) ? rng.uniformInt(500, 700) : freshFp++;
      records.push_back({fp, sizeFor(fp)});
    }
  }
  return records;
}

std::vector<ChunkRecord> perturb(std::vector<ChunkRecord> records,
                                 uint64_t seed) {
  Rng rng(seed);
  for (auto& r : records) {
    if (rng.bernoulli(0.05)) {
      const Fp fp = 2'000'000 + rng.uniformInt(0, 100'000);
      r = {fp, sizeFor(fp)};
    }
  }
  return records;
}

NeighborBuildOptions neighborOptions(uint32_t threads, uint64_t budgetBytes) {
  NeighborBuildOptions options;
  options.threads = threads;
  options.budget.memoryBytes = budgetBytes;
  // kAuto would serialize on a single-core machine; forcing the parallel
  // plan keeps the multi-worker partition paths covered everywhere.
  if (threads > 1) options.plan = ComputePlan::kParallel;
  return options;
}

void expectSameNeighbors(const NeighborIndex& expected,
                         const NeighborIndex& got, size_t unique,
                         const std::string& label) {
  ASSERT_EQ(expected.entryCount(), got.entryCount()) << label;
  for (ChunkId id = 0; id < unique; ++id) {
    const auto a = expected.neighbors(id);
    const auto b = got.neighbors(id);
    ASSERT_EQ(a.size(), b.size()) << label << " id=" << id;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << label << " id=" << id << " i=" << i;
      EXPECT_EQ(a[i].count, b[i].count)
          << label << " id=" << id << " i=" << i;
    }
  }
}

TEST(BudgetEquivalence, NeighborIndexAcrossBudgetsAndThreads) {
  using Side = NeighborIndex::Side;
  for (const uint64_t seed : {11u, 12u}) {
    const auto records = randomStream(seed, 3000);
    const auto stream = ChunkStreamIndex::build(records);
    for (const Side side : {Side::kLeft, Side::kRight}) {
      const NeighborIndex baseline =
          NeighborIndex::build(stream, side, neighborOptions(1, 0));
      EXPECT_STREQ(baseline.buildStats().plan, "serial");
      for (const BudgetCase& budget : kBudgets) {
        for (const uint32_t threads : kThreadCounts) {
          const std::string label =
              "seed=" + std::to_string(seed) + " budget=" + budget.label +
              " threads=" + std::to_string(threads) +
              (side == Side::kLeft ? " left" : " right");
          const NeighborIndex got = NeighborIndex::build(
              stream, side, neighborOptions(threads, budget.bytes));
          expectSameNeighbors(baseline, got, stream.uniqueCount(), label);
          if (budget.bytes != 0 &&
              neighborInMemoryEstimate(records.size() - 1,
                                       stream.uniqueCount()) > budget.bytes) {
            EXPECT_STREQ(got.buildStats().plan, "spill") << label;
            EXPECT_GT(got.buildStats().spillBytes, 0u) << label;
            EXPECT_GT(got.buildStats().spillFiles, 0u) << label;
          }
        }
      }
      // SpillPlan::kForce exercises the external pipeline even when the
      // budget would not demand it.
      NeighborBuildOptions forced = neighborOptions(2, 0);
      forced.spill = SpillPlan::kForce;
      const NeighborIndex spilled = NeighborIndex::build(stream, side, forced);
      expectSameNeighbors(baseline, spilled, stream.uniqueCount(),
                          "forced spill");
      EXPECT_STREQ(spilled.buildStats().plan, "spill");
    }
  }
}

TEST(BudgetEquivalence, TinyBudgetShardsMoreThanMidBudget) {
  // The shard count must actually respond to the budget: a tiny budget
  // splits the same stream into more spill shards than a mid budget.
  const auto records = randomStream(13, 5000);
  const auto stream = ChunkStreamIndex::build(records);
  const auto shardsAt = [&](uint64_t budgetBytes) {
    const NeighborIndex index = NeighborIndex::build(
        stream, NeighborIndex::Side::kRight, neighborOptions(1, budgetBytes));
    EXPECT_STREQ(index.buildStats().plan, "spill");
    return index.buildStats().shards;
  };
  EXPECT_GT(shardsAt(4u << 10), shardsAt(16u << 10));
}

TEST(BudgetEquivalence, FrequencyIndexAcrossPlans) {
  for (const uint64_t seed : {21u, 22u}) {
    const auto records = randomStream(seed, 4000);
    const auto stream = ChunkStreamIndex::build(records);
    FrequencyBuildOptions serial;
    const FrequencyIndex baseline = FrequencyIndex::build(stream, serial);
    EXPECT_STREQ(baseline.stats.plan, "serial");
    for (const uint32_t threads : kThreadCounts) {
      FrequencyBuildOptions options;
      options.threads = threads;
      options.plan = ComputePlan::kParallel;
      const FrequencyIndex got = FrequencyIndex::build(stream, options);
      EXPECT_STREQ(got.stats.plan, "parallel");
      EXPECT_EQ(baseline.counts, got.counts)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

void expectIdentical(const AttackResult& expected, const AttackResult& got,
                     const std::string& label) {
  EXPECT_EQ(expected.processedPairs, got.processedPairs) << label;
  ASSERT_EQ(expected.inferred.size(), got.inferred.size()) << label;
  for (const auto& [cipherFp, plainFp] : expected.inferred) {
    const auto it = got.inferred.find(cipherFp);
    ASSERT_NE(it, got.inferred.end()) << label;
    EXPECT_EQ(it->second, plainFp) << label;
  }
}

void checkAttacksAcrossBudgets(const EncryptedTrace& target,
                               const std::vector<ChunkRecord>& aux,
                               const std::string& label) {
  for (const bool sizeAware : {false, true}) {
    AttackConfig config;
    config.u = 3;
    config.v = 5;
    config.w = 500;
    config.sizeAware = sizeAware;

    AnalysisOptions serialOpts;
    AttackEngine serialEngine =
        AttackEngine::fromRecords(target.records, aux, serialOpts);
    const AttackResult baselineBasic = serialEngine.basicAttack(sizeAware);
    const AttackResult baselineLocality =
        serialEngine.localityAttack(config);

    for (const BudgetCase& budget : kBudgets) {
      for (const uint32_t threads : kThreadCounts) {
        const std::string tag = label + (sizeAware ? " sized" : " plain") +
                                " budget=" + budget.label +
                                " threads=" + std::to_string(threads);
        AnalysisOptions options;
        options.threads = threads;
        options.budget.memoryBytes = budget.bytes;
        if (threads > 1) options.plan = ComputePlan::kParallel;
        AttackEngine engine =
            AttackEngine::fromRecords(target.records, aux, options);
        expectIdentical(baselineBasic, engine.basicAttack(sizeAware),
                        tag + " basic");
        expectIdentical(baselineLocality, engine.localityAttack(config),
                        tag + " locality");
      }
    }
  }
}

TEST(BudgetEquivalence, AttacksOnRandomizedTraces) {
  const std::vector<ChunkRecord> plainTarget = randomStream(31, 2500);
  const std::vector<ChunkRecord> aux = perturb(plainTarget, 131);
  const EncryptedTrace target = mleEncryptTrace(plainTarget);
  checkAttacksAcrossBudgets(target, aux, "randomized");
}

TEST(BudgetEquivalence, AttacksOnFslMiniDataset) {
  FslGenParams params;
  params.users = 2;
  params.filesPerUser = 20;
  params.backups = 2;
  params.sharedTemplateFiles = 10;
  const Dataset dataset = generateFslDataset(params);
  const EncryptedTrace target =
      mleEncryptTrace(dataset.backups[1].records, kFslFpBits);
  checkAttacksAcrossBudgets(target, dataset.backups[0].records, "fsl-mini");
}

TEST(BudgetEquivalence, WrapperConfigForwardsBudget) {
  // The core AttackConfig knobs reach the engine: a tiny budget through the
  // wrapper API must spill and still match the unbudgeted result.
  const std::vector<ChunkRecord> plainTarget = randomStream(41, 2000);
  const std::vector<ChunkRecord> aux = perturb(plainTarget, 141);
  const EncryptedTrace target = mleEncryptTrace(plainTarget);
  AttackConfig config;
  config.v = 5;
  config.w = 300;
  const AttackResult baseline =
      localityAttack(target.records, aux, config);
  config.memBudgetBytes = 4u << 10;
  expectIdentical(baseline, localityAttack(target.records, aux, config),
                  "wrapper budget");
}

}  // namespace
}  // namespace freqdedup::analysis
