// Spill hygiene: spill directories never outlive a build (success or
// failure), and spill I/O errors surface as std::runtime_error instead of
// corrupting results.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/budget.h"
#include "analysis/neighbor_index.h"
#include "analysis/stream_index.h"

namespace freqdedup::analysis {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the system temp dir, removed on teardown.
class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("fdd-spill-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  [[nodiscard]] size_t entriesUnder(const fs::path& dir) const {
    size_t n = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir)) ++n;
    return n;
  }

  fs::path base_;
};

std::vector<ChunkRecord> smallStream() {
  std::vector<ChunkRecord> records;
  for (size_t j = 0; j < 2000; ++j) {
    records.push_back({static_cast<Fp>(j % 37 + 17 * (j % 11)), 100});
  }
  return records;
}

TEST_F(SpillTest, DirectoryRemovedAfterSuccessfulBuild) {
  const auto stream = ChunkStreamIndex::build(smallStream());
  NeighborBuildOptions options;
  options.budget.memoryBytes = 4u << 10;
  options.budget.spillDir = base_.string();
  options.spill = SpillPlan::kForce;
  const NeighborIndex index =
      NeighborIndex::build(stream, NeighborIndex::Side::kRight, options);
  EXPECT_STREQ(index.buildStats().plan, "spill");
  EXPECT_GT(index.buildStats().spillBytes, 0u);
  // The per-build subdirectory (and every spill file in it) is gone.
  EXPECT_EQ(entriesUnder(base_), 0u);
}

TEST_F(SpillTest, UnusableSpillDirThrowsCleanException) {
  // The configured spill base is an existing regular file: the build must
  // fail with std::runtime_error, not crash or silently fall back.
  const fs::path file = base_ / "not-a-directory";
  std::ofstream(file) << "occupied";
  const auto stream = ChunkStreamIndex::build(smallStream());
  NeighborBuildOptions options;
  options.budget.spillDir = file.string();
  options.spill = SpillPlan::kForce;
  EXPECT_THROW(
      NeighborIndex::build(stream, NeighborIndex::Side::kLeft, options),
      std::runtime_error);
}

TEST_F(SpillTest, SpillDirCreatesAndRemovesUniqueSubdir) {
  fs::path created;
  {
    SpillDir dir(base_.string());
    created = dir.path();
    EXPECT_TRUE(fs::is_directory(created));
    // Two concurrent builds in one process get distinct directories.
    SpillDir other(base_.string());
    EXPECT_NE(other.path(), created);
  }
  EXPECT_FALSE(fs::exists(created));
  EXPECT_EQ(entriesUnder(base_), 0u);
}

TEST_F(SpillTest, WriterReportsWriteFailure) {
  // /dev/full fails every write with ENOSPC — the canonical disk-full probe.
  if (!fs::exists("/dev/full")) GTEST_SKIP() << "no /dev/full";
  const std::vector<uint64_t> block(1u << 16, 0x1234567890ABCDEFull);
  EXPECT_THROW(
      {
        SpillFileWriter writer("/dev/full");
        writer.write(block.data(), block.size() * sizeof(uint64_t));
        writer.finish();
      },
      std::runtime_error);
}

TEST_F(SpillTest, ReaderRejectsTruncatedFile) {
  const fs::path file = base_ / "truncated.raw";
  std::ofstream(file, std::ios::binary) << "123";  // not a multiple of 8
  std::vector<uint64_t> out;
  EXPECT_THROW(readSpillFile(file, out), std::runtime_error);
}

}  // namespace
}  // namespace freqdedup::analysis
