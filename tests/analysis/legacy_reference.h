// Frozen copy of the pre-analysis-engine serial attack implementation
// (src/core/freq_tables.cc + src/core/attacks.cc as of PR 2), kept verbatim
// as the golden reference for the engine-equivalence tests. The analysis
// engine must reproduce these results bit-identically at every thread
// count; do NOT "fix" or optimize this file — its value is that it does not
// change.
#pragma once

#include <algorithm>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/attacks.h"

namespace freqdedup::legacy {

using NeighborTable = std::unordered_map<Fp, FrequencyMap, FpHash>;

struct FrequencyTables {
  FrequencyMap freq;
  NeighborTable left;
  NeighborTable right;
  SizeMap sizeOf;
};

inline FrequencyTables countChunks(std::span<const ChunkRecord> records,
                                   bool withNeighbors) {
  FrequencyTables tables;
  tables.freq.reserve(records.size());
  tables.sizeOf.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const ChunkRecord& r = records[i];
    ++tables.freq[r.fp];
    tables.sizeOf.emplace(r.fp, r.size);
    if (!withNeighbors) continue;
    if (i > 0) ++tables.left[r.fp][records[i - 1].fp];
    if (i + 1 < records.size()) ++tables.right[r.fp][records[i + 1].fp];
  }
  return tables;
}

inline std::vector<std::pair<Fp, uint64_t>> sortByFrequency(
    const FrequencyMap& freq) {
  std::vector<std::pair<Fp, uint64_t>> sorted(freq.begin(), freq.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return sorted;
}

inline std::vector<InferredPair> freqAnalysis(const FrequencyMap& cipherFreq,
                                              const FrequencyMap& plainFreq,
                                              size_t x) {
  const auto cipherSorted = legacy::sortByFrequency(cipherFreq);
  const auto plainSorted = legacy::sortByFrequency(plainFreq);
  const size_t n = std::min({x, cipherSorted.size(), plainSorted.size()});
  std::vector<InferredPair> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pairs.push_back({cipherSorted[i].first, plainSorted[i].first});
  }
  return pairs;
}

inline std::unordered_map<uint32_t, FrequencyMap> classifyBySize(
    const FrequencyMap& freq, const SizeMap& sizes) {
  std::unordered_map<uint32_t, FrequencyMap> buckets;
  for (const auto& [fp, count] : freq) {
    const auto it = sizes.find(fp);
    if (it == sizes.end()) continue;
    buckets[sizeClassOf(it->second)].emplace(fp, count);
  }
  return buckets;
}

inline std::vector<InferredPair> freqAnalysisSized(
    const FrequencyMap& cipherFreq, const FrequencyMap& plainFreq, size_t x,
    const SizeMap& cipherSizes, const SizeMap& plainSizes) {
  const auto cipherBuckets = classifyBySize(cipherFreq, cipherSizes);
  const auto plainBuckets = classifyBySize(plainFreq, plainSizes);
  std::vector<uint32_t> classes;
  classes.reserve(cipherBuckets.size());
  for (const auto& [sizeClass, bucket] : cipherBuckets) {
    if (plainBuckets.contains(sizeClass)) classes.push_back(sizeClass);
  }
  std::sort(classes.begin(), classes.end());
  std::vector<InferredPair> pairs;
  for (const uint32_t sizeClass : classes) {
    const auto classPairs = legacy::freqAnalysis(cipherBuckets.at(sizeClass),
                                         plainBuckets.at(sizeClass), x);
    pairs.insert(pairs.end(), classPairs.begin(), classPairs.end());
  }
  return pairs;
}

inline AttackResult basicAttack(std::span<const ChunkRecord> cipher,
                                std::span<const ChunkRecord> plain,
                                bool sizeAware) {
  const FrequencyTables fc = countChunks(cipher, /*withNeighbors=*/false);
  const FrequencyTables fm = countChunks(plain, /*withNeighbors=*/false);
  const size_t all = std::max(fc.freq.size(), fm.freq.size());
  const std::vector<InferredPair> pairs =
      sizeAware
          ? legacy::freqAnalysisSized(fc.freq, fm.freq, all, fc.sizeOf, fm.sizeOf)
          : legacy::freqAnalysis(fc.freq, fm.freq, all);
  AttackResult result;
  result.inferred.reserve(pairs.size());
  for (const InferredPair& p : pairs)
    result.inferred.emplace(p.cipher, p.plain);
  return result;
}

inline std::vector<InferredPair> neighborAnalysis(
    const NeighborTable& cipherTable, const NeighborTable& plainTable,
    Fp cipherFp, Fp plainFp, size_t v, bool sizeAware,
    const SizeMap& cipherSizes, const SizeMap& plainSizes) {
  const auto cIt = cipherTable.find(cipherFp);
  const auto mIt = plainTable.find(plainFp);
  if (cIt == cipherTable.end() || mIt == plainTable.end()) return {};
  if (sizeAware) {
    return legacy::freqAnalysisSized(cIt->second, mIt->second, v, cipherSizes,
                             plainSizes);
  }
  return legacy::freqAnalysis(cIt->second, mIt->second, v);
}

inline AttackResult localityAttack(std::span<const ChunkRecord> cipher,
                                   std::span<const ChunkRecord> plain,
                                   const AttackConfig& config) {
  const FrequencyTables fc = countChunks(cipher, /*withNeighbors=*/true);
  const FrequencyTables fm = countChunks(plain, /*withNeighbors=*/true);

  AttackResult result;
  std::deque<InferredPair> g;

  if (config.mode == AttackMode::kCiphertextOnly) {
    const std::vector<InferredPair> seeds =
        config.sizeAware ? legacy::freqAnalysisSized(fc.freq, fm.freq, config.u,
                                             fc.sizeOf, fm.sizeOf)
                         : legacy::freqAnalysis(fc.freq, fm.freq, config.u);
    for (const InferredPair& p : seeds) g.push_back(p);
  } else {
    for (const InferredPair& p : config.leakedPairs) {
      if (!fc.freq.contains(p.cipher)) continue;
      result.inferred.emplace(p.cipher, p.plain);
      if (fm.freq.contains(p.plain)) g.push_back(p);
    }
  }
  for (const InferredPair& p : g) result.inferred.emplace(p.cipher, p.plain);

  while (!g.empty()) {
    const InferredPair current = g.front();
    g.pop_front();
    ++result.processedPairs;

    for (const bool leftSide : {true, false}) {
      const NeighborTable& cipherTable = leftSide ? fc.left : fc.right;
      const NeighborTable& plainTable = leftSide ? fm.left : fm.right;
      const std::vector<InferredPair> found = neighborAnalysis(
          cipherTable, plainTable, current.cipher, current.plain, config.v,
          config.sizeAware, fc.sizeOf, fm.sizeOf);
      for (const InferredPair& p : found) {
        if (result.inferred.emplace(p.cipher, p.plain).second) {
          if (g.size() <= config.w) g.push_back(p);
        }
      }
    }
  }
  return result;
}

}  // namespace freqdedup::legacy
