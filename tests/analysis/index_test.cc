// Unit tests for the columnar analysis indexes: interner, stream index,
// frequency counts, rankings, and the CSR neighbor index (including the
// Section 4.2 worked example that the legacy freq_tables tests pinned).
#include <gtest/gtest.h>

#include "analysis/attack_engine.h"
#include "analysis/frequency_index.h"
#include "analysis/neighbor_index.h"
#include "analysis/stream_index.h"

namespace freqdedup::analysis {
namespace {

std::vector<ChunkRecord> seq(std::initializer_list<Fp> fps,
                             uint32_t size = 100) {
  std::vector<ChunkRecord> records;
  for (const Fp fp : fps) records.push_back({fp, size});
  return records;
}

uint64_t countOf(const NeighborIndex& index, const ChunkStreamIndex& stream,
                 Fp fp, Fp neighborFp) {
  const auto id = stream.idOf(fp);
  if (!id) return 0;
  for (const NeighborIndex::Entry& e : index.neighbors(*id)) {
    if (stream.fpOf(e.id) == neighborFp) return e.count;
  }
  return 0;
}

TEST(FpInterner, FirstAppearanceOrder) {
  FpInterner interner;
  EXPECT_EQ(interner.intern(50), 0u);
  EXPECT_EQ(interner.intern(10), 1u);
  EXPECT_EQ(interner.intern(50), 0u);
  EXPECT_EQ(interner.intern(99), 2u);
  EXPECT_EQ(interner.uniqueCount(), 3u);
  EXPECT_EQ(interner.fpOf(1), 10u);
  EXPECT_EQ(interner.idOf(99).value(), 2u);
  EXPECT_FALSE(interner.idOf(1234).has_value());
  EXPECT_EQ(interner.fps(), (std::vector<Fp>{50, 10, 99}));
}

TEST(ChunkStreamIndex, ColumnsMatchStream) {
  const auto records = seq({7, 8, 7, 9});
  const auto stream = ChunkStreamIndex::build(records);
  EXPECT_EQ(stream.recordCount(), 4u);
  EXPECT_EQ(stream.uniqueCount(), 3u);
  EXPECT_EQ(stream.ids(), (std::vector<ChunkId>{0, 1, 0, 2}));
  EXPECT_EQ(stream.fpOf(0), 7u);
  EXPECT_EQ(stream.fpOf(2), 9u);
}

TEST(ChunkStreamIndex, SizesKeepFirstOccurrence) {
  std::vector<ChunkRecord> records{{1, 64}, {2, 128}, {1, 64}};
  const auto stream = ChunkStreamIndex::build(records);
  EXPECT_EQ(stream.sizeOf(*stream.idOf(1)), 64u);
  EXPECT_EQ(stream.sizeOf(*stream.idOf(2)), 128u);
}

TEST(FrequencyIndex, CountsFrequenciesAtEveryThreadCount) {
  const auto stream = ChunkStreamIndex::build(seq({1, 2, 1, 3, 1}));
  for (const uint32_t threads : {1u, 2u, 8u}) {
    const auto freq = FrequencyIndex::build(stream, threads);
    EXPECT_EQ(freq.counts[*stream.idOf(1)], 3u);
    EXPECT_EQ(freq.counts[*stream.idOf(2)], 1u);
    EXPECT_EQ(freq.counts[*stream.idOf(3)], 1u);
  }
}

TEST(FrequencyIndex, LargeStreamThreadInvariant) {
  std::vector<ChunkRecord> records;
  for (uint32_t i = 0; i < 50'000; ++i)
    records.push_back({(i * 7919) % 997, 100});
  const auto stream = ChunkStreamIndex::build(records);
  const auto serial = FrequencyIndex::build(stream, 1);
  // Force the parallel slice-and-reduce plan despite the small stream.
  const auto parallel =
      FrequencyIndex::build(stream, 8, /*parallelThreshold=*/0);
  EXPECT_EQ(serial.counts, parallel.counts);
}

TEST(Ranking, ByCountDescThenFpAsc) {
  // Counts: 20 -> 3, 10 -> 2, 30 -> 2 (tie broken by fingerprint).
  const auto stream =
      ChunkStreamIndex::build(seq({20, 30, 10, 20, 30, 10, 20}));
  const auto freq = FrequencyIndex::build(stream, 1);
  const auto top = rankByFrequency(freq, stream, 10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(stream.fpOf(top[0]), 20u);
  EXPECT_EQ(stream.fpOf(top[1]), 10u);
  EXPECT_EQ(stream.fpOf(top[2]), 30u);
  EXPECT_EQ(rankByFrequency(freq, stream, 2).size(), 2u);
}

TEST(Ranking, SizeClassesAscendingWithRankedRuns) {
  std::vector<ChunkRecord> records{{1, 16}, {2, 32}, {3, 16},
                                   {1, 16}, {4, 32}, {4, 32}};
  const auto stream = ChunkStreamIndex::build(records);
  const auto freq = FrequencyIndex::build(stream, 1);
  const auto ranking = rankBySizeClass(freq, stream);
  ASSERT_EQ(ranking.classes.size(), 2u);
  EXPECT_EQ(ranking.classes[0].sizeClass, 1u);
  EXPECT_EQ(ranking.classes[1].sizeClass, 2u);
  // Class 1 (16 bytes): fp 1 (count 2) then fp 3 (count 1).
  EXPECT_EQ(stream.fpOf(ranking.ids[ranking.classes[0].begin]), 1u);
  EXPECT_EQ(stream.fpOf(ranking.ids[ranking.classes[0].begin + 1]), 3u);
  // Class 2 (32 bytes): fp 4 (count 2) then fp 2 (count 1).
  EXPECT_EQ(stream.fpOf(ranking.ids[ranking.classes[1].begin]), 4u);
  EXPECT_EQ(stream.fpOf(ranking.ids[ranking.classes[1].begin + 1]), 2u);
}

TEST(NeighborIndex, PaperExampleTables) {
  // The plaintext sequence from the Figure 3 worked example:
  // M = <M1, M2, M1, M2, M3, M4, M2, M3, M4>.
  // L_M2 = {M1:2, M4:1}; R_M2 = {M1:1, M3:2} (Section 4.2's example).
  const auto stream =
      ChunkStreamIndex::build(seq({1, 2, 1, 2, 3, 4, 2, 3, 4}));
  for (const uint32_t threads : {1u, 2u, 8u}) {
    // The cost model would serialize a 9-record stream (and any stream on a
    // single-core machine); force the parallel plan so it stays covered.
    NeighborBuildOptions options;
    options.threads = threads;
    if (threads > 1) options.plan = ComputePlan::kParallel;
    const auto left =
        NeighborIndex::build(stream, NeighborIndex::Side::kLeft, options);
    const auto right =
        NeighborIndex::build(stream, NeighborIndex::Side::kRight, options);
    EXPECT_EQ(countOf(left, stream, 2, 1), 2u);
    EXPECT_EQ(countOf(left, stream, 2, 4), 1u);
    EXPECT_EQ(left.neighbors(*stream.idOf(2)).size(), 2u);
    EXPECT_EQ(countOf(right, stream, 2, 1), 1u);
    EXPECT_EQ(countOf(right, stream, 2, 3), 2u);
    EXPECT_EQ(right.neighbors(*stream.idOf(2)).size(), 2u);
  }
}

TEST(NeighborIndex, BoundaryChunksHaveNoOuterNeighbor) {
  const auto stream = ChunkStreamIndex::build(seq({7, 8}));
  const auto left =
      NeighborIndex::build(stream, NeighborIndex::Side::kLeft, 1);
  const auto right =
      NeighborIndex::build(stream, NeighborIndex::Side::kRight, 1);
  EXPECT_TRUE(left.neighbors(*stream.idOf(7)).empty());
  EXPECT_EQ(countOf(left, stream, 8, 7), 1u);
  EXPECT_TRUE(right.neighbors(*stream.idOf(8)).empty());
  EXPECT_EQ(countOf(right, stream, 7, 8), 1u);
}

TEST(NeighborIndex, SelfAdjacency) {
  const auto stream = ChunkStreamIndex::build(seq({5, 5, 5}));
  const auto left =
      NeighborIndex::build(stream, NeighborIndex::Side::kLeft, 1);
  EXPECT_EQ(countOf(left, stream, 5, 5), 2u);
}

TEST(NeighborIndex, ListsRankedByCountThenFp) {
  // Neighbors of 9: fp 4 twice, fps 2 and 8 once each -> 4, then 2, then 8.
  const auto stream =
      ChunkStreamIndex::build(seq({4, 9, 4, 9, 2, 9, 8, 9}));
  const auto left =
      NeighborIndex::build(stream, NeighborIndex::Side::kLeft, 1);
  const auto list = left.neighbors(*stream.idOf(9));
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(stream.fpOf(list[0].id), 4u);
  EXPECT_EQ(list[0].count, 2u);
  EXPECT_EQ(stream.fpOf(list[1].id), 2u);
  EXPECT_EQ(stream.fpOf(list[2].id), 8u);
}

TEST(NeighborIndex, ThreadCountInvariant) {
  std::vector<ChunkRecord> records;
  for (uint32_t i = 0; i < 20'000; ++i)
    records.push_back({(i * 31) % 512, 100});
  const auto stream = ChunkStreamIndex::build(records);
  for (const auto side :
       {NeighborIndex::Side::kLeft, NeighborIndex::Side::kRight}) {
    const auto serial = NeighborIndex::build(stream, side, 1);
    NeighborBuildOptions forced;
    forced.threads = 8;
    forced.plan = ComputePlan::kParallel;
    const auto parallel = NeighborIndex::build(stream, side, forced);
    ASSERT_EQ(serial.entryCount(), parallel.entryCount());
    for (ChunkId id = 0; id < stream.uniqueCount(); ++id) {
      const auto a = serial.neighbors(id);
      const auto b = parallel.neighbors(id);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].count, b[i].count);
      }
    }
  }
}

TEST(NeighborIndex, EmptyAndSingleStreams) {
  const auto empty = ChunkStreamIndex::build({});
  EXPECT_EQ(
      NeighborIndex::build(empty, NeighborIndex::Side::kLeft, 4).entryCount(),
      0u);
  const auto single = ChunkStreamIndex::build(seq({9}));
  const auto left =
      NeighborIndex::build(single, NeighborIndex::Side::kLeft, 4);
  EXPECT_TRUE(left.neighbors(0).empty());
}

}  // namespace
}  // namespace freqdedup::analysis
