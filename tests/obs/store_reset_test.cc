// Reset-on-reopen contract: a store instance owns its metrics registry, so
// a fresh open starts every operational counter from zero while the
// functional gauges (unique chunks, stored bytes) are rebuilt from the
// recovered index.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "obs/metrics.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

ByteVec chunkOf(uint8_t seed, size_t bytes = 4096) {
  ByteVec v(bytes);
  for (size_t i = 0; i < bytes; ++i)
    v[i] = static_cast<uint8_t>(seed + i * 31);
  return v;
}

TEST(StoreMetricsReset, ReopenStartsCountersFromZero) {
  const auto dir =
      std::filesystem::temp_directory_path() / "fdd_obs_reset_store";
  std::filesystem::remove_all(dir);

  uint64_t uniqueBefore = 0;
  uint64_t storedBefore = 0;
  {
    FileBackupStore store(dir.string());
    for (uint8_t i = 0; i < 10; ++i) {
      const ByteVec c = chunkOf(i);
      store.putChunk(fpOfContent(c), c);
    }
    store.flush();
    for (uint8_t i = 0; i < 10; ++i)
      store.getChunk(fpOfContent(chunkOf(i)));

    const obs::MetricsSnapshot snap = store.metricsSnapshot();
    if (obs::kObsEnabled) {
      EXPECT_EQ(snap.counter("store.put_chunks"), 10u);
      EXPECT_EQ(snap.counter("store.chunk_reads"), 10u);
      EXPECT_GT(snap.counter("store.container_writes"), 0u);
    }
    uniqueBefore = static_cast<uint64_t>(snap.gauge("store.unique_chunks"));
    storedBefore = static_cast<uint64_t>(snap.gauge("store.stored_bytes"));
  }

  {
    FileBackupStore reopened(dir.string());
    const obs::MetricsSnapshot snap = reopened.metricsSnapshot();
    // Operational counters are per-instance and must read zero on a fresh
    // open — the cache satellite's reset semantics ride on the same rule.
    EXPECT_EQ(snap.counter("store.put_chunks"), 0u);
    EXPECT_EQ(snap.counter("store.chunk_reads"), 0u);
    EXPECT_EQ(snap.counter("store.batch_reads"), 0u);
    EXPECT_EQ(snap.counter("store.container_loads"), 0u);
    EXPECT_EQ(snap.counter("store.container_writes"), 0u);
    EXPECT_EQ(snap.counter("store.read_cache_hits"), 0u);
    EXPECT_EQ(snap.counter("cache.hits"), 0u);
    EXPECT_EQ(snap.counter("cache.misses"), 0u);
    EXPECT_EQ(snap.counter("cache.admissions"), 0u);
    EXPECT_EQ(snap.counter("cache.evictions"), 0u);
    EXPECT_EQ(snap.histogram("store.container_load_us").count, 0u);
    // Functional state survives: recovery rebuilds the occupancy gauges.
    EXPECT_EQ(static_cast<uint64_t>(snap.gauge("store.unique_chunks")),
              uniqueBefore);
    EXPECT_EQ(static_cast<uint64_t>(snap.gauge("store.stored_bytes")),
              storedBefore);
    if (obs::kObsEnabled) {
      EXPECT_EQ(uniqueBefore, 10u);
      EXPECT_GT(storedBefore, 0u);
    }

    // Reads on the reopened instance count from zero, not from the first
    // instance's history.
    reopened.getChunk(fpOfContent(chunkOf(0)));
    if (obs::kObsEnabled) {
      EXPECT_EQ(reopened.metricsSnapshot().counter("store.chunk_reads"), 1u);
      EXPECT_EQ(reopened.metricsSnapshot().counter("store.container_loads"),
                1u);
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace freqdedup
