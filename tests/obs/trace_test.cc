// TraceWriter output format and ObsSpan timing behavior.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace freqdedup::obs {
namespace {

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Minimal structural JSON validation: balanced brackets/braces outside
/// strings, and nothing after the final bracket. Trace viewers use real
/// parsers; this catches the failure modes a line-oriented writer can have
/// (trailing comma, unclosed array, interleaved lines).
bool looksLikeJsonArray(const std::string& s) {
  int depth = 0;
  bool inString = false;
  bool escaped = false;
  bool closed = false;
  for (const char c : s) {
    if (closed && !std::isspace(static_cast<unsigned char>(c))) return false;
    if (inString) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') {
      inString = true;
    } else if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (--depth < 0) return false;
      if (depth == 0) closed = true;
    } else if (c == ',') {
      if (depth == 0) return false;
    }
  }
  return closed && depth == 0 && !inString;
}

TEST(TraceWriter, EmitsValidTraceEventArray) {
  const auto path =
      std::filesystem::temp_directory_path() / "fdd_trace_test.json";
  std::filesystem::remove(path);
  {
    TraceWriter writer(path.string());
    ASSERT_TRUE(writer.ok());
    writer.emitComplete("phase_one", "test", 10, 25);
    writer.emitComplete("phase_two", "test", 40, 5);
    writer.close();
    writer.close();  // idempotent
  }
  const std::string content = slurp(path);
  EXPECT_TRUE(looksLikeJsonArray(content)) << content;
  EXPECT_NE(content.find("\"name\":\"phase_one\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(content.find("\"dur\":25"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TraceWriter, UnopenableFileIsInertNotFatal) {
  TraceWriter writer("/nonexistent-dir/trace.json");
  EXPECT_FALSE(writer.ok());
  writer.emitComplete("a", "b", 0, 1);  // must not crash
  writer.close();
}

TEST(ObsSpan, RecordsIntoHistogram) {
  Histogram h;
  {
    ObsSpan span(&h, "scoped", "test");
  }
  ObsSpan early(&h, "early", "test");
  const uint64_t us = early.finish();
  EXPECT_EQ(early.finish(), us);  // idempotent, same duration
  if (kObsEnabled) {
    EXPECT_EQ(h.data().count, 2u);
  } else {
    EXPECT_EQ(h.data().count, 0u);
    EXPECT_EQ(us, 0u);
  }
}

TEST(ObsSpan, NullHistogramCostsNothing) {
  ObsSpan span(nullptr, "free", "test");
  EXPECT_EQ(span.finish(), 0u);
}

}  // namespace
}  // namespace freqdedup::obs
