// Registry/metric semantics: exact totals under concurrency, deterministic
// snapshot rendering, merge/delta arithmetic, and name/kind discipline.
//
// Assertions on recorded values are gated on obs::kObsEnabled so the suite
// also passes in a FREQDEDUP_OBS=OFF build (where every update is a no-op
// by design and all values read zero).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace freqdedup::obs {
namespace {

uint64_t expected(uint64_t v) { return kObsEnabled ? v : 0; }

TEST(Counter, SingleThreadedTotal) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), expected(42));
}

TEST(Gauge, AddSubGoesNegative) {
  Gauge g;
  g.add(5);
  g.sub(8);
  EXPECT_EQ(g.value(), kObsEnabled ? -3 : 0);
  g.add(3);
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketScheme) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), 64u);
  EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::bucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::bucketLowerBound(5), 16u);
  // Every value lands in the bucket whose range contains it.
  for (uint64_t v : {1ull, 7ull, 1024ull, 123456789ull}) {
    const size_t b = Histogram::bucketOf(v);
    EXPECT_GE(v, Histogram::bucketLowerBound(b));
    EXPECT_LT(v, Histogram::bucketLowerBound(b + 1));
  }
}

TEST(Histogram, DataAggregation) {
  Histogram h;
  EXPECT_EQ(h.data().count, 0u);
  EXPECT_EQ(h.data().min, 0u);  // empty histogram reads 0, not the sentinel
  h.record(0);
  h.record(3);
  h.record(1000);
  const HistogramData d = h.data();
  EXPECT_EQ(d.count, expected(3));
  EXPECT_EQ(d.sum, expected(1003));
  if (kObsEnabled) {
    EXPECT_EQ(d.min, 0u);
    EXPECT_EQ(d.max, 1000u);
    ASSERT_EQ(d.buckets.size(), 3u);  // zero, [2,4), [512,1024)
    EXPECT_EQ(d.buckets[0], (std::pair<uint64_t, uint64_t>{0, 1}));
    EXPECT_EQ(d.buckets[1], (std::pair<uint64_t, uint64_t>{2, 1}));
    EXPECT_EQ(d.buckets[2], (std::pair<uint64_t, uint64_t>{512, 1}));
    EXPECT_DOUBLE_EQ(d.mean(), 1003.0 / 3.0);
    EXPECT_EQ(d.quantile(0.0), 0u);
    EXPECT_EQ(d.quantile(1.0), 512u);
  }
}

TEST(Registry, StableHandlesAndKindMismatch) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(reg.gauge("x.count"), std::logic_error);
  EXPECT_THROW(reg.histogram("x.count"), std::logic_error);
  reg.gauge("x.level");
  EXPECT_THROW(reg.counter("x.level"), std::logic_error);
}

TEST(Registry, ConcurrentExactTotals) {
  // N threads x M metrics, every thread hits every metric: totals must be
  // exact (wait-free sharded cells lose nothing), not merely approximate.
  constexpr int kThreads = 8;
  constexpr int kMetrics = 5;
  constexpr int kIters = 20000;
  MetricsRegistry reg;
  std::vector<Counter*> counters;
  std::vector<Gauge*> gauges;
  std::vector<Histogram*> hists;
  for (int m = 0; m < kMetrics; ++m) {
    counters.push_back(&reg.counter("c" + std::to_string(m)));
    gauges.push_back(&reg.gauge("g" + std::to_string(m)));
    hists.push_back(&reg.histogram("h" + std::to_string(m)));
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        for (int m = 0; m < kMetrics; ++m) {
          counters[m]->add();
          gauges[m]->add(2);
          gauges[m]->sub(1);
          hists[m]->record(static_cast<uint64_t>(i));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int m = 0; m < kMetrics; ++m) {
    EXPECT_EQ(counters[m]->value(),
              expected(uint64_t{kThreads} * kIters));
    EXPECT_EQ(gauges[m]->value(),
              kObsEnabled ? int64_t{kThreads} * kIters : 0);
    const HistogramData d = hists[m]->data();
    EXPECT_EQ(d.count, expected(uint64_t{kThreads} * kIters));
    EXPECT_EQ(d.sum, expected(uint64_t{kThreads} * kIters * (kIters - 1) / 2));
    if (kObsEnabled) {
      EXPECT_EQ(d.min, 0u);
      EXPECT_EQ(d.max, uint64_t{kIters} - 1);
    }
  }
}

TEST(Snapshot, DeterministicRendering) {
  MetricsRegistry reg;
  reg.counter("b.count").add(7);
  reg.counter("a.count").add(3);
  reg.gauge("q.depth").add(2);
  reg.histogram("l.us").record(100);
  reg.histogram("l.us").record(900);

  const MetricsSnapshot s1 = reg.snapshot();
  const MetricsSnapshot s2 = reg.snapshot();
  // Two snapshots of identical state render byte-identically in both
  // formats — the contract CI diffing and golden files rely on.
  EXPECT_EQ(s1.toText(), s2.toText());
  EXPECT_EQ(s1.toJson(), s2.toJson());
  EXPECT_EQ(s1.counter("a.count"), expected(3));
  EXPECT_EQ(s1.counter("missing"), 0u);
  // Sorted keys: "a.count" renders before "b.count".
  const std::string json = s1.toJson();
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line
}

TEST(Snapshot, MergeAndDelta) {
  MetricsRegistry regA;
  regA.counter("n").add(10);
  regA.gauge("g").add(5);
  regA.histogram("h").record(4);
  MetricsRegistry regB;
  regB.counter("n").add(1);
  regB.counter("only_b").add(2);
  regB.gauge("g").sub(1);
  regB.histogram("h").record(16);

  MetricsSnapshot merged = regA.snapshot();
  merged.merge(regB.snapshot());
  EXPECT_EQ(merged.counter("n"), expected(11));
  EXPECT_EQ(merged.counter("only_b"), expected(2));
  EXPECT_EQ(merged.gauge("g"), kObsEnabled ? 4 : 0);
  EXPECT_EQ(merged.histogram("h").count, expected(2));
  EXPECT_EQ(merged.histogram("h").sum, expected(20));

  regA.counter("n").add(5);
  regA.histogram("h").record(4);
  const MetricsSnapshot later = regA.snapshot();
  const MetricsSnapshot diff = later.delta(regA.snapshot().delta({}));
  EXPECT_EQ(diff.counter("n"), 0u);  // identical snapshots cancel
  const MetricsSnapshot interval = later.delta(merged);
  // Saturating: only_b exists only in the earlier snapshot; no underflow.
  EXPECT_EQ(interval.counter("only_b"), 0u);
  EXPECT_EQ(interval.counter("n"), expected(4));
}

}  // namespace
}  // namespace freqdedup::obs
