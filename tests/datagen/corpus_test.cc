#include "datagen/file_corpus.h"

#include <gtest/gtest.h>

#include "chunking/cdc_chunker.h"
#include "datagen/snapshot_gen.h"

namespace freqdedup {
namespace {

CorpusParams smallCorpus(uint64_t seed = 11) {
  CorpusParams p;
  p.seed = seed;
  p.fileCount = 40;
  p.targetBytes = 4 * 1024 * 1024;
  p.poolBlocks = 40;
  return p;
}

CdcParams smallCdc() {
  CdcParams p;
  p.minSize = 512;
  p.avgSize = 2048;
  p.maxSize = 8192;
  return p;
}

TEST(Corpus, Deterministic) {
  EXPECT_EQ(generateCorpus(smallCorpus()), generateCorpus(smallCorpus()));
}

TEST(Corpus, DifferentSeedsDiffer) {
  EXPECT_NE(generateCorpus(smallCorpus(1)), generateCorpus(smallCorpus(2)));
}

TEST(Corpus, SizeNearTarget) {
  const CorpusParams p = smallCorpus();
  const uint64_t bytes = corpusBytes(generateCorpus(p));
  EXPECT_GT(bytes, p.targetBytes / 2);
  EXPECT_LT(bytes, p.targetBytes * 4);
}

TEST(Corpus, FileCountMatches) {
  const CorpusParams p = smallCorpus();
  EXPECT_EQ(generateCorpus(p).size(), static_cast<size_t>(p.fileCount));
}

TEST(Corpus, HasInternalDuplication) {
  // Pool-block splicing must produce CDC-level duplicate chunks.
  const FileCorpus corpus = generateCorpus(smallCorpus());
  const CdcChunker chunker(smallCdc());
  const BackupTrace trace = chunkSnapshot(corpus, chunker, "t");
  EXPECT_LT(trace.uniqueChunkCount(), trace.chunkCount() * 9 / 10);
}

TEST(SnapshotGen, MutationAddsNewFiles) {
  FileCorpus corpus = generateCorpus(smallCorpus());
  const size_t before = corpus.size();
  SnapshotGenParams p;
  p.newBytesPerSnapshot = 512 * 1024;
  Rng rng(1);
  mutateSnapshot(corpus, p, rng, 1);
  EXPECT_GT(corpus.size(), before);
}

TEST(SnapshotGen, MutationPreservesMostContent) {
  FileCorpus corpus = generateCorpus(smallCorpus());
  const FileCorpus original = corpus;
  SnapshotGenParams p;
  p.newBytesPerSnapshot = 0;
  p.fileModifyProb = 0.02;
  Rng rng(2);
  mutateSnapshot(corpus, p, rng, 1);
  size_t unchanged = 0;
  for (const auto& [name, content] : original) {
    unchanged += corpus.at(name) == content;
  }
  EXPECT_GT(unchanged, original.size() * 8 / 10);
}

TEST(SnapshotGen, ChunkTraceCoversAllBytes) {
  const FileCorpus corpus = generateCorpus(smallCorpus());
  const CdcChunker chunker(smallCdc());
  const BackupTrace trace = chunkSnapshot(corpus, chunker, "label");
  EXPECT_EQ(trace.label, "label");
  EXPECT_EQ(trace.logicalBytes(), corpusBytes(corpus));
}

TEST(SnapshotGen, DatasetHasExpectedSnapshotCount) {
  SnapshotGenParams p;
  p.snapshots = 4;
  p.newBytesPerSnapshot = 256 * 1024;
  const CdcChunker chunker(smallCdc());
  const Dataset d = generateSyntheticDataset(smallCorpus(), p, chunker);
  EXPECT_EQ(d.backups.size(), 5u);  // initial + 4 derived
  EXPECT_EQ(d.backups[0].label, "snapshot 0");
}

TEST(SnapshotGen, DatasetDeduplicates) {
  SnapshotGenParams p;
  p.snapshots = 4;
  p.newBytesPerSnapshot = 128 * 1024;
  const CdcChunker chunker(smallCdc());
  const DatasetStats stats = computeDatasetStats(
      generateSyntheticDataset(smallCorpus(), p, chunker));
  // Five nearly-identical snapshots: dedup ratio should approach 5x.
  EXPECT_GT(stats.dedupRatio(), 3.0);
}

TEST(SnapshotGen, FinalSnapshotReturned) {
  SnapshotGenParams p;
  p.snapshots = 2;
  p.newBytesPerSnapshot = 64 * 1024;
  const CdcChunker chunker(smallCdc());
  FileCorpus finalSnapshot;
  const Dataset d =
      generateSyntheticDataset(smallCorpus(), p, chunker, &finalSnapshot);
  EXPECT_FALSE(finalSnapshot.empty());
  // The returned corpus chunks to exactly the last backup trace.
  const BackupTrace again = chunkSnapshot(finalSnapshot, chunker, "x");
  EXPECT_EQ(again.records, d.backups.back().records);
}

}  // namespace
}  // namespace freqdedup
