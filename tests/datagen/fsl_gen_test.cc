#include "datagen/fsl_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace freqdedup {
namespace {

FslGenParams smallParams(uint64_t seed = 42) {
  FslGenParams p;
  p.seed = seed;
  p.users = 3;
  p.backups = 3;
  p.filesPerUser = 40;
  p.sharedTemplateFiles = 60;
  return p;
}

TEST(FslGen, DeterministicForSameSeed) {
  const Dataset a = generateFslDataset(smallParams());
  const Dataset b = generateFslDataset(smallParams());
  ASSERT_EQ(a.backups.size(), b.backups.size());
  for (size_t i = 0; i < a.backups.size(); ++i)
    EXPECT_EQ(a.backups[i].records, b.backups[i].records);
}

TEST(FslGen, DifferentSeedsDiffer) {
  const Dataset a = generateFslDataset(smallParams(1));
  const Dataset b = generateFslDataset(smallParams(2));
  EXPECT_NE(a.backups[0].records, b.backups[0].records);
}

TEST(FslGen, BackupCountAndLabels) {
  const Dataset d = generateFslDataset(smallParams());
  ASSERT_EQ(d.backups.size(), 3u);
  EXPECT_EQ(d.backups[0].label, "Jan 22");
  EXPECT_EQ(d.backups[2].label, "Mar 22");
  EXPECT_EQ(d.name, "fsl-like");
}

TEST(FslGen, ChunkSizesWithinConfiguredBounds) {
  const FslGenParams p = smallParams();
  const Dataset d = generateFslDataset(p);
  for (const auto& backup : d.backups) {
    for (const auto& r : backup.records) {
      EXPECT_GE(r.size, p.minChunkBytes);
      EXPECT_LE(r.size, p.maxChunkBytes);
    }
  }
}

TEST(FslGen, FingerprintSizeConsistency) {
  // A fingerprint always denotes the same content, hence the same size.
  const Dataset d = generateFslDataset(smallParams());
  SizeMap sizes;
  for (const auto& backup : d.backups) {
    for (const auto& r : backup.records) {
      const auto [it, inserted] = sizes.emplace(r.fp, r.size);
      EXPECT_EQ(it->second, r.size) << fpToHex(r.fp);
    }
  }
}

TEST(FslGen, DeduplicationRatioInBackupRegime) {
  const DatasetStats stats =
      computeDatasetStats(generateFslDataset(FslGenParams{}));
  EXPECT_GT(stats.dedupRatio(), 2.5);
  EXPECT_LT(stats.dedupRatio(), 15.0);
}

TEST(FslGen, ConsecutiveBackupsShareMostContent) {
  const Dataset d = generateFslDataset(smallParams());
  for (size_t b = 1; b < d.backups.size(); ++b) {
    std::unordered_set<Fp, FpHash> prev;
    for (const auto& r : d.backups[b - 1].records) prev.insert(r.fp);
    size_t shared = 0;
    for (const auto& r : d.backups[b].records) shared += prev.contains(r.fp);
    EXPECT_GT(shared, d.backups[b].records.size() / 2)
        << "monthly churn should leave the majority of chunks untouched";
  }
}

TEST(FslGen, BackupsEvolve) {
  const Dataset d = generateFslDataset(smallParams());
  EXPECT_NE(d.backups[0].records, d.backups[1].records);
}

TEST(FslGen, SkewedFrequencyDistribution) {
  const Dataset d = generateFslDataset(FslGenParams{});
  const FrequencyMap freq = datasetFrequencies(d);
  uint64_t maxFreq = 0;
  for (const auto& [fp, count] : freq) maxFreq = std::max(maxFreq, count);
  // Figure 1's premise: a tiny set of chunks occurs orders of magnitude more
  // often than the typical chunk.
  EXPECT_GT(maxFreq, 500u);
  size_t rare = 0;
  for (const auto& [fp, count] : freq) rare += count < 100;
  EXPECT_GT(static_cast<double>(rare) / static_cast<double>(freq.size()),
            0.95);
}

TEST(FslGen, MultipleUsersContribute) {
  FslGenParams oneUser = smallParams();
  oneUser.users = 1;
  const Dataset d1 = generateFslDataset(oneUser);
  const Dataset d3 = generateFslDataset(smallParams());
  EXPECT_GT(d3.backups[0].chunkCount(), d1.backups[0].chunkCount() * 2);
}

TEST(FslGen, RejectsDegenerateParams) {
  FslGenParams p = smallParams();
  p.users = 0;
  EXPECT_THROW(generateFslDataset(p), std::logic_error);
}

}  // namespace
}  // namespace freqdedup
