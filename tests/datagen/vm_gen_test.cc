#include "datagen/vm_gen.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace freqdedup {
namespace {

VmGenParams smallParams(uint64_t seed = 7) {
  VmGenParams p;
  p.seed = seed;
  p.users = 3;
  p.weeks = 10;
  p.baseImageChunks = 4000;
  p.heavyWeekFirst = 4;
  p.heavyWeekLast = 6;
  return p;
}

TEST(VmGen, Deterministic) {
  const Dataset a = generateVmDataset(smallParams());
  const Dataset b = generateVmDataset(smallParams());
  ASSERT_EQ(a.backups.size(), b.backups.size());
  for (size_t i = 0; i < a.backups.size(); ++i)
    EXPECT_EQ(a.backups[i].records, b.backups[i].records);
}

TEST(VmGen, WeeklyLabels) {
  const Dataset d = generateVmDataset(smallParams());
  ASSERT_EQ(d.backups.size(), 10u);
  EXPECT_EQ(d.backups[0].label, "week 1");
  EXPECT_EQ(d.backups[9].label, "week 10");
}

TEST(VmGen, AllChunksFixedSize) {
  const VmGenParams p = smallParams();
  const Dataset d = generateVmDataset(p);
  for (const auto& backup : d.backups) {
    for (const auto& r : backup.records) EXPECT_EQ(r.size, p.chunkBytes);
  }
}

TEST(VmGen, HighCrossUserRedundancyInWeekOne) {
  const Dataset d = generateVmDataset(smallParams());
  const BackupTrace& week1 = d.backups[0];
  // 3 users cloned from one base: unique chunks should be close to one
  // image's worth, far below the logical count.
  EXPECT_LT(week1.uniqueChunkCount(), week1.chunkCount() / 2);
}

TEST(VmGen, HighOverallDedupRatio) {
  const DatasetStats stats =
      computeDatasetStats(generateVmDataset(VmGenParams{}));
  EXPECT_GT(stats.dedupRatio(), 8.0);
}

TEST(VmGen, HeavyChurnWindowDestroysOldContent) {
  const VmGenParams p = smallParams();
  const Dataset d = generateVmDataset(p);
  // Content from before the heavy window should barely survive to the end.
  std::unordered_set<Fp, FpHash> early;
  for (const auto& r : d.backups[1].records) early.insert(r.fp);
  size_t survivors = 0;
  for (const auto& r : d.backups.back().records)
    survivors += early.contains(r.fp);
  EXPECT_LT(static_cast<double>(survivors) /
                static_cast<double>(d.backups.back().records.size()),
            0.2);
}

TEST(VmGen, PostWindowBackupsShareContent) {
  const VmGenParams p = smallParams();
  const Dataset d = generateVmDataset(p);
  // After the heavy window (transitions into weeks 5..7), consecutive
  // backups are similar again.
  std::unordered_set<Fp, FpHash> w8;
  for (const auto& r : d.backups[8].records) w8.insert(r.fp);
  size_t shared = 0;
  for (const auto& r : d.backups[9].records) shared += w8.contains(r.fp);
  EXPECT_GT(static_cast<double>(shared) /
                static_cast<double>(d.backups[9].records.size()),
            0.8);
}

TEST(VmGen, ImagesGrowWeekly) {
  const Dataset d = generateVmDataset(smallParams());
  EXPECT_GT(d.backups.back().chunkCount(), d.backups.front().chunkCount());
}

TEST(VmGen, RejectsDegenerateParams) {
  VmGenParams p = smallParams();
  p.heavyWeekFirst = 9;
  p.heavyWeekLast = 3;
  EXPECT_THROW(generateVmDataset(p), std::logic_error);
}

}  // namespace
}  // namespace freqdedup
