#include "trace/backup_trace.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

BackupTrace sampleBackup() {
  BackupTrace backup;
  backup.label = "b1";
  backup.records = {{1, 100}, {2, 200}, {1, 100}, {3, 300}, {2, 200}};
  return backup;
}

TEST(BackupTrace, LogicalBytes) {
  EXPECT_EQ(sampleBackup().logicalBytes(), 900u);
}

TEST(BackupTrace, UniqueCounts) {
  const BackupTrace b = sampleBackup();
  EXPECT_EQ(b.chunkCount(), 5u);
  EXPECT_EQ(b.uniqueChunkCount(), 3u);
  EXPECT_EQ(b.uniqueBytes(), 600u);
}

TEST(BackupTrace, Frequencies) {
  const FrequencyMap freq = sampleBackup().frequencies();
  EXPECT_EQ(freq.at(1), 2u);
  EXPECT_EQ(freq.at(2), 2u);
  EXPECT_EQ(freq.at(3), 1u);
}

TEST(BackupTrace, SizeMap) {
  const SizeMap sizes = sampleBackup().sizes();
  EXPECT_EQ(sizes.at(1), 100u);
  EXPECT_EQ(sizes.at(3), 300u);
}

TEST(BackupTrace, EmptyBackup) {
  BackupTrace b;
  EXPECT_EQ(b.logicalBytes(), 0u);
  EXPECT_EQ(b.uniqueChunkCount(), 0u);
  EXPECT_TRUE(b.frequencies().empty());
}

TEST(DatasetStats, AggregatesAcrossBackups) {
  Dataset dataset;
  dataset.backups.push_back(sampleBackup());
  BackupTrace second;
  second.records = {{1, 100}, {4, 400}};  // one duplicate of backup 1
  dataset.backups.push_back(second);

  const DatasetStats stats = computeDatasetStats(dataset);
  EXPECT_EQ(stats.logicalChunks, 7u);
  EXPECT_EQ(stats.logicalBytes, 1400u);
  EXPECT_EQ(stats.uniqueChunks, 4u);
  EXPECT_EQ(stats.uniqueBytes, 1000u);
  EXPECT_DOUBLE_EQ(stats.dedupRatio(), 1.4);
  EXPECT_NEAR(stats.storageSavingPct(), 100.0 * (1.0 - 1000.0 / 1400.0),
              1e-9);
}

TEST(DatasetStats, EmptyDataset) {
  const DatasetStats stats = computeDatasetStats(Dataset{});
  EXPECT_EQ(stats.dedupRatio(), 0.0);
  EXPECT_EQ(stats.storageSavingPct(), 0.0);
}

TEST(FrequencyCdf, MonotoneAndNormalized) {
  Dataset dataset;
  dataset.backups.push_back(sampleBackup());
  const auto points = frequencyCdf(dataset);
  ASSERT_FALSE(points.empty());
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].frequency, points[i - 1].frequency);
    EXPECT_GT(points[i].cdf, points[i - 1].cdf);
  }
  EXPECT_DOUBLE_EQ(points.back().cdf, 1.0);
}

TEST(FrequencyCdf, SampleValues) {
  Dataset dataset;
  dataset.backups.push_back(sampleBackup());  // freqs: {1:2, 2:2, 3:1}
  const auto points = frequencyCdf(dataset);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].frequency, 1u);
  EXPECT_NEAR(points[0].cdf, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(points[1].frequency, 2u);
  EXPECT_NEAR(points[1].cdf, 1.0, 1e-12);
}

TEST(DatasetFrequencies, SumEqualsLogicalChunks) {
  Dataset dataset;
  dataset.backups.push_back(sampleBackup());
  dataset.backups.push_back(sampleBackup());
  const FrequencyMap freq = datasetFrequencies(dataset);
  uint64_t sum = 0;
  for (const auto& [fp, count] : freq) sum += count;
  EXPECT_EQ(sum, 10u);
}

}  // namespace
}  // namespace freqdedup
