// Corruption/fuzz-style suite for the dataset deserializer: parseDataset
// must reject every malformed input with std::runtime_error — never crash,
// over-allocate, or read out of bounds (run under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/varint.h"
#include "trace/trace_io.h"

namespace freqdedup {
namespace {

constexpr uint32_t kMagic = 0x46445452;  // "FDTR"

ByteVec withCrc(ByteVec body) {
  putU32(body, crc32c(body));
  return body;
}

ByteVec bodyOf(const ByteVec& framed) {
  return ByteVec(framed.begin(), framed.end() - 4);
}

Dataset sampleDataset() {
  Dataset dataset;
  dataset.name = "fuzz-sample";
  for (int b = 0; b < 2; ++b) {
    BackupTrace backup;
    backup.label = "backup-" + std::to_string(b);
    for (uint64_t i = 0; i < 5; ++i)
      backup.records.push_back({0x1000 * (b + 1) + i, 4096 + 17 * (uint32_t)i});
    dataset.backups.push_back(std::move(backup));
  }
  return dataset;
}

TEST(TraceIoCorruption, EveryTruncationRejected) {
  const ByteVec bytes = serializeDataset(sampleDataset());
  for (size_t len = 0; len < bytes.size(); ++len) {
    const ByteVec cut(bytes.begin(),
                      bytes.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_THROW(parseDataset(cut), std::runtime_error) << "length " << len;
  }
}

TEST(TraceIoCorruption, EveryBitFlipRejected) {
  const ByteVec bytes = serializeDataset(sampleDataset());
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (const uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      ByteVec flipped = bytes;
      flipped[i] ^= mask;
      EXPECT_THROW(parseDataset(flipped), std::runtime_error)
          << "byte " << i << " mask " << int(mask);
    }
  }
}

TEST(TraceIoCorruption, BadMagicWithValidCrcRejected) {
  ByteVec body = bodyOf(serializeDataset(sampleDataset()));
  body[0] ^= 0xFF;
  EXPECT_THROW(parseDataset(withCrc(body)), std::runtime_error);
}

TEST(TraceIoCorruption, UnsupportedVersionWithValidCrcRejected) {
  ByteVec body = bodyOf(serializeDataset(sampleDataset()));
  body[4] ^= 0xFF;
  EXPECT_THROW(parseDataset(withCrc(body)), std::runtime_error);
}

TEST(TraceIoCorruption, HugeBackupCountRejectedBeforeAllocating) {
  // Counts must be validated against the remaining input before reserve():
  // a 2^56 backup count in a 30-byte input must throw, not allocate.
  ByteVec body;
  putU32(body, kMagic);
  putU32(body, 1);  // version
  putVarint(body, 4);
  appendBytes(body, toBytes("name"));
  putVarint(body, uint64_t{0xFFFFFFFFFFFFFF});
  EXPECT_THROW(parseDataset(withCrc(body)), std::runtime_error);
}

TEST(TraceIoCorruption, HugeRecordCountRejectedBeforeAllocating) {
  ByteVec body;
  putU32(body, kMagic);
  putU32(body, 1);
  putVarint(body, 0);  // empty dataset name
  putVarint(body, 1);  // one backup
  putVarint(body, 1);  // label "x"
  body.push_back('x');
  putVarint(body, uint64_t{0xFFFFFFFFFFFFFF});  // record count
  EXPECT_THROW(parseDataset(withCrc(body)), std::runtime_error);
}

TEST(TraceIoCorruption, LabelLengthSpillingIntoCrcRejected) {
  // A label length pointing past the CRC-covered body must not let the
  // parser consume the checksum bytes as content.
  ByteVec body;
  putU32(body, kMagic);
  putU32(body, 1);
  putVarint(body, 0);     // dataset name
  putVarint(body, 1);     // one backup
  putVarint(body, 1000);  // label claims 1000 bytes
  EXPECT_THROW(parseDataset(withCrc(body)), std::runtime_error);
}

TEST(TraceIoCorruption, TrailingGarbageRejected) {
  ByteVec body = bodyOf(serializeDataset(sampleDataset()));
  body.push_back(0x00);
  EXPECT_THROW(parseDataset(withCrc(body)), std::runtime_error);
}

TEST(TraceIoCorruption, ValidInputStillParses) {
  const Dataset original = sampleDataset();
  const Dataset parsed = parseDataset(serializeDataset(original));
  ASSERT_EQ(parsed.backups.size(), original.backups.size());
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.backups[1].records, original.backups[1].records);
}

}  // namespace
}  // namespace freqdedup
