#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"

namespace freqdedup {
namespace {

Dataset sampleDataset(uint64_t seed = 1) {
  Rng rng(seed);
  Dataset dataset;
  dataset.name = "sample";
  for (int b = 0; b < 3; ++b) {
    BackupTrace backup;
    backup.label = "backup " + std::to_string(b);
    for (int i = 0; i < 100; ++i) {
      backup.records.push_back(
          {rng.next(), static_cast<uint32_t>(rng.uniformInt(1, 1 << 20))});
    }
    dataset.backups.push_back(std::move(backup));
  }
  return dataset;
}

bool datasetsEqual(const Dataset& a, const Dataset& b) {
  if (a.name != b.name || a.backups.size() != b.backups.size()) return false;
  for (size_t i = 0; i < a.backups.size(); ++i) {
    if (a.backups[i].label != b.backups[i].label) return false;
    if (a.backups[i].records != b.backups[i].records) return false;
  }
  return true;
}

TEST(TraceIo, SerializeParseRoundtrip) {
  const Dataset original = sampleDataset();
  EXPECT_TRUE(datasetsEqual(parseDataset(serializeDataset(original)),
                            original));
}

TEST(TraceIo, EmptyDatasetRoundtrip) {
  Dataset empty;
  empty.name = "empty";
  EXPECT_TRUE(datasetsEqual(parseDataset(serializeDataset(empty)), empty));
}

TEST(TraceIo, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "trace_io_test.fdtr")
          .string();
  const Dataset original = sampleDataset(7);
  saveDataset(original, path);
  EXPECT_TRUE(datasetsEqual(loadDataset(path), original));
  std::filesystem::remove(path);
}

TEST(TraceIo, CorruptionDetected) {
  ByteVec bytes = serializeDataset(sampleDataset());
  bytes[bytes.size() / 2] ^= 0x10;
  EXPECT_THROW(parseDataset(bytes), std::runtime_error);
}

TEST(TraceIo, TruncationDetected) {
  ByteVec bytes = serializeDataset(sampleDataset());
  bytes.resize(bytes.size() - 10);
  EXPECT_THROW(parseDataset(bytes), std::runtime_error);
}

TEST(TraceIo, BadMagicDetected) {
  ByteVec bytes = serializeDataset(sampleDataset());
  bytes[0] ^= 0xFF;
  EXPECT_THROW(parseDataset(bytes), std::runtime_error);
}

TEST(TraceIo, TooShortInputRejected) {
  EXPECT_THROW(parseDataset(ByteVec(4)), std::runtime_error);
}

}  // namespace
}  // namespace freqdedup
