// Async (pipelined) commit API: Wal::syncAsync and LogKv::putAsync/syncAsync.
// Contracts under test: callbacks fire exactly once with ok=true after the
// covered LSN is durable; requests coalesce with concurrent committers;
// callbacks run off the caller's thread and may issue further WAL work;
// close drains pending callbacks (ok=false when never durable); data
// committed via the async path survives reopen.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "kvstore/logkv.h"
#include "kvstore/wal.h"

namespace freqdedup {
namespace {

class AsyncCommit : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& info = *::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            ("fdd_async_" + std::string(info.name())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

/// Blocks until `n` completions arrive; records failures.
struct Completions {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t done = 0;
  uint64_t failed = 0;

  void complete(bool ok) {
    std::lock_guard lock(mu);
    ++done;
    if (!ok) ++failed;
    cv.notify_all();
  }
  void wait(uint64_t n) {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done >= n; }))
        << "async completions stuck at " << done << "/" << n;
  }
};

TEST_F(AsyncCommit, WalCallbackFiresAfterDurable) {
  Wal wal(dir_ + "/wal");
  const Lsn lsn = wal.append(toBytes("record-1")) + 8;
  Completions c;
  std::atomic<bool> coveredAtCallback{false};
  wal.syncAsync(lsn, [&](bool ok) {
    coveredAtCallback.store(wal.durableLsn() >= lsn);
    c.complete(ok);
  });
  c.wait(1);
  EXPECT_EQ(c.failed, 0u);
  EXPECT_TRUE(coveredAtCallback.load());
  EXPECT_GE(wal.durableLsn(), lsn);
}

TEST_F(AsyncCommit, WalZeroLsnFiresImmediatelyEvenWithNothingAppended) {
  Wal wal(dir_ + "/wal");
  Completions c;
  wal.syncAsync(0, [&](bool ok) { c.complete(ok); });
  c.wait(1);
  EXPECT_EQ(c.failed, 0u);
}

TEST_F(AsyncCommit, WalManyPipelinedCommittersAllComplete) {
  Wal wal(dir_ + "/wal");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  Completions c;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const ByteVec payload =
            toBytes("t" + std::to_string(t) + ":" + std::to_string(i));
        const Lsn end = wal.append(payload) + payload.size();
        wal.syncAsync(end, [&](bool ok) { c.complete(ok); });
      }
    });
  }
  for (auto& th : threads) th.join();
  c.wait(kThreads * kPerThread);
  EXPECT_EQ(c.failed, 0u);
  EXPECT_GE(wal.durableLsn(), wal.appendedLsn());
}

TEST_F(AsyncCommit, WalCallbackMayAppendAndResync) {
  // The documented contract: callbacks run outside every Wal lock and may
  // append/sync the same log (the server's BackupFinish path does exactly
  // this through the store).
  Wal wal(dir_ + "/wal");
  Completions c;
  const Lsn first = wal.append(toBytes("first")) + 5;
  wal.syncAsync(first, [&](bool ok1) {
    if (!ok1) {
      c.complete(false);
      return;
    }
    const Lsn second = wal.append(toBytes("second")) + 6;
    wal.syncAsync(second, [&](bool ok2) { c.complete(ok2); });
  });
  c.wait(1);
  EXPECT_EQ(c.failed, 0u);
}

TEST_F(AsyncCommit, WalDestructorDrainsPending) {
  // Register a callback and destroy the Wal immediately: the callback must
  // still fire exactly once (with either verdict — durable before close, or
  // ok=false on shutdown), never leak or crash.
  Completions c;
  {
    Wal wal(dir_ + "/wal");
    const Lsn end = wal.append(toBytes("pending")) + 7;
    wal.syncAsync(end, [&](bool ok) { c.complete(ok); });
  }
  c.wait(1);
}

TEST_F(AsyncCommit, LogKvPutAsyncVisibleImmediatelyDurableAfterCallback) {
  const std::string path = dir_ + "/kv";
  Completions c;
  {
    LogKv kv(path);
    const Lsn lsn = kv.putAsync(toBytes("key"), toBytes("value"));
    // Visible to readers before durability, like put().
    EXPECT_EQ(kv.get(toBytes("key")), toBytes("value"));
    kv.syncAsync(lsn, [&](bool ok) { c.complete(ok); });
    c.wait(1);
    EXPECT_EQ(c.failed, 0u);
    EXPECT_GE(kv.durableLsn(), lsn);
  }
  // Survives reopen.
  LogKv reopened(path);
  EXPECT_EQ(reopened.get(toBytes("key")), toBytes("value"));
}

TEST_F(AsyncCommit, LogKvConcurrentAsyncCommitsCoalesceAndPersist) {
  const std::string path = dir_ + "/kv";
  constexpr int kThreads = 6;
  constexpr int kPerThread = 40;
  Completions c;
  {
    LogKv kv(path);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::string k =
              "k" + std::to_string(t) + ":" + std::to_string(i);
          const Lsn lsn = kv.putAsync(toBytes(k), toBytes("v" + k));
          kv.syncAsync(lsn, [&](bool ok) { c.complete(ok); });
        }
      });
    }
    for (auto& th : threads) th.join();
    c.wait(kThreads * kPerThread);
    EXPECT_EQ(c.failed, 0u);
    EXPECT_EQ(kv.size(), static_cast<size_t>(kThreads) * kPerThread);
  }
  LogKv reopened(path);
  EXPECT_EQ(reopened.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i) {
      const std::string k = "k" + std::to_string(t) + ":" + std::to_string(i);
      EXPECT_EQ(reopened.get(toBytes(k)), toBytes("v" + k)) << k;
    }
}

TEST_F(AsyncCommit, MixedSyncAndAsyncCommittersInterleave) {
  // Blocking sync() and syncAsync() share the same group-commit machinery;
  // interleaving them must deadlock-free complete everything.
  Wal wal(dir_ + "/wal");
  constexpr int kRounds = 100;
  Completions c;
  std::thread asyncThread([&] {
    for (int i = 0; i < kRounds; ++i) {
      const Lsn end = wal.append(toBytes("async")) + 5;
      wal.syncAsync(end, [&](bool ok) { c.complete(ok); });
    }
  });
  std::thread syncThread([&] {
    for (int i = 0; i < kRounds; ++i) {
      const Lsn end = wal.append(toBytes("block")) + 5;
      wal.sync(end);
    }
  });
  asyncThread.join();
  syncThread.join();
  c.wait(kRounds);
  EXPECT_EQ(c.failed, 0u);
  EXPECT_GE(wal.durableLsn(), wal.appendedLsn());
}

}  // namespace
}  // namespace freqdedup
