#include "kvstore/memkv.h"

#include <gtest/gtest.h>

#include <map>

namespace freqdedup {
namespace {

TEST(MemKv, PutGet) {
  MemKv kv;
  kv.put(toBytes("key"), toBytes("value"));
  EXPECT_EQ(kv.get(toBytes("key")), toBytes("value"));
}

TEST(MemKv, MissingKeyReturnsNullopt) {
  MemKv kv;
  EXPECT_EQ(kv.get(toBytes("absent")), std::nullopt);
}

TEST(MemKv, OverwriteReplacesValue) {
  MemKv kv;
  kv.put(toBytes("k"), toBytes("v1"));
  kv.put(toBytes("k"), toBytes("v2"));
  EXPECT_EQ(kv.get(toBytes("k")), toBytes("v2"));
  EXPECT_EQ(kv.size(), 1u);
}

TEST(MemKv, Erase) {
  MemKv kv;
  kv.put(toBytes("k"), toBytes("v"));
  EXPECT_TRUE(kv.erase(toBytes("k")));
  EXPECT_FALSE(kv.erase(toBytes("k")));
  EXPECT_FALSE(kv.contains(toBytes("k")));
}

TEST(MemKv, Contains) {
  MemKv kv;
  EXPECT_FALSE(kv.contains(toBytes("k")));
  kv.put(toBytes("k"), toBytes("v"));
  EXPECT_TRUE(kv.contains(toBytes("k")));
}

TEST(MemKv, EmptyValueAllowed) {
  MemKv kv;
  kv.put(toBytes("k"), {});
  const auto value = kv.get(toBytes("k"));
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(value->empty());
}

TEST(MemKv, BinaryKeysWithEmbeddedNulls) {
  MemKv kv;
  const ByteVec key{0x00, 0x01, 0x00, 0x02};
  kv.put(key, toBytes("binary"));
  EXPECT_EQ(kv.get(key), toBytes("binary"));
}

TEST(MemKv, ForEachVisitsAllEntries) {
  MemKv kv;
  kv.put(toBytes("a"), toBytes("1"));
  kv.put(toBytes("b"), toBytes("2"));
  kv.put(toBytes("c"), toBytes("3"));
  std::map<std::string, std::string> seen;
  kv.forEach([&seen](ByteView key, ByteView value) {
    seen[toString(key)] = toString(value);
  });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen["b"], "2");
}

TEST(MemKv, U64KeyHelpers) {
  const ByteVec key = kvKeyFromU64(0x1122334455667788ULL);
  EXPECT_EQ(key.size(), 8u);
  EXPECT_EQ(kvKeyToU64(key), 0x1122334455667788ULL);
}

}  // namespace
}  // namespace freqdedup
