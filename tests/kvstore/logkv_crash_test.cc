// Crash-point fault-injection suite for the metadata durability path.
//
// Each scenario arms a crash hook at one named point in the WAL / checkpoint
// machinery (see crash_point.h), drives commits until the injected
// CrashInjected fires (poisoning the store so its destructor performs no
// further I/O — exactly what a kill leaves behind), then recovers and
// asserts the durability contract:
//   - every commit whose flush() RETURNED before the crash is present;
//   - every key present has the value some completed put wrote (never torn);
//   - dead-record accounting is identical however many times the store is
//     reopened.
// Each scenario runs twice: once on the files exactly as the crash left
// them, and once after truncating the WAL to the last durable LSN — the
// page-cache-loss model, where everything written but not yet fdatasynced
// vanishes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>

#include "kvstore/crash_point.h"
#include "kvstore/logkv.h"

namespace freqdedup {
namespace {

const char* g_crashPoint = nullptr;
std::atomic<int> g_countdown{0};

bool crashHook(const char* point) {
  if (g_crashPoint == nullptr || std::strcmp(point, g_crashPoint) != 0)
    return false;
  return g_countdown.fetch_sub(1) == 1;
}

constexpr const char* kAllPoints[] = {
    "wal.append",          // record buffered, nothing written
    "wal.after_write",     // group written, not fdatasynced
    "wal.after_sync",      // group fdatasynced, durable LSN not published
    "ckpt.begin",          // before any checkpoint I/O
    "ckpt.after_tmp_write",  // tmp written, not fdatasynced
    "ckpt.after_tmp_sync",   // tmp durable, not renamed
    "ckpt.after_rename",     // renamed, directory not synced
    "ckpt.after_dir_sync",   // checkpoint durable, WAL not rotated
    "ckpt.after_rotate",     // everything done but the in-memory epilogue
};

constexpr int kBaseKeys = 50;
constexpr int kCrashPhaseOps = 20;
constexpr int kCheckpointAtOp = 9;

std::string baseKey(int i) { return "key-" + std::to_string(i); }
std::string baseValue(int i) { return "base-" + std::to_string(i); }
std::string newValue(int i) { return "new-" + std::to_string(i); }

struct CrashOutcome {
  bool crashed = false;
  int opsCommitted = 0;  // puts whose flush() returned before the crash
  Lsn durableLsn = 0;
};

/// Seeds kBaseKeys durable entries, then — with the hook armed at `point` —
/// overwrites them one flushed commit at a time, checkpointing mid-way,
/// until the injected crash fires.
CrashOutcome runUntilCrash(const std::string& path, const char* point) {
  {
    LogKv kv(path);
    for (int i = 0; i < kBaseKeys; ++i)
      kv.put(toBytes(baseKey(i)), toBytes(baseValue(i)));
    kv.flush();
  }
  CrashOutcome out;
  LogKv kv(path);
  g_crashPoint = point;
  g_countdown.store(1);
  kvcrash::setHook(crashHook);
  try {
    for (int i = 0; i < kCrashPhaseOps; ++i) {
      kv.put(toBytes(baseKey(i)), toBytes(newValue(i)));
      kv.flush();
      out.opsCommitted = i + 1;
      if (i == kCheckpointAtOp) kv.checkpoint();
    }
  } catch (const kvcrash::CrashInjected&) {
    out.crashed = true;
  }
  kvcrash::setHook(nullptr);
  g_crashPoint = nullptr;
  out.durableLsn = kv.durableLsn();
  return out;  // kv is poisoned: its destructor performs no I/O
}

/// Page-cache-loss model: everything the WAL wrote beyond the last durable
/// LSN vanishes. (Bytes below it were fdatasynced and must survive.)
void truncateWalToDurable(const std::string& path, Lsn durable) {
  const ByteVec data = readFile(path);
  uint64_t headerBytes = 0;
  Lsn base = 0;
  constexpr char kMagic[8] = {'F', 'D', 'W', 'A', 'L', '0', '0', '1'};
  if (data.size() >= 20 && std::memcmp(data.data(), kMagic, 8) == 0) {
    headerBytes = 20;
    base = getU64(data, 8);
  }
  const uint64_t keep =
      durable >= base ? headerBytes + (durable - base) : headerBytes;
  if (keep < data.size()) std::filesystem::resize_file(path, keep);
}

void assertRecovered(const std::string& path, const CrashOutcome& out) {
  uint64_t deadAfterFirstReopen = 0;
  {
    LogKv kv(path);
    EXPECT_EQ(kv.size(), static_cast<size_t>(kBaseKeys));
    for (int i = 0; i < kBaseKeys; ++i) {
      const auto value = kv.get(toBytes(baseKey(i)));
      ASSERT_TRUE(value.has_value()) << baseKey(i);
      if (i < out.opsCommitted) {
        // flush() returned for this overwrite: it MUST have survived.
        EXPECT_EQ(toString(*value), newValue(i)) << baseKey(i);
      } else {
        // Never promised durable: either version is fine, torn is not.
        EXPECT_TRUE(toString(*value) == baseValue(i) ||
                    toString(*value) == newValue(i))
            << baseKey(i) << " = " << toString(*value);
      }
    }
    deadAfterFirstReopen = kv.deadRecords();
    // The store stays writable after recovery.
    kv.put(toBytes("post-crash"), toBytes("ok"));
    kv.flush();
    kv.erase(toBytes("post-crash"));
    kv.flush();
  }
  // Reopen-equality pin: replay counts dead records exactly like the live
  // mutations did (+2 for the erase above, +1 per overwrite).
  LogKv again(path);
  EXPECT_EQ(again.deadRecords(), deadAfterFirstReopen + 2);
}

class LogKvCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("logkv_crash_" +
              std::to_string(
                  ::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".log"))
                .string();
    removeStoreFiles();
  }
  void TearDown() override {
    kvcrash::setHook(nullptr);
    removeStoreFiles();
  }

  void removeStoreFiles() {
    for (const char* suffix :
         {"", ".new", ".ckpt", ".ckpt.tmp", ".ckpt.corrupt"})
      std::filesystem::remove(path_ + suffix);
  }

  std::string path_;
};

TEST_F(LogKvCrashTest, RecoversFromEveryCrashPointAsLeftOnDisk) {
  for (const char* point : kAllPoints) {
    SCOPED_TRACE(point);
    removeStoreFiles();
    const CrashOutcome out = runUntilCrash(path_, point);
    ASSERT_TRUE(out.crashed) << "crash point never reached: " << point;
    assertRecovered(path_, out);
  }
}

TEST_F(LogKvCrashTest, RecoversFromEveryCrashPointAfterPageCacheLoss) {
  for (const char* point : kAllPoints) {
    SCOPED_TRACE(point);
    removeStoreFiles();
    const CrashOutcome out = runUntilCrash(path_, point);
    ASSERT_TRUE(out.crashed) << "crash point never reached: " << point;
    truncateWalToDurable(path_, out.durableLsn);
    assertRecovered(path_, out);
  }
}

// A crash inside checkpoint() must never lose the checkpoint's *input*: the
// WAL is only rotated after the checkpoint file is durable, so at every
// intermediate point either the old WAL or the new checkpoint (or both)
// holds the full state.
TEST_F(LogKvCrashTest, CheckpointCrashNeverLosesCommittedState) {
  for (const char* point :
       {"ckpt.after_tmp_sync", "ckpt.after_rename", "ckpt.after_dir_sync",
        "ckpt.after_rotate"}) {
    SCOPED_TRACE(point);
    removeStoreFiles();
    {
      LogKv kv(path_);
      for (int i = 0; i < 30; ++i)
        kv.put(toBytes(baseKey(i)), toBytes(baseValue(i)));
      kv.flush();
      g_crashPoint = point;
      g_countdown.store(1);
      kvcrash::setHook(crashHook);
      EXPECT_THROW(kv.checkpoint(), kvcrash::CrashInjected);
      kvcrash::setHook(nullptr);
      g_crashPoint = nullptr;
    }
    LogKv kv(path_);
    EXPECT_EQ(kv.size(), 30u);
    for (int i = 0; i < 30; ++i)
      EXPECT_EQ(kv.get(toBytes(baseKey(i))), toBytes(baseValue(i)));
  }
}

// After an injected crash the poisoned instance refuses the easy mistakes:
// destruction performs no I/O (verified implicitly by every scenario above
// recovering from the exact crash state) and a fresh open sees only what
// was on disk.
TEST_F(LogKvCrashTest, PoisonedStoreDropsUnsyncedBufferOnDestruction) {
  {
    LogKv kv(path_);
    kv.put(toBytes("durable"), toBytes("yes"));
    kv.flush();
    // Arm the hook so the next append itself crashes: the record lands in
    // the slot buffer but the store is poisoned before any sync.
    g_crashPoint = "wal.append";
    g_countdown.store(1);
    kvcrash::setHook(crashHook);
    EXPECT_THROW(kv.put(toBytes("buffered"), toBytes("no")),
                 kvcrash::CrashInjected);
    kvcrash::setHook(nullptr);
    g_crashPoint = nullptr;
  }  // a non-poisoned destructor would sync the buffered record here
  LogKv kv(path_);
  EXPECT_EQ(kv.get(toBytes("durable")), toBytes("yes"));
  EXPECT_FALSE(kv.contains(toBytes("buffered")));
}

}  // namespace
}  // namespace freqdedup
