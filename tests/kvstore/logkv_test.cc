#include "kvstore/logkv.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"

namespace freqdedup {
namespace {

class LogKvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("logkv_test_" +
              std::to_string(
                  ::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".log"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(LogKvTest, PutGet) {
  LogKv kv(path_);
  kv.put(toBytes("key"), toBytes("value"));
  EXPECT_EQ(kv.get(toBytes("key")), toBytes("value"));
  EXPECT_EQ(kv.size(), 1u);
}

TEST_F(LogKvTest, MissingKey) {
  LogKv kv(path_);
  EXPECT_EQ(kv.get(toBytes("nope")), std::nullopt);
  EXPECT_FALSE(kv.contains(toBytes("nope")));
}

TEST_F(LogKvTest, OverwriteKeepsLatest) {
  LogKv kv(path_);
  kv.put(toBytes("k"), toBytes("v1"));
  kv.put(toBytes("k"), toBytes("v2"));
  EXPECT_EQ(kv.get(toBytes("k")), toBytes("v2"));
  EXPECT_EQ(kv.size(), 1u);
  EXPECT_GT(kv.deadRecords(), 0u);
}

TEST_F(LogKvTest, PersistsAcrossReopen) {
  {
    LogKv kv(path_);
    kv.put(toBytes("alpha"), toBytes("1"));
    kv.put(toBytes("beta"), toBytes("2"));
    kv.erase(toBytes("alpha"));
    kv.flush();
  }
  LogKv reopened(path_);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.get(toBytes("beta")), toBytes("2"));
  EXPECT_FALSE(reopened.contains(toBytes("alpha")));
}

TEST_F(LogKvTest, ManyEntriesSurviveReopen) {
  Rng rng(1);
  std::vector<std::pair<ByteVec, ByteVec>> entries;
  {
    LogKv kv(path_);
    for (int i = 0; i < 500; ++i) {
      ByteVec key = kvKeyFromU64(rng.next());
      ByteVec value(static_cast<size_t>(rng.uniformInt(0, 64)));
      for (auto& b : value) b = static_cast<uint8_t>(rng.next());
      kv.put(key, value);
      entries.emplace_back(std::move(key), std::move(value));
    }
    kv.flush();
  }
  LogKv reopened(path_);
  EXPECT_EQ(reopened.size(), entries.size());
  for (const auto& [key, value] : entries)
    EXPECT_EQ(reopened.get(key), value);
}

TEST_F(LogKvTest, TornTailIsTruncatedOnRecovery) {
  {
    LogKv kv(path_);
    kv.put(toBytes("good"), toBytes("record"));
    kv.flush();
  }
  // Simulate a crash mid-append: add garbage half-record bytes.
  {
    FILE* f = fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t garbage[] = {0x12, 0x34, 0x56};
    fwrite(garbage, 1, sizeof(garbage), f);
    fclose(f);
  }
  LogKv recovered(path_);
  EXPECT_EQ(recovered.get(toBytes("good")), toBytes("record"));
  EXPECT_EQ(recovered.size(), 1u);
  // The torn bytes are gone; new appends work.
  recovered.put(toBytes("new"), toBytes("entry"));
  recovered.flush();
  LogKv again(path_);
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(again.get(toBytes("new")), toBytes("entry"));
}

TEST_F(LogKvTest, CorruptRecordStopsReplayAtTail) {
  {
    LogKv kv(path_);
    kv.put(toBytes("first"), toBytes("1"));
    kv.put(toBytes("second"), toBytes("2"));
    kv.flush();
  }
  // Flip a byte inside the second record's payload.
  {
    auto data = readFile(path_);
    data[data.size() - 2] ^= 0xFF;
    writeFile(path_, data);
  }
  LogKv recovered(path_);
  EXPECT_EQ(recovered.get(toBytes("first")), toBytes("1"));
  EXPECT_FALSE(recovered.contains(toBytes("second")));
}

TEST_F(LogKvTest, CompactionReclaimsDeadSpace) {
  LogKv kv(path_);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 20; ++i) {
      kv.put(kvKeyFromU64(static_cast<uint64_t>(i)),
             toBytes("value-" + std::to_string(round)));
    }
  }
  const uint64_t before = kv.logBytes();
  kv.compact();
  EXPECT_LT(kv.logBytes(), before / 4);
  EXPECT_EQ(kv.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(kv.get(kvKeyFromU64(static_cast<uint64_t>(i))),
              toBytes("value-19"));
  }
}

TEST_F(LogKvTest, CompactionSurvivesReopen) {
  {
    LogKv kv(path_);
    kv.put(toBytes("a"), toBytes("1"));
    kv.put(toBytes("b"), toBytes("2"));
    kv.erase(toBytes("a"));
    kv.compact();
  }
  LogKv reopened(path_);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.get(toBytes("b")), toBytes("2"));
  EXPECT_EQ(reopened.deadRecords(), 0u);
}

TEST_F(LogKvTest, EraseMissingReturnsFalse) {
  LogKv kv(path_);
  EXPECT_FALSE(kv.erase(toBytes("ghost")));
}

TEST_F(LogKvTest, ForEachVisitsLiveEntriesOnly) {
  LogKv kv(path_);
  kv.put(toBytes("keep"), toBytes("1"));
  kv.put(toBytes("drop"), toBytes("2"));
  kv.erase(toBytes("drop"));
  size_t count = 0;
  kv.forEach([&count](ByteView key, ByteView) {
    EXPECT_EQ(toString(key), "keep");
    ++count;
  });
  EXPECT_EQ(count, 1u);
}

TEST_F(LogKvTest, EmptyValue) {
  LogKv kv(path_);
  kv.put(toBytes("k"), {});
  const auto value = kv.get(toBytes("k"));
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(value->empty());
}

}  // namespace
}  // namespace freqdedup
