#include "kvstore/logkv.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/crc32.h"
#include "common/rng.h"
#include "common/varint.h"
#include "obs/metrics.h"

namespace freqdedup {
namespace {

class LogKvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("logkv_test_" +
              std::to_string(
                  ::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".log"))
                .string();
    removeStoreFiles();
  }
  void TearDown() override { removeStoreFiles(); }

  /// The WAL plus every checkpoint sidecar a test may have produced.
  void removeStoreFiles() {
    for (const char* suffix :
         {"", ".new", ".ckpt", ".ckpt.tmp", ".ckpt.corrupt"})
      std::filesystem::remove(path_ + suffix);
  }

  std::string path_;
};

TEST_F(LogKvTest, PutGet) {
  LogKv kv(path_);
  kv.put(toBytes("key"), toBytes("value"));
  EXPECT_EQ(kv.get(toBytes("key")), toBytes("value"));
  EXPECT_EQ(kv.size(), 1u);
}

TEST_F(LogKvTest, MissingKey) {
  LogKv kv(path_);
  EXPECT_EQ(kv.get(toBytes("nope")), std::nullopt);
  EXPECT_FALSE(kv.contains(toBytes("nope")));
}

TEST_F(LogKvTest, OverwriteKeepsLatest) {
  LogKv kv(path_);
  kv.put(toBytes("k"), toBytes("v1"));
  kv.put(toBytes("k"), toBytes("v2"));
  EXPECT_EQ(kv.get(toBytes("k")), toBytes("v2"));
  EXPECT_EQ(kv.size(), 1u);
  EXPECT_GT(kv.deadRecords(), 0u);
}

TEST_F(LogKvTest, PersistsAcrossReopen) {
  {
    LogKv kv(path_);
    kv.put(toBytes("alpha"), toBytes("1"));
    kv.put(toBytes("beta"), toBytes("2"));
    kv.erase(toBytes("alpha"));
    kv.flush();
  }
  LogKv reopened(path_);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.get(toBytes("beta")), toBytes("2"));
  EXPECT_FALSE(reopened.contains(toBytes("alpha")));
}

TEST_F(LogKvTest, ManyEntriesSurviveReopen) {
  Rng rng(1);
  std::vector<std::pair<ByteVec, ByteVec>> entries;
  {
    LogKv kv(path_);
    for (int i = 0; i < 500; ++i) {
      ByteVec key = kvKeyFromU64(rng.next());
      ByteVec value(static_cast<size_t>(rng.uniformInt(0, 64)));
      for (auto& b : value) b = static_cast<uint8_t>(rng.next());
      kv.put(key, value);
      entries.emplace_back(std::move(key), std::move(value));
    }
    kv.flush();
  }
  LogKv reopened(path_);
  EXPECT_EQ(reopened.size(), entries.size());
  for (const auto& [key, value] : entries)
    EXPECT_EQ(reopened.get(key), value);
}

TEST_F(LogKvTest, TornTailIsTruncatedOnRecovery) {
  {
    LogKv kv(path_);
    kv.put(toBytes("good"), toBytes("record"));
    kv.flush();
  }
  // Simulate a crash mid-append: add garbage half-record bytes.
  {
    FILE* f = fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t garbage[] = {0x12, 0x34, 0x56};
    fwrite(garbage, 1, sizeof(garbage), f);
    fclose(f);
  }
  LogKv recovered(path_);
  EXPECT_EQ(recovered.get(toBytes("good")), toBytes("record"));
  EXPECT_EQ(recovered.size(), 1u);
  // The torn bytes are gone; new appends work.
  recovered.put(toBytes("new"), toBytes("entry"));
  recovered.flush();
  LogKv again(path_);
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(again.get(toBytes("new")), toBytes("entry"));
}

TEST_F(LogKvTest, CorruptRecordStopsReplayAtTail) {
  {
    LogKv kv(path_);
    kv.put(toBytes("first"), toBytes("1"));
    kv.put(toBytes("second"), toBytes("2"));
    kv.flush();
  }
  // Flip a byte inside the second record's payload.
  {
    auto data = readFile(path_);
    data[data.size() - 2] ^= 0xFF;
    writeFile(path_, data);
  }
  LogKv recovered(path_);
  EXPECT_EQ(recovered.get(toBytes("first")), toBytes("1"));
  EXPECT_FALSE(recovered.contains(toBytes("second")));
}

TEST_F(LogKvTest, CompactionReclaimsDeadSpace) {
  LogKv kv(path_);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 20; ++i) {
      kv.put(kvKeyFromU64(static_cast<uint64_t>(i)),
             toBytes("value-" + std::to_string(round)));
    }
  }
  const uint64_t before = kv.logBytes();
  kv.compact();
  EXPECT_LT(kv.logBytes(), before / 4);
  EXPECT_EQ(kv.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(kv.get(kvKeyFromU64(static_cast<uint64_t>(i))),
              toBytes("value-19"));
  }
}

TEST_F(LogKvTest, CompactionSurvivesReopen) {
  {
    LogKv kv(path_);
    kv.put(toBytes("a"), toBytes("1"));
    kv.put(toBytes("b"), toBytes("2"));
    kv.erase(toBytes("a"));
    kv.compact();
  }
  LogKv reopened(path_);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.get(toBytes("b")), toBytes("2"));
  EXPECT_EQ(reopened.deadRecords(), 0u);
}

TEST_F(LogKvTest, EraseMissingReturnsFalse) {
  LogKv kv(path_);
  EXPECT_FALSE(kv.erase(toBytes("ghost")));
}

TEST_F(LogKvTest, ForEachVisitsLiveEntriesOnly) {
  LogKv kv(path_);
  kv.put(toBytes("keep"), toBytes("1"));
  kv.put(toBytes("drop"), toBytes("2"));
  kv.erase(toBytes("drop"));
  size_t count = 0;
  kv.forEach([&count](ByteView key, ByteView) {
    EXPECT_EQ(toString(key), "keep");
    ++count;
  });
  EXPECT_EQ(count, 1u);
}

TEST_F(LogKvTest, EmptyValue) {
  LogKv kv(path_);
  kv.put(toBytes("k"), {});
  const auto value = kv.get(toBytes("k"));
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(value->empty());
}

TEST_F(LogKvTest, SyncAdvancesDurableLsn) {
  LogKv kv(path_);
  kv.put(toBytes("k"), toBytes("v"));
  const Lsn appended = kv.appendedLsn();
  EXPECT_GT(appended, 0u);
  kv.sync(appended);
  EXPECT_GE(kv.durableLsn(), appended);
  kv.flush();
  EXPECT_EQ(kv.durableLsn(), kv.appendedLsn());
}

// The acceptance invariant: after a checkpoint plus N tail commits, a
// reopen loads the checkpoint and replays exactly those N records.
TEST_F(LogKvTest, ReopenAfterCheckpointReplaysOnlyTheTail) {
  constexpr int kCheckpointed = 100;
  constexpr int kTail = 7;
  {
    LogKv kv(path_);
    for (int i = 0; i < kCheckpointed; ++i)
      kv.put(kvKeyFromU64(static_cast<uint64_t>(i)), toBytes("base"));
    kv.checkpoint();
    for (int i = 0; i < kTail; ++i)
      kv.put(kvKeyFromU64(static_cast<uint64_t>(1000 + i)), toBytes("tail"));
    kv.flush();
  }
  LogKv reopened(path_);
  EXPECT_EQ(reopened.checkpointRecordsLoaded(),
            static_cast<uint64_t>(kCheckpointed));
  EXPECT_EQ(reopened.tailRecordsReplayed(), static_cast<uint64_t>(kTail));
  EXPECT_GT(reopened.checkpointWatermark(), 0u);
  EXPECT_EQ(reopened.size(),
            static_cast<size_t>(kCheckpointed + kTail));
  // The same numbers must surface through the obs registry.
  if (obs::kObsEnabled) {
    obs::MetricsRegistry registry;
    reopened.bindMetrics(registry);
    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter("wal.replay.records"),
              static_cast<uint64_t>(kTail));
    EXPECT_EQ(snap.counter("ckpt.loads"), 1u);
    EXPECT_EQ(snap.counter("ckpt.load_records"),
              static_cast<uint64_t>(kCheckpointed));
  }
  // Values read back from both files.
  EXPECT_EQ(reopened.get(kvKeyFromU64(0)), toBytes("base"));
  EXPECT_EQ(reopened.get(kvKeyFromU64(1000)), toBytes("tail"));
}

// Pin for the dead-record accounting divergence: live mutations and replay
// must count identically, so the value is stable across any number of
// reopens (erase = erased put + tombstone = 2; overwrite = 1).
TEST_F(LogKvTest, DeadRecordsStableAcrossReopen) {
  uint64_t live = 0;
  {
    LogKv kv(path_);
    kv.put(toBytes("a"), toBytes("1"));
    kv.put(toBytes("a"), toBytes("2"));  // +1 (overwrite)
    kv.put(toBytes("b"), toBytes("1"));
    kv.erase(toBytes("b"));              // +2 (erased put + tombstone)
    kv.erase(toBytes("c"));              // no-op: key absent, nothing logged
    kv.put(toBytes("d"), toBytes("1"));
    kv.flush();
    live = kv.deadRecords();
    EXPECT_EQ(live, 3u);
  }
  uint64_t afterFirstReopen = 0;
  {
    LogKv kv(path_);
    afterFirstReopen = kv.deadRecords();
    EXPECT_EQ(afterFirstReopen, live);
  }
  LogKv kv(path_);
  EXPECT_EQ(kv.deadRecords(), afterFirstReopen);
}

TEST_F(LogKvTest, AutoCheckpointTriggersAtThreshold) {
  LogKvOptions options;
  options.checkpointBytes = 4096;
  LogKv kv(path_, options);
  const ByteVec value(128, 0x5A);
  for (int i = 0; i < 200; ++i)
    kv.put(kvKeyFromU64(static_cast<uint64_t>(i % 10)), value);
  // 200 x ~140-byte records against a 4 KiB threshold: checkpoints must
  // have fired, keeping the replayable tail bounded.
  EXPECT_LT(kv.logBytes(), options.checkpointBytes + 4096);
  EXPECT_TRUE(std::filesystem::exists(path_ + ".ckpt"));
  EXPECT_EQ(kv.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(kv.get(kvKeyFromU64(static_cast<uint64_t>(i))), value);
}

TEST_F(LogKvTest, CorruptCheckpointIsQuarantinedAndTailSurvives) {
  {
    LogKv kv(path_);
    kv.put(toBytes("ckpt-key"), toBytes("1"));
    kv.checkpoint();
    kv.put(toBytes("tail-key"), toBytes("2"));
    kv.flush();
  }
  {
    auto data = readFile(path_ + ".ckpt");
    data[data.size() - 1] ^= 0xFF;  // corrupt the checkpointed record
    writeFile(path_ + ".ckpt", data);
  }
  LogKv recovered(path_);
  // The checkpointed state is genuinely lost (the WAL was rotated past it);
  // recovery must quarantine the bad file, keep the store usable, and
  // still replay the tail.
  EXPECT_EQ(recovered.checkpointRecordsLoaded(), 0u);
  EXPECT_TRUE(std::filesystem::exists(path_ + ".ckpt.corrupt"));
  EXPECT_EQ(recovered.get(toBytes("tail-key")), toBytes("2"));
  EXPECT_FALSE(recovered.contains(toBytes("ckpt-key")));
  recovered.put(toBytes("after"), toBytes("3"));
  recovered.flush();
  LogKv again(path_);
  EXPECT_EQ(again.get(toBytes("after")), toBytes("3"));
}

// Stores written before the WAL header existed (headerless frame stream,
// implicit base LSN 0) must stay readable, and a checkpoint migrates them
// to the current format.
TEST_F(LogKvTest, LegacyHeaderlessLogIsReadableAndMigrates) {
  {
    ByteVec file;
    const auto appendLegacyRecord = [&file](const std::string& key,
                                            const std::string& value) {
      ByteVec payload;
      payload.push_back(1);  // kPut
      putVarint(payload, key.size());
      appendBytes(payload, toBytes(key));
      putVarint(payload, value.size());
      appendBytes(payload, toBytes(value));
      putU32(file, crc32c(payload));
      putU32(file, static_cast<uint32_t>(payload.size()));
      appendBytes(file, payload);
    };
    appendLegacyRecord("old1", "v1");
    appendLegacyRecord("old2", "v2");
    writeFile(path_, file);
  }
  {
    LogKv kv(path_);
    EXPECT_EQ(kv.size(), 2u);
    EXPECT_EQ(kv.get(toBytes("old1")), toBytes("v1"));
    EXPECT_EQ(kv.tailRecordsReplayed(), 2u);
    kv.put(toBytes("new"), toBytes("v3"));
    kv.checkpoint();  // rotation writes the headered format
  }
  LogKv migrated(path_);
  EXPECT_EQ(migrated.size(), 3u);
  EXPECT_EQ(migrated.get(toBytes("old2")), toBytes("v2"));
  EXPECT_EQ(migrated.get(toBytes("new")), toBytes("v3"));
  EXPECT_EQ(migrated.checkpointRecordsLoaded(), 3u);
  EXPECT_EQ(migrated.tailRecordsReplayed(), 0u);
}

}  // namespace
}  // namespace freqdedup
