#include "kvstore/wal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace freqdedup {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("wal_test_" +
              std::to_string(
                  ::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".wal"))
                .string();
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".new");
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".new");
  }

  std::string path_;
};

TEST_F(WalTest, AppendAssignsContiguousLsns) {
  Wal wal(path_);
  const Lsn a = wal.append(toBytes("aaaa"));
  const Lsn b = wal.append(toBytes("bb"));
  EXPECT_EQ(a, Wal::kFrameBytes);
  EXPECT_EQ(b, a + 4 + Wal::kFrameBytes);
  EXPECT_EQ(wal.appendedLsn(), b + 2);
  EXPECT_EQ(wal.tailBytes(), wal.appendedLsn());
}

TEST_F(WalTest, ReadAtServesBufferedAndDurableBytes) {
  Wal wal(path_);
  const Lsn a = wal.append(toBytes("hello"));
  EXPECT_EQ(wal.readAt(a, 5), toBytes("hello"));  // still buffered
  wal.syncAll();
  EXPECT_EQ(wal.readAt(a, 5), toBytes("hello"));  // now from the file
  const Lsn b = wal.append(toBytes("world"));
  EXPECT_EQ(wal.readAt(b, 5), toBytes("world"));
  EXPECT_EQ(wal.readAt(a, 5), toBytes("hello"));
  EXPECT_THROW(wal.readAt(wal.appendedLsn(), 1), std::runtime_error);
}

TEST_F(WalTest, SyncMakesPrefixDurableAndScanSeesIt) {
  std::vector<std::pair<Lsn, std::string>> written;
  {
    Wal wal(path_);
    for (int i = 0; i < 20; ++i) {
      const std::string payload = "record-" + std::to_string(i);
      written.emplace_back(wal.append(toBytes(payload)), payload);
    }
    wal.syncAll();
    EXPECT_EQ(wal.durableLsn(), wal.appendedLsn());
  }
  Wal reopened(path_);
  size_t i = 0;
  reopened.scan(0, [&](const Wal::Record& r) {
    EXPECT_EQ(r.payloadLsn, written[i].first);
    EXPECT_EQ(toString(r.payload), written[i].second);
    ++i;
    return true;
  });
  EXPECT_EQ(i, written.size());
}

TEST_F(WalTest, ScanTruncatesTornTail) {
  Lsn goodEnd = 0;
  {
    Wal wal(path_);
    wal.append(toBytes("good"));
    wal.syncAll();
    goodEnd = wal.appendedLsn();
  }
  {
    FILE* f = fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t garbage[] = {0xDE, 0xAD, 0xBE};
    fwrite(garbage, 1, sizeof(garbage), f);
    fclose(f);
  }
  Wal wal(path_);
  size_t records = 0;
  const Lsn end = wal.scan(0, [&](const Wal::Record&) {
    ++records;
    return true;
  });
  EXPECT_EQ(records, 1u);
  EXPECT_EQ(end, goodEnd);
  EXPECT_EQ(wal.appendedLsn(), goodEnd);
  // Appends resume on the clean boundary.
  const Lsn next = wal.append(toBytes("after"));
  EXPECT_EQ(next, goodEnd + Wal::kFrameBytes);
}

TEST_F(WalTest, RotatePreservesLsnSpaceAcrossReopen) {
  Lsn watermark = 0;
  Lsn tailPayload = 0;
  {
    Wal wal(path_);
    wal.append(toBytes("pre-rotation"));
    wal.syncAll();
    watermark = wal.appendedLsn();
    wal.rotate(watermark);
    EXPECT_EQ(wal.baseLsn(), watermark);
    EXPECT_EQ(wal.tailBytes(), 0u);
    // LSNs keep counting in the same space.
    tailPayload = wal.append(toBytes("post-rotation"));
    EXPECT_EQ(tailPayload, watermark + Wal::kFrameBytes);
    wal.syncAll();
  }
  Wal reopened(path_);
  EXPECT_EQ(reopened.baseLsn(), watermark);
  size_t records = 0;
  reopened.scan(0, [&](const Wal::Record& r) {  // clamped to baseLsn
    EXPECT_EQ(r.payloadLsn, tailPayload);
    EXPECT_EQ(toString(r.payload), "post-rotation");
    ++records;
    return true;
  });
  EXPECT_EQ(records, 1u);
}

TEST_F(WalTest, PerOpModeIsDurableImmediately) {
  WalOptions options;
  options.syncMode = WalOptions::SyncMode::kPerOp;
  Wal wal(path_, options);
  wal.append(toBytes("one"));
  EXPECT_EQ(wal.durableLsn(), wal.appendedLsn());
  wal.append(toBytes("two"));
  EXPECT_EQ(wal.durableLsn(), wal.appendedLsn());
}

TEST_F(WalTest, ConcurrentCommittersAllDurableWithGroupedSyncs) {
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 50;
  Wal wal(path_);
  obs::MetricsRegistry registry;
  wal.bindMetrics(registry);
  std::atomic<uint64_t> commits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, &commits, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        const Lsn payloadLsn = wal.append(toBytes(payload));
        wal.sync(payloadLsn + payload.size());
        // The commit contract: once sync returns, the record is durable.
        if (wal.durableLsn() >= payloadLsn + payload.size())
          commits.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(commits.load(), static_cast<uint64_t>(kThreads) *
                                static_cast<uint64_t>(kCommitsPerThread));
  EXPECT_EQ(wal.durableLsn(), wal.appendedLsn());

  if (obs::kObsEnabled) {
    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter("wal.appends"),
              static_cast<uint64_t>(kThreads) * kCommitsPerThread);
    // Group commit: the leader's fdatasync covers every waiter in the slot,
    // so the sync count cannot exceed the commit count, and every appended
    // record must be accounted to some group.
    EXPECT_GT(snap.counter("wal.syncs"), 0u);
    EXPECT_LE(snap.counter("wal.syncs"),
              static_cast<uint64_t>(kThreads) * kCommitsPerThread);
    EXPECT_EQ(snap.histogram("wal.group_records").sum,
              static_cast<uint64_t>(kThreads) * kCommitsPerThread);
  }

  // Everything written survives a reopen.
  Wal reopened(path_);
  size_t records = 0;
  reopened.scan(0, [&](const Wal::Record&) {
    ++records;
    return true;
  });
  EXPECT_EQ(records, static_cast<size_t>(kThreads) * kCommitsPerThread);
}

TEST_F(WalTest, CreateWithBaseLsnStartsThere) {
  Wal wal(path_, WalOptions{}, /*createBaseLsn=*/12345);
  EXPECT_EQ(wal.baseLsn(), 12345u);
  EXPECT_EQ(wal.appendedLsn(), 12345u);
  const Lsn payload = wal.append(toBytes("x"));
  EXPECT_EQ(payload, 12345u + Wal::kFrameBytes);
  wal.syncAll();
  Wal reopened(path_);
  EXPECT_EQ(reopened.baseLsn(), 12345u);
}

}  // namespace
}  // namespace freqdedup
