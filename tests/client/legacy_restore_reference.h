// Frozen copy of the pre-PR5 chunk-at-a-time restore path
// (RestoreSession::streamTo as of commit d1a8e2d), kept verbatim as the
// equivalence oracle for the batched, pipelined restore engine: restored
// bytes, verification semantics (which checks run, in what order, with what
// error messages) and size accounting must match this implementation for
// every scheme, chunker, thread count and cache size. Do not "fix" or
// modernize this file — it is a reference, same discipline as
// legacy_backup_reference.h. (The original took the client's store mutex
// around getChunk; the caller-provided store here is its own serialization
// domain, which is behavior-identical for a single restore.)
// bench/restore_throughput.cc carries a hand-synced mirror of this loop as
// its measured baseline (bench/ does not include test headers).
#pragma once

#include <stdexcept>

#include "client/restore_session.h"  // ByteSink
#include "crypto/mle.h"
#include "storage/backup_store.h"
#include "storage/recipe.h"

namespace freqdedup::legacy {

/// The pre-PR5 restore loop: one getChunk round trip and one serial decrypt
/// per recipe entry, verified end-to-end, emitted in order.
inline uint64_t chunkAtATimeRestore(BackupStore& store,
                                    const FileRecipe& fileRecipe,
                                    const KeyRecipe& keyRecipe,
                                    const ByteSink& sink) {
  if (fileRecipe.entries.size() != keyRecipe.keys.size())
    throw std::invalid_argument("RestoreSession: file and key recipes "
                                "disagree on chunk count");
  uint64_t streamed = 0;
  for (size_t i = 0; i < fileRecipe.entries.size(); ++i) {
    const RecipeEntry& entry = fileRecipe.entries[i];
    const ByteVec cipher = store.getChunk(entry.cipherFp);
    // End-to-end verification: the store must hand back exactly the
    // ciphertext the recipe names, and decryption must reproduce the
    // plaintext the recipe fingerprinted at backup time.
    if (fpOfContent(cipher) != entry.cipherFp)
      throw std::runtime_error(
          "restore: ciphertext fingerprint mismatch for " +
          fpToHex(entry.cipherFp));
    const ByteVec plain =
        MleScheme::decryptWithKey(keyRecipe.keys[i], cipher);
    if (entry.plainFp != 0 && fpOfContent(plain) != entry.plainFp)
      throw std::runtime_error(
          "restore: plaintext fingerprint mismatch for " +
          fpToHex(entry.cipherFp));
    streamed += plain.size();
    sink(ByteView(plain.data(), plain.size()));
  }
  if (streamed != fileRecipe.fileSize)
    throw std::runtime_error("restore: size mismatch for " +
                             fileRecipe.fileName);
  return streamed;
}

}  // namespace freqdedup::legacy
