// Restore-path concurrency:
//  - the lock-scope regression: two concurrent restore sessions must make
//    overlapping I/O progress (the pre-PR5 engine held the client's store
//    mutex across every getChunk's container read, serializing them);
//  - cache-correctness under churn: concurrent restore sessions interleaved
//    with deleteBackup + collectGarbage (which relocates live chunks and
//    deletes their old containers) must always produce the exact original
//    bytes — stale or relocated container bytes must never be served.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <filesystem>
#include <thread>

#include "chunking/cdc_chunker.h"
#include "client/dedup_client.h"
#include "common/rng.h"
#include "../storage/failing_store.h"
#include "storage/container_backup_store.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

ByteVec randomContent(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

CdcParams smallCdc() {
  CdcParams p;
  p.minSize = 256;
  p.avgSize = 1024;
  p.maxSize = 4096;
  return p;
}

RestoreOptions concurrentRestoreOptions() {
  RestoreOptions o;
  o.parallelism = 2;
  o.readAheadBatches = 2;
  o.batchBytes = 8 * 1024;
  return o;
}

TEST(RestoreConcurrency, TwoConcurrentRestoresMakeOverlappingIoProgress) {
  MemBackupStore inner(/*containerBytes=*/16 * 1024);
  FailingStore store(inner);  // injection disarmed; used as an I/O probe
  KeyManager km(toBytes("overlap-secret"));
  CdcChunker chunker(smallCdc());
  DedupClient client(store, km, chunker, {}, concurrentRestoreOptions());

  const ByteVec content = randomContent(81, 128 * 1024);
  BackupSession backup = client.beginBackup("obj");
  backup.append(content);
  const BackupOutcome outcome = backup.finish();

  // Every store read now takes ~5 ms: if one restore held the client's
  // store mutex across its reads (the pre-PR5 bug), the two sessions'
  // reads could never be in flight simultaneously, regardless of timing.
  store.delayReads(std::chrono::milliseconds(5));
  std::barrier sync(2);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> mismatches{0};
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      RestoreSession session =
          client.beginRestore(outcome.fileRecipe, outcome.keyRecipe);
      sync.arrive_and_wait();
      if (session.readAll() != content) ++mismatches;
    });
  }
  for (auto& thread : threads) thread.join();
  store.resetInjection();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GE(store.maxConcurrentReads(), 2u)
      << "concurrent restores must overlap their store reads";
}

TEST(RestoreConcurrency, RestoresRacingDeleteAndGcNeverServeWrongBytes) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "restore_concurrency_gc")
          .string();
  std::filesystem::remove_all(dir);
  {
    // Small containers + tiny read cache: restores constantly reload
    // containers while GC compacts them underneath.
    FileBackupStore store(
        dir, {.containerBytes = 16 * 1024, .blockCacheBytes = 2 * 16 * 1024});
    KeyManager km(toBytes("gc-race-secret"));
    CdcChunker chunker(smallCdc());
    DedupClient client(store, km, chunker, {}, concurrentRestoreOptions());
    const AesKey userKey = userKeyFromPassphrase("gc-race");
    Rng rng(5);

    // "churn" goes first, so the chunks "keep" shares with it live in
    // churn's containers: deleting churn + GC then relocates live,
    // keep-referenced chunks and deletes the containers they came from.
    const ByteVec churnContent = randomContent(90, 96 * 1024);
    ByteVec keepContent = churnContent;
    for (size_t off = 4'000; off + 512 < keepContent.size(); off += 24'000)
      for (size_t i = off; i < off + 512; ++i) keepContent[i] ^= 0x3C;

    const auto backupObject = [&](const std::string& name,
                                  const ByteVec& content) {
      BackupSession session = client.beginBackup(name);
      session.append(content);
      client.commitBackup(name, session.finish(), userKey, rng);
    };
    backupObject("churn", churnContent);
    backupObject("keep", keepContent);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> restores{0};
    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
      readers.emplace_back([&] {
        while (!stop.load()) {
          // "keep" is never deleted, so every pass must succeed AND be
          // byte-exact, even while its chunks are being relocated.
          try {
            RestoreSession session = client.beginRestore("keep", userKey);
            if (session.readAll() != keepContent) {
              ++failures;
              return;
            }
            ++restores;
          } catch (const std::exception&) {
            ++failures;
            return;
          }
        }
      });
    }

    // Churn: repeatedly delete + GC (relocating keep's shared chunks into
    // fresh containers), then re-create churn so the next cycle has dead
    // chunks again.
    for (int cycle = 0; cycle < 4; ++cycle) {
      ASSERT_TRUE(client.deleteBackup("churn"));
      const GcStats gc = store.collectGarbage();
      if (cycle == 0)
        EXPECT_GT(gc.chunksRelocated, 0u)
            << "shared chunks must be copied forward for the race to bite";
      backupObject("churn", churnContent);
    }
    stop.store(true);
    for (auto& reader : readers) reader.join();

    EXPECT_EQ(failures.load(), 0u)
        << "a restore of a live backup must never fail or see wrong bytes";
    EXPECT_GT(restores.load(), 0u);
    EXPECT_TRUE(store.verify().ok());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace freqdedup
