// Batched-vs-chunk-at-a-time restore equivalence matrix: the pipelined
// restore engine must reproduce the frozen pre-PR5 path across schemes
// {MLE, MinHash, Scrambled} x chunkers {CDC, fixed} x restore threads
// {1, 2, 8} x block-cache byte budgets {0, ~one container, unbounded}:
//  - restored bytes bit-identical (and equal to the original content);
//  - verification behavior identical (same checks, same error messages, on
//    tampered recipes/keys both paths fail the same way);
//  - store read counts pinned: the batched path never loads more containers
//    than the legacy path, and with an unbounded cache it loads each
//    container exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <tuple>

#include "chunking/cdc_chunker.h"
#include "chunking/fixed_chunker.h"
#include "client/dedup_client.h"
#include "common/rng.h"
#include "legacy_restore_reference.h"
#include "obs/metrics.h"
#include "storage/container_backup_store.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

enum class ChunkerKind { kCdc, kFixed };

// (scheme, chunker, restore threads, block-cache byte budget)
using MatrixParam =
    std::tuple<EncryptionScheme, ChunkerKind, uint32_t, uint64_t>;

constexpr uint64_t kContainerBytes = 64 * 1024;
// A bounded budget that retains roughly one full container (payload plus
// the per-chunk charge overhead) at a time.
constexpr uint64_t kOneContainerBudget = 2 * kContainerBytes;

ByteVec testContent() {
  // 192 KiB random + a repeat of the first 64 KiB: duplicate chunks point
  // back into earlier containers, so locality batches are not purely
  // sequential and the planner's container grouping is exercised.
  Rng rng(55);
  ByteVec data(192 * 1024);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  data.insert(data.end(), data.begin(), data.begin() + 64 * 1024);
  return data;
}

CdcParams smallCdc() {
  CdcParams p;
  p.minSize = 256;
  p.avgSize = 1024;
  p.maxSize = 4096;
  return p;
}

BackupOptions backupOptionsFor(EncryptionScheme scheme) {
  BackupOptions o;
  o.scheme = scheme;
  o.parallelism = 2;
  o.segmentParams.minBytes = 8 * 1024;
  o.segmentParams.avgBytes = 16 * 1024;
  o.segmentParams.maxBytes = 32 * 1024;
  o.segmentParams.avgChunkBytes = 1024;
  o.scrambleSeed = 7;
  return o;
}

RestoreOptions restoreOptionsFor(uint32_t threads) {
  RestoreOptions o;
  o.parallelism = threads;
  o.readAheadBatches = 2;
  o.batchBytes = 32 * 1024;  // several batches, several containers each
  o.maxBatchContainers = 4;
  return o;
}

class RestoreEquivalence : public ::testing::TestWithParam<MatrixParam> {
 protected:
  void SetUp() override {
    const auto& info = *::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = "restore_equiv_" + std::string(info.name());
    for (char& c : name)
      if (c == '/') c = '_';
    dir_ = (std::filesystem::temp_directory_path() / name).string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] EncryptionScheme scheme() const {
    return std::get<0>(GetParam());
  }
  [[nodiscard]] uint32_t threads() const { return std::get<2>(GetParam()); }
  [[nodiscard]] uint64_t cacheBudget() const { return std::get<3>(GetParam()); }

  [[nodiscard]] std::unique_ptr<Chunker> makeChunker() const {
    if (std::get<1>(GetParam()) == ChunkerKind::kCdc)
      return std::make_unique<CdcChunker>(smallCdc());
    return std::make_unique<FixedChunker>(1024);
  }

  std::string dir_;
};

TEST_P(RestoreEquivalence, BatchedPathMatchesChunkAtATimeBitIdentically) {
  const ByteVec content = testContent();
  const std::unique_ptr<Chunker> chunker = makeChunker();
  KeyManager km(toBytes("restore-equivalence-secret"));

  // Backup once; both restore passes then read the same on-disk store.
  BackupOutcome outcome;
  {
    FileBackupStore store(dir_, {.containerBytes = kContainerBytes});
    DedupClient client(store, km, *chunker, backupOptionsFor(scheme()));
    BackupSession session = client.beginBackup("obj");
    session.append(content);
    outcome = session.finish();
    store.flush();
  }

  // Oracle: the frozen chunk-at-a-time loop on a freshly opened (cold) store.
  ByteVec legacyBytes;
  StoreReadStats legacyReads;
  size_t containerCount = 0;
  {
    FileBackupStore store(dir_, {.containerBytes = kContainerBytes,
                                 .blockCacheBytes = cacheBudget()});
    const uint64_t n = legacy::chunkAtATimeRestore(
        store, outcome.fileRecipe, outcome.keyRecipe,
        [&](ByteView b) { appendBytes(legacyBytes, b); });
    EXPECT_EQ(n, content.size());
    legacyReads = store.readStats();
    containerCount = store.containerCount();
  }

  // Under test: the batched engine on an equally fresh store.
  ByteVec batchedBytes;
  StoreReadStats batchedReads;
  {
    FileBackupStore store(dir_, {.containerBytes = kContainerBytes,
                                 .blockCacheBytes = cacheBudget()});
    DedupClient client(store, restoreOptionsFor(threads()));
    RestoreSession session =
        client.beginRestore(outcome.fileRecipe, outcome.keyRecipe);
    const uint64_t n =
        session.streamTo([&](ByteView b) { appendBytes(batchedBytes, b); });
    EXPECT_EQ(n, content.size());
    batchedReads = store.readStats();
  }

  // Bytes: bit-identical to the legacy path and to the original content.
  EXPECT_EQ(batchedBytes, legacyBytes);
  EXPECT_EQ(batchedBytes, content);

  ASSERT_GT(containerCount, 2u) << "matrix needs a multi-container store";
  // Read accounting lives in the metrics registry now, so these pins only
  // mean anything when it is compiled in (FREQDEDUP_OBS=OFF reads zeros).
  if (obs::kObsEnabled) {
    // Both paths read every recipe entry exactly once...
    const uint64_t entryCount = outcome.fileRecipe.entries.size();
    EXPECT_EQ(legacyReads.chunkReads, entryCount);
    EXPECT_EQ(batchedReads.chunkReads, entryCount);
    EXPECT_GT(batchedReads.batchReads, 0u);
    // ...but the batched path fetches far fewer containers when the cache is
    // disabled (one getChunk = one container fetch vs. one fetch per distinct
    // container per batch), and with a bounded cache it pays at most one
    // boundary re-load per batch over the sequential legacy scan.
    if (cacheBudget() == 0) {
      EXPECT_EQ(legacyReads.containerLoads, legacyReads.chunkReads);
      EXPECT_LT(batchedReads.containerLoads, legacyReads.containerLoads);
    } else {
      EXPECT_LE(batchedReads.containerLoads,
                legacyReads.containerLoads + batchedReads.batchReads);
    }
    // With an unbounded cache nothing is ever evicted or re-read: each live
    // container is parsed from disk exactly once.
    if (cacheBudget() == kUnboundedBlockCacheBytes) {
      EXPECT_EQ(batchedReads.containerLoads, containerCount);
      EXPECT_EQ(legacyReads.containerLoads, containerCount);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RestoreEquivalence,
    ::testing::Combine(
        ::testing::Values(EncryptionScheme::kMle, EncryptionScheme::kMinHash,
                          EncryptionScheme::kMinHashScrambled),
        ::testing::Values(ChunkerKind::kCdc, ChunkerKind::kFixed),
        ::testing::Values(1u, 2u, 8u),
        ::testing::Values(uint64_t{0}, kOneContainerBudget,
                          kUnboundedBlockCacheBytes)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case EncryptionScheme::kMle: name = "Mle"; break;
        case EncryptionScheme::kMinHash: name = "MinHash"; break;
        case EncryptionScheme::kMinHashScrambled: name = "Scrambled"; break;
      }
      name += std::get<1>(info.param) == ChunkerKind::kCdc ? "_Cdc" : "_Fixed";
      name += "_t" + std::to_string(std::get<2>(info.param));
      const uint64_t cache = std::get<3>(info.param);
      name += cache == kUnboundedBlockCacheBytes
                  ? "_cacheUnbounded"
                  : "_cache" + std::to_string(cache);
      return name;
    });

// --- Verification-behavior equivalence: tampered inputs must fail both
// paths with the same exception type and message. ---

class RestoreVerificationBehavior : public ::testing::Test {
 protected:
  RestoreVerificationBehavior()
      : store_(/*containerBytes=*/kContainerBytes),
        km_(toBytes("behavior-secret")),
        chunker_(smallCdc()),
        content_(testContent()) {
    DedupClient client(store_, km_, chunker_,
                       backupOptionsFor(EncryptionScheme::kMle));
    BackupSession session = client.beginBackup("obj");
    session.append(content_);
    outcome_ = session.finish();
  }

  /// Error message the legacy path produces for the given recipes ("" when
  /// it succeeds).
  std::string legacyError(const FileRecipe& file, const KeyRecipe& keys) {
    try {
      legacy::chunkAtATimeRestore(store_, file, keys, [](ByteView) {});
      return "";
    } catch (const std::exception& e) {
      return e.what();
    }
  }

  /// Same, through the batched engine at the given thread count.
  std::string batchedError(const FileRecipe& file, const KeyRecipe& keys,
                           uint32_t threads) {
    DedupClient client(store_, restoreOptionsFor(threads));
    try {
      client.beginRestore(file, keys).streamTo([](ByteView) {});
      return "";
    } catch (const std::exception& e) {
      return e.what();
    }
  }

  void expectSameBehavior(const FileRecipe& file, const KeyRecipe& keys) {
    const std::string expected = legacyError(file, keys);
    EXPECT_FALSE(expected.empty()) << "tampering must fail the legacy path";
    EXPECT_EQ(batchedError(file, keys, 1), expected);
    EXPECT_EQ(batchedError(file, keys, 4), expected);
  }

  MemBackupStore store_;
  KeyManager km_;
  CdcChunker chunker_;
  ByteVec content_;
  BackupOutcome outcome_;
};

TEST_F(RestoreVerificationBehavior, UnknownCipherFpFailsIdentically) {
  FileRecipe file = outcome_.fileRecipe;
  file.entries[file.entries.size() / 2].cipherFp ^= 0xDEAD;
  expectSameBehavior(file, outcome_.keyRecipe);
}

TEST_F(RestoreVerificationBehavior, WrongPlainFpFailsIdentically) {
  FileRecipe file = outcome_.fileRecipe;
  file.entries[file.entries.size() / 2].plainFp ^= 0xBEEF;
  expectSameBehavior(file, outcome_.keyRecipe);
}

TEST_F(RestoreVerificationBehavior, WrongKeyFailsIdentically) {
  KeyRecipe keys = outcome_.keyRecipe;
  keys.keys[keys.keys.size() / 2][0] ^= 0x01;
  expectSameBehavior(outcome_.fileRecipe, keys);
}

TEST_F(RestoreVerificationBehavior, WrongFileSizeFailsIdentically) {
  FileRecipe file = outcome_.fileRecipe;
  file.fileSize += 1;
  expectSameBehavior(file, outcome_.keyRecipe);
}

TEST_F(RestoreVerificationBehavior, UntamperedInputSucceedsOnBothPaths) {
  EXPECT_EQ(legacyError(outcome_.fileRecipe, outcome_.keyRecipe), "");
  EXPECT_EQ(batchedError(outcome_.fileRecipe, outcome_.keyRecipe, 1), "");
  EXPECT_EQ(batchedError(outcome_.fileRecipe, outcome_.keyRecipe, 8), "");
}

// --- streamRange: every slice must be byte-identical to the same slice of
// the full object, at arbitrary offsets and in arbitrary call order. ---

using RestoreRangeSlices = RestoreVerificationBehavior;

TEST_F(RestoreRangeSlices, StreamRangeMatchesContentSlices) {
  DedupClient client(store_, restoreOptionsFor(2));
  RestoreSession session =
      client.beginRestore(outcome_.fileRecipe, outcome_.keyRecipe);
  const uint64_t size = content_.size();
  ASSERT_EQ(session.size(), size);

  const auto expectRange = [&](uint64_t offset, uint64_t length) {
    ByteVec got;
    const uint64_t n = session.streamRange(
        offset, length, [&](ByteView b) { appendBytes(got, b); });
    const uint64_t want =
        offset >= size ? 0 : std::min<uint64_t>(length, size - offset);
    EXPECT_EQ(n, want) << "offset=" << offset << " length=" << length;
    ASSERT_EQ(got.size(), want) << "offset=" << offset;
    if (want > 0)
      EXPECT_EQ(got,
                ByteVec(content_.begin() + static_cast<ptrdiff_t>(offset),
                        content_.begin() + static_cast<ptrdiff_t>(offset +
                                                                  want)))
          << "offset=" << offset << " length=" << length;
  };

  // Degenerate and clamped edges.
  expectRange(0, 0);
  expectRange(0, 1);
  expectRange(size - 1, 1);
  expectRange(size - 7, 1000);  // clamped at the end
  expectRange(size, 10);        // at EOF: empty
  expectRange(size + 5, 1);     // past EOF: empty
  expectRange(0, size);         // the whole object as one range
  expectRange(12345, 70000);    // unaligned mid-object slice

  // Chunk-boundary offsets (exactly at, and straddling, entry edges).
  uint64_t at = 0;
  size_t probed = 0;
  for (const RecipeEntry& e : outcome_.fileRecipe.entries) {
    at += e.size;
    if (at >= size || ++probed > 8) break;
    expectRange(at, 1);
    expectRange(at - 1, 2);
    expectRange(at, e.size);
  }

  // Random slices, deliberately out of order; the session is reusable.
  Rng rng(77);
  for (int i = 0; i < 16; ++i) {
    const uint64_t offset = rng.next() % (size + 100);
    const uint64_t length = 1 + rng.next() % (size / 3);
    expectRange(offset, length);
  }
  // A full pass still works after arbitrary range calls.
  expectRange(0, size);
}

// Regression for the mid-recipe window-anchoring bug class (PR 9 fixed it
// in streamRange; this pins the shared path): a restore whose first served
// entry is NOT entry 0 must anchor its locality windows at that entry, so
// every suffix restore — including one long enough to span many batches —
// is byte-identical to the corresponding slice of the object.
TEST_F(RestoreRangeSlices, RestoreBeginningAtNonZeroEntryIsExact) {
  DedupClient client(store_, restoreOptionsFor(4));
  RestoreSession session =
      client.beginRestore(outcome_.fileRecipe, outcome_.keyRecipe);
  const uint64_t size = content_.size();
  ASSERT_EQ(session.size(), size);
  ASSERT_GT(outcome_.fileRecipe.entries.size(), 16u);

  // Suffix restores starting exactly at a selection of entry boundaries
  // (first, early, middle, deep, last): offset != 0 while the batch planner
  // starts from a mid-recipe entry index.
  std::vector<size_t> starts = {1, 2, outcome_.fileRecipe.entries.size() / 2,
                                outcome_.fileRecipe.entries.size() - 2,
                                outcome_.fileRecipe.entries.size() - 1};
  std::vector<uint64_t> entryOffsets;
  {
    uint64_t at = 0;
    for (const RecipeEntry& e : outcome_.fileRecipe.entries) {
      entryOffsets.push_back(at);
      at += e.size;
    }
  }
  for (const size_t start : starts) {
    const uint64_t offset = entryOffsets[start];
    ByteVec got;
    const uint64_t n = session.streamRange(
        offset, size - offset, [&](ByteView b) { appendBytes(got, b); });
    ASSERT_EQ(n, size - offset) << "start entry " << start;
    EXPECT_EQ(got,
              ByteVec(content_.begin() + static_cast<ptrdiff_t>(offset),
                      content_.end()))
        << "suffix restore from entry " << start << " diverged";
  }
}

}  // namespace
}  // namespace freqdedup
