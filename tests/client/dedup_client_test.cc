// DedupClient session lifecycle: large objects in bounded memory, concurrent
// sessions sharing one store, commit/restore/delete through the client,
// restore-only clients, and construction-time validation.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>

#include "chunking/cdc_chunker.h"
#include "client/dedup_client.h"
#include "common/hash.h"
#include "common/rng.h"
#include "legacy_backup_reference.h"
#include "storage/container_backup_store.h"

namespace freqdedup {
namespace {

ByteVec randomContent(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

CdcParams smallCdc() {
  CdcParams p;
  p.minSize = 256;
  p.avgSize = 1024;
  p.maxSize = 4096;
  return p;
}

BackupOptions smallSegmentOptions(EncryptionScheme scheme,
                                  uint32_t parallelism = 1) {
  BackupOptions o;
  o.scheme = scheme;
  o.parallelism = parallelism;
  o.segmentParams.minBytes = 8 * 1024;
  o.segmentParams.avgBytes = 16 * 1024;
  o.segmentParams.maxBytes = 32 * 1024;
  o.segmentParams.avgChunkBytes = 1024;
  return o;
}

// The acceptance-criteria test: a >= 64 MiB object flows through a backup
// session in 1 MiB appends and back out through a restore session's sink —
// the full object never exists in client memory on either path (the test
// itself only ever holds one 1 MiB generation block; the session buffers at
// most one segment plus the encrypt window).
TEST(DedupClientLarge, SixtyFourMiBObjectStreamsThroughSessions) {
  constexpr size_t kBlock = 1 << 20;
  constexpr size_t kBlocks = 64;

  MemBackupStore store;
  KeyManager km(toBytes("large-secret"));
  CdcChunker chunker;  // default 8 KiB average chunks
  BackupOptions options;
  options.scheme = EncryptionScheme::kMinHashScrambled;  // hardest path
  options.parallelism = 2;
  DedupClient client(store, km, chunker, options);

  // Deterministic per-block generator, so backup and verify can regenerate
  // the stream independently without materializing it.
  const auto makeBlock = [](size_t index) {
    Rng rng(1000 + index);
    ByteVec block(kBlock);
    for (auto& b : block) b = static_cast<uint8_t>(rng.next());
    return block;
  };

  Sha256Stream appended;
  BackupSession session = client.beginBackup("large.img");
  for (size_t i = 0; i < kBlocks; ++i) {
    const ByteVec block = makeBlock(i % 48);  // some cross-block duplication
    appended.update(block);
    session.append(block);
  }
  const Digest wroteDigest = appended.finish();
  const BackupOutcome outcome = session.finish();
  EXPECT_EQ(outcome.fileRecipe.fileSize, kBlock * kBlocks);
  EXPECT_GT(outcome.duplicateChunks, 0u) << "repeated blocks must dedup";

  RestoreSession restore =
      client.beginRestore(outcome.fileRecipe, outcome.keyRecipe);
  Sha256Stream restored;
  uint64_t bytes =
      restore.streamTo([&restored](ByteView b) { restored.update(b); });
  EXPECT_EQ(bytes, kBlock * kBlocks);
  EXPECT_EQ(restored.finish(), wroteDigest);
}

// >= 2 concurrent sessions sharing one store: every session's recipes must
// equal the legacy one-shot recipes for its object (per-session determinism
// is unaffected by concurrency), and every object must restore bit-exactly
// from the shared store.
TEST(DedupClient, ConcurrentSessionsShareOneStore) {
  constexpr size_t kSessions = 4;
  constexpr size_t kObjectBytes = 192 * 1024;

  KeyManager km(toBytes("concurrent-secret"));
  CdcChunker chunker(smallCdc());
  const BackupOptions options =
      smallSegmentOptions(EncryptionScheme::kMinHashScrambled,
                          /*parallelism=*/2);

  // Oracle recipes from the frozen one-shot path, one isolated store each.
  std::vector<ByteVec> contents;
  std::vector<BackupOutcome> expected;
  for (size_t i = 0; i < kSessions; ++i) {
    contents.push_back(randomContent(500 + i, kObjectBytes));
    MemBackupStore oracle;
    expected.push_back(legacy::oneShotBackup(
        oracle, km, chunker, options, "obj" + std::to_string(i),
        contents.back()));
  }

  MemBackupStore store;
  DedupClient client(store, km, chunker, options);
  std::vector<BackupOutcome> outcomes(kSessions);
  std::barrier sync(kSessions);  // force the sessions to overlap
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      BackupSession session = client.beginBackup("obj" + std::to_string(i));
      sync.arrive_and_wait();
      constexpr size_t kStep = 8 * 1024;
      const ByteVec& content = contents[i];
      for (size_t off = 0; off < content.size(); off += kStep)
        session.append(ByteView(content.data() + off,
                                std::min(kStep, content.size() - off)));
      outcomes[i] = session.finish();
    });
  }
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < kSessions; ++i) {
    EXPECT_EQ(outcomes[i].fileRecipe, expected[i].fileRecipe) << i;
    EXPECT_EQ(outcomes[i].keyRecipe, expected[i].keyRecipe) << i;
    EXPECT_EQ(client.beginRestore(outcomes[i].fileRecipe,
                                  outcomes[i].keyRecipe)
                  .readAll(),
              contents[i])
        << i;
  }
  EXPECT_TRUE(store.verify().ok());
}

TEST(DedupClient, CommitRestoreDeleteLifecycle) {
  MemBackupStore store;
  KeyManager km(toBytes("lifecycle-secret"));
  CdcChunker chunker(smallCdc());
  DedupClient client(store, km, chunker,
                     smallSegmentOptions(EncryptionScheme::kMinHash));

  const AesKey userKey = userKeyFromPassphrase("hunter2");
  Rng rng(3);
  const ByteVec content = randomContent(9, 120 * 1024);

  BackupSession session = client.beginBackup("doc");
  session.append(content);
  const BackupOutcome outcome = session.finish();
  client.commitBackup("doc", outcome, userKey, rng);
  EXPECT_EQ(client.listBackups(), std::vector<std::string>{"doc"});

  // A restore-only client (no chunker / key manager) can read it back.
  DedupClient reader(store);
  RestoreSession restore = reader.beginRestore("doc", userKey);
  EXPECT_EQ(restore.objectName(), "doc");
  EXPECT_EQ(restore.size(), content.size());
  EXPECT_EQ(restore.readAll(), content);

  EXPECT_TRUE(client.deleteBackup("doc"));
  EXPECT_FALSE(client.deleteBackup("doc"));
  EXPECT_THROW((void)reader.beginRestore("doc", userKey), std::runtime_error);
}

TEST(DedupClient, EmptyObjectRoundTrips) {
  MemBackupStore store;
  KeyManager km(toBytes("empty-secret"));
  CdcChunker chunker(smallCdc());
  DedupClient client(store, km, chunker, {});

  BackupSession session = client.beginBackup("empty");
  const BackupOutcome outcome = session.finish();
  EXPECT_EQ(outcome.chunkCount, 0u);
  EXPECT_EQ(outcome.fileRecipe.fileSize, 0u);
  EXPECT_TRUE(client.beginRestore(outcome.fileRecipe, outcome.keyRecipe)
                  .readAll()
                  .empty());
}

TEST(DedupClient, ValidatesOptionsAtConstruction) {
  MemBackupStore store;
  KeyManager km(toBytes("validate-secret"));
  CdcChunker chunker(smallCdc());

  BackupOptions zeroParallelism;
  zeroParallelism.parallelism = 0;
  EXPECT_THROW(DedupClient(store, km, chunker, zeroParallelism),
               std::invalid_argument);

  BackupOptions badSegments;
  badSegments.segmentParams.minBytes = 0;
  EXPECT_THROW(DedupClient(store, km, chunker, badSegments),
               std::invalid_argument);

  BackupOptions inverted;
  inverted.segmentParams.minBytes = inverted.segmentParams.maxBytes * 2;
  EXPECT_THROW(DedupClient(store, km, chunker, inverted),
               std::invalid_argument);
}

TEST(DedupClient, SessionMisuseIsRejected) {
  MemBackupStore store;
  KeyManager km(toBytes("misuse-secret"));
  CdcChunker chunker(smallCdc());
  DedupClient client(store, km, chunker, {});

  BackupSession session = client.beginBackup("x");
  session.append(toBytes("hello"));
  (void)session.finish();
  EXPECT_THROW(session.append(toBytes("more")), std::logic_error);
  EXPECT_THROW((void)session.finish(), std::logic_error);

  // Backup on a restore-only client is a contract violation.
  DedupClient reader(store);
  EXPECT_THROW((void)reader.beginBackup("y"), std::logic_error);

  // Mismatched recipes are rejected up front.
  FileRecipe file;
  file.entries.push_back({1, 1, 0});
  KeyRecipe keys;  // empty: disagrees with the file recipe
  EXPECT_THROW((void)client.beginRestore(std::move(file), std::move(keys)),
               std::invalid_argument);
}

}  // namespace
}  // namespace freqdedup
