// Frozen copy of the pre-PR4 one-shot backup path (BackupManager::backup as
// of commit b0fd2f3), kept verbatim as the equivalence oracle for the
// session-based streaming client: recipes and store contents produced by
// BackupSession must be bit-identical to this implementation for every
// scheme, chunker, append granularity and parallelism level. Do not "fix" or
// modernize this file — it is a reference, same discipline as
// tests/analysis/legacy_reference.h.
#pragma once

#include <algorithm>
#include <vector>

#include "chunking/chunker.h"
#include "chunking/segmenter.h"
#include "client/backup_session.h"  // EncryptionScheme/BackupOptions/Outcome
#include "common/rng.h"
#include "crypto/key_manager.h"
#include "crypto/mle.h"
#include "pipeline/thread_pool.h"
#include "storage/backup_store.h"

namespace freqdedup::legacy {

namespace detail {

struct EncryptedChunk {
  AesKey key;
  ByteVec cipher;
  Fp cipherFp = 0;
  Fp plainFp = 0;
};

constexpr size_t kEncryptWindowChunks = 1024;

inline BackupOutcome backupMle(BackupStore& store, const KeyManager& km,
                               ThreadPool* pool, const std::string& name,
                               ByteView content,
                               const std::vector<ChunkSpan>& spans) {
  BackupOutcome outcome;
  outcome.fileRecipe.fileName = name;
  outcome.fileRecipe.fileSize = content.size();
  outcome.chunkCount = spans.size();

  if (!pool) {
    for (const ChunkSpan& span : spans) {
      const ByteView plain = chunkBytes(content, span);
      const Fp plainFp = fpOfContent(plain);
      const AesKey key = km.deriveChunkKey(plainFp);
      const ByteVec cipher = MleScheme::encryptWithKey(key, plain);
      const Fp cipherFp = fpOfContent(cipher);
      if (store.putChunk(cipherFp, cipher)) {
        ++outcome.newChunks;
      } else {
        ++outcome.duplicateChunks;
      }
      outcome.fileRecipe.entries.push_back(
          {cipherFp, static_cast<uint32_t>(cipher.size()), plainFp});
      outcome.keyRecipe.keys.push_back(key);
    }
    return outcome;
  }

  std::vector<EncryptedChunk> window;
  for (size_t base = 0; base < spans.size(); base += kEncryptWindowChunks) {
    const size_t count =
        std::min(kEncryptWindowChunks, spans.size() - base);
    window.assign(count, {});
    parallelFor(*pool, count, [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        const ByteView plain = chunkBytes(content, spans[base + k]);
        const Fp plainFp = fpOfContent(plain);
        const AesKey key = km.deriveChunkKey(plainFp);
        ByteVec cipher = MleScheme::encryptWithKey(key, plain);
        const Fp cipherFp = fpOfContent(cipher);
        window[k] = {key, std::move(cipher), cipherFp, plainFp};
      }
    });
    for (const EncryptedChunk& e : window) {
      if (store.putChunk(e.cipherFp, e.cipher)) {
        ++outcome.newChunks;
      } else {
        ++outcome.duplicateChunks;
      }
      outcome.fileRecipe.entries.push_back(
          {e.cipherFp, static_cast<uint32_t>(e.cipher.size()), e.plainFp});
      outcome.keyRecipe.keys.push_back(e.key);
    }
  }
  return outcome;
}

inline BackupOutcome backupMinHash(BackupStore& store, const KeyManager& km,
                                   ThreadPool* pool,
                                   const BackupOptions& options,
                                   const std::string& name, ByteView content,
                                   const std::vector<ChunkSpan>& spans,
                                   bool scramble) {
  std::vector<ByteVec> plainChunks;
  plainChunks.reserve(spans.size());
  for (const ChunkSpan& span : spans) {
    const ByteView bytes = chunkBytes(content, span);
    plainChunks.emplace_back(bytes.begin(), bytes.end());
  }

  std::vector<ChunkRecord> records;
  records.reserve(plainChunks.size());
  for (const auto& chunk : plainChunks)
    records.push_back(
        {fpOfContent(chunk), static_cast<uint32_t>(chunk.size())});
  const std::vector<Segment> segments =
      segmentRecords(records, options.segmentParams);

  std::vector<size_t> order;
  if (scramble) {
    Rng rng(options.scrambleSeed);
    order = scrambleOrder(records.size(), segments, rng);
  } else {
    order.resize(records.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  }

  std::vector<AesKey> keyOf(plainChunks.size());
  for (const Segment& seg : segments) {
    const Fp minFp = segmentMinFingerprint(records, seg);
    const AesKey segKey = km.deriveSegmentKey(minFp);
    for (size_t i = seg.begin; i < seg.end; ++i) keyOf[i] = segKey;
  }

  BackupOutcome outcome;
  outcome.fileRecipe.fileName = name;
  outcome.fileRecipe.fileSize = content.size();
  outcome.fileRecipe.entries.resize(plainChunks.size());
  outcome.keyRecipe.keys.resize(plainChunks.size());
  outcome.chunkCount = plainChunks.size();

  if (!pool) {
    for (const size_t i : order) {
      const ByteVec cipher =
          MleScheme::encryptWithKey(keyOf[i], plainChunks[i]);
      const Fp cipherFp = fpOfContent(cipher);
      if (store.putChunk(cipherFp, cipher)) {
        ++outcome.newChunks;
      } else {
        ++outcome.duplicateChunks;
      }
      outcome.fileRecipe.entries[i] = {
          cipherFp, static_cast<uint32_t>(cipher.size()), records[i].fp};
      outcome.keyRecipe.keys[i] = keyOf[i];
    }
    return outcome;
  }

  std::vector<EncryptedChunk> window;
  for (size_t base = 0; base < order.size(); base += kEncryptWindowChunks) {
    const size_t count = std::min(kEncryptWindowChunks, order.size() - base);
    window.assign(count, {});
    parallelFor(*pool, count, [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        const size_t i = order[base + k];
        ByteVec cipher = MleScheme::encryptWithKey(keyOf[i], plainChunks[i]);
        const Fp cipherFp = fpOfContent(cipher);
        window[k] = {keyOf[i], std::move(cipher), cipherFp};
      }
    });
    for (size_t k = 0; k < count; ++k) {
      const size_t i = order[base + k];
      const EncryptedChunk& e = window[k];
      if (store.putChunk(e.cipherFp, e.cipher)) {
        ++outcome.newChunks;
      } else {
        ++outcome.duplicateChunks;
      }
      outcome.fileRecipe.entries[i] = {
          e.cipherFp, static_cast<uint32_t>(e.cipher.size()), records[i].fp};
      outcome.keyRecipe.keys[i] = e.key;
    }
  }
  return outcome;
}

}  // namespace detail

/// The pre-PR4 one-shot whole-buffer backup path. Uses a fresh throwaway
/// pool when options.parallelism > 1 (the legacy manager owned one).
inline BackupOutcome oneShotBackup(BackupStore& store, const KeyManager& km,
                                   const Chunker& chunker,
                                   const BackupOptions& options,
                                   const std::string& name, ByteView content) {
  std::unique_ptr<ThreadPool> pool;
  if (options.parallelism > 1)
    pool = std::make_unique<ThreadPool>(options.parallelism);
  const std::vector<ChunkSpan> spans = chunker.split(content);
  switch (options.scheme) {
    case EncryptionScheme::kMle:
      return detail::backupMle(store, km, pool.get(), name, content, spans);
    case EncryptionScheme::kMinHash:
      return detail::backupMinHash(store, km, pool.get(), options, name,
                                   content, spans, /*scramble=*/false);
    case EncryptionScheme::kMinHashScrambled:
      return detail::backupMinHash(store, km, pool.get(), options, name,
                                   content, spans, /*scramble=*/true);
  }
  return {};
}

}  // namespace freqdedup::legacy
