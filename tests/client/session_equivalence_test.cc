// Streaming-vs-one-shot equivalence matrix: append granularities
// {1 B, 1 KiB, whole} x schemes {MLE, MinHash, MinHashScrambled} x chunkers
// {CDC, fixed} x parallelism {1, 4} — the session path must reproduce the
// frozen pre-PR4 one-shot path bit-identically: same file recipe, same key
// recipe, same dedup counters, and byte-identical container files on disk
// (chunk contents AND store order, which is what the paper's adversary
// observes).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <tuple>

#include "chunking/cdc_chunker.h"
#include "chunking/fixed_chunker.h"
#include "client/dedup_client.h"
#include "common/rng.h"
#include "legacy_backup_reference.h"
#include "storage/backup_store.h"

namespace freqdedup {
namespace {

enum class ChunkerKind { kCdc, kFixed };

// (append granularity in bytes; 0 = whole buffer, scheme, chunker, threads)
using MatrixParam =
    std::tuple<size_t, EncryptionScheme, ChunkerKind, uint32_t>;

ByteVec testContent() {
  // 64 KiB random + a repeat of the first 32 KiB, so the object itself
  // contains duplicate chunks and the new/duplicate counters are exercised.
  Rng rng(77);
  ByteVec data(64 * 1024);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  data.insert(data.end(), data.begin(), data.begin() + 32 * 1024);
  return data;
}

CdcParams smallCdc() {
  CdcParams p;
  p.minSize = 256;
  p.avgSize = 1024;
  p.maxSize = 4096;
  return p;
}

BackupOptions optionsFor(EncryptionScheme scheme, uint32_t parallelism) {
  BackupOptions o;
  o.scheme = scheme;
  o.parallelism = parallelism;
  o.segmentParams.minBytes = 8 * 1024;
  o.segmentParams.avgBytes = 16 * 1024;
  o.segmentParams.maxBytes = 32 * 1024;
  o.segmentParams.avgChunkBytes = 1024;
  o.scrambleSeed = 99;
  return o;
}

/// Sorted (name, bytes) of every container file in a store directory.
std::map<std::string, ByteVec> containerFiles(const std::string& dir) {
  std::map<std::string, ByteVec> files;
  const auto containers = std::filesystem::path(dir) / "containers";
  if (!std::filesystem::exists(containers)) return files;
  for (const auto& entry : std::filesystem::directory_iterator(containers))
    files[entry.path().filename().string()] =
        readFile(entry.path().string());
  return files;
}

class SessionEquivalence : public ::testing::TestWithParam<MatrixParam> {
 protected:
  void SetUp() override {
    const auto& info = *::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = "session_equiv_" + std::string(info.name());
    for (char& c : name)
      if (c == '/') c = '_';
    base_ = (std::filesystem::temp_directory_path() / name).string();
    std::filesystem::remove_all(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  [[nodiscard]] size_t granularity() const { return std::get<0>(GetParam()); }
  [[nodiscard]] EncryptionScheme scheme() const {
    return std::get<1>(GetParam());
  }
  [[nodiscard]] uint32_t parallelism() const { return std::get<3>(GetParam()); }

  [[nodiscard]] std::unique_ptr<Chunker> makeChunker() const {
    if (std::get<2>(GetParam()) == ChunkerKind::kCdc)
      return std::make_unique<CdcChunker>(smallCdc());
    return std::make_unique<FixedChunker>(1024);
  }

  std::string base_;
};

TEST_P(SessionEquivalence, StreamingMatchesOneShotBitIdentically) {
  const ByteVec content = testContent();
  const BackupOptions options = optionsFor(scheme(), parallelism());
  const std::unique_ptr<Chunker> chunker = makeChunker();
  KeyManager km(toBytes("equivalence-secret"));

  // Oracle: the frozen pre-PR4 one-shot path into its own store.
  const std::string legacyDir = base_ + "/legacy";
  const std::string sessionDir = base_ + "/session";
  BackupOutcome legacyOutcome;
  {
    const auto store =
        makeBackupStore(StoreBackend::kFile, legacyDir,
                        {.containerBytes = 64 * 1024});
    legacyOutcome = legacy::oneShotBackup(*store, km, *chunker, options,
                                          "obj", content);
    store->flush();
  }

  // Under test: a streaming session fed `granularity()`-byte appends.
  BackupOutcome sessionOutcome;
  {
    const auto store =
        makeBackupStore(StoreBackend::kFile, sessionDir,
                        {.containerBytes = 64 * 1024});
    DedupClient client(*store, km, *chunker, options);
    BackupSession session = client.beginBackup("obj");
    const size_t step = granularity() == 0 ? content.size() : granularity();
    for (size_t off = 0; off < content.size(); off += step) {
      const size_t n = std::min(step, content.size() - off);
      session.append(ByteView(content.data() + off, n));
    }
    EXPECT_EQ(session.bytesAppended(), content.size());
    sessionOutcome = session.finish();
    store->flush();
  }

  // Recipes, keys and dedup accounting must match exactly.
  EXPECT_EQ(sessionOutcome.fileRecipe, legacyOutcome.fileRecipe);
  EXPECT_EQ(sessionOutcome.keyRecipe, legacyOutcome.keyRecipe);
  EXPECT_EQ(sessionOutcome.chunkCount, legacyOutcome.chunkCount);
  EXPECT_EQ(sessionOutcome.newChunks, legacyOutcome.newChunks);
  EXPECT_EQ(sessionOutcome.duplicateChunks, legacyOutcome.duplicateChunks);

  // The stores must hold byte-identical container files: same chunks packed
  // in the same upload order.
  const auto legacyFiles = containerFiles(legacyDir);
  const auto sessionFiles = containerFiles(sessionDir);
  ASSERT_FALSE(legacyFiles.empty());
  EXPECT_EQ(sessionFiles.size(), legacyFiles.size());
  for (const auto& [name, bytes] : legacyFiles) {
    const auto it = sessionFiles.find(name);
    ASSERT_NE(it, sessionFiles.end()) << "missing container " << name;
    EXPECT_EQ(it->second, bytes) << "container " << name << " differs";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SessionEquivalence,
    ::testing::Combine(
        ::testing::Values(size_t{1}, size_t{1024}, size_t{0}),
        ::testing::Values(EncryptionScheme::kMle, EncryptionScheme::kMinHash,
                          EncryptionScheme::kMinHashScrambled),
        ::testing::Values(ChunkerKind::kCdc, ChunkerKind::kFixed),
        ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      const size_t gran = std::get<0>(info.param);
      std::string name = gran == 0 ? "whole" : std::to_string(gran) + "B";
      switch (std::get<1>(info.param)) {
        case EncryptionScheme::kMle: name += "_Mle"; break;
        case EncryptionScheme::kMinHash: name += "_MinHash"; break;
        case EncryptionScheme::kMinHashScrambled: name += "_Scrambled"; break;
      }
      name += std::get<2>(info.param) == ChunkerKind::kCdc ? "_Cdc" : "_Fixed";
      name += "_p" + std::to_string(std::get<3>(info.param));
      return name;
    });

}  // namespace
}  // namespace freqdedup
