#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace freqdedup {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t v = rng.uniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniformInt(42, 42), 42u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniformInt(2, 1), std::logic_error);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(5);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.uniformInt(0, 7)];
  for (int c : counts) EXPECT_GT(c, 800);  // each bucket near 1000
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniformReal();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(1);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sumSq = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, GeometricMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / n, 3.0, 0.15);  // (1-p)/p = 3
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(17);
  EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, LognormalPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

class RngShuffleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngShuffleProperty, ShuffleIsPermutation) {
  Rng rng(GetParam());
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(std::span<int>(shuffled));
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngShuffleProperty,
                         ::testing::Values(1, 2, 3, 42, 99, 12345));

TEST(Zipf, PmfSumsToOne) {
  ZipfTable zipf(100, 1.1);
  double sum = 0;
  for (size_t i = 0; i < zipf.size(); ++i) sum += zipf.pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfIsDecreasing) {
  ZipfTable zipf(50, 1.3);
  for (size_t i = 1; i < zipf.size(); ++i)
    EXPECT_LT(zipf.pmf(i), zipf.pmf(i - 1));
}

TEST(Zipf, SamplingMatchesPmf) {
  ZipfTable zipf(10, 1.0);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(counts[i] / static_cast<double>(n), zipf.pmf(i), 0.01);
}

TEST(Zipf, SingleElement) {
  ZipfTable zipf(1, 1.5);
  Rng rng(1);
  EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_NEAR(zipf.pmf(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace freqdedup
