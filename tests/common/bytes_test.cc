#include "common/bytes.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace freqdedup {
namespace {

TEST(Bytes, HexEncodeBasic) {
  EXPECT_EQ(hexEncode(toBytes("")), "");
  EXPECT_EQ(hexEncode(ByteVec{0x00}), "00");
  EXPECT_EQ(hexEncode(ByteVec{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
}

TEST(Bytes, HexDecodeBasic) {
  EXPECT_EQ(hexDecode(""), ByteVec{});
  EXPECT_EQ(hexDecode("deadbeef"), (ByteVec{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(hexDecode("DEADBEEF"), (ByteVec{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Bytes, HexDecodeRejectsOddLength) {
  EXPECT_THROW(hexDecode("abc"), std::invalid_argument);
}

TEST(Bytes, HexDecodeRejectsNonHex) {
  EXPECT_THROW(hexDecode("zz"), std::invalid_argument);
  EXPECT_THROW(hexDecode("0g"), std::invalid_argument);
}

TEST(Bytes, HexRoundtripAllByteValues) {
  ByteVec all(256);
  for (int i = 0; i < 256; ++i) all[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(hexDecode(hexEncode(all)), all);
}

TEST(Bytes, StringConversionRoundtrip) {
  const std::string s = "hello \x01\x02 world";
  EXPECT_EQ(toString(toBytes(s)), s);
}

TEST(Bytes, PutGetU32) {
  ByteVec buf;
  putU32(buf, 0x12345678u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(getU32(buf, 0), 0x12345678u);
}

TEST(Bytes, PutGetU64) {
  ByteVec buf;
  putU64(buf, 0x123456789abcdef0ULL);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(getU64(buf, 0), 0x123456789abcdef0ULL);
}

TEST(Bytes, GetU32OutOfRangeThrows) {
  ByteVec buf(3);
  EXPECT_THROW(getU32(buf, 0), std::logic_error);
}

TEST(Bytes, GetU64AtOffset) {
  ByteVec buf;
  putU32(buf, 7);
  putU64(buf, 42);
  EXPECT_EQ(getU64(buf, 4), 42u);
}

TEST(Bytes, AppendBytes) {
  ByteVec a = toBytes("ab");
  appendBytes(a, toBytes("cd"));
  EXPECT_EQ(toString(a), "abcd");
}

TEST(Bytes, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdd_bytes_test.bin").string();
  const ByteVec data = toBytes("file content \x00\x01\xff test");
  writeFile(path, data);
  EXPECT_EQ(readFile(path), data);
  std::filesystem::remove(path);
}

TEST(Bytes, ReadMissingFileThrows) {
  EXPECT_THROW(readFile("/nonexistent/definitely/missing"),
               std::runtime_error);
}

TEST(Bytes, WriteEmptyFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fdd_bytes_empty.bin")
          .string();
  writeFile(path, {});
  EXPECT_TRUE(readFile(path).empty());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace freqdedup
