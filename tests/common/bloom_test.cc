#include "common/bloom_filter.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freqdedup {
namespace {

TEST(Bloom, NoFalseNegativesSmall) {
  BloomFilter bloom(1000, 0.01);
  for (Fp fp = 0; fp < 1000; ++fp) bloom.add(fp);
  for (Fp fp = 0; fp < 1000; ++fp) EXPECT_TRUE(bloom.maybeContains(fp));
}

class BloomProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BloomProperty, NoFalseNegativesRandom) {
  Rng rng(GetParam());
  BloomFilter bloom(5000, 0.01);
  std::vector<Fp> inserted;
  for (int i = 0; i < 5000; ++i) inserted.push_back(rng.next());
  for (const Fp fp : inserted) bloom.add(fp);
  for (const Fp fp : inserted) EXPECT_TRUE(bloom.maybeContains(fp));
}

TEST_P(BloomProperty, FalsePositiveRateNearTarget) {
  Rng rng(GetParam());
  BloomFilter bloom(10'000, 0.01);
  for (int i = 0; i < 10'000; ++i) bloom.add(rng.next());
  int falsePositives = 0;
  const int probes = 100'000;
  for (int i = 0; i < probes; ++i)
    falsePositives += bloom.maybeContains(rng.next());
  // Random probes are almost surely not members; observed rate should be
  // within a small factor of the design target.
  EXPECT_LT(falsePositives / static_cast<double>(probes), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BloomProperty, ::testing::Values(1, 7, 42));

TEST(Bloom, PaperConfigurationUsesSevenHashes) {
  // fpr 0.01 implies k = round(ln2 * m/n) ~= 7 (Section 7.4.2).
  BloomFilter bloom(65'000'000, 0.01);
  EXPECT_EQ(bloom.numHashes(), 7);
}

TEST(Bloom, SizeScalesWithExpectedItems) {
  BloomFilter small(1000, 0.01);
  BloomFilter large(100'000, 0.01);
  EXPECT_GT(large.sizeBytes(), small.sizeBytes() * 50);
}

TEST(Bloom, ClearRemovesEverything) {
  BloomFilter bloom(100, 0.01);
  bloom.add(42);
  ASSERT_TRUE(bloom.maybeContains(42));
  bloom.clear();
  EXPECT_FALSE(bloom.maybeContains(42));
  EXPECT_EQ(bloom.insertedCount(), 0u);
}

TEST(Bloom, EstimatedFprGrowsWithLoad) {
  BloomFilter bloom(100, 0.01);
  const double before = bloom.estimatedFpr();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) bloom.add(rng.next());
  EXPECT_GT(bloom.estimatedFpr(), before);
}

TEST(Bloom, RejectsBadParameters) {
  EXPECT_THROW(BloomFilter(0, 0.01), std::logic_error);
  EXPECT_THROW(BloomFilter(10, 0.0), std::logic_error);
  EXPECT_THROW(BloomFilter(10, 1.0), std::logic_error);
}

}  // namespace
}  // namespace freqdedup
