#include "common/fingerprint.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace freqdedup {
namespace {

TEST(Fingerprint, FullWidthUsesFirstEightBytes) {
  Digest d;
  d.size = 32;
  for (int i = 0; i < 8; ++i) d.bytes[i] = static_cast<uint8_t>(i + 1);
  EXPECT_EQ(fpFromDigest(d, 64), 0x0102030405060708ULL);
}

TEST(Fingerprint, TruncationKeepsHighBits) {
  Digest d;
  d.size = 32;
  for (int i = 0; i < 8; ++i) d.bytes[i] = 0xFF;
  EXPECT_EQ(fpFromDigest(d, kFslFpBits), (1ULL << 48) - 1);
  EXPECT_EQ(fpFromDigest(d, 8), 0xFFULL);
  EXPECT_EQ(fpFromDigest(d, 1), 1ULL);
}

TEST(Fingerprint, RejectsBadWidths) {
  const Digest d = sha256(toBytes("x"));
  EXPECT_THROW(fpFromDigest(d, 0), std::logic_error);
  EXPECT_THROW(fpFromDigest(d, 65), std::logic_error);
}

TEST(Fingerprint, ContentFingerprintDeterministic) {
  EXPECT_EQ(fpOfContent(toBytes("chunk")), fpOfContent(toBytes("chunk")));
  EXPECT_NE(fpOfContent(toBytes("chunk")), fpOfContent(toBytes("chunk2")));
}

TEST(Fingerprint, FslWidthFitsIn48Bits) {
  const Fp fp = fpOfContent(toBytes("data"), kFslFpBits);
  EXPECT_LT(fp, 1ULL << 48);
}

TEST(Fingerprint, HexFormatting) {
  EXPECT_EQ(fpToHex(0), "0000000000000000");
  EXPECT_EQ(fpToHex(0xdeadbeefULL), "00000000deadbeef");
}

TEST(Fingerprint, Mix64IsInjectiveOnSample) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second) << "collision at " << i;
  }
}

TEST(Fingerprint, Mix64Scrambles) {
  // Consecutive inputs should differ in roughly half their bits.
  int totalBits = 0;
  for (uint64_t i = 0; i < 100; ++i)
    totalBits += __builtin_popcountll(mix64(i) ^ mix64(i + 1));
  EXPECT_GT(totalBits, 100 * 20);
  EXPECT_LT(totalBits, 100 * 44);
}

TEST(Fingerprint, ChunkRecordEquality) {
  EXPECT_EQ((ChunkRecord{1, 2}), (ChunkRecord{1, 2}));
  EXPECT_NE((ChunkRecord{1, 2}), (ChunkRecord{1, 3}));
  EXPECT_NE((ChunkRecord{1, 2}), (ChunkRecord{2, 2}));
}

TEST(Fingerprint, FpHashUsable) {
  FpHash hasher;
  EXPECT_NE(hasher(1), hasher(2));
}

}  // namespace
}  // namespace freqdedup
