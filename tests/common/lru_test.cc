#include "common/lru_cache.h"

#include <gtest/gtest.h>

#include "common/fingerprint.h"

namespace freqdedup {
namespace {

TEST(Lru, BasicPutGet) {
  LruCache<int, int> cache(4);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_EQ(cache.get(1), 10);
  EXPECT_EQ(cache.get(2), 20);
  EXPECT_EQ(cache.get(3), std::nullopt);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(3, 30);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Lru, GetPromotes) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_TRUE(cache.get(1).has_value());  // 1 becomes MRU
  cache.put(3, 30);                       // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(Lru, TouchPromotes) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_TRUE(cache.touch(1));
  cache.put(3, 30);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(Lru, ContainsDoesNotPromote) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_TRUE(cache.contains(1));  // non-promoting
  cache.put(3, 30);                // still evicts 1
  EXPECT_FALSE(cache.contains(1));
}

TEST(Lru, PutExistingUpdatesValueWithoutEviction) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_FALSE(cache.put(1, 11));
  EXPECT_EQ(cache.get(1), 11);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Lru, PutReturnsTrueOnEviction) {
  LruCache<int, int> cache(1);
  EXPECT_FALSE(cache.put(1, 10));
  EXPECT_TRUE(cache.put(2, 20));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(Lru, CapacityOne) {
  LruCache<int, int> cache(1);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.get(2), 20);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Lru, Erase) {
  LruCache<int, int> cache(4);
  cache.put(1, 10);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_FALSE(cache.contains(1));
}

TEST(Lru, Clear) {
  LruCache<int, int> cache(4);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(Lru, ZeroCapacityRejected) {
  EXPECT_THROW((LruCache<int, int>(0)), std::logic_error);
}

TEST(Lru, WorksWithFingerprintKeys) {
  LruCache<Fp, uint32_t, FpHash> cache(3);
  cache.put(0xdeadULL, 1);
  cache.put(0xbeefULL, 2);
  EXPECT_EQ(cache.get(0xdeadULL), 1u);
}

TEST(Lru, HeavyChurnRespectsCapacity) {
  LruCache<int, int> cache(16);
  for (int i = 0; i < 1000; ++i) cache.put(i, i);
  EXPECT_EQ(cache.size(), 16u);
  for (int i = 1000 - 16; i < 1000; ++i) EXPECT_TRUE(cache.contains(i));
}

}  // namespace
}  // namespace freqdedup
