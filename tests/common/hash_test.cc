#include "common/hash.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

// FIPS-180 test vectors.
TEST(Hash, Sha256KnownVectorEmpty) {
  EXPECT_EQ(sha256({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Hash, Sha256KnownVectorAbc) {
  EXPECT_EQ(sha256(toBytes("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Hash, Sha1KnownVectorAbc) {
  EXPECT_EQ(sha1(toBytes("abc")).hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Hash, Sha1DigestSize) { EXPECT_EQ(sha1(toBytes("x")).size, 20); }

TEST(Hash, Sha256DigestSize) { EXPECT_EQ(sha256(toBytes("x")).size, 32); }

// RFC 4231 test case 2.
TEST(Hash, HmacSha256KnownVector) {
  EXPECT_EQ(
      hmacSha256(toBytes("Jefe"), toBytes("what do ya want for nothing?"))
          .hex(),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hash, HmacDependsOnKey) {
  const auto d1 = hmacSha256(toBytes("key1"), toBytes("msg"));
  const auto d2 = hmacSha256(toBytes("key2"), toBytes("msg"));
  EXPECT_FALSE(d1 == d2);
}

TEST(Hash, StreamMatchesOneShot) {
  Sha256Stream stream;
  stream.update(toBytes("hello "));
  stream.update(toBytes("world"));
  EXPECT_EQ(stream.finish().hex(), sha256(toBytes("hello world")).hex());
}

TEST(Hash, StreamResetsAfterFinish) {
  Sha256Stream stream;
  stream.update(toBytes("first"));
  (void)stream.finish();
  stream.update(toBytes("abc"));
  EXPECT_EQ(stream.finish().hex(), sha256(toBytes("abc")).hex());
}

TEST(Hash, StreamEmptyInput) {
  Sha256Stream stream;
  EXPECT_EQ(stream.finish().hex(), sha256({}).hex());
}

TEST(Hash, DigestEquality) {
  EXPECT_TRUE(sha256(toBytes("a")) == sha256(toBytes("a")));
  EXPECT_FALSE(sha256(toBytes("a")) == sha256(toBytes("b")));
  EXPECT_FALSE(sha256(toBytes("a")) == sha1(toBytes("a")));  // size differs
}

}  // namespace
}  // namespace freqdedup
