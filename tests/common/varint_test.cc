#include "common/varint.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

class VarintRoundtrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundtrip, EncodesAndDecodes) {
  const uint64_t v = GetParam();
  ByteVec buf;
  putVarint(buf, v);
  EXPECT_EQ(buf.size(), varintSize(v));
  size_t offset = 0;
  const auto decoded = getVarint(buf, offset);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
  EXPECT_EQ(offset, buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundtrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 255ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, ~0ULL));

TEST(Varint, SingleByteForSmallValues) {
  EXPECT_EQ(varintSize(0), 1u);
  EXPECT_EQ(varintSize(127), 1u);
  EXPECT_EQ(varintSize(128), 2u);
}

TEST(Varint, MaxValueUsesTenBytes) { EXPECT_EQ(varintSize(~0ULL), 10u); }

TEST(Varint, TruncatedInputReturnsNullopt) {
  ByteVec buf;
  putVarint(buf, 1ULL << 40);
  buf.pop_back();
  size_t offset = 0;
  EXPECT_EQ(getVarint(buf, offset), std::nullopt);
}

TEST(Varint, EmptyInputReturnsNullopt) {
  size_t offset = 0;
  EXPECT_EQ(getVarint(ByteVec{}, offset), std::nullopt);
}

TEST(Varint, SequentialDecoding) {
  ByteVec buf;
  putVarint(buf, 7);
  putVarint(buf, 300);
  putVarint(buf, 0);
  size_t offset = 0;
  EXPECT_EQ(*getVarint(buf, offset), 7u);
  EXPECT_EQ(*getVarint(buf, offset), 300u);
  EXPECT_EQ(*getVarint(buf, offset), 0u);
  EXPECT_EQ(offset, buf.size());
}

TEST(Varint, OffsetPreservedOnFailure) {
  ByteVec buf{0x80};  // continuation bit but no next byte
  size_t offset = 0;
  EXPECT_EQ(getVarint(buf, offset), std::nullopt);
  EXPECT_EQ(offset, 0u);
}

}  // namespace
}  // namespace freqdedup
