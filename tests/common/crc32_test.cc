#include "common/crc32.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

TEST(Crc32, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (iSCSI test vector).
  EXPECT_EQ(crc32c(toBytes("123456789")), 0xE3069283u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(crc32c({}), 0u); }

TEST(Crc32, ExtendMatchesWhole) {
  const ByteVec whole = toBytes("hello world, this is a checksum test");
  uint32_t crc = 0;
  crc = crc32cExtend(crc, ByteView(whole.data(), 10));
  crc = crc32cExtend(crc, ByteView(whole.data() + 10, whole.size() - 10));
  EXPECT_EQ(crc, crc32c(whole));
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  ByteVec data = toBytes("payload");
  const uint32_t before = crc32c(data);
  data[3] ^= 0x01;
  EXPECT_NE(crc32c(data), before);
}

TEST(Crc32, SensitiveToReordering) {
  EXPECT_NE(crc32c(toBytes("ab")), crc32c(toBytes("ba")));
}

TEST(Crc32, DifferentLengthsDiffer) {
  const ByteVec withNul{'a', 0x00};
  EXPECT_NE(crc32c(toBytes("a")), crc32c(withNul));
}

}  // namespace
}  // namespace freqdedup
