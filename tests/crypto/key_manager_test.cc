#include "crypto/key_manager.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

TEST(RateLimiter, AllowsBurstThenBlocks) {
  RateLimiter limiter(1.0, 3.0);
  EXPECT_TRUE(limiter.tryAcquire(0));
  EXPECT_TRUE(limiter.tryAcquire(0));
  EXPECT_TRUE(limiter.tryAcquire(0));
  EXPECT_FALSE(limiter.tryAcquire(0));
}

TEST(RateLimiter, RefillsOverTime) {
  RateLimiter limiter(2.0, 1.0);  // 2 tokens/sec, burst 1
  EXPECT_TRUE(limiter.tryAcquire(0));
  EXPECT_FALSE(limiter.tryAcquire(100'000));   // 0.1 s: only 0.2 tokens
  EXPECT_TRUE(limiter.tryAcquire(600'000));    // 0.6 s: 1.2 -> capped 1
  EXPECT_FALSE(limiter.tryAcquire(600'000));
}

TEST(RateLimiter, BurstCapsAccumulation) {
  RateLimiter limiter(1000.0, 2.0);
  (void)limiter.tryAcquire(0);
  // After a long idle period only `burst` tokens are available.
  EXPECT_NEAR(limiter.availableTokens(10'000'000), 2.0, 1e-9);
}

TEST(RateLimiter, RejectsBadConfig) {
  EXPECT_THROW(RateLimiter(0.0, 1.0), std::logic_error);
  EXPECT_THROW(RateLimiter(1.0, 0.5), std::logic_error);
}

TEST(KeyManager, DerivationIsDeterministic) {
  KeyManager km(toBytes("global-secret"));
  EXPECT_EQ(km.deriveChunkKey(42), km.deriveChunkKey(42));
  EXPECT_NE(km.deriveChunkKey(42), km.deriveChunkKey(43));
}

TEST(KeyManager, ChunkAndSegmentDomainsAreSeparated) {
  KeyManager km(toBytes("global-secret"));
  EXPECT_NE(km.deriveChunkKey(42), km.deriveSegmentKey(42));
}

TEST(KeyManager, DifferentSecretsGiveDifferentKeys) {
  KeyManager km1(toBytes("secret-one"));
  KeyManager km2(toBytes("secret-two"));
  EXPECT_NE(km1.deriveChunkKey(42), km2.deriveChunkKey(42));
}

TEST(KeyManager, EmptySecretRejected) {
  EXPECT_THROW(KeyManager(ByteVec{}), std::logic_error);
}

TEST(KeyManager, UnthrottledServesAllRequests) {
  KeyManager km(toBytes("secret"));
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(km.requestChunkKey(static_cast<Fp>(i), 0).has_value());
  EXPECT_EQ(km.stats().served, 100u);
  EXPECT_EQ(km.stats().throttled, 0u);
}

TEST(KeyManager, ThrottledRequestsReturnNullopt) {
  KeyManager km(toBytes("secret"), /*ratePerSec=*/1.0, /*burst=*/2.0);
  EXPECT_TRUE(km.requestChunkKey(1, 0).has_value());
  EXPECT_TRUE(km.requestChunkKey(2, 0).has_value());
  EXPECT_FALSE(km.requestChunkKey(3, 0).has_value());
  EXPECT_EQ(km.stats().served, 2u);
  EXPECT_EQ(km.stats().throttled, 1u);
}

TEST(KeyManager, ThrottleRecoversWithTime) {
  KeyManager km(toBytes("secret"), 1.0, 1.0);
  EXPECT_TRUE(km.requestChunkKey(1, 0).has_value());
  EXPECT_FALSE(km.requestChunkKey(2, 0).has_value());
  EXPECT_TRUE(km.requestChunkKey(2, 1'100'000).has_value());
}

TEST(KeyManager, SegmentRequestsShareLimiter) {
  KeyManager km(toBytes("secret"), 1.0, 1.0);
  EXPECT_TRUE(km.requestSegmentKey(1, 0).has_value());
  EXPECT_FALSE(km.requestChunkKey(2, 0).has_value());
}

TEST(KeyManager, RequestMatchesDirectDerivation) {
  KeyManager km(toBytes("secret"));
  EXPECT_EQ(*km.requestChunkKey(7, 0), km.deriveChunkKey(7));
  EXPECT_EQ(*km.requestSegmentKey(7, 0), km.deriveSegmentKey(7));
}

}  // namespace
}  // namespace freqdedup
