#include "crypto/mle.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

TEST(ConvergentEncryption, IdenticalPlaintextsYieldIdenticalCiphertexts) {
  ConvergentEncryption ce;
  const ByteVec plain = toBytes("duplicate chunk content");
  EXPECT_EQ(ce.encrypt(plain), ce.encrypt(plain));
}

TEST(ConvergentEncryption, DifferentPlaintextsDiffer) {
  ConvergentEncryption ce;
  EXPECT_NE(ce.encrypt(toBytes("chunk A")), ce.encrypt(toBytes("chunk B")));
}

TEST(ConvergentEncryption, KeyIsContentHash) {
  ConvergentEncryption ce;
  const ByteVec plain = toBytes("content");
  const AesKey key = ce.deriveKey(plain);
  const Digest d = sha256(plain);
  EXPECT_TRUE(std::equal(key.begin(), key.end(), d.bytes.begin()));
}

TEST(ConvergentEncryption, DecryptRoundtrip) {
  ConvergentEncryption ce;
  const ByteVec plain = toBytes("some chunk to protect");
  const AesKey key = ce.deriveKey(plain);
  const ByteVec cipher = ce.encrypt(plain);
  EXPECT_EQ(MleScheme::decryptWithKey(key, cipher), plain);
}

TEST(ConvergentEncryption, CiphertextHidesPlaintext) {
  ConvergentEncryption ce;
  const ByteVec plain(1000, 0x41);
  const ByteVec cipher = ce.encrypt(plain);
  // No long run of the plaintext byte should survive.
  int run = 0, maxRun = 0;
  for (const uint8_t b : cipher) {
    run = (b == 0x41) ? run + 1 : 0;
    maxRun = std::max(maxRun, run);
  }
  EXPECT_LT(maxRun, 8);
}

TEST(ServerAidedMle, DeterministicUnderOneKeyManager) {
  KeyManager km(toBytes("secret"));
  ServerAidedMle mle(km);
  const ByteVec plain = toBytes("predictable chunk");
  EXPECT_EQ(mle.encrypt(plain), mle.encrypt(plain));
}

TEST(ServerAidedMle, DependsOnGlobalSecret) {
  KeyManager km1(toBytes("secret-1"));
  KeyManager km2(toBytes("secret-2"));
  const ByteVec plain = toBytes("predictable chunk");
  EXPECT_NE(ServerAidedMle(km1).encrypt(plain),
            ServerAidedMle(km2).encrypt(plain));
}

TEST(ServerAidedMle, DiffersFromConvergentEncryption) {
  // Without the secret, the adversary cannot brute-force predictable chunks:
  // the key is not a public function of the content alone.
  KeyManager km(toBytes("secret"));
  const ByteVec plain = toBytes("predictable chunk");
  EXPECT_NE(ServerAidedMle(km).encrypt(plain),
            ConvergentEncryption().encrypt(plain));
}

TEST(ServerAidedMle, DecryptRoundtrip) {
  KeyManager km(toBytes("secret"));
  ServerAidedMle mle(km);
  const ByteVec plain = toBytes("roundtrip me");
  EXPECT_EQ(MleScheme::decryptWithKey(mle.deriveKey(plain),
                                      mle.encrypt(plain)),
            plain);
}

TEST(Mle, LengthPreserved) {
  // The advanced locality-based attack relies on ciphertext sizes matching
  // plaintext sizes (Section 4.3).
  ConvergentEncryption ce;
  for (const size_t n : {1u, 100u, 4096u, 8191u}) {
    const ByteVec plain(n, 0x5A);
    EXPECT_EQ(ce.encrypt(plain).size(), n);
  }
}

TEST(Mle, EncryptWithExternalKey) {
  AesKey key{};
  key.fill(0x77);
  const ByteVec plain = toBytes("segment-keyed chunk");
  const ByteVec cipher = MleScheme::encryptWithKey(key, plain);
  EXPECT_EQ(MleScheme::decryptWithKey(key, cipher), plain);
}

}  // namespace
}  // namespace freqdedup
