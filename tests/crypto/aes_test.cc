#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freqdedup {
namespace {

AesKey testKey(uint8_t fill = 0x11) {
  AesKey key{};
  key.fill(fill);
  return key;
}

AesIv testIv(uint8_t fill = 0x22) {
  AesIv iv{};
  iv.fill(fill);
  return iv;
}

TEST(Aes, RoundtripRestoresPlaintext) {
  const ByteVec plain = toBytes("the quick brown fox jumps over the lazy dog");
  const ByteVec cipher = aesCtrEncrypt(testKey(), testIv(), plain);
  EXPECT_EQ(aesCtrDecrypt(testKey(), testIv(), cipher), plain);
}

TEST(Aes, CiphertextDiffersFromPlaintext) {
  const ByteVec plain = toBytes("some secret content here");
  EXPECT_NE(aesCtrEncrypt(testKey(), testIv(), plain), plain);
}

TEST(Aes, DeterministicForSameKeyAndIv) {
  const ByteVec plain = toBytes("deduplication needs determinism");
  EXPECT_EQ(aesCtrEncrypt(testKey(), testIv(), plain),
            aesCtrEncrypt(testKey(), testIv(), plain));
}

TEST(Aes, DifferentKeysGiveDifferentCiphertexts) {
  const ByteVec plain = toBytes("same plaintext");
  EXPECT_NE(aesCtrEncrypt(testKey(0x11), testIv(), plain),
            aesCtrEncrypt(testKey(0x12), testIv(), plain));
}

TEST(Aes, DifferentIvsGiveDifferentCiphertexts) {
  const ByteVec plain = toBytes("same plaintext");
  EXPECT_NE(aesCtrEncrypt(testKey(), testIv(0x01), plain),
            aesCtrEncrypt(testKey(), testIv(0x02), plain));
}

TEST(Aes, CtrPreservesLength) {
  Rng rng(1);
  for (const size_t n : {0u, 1u, 15u, 16u, 17u, 1000u, 4096u, 10'000u}) {
    ByteVec plain(n);
    for (auto& b : plain) b = static_cast<uint8_t>(rng.next());
    EXPECT_EQ(aesCtrEncrypt(testKey(), testIv(), plain).size(), n);
  }
}

TEST(Aes, EmptyPlaintext) {
  EXPECT_TRUE(aesCtrEncrypt(testKey(), testIv(), {}).empty());
}

TEST(Aes, WrongKeyDoesNotDecrypt) {
  const ByteVec plain = toBytes("confidential");
  const ByteVec cipher = aesCtrEncrypt(testKey(0x11), testIv(), plain);
  EXPECT_NE(aesCtrDecrypt(testKey(0x12), testIv(), cipher), plain);
}

TEST(Aes, DeterministicIvDerivedFromKey) {
  EXPECT_EQ(deterministicIv(testKey(0x33)), deterministicIv(testKey(0x33)));
  EXPECT_NE(deterministicIv(testKey(0x33)), deterministicIv(testKey(0x34)));
}

}  // namespace
}  // namespace freqdedup
