#include "crypto/minhash_encryption.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freqdedup {
namespace {

std::vector<ByteVec> randomChunks(uint64_t seed, size_t count, size_t size) {
  Rng rng(seed);
  std::vector<ByteVec> chunks(count);
  for (auto& chunk : chunks) {
    chunk.resize(size);
    for (auto& b : chunk) b = static_cast<uint8_t>(rng.next());
  }
  return chunks;
}

SegmentParams tinySegments() {
  SegmentParams p;
  p.minBytes = 4 * 1024;
  p.avgBytes = 8 * 1024;
  p.maxBytes = 16 * 1024;
  p.avgChunkBytes = 1024;
  return p;
}

TEST(MinHashEnc, EncryptsEveryChunk) {
  KeyManager km(toBytes("secret"));
  MinHashEncryptor enc(km, tinySegments());
  const auto chunks = randomChunks(1, 50, 1024);
  const auto result = enc.encrypt(chunks);
  EXPECT_EQ(result.chunks.size(), chunks.size());
  EXPECT_FALSE(result.segments.empty());
}

TEST(MinHashEnc, DecryptRoundtrip) {
  KeyManager km(toBytes("secret"));
  MinHashEncryptor enc(km, tinySegments());
  const auto chunks = randomChunks(2, 40, 1024);
  const auto result = enc.encrypt(chunks);
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(MinHashEncryptor::decrypt(result.chunks[i]), chunks[i]);
  }
}

TEST(MinHashEnc, ChunksInSameSegmentShareKey) {
  KeyManager km(toBytes("secret"));
  MinHashEncryptor enc(km, tinySegments());
  const auto chunks = randomChunks(3, 60, 1024);
  const auto result = enc.encrypt(chunks);
  for (size_t i = 1; i < result.chunks.size(); ++i) {
    if (result.chunks[i].segmentIndex == result.chunks[i - 1].segmentIndex) {
      EXPECT_EQ(result.chunks[i].key, result.chunks[i - 1].key);
    }
  }
}

TEST(MinHashEnc, KeyDerivedFromSegmentMinimum) {
  KeyManager km(toBytes("secret"));
  MinHashEncryptor enc(km, tinySegments());
  const auto chunks = randomChunks(4, 30, 1024);
  const auto result = enc.encrypt(chunks);

  std::vector<ChunkRecord> records;
  for (const auto& chunk : chunks)
    records.push_back({fpOfContent(chunk), static_cast<uint32_t>(chunk.size())});
  for (size_t s = 0; s < result.segments.size(); ++s) {
    const Fp minFp = segmentMinFingerprint(records, result.segments[s]);
    const AesKey expected = km.deriveSegmentKey(minFp);
    for (size_t i = result.segments[s].begin; i < result.segments[s].end; ++i)
      EXPECT_EQ(result.chunks[i].key, expected);
  }
}

TEST(MinHashEnc, IdenticalPlaintextsInSameSegmentDeduplicate) {
  KeyManager km(toBytes("secret"));
  MinHashEncryptor enc(km, tinySegments());
  auto chunks = randomChunks(5, 8, 512);
  chunks[2] = chunks[6];  // duplicate within one (likely) segment
  const auto result = enc.encrypt(chunks);
  if (result.chunks[2].segmentIndex == result.chunks[6].segmentIndex) {
    EXPECT_EQ(result.chunks[2].cipherFp, result.chunks[6].cipherFp);
  }
}

TEST(MinHashEnc, DuplicateAcrossDifferentMinimaDoesNotDeduplicate) {
  // Two single-segment streams with different minima: the shared chunk
  // encrypts differently — the frequency-disturbing effect of Algorithm 4.
  KeyManager km(toBytes("secret"));
  SegmentParams p = tinySegments();
  MinHashEncryptor enc(km, p);
  auto streamA = randomChunks(6, 4, 512);
  auto streamB = randomChunks(7, 4, 512);
  streamB[1] = streamA[1];  // shared plaintext chunk
  const auto resultA = enc.encrypt(streamA);
  const auto resultB = enc.encrypt(streamB);
  // Different chunk sets almost surely have different minima.
  ASSERT_NE(resultA.chunks[0].key, resultB.chunks[0].key);
  EXPECT_NE(resultA.chunks[1].cipherFp, resultB.chunks[1].cipherFp);
  // Yet both decrypt to the same plaintext.
  EXPECT_EQ(MinHashEncryptor::decrypt(resultA.chunks[1]),
            MinHashEncryptor::decrypt(resultB.chunks[1]));
}

TEST(MinHashEnc, PlainFingerprintRecorded) {
  KeyManager km(toBytes("secret"));
  MinHashEncryptor enc(km, tinySegments());
  const auto chunks = randomChunks(8, 10, 512);
  const auto result = enc.encrypt(chunks);
  for (size_t i = 0; i < chunks.size(); ++i)
    EXPECT_EQ(result.chunks[i].plainFp, fpOfContent(chunks[i]));
}

TEST(MinHashEnc, EmptyInput) {
  KeyManager km(toBytes("secret"));
  MinHashEncryptor enc(km, tinySegments());
  const auto result = enc.encrypt({});
  EXPECT_TRUE(result.chunks.empty());
  EXPECT_TRUE(result.segments.empty());
}

}  // namespace
}  // namespace freqdedup
