#include "crypto/rce.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

TEST(Rce, DecryptRoundtrip) {
  ConvergentEncryption mle;
  Rng rng(1);
  RceScheme rce(mle, rng);
  const ByteVec plain = toBytes("random convergent encryption test");
  const RceCiphertext ct = rce.encrypt(plain);
  EXPECT_EQ(rce.decrypt(ct, mle.deriveKey(plain)), plain);
}

TEST(Rce, BodiesAreRandomized) {
  ConvergentEncryption mle;
  Rng rng(2);
  RceScheme rce(mle, rng);
  const ByteVec plain = toBytes("identical plaintext chunk");
  const RceCiphertext ct1 = rce.encrypt(plain);
  const RceCiphertext ct2 = rce.encrypt(plain);
  EXPECT_NE(ct1.body, ct2.body);
  EXPECT_NE(ct1.wrappedKey, ct2.wrappedKey);
}

TEST(Rce, TagsAreDeterministic) {
  // The paper's Section 8 point: RCE's dedup tags leak frequencies exactly
  // like deterministic ciphertexts do.
  ConvergentEncryption mle;
  Rng rng(3);
  RceScheme rce(mle, rng);
  const ByteVec plain = toBytes("identical plaintext chunk");
  EXPECT_EQ(rce.encrypt(plain).tag, rce.encrypt(plain).tag);
  EXPECT_NE(rce.encrypt(plain).tag, rce.encrypt(toBytes("other")).tag);
}

TEST(Rce, TagIsPlaintextFingerprint) {
  ConvergentEncryption mle;
  Rng rng(4);
  RceScheme rce(mle, rng);
  const ByteVec plain = toBytes("tagged chunk");
  EXPECT_EQ(rce.encrypt(plain).tag, fpOfContent(plain));
}

TEST(Rce, WrongMleKeyFailsToDecrypt) {
  ConvergentEncryption mle;
  Rng rng(5);
  RceScheme rce(mle, rng);
  const ByteVec plain = toBytes("protected content");
  const RceCiphertext ct = rce.encrypt(plain);
  const AesKey wrongKey = mle.deriveKey(toBytes("other content"));
  EXPECT_NE(rce.decrypt(ct, wrongKey), plain);
}

TEST(Rce, BodyLengthMatchesPlaintext) {
  ConvergentEncryption mle;
  Rng rng(6);
  RceScheme rce(mle, rng);
  const ByteVec plain(777, 0x12);
  EXPECT_EQ(rce.encrypt(plain).body.size(), plain.size());
}

}  // namespace
}  // namespace freqdedup
