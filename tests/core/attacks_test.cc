#include "core/attacks.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

std::vector<ChunkRecord> seq(std::initializer_list<Fp> fps,
                             uint32_t size = 100) {
  std::vector<ChunkRecord> records;
  for (const Fp fp : fps) records.push_back({fp, size});
  return records;
}

// The worked example of Section 4.2 (Figure 3):
//   M = <M1, M2, M1, M2, M3, M4, M2, M3, M4>
//   C = <C1, C2, C5, C2, C1, C2, C3, C4, C2, C3, C4, C4>
// Ground truth: Ci <-> Mi for i = 1..4; C5 is new content absent from M.
// With u = v = 1 and unbounded G, the attack infers (Ci, Mi) for i = 1..4
// and cannot infer C5.
constexpr Fp kM1 = 1, kM2 = 2, kM3 = 3, kM4 = 4;
constexpr Fp kC1 = 101, kC2 = 102, kC3 = 103, kC4 = 104, kC5 = 105;

std::vector<ChunkRecord> paperM() {
  return seq({kM1, kM2, kM1, kM2, kM3, kM4, kM2, kM3, kM4});
}

std::vector<ChunkRecord> paperC() {
  return seq({kC1, kC2, kC5, kC2, kC1, kC2, kC3, kC4, kC2, kC3, kC4, kC4});
}

TEST(LocalityAttack, PaperFigure3Example) {
  AttackConfig config;
  config.u = 1;
  config.v = 1;
  config.w = 1'000'000;  // "unbounded" in the example
  const AttackResult result = localityAttack(paperC(), paperM(), config);

  EXPECT_EQ(result.inferred.at(kC1), kM1);
  EXPECT_EQ(result.inferred.at(kC2), kM2);
  EXPECT_EQ(result.inferred.at(kC3), kM3);
  EXPECT_EQ(result.inferred.at(kC4), kM4);
  // C5's plaintext never appears in M; whatever the attack maps it to (if
  // anything), it cannot be a *new* chunk — the example says it cannot be
  // inferred. With v=1 the walk never pairs it correctly; it must not be
  // paired with any of M1..M4's fingerprints that are already taken.
  const auto it = result.inferred.find(kC5);
  if (it != result.inferred.end()) {
    EXPECT_NE(it->second, kM1);
    EXPECT_NE(it->second, kM3);
    EXPECT_NE(it->second, kM4);
  }
}

TEST(LocalityAttack, Figure3SeedIsMostFrequentPair) {
  // Frequency analysis finds (C2, M2) as the most frequent pair first.
  FrequencyMap fc, fm;
  for (const ChunkRecord& r : paperC()) ++fc[r.fp];
  for (const ChunkRecord& r : paperM()) ++fm[r.fp];
  const auto seeds = freqAnalysis(fc, fm, 1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], (InferredPair{kC2, kM2}));
}

TEST(BasicAttack, RanksGloballyByFrequency) {
  // Frequencies: cipher 102 > 101 > 103; plain 2 > 1 > 3.
  const auto cipher = seq({102, 102, 102, 101, 101, 103});
  const auto plain = seq({2, 2, 2, 1, 1, 3});
  const AttackResult result = basicAttack(cipher, plain);
  EXPECT_EQ(result.inferred.at(102), 2u);
  EXPECT_EQ(result.inferred.at(101), 1u);
  EXPECT_EQ(result.inferred.at(103), 3u);
}

TEST(BasicAttack, SizeAwareSeparatesSizeClasses) {
  std::vector<ChunkRecord> cipher{{101, 16}, {102, 32}};
  std::vector<ChunkRecord> plain{{1, 16}, {2, 32}};
  const AttackResult plainRank = basicAttack(cipher, plain, false);
  // Without sizes, ties are broken by fingerprint: wrong pairing possible.
  // With sizes, each chunk is alone in its class: pairing is forced.
  const AttackResult sized = basicAttack(cipher, plain, true);
  EXPECT_EQ(sized.inferred.at(101), 1u);
  EXPECT_EQ(sized.inferred.at(102), 2u);
  EXPECT_EQ(plainRank.inferred.size(), 2u);
}

TEST(LocalityAttack, KnownPlaintextSeedsFromLeakedPairs) {
  AttackConfig config;
  config.mode = AttackMode::kKnownPlaintext;
  config.v = 1;
  config.leakedPairs = {{kC3, kM3}};
  const AttackResult result = localityAttack(paperC(), paperM(), config);
  // From (C3, M3) the walk reaches its neighbors: C2/M2 (left) and C4/M4
  // (right), and from those C1/M1.
  EXPECT_EQ(result.inferred.at(kC3), kM3);
  EXPECT_EQ(result.inferred.at(kC2), kM2);
  EXPECT_EQ(result.inferred.at(kC4), kM4);
  EXPECT_EQ(result.inferred.at(kC1), kM1);
}

TEST(LocalityAttack, LeakedPairsAbsentFromAuxStillCounted) {
  AttackConfig config;
  config.mode = AttackMode::kKnownPlaintext;
  config.leakedPairs = {{kC5, 999}};  // 999 does not occur in M
  const AttackResult result = localityAttack(paperC(), paperM(), config);
  // The leaked pair itself is known to the adversary (counted in T), but it
  // cannot seed the walk.
  EXPECT_EQ(result.inferred.at(kC5), 999u);
  EXPECT_EQ(result.processedPairs, 0u);
}

TEST(LocalityAttack, LeakedPairsAbsentFromTargetIgnored) {
  AttackConfig config;
  config.mode = AttackMode::kKnownPlaintext;
  config.leakedPairs = {{777, kM2}};  // 777 is not a ciphertext chunk of C
  const AttackResult result = localityAttack(paperC(), paperM(), config);
  EXPECT_FALSE(result.inferred.contains(777));
}

TEST(LocalityAttack, FirstInferenceWins) {
  AttackConfig config;
  config.u = 1;
  config.v = 1;
  const AttackResult result = localityAttack(paperC(), paperM(), config);
  // Every ciphertext chunk maps to exactly one plaintext chunk.
  EXPECT_LE(result.inferred.size(), 5u);
}

TEST(LocalityAttack, WBoundsTheQueue) {
  // Algorithm 2 line 17: a pair joins G only while |G| <= w. With w = 0 the
  // queue holds at most one pending pair at a time, so the walk degenerates
  // to a single chain and can never process more pairs than with a large w.
  AttackConfig tightCfg;
  tightCfg.u = 1;
  tightCfg.v = 1;
  tightCfg.w = 0;
  AttackConfig looseCfg = tightCfg;
  looseCfg.w = 1'000'000;
  const AttackResult tight = localityAttack(paperC(), paperM(), tightCfg);
  const AttackResult loose = localityAttack(paperC(), paperM(), looseCfg);
  EXPECT_GE(tight.processedPairs, 1u);
  EXPECT_LE(tight.processedPairs, loose.processedPairs);
  EXPECT_LE(tight.inferred.size(), loose.inferred.size());
}

TEST(LocalityAttack, LargerUSeedsMorePairs) {
  AttackConfig config;
  config.u = 3;
  config.v = 1;
  const AttackResult result = localityAttack(paperC(), paperM(), config);
  EXPECT_GE(result.processedPairs, 3u);
}

TEST(LocalityAttack, EmptyStreams) {
  AttackConfig config;
  const AttackResult result = localityAttack({}, {}, config);
  EXPECT_TRUE(result.inferred.empty());
}

TEST(LocalityAttack, AdvancedVariantOnFixedSizeEqualsPlainVariant) {
  // With fixed-size chunks there is a single size class, so the advanced
  // attack reduces to the locality attack (Section 5.3: "equivalent for the
  // VM dataset").
  AttackConfig plainCfg;
  plainCfg.v = 1;
  AttackConfig sizedCfg = plainCfg;
  sizedCfg.sizeAware = true;
  const AttackResult a = localityAttack(paperC(), paperM(), plainCfg);
  const AttackResult b = localityAttack(paperC(), paperM(), sizedCfg);
  EXPECT_EQ(a.inferred, b.inferred);
}

TEST(BasicAttack, EmptyInputs) {
  EXPECT_TRUE(basicAttack({}, {}).inferred.empty());
  EXPECT_TRUE(basicAttack(seq({1}), {}).inferred.empty());
}

}  // namespace
}  // namespace freqdedup
