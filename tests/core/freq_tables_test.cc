#include "core/freq_tables.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

std::vector<ChunkRecord> seq(std::initializer_list<Fp> fps) {
  std::vector<ChunkRecord> records;
  uint32_t size = 100;
  for (const Fp fp : fps) records.push_back({fp, size});
  return records;
}

TEST(FreqTables, CountsFrequencies) {
  const auto t = countChunks(seq({1, 2, 1, 3, 1}), false);
  EXPECT_EQ(t.freq.at(1), 3u);
  EXPECT_EQ(t.freq.at(2), 1u);
  EXPECT_EQ(t.freq.at(3), 1u);
  EXPECT_TRUE(t.left.empty());
  EXPECT_TRUE(t.right.empty());
}

TEST(FreqTables, RecordsSizes) {
  std::vector<ChunkRecord> records{{1, 64}, {2, 128}};
  const auto t = countChunks(records, false);
  EXPECT_EQ(t.sizeOf.at(1), 64u);
  EXPECT_EQ(t.sizeOf.at(2), 128u);
}

TEST(FreqTables, NeighborTablesForPaperExample) {
  // The plaintext sequence from the Figure 3 worked example:
  // M = <M1, M2, M1, M2, M3, M4, M2, M3, M4>.
  const auto t = countChunks(seq({1, 2, 1, 2, 3, 4, 2, 3, 4}), true);

  // L_M2 = {M1:2, M4:1}; R_M2 = {M1:1, M3:2} (Section 4.2's example).
  EXPECT_EQ(t.left.at(2).at(1), 2u);
  EXPECT_EQ(t.left.at(2).at(4), 1u);
  EXPECT_EQ(t.left.at(2).size(), 2u);
  EXPECT_EQ(t.right.at(2).at(1), 1u);
  EXPECT_EQ(t.right.at(2).at(3), 2u);
  EXPECT_EQ(t.right.at(2).size(), 2u);
}

TEST(FreqTables, FirstChunkHasNoLeftNeighbor) {
  const auto t = countChunks(seq({7, 8}), true);
  EXPECT_FALSE(t.left.contains(7));
  EXPECT_EQ(t.left.at(8).at(7), 1u);
}

TEST(FreqTables, LastChunkHasNoRightNeighbor) {
  const auto t = countChunks(seq({7, 8}), true);
  EXPECT_FALSE(t.right.contains(8));
  EXPECT_EQ(t.right.at(7).at(8), 1u);
}

TEST(FreqTables, SelfAdjacency) {
  const auto t = countChunks(seq({5, 5, 5}), true);
  EXPECT_EQ(t.left.at(5).at(5), 2u);
  EXPECT_EQ(t.right.at(5).at(5), 2u);
}

TEST(FreqTables, EmptyStream) {
  const auto t = countChunks({}, true);
  EXPECT_TRUE(t.freq.empty());
  EXPECT_TRUE(t.left.empty());
}

TEST(FreqTables, SingleChunk) {
  const auto t = countChunks(seq({9}), true);
  EXPECT_EQ(t.freq.at(9), 1u);
  EXPECT_TRUE(t.left.empty());
  EXPECT_TRUE(t.right.empty());
}

}  // namespace
}  // namespace freqdedup
