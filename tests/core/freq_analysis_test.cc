#include "core/freq_analysis.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

TEST(FreqAnalysis, SortByFrequencyDescending) {
  FrequencyMap freq{{10, 5}, {20, 9}, {30, 1}};
  const auto sorted = sortByFrequency(freq);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, 20u);
  EXPECT_EQ(sorted[1].first, 10u);
  EXPECT_EQ(sorted[2].first, 30u);
}

TEST(FreqAnalysis, TiesBrokenByAscendingFingerprint) {
  FrequencyMap freq{{30, 5}, {10, 5}, {20, 5}};
  const auto sorted = sortByFrequency(freq);
  EXPECT_EQ(sorted[0].first, 10u);
  EXPECT_EQ(sorted[1].first, 20u);
  EXPECT_EQ(sorted[2].first, 30u);
}

TEST(FreqAnalysis, TopByFrequencyMatchesFullSortPrefix) {
  FrequencyMap freq;
  for (Fp fp = 0; fp < 100; ++fp) freq[fp] = (fp * 13) % 7;  // many ties
  const auto full = sortByFrequency(freq);
  for (const size_t k : {0u, 1u, 5u, 50u, 99u, 100u, 200u}) {
    const auto top = topByFrequency(freq, k);
    ASSERT_EQ(top.size(), std::min<size_t>(k, freq.size()));
    for (size_t i = 0; i < top.size(); ++i) EXPECT_EQ(top[i], full[i]);
  }
}

TEST(FreqAnalysis, PairsByRank) {
  FrequencyMap cipher{{101, 9}, {102, 5}, {103, 1}};
  FrequencyMap plain{{201, 80}, {202, 40}, {203, 2}};
  const auto pairs = freqAnalysis(cipher, plain, 10);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (InferredPair{101, 201}));
  EXPECT_EQ(pairs[1], (InferredPair{102, 202}));
  EXPECT_EQ(pairs[2], (InferredPair{103, 203}));
}

TEST(FreqAnalysis, XLimitsPairCount) {
  FrequencyMap cipher{{1, 3}, {2, 2}, {3, 1}};
  FrequencyMap plain{{4, 3}, {5, 2}, {6, 1}};
  EXPECT_EQ(freqAnalysis(cipher, plain, 2).size(), 2u);
  EXPECT_EQ(freqAnalysis(cipher, plain, 0).size(), 0u);
}

TEST(FreqAnalysis, CappedByShorterSide) {
  FrequencyMap cipher{{1, 3}};
  FrequencyMap plain{{4, 3}, {5, 2}};
  EXPECT_EQ(freqAnalysis(cipher, plain, 10).size(), 1u);
}

TEST(FreqAnalysis, EmptyInputs) {
  EXPECT_TRUE(freqAnalysis({}, {}, 5).empty());
  EXPECT_TRUE(freqAnalysis({{1, 1}}, {}, 5).empty());
}

TEST(SizeClass, SixteenByteBlocks) {
  EXPECT_EQ(sizeClassOf(1), 1u);
  EXPECT_EQ(sizeClassOf(16), 1u);
  EXPECT_EQ(sizeClassOf(17), 2u);
  EXPECT_EQ(sizeClassOf(4096), 256u);
  EXPECT_EQ(sizeClassOf(4097), 257u);
}

TEST(FreqAnalysisSized, PairsWithinSizeClassesOnly) {
  // Cipher: two 1-block chunks and one 2-block chunk; same on plain side.
  FrequencyMap cipher{{1, 10}, {2, 5}, {3, 7}};
  FrequencyMap plain{{11, 20}, {12, 8}, {13, 9}};
  SizeMap cipherSizes{{1, 16}, {2, 10}, {3, 32}};
  SizeMap plainSizes{{11, 16}, {12, 12}, {13, 20}};
  const auto pairs = freqAnalysisSized(cipher, plain, 10, cipherSizes,
                                       plainSizes);
  // Class 1 (<=16 bytes): cipher {1:10, 2:5} vs plain {11:20, 12:8}.
  // Class 2 (17..32 bytes): cipher {3} vs plain {13}.
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (InferredPair{1, 11}));
  EXPECT_EQ(pairs[1], (InferredPair{2, 12}));
  EXPECT_EQ(pairs[2], (InferredPair{3, 13}));
}

TEST(FreqAnalysisSized, MismatchedClassesProduceNothing) {
  FrequencyMap cipher{{1, 10}};
  FrequencyMap plain{{11, 10}};
  SizeMap cipherSizes{{1, 16}};
  SizeMap plainSizes{{11, 160}};  // different block count
  EXPECT_TRUE(
      freqAnalysisSized(cipher, plain, 10, cipherSizes, plainSizes).empty());
}

TEST(FreqAnalysisSized, UnknownSizesSkipped) {
  FrequencyMap cipher{{1, 10}, {2, 10}};
  FrequencyMap plain{{11, 10}};
  SizeMap cipherSizes{{1, 16}};  // chunk 2's size unknown
  SizeMap plainSizes{{11, 16}};
  const auto pairs = freqAnalysisSized(cipher, plain, 10, cipherSizes,
                                       plainSizes);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (InferredPair{1, 11}));
}

TEST(FreqAnalysisSized, XAppliesPerClass) {
  // Algorithm 3 returns up to x pairs for EACH size class.
  FrequencyMap cipher{{1, 10}, {2, 5}, {3, 7}, {4, 6}};
  FrequencyMap plain{{11, 20}, {12, 8}, {13, 9}, {14, 2}};
  SizeMap cipherSizes{{1, 16}, {2, 16}, {3, 32}, {4, 32}};
  SizeMap plainSizes{{11, 16}, {12, 16}, {13, 32}, {14, 32}};
  const auto pairs =
      freqAnalysisSized(cipher, plain, 1, cipherSizes, plainSizes);
  ASSERT_EQ(pairs.size(), 2u);  // one pair per class
  EXPECT_EQ(pairs[0], (InferredPair{1, 11}));
  EXPECT_EQ(pairs[1], (InferredPair{3, 13}));
}

}  // namespace
}  // namespace freqdedup
