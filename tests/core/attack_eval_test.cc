#include "core/attack_eval.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

EncryptedTrace makeTarget() {
  // Three unique ciphertext chunks 101..103 with truth 1..3.
  EncryptedTrace target;
  target.records = {{101, 10}, {102, 10}, {101, 10}, {103, 10}};
  target.truth = {{101, 1}, {102, 2}, {103, 3}};
  return target;
}

TEST(AttackEval, UniqueFingerprintsFirstAppearanceOrder) {
  const EncryptedTrace target = makeTarget();
  EXPECT_EQ(uniqueFingerprints(target.records),
            (std::vector<Fp>{101, 102, 103}));
}

TEST(AttackEval, InferenceRateCountsOnlyCorrectPairs) {
  const EncryptedTrace target = makeTarget();
  AttackResult result;
  result.inferred = {{101, 1}, {102, 99}};  // one right, one wrong
  EXPECT_EQ(correctInferences(result, target), 1u);
  EXPECT_NEAR(inferenceRate(result, target), 1.0 / 3.0, 1e-12);
}

TEST(AttackEval, PerfectInference) {
  const EncryptedTrace target = makeTarget();
  AttackResult result;
  result.inferred = {{101, 1}, {102, 2}, {103, 3}};
  EXPECT_DOUBLE_EQ(inferenceRate(result, target), 1.0);
}

TEST(AttackEval, NoInference) {
  const EncryptedTrace target = makeTarget();
  EXPECT_DOUBLE_EQ(inferenceRate(AttackResult{}, target), 0.0);
}

TEST(AttackEval, InferencesOutsideTargetIgnored) {
  const EncryptedTrace target = makeTarget();
  AttackResult result;
  result.inferred = {{999, 9}};
  EXPECT_DOUBLE_EQ(inferenceRate(result, target), 0.0);
}

TEST(AttackEval, EmptyTargetIsZero) {
  EXPECT_DOUBLE_EQ(inferenceRate(AttackResult{}, EncryptedTrace{}), 0.0);
}

TEST(AttackEval, LeakedPairsAreTruthful) {
  const EncryptedTrace target = makeTarget();
  Rng rng(1);
  const auto leaked = sampleLeakedPairs(target, 1.0, rng);
  EXPECT_EQ(leaked.size(), 3u);
  for (const auto& p : leaked) EXPECT_EQ(target.truth.at(p.cipher), p.plain);
}

TEST(AttackEval, LeakageRateControlsCount) {
  EncryptedTrace target;
  for (Fp fp = 0; fp < 1000; ++fp) {
    target.records.push_back({fp + 1000, 10});
    target.truth.emplace(fp + 1000, fp);
  }
  Rng rng(2);
  EXPECT_EQ(sampleLeakedPairs(target, 0.0, rng).size(), 0u);
  EXPECT_EQ(sampleLeakedPairs(target, 0.1, rng).size(), 100u);
  EXPECT_EQ(sampleLeakedPairs(target, 0.002, rng).size(), 2u);
}

TEST(AttackEval, LeakSamplingIsDeterministicPerSeed) {
  EncryptedTrace target;
  for (Fp fp = 0; fp < 100; ++fp) {
    target.records.push_back({fp + 1000, 10});
    target.truth.emplace(fp + 1000, fp);
  }
  Rng rng1(3), rng2(3), rng3(4);
  const auto a = sampleLeakedPairs(target, 0.2, rng1);
  const auto b = sampleLeakedPairs(target, 0.2, rng2);
  const auto c = sampleLeakedPairs(target, 0.2, rng3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(AttackEval, InvalidLeakageRateRejected) {
  Rng rng(1);
  EXPECT_THROW(sampleLeakedPairs(makeTarget(), 1.5, rng), std::logic_error);
  EXPECT_THROW(sampleLeakedPairs(makeTarget(), -0.1, rng), std::logic_error);
}

}  // namespace
}  // namespace freqdedup
