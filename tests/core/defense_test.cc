#include "core/defense.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"

namespace freqdedup {
namespace {

std::vector<ChunkRecord> randomTrace(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<ChunkRecord> records(n);
  for (auto& r : records) {
    // Small fingerprint space: plenty of duplicates.
    r = {rng.uniformInt(0, n / 3), 8192};
  }
  return records;
}

SegmentParams tinySegments() {
  SegmentParams p;
  p.minBytes = 64 * 1024;
  p.avgBytes = 128 * 1024;
  p.maxBytes = 256 * 1024;
  p.avgChunkBytes = 8192;
  return p;
}

TEST(MleTrace, OneToOneAndDeterministic) {
  const auto plain = randomTrace(1, 1000);
  const EncryptedTrace a = mleEncryptTrace(plain);
  const EncryptedTrace b = mleEncryptTrace(plain);
  EXPECT_EQ(a.records, b.records);
  // Identical plaintext fps always map to identical cipher fps.
  std::unordered_map<Fp, Fp, FpHash> mapping;
  for (size_t i = 0; i < plain.size(); ++i) {
    const auto [it, inserted] =
        mapping.try_emplace(plain[i].fp, a.records[i].fp);
    EXPECT_EQ(it->second, a.records[i].fp);
  }
}

TEST(MleTrace, TruthInvertsTheMapping) {
  const auto plain = randomTrace(2, 500);
  const EncryptedTrace enc = mleEncryptTrace(plain);
  for (size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(enc.truth.at(enc.records[i].fp), plain[i].fp);
}

TEST(MleTrace, SizesPreserved) {
  const auto plain = randomTrace(3, 500);
  const EncryptedTrace enc = mleEncryptTrace(plain);
  for (size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(enc.records[i].size, plain[i].size);
}

TEST(MleTrace, PreservesDeduplication) {
  const auto plain = randomTrace(4, 2000);
  const EncryptedTrace enc = mleEncryptTrace(plain);
  std::unordered_set<Fp, FpHash> plainUnique, cipherUnique;
  for (const auto& r : plain) plainUnique.insert(r.fp);
  for (const auto& r : enc.records) cipherUnique.insert(r.fp);
  EXPECT_EQ(plainUnique.size(), cipherUnique.size());
}

TEST(MleTrace, FingerprintWidthRespected) {
  const auto plain = randomTrace(5, 200);
  const EncryptedTrace enc = mleEncryptTrace(plain, 48);
  for (const auto& r : enc.records) EXPECT_LT(r.fp, 1ULL << 48);
}

class ScrambleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScrambleProperty, PreservesPerSegmentMultisets) {
  const auto records = randomTrace(GetParam(), 3000);
  const SegmentParams params = tinySegments();
  Rng rng(GetParam() * 7 + 1);
  const auto scrambled = scrambleTrace(records, params, rng);
  ASSERT_EQ(scrambled.size(), records.size());

  const auto segments = segmentRecords(records, params);
  for (const Segment& seg : segments) {
    auto originalSlice = std::vector<ChunkRecord>(
        records.begin() + static_cast<ptrdiff_t>(seg.begin),
        records.begin() + static_cast<ptrdiff_t>(seg.end));
    auto scrambledSlice = std::vector<ChunkRecord>(
        scrambled.begin() + static_cast<ptrdiff_t>(seg.begin),
        scrambled.begin() + static_cast<ptrdiff_t>(seg.end));
    const auto byFp = [](const ChunkRecord& a, const ChunkRecord& b) {
      return a.fp < b.fp;
    };
    std::sort(originalSlice.begin(), originalSlice.end(), byFp);
    std::sort(scrambledSlice.begin(), scrambledSlice.end(), byFp);
    EXPECT_EQ(originalSlice, scrambledSlice);
  }
}

TEST_P(ScrambleProperty, ActuallyReordersLongSegments) {
  const auto records = randomTrace(GetParam(), 3000);
  Rng rng(GetParam());
  const auto scrambled = scrambleTrace(records, tinySegments(), rng);
  EXPECT_NE(scrambled, records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScrambleProperty,
                         ::testing::Values(1, 2, 42));

TEST(MinHashTrace, RecordCountAndTruthPreserved) {
  const auto plain = randomTrace(6, 2000);
  DefenseConfig config;
  config.segment = tinySegments();
  const EncryptedTrace enc = minHashEncryptTrace(plain, config);
  ASSERT_EQ(enc.records.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(enc.truth.at(enc.records[i].fp), plain[i].fp);
    EXPECT_EQ(enc.records[i].size, plain[i].size);
  }
}

TEST(MinHashTrace, MostDuplicatesStillDeduplicate) {
  // Broder's theorem applies to *similar streams* (backups of the same
  // source), not to uniformly scattered duplicates. Build two nearly
  // identical backup streams, as in real workloads: the blowup in unique
  // ciphertext chunks must stay small (the paper reports <= 3.6 % extra
  // storage).
  Rng rng(7);
  std::vector<ChunkRecord> backup1(10'000);
  for (auto& r : backup1) r = {rng.next(), 8192};
  std::vector<ChunkRecord> backup2 = backup1;
  for (int i = 0; i < 100; ++i) {  // 1 % clustered churn
    const size_t at = rng.pickIndex(backup2.size());
    backup2[at] = {rng.next(), 8192};
  }
  std::vector<ChunkRecord> stream = backup1;
  stream.insert(stream.end(), backup2.begin(), backup2.end());

  DefenseConfig config;
  config.segment = tinySegments();
  const EncryptedTrace enc = minHashEncryptTrace(stream, config);
  std::unordered_set<Fp, FpHash> plainUnique, cipherUnique;
  for (const auto& r : stream) plainUnique.insert(r.fp);
  for (const auto& r : enc.records) cipherUnique.insert(r.fp);
  EXPECT_GE(cipherUnique.size(), plainUnique.size());
  EXPECT_LT(static_cast<double>(cipherUnique.size()),
            static_cast<double>(plainUnique.size()) * 1.3);
}

TEST(MinHashTrace, SameMinimumSameCipher) {
  // Two streams whose segments contain the same minimum fingerprint encrypt
  // shared chunks identically.
  std::vector<ChunkRecord> streamA, streamB;
  for (Fp fp = 10; fp < 200; ++fp) streamA.push_back({fp, 8192});
  for (Fp fp = 10; fp < 200; ++fp) streamB.push_back({fp, 8192});
  DefenseConfig config;
  config.segment.minBytes = 1;
  config.segment.avgBytes = 100 * 8192ULL * 1024;  // one huge segment
  config.segment.maxBytes = 100 * 8192ULL * 1024;
  const EncryptedTrace a = minHashEncryptTrace(streamA, config);
  const EncryptedTrace b = minHashEncryptTrace(streamB, config);
  EXPECT_EQ(a.records, b.records);
}

TEST(MinHashTrace, DifferentMinimumDifferentCipher) {
  std::vector<ChunkRecord> streamA, streamB;
  for (Fp fp = 10; fp < 200; ++fp) streamA.push_back({fp, 8192});
  streamB = streamA;
  streamB[0].fp = 5;  // new minimum for B's (single) segment
  DefenseConfig config;
  config.segment.minBytes = 1;
  config.segment.avgBytes = 100 * 8192ULL * 1024;
  config.segment.maxBytes = 100 * 8192ULL * 1024;
  const EncryptedTrace a = minHashEncryptTrace(streamA, config);
  const EncryptedTrace b = minHashEncryptTrace(streamB, config);
  // Same plaintext chunk (fp 11 at index 1), different minima -> different
  // ciphertext chunks: this is what disturbs the frequency ranking.
  EXPECT_NE(a.records[1].fp, b.records[1].fp);
  EXPECT_EQ(a.truth.at(a.records[1].fp), b.truth.at(b.records[1].fp));
}

TEST(MinHashTrace, ScrambleKeepsSegmentMinimaAndTruth) {
  const auto plain = randomTrace(8, 2000);
  DefenseConfig noScramble;
  noScramble.segment = tinySegments();
  DefenseConfig withScramble = noScramble;
  withScramble.scramble = true;
  withScramble.scrambleSeed = 77;
  const EncryptedTrace a = minHashEncryptTrace(plain, noScramble);
  const EncryptedTrace b = minHashEncryptTrace(plain, withScramble);
  // Scrambling permutes within segments but does not change which
  // (minimum, chunk) pairs exist: the unique cipher fp sets are identical.
  std::unordered_set<Fp, FpHash> uniqueA, uniqueB;
  for (const auto& r : a.records) uniqueA.insert(r.fp);
  for (const auto& r : b.records) uniqueB.insert(r.fp);
  EXPECT_EQ(uniqueA, uniqueB);
  // But the order differs.
  EXPECT_NE(a.records, b.records);
}

TEST(MinHashTrace, EmptyInput) {
  const EncryptedTrace enc = minHashEncryptTrace({}, DefenseConfig{});
  EXPECT_TRUE(enc.records.empty());
  EXPECT_TRUE(enc.truth.empty());
}

}  // namespace
}  // namespace freqdedup
