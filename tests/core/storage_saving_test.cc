#include "core/storage_saving.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

std::vector<ChunkRecord> seq(std::initializer_list<Fp> fps,
                             uint32_t size = 100) {
  std::vector<ChunkRecord> records;
  for (const Fp fp : fps) records.push_back({fp, size});
  return records;
}

TEST(StorageSaving, FirstBackupAllUnique) {
  CumulativeDedup dedup;
  const SavingPoint p = dedup.addBackup(seq({1, 2, 3}), "b1");
  EXPECT_EQ(p.label, "b1");
  EXPECT_EQ(p.logicalBytes, 300u);
  EXPECT_EQ(p.physicalBytes, 300u);
  EXPECT_DOUBLE_EQ(p.savingPct, 0.0);
  EXPECT_DOUBLE_EQ(p.dedupRatio, 1.0);
}

TEST(StorageSaving, IdenticalSecondBackupHalvesPhysical) {
  CumulativeDedup dedup;
  dedup.addBackup(seq({1, 2, 3}));
  const SavingPoint p = dedup.addBackup(seq({1, 2, 3}));
  EXPECT_EQ(p.logicalBytes, 600u);
  EXPECT_EQ(p.physicalBytes, 300u);
  EXPECT_DOUBLE_EQ(p.savingPct, 50.0);
  EXPECT_DOUBLE_EQ(p.dedupRatio, 2.0);
}

TEST(StorageSaving, IntraBackupDuplicatesCounted) {
  CumulativeDedup dedup;
  const SavingPoint p = dedup.addBackup(seq({1, 1, 1, 2}));
  EXPECT_EQ(p.physicalBytes, 200u);
  EXPECT_EQ(p.logicalBytes, 400u);
}

TEST(StorageSaving, MixedSizes) {
  CumulativeDedup dedup;
  std::vector<ChunkRecord> records{{1, 1000}, {2, 200}, {1, 1000}};
  const SavingPoint p = dedup.addBackup(records);
  EXPECT_EQ(p.logicalBytes, 2200u);
  EXPECT_EQ(p.physicalBytes, 1200u);
}

TEST(StorageSaving, EmptyBackup) {
  CumulativeDedup dedup;
  const SavingPoint p = dedup.addBackup({});
  EXPECT_DOUBLE_EQ(p.savingPct, 0.0);
  EXPECT_EQ(p.logicalBytes, 0u);
}

TEST(StorageSaving, SavingGrowsWithRedundantBackups) {
  CumulativeDedup dedup;
  double lastSaving = -1.0;
  for (int i = 0; i < 5; ++i) {
    const SavingPoint p = dedup.addBackup(seq({1, 2, 3, 4}));
    EXPECT_GT(p.savingPct + 1e-9, lastSaving);
    lastSaving = p.savingPct;
  }
  EXPECT_DOUBLE_EQ(lastSaving, 80.0);  // 5 backups, one stored
}

TEST(StorageSaving, UniqueChunkCountTracked) {
  CumulativeDedup dedup;
  dedup.addBackup(seq({1, 2}));
  dedup.addBackup(seq({2, 3}));
  EXPECT_EQ(dedup.uniqueChunks(), 3u);
}

}  // namespace
}  // namespace freqdedup
