// Property test for the GC safety invariant: after ANY sequence of
// backup/delete/gc operations, garbage collection never reclaims a chunk
// still referenced by a live manifest, reference counts always equal the
// occurrence sums of a naive model, and reclaimed space matches the model's
// dead set. Randomized op sequences with fixed RNG seeds, checked against a
// naive reference counter, on both backends (the file backend with periodic
// close/reopen).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <thread>

#include "common/rng.h"
#include "obs/metrics.h"
#include "storage/container_backup_store.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

constexpr uint64_t kSmallContainerBytes = 8 * 1024;

struct NaiveModel {
  std::map<Fp, ByteVec> chunks;            // everything ever put (until GC'd)
  std::map<Fp, uint64_t> refs;             // naive reference counter
  std::map<std::string, std::vector<Fp>> manifests;

  void recordBackup(const std::string& name, const std::vector<Fp>& fps) {
    releaseBackup(name);
    for (const Fp fp : fps) ++refs[fp];
    manifests[name] = fps;
  }

  bool releaseBackup(const std::string& name) {
    const auto it = manifests.find(name);
    if (it == manifests.end()) return false;
    for (const Fp fp : it->second) --refs[fp];
    manifests.erase(it);
    return true;
  }

  void gc() {
    std::erase_if(chunks, [this](const auto& kv) {
      const auto it = refs.find(kv.first);
      return it == refs.end() || it->second == 0;
    });
  }

  [[nodiscard]] uint64_t liveBytes() const {
    uint64_t total = 0;
    for (const auto& [fp, bytes] : chunks) total += bytes.size();
    return total;
  }
};

/// One randomized run against `store`; `reopen` (may be null) closes and
/// reopens the store, returning the fresh instance.
void runOps(uint64_t seed, BackupStore* store,
            const std::function<BackupStore*()>& reopen) {
  Rng rng(seed);
  NaiveModel model;
  std::vector<std::pair<Fp, ByteVec>> pool;  // shared chunk pool
  uint64_t nextBackupId = 0;

  const auto randomChunk = [&rng]() {
    ByteVec bytes(512 + rng.pickIndex(1536));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.next());
    return bytes;
  };

  const auto checkInvariants = [&] {
    // Refcounts equal the naive occurrence sums; every live chunk is intact.
    for (const auto& [fp, n] : model.refs) {
      EXPECT_EQ(store->chunkRefCount(fp), n) << "fp " << fpToHex(fp);
      if (n > 0) {
        ASSERT_TRUE(store->hasChunk(fp));
        EXPECT_EQ(store->getChunk(fp), model.chunks.at(fp));
      }
    }
    EXPECT_EQ(store->listBackups().size(), model.manifests.size());
  };

  for (int step = 0; step < 60; ++step) {
    const uint64_t dice = rng.pickIndex(10);
    if (dice < 5 || model.manifests.empty()) {
      // Backup: a mix of fresh chunks and re-used pool chunks, with an
      // occasional intra-backup duplicate reference.
      const std::string name = "b" + std::to_string(nextBackupId++);
      std::vector<Fp> fps;
      const size_t fresh = 1 + rng.pickIndex(4);
      for (size_t i = 0; i < fresh; ++i) {
        const ByteVec bytes = randomChunk();
        const Fp fp = fpOfContent(bytes);
        store->putChunk(fp, bytes);
        model.chunks[fp] = bytes;
        pool.emplace_back(fp, bytes);
        fps.push_back(fp);
      }
      const size_t reused = rng.pickIndex(4);
      for (size_t i = 0; i < reused && !pool.empty(); ++i) {
        const auto& [fp, bytes] = pool[rng.pickIndex(pool.size())];
        if (!store->hasChunk(fp)) {
          store->putChunk(fp, bytes);
          model.chunks[fp] = bytes;
        }
        fps.push_back(fp);
      }
      if (!fps.empty() && rng.pickIndex(3) == 0) fps.push_back(fps[0]);
      store->recordBackup(name, fps);
      model.recordBackup(name, fps);
    } else if (dice < 8) {
      // Delete a random live backup.
      auto it = model.manifests.begin();
      std::advance(it, static_cast<long>(
                           rng.pickIndex(model.manifests.size())));
      const std::string name = it->first;
      EXPECT_TRUE(store->releaseBackup(name));
      EXPECT_TRUE(model.releaseBackup(name));
    } else {
      // Garbage-collect and compare against the model's dead set.
      const GcStats gc = store->collectGarbage();
      const uint64_t liveBefore = model.liveBytes();
      model.gc();
      EXPECT_EQ(gc.bytesReclaimed, liveBefore - model.liveBytes());
      if (obs::kObsEnabled) {
        EXPECT_EQ(store->stats().uniqueChunks, model.chunks.size());
        EXPECT_EQ(store->stats().storedBytes, model.liveBytes());
      }
      for (const auto& [fp, n] : model.refs) {
        if (n == 0)
          EXPECT_FALSE(store->hasChunk(fp))
              << "GC must reclaim unreferenced " << fpToHex(fp);
      }
      const StoreCheckReport report = store->verify();
      EXPECT_TRUE(report.ok()) << (report.errors.empty()
                                       ? ""
                                       : report.errors.front());
    }
    checkInvariants();

    if (reopen && step % 12 == 11) {
      store = reopen();
      checkInvariants();
    }
  }

  // Final sweep: GC everything deletable and re-verify.
  for (const auto& [name, fps] : model.manifests) store->releaseBackup(name);
  while (!model.manifests.empty()) model.releaseBackup(model.manifests.begin()->first);
  store->collectGarbage();
  model.gc();
  if (obs::kObsEnabled)
    EXPECT_EQ(store->stats().uniqueChunks, model.chunks.size());
  EXPECT_TRUE(store->verify().ok());
}

class GcProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcProperty, MemoryBackendMatchesNaiveModel) {
  MemBackupStore store(kSmallContainerBytes);
  runOps(GetParam(), &store, nullptr);
}

TEST_P(GcProperty, FileBackendMatchesNaiveModelAcrossReopens) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("gc_property_" + std::to_string(GetParam())))
          .string();
  std::filesystem::remove_all(dir);
  {
    auto store =
        std::make_unique<FileBackupStore>(
            dir, StoreOptions{.containerBytes = kSmallContainerBytes});
    runOps(GetParam(), store.get(), [&]() -> BackupStore* {
      store.reset();  // close (destructor flushes)
      store = std::make_unique<FileBackupStore>(
          dir, StoreOptions{.containerBytes = kSmallContainerBytes});
      EXPECT_EQ(store->recoveryStats().entriesDropped, 0u);
      return store.get();
    });
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 42u));

// The read-path safety companion to the model check above: while a writer
// runs a random backup/delete/gc churn, an always-restoring reader thread
// continuously issues batched reads for chunks that were live when it
// sampled them. Every read must either return the exact original bytes or
// fail cleanly (the chunk got reclaimed between sample and read) — stale or
// relocated container bytes must never be served, even from cache hits.
TEST(GcPropertyConcurrent, AlwaysRestoringReaderNeverSeesWrongBytes) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gc_property_reader").string();
  std::filesystem::remove_all(dir);
  {
    // Tiny containers + tiny read cache: most batched reads fetch from
    // disk, and every GC pass compacts containers the reader may be using.
    FileBackupStore store(dir,
                          {.containerBytes = kSmallContainerBytes,
                           .blockCacheBytes = 2 * kSmallContainerBytes});
    Rng rng(1234);
    NaiveModel model;
    uint64_t nextBackupId = 0;

    // Chunks that were live (referenced by a manifest) at sample time.
    std::mutex liveMu;
    std::vector<std::pair<Fp, ByteVec>> live;
    const auto resyncLive = [&] {
      std::vector<std::pair<Fp, ByteVec>> fresh;
      for (const auto& [fp, n] : model.refs)
        if (n > 0) fresh.emplace_back(fp, model.chunks.at(fp));
      std::lock_guard lock(liveMu);
      live = std::move(fresh);
    };

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> servedOk{0};
    std::atomic<uint64_t> cleanFailures{0};
    std::atomic<uint64_t> wrongBytes{0};
    std::thread reader([&] {
      while (!stop.load()) {
        std::vector<std::pair<Fp, ByteVec>> sample;
        {
          std::lock_guard lock(liveMu);
          sample = live;
        }
        if (sample.empty()) {
          std::this_thread::yield();
          continue;
        }
        std::vector<Fp> fps;
        fps.reserve(sample.size());
        for (const auto& [fp, bytes] : sample) fps.push_back(fp);
        try {
          const std::vector<ByteVec> got = store.getChunks(fps);
          for (size_t i = 0; i < sample.size(); ++i) {
            if (got[i] == sample[i].second) {
              ++servedOk;
            } else {
              ++wrongBytes;  // silent corruption: the one forbidden outcome
            }
          }
        } catch (const std::exception&) {
          ++cleanFailures;  // raced a delete+GC of a sampled chunk: allowed
        }
      }
    });

    const auto randomChunk = [&rng]() {
      ByteVec bytes(512 + rng.pickIndex(1536));
      for (auto& b : bytes) b = static_cast<uint8_t>(rng.next());
      return bytes;
    };
    for (int step = 0; step < 120; ++step) {
      const uint64_t dice = rng.pickIndex(10);
      if (dice < 5 || model.manifests.empty()) {
        const std::string name = "b" + std::to_string(nextBackupId++);
        std::vector<Fp> fps;
        for (size_t i = 0, fresh = 1 + rng.pickIndex(4); i < fresh; ++i) {
          const ByteVec bytes = randomChunk();
          const Fp fp = fpOfContent(bytes);
          store.putChunk(fp, bytes);
          model.chunks[fp] = bytes;
          fps.push_back(fp);
        }
        store.recordBackup(name, fps);
        model.recordBackup(name, fps);
      } else if (dice < 8) {
        auto it = model.manifests.begin();
        std::advance(it, static_cast<long>(
                             rng.pickIndex(model.manifests.size())));
        const std::string name = it->first;
        EXPECT_TRUE(store.releaseBackup(name));
        EXPECT_TRUE(model.releaseBackup(name));
      } else {
        store.collectGarbage();
        model.gc();
      }
      resyncLive();
    }
    stop.store(true);
    reader.join();

    EXPECT_EQ(wrongBytes.load(), 0u)
        << "the reader must never receive stale/relocated bytes";
    EXPECT_GT(servedOk.load(), 0u) << "the reader must have made progress";
    // Informational: clean failures are permitted but should be the rare
    // sample-vs-GC race, not the common case.
    (void)cleanFailures;
    EXPECT_TRUE(store.verify().ok());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace freqdedup
