// Hot/cold tiering: GC-driven demotion (hotBytes target, keepHotRecent
// protection, least-recently-read order), transparent promotion on restore
// reads (verbatim frame bytes, promotions ≤ cold reads), tier discovery on
// reopen without tiering options, GC of demoted containers, cold-orphan
// detection in verify(), and the LocalObjectStore contract.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>

#include "obs/metrics.h"
#include "storage/backup_store.h"
#include "storage/cold_tier.h"
#include "storage/container.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kContainerBytes = 64 * 1024;
constexpr size_t kChunkBytes = 16 * 1024;

ByteVec chunkOfByte(uint8_t b) { return ByteVec(kChunkBytes, b); }

class TierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("tier_test_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static StoreOptions tiered(uint64_t hotBytes = 0,
                             uint32_t keepHotRecent = 1) {
    StoreOptions options;
    options.containerBytes = kContainerBytes;
    options.coldTier.demoteOnGc = true;
    options.coldTier.hotBytes = hotBytes;
    options.coldTier.keepHotRecent = keepHotRecent;
    return options;
  }

  size_t filesWithExtension(const std::string& sub,
                            const std::string& ext) const {
    const std::string path = dir_ + "/" + sub;
    if (!fs::exists(path)) return 0;
    size_t files = 0;
    for (const auto& entry : fs::directory_iterator(path))
      files += entry.path().extension() == ext;
    return files;
  }
  size_t hotContainers() const {
    return filesWithExtension("containers", ".fdc");
  }
  size_t coldContainers() const { return filesWithExtension("cold", ".fdc"); }

  /// Writes `count` distinct chunks, records them all live under one
  /// backup, and flushes (sealing the open container).
  std::vector<std::pair<Fp, ByteVec>> fillStore(FileBackupStore& store,
                                                int count) {
    std::vector<std::pair<Fp, ByteVec>> chunks;
    std::vector<Fp> refs;
    for (int i = 0; i < count; ++i) {
      ByteVec bytes = chunkOfByte(static_cast<uint8_t>(i + 1));
      const Fp fp = fpOfContent(bytes);
      store.putChunk(fp, bytes);
      refs.push_back(fp);
      chunks.emplace_back(fp, std::move(bytes));
    }
    store.flush();
    store.recordBackup("live", refs);
    return chunks;
  }

  std::string dir_;
};

TEST_F(TierTest, GcDemotesEverythingButTheKeepHotTail) {
  FileBackupStore store(dir_, tiered(/*hotBytes=*/0, /*keepHotRecent=*/1));
  const auto chunks = fillStore(store, 24);  // ~6 sealed containers
  const size_t before = hotContainers();
  ASSERT_GE(before, 2u);

  const GcStats gc = store.collectGarbage();
  EXPECT_EQ(gc.containersDemoted, before - 1);
  EXPECT_EQ(hotContainers(), 1u) << "keepHotRecent=1 keeps newest hot";
  EXPECT_EQ(coldContainers(), before - 1);

  // Every chunk — hot or cold — still reads back bit-identical.
  for (const auto& [fp, bytes] : chunks) EXPECT_EQ(store.getChunk(fp), bytes);
  EXPECT_TRUE(store.verify().ok());
}

TEST_F(TierTest, HotBytesTargetBoundsDemotion) {
  // A target large enough for the whole store: GC must demote nothing.
  FileBackupStore store(dir_,
                        tiered(/*hotBytes=*/1ull << 40, /*keepHotRecent=*/1));
  fillStore(store, 24);
  const size_t before = hotContainers();
  const GcStats gc = store.collectGarbage();
  EXPECT_EQ(gc.containersDemoted, 0u);
  EXPECT_EQ(hotContainers(), before);
  EXPECT_EQ(coldContainers(), 0u);
}

TEST_F(TierTest, KeepHotRecentProtectsTheNewestContainers) {
  FileBackupStore store(dir_, tiered(/*hotBytes=*/0, /*keepHotRecent=*/1000));
  fillStore(store, 24);
  const GcStats gc = store.collectGarbage();
  EXPECT_EQ(gc.containersDemoted, 0u);
  EXPECT_EQ(coldContainers(), 0u);
}

TEST_F(TierTest, DemotionWithoutOptInNeverHappens) {
  StoreOptions options;
  options.containerBytes = kContainerBytes;
  FileBackupStore store(dir_, options);
  fillStore(store, 24);
  const GcStats gc = store.collectGarbage();
  EXPECT_EQ(gc.containersDemoted, 0u);
  EXPECT_EQ(coldContainers(), 0u);
}

TEST_F(TierTest, ColdReadsPromoteTransparentlyAndVerbatim) {
  std::vector<std::pair<Fp, ByteVec>> chunks;
  {
    FileBackupStore store(dir_, tiered());
    chunks = fillStore(store, 24);
    ASSERT_GT(store.collectGarbage().containersDemoted, 0u);
  }
  // Snapshot the cold frames: promotion must move these exact bytes.
  std::map<std::string, ByteVec> coldFrames;
  for (const auto& entry : fs::directory_iterator(dir_ + "/cold"))
    if (entry.path().extension() == ".fdc")
      coldFrames[entry.path().filename().string()] =
          readFile(entry.path().string());
  ASSERT_FALSE(coldFrames.empty());

  // A fresh instance (cold block cache) so reads genuinely hit the tier.
  FileBackupStore reopened(dir_, tiered());
  for (const auto& [fp, bytes] : chunks)
    EXPECT_EQ(reopened.getChunk(fp), bytes);

  const StoreReadStats rs = reopened.readStats();
  EXPECT_GT(rs.coldReads, 0u);
  EXPECT_GT(rs.promotions, 0u);
  EXPECT_LE(rs.promotions, rs.coldReads);

  // Every promoted frame is back in the hot tier, bit-identical, and its
  // cold copy is gone (exactly one durable copy at all times).
  EXPECT_EQ(coldContainers(), 0u);
  for (const auto& [name, frame] : coldFrames) {
    const std::string hotPath = dir_ + "/containers/" + name;
    ASSERT_TRUE(fs::exists(hotPath)) << name;
    EXPECT_EQ(readFile(hotPath), frame) << "promotion must preserve bytes";
  }

  // Re-reading is now purely hot: counters must not move.
  for (const auto& [fp, bytes] : chunks)
    EXPECT_EQ(reopened.getChunk(fp), bytes);
  EXPECT_EQ(reopened.readStats().coldReads, rs.coldReads);
  EXPECT_EQ(reopened.readStats().promotions, rs.promotions);
  EXPECT_TRUE(reopened.verify().ok());
}

TEST_F(TierTest, ReopenWithoutTierOptionsStillFindsColdContainers) {
  std::vector<std::pair<Fp, ByteVec>> chunks;
  {
    FileBackupStore store(dir_, tiered());
    chunks = fillStore(store, 24);
    ASSERT_GT(store.collectGarbage().containersDemoted, 0u);
  }
  // Default options: no tiering configured at all. The tier assignment is
  // discovered by scanning, so recovery is clean and every chunk readable.
  FileBackupStore reopened(dir_, StoreOptions{});
  EXPECT_EQ(reopened.recoveryStats().corruptContainers, 0u);
  EXPECT_EQ(reopened.recoveryStats().entriesDropped, 0u);
  EXPECT_EQ(reopened.recoveryStats().orphanContainersRemoved, 0u);
  for (const auto& [fp, bytes] : chunks)
    EXPECT_EQ(reopened.getChunk(fp), bytes);
  EXPECT_TRUE(reopened.verify().ok());
}

TEST_F(TierTest, GcReclaimsDemotedContainersFromTheColdTier) {
  FileBackupStore store(dir_, tiered());
  std::vector<Fp> doomed;
  for (int i = 0; i < 24; ++i) {
    const ByteVec bytes = chunkOfByte(static_cast<uint8_t>(i + 1));
    store.putChunk(fpOfContent(bytes), bytes);
    doomed.push_back(fpOfContent(bytes));
  }
  store.flush();
  store.recordBackup("drop", doomed);
  ASSERT_GT(store.collectGarbage().containersDemoted, 0u);
  ASSERT_GT(coldContainers(), 0u);

  // Now the backup is released: the next GC must reclaim dead containers
  // from BOTH tiers — a demoted container is not immortal.
  store.releaseBackup("drop");
  const GcStats gc = store.collectGarbage();
  EXPECT_EQ(gc.chunksReclaimed, doomed.size());
  EXPECT_EQ(coldContainers(), 0u);
  EXPECT_EQ(hotContainers(), 0u);
  EXPECT_TRUE(store.verify().ok());
}

TEST_F(TierTest, VerifyFlagsOrphanColdObjects) {
  FileBackupStore store(dir_, tiered());
  fillStore(store, 8);
  ASSERT_TRUE(store.verify().ok());
  writeFile(dir_ + "/cold/00000099.fdc", toBytes("stray cold object"));
  EXPECT_FALSE(store.verify().ok()) << "cold orphan must be reported";
}

TEST_F(TierTest, TierGaugesTrackPlacement) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "metrics disabled in this build";
  FileBackupStore store(dir_, tiered());
  fillStore(store, 24);
  store.collectGarbage();
  const auto snapshot = store.metricsSnapshot();
  const auto gauge = [&](const std::string& name) {
    const auto it = snapshot.gauges.find(name);
    return it == snapshot.gauges.end() ? int64_t{0} : it->second;
  };
  EXPECT_EQ(gauge("tier.hot_containers"),
            static_cast<int64_t>(hotContainers()));
  EXPECT_EQ(gauge("tier.cold_containers"),
            static_cast<int64_t>(coldContainers()));
  EXPECT_GT(gauge("tier.cold_bytes"), 0);
}

TEST(LocalObjectStoreTest, PutGetRemoveRenameListAndTornTmpSweep) {
  const std::string dir =
      (fs::temp_directory_path() / "local_object_store_test").string();
  fs::remove_all(dir);
  {
    LocalObjectStore store(dir);
    store.put("a.fdc", toBytes("alpha"));
  }
  // A torn put (crash mid-write) leaves a tmp file; reopening sweeps it.
  writeFile(dir + "/torn.fdc.tmp", toBytes("partial"));
  LocalObjectStore store(dir);
  EXPECT_FALSE(fs::exists(dir + "/torn.fdc.tmp"));

  EXPECT_TRUE(store.exists("a.fdc"));
  EXPECT_EQ(store.get("a.fdc"), toBytes("alpha"));
  EXPECT_THROW((void)store.get("missing"), std::runtime_error);
  store.put("b.fdc", toBytes("beta"));
  EXPECT_EQ(store.list().size(), 2u);
  store.rename("b.fdc", "b.fdc.corrupt");
  EXPECT_FALSE(store.exists("b.fdc"));
  EXPECT_TRUE(store.exists("b.fdc.corrupt"));
  EXPECT_TRUE(store.remove("a.fdc"));
  EXPECT_FALSE(store.remove("a.fdc")) << "second remove is an idempotent no";
  fs::remove_all(dir);
}

TEST(LocalObjectStoreTest, SimulatedLatencyIsApplied) {
  const std::string dir =
      (fs::temp_directory_path() / "local_object_store_sim_test").string();
  fs::remove_all(dir);
  ObjectStoreSim sim;
  sim.readLatencyUs = 2000;
  LocalObjectStore store(dir, sim);
  store.put("k", toBytes("v"));
  const auto t0 = std::chrono::steady_clock::now();
  (void)store.get("k");
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 1000) << "simulated read latency should be felt";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace freqdedup
