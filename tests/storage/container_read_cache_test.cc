// ContainerReadCache: capacity semantics (0 = disabled, 1, unbounded),
// LRU eviction, GC invalidation, and the admission-time payload CRC table
// that lets every cache hit be integrity-re-checked.
#include <gtest/gtest.h>

#include "common/crc32.h"
#include "obs/metrics.h"
#include "storage/backup_store.h"
#include "storage/container_read_cache.h"

namespace freqdedup {
namespace {

std::shared_ptr<const Container> makeContainer(uint32_t id, int chunks) {
  ContainerBuilder builder(1 << 20);
  for (int i = 0; i < chunks; ++i) {
    ByteVec bytes(64 + i, static_cast<uint8_t>(id * 31 + i));
    builder.add(/*fp=*/id * 100 + static_cast<uint32_t>(i),
                static_cast<uint32_t>(bytes.size()), bytes);
  }
  return std::make_shared<const Container>(builder.seal(id));
}

TEST(ContainerReadCache, DisabledCacheRetainsNothingButStillServes) {
  ContainerReadCache cache(0);
  const auto entry = cache.admit(1, makeContainer(1, 3));
  ASSERT_NE(entry.container, nullptr);
  EXPECT_EQ(entry.payloadCrcs->size(), 3u);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().admissions, 0u);
}

TEST(ContainerReadCache, SizeOneEvictsLeastRecentlyUsed) {
  ContainerReadCache cache(1);
  cache.admit(1, makeContainer(1, 2));
  EXPECT_TRUE(cache.get(1).has_value());
  cache.admit(2, makeContainer(2, 2));
  EXPECT_FALSE(cache.get(1).has_value()) << "capacity 1: admitting 2 evicts 1";
  EXPECT_TRUE(cache.get(2).has_value());
  if (obs::kObsEnabled) EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ContainerReadCache, UnboundedNeverEvicts) {
  ContainerReadCache cache(kUnboundedReadCache);
  for (uint32_t id = 0; id < 200; ++id) cache.admit(id, makeContainer(id, 1));
  EXPECT_EQ(cache.size(), 200u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (uint32_t id = 0; id < 200; ++id) EXPECT_TRUE(cache.get(id).has_value());
}

TEST(ContainerReadCache, InvalidateDropsEntryButKeepsInFlightCopiesValid) {
  ContainerReadCache cache(8);
  cache.admit(7, makeContainer(7, 2));
  const auto held = cache.get(7);  // an in-flight reader's copy
  ASSERT_TRUE(held.has_value());
  cache.invalidate(7);
  EXPECT_FALSE(cache.get(7).has_value());
  if (obs::kObsEnabled) EXPECT_EQ(cache.stats().invalidations, 1u);
  // The evicted shared state stays intact for the reader that holds it.
  EXPECT_EQ(held->container->id, 7u);
  EXPECT_EQ(held->payloadCrcs->size(), 2u);
}

TEST(ContainerReadCache, PayloadCrcsMatchEveryChunkAndDetectCorruption) {
  ContainerReadCache cache(4);
  const auto entry = cache.admit(3, makeContainer(3, 4));
  const Container& c = *entry.container;
  ASSERT_EQ(entry.payloadCrcs->size(), c.entries.size());
  for (size_t i = 0; i < c.entries.size(); ++i) {
    const ByteView payload =
        ByteView(c.data).subspan(c.entries[i].dataOffset, c.entries[i].size);
    EXPECT_EQ(crc32c(payload), (*entry.payloadCrcs)[i]);
  }
  // A flipped bit in a (hypothetically corrupted) copy no longer matches —
  // this is the re-check ContainerBackupStore applies on every serve.
  ByteVec corrupted(c.data.begin(), c.data.end());
  corrupted[c.entries[1].dataOffset] ^= 0x80;
  const ByteView badPayload = ByteView(corrupted).subspan(
      c.entries[1].dataOffset, c.entries[1].size);
  EXPECT_NE(crc32c(badPayload), (*entry.payloadCrcs)[1]);
}

TEST(ContainerReadCache, CountsHitsAndMisses) {
  ContainerReadCache cache(2);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.admit(1, makeContainer(1, 1));
  EXPECT_TRUE(cache.get(1).has_value());
  if (obs::kObsEnabled) {
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.admissions, 1u);
  }
}

}  // namespace
}  // namespace freqdedup
