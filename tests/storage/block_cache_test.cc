// BlockCache: byte-budget semantics (0 = disabled, finite, unbounded),
// actual-payload-byte accounting, admission rejects for objects larger than
// the whole budget, LRU/FIFO eviction order, GC invalidation, and the
// admission-time payload CRC table that lets every cache hit be
// integrity-re-checked. The budget regression test pins peak cached bytes
// at or under the budget across a mixed-size admission churn.
#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "storage/backup_store.h"
#include "storage/block_cache.h"

namespace freqdedup {
namespace {

std::shared_ptr<const Container> makeContainer(uint32_t id, int chunks,
                                               size_t chunkBytes = 64) {
  ContainerBuilder builder(64 << 20);
  for (int i = 0; i < chunks; ++i) {
    ByteVec bytes(chunkBytes + static_cast<size_t>(i),
                  static_cast<uint8_t>(id * 31 + i));
    builder.add(/*fp=*/id * 1000 + static_cast<uint32_t>(i),
                static_cast<uint32_t>(bytes.size()), bytes);
  }
  return std::make_shared<const Container>(builder.seal(id));
}

uint64_t chargeOf(uint32_t id, int chunks, size_t chunkBytes = 64) {
  return BlockCache::entryCharge(
      BlockCache::makeEntry(makeContainer(id, chunks, chunkBytes)));
}

TEST(BlockCache, DisabledCacheRetainsNothingButStillServes) {
  BlockCache cache(0);
  const auto entry = cache.admit(1, makeContainer(1, 3));
  ASSERT_NE(entry.container, nullptr);
  EXPECT_EQ(entry.payloadCrcs->size(), 3u);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.cachedBytes(), 0u);
  EXPECT_EQ(cache.stats().admissions, 0u);
  EXPECT_FALSE(cache.enabled());
}

TEST(BlockCache, ChargeAccountsPayloadBytesPlusPerChunkOverhead) {
  const auto container = makeContainer(5, 4);
  const auto entry = BlockCache::makeEntry(container);
  EXPECT_EQ(BlockCache::entryCharge(entry),
            container->data.size() + 4 * kBlockCachePerChunkOverhead);

  BlockCache cache(1 << 20);
  cache.admit(5, container);
  EXPECT_EQ(cache.cachedBytes(), BlockCache::entryCharge(entry));
}

TEST(BlockCache, AdmissionRejectsObjectLargerThanWholeBudget) {
  const uint64_t smallCharge = chargeOf(1, 1);
  BlockCache cache(smallCharge + 8);
  cache.admit(1, makeContainer(1, 1));
  EXPECT_TRUE(cache.get(1).has_value());

  // A container whose charge alone exceeds the budget is served but never
  // retained — and, critically, does not evict the resident working set.
  const auto big = cache.admit(2, makeContainer(2, 64, 4096));
  ASSERT_NE(big.container, nullptr);
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(1).has_value()) << "oversized admit must not evict";
  if (obs::kObsEnabled) {
    EXPECT_EQ(cache.stats().admissionRejects, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);
  }
}

TEST(BlockCache, BudgetForOneEvictsLeastRecentlyUsed) {
  // Budget sized to hold either container but not both.
  BlockCache cache(chargeOf(1, 2) + chargeOf(2, 2) - 1);
  cache.admit(1, makeContainer(1, 2));
  EXPECT_TRUE(cache.get(1).has_value());
  cache.admit(2, makeContainer(2, 2));
  EXPECT_FALSE(cache.get(1).has_value()) << "admitting 2 must evict 1";
  EXPECT_TRUE(cache.get(2).has_value());
  if (obs::kObsEnabled) EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BlockCache, LruAccessOrderDecidesTheVictim) {
  BlockCache cache(3 * chargeOf(0, 1));
  cache.admit(1, makeContainer(1, 1));
  cache.admit(2, makeContainer(2, 1));
  cache.admit(3, makeContainer(3, 1));
  EXPECT_TRUE(cache.get(1).has_value());  // 2 is now the LRU entry
  cache.admit(4, makeContainer(4, 1));
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_TRUE(cache.get(4).has_value());
}

TEST(BlockCache, FifoIgnoresAccessesWhenPickingTheVictim) {
  obs::MetricsRegistry registry;
  BlockCache cache(3 * chargeOf(0, 1), registry,
                   BlockCache::makePolicy(BlockCacheEviction::kFifo));
  cache.admit(1, makeContainer(1, 1));
  cache.admit(2, makeContainer(2, 1));
  cache.admit(3, makeContainer(3, 1));
  EXPECT_TRUE(cache.get(1).has_value());  // does NOT protect 1 under FIFO
  cache.admit(4, makeContainer(4, 1));
  EXPECT_FALSE(cache.get(1).has_value()) << "FIFO evicts oldest admission";
  EXPECT_TRUE(cache.get(2).has_value());
}

TEST(BlockCache, UnboundedNeverEvicts) {
  BlockCache cache(kUnboundedBlockCacheBytes);
  for (uint32_t id = 0; id < 200; ++id) cache.admit(id, makeContainer(id, 1));
  EXPECT_EQ(cache.size(), 200u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (uint32_t id = 0; id < 200; ++id) EXPECT_TRUE(cache.get(id).has_value());
}

TEST(BlockCache, InvalidateDropsEntryAndReleasesItsBytes) {
  BlockCache cache(1 << 20);
  cache.admit(7, makeContainer(7, 2));
  const auto held = cache.get(7);  // an in-flight reader's copy
  ASSERT_TRUE(held.has_value());
  cache.invalidate(7);
  EXPECT_FALSE(cache.get(7).has_value());
  EXPECT_EQ(cache.cachedBytes(), 0u);
  if (obs::kObsEnabled) EXPECT_EQ(cache.stats().invalidations, 1u);
  // The evicted shared state stays intact for the reader that holds it.
  EXPECT_EQ(held->container->id, 7u);
  EXPECT_EQ(held->payloadCrcs->size(), 2u);
}

TEST(BlockCache, PayloadCrcsMatchEveryChunkAndDetectCorruption) {
  BlockCache cache(1 << 20);
  const auto entry = cache.admit(3, makeContainer(3, 4));
  const Container& c = *entry.container;
  ASSERT_EQ(entry.payloadCrcs->size(), c.entries.size());
  for (size_t i = 0; i < c.entries.size(); ++i) {
    const ByteView payload =
        ByteView(c.data).subspan(c.entries[i].dataOffset, c.entries[i].size);
    EXPECT_EQ(crc32c(payload), (*entry.payloadCrcs)[i]);
  }
  // A flipped bit in a (hypothetically corrupted) copy no longer matches —
  // this is the re-check ContainerBackupStore applies on every serve.
  ByteVec corrupted(c.data.begin(), c.data.end());
  corrupted[c.entries[1].dataOffset] ^= 0x80;
  const ByteView badPayload = ByteView(corrupted).subspan(
      c.entries[1].dataOffset, c.entries[1].size);
  EXPECT_NE(crc32c(badPayload), (*entry.payloadCrcs)[1]);
}

TEST(BlockCache, CountsHitsMissesAndLookups) {
  BlockCache cache(1 << 20);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.admit(1, makeContainer(1, 1));
  EXPECT_TRUE(cache.get(1).has_value());
  if (obs::kObsEnabled) {
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.admissions, 1u);
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  }
}

// The budget is a hard ceiling: under a randomized churn of admissions with
// wildly mixed container sizes (some oversized, some tiny), the cache's
// peak charged bytes never exceed the budget, and re-admitting an already
// resident id never double-charges.
TEST(BlockCache, PeakCachedBytesNeverExceedBudgetUnderMixedSizes) {
  const uint64_t budget = 256 * 1024;
  BlockCache cache(budget);
  Rng rng(99);
  for (uint32_t round = 0; round < 300; ++round) {
    const uint32_t id = rng.next() % 40;
    const int chunks = 1 + static_cast<int>(rng.next() % 8);
    const size_t chunkBytes = 16 << (rng.next() % 10);  // 16 B .. 8 KiB
    const auto entry = cache.admit(id, makeContainer(id, chunks, chunkBytes));
    ASSERT_NE(entry.container, nullptr);
    ASSERT_LE(cache.cachedBytes(), budget)
        << "budget exceeded after admitting id " << id;
    if (rng.next() % 4 == 0) cache.get(rng.next() % 40);
    if (rng.next() % 16 == 0) cache.invalidate(rng.next() % 40);
  }
  const auto stats = cache.stats();
  EXPECT_LE(stats.peakCachedBytes, budget)
      << "peak charged bytes breached the budget";
  if (obs::kObsEnabled)
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses)
        << "lookup accounting must balance";
  cache.clear();
  EXPECT_EQ(cache.cachedBytes(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace freqdedup
