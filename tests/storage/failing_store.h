// Fault-injection BackupStore decorator for restore-path tests.
//
// Wraps any BackupStore and forwards every operation; the read path
// (getChunk / getChunks) can be made to fail, corrupt or delay the Nth
// chunk read, counted 1-based across both entry points. All injection state
// is atomic, so the wrapper is as thread-safe as the store it decorates —
// concurrent restore sessions can run through it, and the concurrency
// high-water mark records how many chunk-fetching calls overlapped (the
// lock-scope regression tests assert it exceeds 1).
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "storage/backup_store.h"

namespace freqdedup {

class FailingStore : public BackupStore {
 public:
  explicit FailingStore(BackupStore& inner) : inner_(&inner) {}

  // --- Injection knobs (0 disarms; reads are counted 1-based) ---

  /// The Nth chunk read throws std::runtime_error("injected read failure").
  void failReadAt(uint64_t n) { failAt_.store(n); }

  /// The Nth chunk read returns its bytes with one bit flipped.
  void corruptReadAt(uint64_t n) { corruptAt_.store(n); }

  /// Every getChunk/getChunks call sleeps this long (simulated I/O latency).
  void delayReads(std::chrono::milliseconds d) { delayMs_.store(d.count()); }

  void resetInjection() {
    failAt_.store(0);
    corruptAt_.store(0);
    delayMs_.store(0);
  }

  /// Chunk reads served (or attempted) so far.
  [[nodiscard]] uint64_t chunkReadCount() const { return reads_.load(); }

  /// Highest number of simultaneously in-flight getChunk/getChunks calls.
  [[nodiscard]] uint64_t maxConcurrentReads() const {
    return maxConcurrent_.load();
  }

  // --- BackupStore: read path with injection ---

  ByteVec getChunk(Fp cipherFp) override {
    const ReadScope scope(*this);
    maybeDelay();
    ByteVec bytes = inner_->getChunk(cipherFp);
    injectInto(bytes);
    return bytes;
  }

  std::vector<ByteVec> getChunks(std::span<const Fp> cipherFps) override {
    const ReadScope scope(*this);
    maybeDelay();
    std::vector<ByteVec> batch = inner_->getChunks(cipherFps);
    for (ByteVec& bytes : batch) injectInto(bytes);
    return batch;
  }

  // --- BackupStore: everything else forwards verbatim ---

  [[nodiscard]] bool hasChunk(Fp cipherFp) const override {
    return inner_->hasChunk(cipherFp);
  }
  bool putChunk(Fp cipherFp, ByteView bytes) override {
    return inner_->putChunk(cipherFp, bytes);
  }
  [[nodiscard]] std::vector<std::optional<ChunkPlacement>> chunkLocator(
      std::span<const Fp> cipherFps) const override {
    return inner_->chunkLocator(cipherFps);
  }
  [[nodiscard]] uint32_t chunkRefCount(Fp cipherFp) const override {
    return inner_->chunkRefCount(cipherFp);
  }
  void putBlob(const std::string& name, ByteView bytes) override {
    inner_->putBlob(name, bytes);
  }
  std::optional<ByteVec> getBlob(const std::string& name) override {
    return inner_->getBlob(name);
  }
  bool eraseBlob(const std::string& name) override {
    return inner_->eraseBlob(name);
  }
  [[nodiscard]] std::vector<std::string> listBlobs() override {
    return inner_->listBlobs();
  }
  void recordBackup(const std::string& name,
                    std::span<const Fp> chunkRefs) override {
    inner_->recordBackup(name, chunkRefs);
  }
  bool releaseBackup(const std::string& name) override {
    return inner_->releaseBackup(name);
  }
  [[nodiscard]] std::vector<std::string> listBackups() override {
    return inner_->listBackups();
  }
  std::optional<std::vector<Fp>> backupRefs(const std::string& name) override {
    return inner_->backupRefs(name);
  }
  GcStats collectGarbage() override { return inner_->collectGarbage(); }
  StoreCheckReport verify() override { return inner_->verify(); }
  void flush() override { inner_->flush(); }
  [[nodiscard]] BackupStoreStats stats() const override {
    return inner_->stats();
  }
  [[nodiscard]] StoreReadStats readStats() const override {
    return inner_->readStats();
  }
  [[nodiscard]] obs::MetricsSnapshot metricsSnapshot() const override {
    return inner_->metricsSnapshot();
  }
  [[nodiscard]] size_t containerCount() const override {
    return inner_->containerCount();
  }

 private:
  /// RAII in-flight counter feeding the concurrency high-water mark.
  struct ReadScope {
    explicit ReadScope(const FailingStore& store) : store_(store) {
      const uint64_t now = ++store_.concurrent_;
      uint64_t seen = store_.maxConcurrent_.load();
      while (now > seen &&
             !store_.maxConcurrent_.compare_exchange_weak(seen, now)) {
      }
    }
    ~ReadScope() { --store_.concurrent_; }
    const FailingStore& store_;
  };

  void maybeDelay() const {
    const int64_t ms = delayMs_.load();
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  /// Applies the per-chunk injection counter to one served chunk.
  void injectInto(ByteVec& bytes) {
    const uint64_t n = ++reads_;
    if (n == failAt_.load())
      throw std::runtime_error("injected read failure");
    if (n == corruptAt_.load() && !bytes.empty()) bytes[bytes.size() / 2] ^= 1;
  }

  BackupStore* inner_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> failAt_{0};
  std::atomic<uint64_t> corruptAt_{0};
  std::atomic<int64_t> delayMs_{0};
  mutable std::atomic<uint64_t> concurrent_{0};
  mutable std::atomic<uint64_t> maxConcurrent_{0};
};

}  // namespace freqdedup
