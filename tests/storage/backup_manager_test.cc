#include "storage/backup_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "chunking/cdc_chunker.h"
#include "common/rng.h"

namespace freqdedup {
namespace {

ByteVec randomContent(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

CdcParams smallCdc() {
  CdcParams p;
  p.minSize = 256;
  p.avgSize = 1024;
  p.maxSize = 4096;
  return p;
}

BackupOptions minhashOptions(EncryptionScheme scheme) {
  BackupOptions options;
  options.scheme = scheme;
  options.segmentParams.minBytes = 8 * 1024;
  options.segmentParams.avgBytes = 16 * 1024;
  options.segmentParams.maxBytes = 32 * 1024;
  options.segmentParams.avgChunkBytes = 1024;
  return options;
}

class BackupManagerSchemes
    : public ::testing::TestWithParam<EncryptionScheme> {};

TEST_P(BackupManagerSchemes, BackupRestoreRoundtrip) {
  BackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, minhashOptions(GetParam()));

  const ByteVec content = randomContent(1, 300 * 1024);
  const BackupOutcome outcome = manager.backup("file.bin", content);
  EXPECT_EQ(outcome.chunkCount,
            outcome.newChunks + outcome.duplicateChunks);
  EXPECT_EQ(manager.restore(outcome.fileRecipe, outcome.keyRecipe), content);
}

TEST_P(BackupManagerSchemes, SecondIdenticalBackupFullyDeduplicates) {
  BackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, minhashOptions(GetParam()));

  const ByteVec content = randomContent(2, 200 * 1024);
  (void)manager.backup("v1", content);
  const BackupOutcome second = manager.backup("v2", content);
  EXPECT_EQ(second.newChunks, 0u)
      << "identical content must deduplicate fully under " \
         "deterministic schemes";
  EXPECT_EQ(manager.restore(second.fileRecipe, second.keyRecipe), content);
}

TEST_P(BackupManagerSchemes, ModifiedBackupMostlyDeduplicates) {
  BackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, minhashOptions(GetParam()));

  ByteVec content = randomContent(3, 400 * 1024);
  (void)manager.backup("v1", content);
  // Clustered 2 % modification.
  for (size_t i = 100'000; i < 108'000; ++i) content[i] ^= 0xFF;
  const BackupOutcome second = manager.backup("v2", content);
  EXPECT_LT(second.newChunks, second.chunkCount / 3);
  EXPECT_EQ(manager.restore(second.fileRecipe, second.keyRecipe), content);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BackupManagerSchemes,
    ::testing::Values(EncryptionScheme::kMle, EncryptionScheme::kMinHash,
                      EncryptionScheme::kMinHashScrambled));

TEST(BackupManager, RecipePreservesOriginalOrderUnderScrambling) {
  BackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(
      store, km, chunker,
      minhashOptions(EncryptionScheme::kMinHashScrambled));

  const ByteVec content = randomContent(4, 150 * 1024);
  const BackupOutcome outcome = manager.backup("f", content);
  // Restoring via the recipe must reproduce the exact byte order even though
  // chunks were uploaded in scrambled order (Section 6.2).
  EXPECT_EQ(manager.restore(outcome.fileRecipe, outcome.keyRecipe), content);
  // Recipe sizes must sum to the file size in order.
  uint64_t total = 0;
  for (const auto& e : outcome.fileRecipe.entries) total += e.size;
  EXPECT_EQ(total, content.size());
}

TEST(BackupManager, StoreAndRestoreByNameWithSealedRecipes) {
  BackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});

  AesKey userKey{};
  userKey.fill(0x55);
  Rng rng(5);
  const ByteVec content = randomContent(6, 100 * 1024);
  const BackupOutcome outcome = manager.backup("docs/thesis.tex", content);
  manager.storeRecipes("docs/thesis.tex", outcome, userKey, rng);
  EXPECT_EQ(manager.restoreByName("docs/thesis.tex", userKey), content);
}

TEST(BackupManager, RestoreByNameMissingThrows) {
  BackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});
  AesKey userKey{};
  EXPECT_THROW(manager.restoreByName("ghost", userKey), std::runtime_error);
}

TEST(BackupManager, WrongUserKeyFailsRecipeParsing) {
  BackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});
  AesKey rightKey{}, wrongKey{};
  rightKey.fill(1);
  wrongKey.fill(2);
  Rng rng(7);
  const BackupOutcome outcome =
      manager.backup("f", randomContent(8, 50 * 1024));
  manager.storeRecipes("f", outcome, rightKey, rng);
  EXPECT_THROW(manager.restoreByName("f", wrongKey), std::runtime_error);
}

TEST(BackupManager, MleAndMinHashProduceDifferentCiphertexts) {
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  const ByteVec content = randomContent(9, 100 * 1024);

  BackupStore storeA;
  BackupManager mleManager(storeA, km, chunker, {});
  const auto mleOutcome = mleManager.backup("f", content);

  BackupStore storeB;
  BackupManager mhManager(storeB, km, chunker,
                          minhashOptions(EncryptionScheme::kMinHash));
  const auto mhOutcome = mhManager.backup("f", content);

  size_t differing = 0;
  ASSERT_EQ(mleOutcome.fileRecipe.entries.size(),
            mhOutcome.fileRecipe.entries.size());
  for (size_t i = 0; i < mleOutcome.fileRecipe.entries.size(); ++i) {
    differing += mleOutcome.fileRecipe.entries[i].cipherFp !=
                 mhOutcome.fileRecipe.entries[i].cipherFp;
  }
  EXPECT_EQ(differing, mleOutcome.fileRecipe.entries.size());
}

class ScrambleOrderProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScrambleOrderProperty, IsPermutationWithinSegments) {
  Rng rng(GetParam());
  const size_t count = 100;
  const std::vector<Segment> segments = {{0, 30}, {30, 31}, {31, 100}};
  const std::vector<size_t> order = scrambleOrder(count, segments, rng);
  ASSERT_EQ(order.size(), count);
  // Permutation overall.
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < count; ++i) EXPECT_EQ(sorted[i], i);
  // Each segment's indices stay within the segment.
  size_t pos = 0;
  for (const Segment& seg : segments) {
    for (size_t i = seg.begin; i < seg.end; ++i, ++pos) {
      EXPECT_GE(order[pos], seg.begin);
      EXPECT_LT(order[pos], seg.end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScrambleOrderProperty,
                         ::testing::Values(1, 2, 3, 99));

TEST(ScrambleOrder, SingletonSegmentUnchanged) {
  Rng rng(1);
  const std::vector<Segment> segments = {{0, 1}};
  EXPECT_EQ(scrambleOrder(1, segments, rng), std::vector<size_t>{0});
}

TEST(ScrambleOrder, RejectsNonCoveringSegments) {
  Rng rng(1);
  const std::vector<Segment> segments = {{0, 2}};
  EXPECT_THROW(scrambleOrder(5, segments, rng), std::logic_error);
}

class BackupManagerParallelism
    : public ::testing::TestWithParam<EncryptionScheme> {};

TEST_P(BackupManagerParallelism, ParallelEncryptionIsBitIdenticalToSerial) {
  const ByteVec content = randomContent(9, 400 * 1024);

  const auto runBackup = [&](uint32_t parallelism) {
    BackupStore store;
    KeyManager km(toBytes("secret"));
    CdcChunker chunker(smallCdc());
    BackupOptions options = minhashOptions(GetParam());
    options.parallelism = parallelism;
    BackupManager manager(store, km, chunker, options);
    BackupOutcome outcome = manager.backup("file.bin", content);
    EXPECT_EQ(manager.restore(outcome.fileRecipe, outcome.keyRecipe),
              content);
    return outcome;
  };

  const BackupOutcome serial = runBackup(1);
  const BackupOutcome parallel = runBackup(4);
  EXPECT_EQ(parallel.newChunks, serial.newChunks);
  EXPECT_EQ(parallel.duplicateChunks, serial.duplicateChunks);
  // Recipes must match byte for byte: parallel encryption only reorders the
  // computation, never the upload/storage order.
  EXPECT_EQ(serializeFileRecipe(parallel.fileRecipe),
            serializeFileRecipe(serial.fileRecipe));
  EXPECT_EQ(serializeKeyRecipe(parallel.keyRecipe),
            serializeKeyRecipe(serial.keyRecipe));
}

INSTANTIATE_TEST_SUITE_P(Schemes, BackupManagerParallelism,
                         ::testing::Values(EncryptionScheme::kMle,
                                           EncryptionScheme::kMinHash,
                                           EncryptionScheme::kMinHashScrambled));

}  // namespace
}  // namespace freqdedup
