#include "storage/backup_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "chunking/cdc_chunker.h"
#include "common/rng.h"
#include "storage/container_backup_store.h"

namespace freqdedup {
namespace {

ByteVec randomContent(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

CdcParams smallCdc() {
  CdcParams p;
  p.minSize = 256;
  p.avgSize = 1024;
  p.maxSize = 4096;
  return p;
}

BackupOptions minhashOptions(EncryptionScheme scheme) {
  BackupOptions options;
  options.scheme = scheme;
  options.segmentParams.minBytes = 8 * 1024;
  options.segmentParams.avgBytes = 16 * 1024;
  options.segmentParams.maxBytes = 32 * 1024;
  options.segmentParams.avgChunkBytes = 1024;
  return options;
}

class BackupManagerSchemes
    : public ::testing::TestWithParam<EncryptionScheme> {};

TEST_P(BackupManagerSchemes, BackupRestoreRoundtrip) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, minhashOptions(GetParam()));

  const ByteVec content = randomContent(1, 300 * 1024);
  const BackupOutcome outcome = manager.backup("file.bin", content);
  EXPECT_EQ(outcome.chunkCount,
            outcome.newChunks + outcome.duplicateChunks);
  EXPECT_EQ(manager.restore(outcome.fileRecipe, outcome.keyRecipe), content);
}

TEST_P(BackupManagerSchemes, SecondIdenticalBackupFullyDeduplicates) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, minhashOptions(GetParam()));

  const ByteVec content = randomContent(2, 200 * 1024);
  (void)manager.backup("v1", content);
  const BackupOutcome second = manager.backup("v2", content);
  EXPECT_EQ(second.newChunks, 0u)
      << "identical content must deduplicate fully under " \
         "deterministic schemes";
  EXPECT_EQ(manager.restore(second.fileRecipe, second.keyRecipe), content);
}

TEST_P(BackupManagerSchemes, ModifiedBackupMostlyDeduplicates) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, minhashOptions(GetParam()));

  ByteVec content = randomContent(3, 400 * 1024);
  (void)manager.backup("v1", content);
  // Clustered 2 % modification.
  for (size_t i = 100'000; i < 108'000; ++i) content[i] ^= 0xFF;
  const BackupOutcome second = manager.backup("v2", content);
  EXPECT_LT(second.newChunks, second.chunkCount / 3);
  EXPECT_EQ(manager.restore(second.fileRecipe, second.keyRecipe), content);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BackupManagerSchemes,
    ::testing::Values(EncryptionScheme::kMle, EncryptionScheme::kMinHash,
                      EncryptionScheme::kMinHashScrambled));

TEST(BackupManager, RecipePreservesOriginalOrderUnderScrambling) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(
      store, km, chunker,
      minhashOptions(EncryptionScheme::kMinHashScrambled));

  const ByteVec content = randomContent(4, 150 * 1024);
  const BackupOutcome outcome = manager.backup("f", content);
  // Restoring via the recipe must reproduce the exact byte order even though
  // chunks were uploaded in scrambled order (Section 6.2).
  EXPECT_EQ(manager.restore(outcome.fileRecipe, outcome.keyRecipe), content);
  // Recipe sizes must sum to the file size in order.
  uint64_t total = 0;
  for (const auto& e : outcome.fileRecipe.entries) total += e.size;
  EXPECT_EQ(total, content.size());
}

TEST(BackupManager, StoreAndRestoreByNameWithSealedRecipes) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});

  AesKey userKey{};
  userKey.fill(0x55);
  Rng rng(5);
  const ByteVec content = randomContent(6, 100 * 1024);
  const BackupOutcome outcome = manager.backup("docs/thesis.tex", content);
  manager.commitBackup("docs/thesis.tex", outcome, userKey, rng);
  EXPECT_EQ(manager.restoreByName("docs/thesis.tex", userKey), content);
}

TEST(BackupManager, RestoreByNameMissingThrows) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});
  AesKey userKey{};
  EXPECT_THROW(manager.restoreByName("ghost", userKey), std::runtime_error);
}

TEST(BackupManager, WrongUserKeyFailsRecipeParsing) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});
  AesKey rightKey{}, wrongKey{};
  rightKey.fill(1);
  wrongKey.fill(2);
  Rng rng(7);
  const BackupOutcome outcome =
      manager.backup("f", randomContent(8, 50 * 1024));
  manager.commitBackup("f", outcome, rightKey, rng);
  EXPECT_THROW(manager.restoreByName("f", wrongKey), std::runtime_error);
}

TEST(BackupManager, MleAndMinHashProduceDifferentCiphertexts) {
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  const ByteVec content = randomContent(9, 100 * 1024);

  MemBackupStore storeA;
  BackupManager mleManager(storeA, km, chunker, {});
  const auto mleOutcome = mleManager.backup("f", content);

  MemBackupStore storeB;
  BackupManager mhManager(storeB, km, chunker,
                          minhashOptions(EncryptionScheme::kMinHash));
  const auto mhOutcome = mhManager.backup("f", content);

  size_t differing = 0;
  ASSERT_EQ(mleOutcome.fileRecipe.entries.size(),
            mhOutcome.fileRecipe.entries.size());
  for (size_t i = 0; i < mleOutcome.fileRecipe.entries.size(); ++i) {
    differing += mleOutcome.fileRecipe.entries[i].cipherFp !=
                 mhOutcome.fileRecipe.entries[i].cipherFp;
  }
  EXPECT_EQ(differing, mleOutcome.fileRecipe.entries.size());
}

class ScrambleOrderProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScrambleOrderProperty, IsPermutationWithinSegments) {
  Rng rng(GetParam());
  const size_t count = 100;
  const std::vector<Segment> segments = {{0, 30}, {30, 31}, {31, 100}};
  const std::vector<size_t> order = scrambleOrder(count, segments, rng);
  ASSERT_EQ(order.size(), count);
  // Permutation overall.
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < count; ++i) EXPECT_EQ(sorted[i], i);
  // Each segment's indices stay within the segment.
  size_t pos = 0;
  for (const Segment& seg : segments) {
    for (size_t i = seg.begin; i < seg.end; ++i, ++pos) {
      EXPECT_GE(order[pos], seg.begin);
      EXPECT_LT(order[pos], seg.end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScrambleOrderProperty,
                         ::testing::Values(1, 2, 3, 99));

TEST(ScrambleOrder, SingletonSegmentUnchanged) {
  Rng rng(1);
  const std::vector<Segment> segments = {{0, 1}};
  EXPECT_EQ(scrambleOrder(1, segments, rng), std::vector<size_t>{0});
}

TEST(ScrambleOrder, RejectsNonCoveringSegments) {
  Rng rng(1);
  const std::vector<Segment> segments = {{0, 2}};
  EXPECT_THROW(scrambleOrder(5, segments, rng), std::logic_error);
}

class BackupManagerParallelism
    : public ::testing::TestWithParam<EncryptionScheme> {};

TEST_P(BackupManagerParallelism, ParallelEncryptionIsBitIdenticalToSerial) {
  const ByteVec content = randomContent(9, 400 * 1024);

  const auto runBackup = [&](uint32_t parallelism) {
    MemBackupStore store;
    KeyManager km(toBytes("secret"));
    CdcChunker chunker(smallCdc());
    BackupOptions options = minhashOptions(GetParam());
    options.parallelism = parallelism;
    BackupManager manager(store, km, chunker, options);
    BackupOutcome outcome = manager.backup("file.bin", content);
    EXPECT_EQ(manager.restore(outcome.fileRecipe, outcome.keyRecipe),
              content);
    return outcome;
  };

  const BackupOutcome serial = runBackup(1);
  const BackupOutcome parallel = runBackup(4);
  EXPECT_EQ(parallel.newChunks, serial.newChunks);
  EXPECT_EQ(parallel.duplicateChunks, serial.duplicateChunks);
  // Recipes must match byte for byte: parallel encryption only reorders the
  // computation, never the upload/storage order.
  EXPECT_EQ(serializeFileRecipe(parallel.fileRecipe),
            serializeFileRecipe(serial.fileRecipe));
  EXPECT_EQ(serializeKeyRecipe(parallel.keyRecipe),
            serializeKeyRecipe(serial.keyRecipe));
}

INSTANTIATE_TEST_SUITE_P(Schemes, BackupManagerParallelism,
                         ::testing::Values(EncryptionScheme::kMle,
                                           EncryptionScheme::kMinHash,
                                           EncryptionScheme::kMinHashScrambled));

TEST(BackupManager, RecipesCarryPlaintextFingerprints) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});
  const BackupOutcome outcome =
      manager.backup("f", randomContent(11, 100 * 1024));
  for (const RecipeEntry& e : outcome.fileRecipe.entries)
    EXPECT_NE(e.plainFp, 0u);
}

TEST(BackupManager, RestoreDetectsSubstitutedCiphertext) {
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  const ByteVec content = randomContent(12, 60 * 1024);

  MemBackupStore honest;
  BackupManager manager(honest, km, chunker, {});
  const BackupOutcome outcome = manager.backup("f", content);

  // A tampering store that hands back garbage under the recipe's first
  // ciphertext fingerprint.
  const Fp victim = outcome.fileRecipe.entries[0].cipherFp;
  MemBackupStore swapped;
  BackupManager swappedManager(swapped, km, chunker, {});
  for (const RecipeEntry& e : outcome.fileRecipe.entries) {
    if (e.cipherFp == victim) {
      swapped.putChunk(e.cipherFp, ByteVec(e.size, 0xEE));
    } else {
      swapped.putChunk(e.cipherFp, honest.getChunk(e.cipherFp));
    }
  }
  EXPECT_THROW(
      swappedManager.restore(outcome.fileRecipe, outcome.keyRecipe),
      std::runtime_error);
}

TEST(BackupManager, RestoreDetectsWrongDecryptionKey) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});
  const ByteVec content = randomContent(13, 60 * 1024);
  const BackupOutcome outcome = manager.backup("f", content);

  KeyRecipe tampered = outcome.keyRecipe;
  tampered.keys[0][0] ^= 0x01;
  // The ciphertext is authentic, but decryption under the wrong key yields
  // a plaintext whose fingerprint no longer matches the recipe.
  EXPECT_THROW(manager.restore(outcome.fileRecipe, tampered),
               std::runtime_error);
}

TEST(BackupManager, DeleteBackupReleasesReferencesAndRecipes) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});
  AesKey userKey{};
  userKey.fill(0x11);
  Rng rng(14);

  const ByteVec content = randomContent(15, 80 * 1024);
  const BackupOutcome outcome = manager.backup("doomed", content);
  manager.commitBackup("doomed", outcome, userKey, rng);
  ASSERT_EQ(manager.listBackups(), std::vector<std::string>{"doomed"});

  EXPECT_TRUE(manager.deleteBackup("doomed"));
  EXPECT_FALSE(manager.deleteBackup("doomed"));
  EXPECT_TRUE(manager.listBackups().empty());
  EXPECT_THROW(manager.restoreByName("doomed", userKey), std::runtime_error);

  const GcStats gc = store.collectGarbage();
  EXPECT_GT(gc.chunksReclaimed, 0u);
  EXPECT_EQ(store.stats().uniqueChunks, 0u) << "all chunks were unreferenced";
  EXPECT_TRUE(store.verify().ok());
}

TEST(BackupManager, RecommittingANameStaysRestorableAndGcSafe) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});
  AesKey userKey{};
  userKey.fill(0x33);
  Rng rng(18);

  ByteVec content = randomContent(19, 150 * 1024);
  manager.commitBackup("x", manager.backup("x", content), userKey, rng);
  for (size_t i = 10'000; i < 14'000; ++i) content[i] ^= 0xAA;
  manager.commitBackup("x", manager.backup("x", content), userKey, rng);

  const GcStats gc = store.collectGarbage();
  EXPECT_GT(gc.chunksReclaimed, 0u) << "v1-only chunks become unreferenced";
  EXPECT_EQ(manager.restoreByName("x", userKey), content);
  EXPECT_EQ(manager.listBackups(), std::vector<std::string>{"x"});
  EXPECT_TRUE(store.verify().ok());
}

TEST(BackupManager, DeleteOneOfTwoSharingBackupsKeepsSharedChunks) {
  MemBackupStore store;
  KeyManager km(toBytes("secret"));
  CdcChunker chunker(smallCdc());
  BackupManager manager(store, km, chunker, {});
  AesKey userKey{};
  userKey.fill(0x22);
  Rng rng(16);

  ByteVec content = randomContent(17, 200 * 1024);
  const BackupOutcome first = manager.backup("v1", content);
  manager.commitBackup("v1", first, userKey, rng);
  for (size_t i = 50'000; i < 54'000; ++i) content[i] ^= 0xFF;
  const BackupOutcome second = manager.backup("v2", content);
  manager.commitBackup("v2", second, userKey, rng);

  EXPECT_TRUE(manager.deleteBackup("v1"));
  store.collectGarbage();
  EXPECT_EQ(manager.restoreByName("v2", userKey), content)
      << "shared chunks must survive deleting the other backup";
  EXPECT_TRUE(store.verify().ok());
}

}  // namespace
}  // namespace freqdedup
