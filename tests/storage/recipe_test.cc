#include "storage/recipe.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

FileRecipe sampleFileRecipe() {
  FileRecipe recipe;
  recipe.fileName = "docs/report.pdf";
  recipe.fileSize = 123456;
  recipe.entries = {{0xAAAA, 8192}, {0xBBBB, 4096}, {0xCCCC, 100}};
  return recipe;
}

KeyRecipe sampleKeyRecipe() {
  KeyRecipe recipe;
  for (uint8_t i = 1; i <= 3; ++i) {
    AesKey key{};
    key.fill(i);
    recipe.keys.push_back(key);
  }
  return recipe;
}

TEST(FileRecipe, SerializeParseRoundtrip) {
  const FileRecipe original = sampleFileRecipe();
  EXPECT_EQ(parseFileRecipe(serializeFileRecipe(original)), original);
}

TEST(FileRecipe, EmptyRecipeRoundtrip) {
  FileRecipe empty;
  empty.fileName = "empty";
  EXPECT_EQ(parseFileRecipe(serializeFileRecipe(empty)), empty);
}

TEST(FileRecipe, CorruptionDetected) {
  ByteVec bytes = serializeFileRecipe(sampleFileRecipe());
  bytes[5] ^= 0x40;
  EXPECT_THROW(parseFileRecipe(bytes), std::runtime_error);
}

TEST(FileRecipe, TruncationDetected) {
  ByteVec bytes = serializeFileRecipe(sampleFileRecipe());
  bytes.resize(bytes.size() - 6);
  EXPECT_THROW(parseFileRecipe(bytes), std::runtime_error);
}

TEST(KeyRecipe, SerializeParseRoundtrip) {
  const KeyRecipe original = sampleKeyRecipe();
  EXPECT_EQ(parseKeyRecipe(serializeKeyRecipe(original)), original);
}

TEST(KeyRecipe, CorruptionDetected) {
  ByteVec bytes = serializeKeyRecipe(sampleKeyRecipe());
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW(parseKeyRecipe(bytes), std::runtime_error);
}

TEST(RecipeSealing, SealOpenRoundtrip) {
  AesKey userKey{};
  userKey.fill(0x42);
  Rng rng(1);
  const ByteVec plaintext = serializeFileRecipe(sampleFileRecipe());
  const ByteVec sealed = sealWithUserKey(userKey, plaintext, rng);
  EXPECT_EQ(openWithUserKey(userKey, sealed), plaintext);
}

TEST(RecipeSealing, RandomizedAcrossSealings) {
  // Recipes are conventional (randomized) encryption: sealing the same
  // plaintext twice must produce different blobs (Section 3.3).
  AesKey userKey{};
  userKey.fill(0x42);
  Rng rng(2);
  const ByteVec plaintext = toBytes("identical recipe bytes");
  EXPECT_NE(sealWithUserKey(userKey, plaintext, rng),
            sealWithUserKey(userKey, plaintext, rng));
}

TEST(RecipeSealing, WrongKeyGarbles) {
  AesKey rightKey{}, wrongKey{};
  rightKey.fill(0x01);
  wrongKey.fill(0x02);
  Rng rng(3);
  const ByteVec plaintext = toBytes("secret recipe");
  const ByteVec sealed = sealWithUserKey(rightKey, plaintext, rng);
  EXPECT_NE(openWithUserKey(wrongKey, sealed), plaintext);
}

TEST(RecipeSealing, TruncatedBlobRejected) {
  AesKey userKey{};
  EXPECT_THROW(openWithUserKey(userKey, ByteVec(8)), std::runtime_error);
}

TEST(RecipeSealing, SealedRecipesParseAfterUnseal) {
  AesKey userKey{};
  userKey.fill(0x07);
  Rng rng(4);
  const KeyRecipe original = sampleKeyRecipe();
  const ByteVec sealed =
      sealWithUserKey(userKey, serializeKeyRecipe(original), rng);
  EXPECT_EQ(parseKeyRecipe(openWithUserKey(userKey, sealed)), original);
}

}  // namespace
}  // namespace freqdedup
