// Fault-injection restore tests: a mid-restore read error or bit-flip must
// surface as a clean exception with no partial-sink silent success — the
// sink observes a strict prefix of the object, never wrong or reordered
// bytes — at restore parallelism 1 (serial engine) and 4 (prefetch +
// parallel decrypt), and the session must stay usable afterwards.
#include <gtest/gtest.h>

#include "chunking/cdc_chunker.h"
#include "client/dedup_client.h"
#include "common/rng.h"
#include "failing_store.h"
#include "storage/container_backup_store.h"

namespace freqdedup {
namespace {

ByteVec randomContent(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

CdcParams smallCdc() {
  CdcParams p;
  p.minSize = 256;
  p.avgSize = 1024;
  p.maxSize = 4096;
  return p;
}

class FailingStoreRestore : public ::testing::TestWithParam<uint32_t> {
 protected:
  FailingStoreRestore()
      : store_(/*containerBytes=*/16 * 1024),
        failing_(store_),
        km_(toBytes("failing-secret")),
        chunker_(smallCdc()),
        content_(randomContent(31, 128 * 1024)) {}

  [[nodiscard]] uint32_t parallelism() const { return GetParam(); }

  [[nodiscard]] DedupClient makeClient() {
    BackupOptions backup;
    backup.parallelism = parallelism();
    RestoreOptions restore;
    restore.parallelism = parallelism();
    restore.readAheadBatches = 2;
    restore.batchBytes = 8 * 1024;  // several batches across containers
    restore.maxBatchContainers = 2;
    return DedupClient(failing_, km_, chunker_, backup, restore);
  }

  /// Collects sink output; asserts afterwards that it is a strict prefix.
  void expectStrictPrefix(const ByteVec& collected) const {
    ASSERT_LT(collected.size(), content_.size())
        << "a failed restore must not deliver the full object";
    EXPECT_TRUE(std::equal(collected.begin(), collected.end(),
                           content_.begin()))
        << "sink bytes must be a prefix of the object, in order";
  }

  MemBackupStore store_;
  FailingStore failing_;
  KeyManager km_;
  CdcChunker chunker_;
  ByteVec content_;
};

TEST_P(FailingStoreRestore, ReadErrorSurfacesCleanlyWithoutSilentSuccess) {
  DedupClient client = makeClient();
  BackupSession session = client.beginBackup("obj");
  session.append(content_);
  const BackupOutcome outcome = session.finish();

  RestoreSession restore =
      client.beginRestore(outcome.fileRecipe, outcome.keyRecipe);
  ASSERT_GT(restore.chunkCount(), 8u) << "need several chunks to fail midway";

  // Fail roughly mid-object (relative to the running read counter).
  failing_.failReadAt(failing_.chunkReadCount() + restore.chunkCount() / 2);
  ByteVec collected;
  EXPECT_THROW(
      restore.streamTo([&](ByteView b) { appendBytes(collected, b); }),
      std::runtime_error);
  expectStrictPrefix(collected);

  // The engine must be clean afterwards: the same session restores fully.
  failing_.resetInjection();
  EXPECT_EQ(restore.readAll(), content_);
}

TEST_P(FailingStoreRestore, BitFlipSurfacesAsFingerprintMismatch) {
  DedupClient client = makeClient();
  BackupSession session = client.beginBackup("obj");
  session.append(content_);
  const BackupOutcome outcome = session.finish();

  RestoreSession restore =
      client.beginRestore(outcome.fileRecipe, outcome.keyRecipe);
  failing_.corruptReadAt(failing_.chunkReadCount() + restore.chunkCount() / 2);

  ByteVec collected;
  try {
    restore.streamTo([&](ByteView b) { appendBytes(collected, b); });
    FAIL() << "a corrupted chunk must abort the restore";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos)
        << e.what();
  }
  expectStrictPrefix(collected);

  failing_.resetInjection();
  EXPECT_EQ(restore.readAll(), content_);
}

TEST_P(FailingStoreRestore, FailureOnVeryFirstReadDeliversNothing) {
  DedupClient client = makeClient();
  BackupSession session = client.beginBackup("obj");
  session.append(content_);
  const BackupOutcome outcome = session.finish();

  RestoreSession restore =
      client.beginRestore(outcome.fileRecipe, outcome.keyRecipe);
  failing_.failReadAt(failing_.chunkReadCount() + 1);
  ByteVec collected;
  EXPECT_THROW(
      restore.streamTo([&](ByteView b) { appendBytes(collected, b); }),
      std::runtime_error);
  EXPECT_TRUE(collected.empty());
}

INSTANTIATE_TEST_SUITE_P(Parallelism, FailingStoreRestore,
                         ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace freqdedup
