// Corruption/fuzz-style suites for the on-disk deserializers: containers and
// recipes must reject every malformed input with std::runtime_error — never
// crash, over-allocate, or read out of bounds (run under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/varint.h"
#include "storage/container.h"
#include "storage/recipe.h"

namespace freqdedup {
namespace {

/// Appends a fresh CRC so crafted corruption reaches the structural checks
/// behind the checksum.
ByteVec withCrc(ByteVec body) {
  putU32(body, crc32c(body));
  return body;
}

/// Strips the trailing CRC, returning the mutable body.
ByteVec bodyOf(const ByteVec& framed) {
  return ByteVec(framed.begin(), framed.end() - 4);
}

ByteVec sampleContainerBytes() {
  ContainerBuilder builder(1024);
  builder.add(0xAAAA, 5, toBytes("hello"));
  builder.add(0xBBBB, 7, toBytes("world!!"));
  return serializeContainer(builder.seal(3));
}

ByteVec sampleFileRecipeBytes() {
  FileRecipe recipe;
  recipe.fileName = "docs/report.pdf";
  recipe.fileSize = 1234;
  recipe.entries = {{0xAAAA, 512, 0x1111}, {0xBBBB, 722, 0x2222}};
  return serializeFileRecipe(recipe);
}

ByteVec sampleKeyRecipeBytes() {
  KeyRecipe recipe;
  for (uint8_t i = 1; i <= 3; ++i) {
    AesKey key{};
    key.fill(i);
    recipe.keys.push_back(key);
  }
  return serializeKeyRecipe(recipe);
}

template <typename Parse>
void expectEveryTruncationRejected(const ByteVec& bytes, Parse parse) {
  for (size_t len = 0; len < bytes.size(); ++len) {
    const ByteVec cut(bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_THROW(parse(cut), std::runtime_error) << "length " << len;
  }
}

template <typename Parse>
void expectEveryBitFlipRejected(const ByteVec& bytes, Parse parse) {
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (const uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      ByteVec flipped = bytes;
      flipped[i] ^= mask;
      EXPECT_THROW(parse(flipped), std::runtime_error)
          << "byte " << i << " mask " << int(mask);
    }
  }
}

TEST(ContainerCorruption, EveryTruncationRejected) {
  expectEveryTruncationRejected(sampleContainerBytes(),
                                [](ByteView b) { return parseContainer(b); });
}

TEST(ContainerCorruption, EveryBitFlipRejected) {
  expectEveryBitFlipRejected(sampleContainerBytes(),
                             [](ByteView b) { return parseContainer(b); });
}

TEST(ContainerCorruption, BadMagicRejected) {
  ByteVec body = bodyOf(sampleContainerBytes());
  body[0] ^= 0xFF;
  EXPECT_THROW(parseContainer(withCrc(body)), std::runtime_error);
}

TEST(ContainerCorruption, HugeEntryCountRejectedWithoutAllocating) {
  // magic, id, then a pathological entry count with a valid CRC: the parser
  // must validate the count against the remaining input before reserving.
  ByteVec body;
  putU32(body, 0x46444354);  // "FDCT"
  putU32(body, 1);
  putVarint(body, uint64_t{0xFFFFFFFFFFFFFF});
  EXPECT_THROW(parseContainer(withCrc(body)), std::runtime_error);
}

TEST(ContainerCorruption, EntryPayloadOutOfRangeRejected) {
  // One entry claiming 100 bytes at offset 0 while the data section only
  // holds 3: structurally valid framing, inconsistent payload bounds.
  ByteVec body;
  putU32(body, 0x46444354);
  putU32(body, 1);
  putVarint(body, 1);       // one entry
  putU64(body, 0xABCD);     // fp
  putU32(body, 100);        // size
  putVarint(body, 0);       // dataOffset
  putVarint(body, 3);       // data length
  appendBytes(body, toBytes("abc"));
  EXPECT_THROW(parseContainer(withCrc(body)), std::runtime_error);
}

TEST(ContainerCorruption, TrailingGarbageRejected) {
  ByteVec body = bodyOf(sampleContainerBytes());
  body.push_back(0x00);
  EXPECT_THROW(parseContainer(withCrc(body)), std::runtime_error);
}

// --- Codec (V2) frame coverage: the compressed path must uphold the same
// reject-everything-malformed contract, plus validate the codec byte and
// bound decompression against the declared sizes before allocating. ---

ByteVec sampleCompressedContainerBytes() {
  ContainerBuilder builder(1 << 20);
  ByteVec chunk(4096);
  for (size_t i = 0; i < chunk.size(); ++i)
    chunk[i] = static_cast<uint8_t>("abcabcabd"[i % 9]);
  builder.add(0xAAAA, static_cast<uint32_t>(chunk.size()), chunk);
  builder.add(0xBBBB, static_cast<uint32_t>(chunk.size()), chunk);
  const ByteVec frame = serializeContainer(
      builder.seal(9), effectiveCodec(ContainerCodec::kZstd));
  // Repetitive payload must have taken the codec frame, or the sweeps below
  // would silently exercise the legacy path instead.
  EXPECT_EQ(getU32(frame, 0), kContainerMagicV2);
  return frame;
}

/// A structurally valid codec-frame body up to (but excluding) the stored
/// data section — the crafted-size-claim tests append their own claims.
ByteVec codecFrameHeader(uint8_t codecByte, uint32_t chunkSize) {
  ByteVec body;
  putU32(body, kContainerMagicV2);
  putU32(body, 9);
  body.push_back(codecByte);
  putVarint(body, 1);          // one entry
  putU64(body, 0xABCD);        // fp
  putU32(body, chunkSize);     // size
  putVarint(body, 0);          // dataOffset
  return body;
}

TEST(CompressedContainerCorruption, RoundTripsAndRecordsCodec) {
  const Container parsed = parseContainer(sampleCompressedContainerBytes());
  EXPECT_EQ(parsed.id, 9u);
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.data.size(), 2u * 4096u);
  EXPECT_NE(parsed.storageCodec, ContainerCodec::kNone);
}

TEST(CompressedContainerCorruption, EveryTruncationRejected) {
  expectEveryTruncationRejected(sampleCompressedContainerBytes(),
                                [](ByteView b) { return parseContainer(b); });
}

TEST(CompressedContainerCorruption, EveryBitFlipRejected) {
  expectEveryBitFlipRejected(sampleCompressedContainerBytes(),
                             [](ByteView b) { return parseContainer(b); });
}

TEST(CompressedContainerCorruption, CraftedCodecByteRejected) {
  // Flip the codec byte to kNone (the serializer never writes it) and to
  // values no build understands — each with a freshly valid CRC, so the
  // rejection comes from codec validation, not the checksum.
  const ByteVec frame = sampleCompressedContainerBytes();
  constexpr size_t kCodecByteOffset = 8;  // after magic + id
  for (const uint8_t crafted : {uint8_t{0}, uint8_t{3}, uint8_t{0x7F},
                                uint8_t{0xFF}}) {
    ByteVec body = bodyOf(frame);
    body[kCodecByteOffset] = crafted;
    EXPECT_THROW(parseContainer(withCrc(body)), std::runtime_error)
        << "codec byte " << int(crafted);
  }
}

TEST(CompressedContainerCorruption, HugeRawSizeClaimRejectedBeforeAllocating) {
  // rawLen beyond kMaxContainerRawBytes must be rejected up front; were the
  // parser to trust it, this tiny frame would trigger a multi-exabyte
  // allocation.
  ByteVec body = codecFrameHeader(
      static_cast<uint8_t>(ContainerCodec::kDeflate), /*chunkSize=*/16);
  putVarint(body, uint64_t{1} << 60);  // raw length claim
  putVarint(body, 4);                  // stored length
  appendBytes(body, toBytes("abcd"));
  EXPECT_THROW(parseContainer(withCrc(body)), std::runtime_error);
}

TEST(CompressedContainerCorruption, ZeroRawSizeClaimRejected) {
  ByteVec body = codecFrameHeader(
      static_cast<uint8_t>(ContainerCodec::kDeflate), /*chunkSize=*/16);
  putVarint(body, 0);  // raw length claim
  putVarint(body, 4);
  appendBytes(body, toBytes("abcd"));
  EXPECT_THROW(parseContainer(withCrc(body)), std::runtime_error);
}

TEST(CompressedContainerCorruption, EntryBeyondRawSizeClaimRejected) {
  // The entry declares a 100-byte chunk while rawLen claims only 10 bytes of
  // decompressed data: extent validation runs against the claim *before*
  // decompression, so no output is ever produced for this frame.
  ByteVec body = codecFrameHeader(
      static_cast<uint8_t>(ContainerCodec::kDeflate), /*chunkSize=*/100);
  putVarint(body, 10);  // raw length claim smaller than the entry extent
  putVarint(body, 4);
  appendBytes(body, toBytes("abcd"));
  EXPECT_THROW(parseContainer(withCrc(body)), std::runtime_error);
}

TEST(CompressedContainerCorruption, StoredNotSmallerThanRawRejected) {
  // storedLen >= rawLen is impossible output from the serializer (it falls
  // back to the legacy frame instead), so the parser treats it as corruption.
  ByteVec body = codecFrameHeader(
      static_cast<uint8_t>(ContainerCodec::kDeflate), /*chunkSize=*/4);
  putVarint(body, 4);  // raw length claim
  putVarint(body, 4);  // stored == raw
  appendBytes(body, toBytes("abcd"));
  EXPECT_THROW(parseContainer(withCrc(body)), std::runtime_error);
}

TEST(CompressedContainerCorruption, StoredLengthSpillingPastBodyRejected) {
  ByteVec body = codecFrameHeader(
      static_cast<uint8_t>(ContainerCodec::kDeflate), /*chunkSize=*/16);
  putVarint(body, 64);    // raw length claim
  putVarint(body, 1000);  // stored length far beyond the input
  appendBytes(body, toBytes("abcd"));
  EXPECT_THROW(parseContainer(withCrc(body)), std::runtime_error);
}

TEST(CompressedContainerCorruption, IncompressiblePayloadFallsBackToLegacy) {
  // Serializing with a codec must never grow the frame: high-entropy
  // (ciphertext-like) payloads take the bit-identical legacy frame.
  ContainerBuilder builder(1 << 20);
  ByteVec noise(1024);
  uint64_t x = 0x9E3779B97F4A7C15ull;
  for (auto& b : noise) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<uint8_t>(x);
  }
  builder.add(0xCCCC, static_cast<uint32_t>(noise.size()), noise);
  const Container container = builder.seal(4);
  const ByteVec plain = serializeContainer(container);
  const ByteVec viaCodec =
      serializeContainer(container, effectiveCodec(ContainerCodec::kZstd));
  EXPECT_EQ(viaCodec, plain) << "fallback frame must be bit-identical";
}

TEST(FileRecipeCorruption, EveryTruncationRejected) {
  expectEveryTruncationRejected(sampleFileRecipeBytes(),
                                [](ByteView b) { return parseFileRecipe(b); });
}

TEST(FileRecipeCorruption, EveryBitFlipRejected) {
  expectEveryBitFlipRejected(sampleFileRecipeBytes(),
                             [](ByteView b) { return parseFileRecipe(b); });
}

TEST(FileRecipeCorruption, WrongMagicAndVersionRejected) {
  ByteVec magicFlipped = bodyOf(sampleFileRecipeBytes());
  magicFlipped[0] ^= 0xFF;
  EXPECT_THROW(parseFileRecipe(withCrc(magicFlipped)), std::runtime_error);

  ByteVec versionBumped = bodyOf(sampleFileRecipeBytes());
  versionBumped[4] ^= 0xFF;
  EXPECT_THROW(parseFileRecipe(withCrc(versionBumped)), std::runtime_error);
}

TEST(FileRecipeCorruption, HugeEntryCountRejectedWithoutAllocating) {
  ByteVec body;
  putU32(body, 0x46445246);  // "FDRF"
  putU32(body, 2);           // version
  putVarint(body, 1);        // name length
  body.push_back('x');
  putU64(body, 10);          // file size
  putVarint(body, uint64_t{0xFFFFFFFFFFFFFF});
  EXPECT_THROW(parseFileRecipe(withCrc(body)), std::runtime_error);
}

TEST(FileRecipeCorruption, NameLengthSpillingIntoCrcRejected) {
  // A name length that would make the parser read past the CRC-covered body.
  ByteVec body;
  putU32(body, 0x46445246);
  putU32(body, 2);
  putVarint(body, 1000);  // claimed name length far beyond the input
  body.push_back('x');
  EXPECT_THROW(parseFileRecipe(withCrc(body)), std::runtime_error);
}

TEST(KeyRecipeCorruption, EveryTruncationRejected) {
  expectEveryTruncationRejected(sampleKeyRecipeBytes(),
                                [](ByteView b) { return parseKeyRecipe(b); });
}

TEST(KeyRecipeCorruption, EveryBitFlipRejected) {
  expectEveryBitFlipRejected(sampleKeyRecipeBytes(),
                             [](ByteView b) { return parseKeyRecipe(b); });
}

TEST(KeyRecipeCorruption, HugeKeyCountRejectedWithoutAllocating) {
  ByteVec body;
  putU32(body, 0x4644524B);  // "FDRK"
  putU32(body, 2);
  putVarint(body, uint64_t{0xFFFFFFFFFFFFFF});
  EXPECT_THROW(parseKeyRecipe(withCrc(body)), std::runtime_error);
}

TEST(KeyRecipeCorruption, TrailingGarbageRejected) {
  ByteVec body = bodyOf(sampleKeyRecipeBytes());
  body.push_back(0x00);
  EXPECT_THROW(parseKeyRecipe(withCrc(body)), std::runtime_error);
}

TEST(RecipeRoundtrip, PlainFingerprintsSurvive) {
  FileRecipe recipe;
  recipe.fileName = "f";
  recipe.fileSize = 9;
  recipe.entries = {{0xA, 4, 0xCAFE}, {0xB, 5, 0xBEEF}};
  const FileRecipe parsed = parseFileRecipe(serializeFileRecipe(recipe));
  EXPECT_EQ(parsed, recipe);
  EXPECT_EQ(parsed.entries[0].plainFp, 0xCAFEu);
}

}  // namespace
}  // namespace freqdedup
