// Store-level coverage of the group-commit WAL + checkpointed index:
// commit durability through the BackupStore API, checkpoint-driven GC, and
// the acceptance invariant that a reopen after GC's checkpoint replays only
// the records committed since it.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

class StoreWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("store_wal_test_" + std::string(::testing::UnitTest::
                                                 GetInstance()
                                                     ->current_test_info()
                                                     ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// Acceptance: after GC checkpoints the index, a reopen loads the checkpoint
// and replays exactly the records appended since — observable through the
// wal.replay.records counter the store's registry exposes.
TEST_F(StoreWalTest, ReopenAfterGcCheckpointReplaysOnlyTailRecords) {
  constexpr int kTailBlobs = 5;
  {
    FileBackupStore store(dir_);
    std::vector<Fp> refs;
    for (int i = 0; i < 20; ++i) {
      const ByteVec bytes(1024, static_cast<uint8_t>(i));
      const Fp fp = fpOfContent(bytes);
      store.putChunk(fp, bytes);
      refs.push_back(fp);
    }
    store.recordBackup("backup-0", refs);
    // GC's final phase checkpoints the index and rotates the WAL: from here
    // on, the replayable tail is empty.
    store.collectGarbage();
    if (obs::kObsEnabled) {
      const obs::MetricsSnapshot snap = store.metricsSnapshot();
      EXPECT_GE(snap.counter("ckpt.writes"), 1u);
    }
    // Exactly kTailBlobs single-record commits ride the fresh tail.
    for (int i = 0; i < kTailBlobs; ++i)
      store.putBlob("tail-" + std::to_string(i), toBytes("tail-blob"));
    store.flush();
  }
  FileBackupStore reopened(dir_);
  if (obs::kObsEnabled) {
    const obs::MetricsSnapshot snap = reopened.metricsSnapshot();
    EXPECT_EQ(snap.counter("wal.replay.records"),
              static_cast<uint64_t>(kTailBlobs));
    EXPECT_EQ(snap.counter("ckpt.loads"), 1u);
    EXPECT_GT(snap.counter("ckpt.load_records"), 0u);
  }
  // And the state is intact on both sides of the watermark.
  ASSERT_TRUE(reopened.backupRefs("backup-0").has_value());
  EXPECT_EQ(reopened.backupRefs("backup-0")->size(), 20u);
  for (int i = 0; i < kTailBlobs; ++i)
    EXPECT_EQ(reopened.getBlob("tail-" + std::to_string(i)),
              toBytes("tail-blob"));
}

// recordBackup's return now implies durability: the manifest must survive a
// reopen that never saw an explicit flush. Concurrent committers coalesce —
// their syncs ride shared group fdatasyncs rather than serializing.
TEST_F(StoreWalTest, ConcurrentRecordBackupsAreDurable) {
  constexpr int kCommitters = 8;
  std::vector<Fp> fps;
  {
    FileBackupStore store(dir_);
    for (int i = 0; i < kCommitters; ++i) {
      const ByteVec bytes(512, static_cast<uint8_t>(0x40 + i));
      const Fp fp = fpOfContent(bytes);
      store.putChunk(fp, bytes);
      fps.push_back(fp);
    }
    store.flush();
    std::vector<std::thread> threads;
    threads.reserve(kCommitters);
    for (int t = 0; t < kCommitters; ++t) {
      threads.emplace_back([&store, &fps, t] {
        const std::vector<Fp> refs{fps[static_cast<size_t>(t)]};
        store.recordBackup("backup-" + std::to_string(t), refs);
      });
    }
    for (auto& th : threads) th.join();
    if (obs::kObsEnabled) {
      const obs::MetricsSnapshot snap = store.metricsSnapshot();
      EXPECT_EQ(snap.counter("store.backups_recorded"),
                static_cast<uint64_t>(kCommitters));
      EXPECT_GT(snap.counter("wal.syncs"), 0u);
    }
  }
  FileBackupStore reopened(dir_);
  EXPECT_EQ(reopened.listBackups().size(), static_cast<size_t>(kCommitters));
  for (int t = 0; t < kCommitters; ++t) {
    const auto refs = reopened.backupRefs("backup-" + std::to_string(t));
    ASSERT_TRUE(refs.has_value()) << t;
    EXPECT_EQ(*refs, std::vector<Fp>{fps[static_cast<size_t>(t)]});
  }
  EXPECT_EQ(reopened.chunkRefCount(fps[0]), 1u);
}

// GC's checkpoint replaces the old rewrite-and-rename compaction: dead
// index records are gone from the persistent files and a reopen starts
// from the compact checkpoint.
TEST_F(StoreWalTest, GcCheckpointCompactsIndexRecords) {
  {
    FileBackupStore store(dir_);
    const ByteVec bytes(2048, 0x77);
    const Fp fp = fpOfContent(bytes);
    store.putChunk(fp, bytes);
    std::vector<Fp> refs{fp};
    // Churn: re-record the same backup many times (each rewrites the
    // manifest and refcount records), then GC.
    for (int round = 0; round < 50; ++round)
      store.recordBackup("churn", refs);
    store.collectGarbage();
  }
  FileBackupStore reopened(dir_);
  if (obs::kObsEnabled) {
    const obs::MetricsSnapshot snap = reopened.metricsSnapshot();
    // All the churn was absorbed by the checkpoint: nothing left to replay.
    EXPECT_EQ(snap.counter("wal.replay.records"), 0u);
  }
  ASSERT_TRUE(reopened.backupRefs("churn").has_value());
  EXPECT_EQ(reopened.verify().errors.size(), 0u);
}

}  // namespace
}  // namespace freqdedup
