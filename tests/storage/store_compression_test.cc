// Store-level compression: compressed containers round-trip through the
// file backend, reopening with a *different* codec never rewrites or
// quarantines valid old containers (codec-mixed stores are first-class), and
// a crafted unknown codec byte is quarantined like any other corruption.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/bytes.h"
#include "common/crc32.h"
#include "obs/metrics.h"
#include "storage/backup_store.h"
#include "storage/container.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

namespace fs = std::filesystem;

/// Compressible (plaintext-like) chunk: repeats a seed-dependent phrase, so
/// distinct seeds give distinct fingerprints but every chunk shrinks well.
ByteVec compressibleChunk(uint8_t seed, size_t n = 16 * 1024) {
  ByteVec bytes(n);
  for (size_t i = 0; i < n; ++i)
    bytes[i] = static_cast<uint8_t>("the quick brown fox "[i % 20] + seed);
  return bytes;
}

class StoreCompressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("store_compression_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  StoreOptions withCodec(ContainerCodec codec) const {
    StoreOptions options;
    options.containerBytes = 64 * 1024;
    options.codec = codec;
    return options;
  }

  /// Snapshot of every container file's bytes, keyed by file name.
  std::map<std::string, ByteVec> containerFiles() const {
    std::map<std::string, ByteVec> files;
    for (const auto& entry : fs::directory_iterator(dir_ + "/containers"))
      if (entry.path().extension() == ".fdc")
        files[entry.path().filename().string()] =
            readFile(entry.path().string());
    return files;
  }

  std::string dir_;
};

TEST_F(StoreCompressionTest, CompressedChunksRoundTripAcrossReopen) {
  std::vector<std::pair<Fp, ByteVec>> chunks;
  {
    FileBackupStore store(dir_, withCodec(ContainerCodec::kZstd));
    for (int i = 0; i < 24; ++i) {
      ByteVec bytes = compressibleChunk(static_cast<uint8_t>(i));
      const Fp fp = fpOfContent(bytes);
      store.putChunk(fp, bytes);
      chunks.emplace_back(fp, std::move(bytes));
    }
    store.flush();
    for (const auto& [fp, bytes] : chunks) EXPECT_EQ(store.getChunk(fp), bytes);
  }
  // Compression must actually have happened: frames on disk are codec
  // frames and physically smaller than the raw payload they carry.
  uint64_t physical = 0;
  size_t codecFrames = 0;
  for (const auto& [name, bytes] : containerFiles()) {
    physical += bytes.size();
    codecFrames += getU32(bytes, 0) == kContainerMagicV2;
  }
  EXPECT_GT(codecFrames, 0u);
  EXPECT_LT(physical, uint64_t{24} * 16 * 1024);

  FileBackupStore reopened(dir_, withCodec(ContainerCodec::kZstd));
  EXPECT_EQ(reopened.recoveryStats().corruptContainers, 0u);
  EXPECT_EQ(reopened.recoveryStats().entriesDropped, 0u);
  for (const auto& [fp, bytes] : chunks)
    EXPECT_EQ(reopened.getChunk(fp), bytes);
  EXPECT_TRUE(reopened.verify().ok());
}

// The satellite reopen matrix: a store written under codec A and reopened
// under codec B must (a) recover without rewriting or quarantining a single
// old container — their on-disk bytes stay bit-identical — and (b) serve
// every old chunk while writing new containers under B. Both directions.
class StoreCodecReopenMatrix
    : public StoreCompressionTest,
      public ::testing::WithParamInterface<
          std::pair<ContainerCodec, ContainerCodec>> {};

TEST_P(StoreCodecReopenMatrix, ReopenWithDifferentCodecLeavesOldFramesAlone) {
  const auto [writeCodec, reopenCodec] = GetParam();
  std::vector<std::pair<Fp, ByteVec>> oldChunks;
  {
    FileBackupStore store(dir_, withCodec(writeCodec));
    for (int i = 0; i < 12; ++i) {
      ByteVec bytes = compressibleChunk(static_cast<uint8_t>(i));
      const Fp fp = fpOfContent(bytes);
      store.putChunk(fp, bytes);
      oldChunks.emplace_back(fp, std::move(bytes));
    }
    store.flush();
  }
  const auto before = containerFiles();
  ASSERT_FALSE(before.empty());

  FileBackupStore reopened(dir_, withCodec(reopenCodec));
  EXPECT_EQ(reopened.recoveryStats().corruptContainers, 0u)
      << "valid old containers must never be quarantined on codec change";
  EXPECT_EQ(reopened.recoveryStats().entriesDropped, 0u);
  EXPECT_EQ(reopened.recoveryStats().orphanContainersRemoved, 0u);
  for (const auto& [fp, bytes] : oldChunks)
    EXPECT_EQ(reopened.getChunk(fp), bytes);

  // Recovery is read-only for valid frames: byte-identical files.
  const auto after = containerFiles();
  EXPECT_EQ(after, before) << "reopen must not rewrite old container frames";

  // New writes pick up the reopen codec; old and new frames then coexist.
  std::vector<std::pair<Fp, ByteVec>> newChunks;
  for (int i = 100; i < 112; ++i) {
    ByteVec bytes = compressibleChunk(static_cast<uint8_t>(i));
    const Fp fp = fpOfContent(bytes);
    reopened.putChunk(fp, bytes);
    newChunks.emplace_back(fp, std::move(bytes));
  }
  reopened.flush();
  bool sawLegacy = false, sawCodec = false;
  for (const auto& [name, bytes] : containerFiles()) {
    sawLegacy |= getU32(bytes, 0) == kContainerMagic;
    sawCodec |= getU32(bytes, 0) == kContainerMagicV2;
  }
  EXPECT_TRUE(sawLegacy && sawCodec) << "store should now mix both frames";
  for (const auto& [fp, bytes] : newChunks)
    EXPECT_EQ(reopened.getChunk(fp), bytes);
  EXPECT_TRUE(reopened.verify().ok());

  // And a third open (original codec again) reads the mixed store whole.
  FileBackupStore third(dir_, withCodec(writeCodec));
  EXPECT_EQ(third.recoveryStats().corruptContainers, 0u);
  EXPECT_EQ(third.recoveryStats().entriesDropped, 0u);
  for (const auto& [fp, bytes] : oldChunks) EXPECT_EQ(third.getChunk(fp), bytes);
  for (const auto& [fp, bytes] : newChunks) EXPECT_EQ(third.getChunk(fp), bytes);
  EXPECT_TRUE(third.verify().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Directions, StoreCodecReopenMatrix,
    ::testing::Values(
        std::make_pair(ContainerCodec::kNone, ContainerCodec::kZstd),
        std::make_pair(ContainerCodec::kZstd, ContainerCodec::kNone)),
    [](const auto& info) {
      return std::string(codecName(info.param.first)) + "_to_" +
             codecName(info.param.second);
    });

TEST_F(StoreCompressionTest, RecoveryQuarantinesCraftedCodecByte) {
  const ByteVec bytes = compressibleChunk(1);
  const Fp fp = fpOfContent(bytes);
  std::string containerFile;
  {
    FileBackupStore store(dir_, withCodec(ContainerCodec::kZstd));
    store.putChunk(fp, bytes);
    store.recordBackup("b", std::vector<Fp>{fp});
  }
  for (const auto& entry : fs::directory_iterator(dir_ + "/containers"))
    if (entry.path().extension() == ".fdc")
      containerFile = entry.path().string();
  ASSERT_FALSE(containerFile.empty());
  ByteVec raw = readFile(containerFile);
  ASSERT_EQ(getU32(raw, 0), kContainerMagicV2);
  // Overwrite the codec byte with a value no build understands and restamp
  // the trailer CRC, so recovery's rejection comes from codec validation.
  raw[8] = 0x7E;
  const uint32_t crc = crc32c(ByteView(raw).subspan(0, raw.size() - 4));
  raw[raw.size() - 4] = static_cast<uint8_t>(crc);
  raw[raw.size() - 3] = static_cast<uint8_t>(crc >> 8);
  raw[raw.size() - 2] = static_cast<uint8_t>(crc >> 16);
  raw[raw.size() - 1] = static_cast<uint8_t>(crc >> 24);
  writeFile(containerFile, raw);

  FileBackupStore reopened(dir_, withCodec(ContainerCodec::kZstd));
  EXPECT_EQ(reopened.recoveryStats().corruptContainers, 1u);
  EXPECT_EQ(reopened.recoveryStats().entriesDropped, 1u);
  EXPECT_FALSE(reopened.hasChunk(fp));
  EXPECT_TRUE(fs::exists(containerFile + ".corrupt"))
      << "unknown codec must quarantine, not delete";
  EXPECT_FALSE(reopened.verify().ok()) << "manifest now dangles";
}

TEST_F(StoreCompressionTest, CompressionMetricsCountFrames) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "metrics disabled in this build";
  FileBackupStore store(dir_, withCodec(ContainerCodec::kZstd));
  for (int i = 0; i < 24; ++i) {
    const ByteVec bytes = compressibleChunk(static_cast<uint8_t>(i));
    store.putChunk(fpOfContent(bytes), bytes);
  }
  store.flush();
  const auto snapshot = store.metricsSnapshot();
  const auto counter = [&](const std::string& name) {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? uint64_t{0} : it->second;
  };
  EXPECT_GT(counter("store.compressed_containers"), 0u);
  EXPECT_GT(counter("store.container_raw_bytes"), 0u);
  EXPECT_LT(counter("store.container_physical_bytes"),
            counter("store.container_raw_bytes"));
}

}  // namespace
}  // namespace freqdedup
