#include "storage/backup_store.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "obs/metrics.h"
#include "storage/container_backup_store.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

ByteVec chunkOfByte(uint8_t b, size_t n) { return ByteVec(n, b); }

class BackupStoreDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("backup_store_test_" + std::string(::testing::UnitTest::
                                                    GetInstance()
                                                        ->current_test_info()
                                                        ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  size_t containerFilesOnDisk() const {
    size_t files = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_ + "/containers"))
      files += entry.path().extension() == ".fdc";
    return files;
  }

  std::string dir_;
};

TEST(BackupStoreMem, PutGetChunk) {
  MemBackupStore store;
  const ByteVec bytes = toBytes("ciphertext chunk");
  const Fp fp = fpOfContent(bytes);
  EXPECT_TRUE(store.putChunk(fp, bytes));
  EXPECT_TRUE(store.hasChunk(fp));
  EXPECT_EQ(store.getChunk(fp), bytes);
}

TEST(BackupStoreMem, DuplicatePutIsDeduplicated) {
  MemBackupStore store;
  const ByteVec bytes = toBytes("dup chunk");
  const Fp fp = fpOfContent(bytes);
  EXPECT_TRUE(store.putChunk(fp, bytes));
  EXPECT_FALSE(store.putChunk(fp, bytes));
  if (obs::kObsEnabled) {
    EXPECT_EQ(store.stats().uniqueChunks, 1u);
    EXPECT_EQ(store.stats().logicalPuts, 2u);
    EXPECT_EQ(store.stats().storedBytes, bytes.size());
    EXPECT_EQ(store.stats().logicalBytes, 2 * bytes.size());
  }
}

TEST(BackupStoreMem, MissingChunkThrows) {
  MemBackupStore store;
  EXPECT_THROW(store.getChunk(0x1234), std::runtime_error);
}

TEST(BackupStoreMem, ChunksRetrievableAfterContainerSeal) {
  MemBackupStore store;  // 4 MB containers by default
  std::vector<std::pair<Fp, ByteVec>> chunks;
  for (int i = 0; i < 200; ++i) {
    ByteVec bytes(64 * 1024, static_cast<uint8_t>(i));  // 200 x 64 KB > 4 MB
    const Fp fp = fpOfContent(bytes);
    store.putChunk(fp, bytes);
    chunks.emplace_back(fp, std::move(bytes));
  }
  EXPECT_GT(store.containerCount(), 1u);
  for (const auto& [fp, bytes] : chunks) EXPECT_EQ(store.getChunk(fp), bytes);
}

TEST(BackupStoreMem, Blobs) {
  MemBackupStore store;
  store.putBlob("file:a", toBytes("recipe-a"));
  store.putBlob("key:a", toBytes("keys-a"));
  EXPECT_EQ(store.getBlob("file:a"), toBytes("recipe-a"));
  EXPECT_EQ(store.getBlob("missing"), std::nullopt);
  const auto names = store.listBlobs();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_TRUE(store.eraseBlob("file:a"));
  EXPECT_FALSE(store.eraseBlob("file:a"));
  EXPECT_EQ(store.getBlob("file:a"), std::nullopt);
}

TEST(BackupStoreMem, DedupRatioTracksDuplication) {
  MemBackupStore store;
  const ByteVec bytes(1000, 0x33);
  const Fp fp = fpOfContent(bytes);
  for (int i = 0; i < 4; ++i) store.putChunk(fp, bytes);
  if (obs::kObsEnabled) EXPECT_DOUBLE_EQ(store.stats().dedupRatio(), 4.0);
}

TEST(BackupStoreMem, RecordBackupCountsReferences) {
  MemBackupStore store;
  const ByteVec a = chunkOfByte(1, 100), b = chunkOfByte(2, 100);
  const Fp fpA = fpOfContent(a), fpB = fpOfContent(b);
  store.putChunk(fpA, a);
  store.putChunk(fpB, b);
  // fpA referenced twice within one backup, once by another.
  store.recordBackup("b1", std::vector<Fp>{fpA, fpB, fpA});
  store.recordBackup("b2", std::vector<Fp>{fpA});
  EXPECT_EQ(store.chunkRefCount(fpA), 3u);
  EXPECT_EQ(store.chunkRefCount(fpB), 1u);
  EXPECT_EQ(store.listBackups().size(), 2u);
  EXPECT_TRUE(store.verify().ok());
}

TEST(BackupStoreMem, ReRecordingANameReplacesItsReferences) {
  MemBackupStore store;
  const ByteVec a = chunkOfByte(1, 100), b = chunkOfByte(2, 100);
  const Fp fpA = fpOfContent(a), fpB = fpOfContent(b);
  store.putChunk(fpA, a);
  store.putChunk(fpB, b);
  store.recordBackup("b", std::vector<Fp>{fpA});
  store.recordBackup("b", std::vector<Fp>{fpB});
  EXPECT_EQ(store.chunkRefCount(fpA), 0u);
  EXPECT_EQ(store.chunkRefCount(fpB), 1u);
  EXPECT_EQ(store.listBackups().size(), 1u);
  EXPECT_TRUE(store.verify().ok());
}

TEST(BackupStoreMem, RecordBackupRejectsUnknownChunk) {
  MemBackupStore store;
  EXPECT_THROW(store.recordBackup("b", std::vector<Fp>{0xDEAD}),
               std::runtime_error);
}

TEST(BackupStoreMem, ReleaseBackupDropsReferences) {
  MemBackupStore store;
  const ByteVec a = chunkOfByte(1, 100);
  const Fp fpA = fpOfContent(a);
  store.putChunk(fpA, a);
  store.recordBackup("b1", std::vector<Fp>{fpA});
  store.recordBackup("b2", std::vector<Fp>{fpA});
  EXPECT_TRUE(store.releaseBackup("b1"));
  EXPECT_FALSE(store.releaseBackup("b1"));
  EXPECT_EQ(store.chunkRefCount(fpA), 1u);
  EXPECT_TRUE(store.verify().ok());
}

TEST(BackupStoreMem, GcReclaimsOnlyUnreferencedChunks) {
  MemBackupStore store(/*containerBytes=*/256);
  const ByteVec live = chunkOfByte(1, 100), dead = chunkOfByte(2, 100);
  const Fp fpLive = fpOfContent(live), fpDead = fpOfContent(dead);
  store.putChunk(fpLive, live);
  store.putChunk(fpDead, dead);
  store.recordBackup("keep", std::vector<Fp>{fpLive});
  store.recordBackup("drop", std::vector<Fp>{fpDead});
  store.releaseBackup("drop");

  const GcStats gc = store.collectGarbage();
  EXPECT_EQ(gc.chunksReclaimed, 1u);
  EXPECT_EQ(gc.bytesReclaimed, 100u);
  EXPECT_FALSE(store.hasChunk(fpDead));
  EXPECT_EQ(store.getChunk(fpLive), live);
  if (obs::kObsEnabled) {
    EXPECT_EQ(store.stats().uniqueChunks, 1u);
    EXPECT_EQ(store.stats().storedBytes, 100u);
  }
  EXPECT_TRUE(store.verify().ok());
}

TEST(BackupStoreMem, GcRelocatesLiveChunksOutOfMixedContainers) {
  // Small containers so live and dead chunks share one container.
  MemBackupStore store(/*containerBytes=*/1024);
  const ByteVec live = chunkOfByte(1, 300), dead = chunkOfByte(2, 300);
  const Fp fpLive = fpOfContent(live), fpDead = fpOfContent(dead);
  store.putChunk(fpLive, live);
  store.putChunk(fpDead, dead);
  store.recordBackup("keep", std::vector<Fp>{fpLive});
  store.recordBackup("drop", std::vector<Fp>{fpDead});
  store.releaseBackup("drop");

  const GcStats gc = store.collectGarbage();
  EXPECT_EQ(gc.chunksRelocated, 1u);
  EXPECT_EQ(gc.containersCompacted, 1u);
  EXPECT_EQ(store.getChunk(fpLive), live);
  EXPECT_EQ(store.chunkRefCount(fpLive), 1u) << "relocation keeps refcounts";
  EXPECT_TRUE(store.verify().ok());
}

TEST(BackupStoreMem, GcOnCleanStoreIsANoop) {
  MemBackupStore store;
  const ByteVec a = chunkOfByte(1, 64);
  store.putChunk(fpOfContent(a), a);
  store.recordBackup("b", std::vector<Fp>{fpOfContent(a)});
  const GcStats gc = store.collectGarbage();
  EXPECT_EQ(gc.chunksReclaimed, 0u);
  EXPECT_EQ(gc.containersCompacted, 0u);
}

TEST(BackupStoreMem, VerifyFlagsRefcountMismatch) {
  MemBackupStore store;
  const ByteVec a = chunkOfByte(1, 64);
  const Fp fp = fpOfContent(a);
  store.putChunk(fp, a);
  store.recordBackup("b", std::vector<Fp>{fp});
  store.releaseBackup("b");
  store.releaseBackup("b");  // double release is a no-op
  EXPECT_TRUE(store.verify().ok());
}

TEST(MakeBackupStore, FactoryProducesWorkingBackends) {
  const auto mem = makeBackupStore(StoreBackend::kMemory);
  const ByteVec bytes = toBytes("x");
  EXPECT_TRUE(mem->putChunk(fpOfContent(bytes), bytes));

  const std::string dir =
      (std::filesystem::temp_directory_path() / "fdd_factory_test").string();
  std::filesystem::remove_all(dir);
  {
    const auto file = makeBackupStore(StoreBackend::kFile, dir);
    EXPECT_TRUE(file->putChunk(fpOfContent(bytes), bytes));
    file->flush();
  }
  const auto reopened = makeBackupStore(StoreBackend::kFile, dir);
  EXPECT_TRUE(reopened->hasChunk(fpOfContent(bytes)));
  std::filesystem::remove_all(dir);
}

TEST_F(BackupStoreDirTest, PersistsAcrossReopen) {
  std::vector<std::pair<Fp, ByteVec>> chunks;
  {
    FileBackupStore store(dir_, {.containerBytes = 256 * 1024});
    for (int i = 0; i < 50; ++i) {
      ByteVec bytes(16 * 1024, static_cast<uint8_t>(i));
      const Fp fp = fpOfContent(bytes);
      store.putChunk(fp, bytes);
      chunks.emplace_back(fp, std::move(bytes));
    }
    store.putBlob("file:backup1", toBytes("sealed recipe"));
    store.flush();
  }
  FileBackupStore reopened(dir_, {.containerBytes = 256 * 1024});
  if (obs::kObsEnabled) EXPECT_EQ(reopened.stats().uniqueChunks, 50u);
  for (const auto& [fp, bytes] : chunks) {
    EXPECT_TRUE(reopened.hasChunk(fp));
    EXPECT_EQ(reopened.getChunk(fp), bytes);
  }
  EXPECT_EQ(reopened.getBlob("file:backup1"), toBytes("sealed recipe"));
}

TEST_F(BackupStoreDirTest, DedupAcrossReopen) {
  const ByteVec bytes(8 * 1024, 0x77);
  const Fp fp = fpOfContent(bytes);
  {
    FileBackupStore store(dir_);
    EXPECT_TRUE(store.putChunk(fp, bytes));
    store.flush();
  }
  FileBackupStore reopened(dir_);
  EXPECT_FALSE(reopened.putChunk(fp, bytes)) << "chunk must survive reopen";
}

TEST_F(BackupStoreDirTest, ContainerFilesOnDisk) {
  {
    FileBackupStore store(dir_, {.containerBytes = 64 * 1024});
    for (int i = 0; i < 10; ++i) {
      ByteVec bytes(16 * 1024, static_cast<uint8_t>(i));
      store.putChunk(fpOfContent(bytes), bytes);
    }
    store.flush();
  }
  EXPECT_GE(containerFilesOnDisk(), 2u);
}

TEST_F(BackupStoreDirTest, ReferencesAndManifestsSurviveReopen) {
  const ByteVec a = chunkOfByte(1, 1000), b = chunkOfByte(2, 1000);
  const Fp fpA = fpOfContent(a), fpB = fpOfContent(b);
  {
    FileBackupStore store(dir_);
    store.putChunk(fpA, a);
    store.putChunk(fpB, b);
    store.recordBackup("b1", std::vector<Fp>{fpA, fpB});
    store.recordBackup("b2", std::vector<Fp>{fpA});
  }
  FileBackupStore reopened(dir_);
  EXPECT_EQ(reopened.chunkRefCount(fpA), 2u);
  EXPECT_EQ(reopened.chunkRefCount(fpB), 1u);
  EXPECT_EQ(reopened.listBackups().size(), 2u);
  EXPECT_TRUE(reopened.verify().ok());
}

TEST_F(BackupStoreDirTest, GcReclaimsContainerFilesAndSurvivesReopen) {
  const ByteVec live = chunkOfByte(1, 32 * 1024);
  const Fp fpLive = fpOfContent(live);
  {
    FileBackupStore store(dir_, {.containerBytes = 64 * 1024});
    store.putChunk(fpLive, live);
    std::vector<Fp> doomed;
    for (int i = 2; i < 10; ++i) {
      const ByteVec bytes = chunkOfByte(static_cast<uint8_t>(i), 32 * 1024);
      store.putChunk(fpOfContent(bytes), bytes);
      doomed.push_back(fpOfContent(bytes));
    }
    store.recordBackup("keep", std::vector<Fp>{fpLive});
    store.recordBackup("drop", doomed);
    store.releaseBackup("drop");
    const size_t before = containerFilesOnDisk();
    const GcStats gc = store.collectGarbage();
    EXPECT_EQ(gc.chunksReclaimed, doomed.size());
    EXPECT_LT(containerFilesOnDisk(), before);
    EXPECT_TRUE(store.verify().ok());
  }
  FileBackupStore reopened(dir_, {.containerBytes = 64 * 1024});
  if (obs::kObsEnabled) EXPECT_EQ(reopened.stats().uniqueChunks, 1u);
  EXPECT_EQ(reopened.getChunk(fpLive), live);
  EXPECT_TRUE(reopened.verify().ok());
}

TEST_F(BackupStoreDirTest, RecoveryRemovesOrphanContainers) {
  {
    FileBackupStore store(dir_);
    const ByteVec bytes = chunkOfByte(1, 100);
    store.putChunk(fpOfContent(bytes), bytes);
    store.recordBackup("b", std::vector<Fp>{fpOfContent(bytes)});
  }
  // Simulate a crash between a container write and its index puts: a
  // container file that no index entry references.
  writeFile(dir_ + "/containers/00000099.fdc", toBytes("not even a container"));
  writeFile(dir_ + "/containers/00000100.fdc.tmp", toBytes("torn write"));

  FileBackupStore reopened(dir_);
  EXPECT_EQ(reopened.recoveryStats().orphanContainersRemoved, 1u);
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/containers/00000099.fdc"));
  EXPECT_FALSE(
      std::filesystem::exists(dir_ + "/containers/00000100.fdc.tmp"));
  EXPECT_TRUE(reopened.verify().ok());
}

TEST_F(BackupStoreDirTest, RecoveryQuarantinesCorruptContainers) {
  const ByteVec bytes = chunkOfByte(1, 100);
  const Fp fp = fpOfContent(bytes);
  std::string containerFile;
  {
    FileBackupStore store(dir_);
    store.putChunk(fp, bytes);
    store.recordBackup("b", std::vector<Fp>{fp});
  }
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/containers"))
    if (entry.path().extension() == ".fdc")
      containerFile = entry.path().string();
  ASSERT_FALSE(containerFile.empty());
  // Flip a payload bit: the container trailer CRC must catch it.
  ByteVec raw = readFile(containerFile);
  raw[raw.size() / 2] ^= 0x01;
  writeFile(containerFile, raw);

  FileBackupStore reopened(dir_);
  EXPECT_EQ(reopened.recoveryStats().corruptContainers, 1u);
  EXPECT_EQ(reopened.recoveryStats().entriesDropped, 1u);
  EXPECT_FALSE(reopened.hasChunk(fp)) << "entry for lost data must be gone";
  EXPECT_TRUE(std::filesystem::exists(containerFile + ".corrupt"));
  // The manifest now references a missing chunk: verify must report it.
  const StoreCheckReport report = reopened.verify();
  EXPECT_FALSE(report.ok());
}

TEST_F(BackupStoreDirTest, UnflushedOpenContainerIsLostButStoreStaysClean) {
  const ByteVec sealed = chunkOfByte(1, 100);
  const Fp fpSealed = fpOfContent(sealed);
  {
    FileBackupStore store(dir_);
    store.putChunk(fpSealed, sealed);
    store.flush();
    // Staged but never flushed: equivalent to a crash before seal. The
    // destructor flushes, so bypass it the hard way by writing directly.
  }
  FileBackupStore reopened(dir_);
  EXPECT_EQ(reopened.getChunk(fpSealed), sealed);
  EXPECT_TRUE(reopened.verify().ok());
}

}  // namespace
}  // namespace freqdedup
