#include "storage/backup_store.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace freqdedup {
namespace {

class BackupStoreDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("backup_store_test_" + std::string(::testing::UnitTest::
                                                    GetInstance()
                                                        ->current_test_info()
                                                        ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST(BackupStoreMem, PutGetChunk) {
  BackupStore store;
  const ByteVec bytes = toBytes("ciphertext chunk");
  const Fp fp = fpOfContent(bytes);
  EXPECT_TRUE(store.putChunk(fp, bytes));
  EXPECT_TRUE(store.hasChunk(fp));
  EXPECT_EQ(store.getChunk(fp), bytes);
}

TEST(BackupStoreMem, DuplicatePutIsDeduplicated) {
  BackupStore store;
  const ByteVec bytes = toBytes("dup chunk");
  const Fp fp = fpOfContent(bytes);
  EXPECT_TRUE(store.putChunk(fp, bytes));
  EXPECT_FALSE(store.putChunk(fp, bytes));
  EXPECT_EQ(store.stats().uniqueChunks, 1u);
  EXPECT_EQ(store.stats().logicalPuts, 2u);
  EXPECT_EQ(store.stats().storedBytes, bytes.size());
  EXPECT_EQ(store.stats().logicalBytes, 2 * bytes.size());
}

TEST(BackupStoreMem, MissingChunkThrows) {
  BackupStore store;
  EXPECT_THROW(store.getChunk(0x1234), std::runtime_error);
}

TEST(BackupStoreMem, ChunksRetrievableAfterContainerSeal) {
  BackupStore store;  // 4 MB containers by default
  std::vector<std::pair<Fp, ByteVec>> chunks;
  for (int i = 0; i < 200; ++i) {
    ByteVec bytes(64 * 1024, static_cast<uint8_t>(i));  // 200 x 64 KB > 4 MB
    const Fp fp = fpOfContent(bytes);
    store.putChunk(fp, bytes);
    chunks.emplace_back(fp, std::move(bytes));
  }
  EXPECT_GT(store.containerCount(), 1u);
  for (const auto& [fp, bytes] : chunks) EXPECT_EQ(store.getChunk(fp), bytes);
}

TEST(BackupStoreMem, Blobs) {
  BackupStore store;
  store.putBlob("file:a", toBytes("recipe-a"));
  store.putBlob("key:a", toBytes("keys-a"));
  EXPECT_EQ(store.getBlob("file:a"), toBytes("recipe-a"));
  EXPECT_EQ(store.getBlob("missing"), std::nullopt);
  const auto names = store.listBlobs();
  EXPECT_EQ(names.size(), 2u);
}

TEST(BackupStoreMem, DedupRatioTracksDuplication) {
  BackupStore store;
  const ByteVec bytes(1000, 0x33);
  const Fp fp = fpOfContent(bytes);
  for (int i = 0; i < 4; ++i) store.putChunk(fp, bytes);
  EXPECT_DOUBLE_EQ(store.stats().dedupRatio(), 4.0);
}

TEST_F(BackupStoreDirTest, PersistsAcrossReopen) {
  std::vector<std::pair<Fp, ByteVec>> chunks;
  {
    BackupStore store(dir_, /*containerBytes=*/256 * 1024);
    for (int i = 0; i < 50; ++i) {
      ByteVec bytes(16 * 1024, static_cast<uint8_t>(i));
      const Fp fp = fpOfContent(bytes);
      store.putChunk(fp, bytes);
      chunks.emplace_back(fp, std::move(bytes));
    }
    store.putBlob("file:backup1", toBytes("sealed recipe"));
    store.flush();
  }
  BackupStore reopened(dir_, 256 * 1024);
  EXPECT_EQ(reopened.stats().uniqueChunks, 50u);
  for (const auto& [fp, bytes] : chunks) {
    EXPECT_TRUE(reopened.hasChunk(fp));
    EXPECT_EQ(reopened.getChunk(fp), bytes);
  }
  EXPECT_EQ(reopened.getBlob("file:backup1"), toBytes("sealed recipe"));
}

TEST_F(BackupStoreDirTest, DedupAcrossReopen) {
  const ByteVec bytes(8 * 1024, 0x77);
  const Fp fp = fpOfContent(bytes);
  {
    BackupStore store(dir_);
    EXPECT_TRUE(store.putChunk(fp, bytes));
    store.flush();
  }
  BackupStore reopened(dir_);
  EXPECT_FALSE(reopened.putChunk(fp, bytes)) << "chunk must survive reopen";
}

TEST_F(BackupStoreDirTest, ContainerFilesOnDisk) {
  {
    BackupStore store(dir_, 64 * 1024);
    for (int i = 0; i < 10; ++i) {
      ByteVec bytes(16 * 1024, static_cast<uint8_t>(i));
      store.putChunk(fpOfContent(bytes), bytes);
    }
    store.flush();
  }
  size_t containerFiles = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/containers"))
    containerFiles += entry.is_regular_file();
  EXPECT_GE(containerFiles, 2u);
}

}  // namespace
}  // namespace freqdedup
