#include "storage/dedup_engine.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"
#include "obs/metrics.h"

namespace freqdedup {
namespace {

// The engine's counters live in its metrics registry; with
// FREQDEDUP_OBS=OFF they all read zero, so stats-centric tests skip there
// (functional behavior is still covered by the outcome-based tests).
#define FDD_SKIP_WITHOUT_OBS()                                      \
  if (!obs::kObsEnabled)                                            \
  GTEST_SKIP() << "stats are compiled out (FREQDEDUP_OBS=OFF)"

DedupEngineParams tinyParams() {
  DedupEngineParams p;
  p.containerBytes = 16 * 1024;     // 4 chunks of 4 KB per container
  p.cacheBytes = 64 * kFpMetadataBytes;  // 64 cached fingerprints
  p.expectedFingerprints = 10'000;
  return p;
}

std::vector<ChunkRecord> makeRecords(std::initializer_list<Fp> fps,
                                     uint32_t size = 4096) {
  std::vector<ChunkRecord> records;
  for (const Fp fp : fps) records.push_back({fp, size});
  return records;
}

TEST(DedupEngine, AllUniqueChunksStored) {
  FDD_SKIP_WITHOUT_OBS();
  DedupEngine engine(tinyParams());
  engine.ingestBackup(makeRecords({1, 2, 3, 4, 5}));
  EXPECT_EQ(engine.stats().uniqueChunks, 5u);
  EXPECT_EQ(engine.stats().logicalChunks, 5u);
}

TEST(DedupEngine, DuplicateInOpenBufferDetected) {
  FDD_SKIP_WITHOUT_OBS();
  DedupEngine engine(tinyParams());
  engine.ingestBackup(makeRecords({1, 2, 1}));
  EXPECT_EQ(engine.stats().uniqueChunks, 2u);
  EXPECT_EQ(engine.stats().bufferHits + engine.stats().cacheHits, 1u);
}

TEST(DedupEngine, DuplicateAfterFlushGoesThroughIndex) {
  DedupEngine engine(tinyParams());
  // Fill exactly one container (4 chunks x 4 KB = 16 KB), then overflow so
  // it flushes, then repeat a chunk from the flushed container.
  engine.ingestBackup(makeRecords({1, 2, 3, 4, 5}));  // 5 forces flush
  const IngestOutcome outcome = engine.ingest({1, 4096});
  EXPECT_TRUE(outcome.duplicate);
  ASSERT_TRUE(outcome.containerId.has_value());
  if (obs::kObsEnabled) {
    EXPECT_EQ(engine.stats().indexHits, 1u);
    // S4 loaded the container's fingerprints (4 entries x 32 B).
    EXPECT_EQ(engine.stats().metadata.loadingBytes, 4u * kFpMetadataBytes);
  }
}

TEST(DedupEngine, CacheHitAfterContainerLoad) {
  DedupEngine engine(tinyParams());
  engine.ingestBackup(makeRecords({1, 2, 3, 4, 5}));
  (void)engine.ingest({1, 4096});  // index hit, loads container fps
  const auto metadataBefore = engine.stats().metadata;
  const IngestOutcome outcome = engine.ingest({2, 4096});  // neighbor: cached
  EXPECT_TRUE(outcome.duplicate);
  EXPECT_EQ(engine.stats().metadata.totalBytes(), metadataBefore.totalBytes())
      << "a fingerprint-cache hit must not touch on-disk metadata";
}

TEST(DedupEngine, UpdateAccessCountedOnFlush) {
  DedupEngine engine(tinyParams());
  engine.ingestBackup(makeRecords({1, 2, 3, 4}));
  EXPECT_EQ(engine.stats().metadata.updateBytes, 0u);  // still buffered
  engine.flushOpenContainer();
  if (obs::kObsEnabled)
    EXPECT_EQ(engine.stats().metadata.updateBytes, 4u * kFpMetadataBytes);
  EXPECT_EQ(engine.containerCount(), 1u);
}

TEST(DedupEngine, ContainerCapacityRespected) {
  DedupEngine engine(tinyParams());
  std::vector<ChunkRecord> records;
  for (Fp fp = 0; fp < 20; ++fp) records.push_back({fp, 4096});
  engine.ingestBackup(records);
  engine.flushOpenContainer();
  EXPECT_EQ(engine.containerCount(), 5u);  // 20 chunks / 4 per container
  for (uint32_t id = 0; id < 5; ++id)
    EXPECT_EQ(engine.containerFingerprints(id).size(), 4u);
}

TEST(DedupEngine, BloomNegativeSkipsIndex) {
  FDD_SKIP_WITHOUT_OBS();
  DedupEngine engine(tinyParams());
  engine.ingestBackup(makeRecords({1, 2, 3}));
  // All chunks were new; their uniqueness was provable by the Bloom filter
  // except for rare false positives.
  EXPECT_EQ(engine.stats().bloomNegatives +
                engine.stats().bloomFalsePositives,
            3u);
  EXPECT_LE(engine.stats().metadata.indexBytes,
            3u * kFpMetadataBytes);  // only false positives pay index lookups
}

TEST(DedupEngine, StatsDedupRatio) {
  FDD_SKIP_WITHOUT_OBS();
  DedupEngine engine(tinyParams());
  engine.ingestBackup(makeRecords({1, 2, 1, 2, 1, 2}));
  EXPECT_DOUBLE_EQ(engine.stats().dedupRatio(), 3.0);
}

TEST(DedupEngineStats, DedupRatioIsZeroWithoutTraffic) {
  DedupEngineStats stats;
  EXPECT_EQ(stats.dedupRatio(), 0.0);  // both counters zero: no division
  stats.uniqueBytes = 4096;            // degenerate snapshot, logicalBytes 0
  EXPECT_EQ(stats.dedupRatio(), 0.0);
  stats.uniqueBytes = 0;
  stats.logicalBytes = 4096;  // unique 0: also guarded
  EXPECT_EQ(stats.dedupRatio(), 0.0);
}

TEST(MetadataAccessStats, DifferenceSaturatesInsteadOfUnderflowing) {
  MetadataAccessStats earlier;
  earlier.updateBytes = 100;
  earlier.indexBytes = 50;
  earlier.loadingBytes = 10;
  MetadataAccessStats later;
  later.updateBytes = 150;
  later.indexBytes = 20;  // lower than `earlier`: swapped-snapshot hazard
  later.loadingBytes = 10;

  const MetadataAccessStats diff = later - earlier;
  EXPECT_EQ(diff.updateBytes, 50u);
  EXPECT_EQ(diff.indexBytes, 0u);  // saturates instead of wrapping to 2^64-30
  EXPECT_EQ(diff.loadingBytes, 0u);
  EXPECT_EQ(diff.totalBytes(), 50u);
}

TEST(DedupEngineStats, MergeAddsEveryCounter) {
  DedupEngineStats a;
  a.logicalChunks = 1;
  a.logicalBytes = 10;
  a.uniqueChunks = 1;
  a.uniqueBytes = 10;
  a.cacheHits = 2;
  a.metadata.indexBytes = 32;
  DedupEngineStats b = a;
  b.bufferHits = 3;
  a += b;
  EXPECT_EQ(a.logicalChunks, 2u);
  EXPECT_EQ(a.logicalBytes, 20u);
  EXPECT_EQ(a.uniqueChunks, 2u);
  EXPECT_EQ(a.cacheHits, 4u);
  EXPECT_EQ(a.bufferHits, 3u);
  EXPECT_EQ(a.metadata.indexBytes, 64u);
}

class DedupEngineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DedupEngineProperty, MatchesNaiveDeduplication) {
  FDD_SKIP_WITHOUT_OBS();
  Rng rng(GetParam());
  std::vector<ChunkRecord> records;
  for (int i = 0; i < 5000; ++i) {
    // Draw from a small fingerprint space to force many duplicates.
    records.push_back({rng.uniformInt(0, 700),
                       static_cast<uint32_t>(rng.uniformInt(1024, 8192))});
  }
  // A fingerprint must always denote the same content/size.
  std::unordered_map<Fp, uint32_t, FpHash> canonicalSize;
  for (auto& r : records) {
    const auto [it, inserted] = canonicalSize.try_emplace(r.fp, r.size);
    r.size = it->second;
  }

  DedupEngineParams p = tinyParams();
  DedupEngine engine(p);
  engine.ingestBackup(records);

  std::unordered_set<Fp, FpHash> naive;
  uint64_t naiveBytes = 0;
  for (const auto& r : records) {
    if (naive.insert(r.fp).second) naiveBytes += r.size;
  }
  EXPECT_EQ(engine.stats().uniqueChunks, naive.size());
  EXPECT_EQ(engine.stats().uniqueBytes, naiveBytes);
  EXPECT_EQ(engine.stats().logicalChunks, records.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DedupEngineProperty,
                         ::testing::Values(1, 17, 23, 77));

TEST(DedupEngine, LoadingDominatesWithSmallCache) {
  FDD_SKIP_WITHOUT_OBS();
  // The paper's observation (Section 7.4.2): with an insufficient cache,
  // loading access dominates total metadata traffic.
  DedupEngineParams p;
  p.containerBytes = 64 * 1024;
  p.cacheBytes = 8 * kFpMetadataBytes;  // pathologically small cache
  p.expectedFingerprints = 10'000;
  DedupEngine engine(p);
  Rng rng(5);
  std::vector<ChunkRecord> backup1;
  for (int i = 0; i < 2000; ++i) backup1.push_back({rng.next(), 4096});
  engine.ingestBackup(backup1);
  engine.flushOpenContainer();
  engine.ingestBackup(backup1);  // second backup: all duplicates
  const auto& m = engine.stats().metadata;
  EXPECT_GT(m.loadingBytes, m.updateBytes);
  EXPECT_GT(m.loadingBytes, m.indexBytes);
}

TEST(DedupEngine, SufficientCacheEliminatesRepeatLoading) {
  DedupEngineParams p;
  p.containerBytes = 64 * 1024;
  p.cacheBytes = 1'000'000 * kFpMetadataBytes;  // effectively unbounded
  p.expectedFingerprints = 10'000;
  DedupEngine engine(p);
  Rng rng(6);
  std::vector<ChunkRecord> backup;
  for (int i = 0; i < 2000; ++i) backup.push_back({rng.next(), 4096});
  engine.ingestBackup(backup);
  engine.flushOpenContainer();
  engine.ingestBackup(backup);
  const uint64_t loadingAfterSecond = engine.stats().metadata.loadingBytes;
  engine.ingestBackup(backup);  // third pass: everything cache-resident
  EXPECT_EQ(engine.stats().metadata.loadingBytes, loadingAfterSecond);
}

}  // namespace
}  // namespace freqdedup
