#include "storage/container.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

TEST(ContainerBuilder, AccumulatesChunks) {
  ContainerBuilder builder(1024);
  EXPECT_TRUE(builder.empty());
  builder.add(1, 100, toBytes(std::string(100, 'a')));
  builder.add(2, 200, toBytes(std::string(200, 'b')));
  EXPECT_EQ(builder.chunkCount(), 2u);
  EXPECT_EQ(builder.pendingBytes(), 300u);
}

TEST(ContainerBuilder, WouldOverflow) {
  ContainerBuilder builder(250);
  EXPECT_FALSE(builder.wouldOverflow(1000));  // empty builder always accepts
  builder.add(1, 200, {});
  EXPECT_TRUE(builder.wouldOverflow(100));
  EXPECT_FALSE(builder.wouldOverflow(50));
}

TEST(ContainerBuilder, SealResetsState) {
  ContainerBuilder builder(1024);
  builder.add(1, 10, {});
  const Container c = builder.seal(7);
  EXPECT_EQ(c.id, 7u);
  EXPECT_EQ(c.chunkCount(), 1u);
  EXPECT_TRUE(builder.empty());
  EXPECT_EQ(builder.pendingBytes(), 0u);
}

TEST(ContainerBuilder, SealEmptyRejected) {
  ContainerBuilder builder(1024);
  EXPECT_THROW(builder.seal(0), std::logic_error);
}

TEST(ContainerBuilder, SizeMismatchRejected) {
  ContainerBuilder builder(1024);
  EXPECT_THROW(builder.add(1, 10, toBytes("short")), std::logic_error);
}

TEST(ContainerBuilder, DataOffsetsTrackPayload) {
  ContainerBuilder builder(1024);
  builder.add(1, 3, toBytes("abc"));
  builder.add(2, 4, toBytes("defg"));
  const Container c = builder.seal(0);
  EXPECT_EQ(c.entries[0].dataOffset, 0u);
  EXPECT_EQ(c.entries[1].dataOffset, 3u);
  EXPECT_EQ(toString(ByteView(c.data.data() + 3, 4)), "defg");
}

TEST(Container, SerializeParseRoundtrip) {
  ContainerBuilder builder(1024);
  builder.add(0xAAAA, 5, toBytes("hello"));
  builder.add(0xBBBB, 5, toBytes("world"));
  const Container original = builder.seal(42);
  const Container parsed = parseContainer(serializeContainer(original));
  EXPECT_EQ(parsed.id, original.id);
  EXPECT_EQ(parsed.entries, original.entries);
  EXPECT_EQ(parsed.data, original.data);
}

TEST(Container, TraceModeRoundtrip) {
  ContainerBuilder builder(64 * 1024);
  builder.add(1, 8192, {});  // trace mode: size only, no bytes
  builder.add(2, 4096, {});
  const Container original = builder.seal(3);
  EXPECT_EQ(original.dataBytes(), 12288u);
  EXPECT_TRUE(original.data.empty());
  const Container parsed = parseContainer(serializeContainer(original));
  EXPECT_EQ(parsed.entries, original.entries);
}

TEST(Container, CorruptChecksumRejected) {
  ContainerBuilder builder(1024);
  builder.add(1, 3, toBytes("abc"));
  ByteVec bytes = serializeContainer(builder.seal(0));
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW(parseContainer(bytes), std::runtime_error);
}

TEST(Container, TruncatedInputRejected) {
  ContainerBuilder builder(1024);
  builder.add(1, 3, toBytes("abc"));
  ByteVec bytes = serializeContainer(builder.seal(0));
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(parseContainer(bytes), std::runtime_error);
}

TEST(Container, MetadataBytesAt32PerFingerprint) {
  ContainerBuilder builder(1024 * 1024);
  for (Fp fp = 0; fp < 10; ++fp) builder.add(fp, 100, {});
  EXPECT_EQ(builder.seal(0).metadataBytes(), 320u);
}

}  // namespace
}  // namespace freqdedup
