// Codec unit tests: round-trips across content shapes, the not-smaller
// fallback contract, the bounded-allocation decompression contract
// (expectedRawSize is authoritative; malformed streams and wrong size
// claims throw instead of over-allocating or overrunning), and random
// stream fuzz against the built-in LZ decoder.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "storage/codec.h"

namespace freqdedup {
namespace {

ByteVec repetitive(size_t n) {
  ByteVec data(n);
  for (size_t i = 0; i < n; ++i)
    data[i] = static_cast<uint8_t>("abcabcabd"[i % 9]);
  return data;
}

ByteVec randomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

/// The codec a build's "compress please" request actually runs.
ContainerCodec builtinCodec() {
  return effectiveCodec(ContainerCodec::kZstd);
}

TEST(Codec, NamesRoundTrip) {
  for (const ContainerCodec c :
       {ContainerCodec::kNone, ContainerCodec::kZstd,
        ContainerCodec::kDeflate}) {
    const auto back = codecFromName(codecName(c));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(codecFromName("gzip").has_value());
  EXPECT_FALSE(codecFromName("").has_value());
}

TEST(Codec, EffectiveCodecFallsBackOnlyWhenZstdUnavailable) {
  EXPECT_EQ(effectiveCodec(ContainerCodec::kNone), ContainerCodec::kNone);
  EXPECT_EQ(effectiveCodec(ContainerCodec::kDeflate),
            ContainerCodec::kDeflate);
  const ContainerCodec z = effectiveCodec(ContainerCodec::kZstd);
  if (codecAvailable(ContainerCodec::kZstd))
    EXPECT_EQ(z, ContainerCodec::kZstd);
  else
    EXPECT_EQ(z, ContainerCodec::kDeflate);
  EXPECT_TRUE(codecAvailable(z)) << "effective codec must always decode";
}

TEST(Codec, RoundTripsAcrossContentShapes) {
  const ContainerCodec codec = builtinCodec();
  const std::vector<ByteVec> inputs = {
      repetitive(10),          repetitive(1000),
      repetitive(100 * 1024),  ByteVec(64 * 1024, 0x00),
      ByteVec(5, 0xAB),        randomBytes(333, 7),
      repetitive(65536 + 17),  // matches straddling the max offset
  };
  for (const ByteVec& raw : inputs) {
    const auto compressed = compressBytes(codec, raw);
    if (!compressed.has_value()) continue;  // incompressible: caller stores raw
    ASSERT_LT(compressed->size(), raw.size());
    EXPECT_EQ(decompressBytes(codec, *compressed, raw.size()), raw);
  }
}

TEST(Codec, HighlyRepetitiveContentCompressesWell) {
  const ByteVec raw = repetitive(256 * 1024);
  const auto compressed = compressBytes(builtinCodec(), raw);
  ASSERT_TRUE(compressed.has_value());
  EXPECT_LT(compressed->size(), raw.size() / 4);
}

TEST(Codec, IncompressibleAndEmptyInputsReturnNullopt) {
  // Random bytes (ciphertext-like) must not "compress" to something larger.
  EXPECT_FALSE(
      compressBytes(builtinCodec(), randomBytes(64 * 1024, 3)).has_value());
  EXPECT_FALSE(compressBytes(builtinCodec(), ByteVec{}).has_value());
  EXPECT_FALSE(compressBytes(ContainerCodec::kNone, repetitive(1024))
                   .has_value());
}

TEST(Codec, NoneDecodeDemandsExactSize) {
  const ByteVec raw = repetitive(100);
  EXPECT_EQ(decompressBytes(ContainerCodec::kNone, raw, raw.size()), raw);
  EXPECT_THROW(decompressBytes(ContainerCodec::kNone, raw, raw.size() + 1),
               std::runtime_error);
  EXPECT_THROW(decompressBytes(ContainerCodec::kNone, raw, raw.size() - 1),
               std::runtime_error);
}

TEST(Codec, WrongExpectedSizeClaimsThrowInsteadOfMisallocating) {
  const ContainerCodec codec = builtinCodec();
  const ByteVec raw = repetitive(32 * 1024);
  const auto compressed = compressBytes(codec, raw);
  ASSERT_TRUE(compressed.has_value());
  // Claiming too small: the stream wants to write past the claim → throw,
  // never a buffer overrun.
  EXPECT_THROW(decompressBytes(codec, *compressed, raw.size() - 1),
               std::runtime_error);
  EXPECT_THROW(decompressBytes(codec, *compressed, 1), std::runtime_error);
  // Claiming too large: the stream ends early → size mismatch, never
  // uninitialized tail bytes.
  EXPECT_THROW(decompressBytes(codec, *compressed, raw.size() + 1),
               std::runtime_error);
  EXPECT_THROW(decompressBytes(codec, *compressed, raw.size() * 100),
               std::runtime_error);
}

TEST(Codec, TruncatedStreamsThrowOrStayExact) {
  // Truncation must never yield wrong bytes of the right size. (Dropping a
  // redundant trailing empty-literal token can leave a stream that still
  // decodes identically — the container-frame CRC rejects the physical
  // truncation — so "decodes to exactly the original" is also acceptable.)
  const ContainerCodec codec = builtinCodec();
  const ByteVec raw = repetitive(32 * 1024);
  const auto compressed = compressBytes(codec, raw);
  ASSERT_TRUE(compressed.has_value());
  for (size_t keep = 0; keep < compressed->size(); ++keep) {
    const ByteVec cut(compressed->begin(),
                      compressed->begin() + static_cast<ptrdiff_t>(keep));
    try {
      const ByteVec out = decompressBytes(codec, cut, raw.size());
      ASSERT_EQ(out, raw) << "kept " << keep << " of " << compressed->size();
    } catch (const std::runtime_error&) {
      // The expected outcome for nearly every cut.
    }
  }
}

TEST(Codec, RandomStreamFuzzNeverCrashesTheDecoder) {
  // Random garbage fed to the decoder must either throw or produce exactly
  // expectedRawSize bytes — never crash, hang, or over-allocate. (ASan/UBSan
  // builds turn any overrun into a hard failure here.)
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    const size_t n = 1 + rng.next() % 512;
    const ByteVec garbage = randomBytes(n, rng.next());
    const uint64_t claim = rng.next() % 2048;
    try {
      const ByteVec out =
          decompressBytes(ContainerCodec::kDeflate, garbage, claim);
      EXPECT_EQ(out.size(), claim);
    } catch (const std::runtime_error&) {
      // Expected for most garbage.
    }
  }
}

TEST(Codec, BitFlippedStreamsEitherThrowOrChangeOutput) {
  // A single flipped bit anywhere in a valid stream must never be able to
  // silently produce the original bytes AND a clean size; it either throws
  // or yields different output (the container CRC then catches it).
  const ContainerCodec codec = ContainerCodec::kDeflate;
  const ByteVec raw = repetitive(4096);
  const auto compressed = compressBytes(codec, raw);
  ASSERT_TRUE(compressed.has_value());
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    ByteVec mutated = *compressed;
    mutated[rng.next() % mutated.size()] ^=
        static_cast<uint8_t>(1u << (rng.next() % 8));
    try {
      const ByteVec out = decompressBytes(codec, mutated, raw.size());
      ASSERT_EQ(out.size(), raw.size());
    } catch (const std::runtime_error&) {
    }
  }
}

}  // namespace
}  // namespace freqdedup
