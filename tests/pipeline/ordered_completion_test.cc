// orderedProduceConsume: strict in-order consumption, bounded look-ahead
// window, and clean error propagation from both stages.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pipeline/ordered_completion.h"

namespace freqdedup {
namespace {

TEST(OrderedCompletion, ConsumesInOrderDespiteOutOfOrderProduction) {
  ThreadPool pool(4);
  constexpr size_t kN = 64;
  std::vector<size_t> consumed;
  orderedProduceConsume<size_t>(
      &pool, /*lookahead=*/3, kN,
      [](size_t i) {
        // Earlier indices take longer, so production completes out of order.
        std::this_thread::sleep_for(std::chrono::microseconds((kN - i) * 50));
        return i * 10;
      },
      [&](size_t i, size_t&& r) {
        EXPECT_EQ(r, i * 10);
        consumed.push_back(i);
      });
  ASSERT_EQ(consumed.size(), kN);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(consumed[i], i);
}

TEST(OrderedCompletion, WindowBoundsInFlightProduction) {
  ThreadPool pool(8);
  constexpr size_t kLookahead = 2;
  std::atomic<size_t> inFlight{0};
  std::atomic<size_t> highWater{0};
  orderedProduceConsume<size_t>(
      &pool, kLookahead, 48,
      [&](size_t i) {
        const size_t now = ++inFlight;
        size_t seen = highWater.load();
        while (now > seen && !highWater.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        --inFlight;
        return i;
      },
      [&](size_t i, size_t&& r) { EXPECT_EQ(r, i); });
  // At most the result being awaited plus `lookahead` ahead — the refill
  // happens after consumption, so the window never exceeds this.
  EXPECT_LE(highWater.load(), kLookahead + 1);
  EXPECT_GE(highWater.load(), 1u);
}

TEST(OrderedCompletion, ProducerErrorStopsConsumptionAtTheFailure) {
  ThreadPool pool(4);
  std::vector<size_t> consumed;
  EXPECT_THROW(
      orderedProduceConsume<size_t>(
          &pool, 3, 32,
          [](size_t i) -> size_t {
            if (i == 10) throw std::runtime_error("produce failed");
            return i;
          },
          [&](size_t i, size_t&&) { consumed.push_back(i); }),
      std::runtime_error);
  // Everything before the failed index was consumed in order; nothing after.
  ASSERT_EQ(consumed.size(), 10u);
  for (size_t i = 0; i < consumed.size(); ++i) EXPECT_EQ(consumed[i], i);
}

TEST(OrderedCompletion, ConsumerErrorPropagatesAfterDrainingProducers) {
  ThreadPool pool(4);
  std::atomic<size_t> produced{0};
  EXPECT_THROW(
      orderedProduceConsume<size_t>(
          &pool, 3, 32,
          [&](size_t i) {
            ++produced;
            return i;
          },
          [](size_t i, size_t&&) {
            if (i == 5) throw std::runtime_error("consume failed");
          }),
      std::runtime_error);
  // The pool is reusable afterwards: no task of the failed call lingers.
  std::atomic<size_t> after{0};
  orderedProduceConsume<size_t>(
      &pool, 2, 8, [](size_t i) { return i; },
      [&](size_t, size_t&&) { ++after; });
  EXPECT_EQ(after.load(), 8u);
}

TEST(OrderedCompletion, RunsInlineWithoutPoolOrLookahead) {
  std::vector<size_t> consumed;
  orderedProduceConsume<size_t>(
      nullptr, 4, 5, [](size_t i) { return i + 1; },
      [&](size_t i, size_t&& r) {
        EXPECT_EQ(r, i + 1);
        consumed.push_back(i);
      });
  EXPECT_EQ(consumed.size(), 5u);

  ThreadPool pool(2);
  consumed.clear();
  orderedProduceConsume<size_t>(
      &pool, 0, 5, [](size_t i) { return i; },
      [&](size_t i, size_t&&) { consumed.push_back(i); });
  EXPECT_EQ(consumed.size(), 5u);
  for (size_t i = 0; i < consumed.size(); ++i) EXPECT_EQ(consumed[i], i);
}

TEST(OrderedCompletion, HandlesZeroAndOneItem) {
  ThreadPool pool(2);
  size_t calls = 0;
  orderedProduceConsume<int>(
      &pool, 2, 0, [](size_t) { return 0; },
      [&](size_t, int&&) { ++calls; });
  EXPECT_EQ(calls, 0u);
  orderedProduceConsume<int>(
      &pool, 2, 1, [](size_t) { return 7; },
      [&](size_t i, int&& r) {
        EXPECT_EQ(i, 0u);
        EXPECT_EQ(r, 7);
        ++calls;
      });
  EXPECT_EQ(calls, 1u);
}

}  // namespace
}  // namespace freqdedup
