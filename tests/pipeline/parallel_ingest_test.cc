#include "pipeline/parallel_ingest_pipeline.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "storage/dedup_engine.h"

namespace freqdedup {
namespace {

DedupEngineParams smallParams() {
  DedupEngineParams p;
  p.containerBytes = 64 * 1024;
  p.cacheBytes = 1024 * kFpMetadataBytes;
  p.expectedFingerprints = 200'000;
  return p;
}

/// A multi-backup stream with churn: each backup mutates a slice of the
/// previous one, like the synthetic dataset generators.
std::vector<std::vector<ChunkRecord>> churnBackups(uint64_t seed,
                                                   size_t backups,
                                                   size_t chunksPerBackup) {
  Rng rng(seed);
  std::vector<std::vector<ChunkRecord>> result;
  std::vector<ChunkRecord> current;
  for (size_t i = 0; i < chunksPerBackup; ++i)
    current.push_back(
        {rng.next(), static_cast<uint32_t>(rng.uniformInt(1024, 8192))});
  result.push_back(current);
  for (size_t b = 1; b < backups; ++b) {
    for (size_t m = 0; m < chunksPerBackup / 10; ++m)
      current[rng.pickIndex(current.size())] = {
          rng.next(), static_cast<uint32_t>(rng.uniformInt(1024, 8192))};
    result.push_back(current);
  }
  return result;
}

DedupEngineStats runSerialEngine(
    const std::vector<std::vector<ChunkRecord>>& backups) {
  DedupEngine engine(smallParams());
  for (const auto& backup : backups) engine.ingestBackup(backup);
  engine.flushOpenContainer();
  return engine.stats();
}

TEST(ParallelIngestPipeline, ParallelismOneIsBitIdenticalToSerialEngine) {
  const auto backups = churnBackups(3, 4, 5000);
  const DedupEngineStats serial = runSerialEngine(backups);

  PipelineOptions options;
  options.parallelism = 1;
  ParallelIngestPipeline pipeline(smallParams(), options);
  EXPECT_FALSE(pipeline.parallel());
  for (const auto& backup : backups) pipeline.ingestBackup(backup);
  pipeline.finish();
  const DedupEngineStats p = pipeline.stats();

  // Every counter matches, including path counters and metadata accounting:
  // the serial pipeline IS the serial engine.
  EXPECT_EQ(p.logicalChunks, serial.logicalChunks);
  EXPECT_EQ(p.logicalBytes, serial.logicalBytes);
  EXPECT_EQ(p.uniqueChunks, serial.uniqueChunks);
  EXPECT_EQ(p.uniqueBytes, serial.uniqueBytes);
  EXPECT_EQ(p.cacheHits, serial.cacheHits);
  EXPECT_EQ(p.bufferHits, serial.bufferHits);
  EXPECT_EQ(p.bloomNegatives, serial.bloomNegatives);
  EXPECT_EQ(p.bloomFalsePositives, serial.bloomFalsePositives);
  EXPECT_EQ(p.indexHits, serial.indexHits);
  EXPECT_EQ(p.metadata.updateBytes, serial.metadata.updateBytes);
  EXPECT_EQ(p.metadata.indexBytes, serial.metadata.indexBytes);
  EXPECT_EQ(p.metadata.loadingBytes, serial.metadata.loadingBytes);
}

TEST(ParallelIngestPipeline, ParallelismOneIsDeterministicAcrossRuns) {
  const auto backups = churnBackups(4, 3, 4000);
  const auto runOnce = [&] {
    ParallelIngestPipeline pipeline(smallParams(), {});
    for (const auto& backup : backups) pipeline.ingestBackup(backup);
    pipeline.finish();
    return pipeline.stats();
  };
  const DedupEngineStats a = runOnce();
  const DedupEngineStats b = runOnce();
  EXPECT_EQ(a.uniqueChunks, b.uniqueChunks);
  EXPECT_EQ(a.cacheHits, b.cacheHits);
  EXPECT_EQ(a.metadata.totalBytes(), b.metadata.totalBytes());
}

class ParallelIngestEquivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParallelIngestEquivalence, ParallelMatchesSerialDedupResults) {
  const auto backups = churnBackups(5, 4, 10'000);
  const DedupEngineStats serial = runSerialEngine(backups);

  PipelineOptions options;
  options.parallelism = GetParam();
  options.batchRecords = 512;  // force many batches through the queues
  options.queueCapacity = 8;
  ParallelIngestPipeline pipeline(smallParams(), options);
  EXPECT_TRUE(pipeline.parallel());
  for (const auto& backup : backups) pipeline.ingestBackup(backup);
  pipeline.finish();
  const DedupEngineStats p = pipeline.stats();

  // Dedup-relevant results are exact for any thread count and interleaving.
  EXPECT_EQ(p.logicalChunks, serial.logicalChunks);
  EXPECT_EQ(p.logicalBytes, serial.logicalBytes);
  EXPECT_EQ(p.uniqueChunks, serial.uniqueChunks);
  EXPECT_EQ(p.uniqueBytes, serial.uniqueBytes);
  EXPECT_DOUBLE_EQ(p.dedupRatio(), serial.dedupRatio());
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelIngestEquivalence,
                         ::testing::Values(2u, 4u, 8u));

TEST(ParallelIngestPipeline, ParallelRunsAreDeterministicOnDedupResults) {
  const auto backups = churnBackups(6, 3, 8000);
  const auto runOnce = [&] {
    PipelineOptions options;
    options.parallelism = 4;
    options.batchRecords = 256;
    ParallelIngestPipeline pipeline(smallParams(), options);
    for (const auto& backup : backups) pipeline.ingestBackup(backup);
    pipeline.finish();
    return pipeline.stats();
  };
  const DedupEngineStats a = runOnce();
  const DedupEngineStats b = runOnce();
  EXPECT_EQ(a.uniqueChunks, b.uniqueChunks);
  EXPECT_EQ(a.uniqueBytes, b.uniqueBytes);
  EXPECT_EQ(a.logicalBytes, b.logicalBytes);
}

TEST(ParallelIngestPipeline, TransformRunsInWorkerStage) {
  const auto backups = churnBackups(7, 2, 5000);
  const auto transform = [](const ChunkRecord& r) {
    return ChunkRecord{mix64(r.fp), r.size};
  };

  DedupEngine serial(smallParams());
  for (const auto& backup : backups)
    for (const auto& r : backup) serial.ingest(transform(r));
  serial.flushOpenContainer();

  PipelineOptions options;
  options.parallelism = 4;
  ParallelIngestPipeline pipeline(smallParams(), options, transform);
  for (const auto& backup : backups) pipeline.ingestBackup(backup);
  pipeline.finish();

  EXPECT_EQ(pipeline.stats().uniqueChunks, serial.stats().uniqueChunks);
  EXPECT_EQ(pipeline.stats().uniqueBytes, serial.stats().uniqueBytes);
}

TEST(ParallelIngestPipeline, TransformExceptionPropagatesToCaller) {
  const auto backups = churnBackups(8, 1, 5000);
  PipelineOptions options;
  options.parallelism = 4;
  options.batchRecords = 128;
  ParallelIngestPipeline pipeline(
      smallParams(), options, [](const ChunkRecord& r) -> ChunkRecord {
        if (r.size == 0) return r;  // unreachable; keeps the lambda honest
        throw std::runtime_error("transform failed");
      });
  EXPECT_THROW(pipeline.ingestBackup(backups[0]), std::runtime_error);
}

TEST(ParallelIngestPipeline, EmptyAndTinyStreams) {
  PipelineOptions options;
  options.parallelism = 4;
  ParallelIngestPipeline pipeline(smallParams(), options);
  pipeline.ingestBackup({});  // no records: workers start and drain cleanly
  pipeline.finish();
  EXPECT_EQ(pipeline.stats().logicalChunks, 0u);
  EXPECT_EQ(pipeline.stats().dedupRatio(), 0.0);

  const std::vector<ChunkRecord> one = {{42, 4096}};
  pipeline.ingestBackup(one);
  pipeline.finish();
  if (obs::kObsEnabled) {
    EXPECT_EQ(pipeline.stats().logicalChunks, 1u);
    EXPECT_EQ(pipeline.stats().uniqueChunks, 1u);
  }
}

}  // namespace
}  // namespace freqdedup
