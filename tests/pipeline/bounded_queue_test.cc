#include "pipeline/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace freqdedup {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.tryPush(1));
  EXPECT_TRUE(q.tryPush(2));
  EXPECT_FALSE(q.tryPush(3));  // full
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_TRUE(q.tryPush(3));
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.push(8);
  q.close();
  EXPECT_FALSE(q.push(9));  // rejected after close
  EXPECT_EQ(q.pop(), 7);    // queued items still delivered
  EXPECT_EQ(q.pop(), 8);
  EXPECT_EQ(q.pop(), std::nullopt);  // drained: end of stream
  EXPECT_EQ(q.pop(), std::nullopt);  // stays terminal
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();
}

TEST(BoundedQueue, BackpressureBlocksProducerUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> secondPushDone{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks: queue is full
    secondPushDone = true;
  });
  // Give the producer a chance to block on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(secondPushDone);
  EXPECT_EQ(q.pop(), 1);  // frees a slot; the producer resumes
  EXPECT_EQ(q.pop(), 2);
  producer.join();
  EXPECT_TRUE(secondPushDone);
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

TEST(BoundedQueue, ManyProducersManyConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(16);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  }

  std::atomic<int> popped{0};
  std::atomic<long long> sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++popped;
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(popped, total);
  EXPECT_EQ(sum, static_cast<long long>(total) * (total - 1) / 2);
}

}  // namespace
}  // namespace freqdedup
