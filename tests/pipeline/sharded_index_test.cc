#include "pipeline/sharded_dedup_index.h"

#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "storage/dedup_engine.h"

namespace freqdedup {
namespace {

DedupEngineParams smallParams() {
  DedupEngineParams p;
  p.containerBytes = 64 * 1024;
  p.cacheBytes = 512 * kFpMetadataBytes;
  p.expectedFingerprints = 100'000;
  return p;
}

std::vector<ChunkRecord> randomTrace(uint64_t seed, size_t n,
                                     uint64_t fpSpace) {
  Rng rng(seed);
  std::vector<ChunkRecord> records;
  records.reserve(n);
  std::unordered_map<Fp, uint32_t, FpHash> sizeOf;  // fp -> canonical size
  for (size_t i = 0; i < n; ++i) {
    const Fp fp = rng.uniformInt(0, fpSpace);
    const auto [it, inserted] = sizeOf.try_emplace(
        fp, static_cast<uint32_t>(rng.uniformInt(1024, 8192)));
    records.push_back({fp, it->second});
  }
  return records;
}

TEST(ShardedDedupIndex, RoutingIsStablePerFingerprint) {
  ShardedIndexParams params;
  params.engine = smallParams();
  params.shards = 7;
  ShardedDedupIndex index(params);
  EXPECT_EQ(index.shardCount(), 7u);
  for (Fp fp = 0; fp < 1000; ++fp) {
    EXPECT_EQ(index.shardOf(fp), index.shardOf(fp));
    EXPECT_LT(index.shardOf(fp), 7u);
  }
}

TEST(ShardedDedupIndex, SerialIngestMatchesSerialEngineUniqueCounts) {
  const auto trace = randomTrace(11, 20'000, 3000);

  DedupEngine serial(smallParams());
  serial.ingestBackup(trace);
  serial.flushOpenContainer();

  ShardedIndexParams params;
  params.engine = smallParams();
  params.shards = 8;
  ShardedDedupIndex sharded(params);
  for (const auto& r : trace) sharded.ingest(r);
  sharded.flushOpenContainers();

  const DedupEngineStats a = serial.stats();
  const DedupEngineStats b = sharded.mergedStats();
  EXPECT_EQ(a.logicalChunks, b.logicalChunks);
  EXPECT_EQ(a.logicalBytes, b.logicalBytes);
  EXPECT_EQ(a.uniqueChunks, b.uniqueChunks);
  EXPECT_EQ(a.uniqueBytes, b.uniqueBytes);
  EXPECT_DOUBLE_EQ(a.dedupRatio(), b.dedupRatio());
  EXPECT_EQ(sharded.indexEntries(), serial.indexEntries());
}

TEST(ShardedDedupIndex, MergedStatsEqualSumOfShardStats) {
  const auto trace = randomTrace(12, 10'000, 2000);
  ShardedIndexParams params;
  params.engine = smallParams();
  params.shards = 5;
  ShardedDedupIndex index(params);
  for (const auto& r : trace) index.ingest(r);
  index.flushOpenContainers();

  DedupEngineStats summed;
  for (uint32_t s = 0; s < index.shardCount(); ++s)
    summed += index.shardStats(s);
  const DedupEngineStats merged = index.mergedStats();
  EXPECT_EQ(summed.logicalChunks, merged.logicalChunks);
  EXPECT_EQ(summed.uniqueChunks, merged.uniqueChunks);
  EXPECT_EQ(summed.uniqueBytes, merged.uniqueBytes);
  EXPECT_EQ(summed.metadata.totalBytes(), merged.metadata.totalBytes());
}

TEST(ShardedDedupIndex, ConcurrentShardBatchesMatchSerialUniqueCounts) {
  const auto trace = randomTrace(13, 50'000, 4000);

  DedupEngine serial(smallParams());
  serial.ingestBackup(trace);
  serial.flushOpenContainer();

  constexpr uint32_t kShards = 8;
  ShardedIndexParams params;
  params.engine = smallParams();
  params.shards = kShards;
  ShardedDedupIndex sharded(params);

  // Partition by shard, then ingest every shard from its own thread.
  std::vector<std::vector<ChunkRecord>> perShard(kShards);
  for (const auto& r : trace) perShard[sharded.shardOf(r.fp)].push_back(r);
  std::vector<std::thread> workers;
  for (uint32_t s = 0; s < kShards; ++s) {
    workers.emplace_back(
        [&sharded, &perShard, s] { sharded.ingestShardBatch(s, perShard[s]); });
  }
  for (auto& w : workers) w.join();
  sharded.flushOpenContainers();

  const DedupEngineStats a = serial.stats();
  const DedupEngineStats b = sharded.mergedStats();
  EXPECT_EQ(a.uniqueChunks, b.uniqueChunks);
  EXPECT_EQ(a.uniqueBytes, b.uniqueBytes);
  EXPECT_EQ(a.logicalChunks, b.logicalChunks);
  EXPECT_DOUBLE_EQ(a.dedupRatio(), b.dedupRatio());
}

}  // namespace
}  // namespace freqdedup
