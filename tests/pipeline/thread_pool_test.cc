#include "pipeline/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace freqdedup {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(pool.submit([&] { ++ran; }));
  pool.wait();
  EXPECT_EQ(ran, 100);
}

TEST(ThreadPool, WaitReturnsImmediatelyWhenIdle) {
  ThreadPool pool(2);
  pool.wait();  // nothing submitted: must not hang
}

TEST(ThreadPool, PoolStaysUsableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.wait();
  pool.submit([&] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran, 2);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1, /*queueCapacity=*/64);
    for (int i = 0; i < 32; ++i)
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    pool.shutdown();  // graceful: queued tasks still execute
  }
  EXPECT_EQ(ran, 32);
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, BackpressureBoundsTheQueue) {
  ThreadPool pool(1, /*queueCapacity=*/1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // First task occupies the worker until released; the queue holds one more.
  pool.submit([&] {
    while (!release) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++ran;
  });
  pool.submit([&] { ++ran; });  // sits in the queue

  std::atomic<bool> thirdAccepted{false};
  std::thread submitter([&] {
    pool.submit([&] { ++ran; });  // blocks until a slot frees up
    thirdAccepted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(thirdAccepted);  // still blocked: backpressure

  release = true;
  submitter.join();
  pool.wait();
  EXPECT_EQ(ran, 3);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    constexpr size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    parallelFor(threads, kN, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  pool.submit([&] { ++ran; });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(ran, 1);  // the non-throwing task still ran
  // The pool stays usable and the error does not resurface.
  pool.submit([&] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran, 2);
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  EXPECT_THROW(parallelFor(4, 1000,
                           [](size_t begin, size_t end) {
                             for (size_t i = begin; i < end; ++i)
                               if (i == 577)
                                 throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // Inline path (threads == 1) propagates directly.
  EXPECT_THROW(parallelFor(1, 10,
                           [](size_t, size_t) {
                             throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  parallelFor(4, 0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor(4, 1, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForShared, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  parallelForShared(pool, kN, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelForShared, ConcurrentCallersShareOnePool) {
  // The whole point of parallelForShared: several threads drive independent
  // ranges through one pool simultaneously, each waiting only for its own
  // blocks (parallelFor's pool.wait() would be racy here).
  ThreadPool pool(4);
  constexpr size_t kCallers = 4;
  constexpr size_t kN = 5'000;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kN);

  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      parallelForShared(pool, kN, [&, c](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ++hits[c][i];
      });
    });
  }
  for (auto& t : callers) t.join();
  for (size_t c = 0; c < kCallers; ++c)
    for (size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[c][i], 1) << "caller " << c << " index " << i;
}

TEST(ParallelForShared, PropagatesBodyExceptionsToItsOwnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(parallelForShared(pool, 1000,
                                 [](size_t begin, size_t end) {
                                   for (size_t i = begin; i < end; ++i)
                                     if (i == 577)
                                       throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The error does not leak into the pool's own error slot: a later wait()
  // (or another caller) must not see it.
  pool.wait();
  std::atomic<int> ran{0};
  parallelForShared(pool, 16, [&](size_t begin, size_t end) {
    ran += static_cast<int>(end - begin);
  });
  EXPECT_EQ(ran, 16);
}

TEST(ParallelForShared, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallelForShared(pool, 0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelForShared(pool, 1, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace freqdedup
