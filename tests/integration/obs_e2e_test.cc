// End-to-end metrics assertions: after backup -> restore -> delete -> gc,
// the registry snapshots must tell the same story the operations do —
// session counters in the global registry, store/cache/GC counters in the
// store's own registry. All value assertions are interval deltas (this test
// shares the global registry with everything else in the binary) and are
// gated on obs::kObsEnabled so a FREQDEDUP_OBS=OFF build still passes.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "chunking/cdc_chunker.h"
#include "client/dedup_client.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

ByteVec makeObject(uint64_t seed, size_t bytes) {
  Rng rng(seed);
  ByteVec data(bytes);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

TEST(ObsEndToEnd, BackupRestoreDeleteGcCounters) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "metrics compiled out";
  const auto dir = std::filesystem::temp_directory_path() / "fdd_obs_e2e";
  std::filesystem::remove_all(dir);

  FileBackupStore store(dir.string());
  KeyManager km(toBytes("obs-e2e-secret"));
  CdcChunker chunker;
  BackupOptions options;
  options.scheme = EncryptionScheme::kMinHashScrambled;
  DedupClient client(store, km, chunker, options);
  const AesKey userKey = userKeyFromPassphrase("obs-e2e");
  Rng rng(7);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  const ByteVec objectA = makeObject(1, 1 << 20);
  const ByteVec objectB = makeObject(2, 1 << 20);

  // Backup two objects (the second twice-appended bytes are distinct).
  for (const auto& [name, object] :
       {std::pair{"a.bin", &objectA}, std::pair{"b.bin", &objectB}}) {
    BackupSession session = client.beginBackup(name);
    session.append(*object);
    client.commitBackup(name, session.finish(), userKey, rng);
  }
  store.flush();

  const obs::MetricsSnapshot afterBackup =
      obs::MetricsRegistry::global().snapshot().delta(before);
  EXPECT_EQ(afterBackup.counter("backup.sessions_opened"), 2u);
  EXPECT_EQ(afterBackup.counter("backup.bytes_appended"), 2u << 20);
  EXPECT_GT(afterBackup.counter("chunk.chunks_produced"), 0u);
  EXPECT_EQ(afterBackup.counter("chunk.bytes_total"), 2u << 20);
  EXPECT_GT(afterBackup.counter("chunk.segments_closed"), 0u);
  EXPECT_EQ(afterBackup.counter("backup.chunks_new") +
                afterBackup.counter("backup.chunks_duplicate"),
            afterBackup.counter("chunk.chunks_produced"));
  EXPECT_GT(afterBackup.histogram("backup.append_us").count, 0u);
  EXPECT_EQ(afterBackup.histogram("chunk.size_bytes").sum, 2u << 20);

  const obs::MetricsSnapshot storeAfterBackup = store.metricsSnapshot();
  EXPECT_EQ(storeAfterBackup.counter("store.put_chunks"),
            afterBackup.counter("chunk.chunks_produced"));
  EXPECT_EQ(storeAfterBackup.counter("store.backups_recorded"), 2u);
  EXPECT_GT(storeAfterBackup.gauge("store.unique_chunks"), 0);

  // Restore both and byte-compare.
  for (const auto& [name, object] :
       {std::pair{"a.bin", &objectA}, std::pair{"b.bin", &objectB}}) {
    RestoreSession session = client.beginRestore(name, userKey);
    EXPECT_EQ(session.readAll(), *object);
  }
  const obs::MetricsSnapshot afterRestore =
      obs::MetricsRegistry::global().snapshot().delta(before);
  EXPECT_EQ(afterRestore.counter("restore.sessions_opened"), 2u);
  EXPECT_EQ(afterRestore.counter("restore.bytes_streamed"), 2u << 20);
  EXPECT_EQ(afterRestore.counter("restore.chunks_streamed"),
            afterBackup.counter("chunk.chunks_produced"));
  EXPECT_GT(afterRestore.counter("restore.batches_planned"), 0u);
  EXPECT_EQ(afterRestore.gauge("restore.prefetch_window"), 0);
  EXPECT_EQ(afterRestore.histogram("restore.batch_bytes").sum, 2u << 20);

  const obs::MetricsSnapshot storeAfterRestore = store.metricsSnapshot();
  EXPECT_EQ(storeAfterRestore.counter("store.chunk_reads"),
            afterRestore.counter("restore.chunks_streamed"));
  EXPECT_GT(storeAfterRestore.counter("store.batch_reads"), 0u);
  EXPECT_GT(storeAfterRestore.counter("store.container_loads") +
                storeAfterRestore.counter("store.read_cache_hits"),
            0u);

  // Delete one backup and collect garbage; the store registry must record
  // the GC pass and the gauges must shrink accordingly.
  const int64_t uniqueBefore = storeAfterRestore.gauge("store.unique_chunks");
  ASSERT_TRUE(client.deleteBackup("a.bin"));
  const GcStats gc = store.collectGarbage();
  EXPECT_GT(gc.chunksReclaimed, 0u);

  const obs::MetricsSnapshot storeAfterGc = store.metricsSnapshot();
  EXPECT_EQ(storeAfterGc.counter("store.backups_released"), 1u);
  EXPECT_EQ(storeAfterGc.counter("store.gc_runs"), 1u);
  EXPECT_EQ(storeAfterGc.counter("store.gc_reclaimed_chunks"),
            gc.chunksReclaimed);
  EXPECT_EQ(storeAfterGc.counter("store.gc_reclaimed_bytes"),
            gc.bytesReclaimed);
  EXPECT_EQ(storeAfterGc.counter("store.gc_relocated_chunks"),
            gc.chunksRelocated);
  EXPECT_EQ(storeAfterGc.gauge("store.unique_chunks"),
            uniqueBefore - static_cast<int64_t>(gc.chunksReclaimed));
  EXPECT_EQ(storeAfterGc.histogram("store.gc_us").count, 1u);

  // The survivor still restores after GC.
  RestoreSession session = client.beginRestore("b.bin", userKey);
  EXPECT_EQ(session.readAll(), objectB);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace freqdedup
