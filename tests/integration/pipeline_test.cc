// Cross-module integration tests: trace pipeline (datagen -> encryption ->
// attack -> defense -> evaluation), content pipeline (corpus -> chunking ->
// MLE -> dedup store -> restore), and the DDFS engine fed by defended traces.
#include <gtest/gtest.h>

#include "chunking/cdc_chunker.h"
#include "core/attack_eval.h"
#include "core/attacks.h"
#include "core/defense.h"
#include "core/storage_saving.h"
#include "datagen/fsl_gen.h"
#include "datagen/snapshot_gen.h"
#include "datagen/vm_gen.h"
#include "obs/metrics.h"
#include "storage/backup_manager.h"
#include "storage/container_backup_store.h"
#include "storage/dedup_engine.h"
#include "trace/trace_io.h"

namespace freqdedup {
namespace {

FslGenParams smallFsl() {
  FslGenParams p;
  p.users = 3;
  p.backups = 3;
  p.filesPerUser = 50;
  p.sharedTemplateFiles = 80;
  return p;
}

TEST(TracePipeline, LocalityBeatsBasicAndDefenseBeatsBoth) {
  const Dataset fsl = generateFslDataset(smallFsl());
  const auto& aux = fsl.backups[1].records;
  const auto& plainTarget = fsl.backups[2].records;

  const EncryptedTrace mleTarget = mleEncryptTrace(plainTarget);
  const AttackResult basic = basicAttack(mleTarget.records, aux);
  AttackConfig cfg;
  cfg.sizeAware = true;
  const AttackResult advanced = localityAttack(mleTarget.records, aux, cfg);

  const double basicRate = inferenceRate(basic, mleTarget);
  const double advancedRate = inferenceRate(advanced, mleTarget);
  EXPECT_GT(advancedRate, basicRate);
  EXPECT_GT(advancedRate, 0.01);

  // The combined defense collapses the same attack.
  DefenseConfig defense;
  defense.scramble = true;
  const EncryptedTrace defendedTarget =
      minHashEncryptTrace(plainTarget, defense);
  const AttackResult attacked =
      localityAttack(defendedTarget.records, aux, cfg);
  EXPECT_LT(inferenceRate(attacked, defendedTarget), advancedRate / 3);
}

TEST(TracePipeline, KnownPlaintextOutperformsCiphertextOnly) {
  const Dataset fsl = generateFslDataset(smallFsl());
  const auto& aux = fsl.backups[1].records;
  const EncryptedTrace target = mleEncryptTrace(fsl.backups[2].records);

  AttackConfig co;
  co.sizeAware = true;
  const double coRate =
      inferenceRate(localityAttack(target.records, aux, co), target);

  AttackConfig kp = co;
  kp.mode = AttackMode::kKnownPlaintext;
  Rng rng(5);
  kp.leakedPairs = sampleLeakedPairs(target, 0.01, rng);
  const double kpRate =
      inferenceRate(localityAttack(target.records, aux, kp), target);
  EXPECT_GE(kpRate, coRate);
}

TEST(TracePipeline, MinHashStorageCostIsBounded) {
  const Dataset fsl = generateFslDataset(smallFsl());
  CumulativeDedup mle, combined;
  DefenseConfig defense;
  defense.scramble = true;
  SavingPoint mlePoint, combinedPoint;
  for (const auto& backup : fsl.backups) {
    mlePoint = mle.addBackup(mleEncryptTrace(backup.records).records);
    combinedPoint = combined.addBackup(
        minHashEncryptTrace(backup.records, defense).records);
  }
  EXPECT_LE(combinedPoint.savingPct, mlePoint.savingPct);
  // Paper (Section 7.3): at most a few percentage points of saving lost.
  EXPECT_LT(mlePoint.savingPct - combinedPoint.savingPct, 10.0);
}

TEST(TracePipeline, VmFixedSizeMakesAdvancedEqualLocality) {
  VmGenParams p;
  p.users = 2;
  p.weeks = 4;
  p.baseImageChunks = 3000;
  p.heavyWeekFirst = 2;
  p.heavyWeekLast = 2;
  const Dataset vm = generateVmDataset(p);
  const EncryptedTrace target = mleEncryptTrace(vm.backups[3].records);
  AttackConfig plainCfg;
  AttackConfig sizedCfg;
  sizedCfg.sizeAware = true;
  const AttackResult a =
      localityAttack(target.records, vm.backups[2].records, plainCfg);
  const AttackResult b =
      localityAttack(target.records, vm.backups[2].records, sizedCfg);
  EXPECT_EQ(a.inferred, b.inferred);
}

TEST(ContentPipeline, SnapshotChainBacksUpAndRestores) {
  CorpusParams corpusParams;
  corpusParams.fileCount = 20;
  corpusParams.targetBytes = 2 * 1024 * 1024;
  corpusParams.poolBlocks = 20;
  SnapshotGenParams snapParams;
  snapParams.snapshots = 2;
  snapParams.newBytesPerSnapshot = 128 * 1024;

  CdcParams cdc;
  cdc.minSize = 1024;
  cdc.avgSize = 4096;
  cdc.maxSize = 16384;
  const CdcChunker chunker(cdc);

  FileCorpus finalSnapshot;
  const Dataset dataset = generateSyntheticDataset(corpusParams, snapParams,
                                                   chunker, &finalSnapshot);
  ASSERT_EQ(dataset.backups.size(), 3u);

  // Back the final snapshot's files up through the real encrypted-dedup
  // pipeline and restore them.
  MemBackupStore store;
  KeyManager km(toBytes("integration-secret"));
  BackupOptions options;
  options.scheme = EncryptionScheme::kMinHashScrambled;
  options.segmentParams.minBytes = 64 * 1024;
  options.segmentParams.avgBytes = 128 * 1024;
  options.segmentParams.maxBytes = 256 * 1024;
  options.segmentParams.avgChunkBytes = 4096;
  BackupManager manager(store, km, chunker, options);

  size_t restored = 0;
  for (const auto& [name, content] : finalSnapshot) {
    const BackupOutcome outcome = manager.backup(name, content);
    EXPECT_EQ(manager.restore(outcome.fileRecipe, outcome.keyRecipe),
              content);
    if (++restored >= 10) break;  // ten files is plenty for integration
  }
  if (obs::kObsEnabled) EXPECT_GT(store.stats().uniqueChunks, 0u);
}

TEST(DdfsPipeline, DefendedTraceCostsLittleExtraMetadata) {
  const Dataset fsl = generateFslDataset(smallFsl());

  const auto runEngine = [&](bool defended) {
    DedupEngineParams params;
    params.containerBytes = 512 * 1024;
    params.cacheBytes = 4096 * kFpMetadataBytes;
    params.expectedFingerprints = 1'000'000;
    DedupEngine engine(params);
    DefenseConfig defense;
    defense.scramble = true;
    for (const auto& backup : fsl.backups) {
      if (defended) {
        engine.ingestBackup(
            minHashEncryptTrace(backup.records, defense).records);
      } else {
        engine.ingestBackup(mleEncryptTrace(backup.records).records);
      }
    }
    engine.flushOpenContainer();
    return engine.stats();
  };

  const DedupEngineStats mleStats = runEngine(false);
  const DedupEngineStats combinedStats = runEngine(true);
  EXPECT_GE(combinedStats.uniqueChunks, mleStats.uniqueChunks);
  // Metadata overhead of the defense stays within tens of percent (a
  // stats-based bound, meaningless when the registry is compiled out).
  if (obs::kObsEnabled)
    EXPECT_LT(static_cast<double>(combinedStats.metadata.totalBytes()),
              static_cast<double>(mleStats.metadata.totalBytes()) * 1.5);
}

TEST(TracePipeline, SerializationPreservesAttackResults) {
  const Dataset fsl = generateFslDataset(smallFsl());
  const ByteVec bytes = serializeDataset(fsl);
  const Dataset reloaded = parseDataset(bytes);
  const EncryptedTrace t1 = mleEncryptTrace(fsl.backups[2].records);
  const EncryptedTrace t2 = mleEncryptTrace(reloaded.backups[2].records);
  const AttackResult r1 =
      basicAttack(t1.records, fsl.backups[1].records);
  const AttackResult r2 =
      basicAttack(t2.records, reloaded.backups[1].records);
  EXPECT_EQ(inferenceRate(r1, t1), inferenceRate(r2, t2));
}

}  // namespace
}  // namespace freqdedup
