// End-to-end round-trip matrix: backup -> commit -> (close -> reopen for the
// file backend) -> restore -> byte-compare, across every EncryptionScheme x
// parallelism {1, 4} x StoreBackend {memory, file}; plus delete + GC followed
// by restoring the surviving backup.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <tuple>

#include "chunking/cdc_chunker.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "storage/backup_manager.h"
#include "storage/file_backup_store.h"

namespace freqdedup {
namespace {

using MatrixParam = std::tuple<EncryptionScheme, uint32_t, StoreBackend>;

ByteVec randomContent(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

CdcParams smallCdc() {
  CdcParams p;
  p.minSize = 256;
  p.avgSize = 1024;
  p.maxSize = 4096;
  return p;
}

class RestoreMatrix : public ::testing::TestWithParam<MatrixParam> {
 protected:
  void SetUp() override {
    const auto& info = *::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = "restore_matrix_" + std::string(info.name());
    for (char& c : name)
      if (c == '/') c = '_';  // parameterized test names contain '/'
    dir_ = (std::filesystem::temp_directory_path() / name).string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] EncryptionScheme scheme() const {
    return std::get<0>(GetParam());
  }
  [[nodiscard]] uint32_t parallelism() const { return std::get<1>(GetParam()); }
  [[nodiscard]] StoreBackend backend() const { return std::get<2>(GetParam()); }

  [[nodiscard]] std::unique_ptr<BackupStore> openStore() const {
    return makeBackupStore(backend(), dir_, {.containerBytes = 128 * 1024});
  }

  [[nodiscard]] BackupOptions options() const {
    BackupOptions o;
    o.scheme = scheme();
    o.parallelism = parallelism();
    o.segmentParams.minBytes = 8 * 1024;
    o.segmentParams.avgBytes = 16 * 1024;
    o.segmentParams.maxBytes = 32 * 1024;
    o.segmentParams.avgChunkBytes = 1024;
    return o;
  }

  [[nodiscard]] BackupManager makeManager(BackupStore& store) const {
    return BackupManager(store, km_, chunker_, options());
  }

  std::string dir_;
  KeyManager km_{toBytes("matrix-secret")};
  CdcChunker chunker_{smallCdc()};
};

TEST_P(RestoreMatrix, CloseReopenRestoreBitIdentical) {
  AesKey userKey{};
  userKey.fill(0x5A);
  Rng rng(1);

  // Three objects with cross-object duplication: v1 is v0 with a clustered
  // edit, other is independent content.
  std::map<std::string, ByteVec> objects;
  objects["v0"] = randomContent(100, 200 * 1024);
  objects["v1"] = objects["v0"];
  for (size_t i = 60'000; i < 66'000; ++i) objects["v1"][i] ^= 0xFF;
  objects["other"] = randomContent(101, 150 * 1024);

  {
    const auto store = openStore();
    BackupManager manager = makeManager(*store);
    for (const auto& [name, content] : objects) {
      const BackupOutcome outcome = manager.backup(name, content);
      manager.commitBackup(name, outcome, userKey, rng);
      // In-process restore must already round-trip.
      EXPECT_EQ(manager.restore(outcome.fileRecipe, outcome.keyRecipe),
                content);
    }
    store->flush();
  }  // close (memory backend: contents are gone, so reuse below is a no-op)

  if (backend() == StoreBackend::kMemory) return;

  // Reopen from disk: every backup must restore bit-identically.
  const auto reopened = openStore();
  BackupManager manager = makeManager(*reopened);
  ASSERT_EQ(manager.listBackups().size(), objects.size());
  for (const auto& [name, content] : objects)
    EXPECT_EQ(manager.restoreByName(name, userKey), content) << name;
  EXPECT_TRUE(reopened->verify().ok());
}

TEST_P(RestoreMatrix, DeleteAndGcThenRestoreSurvivor) {
  AesKey userKey{};
  userKey.fill(0xA5);
  Rng rng(2);

  ByteVec keep = randomContent(200, 180 * 1024);
  ByteVec drop = keep;  // heavy sharing with the surviving backup
  for (size_t i = 20'000; i < 28'000; ++i) drop[i] ^= 0x77;

  {
    const auto store = openStore();
    BackupManager manager = makeManager(*store);
    manager.commitBackup("keep", manager.backup("keep", keep), userKey, rng);
    manager.commitBackup("drop", manager.backup("drop", drop), userKey, rng);

    EXPECT_TRUE(manager.deleteBackup("drop"));
    const uint64_t storedBefore = store->stats().storedBytes;
    const GcStats gc = store->collectGarbage();
    EXPECT_GT(gc.chunksReclaimed, 0u) << "the edited region was unshared";
    if (obs::kObsEnabled)
      EXPECT_LT(store->stats().storedBytes, storedBefore);
    EXPECT_TRUE(store->verify().ok());

    EXPECT_EQ(manager.restoreByName("keep", userKey), keep);
    EXPECT_THROW(manager.restoreByName("drop", userKey), std::runtime_error);
    store->flush();
  }

  if (backend() == StoreBackend::kMemory) return;

  // The survivor must still restore after close + reopen.
  const auto reopened = openStore();
  BackupManager manager = makeManager(*reopened);
  EXPECT_EQ(manager.restoreByName("keep", userKey), keep);
  EXPECT_EQ(manager.listBackups(), std::vector<std::string>{"keep"});
  EXPECT_TRUE(reopened->verify().ok());
}

// Acceptance matrix for the compressed + tiered storage path: a store
// opened with compression enabled and GC-driven demotion to the cold tier
// must restore every backup bit-identical to BOTH the original content and
// an uncompressed single-tier twin — first from cold (reads promote), then
// warm (promoted copies) — for every scheme x parallelism combination. The
// shared block cache must honor its byte budget throughout. (Chunk payloads
// are ciphertext, so per-container compression falls back to the legacy
// frame — the codec path is exercised end to end without assuming the
// impossible, that encrypted chunks shrink.)
TEST_P(RestoreMatrix, TieredCompressedRestoresMatchSingleTierColdAndWarm) {
  if (backend() == StoreBackend::kMemory)
    GTEST_SKIP() << "tiering and compression are file-backend features";

  AesKey userKey{};
  userKey.fill(0x3C);
  Rng rng(3);

  std::map<std::string, ByteVec> objects;
  objects["v0"] = randomContent(300, 200 * 1024);
  objects["v1"] = objects["v0"];
  for (size_t i = 40'000; i < 46'000; ++i) objects["v1"][i] ^= 0xFF;
  objects["other"] = randomContent(301, 150 * 1024);

  const std::string baseDir = dir_ + "/base";
  const std::string tieredDir = dir_ + "/tiered";
  StoreOptions baseOptions;
  baseOptions.containerBytes = 128 * 1024;
  StoreOptions tieredOptions = baseOptions;
  tieredOptions.codec = ContainerCodec::kZstd;
  tieredOptions.blockCacheBytes = 4 * 128 * 1024;
  tieredOptions.coldTier.demoteOnGc = true;
  tieredOptions.coldTier.hotBytes = 0;
  tieredOptions.coldTier.keepHotRecent = 1;

  // Identical backups into the uncompressed single-tier twin and the
  // compressed tiered store; demote the tiered store's containers.
  for (const auto& [dir, options] :
       {std::pair{baseDir, baseOptions}, std::pair{tieredDir, tieredOptions}}) {
    FileBackupStore store(dir, options);
    BackupManager manager = makeManager(store);
    for (const auto& [name, content] : objects)
      manager.commitBackup(name, manager.backup(name, content), userKey, rng);
    store.flush();
    if (options.coldTier.demoteOnGc)
      EXPECT_GT(store.collectGarbage().containersDemoted, 0u);
  }

  // Cold pass: fresh instances, the tiered store serving (and promoting)
  // from the cold tier. All three restores must agree byte for byte.
  {
    FileBackupStore base(baseDir, baseOptions);
    FileBackupStore tiered(tieredDir, tieredOptions);
    BackupManager baseManager = makeManager(base);
    BackupManager tieredManager = makeManager(tiered);
    for (const auto& [name, content] : objects) {
      const ByteVec fromBase = baseManager.restoreByName(name, userKey);
      const ByteVec fromTiered = tieredManager.restoreByName(name, userKey);
      EXPECT_EQ(fromBase, content) << name;
      EXPECT_EQ(fromTiered, content) << "cold " << name;
    }
    const StoreReadStats rs = tiered.readStats();
    EXPECT_GT(rs.coldReads, 0u) << "restores should have hit the cold tier";
    EXPECT_GT(rs.promotions, 0u);
    EXPECT_LE(rs.promotions, rs.coldReads);
    EXPECT_LE(tiered.readCacheStats().peakCachedBytes,
              tieredOptions.blockCacheBytes)
        << "block cache must honor its byte budget";

    // Warm pass in the same instance: promoted copies + block cache.
    for (const auto& [name, content] : objects)
      EXPECT_EQ(tieredManager.restoreByName(name, userKey), content)
          << "warm " << name;
    EXPECT_EQ(tiered.readStats().coldReads, rs.coldReads)
        << "promoted containers must serve hot";
    EXPECT_LE(tiered.readCacheStats().peakCachedBytes,
              tieredOptions.blockCacheBytes);
    EXPECT_TRUE(tiered.verify().ok());
  }

  // And once more after another reopen: the promoted layout persists.
  FileBackupStore tiered(tieredDir, tieredOptions);
  BackupManager manager = makeManager(tiered);
  for (const auto& [name, content] : objects)
    EXPECT_EQ(manager.restoreByName(name, userKey), content)
        << "promoted " << name;
  EXPECT_TRUE(tiered.verify().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, RestoreMatrix,
    ::testing::Combine(
        ::testing::Values(EncryptionScheme::kMle, EncryptionScheme::kMinHash,
                          EncryptionScheme::kMinHashScrambled),
        ::testing::Values(1u, 4u),
        ::testing::Values(StoreBackend::kMemory, StoreBackend::kFile)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      const char* scheme = "";
      switch (std::get<0>(info.param)) {
        case EncryptionScheme::kMle: scheme = "Mle"; break;
        case EncryptionScheme::kMinHash: scheme = "MinHash"; break;
        case EncryptionScheme::kMinHashScrambled: scheme = "Scrambled"; break;
      }
      const char* backend =
          std::get<2>(info.param) == StoreBackend::kMemory ? "Mem" : "File";
      return std::string(scheme) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_" + backend;
    });

}  // namespace
}  // namespace freqdedup
