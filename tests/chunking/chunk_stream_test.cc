// ChunkStream equivalence: for CDC and fixed chunkers, pushing a buffer in
// any append granularity (1 byte, odd sizes, whole) must emit exactly the
// chunk sequence split() produces; plus construction-time parameter
// validation for both chunkers.
#include <gtest/gtest.h>

#include <stdexcept>

#include "chunking/cdc_chunker.h"
#include "chunking/fixed_chunker.h"
#include "common/rng.h"

namespace freqdedup {
namespace {

ByteVec randomContent(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

CdcParams smallCdc() {
  CdcParams p;
  p.minSize = 128;
  p.avgSize = 512;
  p.maxSize = 2048;
  p.windowSize = 48;
  return p;
}

/// Chunks emitted by streaming `data` through `chunker` in `step`-byte
/// appends (step 0 = one push of the whole buffer).
std::vector<ByteVec> streamChunks(const Chunker& chunker, ByteView data,
                                  size_t step) {
  std::vector<ByteVec> chunks;
  const auto stream = chunker.makeStream(
      [&chunks](ByteView c) { chunks.emplace_back(c.begin(), c.end()); });
  if (step == 0) {
    stream->push(data);
  } else {
    for (size_t off = 0; off < data.size(); off += step)
      stream->push(data.subspan(off, std::min(step, data.size() - off)));
  }
  stream->flush();
  return chunks;
}

/// The oracle: split() spans materialized to chunk bytes.
std::vector<ByteVec> splitChunks(const Chunker& chunker, ByteView data) {
  std::vector<ByteVec> chunks;
  for (const ChunkSpan& span : chunker.split(data)) {
    const ByteView bytes = chunkBytes(data, span);
    chunks.emplace_back(bytes.begin(), bytes.end());
  }
  return chunks;
}

class ChunkStreamEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkStreamEquivalence, CdcMatchesSplitAtAnyGranularity) {
  const CdcChunker chunker(smallCdc());
  for (const size_t contentBytes : {size_t{0}, size_t{1}, size_t{100},
                                    size_t{50'000}}) {
    const ByteVec content = randomContent(contentBytes + 1, contentBytes);
    EXPECT_EQ(streamChunks(chunker, content, GetParam()),
              splitChunks(chunker, content))
        << "content " << contentBytes << "B, step " << GetParam();
  }
}

TEST_P(ChunkStreamEquivalence, FixedMatchesSplitAtAnyGranularity) {
  const FixedChunker chunker(512);
  for (const size_t contentBytes :
       {size_t{0}, size_t{511}, size_t{512}, size_t{50'000}}) {
    const ByteVec content = randomContent(contentBytes + 2, contentBytes);
    EXPECT_EQ(streamChunks(chunker, content, GetParam()),
              splitChunks(chunker, content))
        << "content " << contentBytes << "B, step " << GetParam();
  }
}

// Granularities: 1 B, a prime, a power of two, larger than most chunks, and
// 0 = whole-buffer single push.
INSTANTIATE_TEST_SUITE_P(Granularities, ChunkStreamEquivalence,
                         ::testing::Values(1, 7, 1024, 65536, 0));

TEST(ChunkStream, FlushEndsTheObjectAndResetsForTheNext) {
  const CdcChunker chunker(smallCdc());
  const ByteVec a = randomContent(10, 10'000);
  const ByteVec b = randomContent(11, 12'000);

  // One stream, two objects separated by flush(): each object's chunks must
  // equal its own split() — no state leaks across the flush.
  std::vector<ByteVec> chunks;
  const auto stream = chunker.makeStream(
      [&chunks](ByteView c) { chunks.emplace_back(c.begin(), c.end()); });
  stream->push(a);
  stream->flush();
  const std::vector<ByteVec> fromA = chunks;
  chunks.clear();
  stream->push(b);
  stream->flush();

  EXPECT_EQ(fromA, splitChunks(chunker, a));
  EXPECT_EQ(chunks, splitChunks(chunker, b));
}

TEST(ChunkStream, EmptyObjectEmitsNoChunks) {
  const FixedChunker chunker(512);
  size_t emitted = 0;
  const auto stream = chunker.makeStream([&emitted](ByteView) { ++emitted; });
  stream->flush();
  EXPECT_EQ(emitted, 0u);
}

TEST(CdcChunker, RejectsInvalidParamsWithClearErrors) {
  {
    CdcParams p;
    p.avgSize = 1000;  // not a power of two
    EXPECT_THROW(CdcChunker{p}, std::invalid_argument);
  }
  {
    CdcParams p;
    p.avgSize = 0;
    EXPECT_THROW(CdcChunker{p}, std::invalid_argument);
  }
  {
    CdcParams p;
    p.windowSize = 0;
    EXPECT_THROW(CdcChunker{p}, std::invalid_argument);
  }
  {
    CdcParams p;
    p.minSize = 16;  // below the Rabin window
    EXPECT_THROW(CdcChunker{p}, std::invalid_argument);
  }
  {
    CdcParams p;
    p.minSize = p.maxSize * 2;  // min > avg
    EXPECT_THROW(CdcChunker{p}, std::invalid_argument);
  }
  {
    CdcParams p;
    p.maxSize = p.avgSize / 2;  // avg > max
    EXPECT_THROW(CdcChunker{p}, std::invalid_argument);
  }
}

TEST(FixedChunker, RejectsZeroChunkSize) {
  EXPECT_THROW(FixedChunker(0), std::invalid_argument);
}

}  // namespace
}  // namespace freqdedup
