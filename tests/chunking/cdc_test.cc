#include "chunking/cdc_chunker.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/fingerprint.h"
#include "common/rng.h"

namespace freqdedup {
namespace {

ByteVec randomData(uint64_t seed, size_t n) {
  Rng rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  return data;
}

CdcParams smallParams() {
  CdcParams p;
  p.minSize = 256;
  p.avgSize = 1024;
  p.maxSize = 4096;
  p.windowSize = 48;
  return p;
}

TEST(Cdc, EmptyInputYieldsNoChunks) {
  CdcChunker chunker(smallParams());
  EXPECT_TRUE(chunker.split({}).empty());
}

TEST(Cdc, TinyInputYieldsOneChunk) {
  CdcChunker chunker(smallParams());
  const ByteVec data = randomData(1, 100);
  const auto chunks = chunker.split(data);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].offset, 0u);
  EXPECT_EQ(chunks[0].size, 100u);
}

class CdcProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CdcProperty, ChunksAreExhaustiveAndContiguous) {
  CdcChunker chunker(smallParams());
  const ByteVec data = randomData(GetParam(), 256 * 1024);
  const auto chunks = chunker.split(data);
  ASSERT_FALSE(chunks.empty());
  size_t expectOffset = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.offset, expectOffset);
    EXPECT_GT(c.size, 0u);
    expectOffset += c.size;
  }
  EXPECT_EQ(expectOffset, data.size());
}

TEST_P(CdcProperty, SizesWithinBounds) {
  const CdcParams p = smallParams();
  CdcChunker chunker(p);
  const ByteVec data = randomData(GetParam(), 256 * 1024);
  const auto chunks = chunker.split(data);
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {  // last chunk may be short
    EXPECT_GE(chunks[i].size, p.minSize);
    EXPECT_LE(chunks[i].size, p.maxSize);
  }
  EXPECT_LE(chunks.back().size, p.maxSize);
}

TEST_P(CdcProperty, AverageSizeIsInTheRightRegime) {
  const CdcParams p = smallParams();
  CdcChunker chunker(p);
  const ByteVec data = randomData(GetParam(), 1024 * 1024);
  const auto chunks = chunker.split(data);
  const double avg = static_cast<double>(data.size()) /
                     static_cast<double>(chunks.size());
  // Expected size for min+avg-masked CDC is roughly min + avg; allow slack.
  EXPECT_GT(avg, p.avgSize * 0.5);
  EXPECT_LT(avg, p.avgSize * 2.5);
}

TEST_P(CdcProperty, DeterministicAcrossCalls) {
  CdcChunker chunker(smallParams());
  const ByteVec data = randomData(GetParam(), 128 * 1024);
  EXPECT_EQ(chunker.split(data), chunker.split(data));
}

// Content-defined chunking's raison d'être: a prefix insertion shifts all
// content, yet most chunks (identified by content hash) survive.
TEST_P(CdcProperty, RobustToContentShift) {
  CdcChunker chunker(smallParams());
  const ByteVec original = randomData(GetParam(), 512 * 1024);
  ByteVec shifted = randomData(GetParam() + 1000, 137);  // odd-size prefix
  shifted.insert(shifted.end(), original.begin(), original.end());

  std::unordered_set<Fp, FpHash> originalFps;
  for (const auto& c : chunker.split(original))
    originalFps.insert(fpOfContent(chunkBytes(original, c)));

  size_t surviving = 0;
  const auto shiftedChunks = chunker.split(shifted);
  for (const auto& c : shiftedChunks) {
    if (originalFps.contains(fpOfContent(chunkBytes(shifted, c))))
      ++surviving;
  }
  // All but the first few chunks should re-align.
  EXPECT_GT(surviving, shiftedChunks.size() * 3 / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdcProperty, ::testing::Values(1, 2, 42, 99));

TEST(Cdc, MaxSizeForcedOnConstantData) {
  const CdcParams p = smallParams();
  CdcChunker chunker(p);
  // Constant data never matches the boundary pattern (fp is constant), so
  // every chunk is cut at maxSize.
  const ByteVec data(64 * 1024, 0x55);
  const auto chunks = chunker.split(data);
  for (size_t i = 0; i + 1 < chunks.size(); ++i)
    EXPECT_EQ(chunks[i].size, p.maxSize);
}

TEST(Cdc, RejectsNonPowerOfTwoAverage) {
  CdcParams p = smallParams();
  p.avgSize = 1000;
  EXPECT_THROW(CdcChunker{p}, std::logic_error);
}

TEST(Cdc, RejectsInvertedBounds) {
  CdcParams p = smallParams();
  p.minSize = 8192;
  EXPECT_THROW(CdcChunker{p}, std::logic_error);
}

TEST(Cdc, RejectsMinBelowWindow) {
  CdcParams p = smallParams();
  p.minSize = 16;
  p.windowSize = 48;
  EXPECT_THROW(CdcChunker{p}, std::logic_error);
}

TEST(Cdc, ChunkBytesExtractsCorrectSlice) {
  const ByteVec data = toBytes("abcdefgh");
  const ChunkSpan span{2, 3};
  const ByteView view = chunkBytes(data, span);
  EXPECT_EQ(toString(view), "cde");
}

}  // namespace
}  // namespace freqdedup
