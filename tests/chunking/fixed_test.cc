#include "chunking/fixed_chunker.h"

#include <gtest/gtest.h>

namespace freqdedup {
namespace {

TEST(Fixed, ExactMultiple) {
  FixedChunker chunker(4);
  const ByteVec data(16, 1);
  const auto chunks = chunker.split(data);
  ASSERT_EQ(chunks.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunks[i].offset, i * 4);
    EXPECT_EQ(chunks[i].size, 4u);
  }
}

TEST(Fixed, ShortTail) {
  FixedChunker chunker(4096);
  const ByteVec data(4096 + 100, 0);
  const auto chunks = chunker.split(data);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].size, 4096u);
  EXPECT_EQ(chunks[1].size, 100u);
}

TEST(Fixed, EmptyInput) {
  FixedChunker chunker(4096);
  EXPECT_TRUE(chunker.split({}).empty());
}

TEST(Fixed, InputSmallerThanChunk) {
  FixedChunker chunker(4096);
  const ByteVec data(10, 0);
  const auto chunks = chunker.split(data);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size, 10u);
}

TEST(Fixed, DefaultIsVmDatasetGranularity) {
  EXPECT_EQ(FixedChunker().chunkSize(), 4096u);
}

TEST(Fixed, RejectsZeroSize) {
  EXPECT_THROW(FixedChunker(0), std::logic_error);
}

TEST(Fixed, CoversAllBytes) {
  FixedChunker chunker(7);
  const ByteVec data(100, 0);
  const auto chunks = chunker.split(data);
  size_t total = 0;
  for (const auto& c : chunks) total += c.size;
  EXPECT_EQ(total, data.size());
}

}  // namespace
}  // namespace freqdedup
