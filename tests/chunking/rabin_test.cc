#include "chunking/rabin.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freqdedup {
namespace {

TEST(RabinPoly, Degree) {
  EXPECT_EQ(polyDegree(1), 0);
  EXPECT_EQ(polyDegree(2), 1);
  EXPECT_EQ(polyDegree(0x8000000000000000ULL), 63);
  EXPECT_EQ(polyDegree(kDefaultRabinPoly), 53);
}

TEST(RabinPoly, ModByItselfIsZero) {
  EXPECT_EQ(polyMod(0, kDefaultRabinPoly, kDefaultRabinPoly), 0u);
}

TEST(RabinPoly, ModOfSmallerValueIsIdentity) {
  EXPECT_EQ(polyMod(0, 0x1234, kDefaultRabinPoly), 0x1234u);
}

TEST(RabinPoly, MulModDistributes) {
  // (a + b) * c == a*c + b*c over GF(2) (xor is addition).
  const uint64_t d = kDefaultRabinPoly;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const uint64_t a = rng.next() >> 12;
    const uint64_t b = rng.next() >> 12;
    const uint64_t c = rng.next() >> 12;
    EXPECT_EQ(polyMulMod(a ^ b, c, d),
              polyMulMod(a, c, d) ^ polyMulMod(b, c, d));
  }
}

TEST(RabinPoly, MulModCommutes) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const uint64_t a = rng.next() >> 8;
    const uint64_t b = rng.next() >> 8;
    EXPECT_EQ(polyMulMod(a, b, kDefaultRabinPoly),
              polyMulMod(b, a, kDefaultRabinPoly));
  }
}

TEST(RabinPoly, MulByOneIsIdentityModP) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const uint64_t a = rng.next();
    EXPECT_EQ(polyMulMod(a, 1, kDefaultRabinPoly),
              polyMod(0, a, kDefaultRabinPoly));
  }
}

TEST(RabinWindow, DeterministicAcrossInstances) {
  RabinWindow w1(48), w2(48);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto b = static_cast<uint8_t>(rng.next());
    EXPECT_EQ(w1.slide(b), w2.slide(b));
  }
}

// The defining property of a rolling hash: after sliding in enough bytes,
// the fingerprint depends only on the last `window` bytes.
TEST(RabinWindow, FingerprintDependsOnlyOnWindow) {
  const uint32_t window = 32;
  Rng rng(11);
  ByteVec tail(window);
  for (auto& b : tail) b = static_cast<uint8_t>(rng.next());

  RabinWindow w1(window);
  // Prefix A then the tail.
  for (int i = 0; i < 1000; ++i) w1.slide(static_cast<uint8_t>(rng.next()));
  for (const uint8_t b : tail) w1.slide(b);

  RabinWindow w2(window);
  // Different prefix B then the same tail.
  for (int i = 0; i < 777; ++i) w2.slide(static_cast<uint8_t>(~rng.next()));
  for (const uint8_t b : tail) w2.slide(b);

  EXPECT_EQ(w1.fingerprint(), w2.fingerprint());
}

TEST(RabinWindow, ResetRestoresInitialState) {
  RabinWindow w(48);
  const uint64_t afterOne = w.slide(0xAB);
  w.slide(0xCD);
  w.reset();
  EXPECT_EQ(w.fingerprint(), 0u);
  EXPECT_EQ(w.slide(0xAB), afterOne);
}

TEST(RabinWindow, DifferentContentDifferentFingerprint) {
  RabinWindow w1(48), w2(48);
  for (int i = 0; i < 100; ++i) {
    w1.slide(static_cast<uint8_t>(i));
    w2.slide(static_cast<uint8_t>(i + 1));
  }
  EXPECT_NE(w1.fingerprint(), w2.fingerprint());
}

TEST(RabinWindow, RejectsTinyWindow) {
  EXPECT_THROW(RabinWindow(1), std::logic_error);
}

TEST(RabinWindow, FingerprintStaysBelowPolyDegreeBound) {
  // All fingerprints are residues mod a degree-53 polynomial.
  RabinWindow w(48);
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t fp = w.slide(static_cast<uint8_t>(rng.next()));
    EXPECT_LT(fp, 1ULL << 54);
  }
}

}  // namespace
}  // namespace freqdedup
