#include "chunking/segmenter.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freqdedup {
namespace {

std::vector<ChunkRecord> randomRecords(uint64_t seed, size_t n,
                                       uint32_t size = 8192) {
  Rng rng(seed);
  std::vector<ChunkRecord> records(n);
  for (auto& r : records) r = {rng.next(), size};
  return records;
}

TEST(Segmenter, EmptyInputYieldsNoSegments) {
  EXPECT_TRUE(segmentRecords({}, SegmentParams{}).empty());
}

TEST(Segmenter, SingleRecord) {
  const std::vector<ChunkRecord> records{{42, 100}};
  const auto segments = segmentRecords(records, SegmentParams{});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0], (Segment{0, 1}));
}

class SegmenterProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SegmenterProperty, SegmentsAreExhaustiveAndContiguous) {
  const auto records = randomRecords(GetParam(), 5000);
  const auto segments = segmentRecords(records, SegmentParams{});
  ASSERT_FALSE(segments.empty());
  size_t expect = 0;
  for (const auto& s : segments) {
    EXPECT_EQ(s.begin, expect);
    EXPECT_GT(s.count(), 0u);
    expect = s.end;
  }
  EXPECT_EQ(expect, records.size());
}

TEST_P(SegmenterProperty, SegmentSizesRespectBounds) {
  const SegmentParams p;
  const auto records = randomRecords(GetParam(), 5000);
  const auto segments = segmentRecords(records, p);
  for (size_t i = 0; i < segments.size(); ++i) {
    uint64_t bytes = 0;
    for (size_t j = segments[i].begin; j < segments[i].end; ++j)
      bytes += records[j].size;
    EXPECT_LE(bytes, p.maxBytes);
    if (i + 1 < segments.size()) {
      // Non-final segments end either at the fingerprint pattern (size >=
      // min) or because the next chunk would overflow maxBytes.
      const bool atPattern =
          bytes >= p.minBytes &&
          records[segments[i].end - 1].fp % p.divisor() == p.divisor() - 1;
      const bool nextOverflows =
          bytes + records[segments[i].end].size > p.maxBytes;
      EXPECT_TRUE(atPattern || nextOverflows);
    }
  }
}

TEST_P(SegmenterProperty, AverageSegmentSizeInRegime) {
  const SegmentParams p;
  const auto records = randomRecords(GetParam(), 20'000);
  const auto segments = segmentRecords(records, p);
  const double avgBytes =
      8192.0 * static_cast<double>(records.size()) /
      static_cast<double>(segments.size());
  EXPECT_GT(avgBytes, p.minBytes);
  EXPECT_LT(avgBytes, p.maxBytes);
}

TEST_P(SegmenterProperty, Deterministic) {
  const auto records = randomRecords(GetParam(), 3000);
  EXPECT_EQ(segmentRecords(records, SegmentParams{}),
            segmentRecords(records, SegmentParams{}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmenterProperty,
                         ::testing::Values(1, 7, 42, 1234));

TEST(Segmenter, MinFingerprintOfSegment) {
  const std::vector<ChunkRecord> records{{5, 1}, {3, 1}, {9, 1}, {1, 1}};
  EXPECT_EQ(segmentMinFingerprint(records, {0, 4}), 1u);
  EXPECT_EQ(segmentMinFingerprint(records, {0, 3}), 3u);
  EXPECT_EQ(segmentMinFingerprint(records, {2, 3}), 9u);
}

TEST(Segmenter, MinFingerprintRejectsEmptySegment) {
  const std::vector<ChunkRecord> records{{5, 1}};
  EXPECT_THROW(segmentMinFingerprint(records, {1, 1}), std::logic_error);
  EXPECT_THROW(segmentMinFingerprint(records, {0, 2}), std::logic_error);
}

TEST(Segmenter, DivisorDerivedFromAverageSizes) {
  SegmentParams p;
  p.avgBytes = 1024 * 1024;
  p.avgChunkBytes = 8192;
  EXPECT_EQ(p.divisor(), 128u);
  p.avgChunkBytes = 4096;
  EXPECT_EQ(p.divisor(), 256u);
}

TEST(Segmenter, BoundaryPlacedAtPatternMatch) {
  // Craft records: fp % divisor == divisor-1 exactly at index 80 with
  // everything sized so the min-bytes constraint is satisfied there.
  SegmentParams p;
  p.minBytes = 10 * 8192;
  p.avgBytes = 64 * 8192;
  p.maxBytes = 1000 * 8192;
  p.avgChunkBytes = 8192;
  const uint64_t divisor = p.divisor();
  std::vector<ChunkRecord> records(200);
  for (size_t i = 0; i < records.size(); ++i) {
    records[i] = {i == 80 ? divisor - 1 : divisor, 8192};  // only 80 matches
  }
  const auto segments = segmentRecords(records, p);
  ASSERT_GE(segments.size(), 2u);
  EXPECT_EQ(segments[0].end, 81u);  // boundary right after the match
}

TEST(Segmenter, RejectsInvalidParams) {
  SegmentParams p;
  p.minBytes = 0;
  EXPECT_THROW(segmentRecords(std::vector<ChunkRecord>{{1, 1}}, p),
               std::logic_error);
  SegmentParams q;
  q.minBytes = q.maxBytes + 1;
  EXPECT_THROW(segmentRecords(std::vector<ChunkRecord>{{1, 1}}, q),
               std::logic_error);
}

TEST(SegmentParams, ValidateRejectsEachBadFieldWithInvalidArgument) {
  EXPECT_NO_THROW(SegmentParams{}.validate());
  {
    SegmentParams p;
    p.minBytes = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    SegmentParams p;
    p.avgChunkBytes = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    SegmentParams p;
    p.minBytes = p.avgBytes + 1;  // min > avg
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    SegmentParams p;
    p.avgBytes = p.maxBytes + 1;  // avg > max
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

TEST(StreamSegmenter, RejectsInvalidParamsAtConstruction) {
  SegmentParams p;
  p.minBytes = 0;
  EXPECT_THROW(StreamSegmenter(p, [](const Segment&) {}),
               std::invalid_argument);
}

TEST_P(SegmenterProperty, StreamMatchesBatchRecordByRecord) {
  const auto records = randomRecords(GetParam(), 5000);
  const auto batch = segmentRecords(records, SegmentParams{});

  std::vector<Segment> streamed;
  StreamSegmenter segmenter(
      SegmentParams{},
      [&streamed](const Segment& seg) { streamed.push_back(seg); });
  for (const auto& r : records) segmenter.push(r);
  segmenter.finish();

  EXPECT_EQ(streamed, batch);
  EXPECT_EQ(segmenter.recordCount(), records.size());
}

TEST(StreamSegmenter, ClosesBeforeAdmittingAnOverflowingRecord) {
  SegmentParams p;
  p.minBytes = 100;
  p.avgBytes = 200;
  p.maxBytes = 300;
  p.avgChunkBytes = 100;
  // fp 0 never matches the pattern, so only the overflow rule fires.
  std::vector<Segment> segments;
  StreamSegmenter segmenter(
      p, [&segments](const Segment& seg) { segments.push_back(seg); });
  segmenter.push({0, 250});
  EXPECT_TRUE(segments.empty());
  segmenter.push({0, 250});  // 250 + 250 > 300: closes [0,1) first
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0], (Segment{0, 1}));
  segmenter.finish();
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[1], (Segment{1, 2}));
}

TEST(StreamSegmenter, PatternCloseAfterOverflowCloseInOnePush) {
  SegmentParams p;
  p.minBytes = 100;
  p.avgBytes = 100;
  p.maxBytes = 300;
  p.avgChunkBytes = 100;  // divisor 1: every fp matches the pattern
  std::vector<Segment> segments;
  StreamSegmenter segmenter(
      p, [&segments](const Segment& seg) { segments.push_back(seg); });
  segmenter.push({0, 99});  // below minBytes: pattern cannot fire
  EXPECT_TRUE(segments.empty());
  // Overflows (99+250 > 300) -> closes [0,1); then 250 >= minBytes and the
  // pattern matches -> closes [1,2). Two segments from one push.
  segmenter.push({0, 250});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0], (Segment{0, 1}));
  EXPECT_EQ(segments[1], (Segment{1, 2}));
  segmenter.finish();
  EXPECT_EQ(segments.size(), 2u);  // nothing left open
}

}  // namespace
}  // namespace freqdedup
