// Ordered-completion fan-out: produce results on a worker pool with a
// bounded look-ahead window, consume them on the calling thread strictly in
// index order.
//
// This is the restore engine's prefetch primitive: produce(i) fetches batch
// i (container I/O), consume(i, r) decrypts and emits it — while up to
// `lookahead` later batches are already being fetched. It generalizes to any
// pipeline whose stage-2 must observe stage-1 results in order.
//
// Guarantees:
//  - consume(i, ...) runs on the calling thread, for i = 0..n-1 in order;
//  - at most `lookahead` results beyond the one being consumed are in
//    flight or buffered (O(window) memory);
//  - the exception of the lowest-index failing producer (or the first
//    consume failure) is rethrown on the calling thread after every
//    in-flight producer has drained (no task outlives the call). Results
//    before the failing index are still consumed, in order; nothing at or
//    past it is — exactly the prefix a serial run would have produced.
//
// produce must be safe to invoke concurrently for distinct indices. With a
// null pool or lookahead == 0 everything runs inline on the calling thread.
// consume may itself submit work to the same pool (e.g. parallelForShared):
// producers never block on consumers, so the pool always drains.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "pipeline/thread_pool.h"

namespace freqdedup {

template <typename R>
void orderedProduceConsume(ThreadPool* pool, size_t lookahead, size_t n,
                           const std::function<R(size_t)>& produce,
                           const std::function<void(size_t, R&&)>& consume) {
  if (n == 0) return;
  if (pool == nullptr || lookahead == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) consume(i, produce(i));
    return;
  }

  struct State {
    std::mutex mu;
    std::condition_variable ready;
    std::map<size_t, R> results;  // produced, not yet consumed
    std::exception_ptr error;     // failure of the lowest failing index
    size_t failedIndex = SIZE_MAX;  // lowest index whose producer failed
    size_t outstanding = 0;       // submitted, not yet completed producers
  } state;

  size_t nextToSubmit = 0;
  const auto submitOne = [&] {
    const size_t i = nextToSubmit++;
    {
      std::lock_guard lock(state.mu);
      ++state.outstanding;
    }
    const bool accepted = pool->submit([&state, &produce, i] {
      std::optional<R> result;
      std::exception_ptr error;
      try {
        result.emplace(produce(i));
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard lock(state.mu);
        if (result) state.results.emplace(i, std::move(*result));
        if (error && i < state.failedIndex) {
          state.failedIndex = i;
          state.error = error;
        }
        --state.outstanding;
        // Notify while holding the lock: the calling thread may otherwise
        // observe completion through another producer, return, and destroy
        // the stack-scoped state before this notify runs (the same
        // discipline as parallelForShared's completion latch).
        state.ready.notify_all();
      }
    });
    FDD_CHECK_MSG(accepted, "orderedProduceConsume on a shut-down pool");
  };
  const auto drain = [&] {
    std::unique_lock lock(state.mu);
    state.ready.wait(lock, [&] { return state.outstanding == 0; });
  };

  // Prime the window: the result being consumed plus `lookahead` ahead.
  while (nextToSubmit < n && nextToSubmit < 1 + lookahead) submitOne();

  for (size_t i = 0; i < n; ++i) {
    std::optional<R> result;
    bool failed = false;
    {
      std::unique_lock lock(state.mu);
      // A failure at a LATER index must not wake this wait: producer i is
      // still running and its result will arrive — earlier results keep
      // flowing until the failing index itself is reached.
      state.ready.wait(lock, [&] {
        return state.results.contains(i) || state.failedIndex <= i;
      });
      const auto it = state.results.find(i);
      if (it != state.results.end()) {
        result.emplace(std::move(it->second));
        state.results.erase(it);
      }
      failed = state.error != nullptr;
    }
    if (!result) {
      // Producer i itself failed. Let the rest of the window finish, then
      // surface its failure.
      drain();
      std::rethrow_exception(state.error);
    }
    try {
      consume(i, std::move(*result));
    } catch (...) {
      drain();
      throw;
    }
    // Refill only after consuming, keeping the window guarantee exact (at
    // most `lookahead` results beyond the one being consumed) — and not at
    // all once a later producer failed, when fetching further ahead is
    // wasted work.
    if (!failed && nextToSubmit < n) submitOne();
  }
  drain();
}

}  // namespace freqdedup
