// Bounded multi-producer/multi-consumer queue.
//
// The backpressure primitive of the parallel ingest pipeline: producers block
// when the queue is full, consumers block when it is empty, and close()
// initiates a graceful drain — queued items are still delivered, after which
// pop() returns nullopt and further pushes fail.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/check.h"

namespace freqdedup {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    FDD_CHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false iff the queue was closed
  /// (the item is dropped in that case).
  bool push(T item) {
    std::unique_lock lock(mu_);
    notFull_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    notEmpty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when the queue is full or closed.
  bool tryPush(T item) {
    std::unique_lock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    notEmpty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue has been
  /// closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    notEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    notFull_.notify_one();
    return item;
  }

  /// Stops accepting new items and wakes all waiters. Items already queued
  /// are still delivered to pop(). Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    notEmpty_.notify_all();
    notFull_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace freqdedup
