#include "pipeline/parallel_ingest_pipeline.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "obs/trace.h"
#include "pipeline/bounded_queue.h"
#include "pipeline/thread_pool.h"

namespace freqdedup {

namespace {

struct ShardBatch {
  uint32_t shard = 0;
  std::vector<ChunkRecord> records;
};

}  // namespace

ParallelIngestPipeline::ParallelIngestPipeline(
    const DedupEngineParams& engineParams, PipelineOptions options,
    RecordTransform transform)
    : options_(options),
      transform_(std::move(transform)),
      rawQueueDepth_(
          obs::MetricsRegistry::global().gauge("pipeline.raw_queue_depth")),
      shardQueueDepth_(
          obs::MetricsRegistry::global().gauge("pipeline.shard_queue_depth")),
      routeBatchUs_(
          obs::MetricsRegistry::global().histogram("pipeline.route_batch_us")),
      dedupBatchUs_(obs::MetricsRegistry::global().histogram(
          "pipeline.dedup_batch_us")) {
  FDD_CHECK(options_.parallelism >= 1);
  FDD_CHECK(options_.batchRecords > 0);
  FDD_CHECK(options_.queueCapacity > 0);
  if (options_.parallelism == 1) {
    serial_ = std::make_unique<DedupEngine>(engineParams);
    return;
  }
  ShardedIndexParams params;
  params.engine = engineParams;
  params.shards =
      options_.shards != 0 ? options_.shards : options_.parallelism * 4;
  sharded_ = std::make_unique<ShardedDedupIndex>(params);

  // Stage sizing follows the workload: with a transform the route stage does
  // the per-chunk crypto and deserves most threads; without one, routing is a
  // cheap partition pass and the dedup consumers carry the cost.
  if (transform_) {
    dedupWorkers_ = std::max(1u, options_.parallelism / 4);
    routeWorkers_ = std::max(1u, options_.parallelism - dedupWorkers_);
  } else {
    routeWorkers_ = std::max(1u, options_.parallelism / 4);
    dedupWorkers_ = std::max(1u, options_.parallelism - routeWorkers_);
  }
  // One long-running loop task per stage worker per ingestBackup call; the
  // pool is sized so every loop gets a thread (anything less would deadlock
  // on the queues). Reused across backups to avoid per-call thread spawns.
  pool_ = std::make_unique<ThreadPool>(routeWorkers_ + dedupWorkers_,
                                       routeWorkers_ + dedupWorkers_);
}

ParallelIngestPipeline::~ParallelIngestPipeline() = default;

void ParallelIngestPipeline::ingestBackup(
    std::span<const ChunkRecord> records) {
  if (serial_) {
    if (transform_) {
      for (const ChunkRecord& r : records) serial_->ingest(transform_(r));
    } else {
      serial_->ingestBackup(records);
    }
    return;
  }
  ingestParallel(records);
}

void ParallelIngestPipeline::ingestParallel(
    std::span<const ChunkRecord> records) {
  const uint32_t shards = sharded_->shardCount();

  BoundedQueue<std::vector<ChunkRecord>> rawQueue(options_.queueCapacity);
  BoundedQueue<ShardBatch> shardQueue(options_.queueCapacity);
  std::atomic<uint32_t> activeRouters{routeWorkers_};

  // A worker exception aborts the whole ingest: record the first one, close
  // both queues so every stage (and the producer) unblocks and drains, then
  // rethrow on the calling thread once the pool is quiet.
  std::mutex errorMu;
  std::exception_ptr error;
  const auto abortWithCurrentException = [&] {
    {
      std::lock_guard lock(errorMu);
      if (!error) error = std::current_exception();
    }
    rawQueue.close();
    shardQueue.close();
  };

  for (uint32_t w = 0; w < routeWorkers_; ++w) {
    pool_->submit([&] {
      while (auto batch = rawQueue.pop()) {
        rawQueueDepth_.sub();
        try {
          obs::ObsSpan span(&routeBatchUs_, "pipeline.route_batch",
                            "pipeline");
          std::vector<std::vector<ChunkRecord>> perShard(shards);
          for (const ChunkRecord& r : *batch) {
            const ChunkRecord out = transform_ ? transform_(r) : r;
            perShard[sharded_->shardOf(out.fp)].push_back(out);
          }
          for (uint32_t s = 0; s < shards; ++s) {
            if (!perShard[s].empty() &&
                shardQueue.push({s, std::move(perShard[s])}))
              shardQueueDepth_.add();
          }
        } catch (...) {
          abortWithCurrentException();
          break;
        }
      }
      // Last router out closes the downstream queue so consumers drain.
      if (activeRouters.fetch_sub(1) == 1) shardQueue.close();
    });
  }

  for (uint32_t w = 0; w < dedupWorkers_; ++w) {
    pool_->submit([&] {
      while (auto batch = shardQueue.pop()) {
        shardQueueDepth_.sub();
        try {
          obs::ObsSpan span(&dedupBatchUs_, "pipeline.dedup_batch",
                            "pipeline");
          sharded_->ingestShardBatch(batch->shard, batch->records);
        } catch (...) {
          abortWithCurrentException();
          break;
        }
      }
    });
  }

  // Stage 1: the calling thread is the producer. A failed push means the
  // queue was closed by an aborting worker — stop feeding.
  std::vector<ChunkRecord> batch;
  batch.reserve(options_.batchRecords);
  for (const ChunkRecord& r : records) {
    batch.push_back(r);
    if (batch.size() == options_.batchRecords) {
      if (!rawQueue.push(std::move(batch))) break;
      rawQueueDepth_.add();
      batch = {};
      batch.reserve(options_.batchRecords);
    }
  }
  if (!batch.empty() && rawQueue.push(std::move(batch))) rawQueueDepth_.add();
  rawQueue.close();

  pool_->wait();
  // An abort leaves undrained batches in the closed queues; settle the depth
  // gauges so they read zero between ingests either way.
  rawQueueDepth_.sub(static_cast<int64_t>(rawQueue.size()));
  shardQueueDepth_.sub(static_cast<int64_t>(shardQueue.size()));
  if (error) std::rethrow_exception(error);
}

void ParallelIngestPipeline::finish() {
  if (serial_) {
    serial_->flushOpenContainer();
  } else {
    sharded_->flushOpenContainers();
  }
}

DedupEngineStats ParallelIngestPipeline::stats() const {
  return serial_ ? serial_->stats() : sharded_->mergedStats();
}

obs::MetricsSnapshot ParallelIngestPipeline::metricsSnapshot() const {
  return serial_ ? serial_->metricsSnapshot() : sharded_->mergedSnapshot();
}

uint32_t ParallelIngestPipeline::shardCount() const {
  return serial_ ? 1 : sharded_->shardCount();
}

size_t ParallelIngestPipeline::containerCount() const {
  return serial_ ? serial_->containerCount() : sharded_->containerCount();
}

}  // namespace freqdedup
