// Staged parallel ingest over the sharded dedup index.
//
// The backup stream is processed as a three-stage pipeline connected by
// bounded queues (Figure: producer -> route/transform workers -> per-shard
// dedup consumers):
//
//   stage 1  the calling thread slices the logical stream into batches;
//   stage 2  route workers apply the optional per-record transform (e.g.
//            re-fingerprinting or encryption) and partition each batch by
//            destination shard (fp % N);
//   stage 3  dedup consumers pop per-shard batches and run the DDFS steps
//            under that shard's lock (lock striping keeps consumers for
//            different shards fully concurrent).
//
// With parallelism == 1 the pipeline degenerates to a single serial
// DedupEngine — no threads, no sharding — so results are bit-identical to
// the existing engine and all paper figures stay reproducible. With
// parallelism > 1 the unique-chunk/unique-byte counts (and the dedup ratio)
// are still deterministic and equal to the serial engine's, because shard
// routing is a pure function of the fingerprint (see sharded_dedup_index.h).
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "obs/metrics.h"
#include "pipeline/sharded_dedup_index.h"
#include "pipeline/thread_pool.h"
#include "storage/dedup_engine.h"

namespace freqdedup {

struct PipelineOptions {
  /// Total worker threads for the route + dedup stages. 1 = serial path.
  uint32_t parallelism = 1;
  /// Index shards; 0 derives 4x parallelism (keeps stripe contention low).
  uint32_t shards = 0;
  /// Records per producer batch.
  size_t batchRecords = 2048;
  /// Batches in flight per queue (backpressure bound).
  size_t queueCapacity = 64;
};

class ParallelIngestPipeline {
 public:
  /// Applied per record in the parallel stage; must be thread-safe.
  using RecordTransform = std::function<ChunkRecord(const ChunkRecord&)>;

  explicit ParallelIngestPipeline(const DedupEngineParams& engineParams,
                                  PipelineOptions options = {},
                                  RecordTransform transform = nullptr);
  ~ParallelIngestPipeline();

  /// Ingests one backup stream; returns when the stream is fully deduped.
  /// Call once per backup; backups are processed back to back, as in the
  /// serial engine.
  void ingestBackup(std::span<const ChunkRecord> records);

  /// Flushes open container buffers (call at end of the run, like
  /// DedupEngine::flushOpenContainer).
  void finish();

  /// Merged counters, comparable to DedupEngine::stats().
  [[nodiscard]] DedupEngineStats stats() const;

  /// Merged ingest.* metrics of the underlying engine(s); pipeline.* queue
  /// gauges and stage latency histograms live in the global registry.
  [[nodiscard]] obs::MetricsSnapshot metricsSnapshot() const;

  [[nodiscard]] bool parallel() const { return sharded_ != nullptr; }
  [[nodiscard]] uint32_t shardCount() const;
  [[nodiscard]] size_t containerCount() const;

 private:
  void ingestParallel(std::span<const ChunkRecord> records);

  PipelineOptions options_;
  RecordTransform transform_;
  uint32_t routeWorkers_ = 0;
  uint32_t dedupWorkers_ = 0;
  std::unique_ptr<DedupEngine> serial_;         // parallelism == 1
  std::unique_ptr<ShardedDedupIndex> sharded_;  // parallelism > 1
  std::unique_ptr<ThreadPool> pool_;            // stage workers, reused
  // Process-wide pipeline metrics (multiple pipelines sum into them).
  obs::Gauge& rawQueueDepth_;
  obs::Gauge& shardQueueDepth_;
  obs::Histogram& routeBatchUs_;
  obs::Histogram& dedupBatchUs_;
};

}  // namespace freqdedup
