// Lock-striped partition of the DDFS-style dedup state.
//
// The fingerprint index, Bloom filter, LRU fingerprint cache and open
// container buffer are split across N shards keyed by fp % N, each shard a
// full DedupEngine guarded by its own mutex. Because a fingerprint always
// routes to the same shard, the duplicate/unique decision for every chunk is
// exactly the serial engine's decision regardless of interleaving: unique
// chunk and byte counts (and hence the dedup ratio) are deterministic and
// equal to the single-engine result. Path counters (cache vs. buffer vs.
// index hits) and container layout may differ, since containers and caches
// are per shard.
//
// Global budgets — cache bytes and expected fingerprints — are divided evenly
// across shards; container capacity stays per shard, matching how a real
// system would give each ingest stripe its own open container.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "storage/dedup_engine.h"

namespace freqdedup {

struct ShardedIndexParams {
  DedupEngineParams engine;  // global budgets, divided across shards
  uint32_t shards = 8;
};

class ShardedDedupIndex {
 public:
  explicit ShardedDedupIndex(const ShardedIndexParams& params);

  [[nodiscard]] uint32_t shardOf(Fp fp) const {
    return static_cast<uint32_t>(fp % shards_.size());
  }
  [[nodiscard]] uint32_t shardCount() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// Ingests one record, routing it to its shard (convenience serial path).
  IngestOutcome ingest(const ChunkRecord& record);

  /// Ingests a batch whose records all route to `shard`, under that shard's
  /// lock. Callers are expected to have partitioned by shardOf().
  void ingestShardBatch(uint32_t shard, std::span<const ChunkRecord> records);

  /// Flushes every shard's open container buffer.
  void flushOpenContainers();

  /// Counters summed across shards; comparable to DedupEngine::stats().
  /// A view over mergedSnapshot().
  [[nodiscard]] DedupEngineStats mergedStats() const;

  /// One shard's counters (shard < shardCount()).
  [[nodiscard]] DedupEngineStats shardStats(uint32_t shard) const;

  /// Every shard's ingest.* metrics merged into one snapshot. Shard
  /// registries are internally synchronized, so this takes no shard locks
  /// and is safe to sample while ingest is in flight.
  [[nodiscard]] obs::MetricsSnapshot mergedSnapshot() const;

  /// Total sealed containers across shards.
  [[nodiscard]] size_t containerCount() const;

  /// Total on-disk index entries across shards.
  [[nodiscard]] size_t indexEntries() const;

 private:
  struct Shard {
    explicit Shard(const DedupEngineParams& p) : engine(p) {}
    mutable std::mutex mu;
    DedupEngine engine;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace freqdedup
