#include "pipeline/sharded_dedup_index.h"

#include "common/check.h"

namespace freqdedup {

namespace {

DedupEngineParams perShardParams(const DedupEngineParams& global,
                                 uint32_t shards) {
  DedupEngineParams p = global;
  p.cacheBytes = std::max<uint64_t>(kFpMetadataBytes, global.cacheBytes / shards);
  p.expectedFingerprints =
      std::max<uint64_t>(1, global.expectedFingerprints / shards);
  return p;
}

}  // namespace

ShardedDedupIndex::ShardedDedupIndex(const ShardedIndexParams& params) {
  FDD_CHECK(params.shards > 0);
  const DedupEngineParams shardParams =
      perShardParams(params.engine, params.shards);
  shards_.reserve(params.shards);
  for (uint32_t i = 0; i < params.shards; ++i)
    shards_.push_back(std::make_unique<Shard>(shardParams));
}

IngestOutcome ShardedDedupIndex::ingest(const ChunkRecord& record) {
  Shard& shard = *shards_[shardOf(record.fp)];
  std::lock_guard lock(shard.mu);
  return shard.engine.ingest(record);
}

void ShardedDedupIndex::ingestShardBatch(uint32_t shard,
                                         std::span<const ChunkRecord> records) {
  FDD_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  std::lock_guard lock(s.mu);
  s.engine.ingestBackup(records);
}

void ShardedDedupIndex::flushOpenContainers() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->engine.flushOpenContainer();
  }
}

DedupEngineStats ShardedDedupIndex::mergedStats() const {
  return DedupEngineStats::fromSnapshot(mergedSnapshot());
}

obs::MetricsSnapshot ShardedDedupIndex::mergedSnapshot() const {
  // Engine registries are internally synchronized; no shard locks needed.
  obs::MetricsSnapshot merged;
  for (const auto& shard : shards_)
    merged.merge(shard->engine.metricsSnapshot());
  return merged;
}

DedupEngineStats ShardedDedupIndex::shardStats(uint32_t shard) const {
  FDD_CHECK(shard < shards_.size());
  return shards_[shard]->engine.stats();
}

size_t ShardedDedupIndex::containerCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    total += shard->engine.containerCount();
  }
  return total;
}

size_t ShardedDedupIndex::indexEntries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    total += shard->engine.indexEntries();
  }
  return total;
}

}  // namespace freqdedup
