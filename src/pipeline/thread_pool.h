// Fixed-size worker pool over a BoundedQueue of tasks.
//
// Submitting more tasks than the queue capacity blocks the submitter
// (backpressure). shutdown() drains already-queued tasks and joins the
// workers; wait() blocks until every submitted task has finished without
// stopping the pool.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "pipeline/bounded_queue.h"

namespace freqdedup {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads, size_t queueCapacity = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the task queue is full. Returns false
  /// once shutdown() has been called.
  bool submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed (queue empty, workers
  /// idle), then rethrows the first exception any task threw, if one did.
  /// The pool keeps accepting work afterwards.
  void wait();

  /// Stops accepting tasks, finishes the queued ones, joins all workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  [[nodiscard]] size_t threadCount() const { return workers_.size(); }

 private:
  void workerLoop();
  void finishOne();

  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable idle_;
  size_t inFlight_ = 0;  // submitted but not yet finished (queued + running)
  std::exception_ptr error_;  // first task exception, rethrown by wait()
};

/// Runs body(begin, end) over sub-ranges of [0, n), distributed across
/// `threads` workers. With threads <= 1 (or a tiny n) the body runs inline on
/// the calling thread. The body must be safe to invoke concurrently on
/// disjoint ranges. Rethrows the first exception the body threw.
void parallelFor(size_t threads, size_t n,
                 const std::function<void(size_t, size_t)>& body);

/// Same, but reuses an existing pool (no per-call thread spawn). Blocks the
/// caller until the range is done; do not interleave with other work on the
/// same pool from other threads, since this uses ThreadPool::wait().
void parallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t, size_t)>& body);

/// Like parallelFor(pool, ...) but safe for concurrent callers sharing one
/// pool: each call tracks the completion of its own blocks (instead of
/// waiting for the whole pool to go idle), so independent client sessions can
/// drive parallel work through a shared worker pool simultaneously. Rethrows
/// the first exception this call's body threw. The pool must not be shut
/// down while calls are in flight.
void parallelForShared(ThreadPool& pool, size_t n,
                       const std::function<void(size_t, size_t)>& body);

/// Pool-or-spawn dispatch: reuses `pool` when one is provided, otherwise
/// spawns `threads` workers for this call. Lets components accept an
/// optional caller-owned pool without duplicating the choice everywhere.
void parallelFor(ThreadPool* pool, size_t threads, size_t n,
                 const std::function<void(size_t, size_t)>& body);

}  // namespace freqdedup
