#include "pipeline/thread_pool.h"

#include <algorithm>
#include <utility>

namespace freqdedup {

ThreadPool::ThreadPool(size_t threads, size_t queueCapacity)
    : tasks_(queueCapacity) {
  FDD_CHECK(threads > 0);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::workerLoop() {
  while (auto task = tasks_.pop()) {
    try {
      (*task)();
    } catch (...) {
      // Worker threads must not unwind (std::terminate); park the first
      // exception for wait() to rethrow on the submitting thread.
      std::lock_guard lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    finishOne();
  }
}

void ThreadPool::finishOne() {
  std::lock_guard lock(mu_);
  if (--inFlight_ == 0) idle_.notify_all();
}

bool ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    ++inFlight_;
  }
  if (!tasks_.push(std::move(task))) {
    finishOne();  // never ran: roll the accounting back
    return false;
  }
  return true;
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  idle_.wait(lock, [&] { return inFlight_ == 0; });
  if (error_) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::shutdown() {
  tasks_.close();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
}

void parallelFor(size_t threads, size_t n,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    body(0, n);
    return;
  }
  ThreadPool pool(threads, std::min(n, threads * 4));
  parallelFor(pool, n, body);
}

void parallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  // 4 blocks per worker smooths out uneven per-item cost.
  const size_t blocks = std::min(n, pool.threadCount() * 4);
  const size_t blockSize = (n + blocks - 1) / blocks;
  for (size_t begin = 0; begin < n; begin += blockSize) {
    const size_t end = std::min(n, begin + blockSize);
    pool.submit([&body, begin, end] { body(begin, end); });
  }
  pool.wait();
}

void parallelForShared(ThreadPool& pool, size_t n,
                       const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {
    body(0, 1);
    return;
  }
  const size_t blocks = std::min(n, pool.threadCount() * 4);
  const size_t blockSize = (n + blocks - 1) / blocks;

  // Per-call completion latch: concurrent callers each wait only for their
  // own blocks, never for the pool to drain.
  struct Sync {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining = 0;
    std::exception_ptr error;
  } sync;
  sync.remaining = (n + blockSize - 1) / blockSize;

  for (size_t begin = 0; begin < n; begin += blockSize) {
    const size_t end = std::min(n, begin + blockSize);
    const bool accepted = pool.submit([&sync, &body, begin, end] {
      std::exception_ptr error;
      try {
        body(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard lock(sync.mu);
      if (error && !sync.error) sync.error = error;
      if (--sync.remaining == 0) sync.done.notify_all();
    });
    FDD_CHECK_MSG(accepted, "parallelForShared on a shut-down pool");
  }

  std::unique_lock lock(sync.mu);
  sync.done.wait(lock, [&sync] { return sync.remaining == 0; });
  if (sync.error) std::rethrow_exception(sync.error);
}

void parallelFor(ThreadPool* pool, size_t threads, size_t n,
                 const std::function<void(size_t, size_t)>& body) {
  if (pool != nullptr) {
    parallelFor(*pool, n, body);
  } else {
    parallelFor(threads, n, body);
  }
}

}  // namespace freqdedup
