#include "common/crc32.h"

#include <array>

namespace freqdedup {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reflected CRC-32C polynomial

constexpr std::array<uint32_t, 256> makeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j)
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = makeTable();

}  // namespace

uint32_t crc32cExtend(uint32_t crc, ByteView data) {
  crc = ~crc;
  for (uint8_t b : data) crc = (crc >> 8) ^ kTable[(crc ^ b) & 0xFF];
  return ~crc;
}

uint32_t crc32c(ByteView data) { return crc32cExtend(0, data); }

}  // namespace freqdedup
