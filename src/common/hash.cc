#include "common/hash.h"

#include <openssl/evp.h>
#include <openssl/hmac.h>

#include <stdexcept>

#include "common/check.h"

namespace freqdedup {

namespace {

Digest oneShot(const EVP_MD* md, ByteView data) {
  Digest d;
  unsigned int len = 0;
  if (EVP_Digest(data.data(), data.size(), d.bytes.data(), &len, md,
                 nullptr) != 1)
    throw std::runtime_error("EVP_Digest failed");
  d.size = static_cast<uint8_t>(len);
  return d;
}

}  // namespace

Digest sha256(ByteView data) { return oneShot(EVP_sha256(), data); }

Digest sha1(ByteView data) { return oneShot(EVP_sha1(), data); }

Digest hmacSha256(ByteView key, ByteView data) {
  Digest d;
  unsigned int len = 0;
  if (HMAC(EVP_sha256(), key.data(), static_cast<int>(key.size()), data.data(),
           data.size(), d.bytes.data(), &len) == nullptr)
    throw std::runtime_error("HMAC failed");
  d.size = static_cast<uint8_t>(len);
  return d;
}

Sha256Stream::Sha256Stream() : ctx_(EVP_MD_CTX_new()) {
  FDD_CHECK(ctx_ != nullptr);
  if (EVP_DigestInit_ex(static_cast<EVP_MD_CTX*>(ctx_), EVP_sha256(),
                        nullptr) != 1)
    throw std::runtime_error("EVP_DigestInit_ex failed");
}

Sha256Stream::~Sha256Stream() {
  EVP_MD_CTX_free(static_cast<EVP_MD_CTX*>(ctx_));
}

void Sha256Stream::update(ByteView data) {
  if (EVP_DigestUpdate(static_cast<EVP_MD_CTX*>(ctx_), data.data(),
                       data.size()) != 1)
    throw std::runtime_error("EVP_DigestUpdate failed");
}

Digest Sha256Stream::finish() {
  Digest d;
  unsigned int len = 0;
  auto* ctx = static_cast<EVP_MD_CTX*>(ctx_);
  if (EVP_DigestFinal_ex(ctx, d.bytes.data(), &len) != 1)
    throw std::runtime_error("EVP_DigestFinal_ex failed");
  d.size = static_cast<uint8_t>(len);
  if (EVP_DigestInit_ex(ctx, EVP_sha256(), nullptr) != 1)
    throw std::runtime_error("EVP_DigestInit_ex (reset) failed");
  return d;
}

}  // namespace freqdedup
