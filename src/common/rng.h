// Deterministic random number generation.
//
// Every synthetic dataset and every randomized defense step in this library
// must be reproducible from a seed, independent of platform and standard
// library version. std::<distribution> implementations are allowed to differ
// across standard libraries, so all sampling is implemented here by hand on
// top of xoshiro256** (public-domain; Blackman & Vigna).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace freqdedup {

/// Fills `out` with operating-system entropy (getrandom(2), falling back to
/// /dev/urandom). Use for every seed/salt/IV whose repetition would be a
/// security bug — a deterministic Rng seed repeats its whole output stream
/// across process restarts. Throws std::runtime_error if no entropy source
/// is available.
void secureRandomBytes(void* out, size_t n);

/// One OS-entropy 64-bit seed (secureRandomBytes convenience).
uint64_t secureSeed();

/// xoshiro256** seeded via SplitMix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eedf00dULL) { reseed(seed); }

  void reseed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t uniformInt(uint64_t lo, uint64_t hi);

  /// Uniform real in [0, 1).
  double uniformReal();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic given the stream).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Exponential with rate lambda > 0.
  double exponential(double lambda);

  /// Geometric: number of failures before first success, p in (0,1].
  uint64_t geometric(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(uniformInt(0, i - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Uniformly picks an element index of a non-empty range.
  size_t pickIndex(size_t size) {
    FDD_CHECK(size > 0);
    return static_cast<size_t>(uniformInt(0, size - 1));
  }

 private:
  uint64_t s_[4];
  bool haveSpareNormal_ = false;
  double spareNormal_ = 0.0;
};

/// Zipf(α) sampler over ranks {0, ..., n-1} using a precomputed CDF.
/// Rank 0 is the most probable element. Suitable for the modest pool sizes
/// used by the trace generators (<= a few hundred thousand elements).
class ZipfTable {
 public:
  ZipfTable(size_t n, double alpha);

  /// Draws a rank in [0, n).
  size_t sample(Rng& rng) const;

  [[nodiscard]] size_t size() const { return cdf_.size(); }
  /// Probability mass of a rank.
  [[nodiscard]] double pmf(size_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace freqdedup
