// CRC-32C (Castagnoli) checksums for on-disk record framing.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace freqdedup {

/// CRC-32C of a byte range (initial value 0).
uint32_t crc32c(ByteView data);

/// Incremental form: extend a running CRC with more data.
uint32_t crc32cExtend(uint32_t crc, ByteView data);

}  // namespace freqdedup
