// Bloom filter over 64-bit fingerprints.
//
// Used by the DDFS-like deduplication engine (Section 7.4 of the paper) to
// avoid on-disk index lookups for chunks that are certainly new. Sized from
// an expected element count and target false-positive rate, as in the paper
// (fpr 0.01 → ~7 hash functions). Hash functions are derived by double
// hashing from two mixes of the fingerprint (Kirsch-Mitzenmacher).
#pragma once

#include <cstdint>
#include <vector>

#include "common/fingerprint.h"

namespace freqdedup {

class BloomFilter {
 public:
  /// Sizes the filter for `expectedItems` at false-positive rate `fpr`.
  BloomFilter(size_t expectedItems, double fpr);

  void add(Fp fp);
  [[nodiscard]] bool maybeContains(Fp fp) const;
  void clear();

  [[nodiscard]] size_t sizeBits() const { return bits_; }
  [[nodiscard]] size_t sizeBytes() const { return words_.size() * 8; }
  [[nodiscard]] int numHashes() const { return k_; }
  [[nodiscard]] size_t insertedCount() const { return inserted_; }

  /// Analytic false-positive probability at the current fill level.
  [[nodiscard]] double estimatedFpr() const;

 private:
  [[nodiscard]] size_t bitIndex(Fp fp, int i) const;

  size_t bits_;
  int k_;
  size_t inserted_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace freqdedup
