// Intrusive-list LRU cache keyed by hashable keys.
//
// Models the in-memory fingerprint cache of the DDFS-like prototype
// (Section 7.4): bounded capacity in entries, least-recently-used eviction.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace freqdedup {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    FDD_CHECK(capacity > 0);
  }

  /// Inserts or refreshes a key. Returns true if an eviction occurred.
  bool put(const K& key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    bool evicted = false;
    if (map_.size() >= capacity_) {
      const auto& victim = order_.back();
      map_.erase(victim.first);
      order_.pop_back();
      evicted = true;
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
    return evicted;
  }

  /// Looks a key up and promotes it to most-recently-used.
  std::optional<V> get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Membership test that still counts as a use (promotes the entry).
  bool touch(const K& key) { return get(key).has_value(); }

  /// Non-promoting membership test.
  [[nodiscard]] bool contains(const K& key) const {
    return map_.find(key) != map_.end();
  }

  bool erase(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    order_.erase(it->second);
    map_.erase(it);
    return true;
  }

  void clear() {
    map_.clear();
    order_.clear();
  }

  [[nodiscard]] size_t size() const { return map_.size(); }
  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] uint64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  uint64_t evictions_ = 0;
  std::list<std::pair<K, V>> order_;  // front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      map_;
};

}  // namespace freqdedup
