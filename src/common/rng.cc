#include "common/rng.h"

#include <fcntl.h>
#include <sys/random.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <stdexcept>

namespace freqdedup {

void secureRandomBytes(void* out, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(out);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::getrandom(p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    break;  // ENOSYS or other failure: fall back to /dev/urandom
  }
  if (got == n) return;
  const int fd = ::open("/dev/urandom", O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw std::runtime_error("secureRandomBytes: no entropy source");
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    ::close(fd);
    throw std::runtime_error("secureRandomBytes: /dev/urandom read failed");
  }
  ::close(fd);
}

uint64_t secureSeed() {
  uint64_t seed = 0;
  secureRandomBytes(&seed, sizeof(seed));
  return seed;
}

namespace {
constexpr uint64_t rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  haveSpareNormal_ = false;
}

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::uniformInt(uint64_t lo, uint64_t hi) {
  FDD_CHECK(lo <= hi);
  const uint64_t range = hi - lo;
  if (range == ~0ULL) return next();
  // Debiased modulo (rejection sampling on the top of the range).
  const uint64_t bound = range + 1;
  const uint64_t limit = (~0ULL) - ((~0ULL) % bound + 1) % bound;
  uint64_t r = next();
  while (r > limit) r = next();
  return lo + r % bound;
}

double Rng::uniformReal() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniformReal() < p;
}

double Rng::normal(double mean, double stddev) {
  if (haveSpareNormal_) {
    haveSpareNormal_ = false;
    return mean + stddev * spareNormal_;
  }
  double u1 = uniformReal();
  while (u1 <= 0.0) u1 = uniformReal();
  const double u2 = uniformReal();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double z0 = mag * std::cos(2.0 * M_PI * u2);
  spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
  haveSpareNormal_ = true;
  return mean + stddev * z0;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) {
  FDD_CHECK(lambda > 0.0);
  double u = uniformReal();
  while (u <= 0.0) u = uniformReal();
  return -std::log(u) / lambda;
}

uint64_t Rng::geometric(double p) {
  FDD_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u = uniformReal();
  while (u <= 0.0) u = uniformReal();
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

ZipfTable::ZipfTable(size_t n, double alpha) {
  FDD_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfTable::sample(Rng& rng) const {
  const double u = rng.uniformReal();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfTable::pmf(size_t rank) const {
  FDD_CHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace freqdedup
