#include "common/varint.h"

#include <stdexcept>

namespace freqdedup {

void putVarint(ByteVec& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

std::optional<uint64_t> getVarint(ByteView in, size_t& offset) {
  uint64_t v = 0;
  int shift = 0;
  size_t pos = offset;
  while (pos < in.size() && shift < 64) {
    const uint8_t b = in[pos++];
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      offset = pos;
      return v;
    }
    shift += 7;
  }
  return std::nullopt;
}

size_t varintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void putLengthPrefixedString(ByteVec& out, std::string_view s) {
  putVarint(out, s.size());
  appendBytes(out,
              ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

std::string getLengthPrefixedString(ByteView in, size_t& offset) {
  const auto len = getVarint(in, offset);
  // Underflow-safe bound: getVarint never advances offset past in.size().
  if (!len || *len > in.size() - offset)
    throw std::runtime_error("varint: truncated string");
  std::string s(reinterpret_cast<const char*>(in.data() + offset),
                static_cast<size_t>(*len));
  offset += static_cast<size_t>(*len);
  return s;
}

}  // namespace freqdedup
