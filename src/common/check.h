// Lightweight invariant checking for library code.
//
// CHECK(cond) throws std::logic_error when the condition is violated. It is
// used for programmer-error invariants (contract violations), while
// std::runtime_error subclasses are used for environmental failures (I/O,
// corrupt data). Following the C++ Core Guidelines (I.6/E.x), checks stay
// enabled in release builds: every caller of this library is a research
// harness where a silent invariant violation would corrupt results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace freqdedup {

[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream oss;
  oss << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw std::logic_error(oss.str());
}

}  // namespace freqdedup

#define FDD_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) ::freqdedup::checkFailed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define FDD_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond))                                                      \
      ::freqdedup::checkFailed(#cond, __FILE__, __LINE__, (msg));     \
  } while (0)
