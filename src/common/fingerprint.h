// Chunk fingerprints.
//
// The paper's traces identify chunks by truncated cryptographic hashes: the
// FSL traces use 48-bit fingerprints, the VM traces use SHA-1. We represent a
// fingerprint as a uint64_t holding the first `bits` bits of the digest; at
// the scaled dataset sizes used here (<= a few million unique chunks) the
// collision probability in a 48-bit space is negligible, matching the paper's
// compare-by-hash assumption (Section 2.1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/hash.h"

namespace freqdedup {

using Fp = uint64_t;

inline constexpr int kFslFpBits = 48;
inline constexpr int kFullFpBits = 64;
inline constexpr uint32_t kFpMetadataBytes = 32;  // per-fingerprint index entry

/// Truncates a digest to its first `bits` bits (bits in [1,64]).
Fp fpFromDigest(const Digest& d, int bits = kFullFpBits);

/// Fingerprint of raw chunk content: truncated SHA-256.
Fp fpOfContent(ByteView content, int bits = kFullFpBits);

/// Formats a fingerprint as fixed-width hex.
std::string fpToHex(Fp fp);

/// SplitMix64 finalizer — used to derive well-mixed hash values from
/// fingerprints (which are already uniform, but downstream consumers such as
/// the Bloom filter need multiple independent-looking values).
[[nodiscard]] constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash functor for fingerprint-keyed hash maps.
struct FpHash {
  size_t operator()(Fp fp) const noexcept {
    return static_cast<size_t>(mix64(fp));
  }
};

// Canonical fingerprint-keyed map aliases. FrequencyMap doubles as the
// co-occurrence map of a single chunk's neighbor table (both map fingerprints
// to occurrence counts); SizeMap records each unique chunk's size in bytes.
using FrequencyMap = std::unordered_map<Fp, uint64_t, FpHash>;
using SizeMap = std::unordered_map<Fp, uint32_t, FpHash>;

/// Size class of a chunk: number of 16-byte AES blocks (Algorithm 3 line 18).
/// Deterministic block-cipher encryption preserves a chunk's block count, so
/// the advanced attack rank-pairs within these classes.
[[nodiscard]] constexpr uint32_t sizeClassOf(uint32_t sizeBytes) {
  return (sizeBytes + 15) / 16;
}

/// One logical chunk occurrence as seen in a backup stream: its fingerprint
/// and its (plaintext or ciphertext) size in bytes. This is the unit every
/// trace-level component — generators, attacks, defenses, the dedup engine —
/// operates on. The paper's adversary observes exactly this stream
/// (Section 3.3: logical order of ciphertext chunks before deduplication).
struct ChunkRecord {
  Fp fp = 0;
  uint32_t size = 0;

  friend bool operator==(const ChunkRecord&, const ChunkRecord&) = default;
};

}  // namespace freqdedup
