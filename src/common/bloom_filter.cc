#include "common/bloom_filter.h"

#include <cmath>

#include "common/check.h"

namespace freqdedup {

BloomFilter::BloomFilter(size_t expectedItems, double fpr) {
  FDD_CHECK(expectedItems > 0);
  FDD_CHECK(fpr > 0.0 && fpr < 1.0);
  const double n = static_cast<double>(expectedItems);
  const double m = -n * std::log(fpr) / (std::log(2.0) * std::log(2.0));
  bits_ = std::max<size_t>(64, static_cast<size_t>(std::ceil(m)));
  k_ = std::max(1, static_cast<int>(std::round(m / n * std::log(2.0))));
  words_.assign((bits_ + 63) / 64, 0);
}

size_t BloomFilter::bitIndex(Fp fp, int i) const {
  const uint64_t h1 = mix64(fp);
  const uint64_t h2 = mix64(fp ^ 0xa5a5a5a5a5a5a5a5ULL) | 1ULL;
  return static_cast<size_t>((h1 + static_cast<uint64_t>(i) * h2) % bits_);
}

void BloomFilter::add(Fp fp) {
  for (int i = 0; i < k_; ++i) {
    const size_t b = bitIndex(fp, i);
    words_[b >> 6] |= 1ULL << (b & 63);
  }
  ++inserted_;
}

bool BloomFilter::maybeContains(Fp fp) const {
  for (int i = 0; i < k_; ++i) {
    const size_t b = bitIndex(fp, i);
    if ((words_[b >> 6] & (1ULL << (b & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() {
  words_.assign(words_.size(), 0);
  inserted_ = 0;
}

double BloomFilter::estimatedFpr() const {
  const double exponent = -static_cast<double>(k_) *
                          static_cast<double>(inserted_) /
                          static_cast<double>(bits_);
  const double inner = 1.0 - std::exp(exponent);
  return std::pow(inner, k_);
}

}  // namespace freqdedup
