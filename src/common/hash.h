// Cryptographic hashing built on OpenSSL's EVP interface.
//
// All fingerprinting in the library goes through these wrappers: SHA-1 (the
// VM dataset's fingerprint function in the paper), SHA-256 (content
// fingerprints, MinHash re-keying) and HMAC-SHA-256 (server-aided MLE key
// derivation).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace freqdedup {

/// A message digest of up to 32 bytes (SHA-1 uses 20, SHA-256 uses 32).
struct Digest {
  std::array<uint8_t, 32> bytes{};
  uint8_t size = 0;

  [[nodiscard]] ByteView view() const { return {bytes.data(), size}; }
  [[nodiscard]] std::string hex() const { return hexEncode(view()); }
  friend bool operator==(const Digest& a, const Digest& b) {
    return a.size == b.size &&
           std::equal(a.bytes.begin(), a.bytes.begin() + a.size,
                      b.bytes.begin());
  }
};

/// One-shot SHA-256 of a byte range.
Digest sha256(ByteView data);

/// One-shot SHA-1 of a byte range.
Digest sha1(ByteView data);

/// HMAC-SHA-256(key, data).
Digest hmacSha256(ByteView key, ByteView data);

/// Incremental SHA-256, for hashing streams without buffering them.
class Sha256Stream {
 public:
  Sha256Stream();
  ~Sha256Stream();
  Sha256Stream(const Sha256Stream&) = delete;
  Sha256Stream& operator=(const Sha256Stream&) = delete;

  void update(ByteView data);
  /// Finalizes and returns the digest; the stream resets for reuse.
  Digest finish();

 private:
  void* ctx_;  // EVP_MD_CTX, kept opaque to avoid leaking OpenSSL headers
};

}  // namespace freqdedup
