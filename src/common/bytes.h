// Byte-buffer aliases and small helpers shared across the library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace freqdedup {

using ByteVec = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

/// Encodes a byte range as lowercase hex.
std::string hexEncode(ByteView data);

/// Decodes a hex string; throws std::invalid_argument on malformed input.
ByteVec hexDecode(std::string_view hex);

/// Copies a string's bytes into a ByteVec (no encoding applied).
ByteVec toBytes(std::string_view s);

/// Interprets a byte range as a std::string.
std::string toString(ByteView data);

/// Reads a whole file; throws std::runtime_error on failure.
ByteVec readFile(const std::string& path);

/// Writes (truncates) a whole file; throws std::runtime_error on failure.
void writeFile(const std::string& path, ByteView data);

/// Appends 'data' to 'out'.
void appendBytes(ByteVec& out, ByteView data);

/// Little-endian fixed-width integer serialization.
void putU32(ByteVec& out, uint32_t v);
void putU64(ByteVec& out, uint64_t v);
uint32_t getU32(ByteView in, size_t offset);
uint64_t getU64(ByteView in, size_t offset);

}  // namespace freqdedup
