// LEB128-style varint encoding used by the on-disk storage formats
// (containers, recipes, log-structured key-value store).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace freqdedup {

/// Appends a varint-encoded value to `out`.
void putVarint(ByteVec& out, uint64_t v);

/// Reads a varint at `offset`; advances `offset` past it. Returns nullopt on
/// truncated or overlong (>10 byte) input.
std::optional<uint64_t> getVarint(ByteView in, size_t& offset);

/// Encoded size of a value in bytes.
size_t varintSize(uint64_t v);

/// Varint-length-prefixed string, shared by the on-disk formats (recipes,
/// traces). The getter bounds-checks against `in` and throws
/// std::runtime_error on truncated or over-long lengths.
void putLengthPrefixedString(ByteVec& out, std::string_view s);
std::string getLengthPrefixedString(ByteView in, size_t& offset);

}  // namespace freqdedup
