#include "common/fingerprint.h"

#include <cstdio>

#include "common/check.h"

namespace freqdedup {

Fp fpFromDigest(const Digest& d, int bits) {
  FDD_CHECK_MSG(bits >= 1 && bits <= 64, "fingerprint width out of range");
  FDD_CHECK_MSG(d.size >= 8, "digest too short for fingerprint");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d.bytes[static_cast<size_t>(i)];
  if (bits == 64) return v;
  return v >> (64 - bits);
}

Fp fpOfContent(ByteView content, int bits) {
  return fpFromDigest(sha256(content), bits);
}

std::string fpToHex(Fp fp) {
  char buf[17];
  snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace freqdedup
