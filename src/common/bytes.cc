#include "common/bytes.h"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "common/check.h"

namespace freqdedup {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hexEncode(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

ByteVec hexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("hexDecode: odd-length input");
  ByteVec out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hexValue(hex[i]);
    const int lo = hexValue(hex[i + 1]);
    if (hi < 0 || lo < 0)
      throw std::invalid_argument("hexDecode: non-hex character");
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

ByteVec toBytes(std::string_view s) {
  return ByteVec(s.begin(), s.end());
}

std::string toString(ByteView data) {
  return std::string(data.begin(), data.end());
}

ByteVec readFile(const std::string& path) {
  std::unique_ptr<FILE, decltype(&fclose)> f(fopen(path.c_str(), "rb"),
                                             &fclose);
  if (!f) throw std::runtime_error("readFile: cannot open " + path);
  fseek(f.get(), 0, SEEK_END);
  const long size = ftell(f.get());
  if (size < 0) throw std::runtime_error("readFile: ftell failed on " + path);
  fseek(f.get(), 0, SEEK_SET);
  ByteVec data(static_cast<size_t>(size));
  if (size > 0 && fread(data.data(), 1, data.size(), f.get()) != data.size())
    throw std::runtime_error("readFile: short read on " + path);
  return data;
}

void writeFile(const std::string& path, ByteView data) {
  std::unique_ptr<FILE, decltype(&fclose)> f(fopen(path.c_str(), "wb"),
                                             &fclose);
  if (!f) throw std::runtime_error("writeFile: cannot open " + path);
  if (!data.empty() &&
      fwrite(data.data(), 1, data.size(), f.get()) != data.size())
    throw std::runtime_error("writeFile: short write on " + path);
}

void appendBytes(ByteVec& out, ByteView data) {
  out.insert(out.end(), data.begin(), data.end());
}

void putU32(ByteVec& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void putU64(ByteVec& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t getU32(ByteView in, size_t offset) {
  FDD_CHECK_MSG(offset + 4 <= in.size(), "getU32 out of range");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(in[offset + i]) << (8 * i);
  return v;
}

uint64_t getU64(ByteView in, size_t offset) {
  FDD_CHECK_MSG(offset + 8 <= in.size(), "getU64 out of range");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(in[offset + i]) << (8 * i);
  return v;
}

}  // namespace freqdedup
