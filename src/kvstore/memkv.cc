#include "kvstore/memkv.h"

namespace freqdedup {

namespace {
std::string keyString(ByteView key) {
  return std::string(reinterpret_cast<const char*>(key.data()), key.size());
}
}  // namespace

void MemKv::put(ByteView key, ByteView value) {
  map_[keyString(key)] = ByteVec(value.begin(), value.end());
}

std::optional<ByteVec> MemKv::get(ByteView key) {
  const auto it = map_.find(keyString(key));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool MemKv::erase(ByteView key) { return map_.erase(keyString(key)) > 0; }

bool MemKv::contains(ByteView key) const {
  return map_.find(keyString(key)) != map_.end();
}

void MemKv::forEach(
    const std::function<void(ByteView key, ByteView value)>& fn) {
  for (const auto& [k, v] : map_) {
    fn(ByteView(reinterpret_cast<const uint8_t*>(k.data()), k.size()), v);
  }
}

}  // namespace freqdedup
