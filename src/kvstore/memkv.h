// In-memory key-value store backend.
#pragma once

#include <string>
#include <unordered_map>

#include "kvstore/kvstore.h"

namespace freqdedup {

class MemKv final : public KvStore {
 public:
  void put(ByteView key, ByteView value) override;
  std::optional<ByteVec> get(ByteView key) override;
  bool erase(ByteView key) override;
  [[nodiscard]] bool contains(ByteView key) const override;
  [[nodiscard]] size_t size() const override { return map_.size(); }
  void forEach(const std::function<void(ByteView key, ByteView value)>& fn)
      override;

 private:
  std::unordered_map<std::string, ByteVec> map_;
};

}  // namespace freqdedup
