#include "kvstore/kvstore.h"

#include "common/check.h"

namespace freqdedup {

ByteVec kvKeyFromU64(uint64_t v) {
  ByteVec key;
  key.reserve(8);
  putU64(key, v);
  return key;
}

uint64_t kvKeyToU64(ByteView key) {
  FDD_CHECK(key.size() == 8);
  return getU64(key, 0);
}

}  // namespace freqdedup
