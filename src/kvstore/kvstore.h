// Key-value store interface.
//
// The paper implements its associative arrays and the deduplication
// fingerprint index on LevelDB; this library provides the same capability
// with two backends: an in-memory map (MemKv) for attack state that fits in
// RAM at our dataset scale, and a persistent log-structured store (LogKv)
// for the durable fingerprint index of the storage prototype.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace freqdedup {

class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Inserts or overwrites a key.
  virtual void put(ByteView key, ByteView value) = 0;

  /// Returns the value for a key, or nullopt if absent.
  virtual std::optional<ByteVec> get(ByteView key) = 0;

  /// Removes a key. Returns true if it was present.
  virtual bool erase(ByteView key) = 0;

  /// Presence test without materializing the value.
  [[nodiscard]] virtual bool contains(ByteView key) const = 0;

  /// Number of live keys.
  [[nodiscard]] virtual size_t size() const = 0;

  /// Iterates all live entries (order unspecified). The callback must not
  /// mutate the store.
  virtual void forEach(
      const std::function<void(ByteView key, ByteView value)>& fn) = 0;
};

/// Convenience helpers for fingerprint-keyed stores.
ByteVec kvKeyFromU64(uint64_t v);
uint64_t kvKeyToU64(ByteView key);

}  // namespace freqdedup
