#include "kvstore/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/check.h"
#include "common/crc32.h"
#include "kvstore/crash_point.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace freqdedup {

namespace {

constexpr char kWalMagic[8] = {'F', 'D', 'W', 'A', 'L', '0', '0', '1'};
constexpr size_t kHeaderBytes = 20;  // magic(8) + baseLsn(8) + crc32c(4)

ByteVec encodeHeader(Lsn baseLsn) {
  ByteVec header;
  header.reserve(kHeaderBytes);
  appendBytes(header, ByteView(reinterpret_cast<const uint8_t*>(kWalMagic),
                               sizeof(kWalMagic)));
  putU64(header, baseLsn);
  putU32(header, crc32c(ByteView(header.data(), 16)));
  return header;
}

void pwriteFully(int fd, const uint8_t* data, size_t size, uint64_t offset,
                 const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, data, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("wal: write failed on " + path + ": " +
                               std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
}

/// Reads up to `size` bytes; returns bytes read (short at EOF).
size_t preadFully(int fd, uint8_t* out, size_t size, uint64_t offset,
                  const std::string& path) {
  size_t total = 0;
  while (total < size) {
    const ssize_t n = ::pread(fd, out + total, size - total,
                              static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("wal: read failed on " + path + ": " +
                               std::strerror(errno));
    }
    if (n == 0) break;  // EOF
    total += static_cast<size_t>(n);
  }
  return total;
}

void fdatasyncOrThrow(int fd, const std::string& path) {
  if (::fdatasync(fd) != 0)
    throw std::runtime_error("wal: fdatasync failed on " + path + ": " +
                             std::strerror(errno));
}

uint64_t fileSizeOf(int fd, const std::string& path) {
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0)
    throw std::runtime_error("wal: lseek failed on " + path + ": " +
                             std::strerror(errno));
  return static_cast<uint64_t>(end);
}

}  // namespace

void fsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0)
    throw std::runtime_error("wal: cannot open directory " + dir + ": " +
                             std::strerror(errno));
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0)
    throw std::runtime_error("wal: fsync failed on directory " + dir + ": " +
                             std::strerror(err));
}

void Wal::throwErrno(const std::string& what) const {
  throw std::runtime_error("wal: " + what + " on " + path_ + ": " +
                           std::strerror(errno));
}

Wal::Wal(std::string path, WalOptions options, Lsn createBaseLsn)
    : path_(std::move(path)), options_(options) {
  openFile(createBaseLsn);
}

Wal::~Wal() {
  stopAsyncSyncer();
  if (fd_ >= 0) {
    if (!crashed_) {
      try {
        syncAll();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
        // Destructors must not throw; an unsynced tail is the same state as
        // a crash before sync, which recovery truncates cleanly.
      }
    }
    ::close(fd_);
  }
}

void Wal::openFile(Lsn createBaseLsn) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  const bool created = fd_ < 0 && errno == ENOENT;
  if (created)
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd_ < 0) throwErrno("cannot open");
  if (created) {
    const ByteVec header = encodeHeader(createBaseLsn);
    pwriteFully(fd_, header.data(), header.size(), 0, path_);
    fdatasyncOrThrow(fd_, path_);
    fsyncDir(std::filesystem::path(path_).parent_path().string());
  }
  readHeader();
}

void Wal::readHeader() {
  const uint64_t size = fileSizeOf(fd_, path_);
  uint8_t header[kHeaderBytes];
  bool haveHeader = false;
  if (size >= kHeaderBytes &&
      preadFully(fd_, header, kHeaderBytes, 0, path_) == kHeaderBytes &&
      std::memcmp(header, kWalMagic, sizeof(kWalMagic)) == 0 &&
      crc32c(ByteView(header, 16)) == getU32(ByteView(header, kHeaderBytes),
                                             16)) {
    haveHeader = true;
  }
  if (haveHeader) {
    headerBytes_ = kHeaderBytes;
    baseLsn_ = getU64(ByteView(header, kHeaderBytes), 8);
  } else {
    // Legacy pre-WAL log (or a file torn during creation): treat the whole
    // file as records with base LSN 0. The next rotation migrates it.
    headerBytes_ = 0;
    baseLsn_ = 0;
  }
  writtenLsn_ = baseLsn_ + (size - headerBytes_);
  nextLsn_ = writtenLsn_;
  durableLsn_ = writtenLsn_;  // just (re)opened: nothing buffered
}

Lsn Wal::append(ByteView payload) {
  ByteVec framed;
  framed.reserve(kFrameBytes + payload.size());
  putU32(framed, crc32c(payload));
  putU32(framed, static_cast<uint32_t>(payload.size()));
  appendBytes(framed, payload);

  if (options_.syncMode == WalOptions::SyncMode::kPerOp) {
    appendPerOp(framed);
    std::lock_guard lock(bufMu_);
    return nextLsn_ - payload.size();
  }

  // Slot buffers are bounded: once the open slot exceeds the spill
  // threshold (a put-heavy stretch with no sync in sight), write it to the
  // file WITHOUT a sync — durability is still deferred to the next group
  // fdatasync, which covers spilled bytes for free. Spilling only happens
  // while no leader is writing, so file regions never overlap.
  constexpr size_t kSpillBytes = 1 << 20;
  Lsn payloadLsn = 0;
  {
    std::lock_guard lock(bufMu_);
    payloadLsn = nextLsn_ + kFrameBytes;
    appendBytes(buf_, framed);
    nextLsn_ += framed.size();
    ++pendingGroupRecords_;
    if (buf_.size() >= kSpillBytes && writingBuf_.empty()) {
      pwriteFully(fd_, buf_.data(), buf_.size(), fileOffsetOf(writtenLsn_),
                  path_);
      writtenLsn_ += buf_.size();
      buf_.clear();
      // pendingGroupRecords_ stays: the spilled records still belong to the
      // next sync's group (they are written, not yet durable).
    }
  }
  kvcrash::crashPoint("wal.append");
  if (appendsMetric_ != nullptr) {
    appendsMetric_->add();
    appendBytesMetric_->add(framed.size());
  }
  return payloadLsn;
}

void Wal::appendPerOp(ByteView framed) {
  // Per-operation baseline: one serialized pwrite + fdatasync per record.
  std::scoped_lock lock(syncMu_, bufMu_);
  if (crashed_) throw std::runtime_error("wal: crashed: " + path_);
  pwriteFully(fd_, framed.data(), framed.size(), fileOffsetOf(nextLsn_),
              path_);
  kvcrash::crashPoint("wal.after_write");
  obs::ObsSpan span(syncUsMetric_, "wal.sync", "wal");
  fdatasyncOrThrow(fd_, path_);
  span.finish();
  kvcrash::crashPoint("wal.after_sync");
  nextLsn_ += framed.size();
  writtenLsn_ = nextLsn_;
  durableLsn_ = nextLsn_;
  if (appendsMetric_ != nullptr) {
    appendsMetric_->add();
    appendBytesMetric_->add(framed.size());
    syncsMetric_->add();
    groupRecordsMetric_->record(1);
    groupBytesMetric_->record(framed.size());
  }
}

void Wal::sync(Lsn lsn) {
  if (options_.syncMode == WalOptions::SyncMode::kPerOp) return;  // durable
  std::unique_lock lock(syncMu_);
  for (;;) {
    if (crashed_) throw std::runtime_error("wal: crashed: " + path_);
    if (durableLsn_ >= lsn) return;
    if (!leaderActive_) break;
    // A leader is writing the previous slot; wait for it to publish. The
    // waiters it wakes re-check durableLsn_ and the first one still short
    // of its LSN leads the next slot — that later-arrivals batch is the
    // group commit.
    syncCv_.wait(lock);
  }
  leaderActive_ = true;
  writeLeaderGroup(lock);
}

void Wal::writeLeaderGroup(std::unique_lock<std::mutex>& syncLock) {
  // Called with syncMu_ held and leaderActive_ set by this thread.
  Lsn target = 0;
  {
    std::lock_guard bufLock(bufMu_);
    FDD_CHECK(writingBuf_.empty());
    writingBuf_ = std::move(buf_);
    buf_.clear();
    writingGroupRecords_ = pendingGroupRecords_;
    pendingGroupRecords_ = 0;
    target = nextLsn_;
  }
  syncLock.unlock();

  bool ok = false;
  try {
    if (!writingBuf_.empty())
      pwriteFully(fd_, writingBuf_.data(), writingBuf_.size(),
                  fileOffsetOf(target - writingBuf_.size()), path_);
    kvcrash::crashPoint("wal.after_write");
    obs::ObsSpan span(syncUsMetric_, "wal.sync", "wal");
    fdatasyncOrThrow(fd_, path_);
    span.finish();
    kvcrash::crashPoint("wal.after_sync");
    ok = true;
  } catch (...) {
    // Leave the group in writingBuf_ visible to readAt (the bytes are still
    // the authoritative tail), mark the log crashed so no caller believes a
    // later sync succeeded, and wake everyone.
    {
      std::lock_guard bufLock(bufMu_);
      writtenLsn_ = target;  // pwrite may have partially landed; readAt must
      writingBuf_.clear();   // not re-serve these bytes from memory if the
      writingGroupRecords_ = 0;  // file now holds them — but a failed write
      // is unrecoverable for this instance either way:
    }
    syncLock.lock();
    crashed_ = true;
    leaderActive_ = false;
    syncLock.unlock();
    syncCv_.notify_all();
    throw;
  }

  if (syncsMetric_ != nullptr && ok) {
    syncsMetric_->add();
    groupRecordsMetric_->record(writingGroupRecords_);
    groupBytesMetric_->record(writingBuf_.size());
  }
  {
    std::lock_guard bufLock(bufMu_);
    writtenLsn_ = target;
    writingBuf_.clear();
    writingGroupRecords_ = 0;
  }
  syncLock.lock();
  durableLsn_ = target;
  leaderActive_ = false;
  syncLock.unlock();
  syncCv_.notify_all();
}

void Wal::syncAsync(Lsn lsn, std::function<void(bool ok)> done) {
  // Already durable (including the kPerOp mode, where every append is):
  // nothing to wait for, run the callback on the caller's thread.
  if (durableLsn() >= lsn) {
    done(true);
    return;
  }
  {
    std::lock_guard lock(asyncMu_);
    if (asyncStop_) {
      // Closing: behave like a crash before sync.
      done(false);
      return;
    }
    if (!asyncSyncer_.joinable())
      asyncSyncer_ = std::thread([this] { asyncSyncerLoop(); });
    asyncPending_.emplace_back(lsn, std::move(done));
  }
  asyncCv_.notify_one();
}

void Wal::asyncSyncerLoop() {
  for (;;) {
    std::vector<std::pair<Lsn, std::function<void(bool)>>> batch;
    {
      std::unique_lock lock(asyncMu_);
      asyncCv_.wait(lock,
                    [this] { return asyncStop_ || !asyncPending_.empty(); });
      if (asyncPending_.empty()) return;  // asyncStop_ and nothing owed
      batch.swap(asyncPending_);
    }
    // One blocking sync covers the whole batch — and coalesces with any
    // concurrent blocking sync()ers through the normal slot mechanism.
    Lsn maxLsn = 0;
    for (const auto& [lsn, cb] : batch) maxLsn = std::max(maxLsn, lsn);
    bool ok = true;
    try {
      sync(maxLsn);
    } catch (...) {
      ok = false;  // crashed / I/O failure: every waiter learns the truth
    }
    for (auto& [lsn, cb] : batch) {
      try {
        cb(ok);
      } catch (...) {  // NOLINT(bugprone-empty-catch)
        // A throwing completion callback must not take down the syncer (or
        // starve the callbacks queued behind it).
      }
    }
  }
}

void Wal::stopAsyncSyncer() {
  {
    std::lock_guard lock(asyncMu_);
    asyncStop_ = true;
  }
  asyncCv_.notify_all();
  if (asyncSyncer_.joinable()) asyncSyncer_.join();
}

Lsn Wal::appendedLsn() const {
  std::lock_guard lock(bufMu_);
  return nextLsn_;
}

Lsn Wal::durableLsn() const {
  std::lock_guard lock(syncMu_);
  return durableLsn_;
}

ByteVec Wal::readAt(Lsn lsn, size_t size) {
  ByteVec out(size);
  size_t have = 0;
  // File bytes below writtenLsn_ are immutable once written (append-only;
  // truncation only happens in recovery/rotation, which never races reads),
  // so the pread itself can run without the buffer lock.
  uint64_t preadOffset = 0;
  size_t preadBytes = 0;
  {
    std::lock_guard lock(bufMu_);
    if (lsn < baseLsn_ || lsn + size > nextLsn_)
      throw std::runtime_error("wal: read out of range on " + path_);
    const size_t fromFile =
        lsn < writtenLsn_
            ? std::min<uint64_t>(size, writtenLsn_ - lsn)
            : 0;
    preadOffset = fileOffsetOf(lsn);
    preadBytes = fromFile;
    // Memory part: writingBuf_ then buf_, contiguous from writtenLsn_.
    size_t memPos = have + fromFile;
    Lsn memLsn = lsn + fromFile;
    if (memPos < size) {
      const uint64_t memOffset = memLsn - writtenLsn_;
      if (memOffset < writingBuf_.size()) {
        const size_t n = std::min(size - memPos,
                                  writingBuf_.size() -
                                      static_cast<size_t>(memOffset));
        std::memcpy(out.data() + memPos, writingBuf_.data() + memOffset, n);
        memPos += n;
        memLsn += n;
      }
      if (memPos < size) {
        const uint64_t bufOffset =
            memLsn - (writtenLsn_ + writingBuf_.size());
        std::memcpy(out.data() + memPos, buf_.data() + bufOffset,
                    size - memPos);
      }
    }
  }
  if (preadBytes > 0 &&
      preadFully(fd_, out.data(), preadBytes, preadOffset, path_) !=
          preadBytes)
    throw std::runtime_error("wal: short read on " + path_);
  return out;
}

Lsn Wal::scan(Lsn from, const std::function<bool(const Record&)>& fn) {
  const uint64_t size = fileSizeOf(fd_, path_);
  const uint64_t dataBytes = size - headerBytes_;
  Lsn lsn = std::max(from, baseLsn_);
  if (lsn - baseLsn_ > dataBytes) {
    // A checkpoint watermark beyond the log's end (a crash tore the log's
    // creation after the checkpoint committed): rewrite the log as an empty
    // one based at the watermark, so future appends cannot leave a hole
    // that a later replay would misread as a torn tail.
    if (::ftruncate(fd_, 0) != 0) throwErrno("ftruncate failed");
    const ByteVec header = encodeHeader(lsn);
    pwriteFully(fd_, header.data(), header.size(), 0, path_);
    fdatasyncOrThrow(fd_, path_);
    headerBytes_ = kHeaderBytes;
    baseLsn_ = lsn;
    std::scoped_lock lock(syncMu_, bufMu_);
    writtenLsn_ = nextLsn_ = durableLsn_ = lsn;
    return lsn;
  }

  ByteVec payload;
  while (lsn + kFrameBytes <= baseLsn_ + dataBytes) {
    uint8_t frame[kFrameBytes];
    if (preadFully(fd_, frame, kFrameBytes, fileOffsetOf(lsn), path_) !=
        kFrameBytes)
      break;
    const uint32_t crc = getU32(ByteView(frame, kFrameBytes), 0);
    const uint32_t len = getU32(ByteView(frame, kFrameBytes), 4);
    if (lsn + kFrameBytes + len > baseLsn_ + dataBytes) break;
    payload.resize(len);
    if (len > 0 &&
        preadFully(fd_, payload.data(), len, fileOffsetOf(lsn) + kFrameBytes,
                   path_) != len)
      break;
    if (crc32c(payload) != crc) break;  // torn/corrupt record: stop here
    Record record;
    record.start = lsn;
    record.payloadLsn = lsn + kFrameBytes;
    record.end = lsn + kFrameBytes + len;
    record.payload = payload;
    const bool keepGoing = fn(record);
    lsn = record.end;
    if (!keepGoing) break;
  }

  if (lsn - baseLsn_ < dataBytes) {
    // Truncate the torn tail so appends resume at a clean record boundary.
    if (::ftruncate(fd_, static_cast<off_t>(fileOffsetOf(lsn))) != 0)
      throwErrno("ftruncate failed");
  }
  std::lock_guard lock(bufMu_);
  writtenLsn_ = nextLsn_ = lsn;
  {
    std::lock_guard syncLock(syncMu_);
    durableLsn_ = lsn;
  }
  return lsn;
}

void Wal::rotate(Lsn watermark) {
  // Callers guarantee watermark == appendedLsn() and that all state below
  // it is durable in a renamed+directory-synced checkpoint, so the old log
  // (and anything still buffered) is redundant once the new one is in
  // place.
  std::unique_lock syncLock(syncMu_);
  syncCv_.wait(syncLock, [this] { return !leaderActive_; });
  if (crashed_) throw std::runtime_error("wal: crashed: " + path_);
  std::lock_guard bufLock(bufMu_);
  FDD_CHECK_MSG(watermark == nextLsn_, "rotate below the appended end");

  const std::string tmpPath = path_ + ".new";
  const int tmpFd =
      ::open(tmpPath.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmpFd < 0)
    throw std::runtime_error("wal: cannot create " + tmpPath + ": " +
                             std::strerror(errno));
  try {
    const ByteVec header = encodeHeader(watermark);
    pwriteFully(tmpFd, header.data(), header.size(), 0, tmpPath);
    fdatasyncOrThrow(tmpFd, tmpPath);
  } catch (...) {
    ::close(tmpFd);
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmpPath, path_, ec);
  if (ec) {
    ::close(tmpFd);
    throw std::runtime_error("wal: rename failed on " + tmpPath + ": " +
                             ec.message());
  }
  fsyncDir(std::filesystem::path(path_).parent_path().string());
  ::close(fd_);
  fd_ = tmpFd;  // same inode as the renamed file
  headerBytes_ = kHeaderBytes;
  baseLsn_ = watermark;
  writtenLsn_ = nextLsn_ = durableLsn_ = watermark;
  buf_.clear();
  writingBuf_.clear();
  pendingGroupRecords_ = writingGroupRecords_ = 0;
  syncLock.unlock();
  syncCv_.notify_all();
}

void Wal::bindMetrics(obs::MetricsRegistry& registry) {
  appendsMetric_ = &registry.counter("wal.appends");
  appendBytesMetric_ = &registry.counter("wal.append_bytes");
  syncsMetric_ = &registry.counter("wal.syncs");
  syncUsMetric_ = &registry.histogram("wal.sync_us");
  groupRecordsMetric_ = &registry.histogram("wal.group_records");
  groupBytesMetric_ = &registry.histogram("wal.group_bytes");
}

void Wal::markCrashed() {
  {
    std::lock_guard lock(syncMu_);
    crashed_ = true;
  }
  syncCv_.notify_all();
}

}  // namespace freqdedup
