#include "kvstore/logkv.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/check.h"
#include "common/crc32.h"
#include "common/varint.h"

namespace freqdedup {

namespace {

std::string keyString(ByteView key) {
  return std::string(reinterpret_cast<const char*>(key.data()), key.size());
}

constexpr size_t kHeaderBytes = 8;  // crc32 + payloadLen

}  // namespace

LogKv::LogKv(std::string path) : path_(std::move(path)), file_(nullptr, fclose) {
  openLog();
  replay();
}

LogKv::~LogKv() {
  if (file_) fflush(file_.get());
}

void LogKv::openLog() {
  // "a+b" would force appends regardless of seek; use explicit r+b/w+b so we
  // can truncate torn tails during recovery.
  FILE* f = fopen(path_.c_str(), "r+b");
  if (f == nullptr) f = fopen(path_.c_str(), "w+b");
  if (f == nullptr)
    throw std::runtime_error("LogKv: cannot open " + path_ + ": " +
                             std::strerror(errno));
  file_.reset(f);
}

void LogKv::replay() {
  index_.clear();
  writeOffset_ = 0;
  deadRecords_ = 0;
  FILE* f = file_.get();
  fseek(f, 0, SEEK_END);
  const long fileSize = ftell(f);
  FDD_CHECK(fileSize >= 0);
  fseek(f, 0, SEEK_SET);

  ByteVec payload;
  uint64_t offset = 0;
  while (offset + kHeaderBytes <= static_cast<uint64_t>(fileSize)) {
    uint8_t header[kHeaderBytes];
    if (fread(header, 1, kHeaderBytes, f) != kHeaderBytes) break;
    const uint32_t crc = getU32(ByteView(header, kHeaderBytes), 0);
    const uint32_t len = getU32(ByteView(header, kHeaderBytes), 4);
    if (offset + kHeaderBytes + len > static_cast<uint64_t>(fileSize)) break;
    payload.resize(len);
    if (len > 0 && fread(payload.data(), 1, len, f) != len) break;
    if (crc32c(payload) != crc) break;  // corrupt record: stop at torn tail

    size_t pos = 0;
    if (payload.empty()) break;
    const auto type = static_cast<RecordType>(payload[pos++]);
    const auto keyLen = getVarint(payload, pos);
    if (!keyLen || pos + *keyLen > payload.size()) break;
    std::string key(reinterpret_cast<const char*>(payload.data() + pos),
                    static_cast<size_t>(*keyLen));
    pos += static_cast<size_t>(*keyLen);
    if (type == RecordType::kPut) {
      const auto valLen = getVarint(payload, pos);
      if (!valLen || pos + *valLen != payload.size()) break;
      if (index_.count(key) > 0) ++deadRecords_;
      index_[key] = ValueLocation{
          offset + kHeaderBytes + pos, static_cast<uint32_t>(*valLen)};
    } else if (type == RecordType::kDelete) {
      if (index_.erase(key) > 0) ++deadRecords_;
      ++deadRecords_;  // the tombstone itself is dead space
    } else {
      break;  // unknown record type: treat as corruption
    }
    offset += kHeaderBytes + len;
  }

  // Truncate any torn tail so subsequent appends start at a clean boundary.
  if (offset < static_cast<uint64_t>(fileSize)) {
    std::filesystem::resize_file(path_, offset);
    // Reopen to refresh the stdio stream's view of the file.
    file_.reset();
    openLog();
  }
  writeOffset_ = offset;
  fseek(file_.get(), static_cast<long>(writeOffset_), SEEK_SET);
}

uint64_t LogKv::appendRecord(RecordType type, ByteView key, ByteView value) {
  ByteVec payload;
  payload.reserve(1 + 10 + key.size() + 10 + value.size());
  payload.push_back(static_cast<uint8_t>(type));
  putVarint(payload, key.size());
  appendBytes(payload, key);
  size_t valueOffsetInPayload = 0;
  if (type == RecordType::kPut) {
    putVarint(payload, value.size());
    valueOffsetInPayload = payload.size();
    appendBytes(payload, value);
  }

  ByteVec framed;
  framed.reserve(kHeaderBytes + payload.size());
  putU32(framed, crc32c(payload));
  putU32(framed, static_cast<uint32_t>(payload.size()));
  appendBytes(framed, payload);

  FILE* f = file_.get();
  fseek(f, static_cast<long>(writeOffset_), SEEK_SET);
  if (fwrite(framed.data(), 1, framed.size(), f) != framed.size())
    throw std::runtime_error("LogKv: append failed on " + path_);
  const uint64_t valueFileOffset =
      writeOffset_ + kHeaderBytes + valueOffsetInPayload;
  writeOffset_ += framed.size();
  return valueFileOffset;
}

ByteVec LogKv::readValueAt(const ValueLocation& loc) {
  FILE* f = file_.get();
  fflush(f);  // make buffered appends visible to the read below
  fseek(f, static_cast<long>(loc.offset), SEEK_SET);
  ByteVec value(loc.size);
  if (loc.size > 0 && fread(value.data(), 1, value.size(), f) != value.size())
    throw std::runtime_error("LogKv: value read failed on " + path_);
  fseek(f, static_cast<long>(writeOffset_), SEEK_SET);
  return value;
}

void LogKv::put(ByteView key, ByteView value) {
  const uint64_t valueOffset = appendRecord(RecordType::kPut, key, value);
  auto [it, inserted] = index_.try_emplace(keyString(key));
  if (!inserted) ++deadRecords_;
  it->second = ValueLocation{valueOffset, static_cast<uint32_t>(value.size())};
}

std::optional<ByteVec> LogKv::get(ByteView key) {
  const auto it = index_.find(keyString(key));
  if (it == index_.end()) return std::nullopt;
  return readValueAt(it->second);
}

bool LogKv::erase(ByteView key) {
  const auto it = index_.find(keyString(key));
  if (it == index_.end()) return false;
  appendRecord(RecordType::kDelete, key, {});
  index_.erase(it);
  ++deadRecords_;
  return true;
}

bool LogKv::contains(ByteView key) const {
  return index_.find(keyString(key)) != index_.end();
}

void LogKv::forEach(
    const std::function<void(ByteView key, ByteView value)>& fn) {
  for (const auto& [key, loc] : index_) {
    const ByteVec value = readValueAt(loc);
    fn(ByteView(reinterpret_cast<const uint8_t*>(key.data()), key.size()),
       value);
  }
}

void LogKv::flush() { fflush(file_.get()); }

void LogKv::compact() {
  const std::string tmpPath = path_ + ".compact";
  {
    LogKv fresh(tmpPath);
    forEach([&fresh](ByteView key, ByteView value) { fresh.put(key, value); });
    fresh.flush();
  }
  file_.reset();
  std::filesystem::rename(tmpPath, path_);
  openLog();
  replay();
}

}  // namespace freqdedup
