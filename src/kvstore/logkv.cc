#include "kvstore/logkv.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/check.h"
#include "common/crc32.h"
#include "common/varint.h"
#include "kvstore/crash_point.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace freqdedup {

namespace {

std::string keyString(ByteView key) {
  return std::string(reinterpret_cast<const char*>(key.data()), key.size());
}

// Checkpoint header: magic(8) + recordCount(u64) + watermarkLsn(u64) +
// crc32c of the preceding 24 bytes.
constexpr char kCkptMagic[8] = {'F', 'D', 'K', 'V', 'C', 'K', 'P', '1'};
constexpr size_t kCkptHeaderBytes = 28;

/// Write buffer size for checkpoint streaming (bounds RAM for large
/// stores; values larger than this still write in one piece).
constexpr size_t kCkptWriteBufBytes = 1 << 20;

void pwriteFully(int fd, const uint8_t* data, size_t size, uint64_t offset,
                 const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, data, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("LogKv: write failed on " + path + ": " +
                               std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
}

void preadExactly(int fd, uint8_t* out, size_t size, uint64_t offset,
                  const std::string& path) {
  size_t total = 0;
  while (total < size) {
    const ssize_t n = ::pread(fd, out + total, size - total,
                              static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("LogKv: read failed on " + path + ": " +
                               std::strerror(errno));
    }
    if (n == 0)
      throw std::runtime_error("LogKv: short read on " + path);
    total += static_cast<size_t>(n);
  }
}

/// Closes a raw fd on scope exit unless released (ownership transferred).
struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
  int release() {
    const int out = fd;
    fd = -1;
    return out;
  }
};

}  // namespace

LogKv::LogKv(std::string path, LogKvOptions options)
    : path_(std::move(path)), options_(options) {
  open();
}

LogKv::~LogKv() {
  if (!crashed_) {
    try {
      wal_->syncAll();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // Destructors must not throw; an unsynced tail is the crash-before-
      // flush state, which recovery handles.
    }
  }
  if (ckptFd_ >= 0) ::close(ckptFd_);
}

void LogKv::open() {
  // Stray transients from a crash mid-checkpoint / mid-rotation: the tmp
  // checkpoint was never renamed (so never valid) and the tmp log was never
  // swapped in; both are dead bytes.
  std::error_code ec;
  std::filesystem::remove(ckptTmpPath(), ec);
  std::filesystem::remove(path_ + ".new", ec);

  loadCheckpoint();
  // If the log is missing (first open, or a crash between checkpoint and
  // log creation), it is created already based at the watermark.
  wal_ = std::make_unique<Wal>(path_, options_.wal, watermark_);
  replayTail();
}

void LogKv::loadCheckpoint() {
  index_.clear();
  watermark_ = 0;
  ckptLoaded_ = false;
  ckptRecordsLoaded_ = 0;
  if (!std::filesystem::exists(ckptPath())) return;

  bool valid = false;
  try {
    const ByteVec data = readFile(ckptPath());
    do {
      if (data.size() < kCkptHeaderBytes) break;
      if (std::memcmp(data.data(), kCkptMagic, sizeof(kCkptMagic)) != 0)
        break;
      if (crc32c(ByteView(data.data(), 24)) != getU32(data, 24)) break;
      const uint64_t count = getU64(data, 8);
      const Lsn watermark = getU64(data, 16);
      std::unordered_map<std::string, ValueLocation> loaded;
      loaded.reserve(static_cast<size_t>(
          std::min<uint64_t>(count, data.size() / Wal::kFrameBytes)));
      uint64_t offset = kCkptHeaderBytes;
      uint64_t i = 0;
      for (; i < count; ++i) {
        if (offset + Wal::kFrameBytes > data.size()) break;
        const uint32_t crc = getU32(data, offset);
        const uint32_t len = getU32(data, offset + 4);
        if (offset + Wal::kFrameBytes + len > data.size()) break;
        const ByteView payload(data.data() + offset + Wal::kFrameBytes, len);
        if (crc32c(payload) != crc) break;
        ParsedRecord record;
        if (!parseRecordPayload(payload, record)) break;
        // Checkpoints hold only live puts; anything else is corruption.
        if (record.type != RecordType::kPut) break;
        loaded[std::move(record.key)] = ValueLocation{
            offset + Wal::kFrameBytes + record.valueOffsetInPayload,
            record.valueSize, ValueFile::kCkpt};
        offset += Wal::kFrameBytes + len;
      }
      if (i != count || offset != data.size() || loaded.size() != count)
        break;
      index_ = std::move(loaded);
      watermark_ = watermark;
      ckptRecordsLoaded_ = count;
      valid = true;
    } while (false);
  } catch (const std::exception&) {
    valid = false;
  }

  if (!valid) {
    // Quarantine for forensics and fall back to replaying the whole log
    // from its base (best effort: if the log was already rotated past this
    // checkpoint, the loss is real and the caller's verify() reports it).
    index_.clear();
    watermark_ = 0;
    std::error_code ec;
    std::filesystem::rename(ckptPath(), ckptPath() + ".corrupt", ec);
    return;
  }
  const int fd = ::open(ckptPath().c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw std::runtime_error("LogKv: cannot reopen checkpoint " +
                             ckptPath() + ": " + std::strerror(errno));
  ckptFd_ = fd;
  ckptLoaded_ = true;
}

void LogKv::replayTail() {
  deadRecords_ = 0;
  tailRecordsReplayed_ = 0;
  tailBytesReplayed_ = 0;
  wal_->scan(watermark_, [this](const Wal::Record& record) {
    ParsedRecord parsed;
    if (!parseRecordPayload(record.payload, parsed))
      return false;  // CRC-valid but malformed: treat as corruption, stop
    if (parsed.type == RecordType::kPut) {
      const auto it = index_.find(parsed.key);
      if (it != index_.end()) ++deadRecords_;
      index_[std::move(parsed.key)] = ValueLocation{
          record.payloadLsn + parsed.valueOffsetInPayload, parsed.valueSize,
          ValueFile::kWal};
    } else {
      if (index_.erase(parsed.key) > 0) ++deadRecords_;
      ++deadRecords_;  // the tombstone itself is dead space
    }
    ++tailRecordsReplayed_;
    tailBytesReplayed_ += record.end - record.start;
    return true;
  });
}

ByteVec LogKv::encodePutPayload(ByteView key, ByteView value,
                                size_t& valueOffsetInPayload) {
  ByteVec payload;
  payload.reserve(1 + 10 + key.size() + 10 + value.size());
  payload.push_back(static_cast<uint8_t>(RecordType::kPut));
  putVarint(payload, key.size());
  appendBytes(payload, key);
  putVarint(payload, value.size());
  valueOffsetInPayload = payload.size();
  appendBytes(payload, value);
  return payload;
}

bool LogKv::parseRecordPayload(ByteView payload, ParsedRecord& out) {
  if (payload.empty()) return false;
  size_t pos = 0;
  const uint8_t type = payload[pos++];
  if (type != static_cast<uint8_t>(RecordType::kPut) &&
      type != static_cast<uint8_t>(RecordType::kDelete))
    return false;
  out.type = static_cast<RecordType>(type);
  const auto keyLen = getVarint(payload, pos);
  if (!keyLen || pos + *keyLen > payload.size()) return false;
  out.key.assign(reinterpret_cast<const char*>(payload.data() + pos),
                 static_cast<size_t>(*keyLen));
  pos += static_cast<size_t>(*keyLen);
  if (out.type == RecordType::kPut) {
    const auto valLen = getVarint(payload, pos);
    if (!valLen || pos + *valLen != payload.size()) return false;
    out.valueOffsetInPayload = pos;
    out.valueSize = static_cast<uint32_t>(*valLen);
  } else if (pos != payload.size()) {
    return false;
  }
  return true;
}

ByteVec LogKv::readValueAtLocked(const ValueLocation& loc) {
  if (loc.file == ValueFile::kWal) return wal_->readAt(loc.offset, loc.size);
  ByteVec value(loc.size);
  if (loc.size > 0)
    preadExactly(ckptFd_, value.data(), value.size(), loc.offset,
                 ckptPath());
  return value;
}

void LogKv::markCrashedLocked() {
  crashed_ = true;
  if (wal_) wal_->markCrashed();
}

void LogKv::put(ByteView key, ByteView value) {
  std::lock_guard lock(mu_);
  try {
    size_t valueOffsetInPayload = 0;
    const ByteVec payload = encodePutPayload(key, value,
                                             valueOffsetInPayload);
    const Lsn payloadLsn = wal_->append(payload);
    auto [it, inserted] = index_.try_emplace(keyString(key));
    if (!inserted) ++deadRecords_;
    it->second = ValueLocation{payloadLsn + valueOffsetInPayload,
                               static_cast<uint32_t>(value.size()),
                               ValueFile::kWal};
    maybeCheckpointLocked();
  } catch (const kvcrash::CrashInjected&) {
    markCrashedLocked();
    throw;
  }
}

Lsn LogKv::putAsync(ByteView key, ByteView value) {
  std::lock_guard lock(mu_);
  try {
    size_t valueOffsetInPayload = 0;
    const ByteVec payload = encodePutPayload(key, value,
                                             valueOffsetInPayload);
    const Lsn payloadLsn = wal_->append(payload);
    auto [it, inserted] = index_.try_emplace(keyString(key));
    if (!inserted) ++deadRecords_;
    it->second = ValueLocation{payloadLsn + valueOffsetInPayload,
                               static_cast<uint32_t>(value.size()),
                               ValueFile::kWal};
    // Deliberately no maybeCheckpointLocked(): a checkpoint inside a
    // pipelined commit would sync the whole store and defeat the point;
    // the caller's eventual sync/put drives checkpointing instead.
    return wal_->appendedLsn();
  } catch (const kvcrash::CrashInjected&) {
    markCrashedLocked();
    throw;
  }
}

void LogKv::syncAsync(Lsn lsn, std::function<void(bool ok)> done) {
  bool isCrashed = false;
  {
    std::lock_guard lock(mu_);
    isCrashed = crashed_;
  }
  if (isCrashed) {
    done(false);
    return;
  }
  wal_->syncAsync(lsn, std::move(done));
}

std::optional<ByteVec> LogKv::get(ByteView key) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(keyString(key));
  if (it == index_.end()) return std::nullopt;
  return readValueAtLocked(it->second);
}

bool LogKv::erase(ByteView key) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(keyString(key));
  if (it == index_.end()) return false;
  try {
    ByteVec payload;
    payload.reserve(1 + 10 + key.size());
    payload.push_back(static_cast<uint8_t>(RecordType::kDelete));
    putVarint(payload, key.size());
    appendBytes(payload, key);
    wal_->append(payload);
    index_.erase(it);
    // Two dead records per erase — the erased put and the tombstone
    // itself — matching what replay counts, so deadRecords() is stable
    // across a reopen.
    deadRecords_ += 2;
    maybeCheckpointLocked();
  } catch (const kvcrash::CrashInjected&) {
    markCrashedLocked();
    throw;
  }
  return true;
}

bool LogKv::contains(ByteView key) const {
  std::lock_guard lock(mu_);
  return index_.find(keyString(key)) != index_.end();
}

size_t LogKv::size() const {
  std::lock_guard lock(mu_);
  return index_.size();
}

void LogKv::forEach(
    const std::function<void(ByteView key, ByteView value)>& fn) {
  std::lock_guard lock(mu_);
  for (const auto& [key, loc] : index_) {
    const ByteVec value = readValueAtLocked(loc);
    fn(ByteView(reinterpret_cast<const uint8_t*>(key.data()), key.size()),
       value);
  }
}

void LogKv::flush() { sync(wal_->appendedLsn()); }

Lsn LogKv::appendedLsn() const { return wal_->appendedLsn(); }

void LogKv::sync(Lsn lsn) {
  // Deliberately not under mu_: the durability wait is where concurrent
  // committers coalesce into one group fdatasync.
  try {
    wal_->sync(lsn);
  } catch (const kvcrash::CrashInjected&) {
    std::lock_guard lock(mu_);
    markCrashedLocked();
    throw;
  }
}

Lsn LogKv::durableLsn() const { return wal_->durableLsn(); }

uint64_t LogKv::logBytes() const { return wal_->tailBytes(); }

uint64_t LogKv::deadRecords() const {
  std::lock_guard lock(mu_);
  return deadRecords_;
}

void LogKv::checkpoint() {
  std::lock_guard lock(mu_);
  try {
    checkpointLocked();
  } catch (const kvcrash::CrashInjected&) {
    markCrashedLocked();
    throw;
  }
}

void LogKv::maybeCheckpointLocked() {
  if (wal_->tailBytes() >= options_.checkpointBytes) checkpointLocked();
}

void LogKv::checkpointLocked() {
  kvcrash::crashPoint("ckpt.begin");
  obs::ObsSpan span(ckptWriteUsMetric_, "kv.checkpoint", "kv");
  const Lsn watermark = wal_->appendedLsn();

  // Stream every live key+value into the tmp checkpoint, remembering each
  // value's future location so the in-memory index can be swapped over
  // atomically once the file is durable.
  FdCloser tmp;
  tmp.fd = ::open(ckptTmpPath().c_str(),
                  O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp.fd < 0)
    throw std::runtime_error("LogKv: cannot create " + ckptTmpPath() + ": " +
                             std::strerror(errno));
  ByteVec buf;
  buf.reserve(kCkptWriteBufBytes + (64 << 10));
  uint64_t flushedBytes = 0;
  const auto flushBuf = [&] {
    if (buf.empty()) return;
    pwriteFully(tmp.fd, buf.data(), buf.size(), flushedBytes, ckptTmpPath());
    flushedBytes += buf.size();
    buf.clear();
  };

  appendBytes(buf, ByteView(reinterpret_cast<const uint8_t*>(kCkptMagic),
                            sizeof(kCkptMagic)));
  putU64(buf, index_.size());
  putU64(buf, watermark);
  putU32(buf, crc32c(ByteView(buf.data(), 24)));

  std::unordered_map<std::string, ValueLocation> fresh;
  fresh.reserve(index_.size());
  uint64_t records = 0;
  for (const auto& [key, loc] : index_) {
    const ByteVec value = readValueAtLocked(loc);
    size_t valueOffsetInPayload = 0;
    const ByteVec payload = encodePutPayload(
        ByteView(reinterpret_cast<const uint8_t*>(key.data()), key.size()),
        value, valueOffsetInPayload);
    const uint64_t recordStart = flushedBytes + buf.size();
    putU32(buf, crc32c(payload));
    putU32(buf, static_cast<uint32_t>(payload.size()));
    appendBytes(buf, payload);
    fresh[key] = ValueLocation{
        recordStart + Wal::kFrameBytes + valueOffsetInPayload,
        static_cast<uint32_t>(value.size()), ValueFile::kCkpt};
    ++records;
    if (buf.size() >= kCkptWriteBufBytes) flushBuf();
  }
  flushBuf();
  kvcrash::crashPoint("ckpt.after_tmp_write");

  // Durable publish: fsync the tmp file BEFORE the rename (so the name
  // never points at unsynced bytes) and fsync the directory AFTER (so the
  // rename itself survives power loss).
  if (::fdatasync(tmp.fd) != 0)
    throw std::runtime_error("LogKv: fdatasync failed on " + ckptTmpPath() +
                             ": " + std::strerror(errno));
  kvcrash::crashPoint("ckpt.after_tmp_sync");
  std::filesystem::rename(ckptTmpPath(), ckptPath());
  kvcrash::crashPoint("ckpt.after_rename");
  fsyncDir(std::filesystem::path(path_).parent_path().string());
  kvcrash::crashPoint("ckpt.after_dir_sync");

  // The checkpoint is durable: swap the live read fd and index over, then
  // rotate the WAL so the replay tail restarts at the watermark. A crash
  // before the rotation replays old records below the watermark — which
  // the scan skips — so every point in this sequence recovers consistently.
  if (ckptFd_ >= 0) ::close(ckptFd_);
  ckptFd_ = tmp.release();
  index_ = std::move(fresh);
  watermark_ = watermark;
  wal_->rotate(watermark);
  kvcrash::crashPoint("ckpt.after_rotate");
  deadRecords_ = 0;
  if (ckptWritesMetric_ != nullptr) {
    ckptWritesMetric_->add();
    ckptRecordsMetric_->add(records);
  }
}

void LogKv::bindMetrics(obs::MetricsRegistry& registry) {
  wal_->bindMetrics(registry);
  registry.counter("wal.replay.records").add(tailRecordsReplayed_);
  registry.counter("wal.replay.bytes").add(tailBytesReplayed_);
  if (ckptLoaded_) {
    registry.counter("ckpt.loads").add();
    registry.counter("ckpt.load_records").add(ckptRecordsLoaded_);
  }
  ckptWritesMetric_ = &registry.counter("ckpt.writes");
  ckptRecordsMetric_ = &registry.counter("ckpt.records");
  ckptWriteUsMetric_ = &registry.histogram("ckpt.write_us");
}

}  // namespace freqdedup
