// Wal — slot-based group-commit write-ahead log (WiredTiger src/log is the
// architectural exemplar).
//
// Concurrent committers append CRC-framed records to an in-memory slot
// buffer (cheap, no I/O) and then block in sync(lsn) until their record is
// durable. The first waiter becomes the slot leader: it swaps the buffer
// out, writes the whole coalesced group with one pwrite and makes it durable
// with one fdatasync, then publishes the new durable LSN and wakes every
// waiter whose record the group covered. Later committers that arrived while
// the leader was writing form the next slot — so the fsync rate is bounded
// by disk latency, not by the commit rate, and N concurrent committers cost
// ~1 fdatasync per group instead of N.
//
// LSN space: a record's LSN is its byte offset in the logical log, which is
// stable across log rotations. The physical file holds the suffix starting
// at baseLsn() (offset 0 of the payload region maps to baseLsn()); rotate()
// atomically replaces the file with an empty one whose base is the caller's
// checkpoint watermark, which is how checkpoints bound replay to the tail.
//
// On-disk format: an optional 20-byte header [magic "FDWAL001"][baseLsn
// u64][crc32c u32] followed by records framed exactly like the pre-WAL
// LogKv log: [crc32c(payload) u32][payloadLen u32][payload]. A headerless
// file is read as a legacy log with base LSN 0, so stores written before
// the WAL stay readable; the first rotation migrates them.
//
// Thread safety: append/sync/readAt/appendedLsn/durableLsn are safe from
// any thread. scan/rotate/truncateTail are recovery/checkpoint operations
// and must not race appends (LogKv serializes them under its own mutex).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace freqdedup {

namespace obs {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace obs

/// Logical log sequence number: a byte offset in the unrotated log stream.
using Lsn = uint64_t;

struct WalOptions {
  enum class SyncMode {
    kGroup,  // slot-based group commit: one fdatasync per group
    kPerOp   // every append writes + fdatasyncs immediately (bench baseline)
  };
  SyncMode syncMode = SyncMode::kGroup;
};

/// fsyncs a directory so a rename inside it is durable. Throws on failure.
void fsyncDir(const std::string& dir);

class Wal {
 public:
  /// Bytes of framing before each record's payload.
  static constexpr size_t kFrameBytes = 8;  // crc32c + payloadLen

  /// Opens (creating if needed) the log at `path`. A created file gets a
  /// header with base LSN `createBaseLsn` and is made durable (file +
  /// parent directory synced). Throws std::runtime_error on I/O failure.
  explicit Wal(std::string path, WalOptions options = {},
               Lsn createBaseLsn = 0);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one framed record to the current slot buffer and returns the
  /// LSN of its first payload byte (start + kFrameBytes). The record is NOT
  /// durable until sync() covers its end LSN.
  Lsn append(ByteView payload);

  /// Blocks until every byte below `lsn` is durable (group commit: joins
  /// the current slot, possibly becoming its leader).
  void sync(Lsn lsn);

  /// Makes everything appended so far durable.
  void syncAll() { sync(appendedLsn()); }

  /// Asynchronous commit wait: registers `done(ok)` to run once every byte
  /// below `lsn` is durable (ok == true) or the log has failed / is closing
  /// (ok == false). Callbacks run on a lazily started syncer thread, outside
  /// every Wal lock — they may append to or sync this log, but must not
  /// destroy it. Requests coalesce exactly like blocking sync(): every
  /// callback registered while a group is in flight is covered by one later
  /// fdatasync, so N pipelined committers cost ~1 fsync per group and zero
  /// blocked threads. The destructor drains pending callbacks before
  /// closing the file.
  void syncAsync(Lsn lsn, std::function<void(bool ok)> done);

  [[nodiscard]] Lsn appendedLsn() const;
  [[nodiscard]] Lsn durableLsn() const;
  [[nodiscard]] Lsn baseLsn() const { return baseLsn_; }
  /// Bytes in the replayable tail (appendedLsn - baseLsn).
  [[nodiscard]] uint64_t tailBytes() const { return appendedLsn() - baseLsn_; }

  /// Reads `size` bytes of log payload starting at `lsn`, serving written
  /// bytes with pread and still-buffered bytes from the slot buffers.
  /// Throws std::runtime_error if the range is below baseLsn() or past the
  /// appended end.
  ByteVec readAt(Lsn lsn, size_t size);

  /// One record seen by scan().
  struct Record {
    Lsn start = 0;         // LSN of the frame header
    Lsn payloadLsn = 0;    // LSN of the first payload byte
    Lsn end = 0;           // LSN one past the record
    ByteView payload;      // valid only during the callback
  };

  /// Replays records with start >= `from` (clamped to baseLsn()), stopping
  /// at the first torn or corrupt frame — or when the callback returns
  /// false (a CRC-valid but semantically malformed record, which recovery
  /// treats the same as corruption) — and truncating the file at the stop
  /// point so appends resume at a clean boundary. Returns the end LSN.
  /// Recovery-time only: must not race append/sync.
  Lsn scan(Lsn from, const std::function<bool(const Record&)>& fn);

  /// Atomically replaces the log with an empty one whose base LSN is
  /// `watermark` (== appendedLsn(); everything below it must already be
  /// durable elsewhere — i.e. in a renamed+synced checkpoint). Any bytes
  /// still buffered are discarded as duplicates of checkpointed state.
  /// Crash-safe: the new log is written to <path>.new, synced, renamed over
  /// the old one, and the directory synced.
  void rotate(Lsn watermark);

  /// Resolves the wal.* metrics in `registry` and starts recording into
  /// them (appends, sync latency, group size). Call once, before concurrent
  /// use.
  void bindMetrics(obs::MetricsRegistry& registry);

  /// Test crash injection: stop all further I/O, including the destructor's
  /// final sync, so buffered/unsynced state is dropped exactly as a kill
  /// would drop it. Wakes any blocked sync() with an error.
  void markCrashed();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void openFile(Lsn createBaseLsn);
  void readHeader();
  void asyncSyncerLoop();
  void stopAsyncSyncer();
  void writeLeaderGroup(std::unique_lock<std::mutex>& syncLock);
  void appendPerOp(ByteView framed);
  [[nodiscard]] uint64_t fileOffsetOf(Lsn lsn) const {
    return headerBytes_ + (lsn - baseLsn_);
  }
  void throwErrno(const std::string& what) const;

  std::string path_;
  WalOptions options_;
  int fd_ = -1;
  uint64_t headerBytes_ = 0;  // 0 for legacy (headerless) files

  // Buffer state, guarded by bufMu_. The logical log is the concatenation
  //   file [baseLsn_, writtenLsn_) | writingBuf_ | buf_
  // where writingBuf_ is non-empty only while a slot leader is writing it.
  mutable std::mutex bufMu_;
  Lsn baseLsn_ = 0;
  Lsn writtenLsn_ = 0;  // everything below is in the file (not yet durable)
  Lsn nextLsn_ = 0;     // end of the appended log
  ByteVec buf_;         // open slot: [writtenLsn_ + writingBuf_.size(), nextLsn_)
  ByteVec writingBuf_;  // group being written: [writtenLsn_, +size)

  // Group-commit coordination, guarded by syncMu_.
  mutable std::mutex syncMu_;
  std::condition_variable syncCv_;
  Lsn durableLsn_ = 0;
  bool leaderActive_ = false;
  bool crashed_ = false;

  // Async commit state, guarded by asyncMu_ (never held across I/O or while
  // running callbacks). The syncer thread starts on the first syncAsync().
  std::mutex asyncMu_;
  std::condition_variable asyncCv_;
  std::vector<std::pair<Lsn, std::function<void(bool)>>> asyncPending_;
  std::thread asyncSyncer_;
  bool asyncStop_ = false;

  // Metrics (null until bindMetrics; hot paths guard on nullptr).
  obs::Counter* appendsMetric_ = nullptr;
  obs::Counter* appendBytesMetric_ = nullptr;
  obs::Counter* syncsMetric_ = nullptr;
  obs::Histogram* syncUsMetric_ = nullptr;
  obs::Histogram* groupRecordsMetric_ = nullptr;
  obs::Histogram* groupBytesMetric_ = nullptr;
  uint64_t pendingGroupRecords_ = 0;  // records in buf_ (guarded by bufMu_)
  uint64_t writingGroupRecords_ = 0;  // records in writingBuf_
};

}  // namespace freqdedup
