// Crash-point fault injection for the durability path (WAL + checkpoints).
//
// Test-only instrumentation: durability-critical code calls
// crashPoint("name") at each point where a power loss has a distinct
// on-disk outcome (record buffered but unwritten, written but unsynced,
// checkpoint tmp written / synced / renamed / directory-synced, log
// rotated). A registered hook decides whether to "crash" there by throwing
// CrashInjected; the thrower marks itself crashed so destructors perform no
// further I/O, leaving the files in exactly the state a kill at that
// instruction would. Tests then simulate page-cache loss by truncating to
// the last durable watermark, reopen, and assert recovery invariants.
//
// The hook is a plain function pointer behind a relaxed atomic: zero
// overhead when unset (one predictable-branch load per point) and no
// allocation, so the instrumentation stays compiled into release builds.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace freqdedup::kvcrash {

struct CrashInjected : std::runtime_error {
  explicit CrashInjected(const char* point)
      : std::runtime_error(std::string("crash injected at ") + point) {}
};

/// Returns true to crash at this point.
using Hook = bool (*)(const char* point);

inline std::atomic<Hook>& hookSlot() {
  static std::atomic<Hook> hook{nullptr};
  return hook;
}

/// Installs (or, with nullptr, clears) the process-wide crash hook.
inline void setHook(Hook hook) {
  hookSlot().store(hook, std::memory_order_release);
}

/// Throws CrashInjected when a hook is installed and elects this point.
inline void crashPoint(const char* point) {
  const Hook hook = hookSlot().load(std::memory_order_acquire);
  if (hook != nullptr && hook(point)) throw CrashInjected(point);
}

}  // namespace freqdedup::kvcrash
