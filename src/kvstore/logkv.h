// LogKv — persistent log-structured key-value store (Bitcask style) over a
// group-commit write-ahead log with index checkpointing.
//
// All mutations append CRC-framed records to the WAL (see wal.h); an
// in-memory hash index maps each live key to the location of its latest
// value — either in the WAL tail or in the newest checkpoint file.
//
// Durability: appends are buffered; flush() (and sync(lsn)) block until the
// records are on stable storage — one group fdatasync covers every
// concurrent committer in the slot, so durable commits do not serialize on
// per-op fsyncs. flush() returning means the data survives power loss.
//
// Checkpoints: checkpoint() snapshots every live key+value into
// <path>.ckpt (written to a tmp file, fdatasynced, atomically renamed,
// directory-synced, with the WAL watermark LSN in its header), then rotates
// the WAL to an empty log based at the watermark. Open-time recovery loads
// the newest valid checkpoint and replays only the WAL tail past its
// watermark, truncating any torn record. Checkpoints run automatically once
// the WAL tail exceeds LogKvOptions::checkpointBytes; compact() is the
// explicit form (a checkpoint holds only live records, so it also reclaims
// dead space — GC drives it).
//
// Record framing (WAL and checkpoint records alike):
//   [crc32c: u32][payloadLen: u32][payload], payload =
//   [type: u8][varint keyLen][key][varint valLen][val]
//   (valLen/val omitted for tombstones).
//
// Thread safety: all operations are safe from any thread. Mutations and
// reads serialize on an internal mutex; the durability wait in sync()/
// flush() runs outside it, which is what lets concurrent committers group.
// forEach's callback runs under the mutex and must not reenter the store.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "kvstore/kvstore.h"
#include "kvstore/wal.h"

namespace freqdedup {

namespace obs {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace obs

struct LogKvOptions {
  /// Auto-checkpoint once the WAL tail exceeds this many bytes, bounding
  /// both replay time and dead-record accumulation.
  uint64_t checkpointBytes = 8ull << 20;
  WalOptions wal;
};

class LogKv final : public KvStore {
 public:
  /// Opens (creating if needed) the store at `path` (WAL at `path`,
  /// checkpoint at `path`.ckpt), loads the newest valid checkpoint and
  /// replays the WAL tail. Throws std::runtime_error on unrecoverable I/O
  /// failure.
  explicit LogKv(std::string path, LogKvOptions options = {});
  ~LogKv() override;

  LogKv(const LogKv&) = delete;
  LogKv& operator=(const LogKv&) = delete;

  void put(ByteView key, ByteView value) override;

  /// Pipelined commit: appends the put and returns the LSN a durability wait
  /// must cover, without forcing it to stable storage. Pair with syncAsync
  /// (or sync) — until then the record has WAL-buffer durability only, i.e.
  /// a crash may drop it exactly like a put() before flush().
  Lsn putAsync(ByteView key, ByteView value);

  /// Registers `done(ok)` to run once every record below `lsn` is durable
  /// (see Wal::syncAsync): callbacks run on the WAL's syncer thread, outside
  /// the store mutex, and concurrent requests coalesce into one group
  /// fdatasync — the no-blocked-thread form of sync(lsn).
  void syncAsync(Lsn lsn, std::function<void(bool ok)> done);
  std::optional<ByteVec> get(ByteView key) override;
  bool erase(ByteView key) override;
  [[nodiscard]] bool contains(ByteView key) const override;
  [[nodiscard]] size_t size() const override;
  void forEach(const std::function<void(ByteView key, ByteView value)>& fn)
      override;

  /// Blocks until every record appended so far is durable (group commit:
  /// one fdatasync per slot of concurrent flushers). When flush() returns,
  /// the data survives power loss.
  void flush();

  /// LSN of the end of the appended log; sync(appendedLsn()) == flush().
  [[nodiscard]] Lsn appendedLsn() const;

  /// Blocks until every record below `lsn` is durable. Runs outside the
  /// store mutex: concurrent committers coalesce into one group fdatasync.
  void sync(Lsn lsn);

  /// End LSN of the durable prefix.
  [[nodiscard]] Lsn durableLsn() const;

  /// Writes a checkpoint and rotates the WAL; on return both are durable.
  void checkpoint();

  /// Reclaims dead space; with checkpointing this IS a checkpoint.
  void compact() { checkpoint(); }

  /// Bytes in the replayable WAL tail (what recovery would replay).
  [[nodiscard]] uint64_t logBytes() const;
  /// Dead records accumulated since the last checkpoint: one per
  /// overwritten put, two per erase (the erased put + the tombstone
  /// itself) — counted identically by live mutations and by replay, so the
  /// value is stable across reopen.
  [[nodiscard]] uint64_t deadRecords() const;
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Recovery observability: WAL-tail records replayed by this open, and
  /// records loaded from the checkpoint (0 when none was found).
  [[nodiscard]] uint64_t tailRecordsReplayed() const {
    return tailRecordsReplayed_;
  }
  [[nodiscard]] uint64_t checkpointRecordsLoaded() const {
    return ckptRecordsLoaded_;
  }
  /// The loaded checkpoint's watermark LSN (0 when none was found).
  [[nodiscard]] Lsn checkpointWatermark() const { return watermark_; }

  /// Resolves wal.* / ckpt.* metrics in `registry`, backfills the replay
  /// counters from this open (wal.replay.records, ckpt.loads, ...) and
  /// records checkpoint/WAL activity there from now on. Call once.
  void bindMetrics(obs::MetricsRegistry& registry);

 private:
  enum class RecordType : uint8_t { kPut = 1, kDelete = 2 };
  /// Where a value's bytes live.
  enum class ValueFile : uint8_t { kWal, kCkpt };

  struct ValueLocation {
    uint64_t offset = 0;  // kWal: LSN of the value bytes; kCkpt: file offset
    uint32_t size = 0;
    ValueFile file = ValueFile::kWal;
  };

  struct ParsedRecord {
    RecordType type = RecordType::kPut;
    std::string key;
    size_t valueOffsetInPayload = 0;
    uint32_t valueSize = 0;
  };

  void open();
  void loadCheckpoint();
  void replayTail();
  ByteVec readValueAtLocked(const ValueLocation& loc);
  void checkpointLocked();
  void maybeCheckpointLocked();
  /// Marks this store (and its WAL) crashed after injected fault, so
  /// destructors perform no further I/O.
  void markCrashedLocked();
  static bool parseRecordPayload(ByteView payload, ParsedRecord& out);
  static ByteVec encodePutPayload(ByteView key, ByteView value,
                                  size_t& valueOffsetInPayload);

  [[nodiscard]] std::string ckptPath() const { return path_ + ".ckpt"; }
  [[nodiscard]] std::string ckptTmpPath() const {
    return path_ + ".ckpt.tmp";
  }

  std::string path_;
  LogKvOptions options_;
  mutable std::mutex mu_;
  std::unique_ptr<Wal> wal_;
  int ckptFd_ = -1;  // open checkpoint file, -1 when none
  uint64_t deadRecords_ = 0;
  bool crashed_ = false;
  std::unordered_map<std::string, ValueLocation> index_;

  // Stats from this instance's open-time recovery.
  Lsn watermark_ = 0;
  bool ckptLoaded_ = false;
  uint64_t ckptRecordsLoaded_ = 0;
  uint64_t tailRecordsReplayed_ = 0;
  uint64_t tailBytesReplayed_ = 0;

  // Metrics (null until bindMetrics).
  obs::Counter* ckptWritesMetric_ = nullptr;
  obs::Counter* ckptRecordsMetric_ = nullptr;
  obs::Histogram* ckptWriteUsMetric_ = nullptr;
};

}  // namespace freqdedup
