// LogKv — persistent log-structured key-value store (Bitcask style).
//
// All mutations append CRC-framed records to a single log file; an in-memory
// hash index maps each live key to the file offset of its latest value.
// Reads seek into the log. Recovery replays the log, verifying checksums and
// truncating a torn tail (partial final record after a crash). compact()
// rewrites only live records into a fresh log and atomically renames it over
// the old one.
//
// Record framing: [crc32c: u32][payloadLen: u32][payload], where payload =
// [type: u8][varint keyLen][key][varint valLen][val] (valLen/val omitted for
// tombstones).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>

#include "kvstore/kvstore.h"

namespace freqdedup {

class LogKv final : public KvStore {
 public:
  /// Opens (creating if needed) the log at `path` and replays it.
  /// Throws std::runtime_error on unrecoverable I/O failure.
  explicit LogKv(std::string path);
  ~LogKv() override;

  LogKv(const LogKv&) = delete;
  LogKv& operator=(const LogKv&) = delete;

  void put(ByteView key, ByteView value) override;
  std::optional<ByteVec> get(ByteView key) override;
  bool erase(ByteView key) override;
  [[nodiscard]] bool contains(ByteView key) const override;
  [[nodiscard]] size_t size() const override { return index_.size(); }
  void forEach(const std::function<void(ByteView key, ByteView value)>& fn)
      override;

  /// Flushes buffered writes to the OS.
  void flush();

  /// Rewrites the log keeping only live records; reclaims dead space.
  void compact();

  [[nodiscard]] uint64_t logBytes() const { return writeOffset_; }
  [[nodiscard]] uint64_t deadRecords() const { return deadRecords_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct ValueLocation {
    uint64_t offset = 0;  // file offset of the value bytes
    uint32_t size = 0;
  };

  enum class RecordType : uint8_t { kPut = 1, kDelete = 2 };

  void openLog();
  void replay();
  uint64_t appendRecord(RecordType type, ByteView key, ByteView value);
  ByteVec readValueAt(const ValueLocation& loc);

  std::string path_;
  std::unique_ptr<FILE, int (*)(FILE*)> file_;
  uint64_t writeOffset_ = 0;
  uint64_t deadRecords_ = 0;
  std::unordered_map<std::string, ValueLocation> index_;
};

}  // namespace freqdedup
