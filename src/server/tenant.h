// Multi-tenant namespacing over one shared dedup store.
//
// The paper's multi-tenant threat model (Section 2) has many clients writing
// into ONE deduplicated store — that sharing is exactly what makes frequency
// analysis a cross-user attack, and exactly what an operator deploys for
// space savings. freqdedupd therefore keeps a single chunk store (chunks
// dedup across all tenants) but namespaces everything nameable:
//
//  - backup names: tenant "acme" backup "vm.img" lives under the scoped
//    name "t/acme/vm.img", which flows into manifest keys and recipe blob
//    names, so list/restore/delete can only ever see the caller's tenant;
//  - quotas: per-tenant logical-byte and backup-count budgets, enforced at
//    backup finish (usage is persisted per backup in a store blob so a
//    daemon restart recovers accounting exactly);
//  - observability: per-tenant tenant.<id>.* counters in the global
//    MetricsRegistry — including dedup_hits and cross_tenant_dedup_hits,
//    the store-side measure of how much of a tenant's data deduplicated
//    against OTHER tenants' chunks, i.e. the leakage surface the paper's
//    attacker exploits.
//
// Cross-tenant classification uses a per-tenant Bloom filter of chunk
// fingerprints the tenant has stored before: a duplicate chunk whose
// fingerprint is not in the writer's own filter was first stored by someone
// else. Bloom false positives misclassify a few cross-tenant hits as
// intra-tenant, so cross_tenant_dedup_hits is a slight undercount —
// acceptable for a leakage-surface gauge, and the filters cost O(bytes) not
// O(store).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bloom_filter.h"
#include "common/fingerprint.h"
#include "storage/backup_store.h"

namespace freqdedup::server {

/// Per-tenant budget; 0 means unlimited.
struct TenantQuota {
  uint64_t maxLogicalBytes = 0;
  uint64_t maxBackups = 0;
};

/// Rejects empty ids, ids over kMaxTenantBytes, and ids containing '/' or
/// NUL (both would break the scoped-name encoding).
bool validTenantId(const std::string& tenant);

/// "t/<tenant>/<name>" — the store-side name of a tenant's backup. Assumes
/// a valid tenant id; names may contain anything.
std::string scopedBackupName(const std::string& tenant,
                             const std::string& name);

/// Inverse of scopedBackupName for one tenant's prefix: returns the bare
/// name, or nullopt when `scoped` belongs to a different tenant.
std::optional<std::string> unscopeBackupName(const std::string& tenant,
                                             const std::string& scoped);

// ---- Tenant authentication ----
//
// A tenant id is only trusted once its Hello passphrase matches a verifier
// persisted in the store ("tenanta:<tenant>" blob, created on the tenant's
// FIRST Hello — first-connect-wins registration). The verifier is
// [salt 16][digest 32] with digest = HMAC-SHA-256(salt, passphrase)
// iterated kAuthKdfIterations times; comparison is constant-time. The KDF
// is iterated-HMAC, not memory-hard — operators should hand tenants
// high-entropy passphrases, not human-memorable ones.

/// Store blob that persists one tenant's passphrase verifier.
std::string authBlobName(const std::string& tenant);

/// Builds a fresh verifier record (OS-entropy salt) for a passphrase.
ByteVec makeAuthVerifier(const std::string& passphrase);

/// Constant-time check of a passphrase against a stored verifier record.
/// A malformed record never verifies.
bool checkAuthVerifier(ByteView record, const std::string& passphrase);

/// How one committed backup deduplicated, as classified against the
/// writer's own prior chunks.
struct DedupClassification {
  uint64_t newChunks = 0;
  uint64_t intraTenantDuplicates = 0;
  uint64_t crossTenantDuplicates = 0;
};

/// Tracks per-tenant usage, quotas, Bloom filters and metrics. Thread-safe;
/// one instance per server, shared by all connections.
class TenantRegistry {
 public:
  explicit TenantRegistry(TenantQuota quota) : quota_(quota) {}

  /// Rebuilds usage accounting and Bloom filters from a (re)opened store:
  /// scans scoped manifests for backup counts and per-backup usage blobs for
  /// logical bytes, and seeds each tenant's filter with every fingerprint
  /// its manifests reference. Call once at server startup, before serving.
  void loadFrom(BackupStore& store);

  /// Quota check for an incoming backup of `logicalBytes` replacing
  /// `replacedBytes` (0 when the name is new; replacing counts the delta).
  /// Returns an error description, or nullopt when the backup fits.
  [[nodiscard]] std::optional<std::string> checkQuota(
      const std::string& tenant, uint64_t logicalBytes, uint64_t replacedBytes,
      bool replacesExisting);

  /// Classifies a finished backup's chunks against the tenant's own filter
  /// (then adds them to it), updates usage and tenant.* counters.
  /// `duplicateFps` must hold exactly the chunks the store deduplicated.
  DedupClassification recordCommit(const std::string& tenant,
                                   std::span<const Fp> newFps,
                                   std::span<const Fp> duplicateFps,
                                   uint64_t logicalBytes,
                                   uint64_t replacedBytes,
                                   bool replacesExisting);

  /// Updates usage and counters for a deleted backup.
  void recordDelete(const std::string& tenant, uint64_t logicalBytes);

  void recordRestore(const std::string& tenant);
  void recordQuotaReject(const std::string& tenant);

  [[nodiscard]] uint64_t logicalBytes(const std::string& tenant);
  [[nodiscard]] uint64_t backupCount(const std::string& tenant);

  [[nodiscard]] const TenantQuota& quota() const { return quota_; }

  /// Store blob that persists one backup's logical size for quota recovery:
  /// "tenantu:<scoped backup name>" → varint logicalBytes. Maintained by the
  /// server next to each commit/delete.
  static std::string usageBlobName(const std::string& scopedName);

 private:
  struct Tenant {
    uint64_t logicalBytes = 0;
    uint64_t backups = 0;
    /// Fingerprints this tenant has stored before (approximate set).
    BloomFilter seen{1u << 18, 0.01};
  };

  Tenant& tenantLocked(const std::string& tenant);
  void bumpCounter(const std::string& tenant, const char* name, uint64_t n);
  void setUsageGauges(const std::string& tenant, const Tenant& t);

  TenantQuota quota_;
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace freqdedup::server
