#include "server/wire.h"

#include "common/crc32.h"
#include "common/varint.h"

namespace freqdedup::server {

// ---- WireReader ----

uint8_t WireReader::u8() {
  if (remaining() < 1) throw WireError("truncated u8");
  return in_[pos_++];
}

uint32_t WireReader::u32() {
  if (remaining() < 4) throw WireError("truncated u32");
  const uint32_t v = getU32(in_, pos_);
  pos_ += 4;
  return v;
}

uint64_t WireReader::u64() {
  if (remaining() < 8) throw WireError("truncated u64");
  const uint64_t v = getU64(in_, pos_);
  pos_ += 8;
  return v;
}

uint64_t WireReader::varint() {
  const auto v = getVarint(in_, pos_);
  if (!v) throw WireError("truncated or overlong varint");
  return *v;
}

std::string WireReader::str(size_t maxBytes) {
  const uint64_t len = varint();
  // Cap first, then remaining-bytes: both checks run before the allocation.
  if (len > maxBytes) throw WireError("string exceeds field cap");
  if (len > remaining()) throw WireError("string length exceeds payload");
  std::string s(reinterpret_cast<const char*>(in_.data() + pos_),
                static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return s;
}

ByteVec WireReader::bytes(size_t maxBytes) {
  const uint64_t len = varint();
  if (len > maxBytes) throw WireError("byte field exceeds cap");
  if (len > remaining()) throw WireError("byte field length exceeds payload");
  ByteVec b(in_.begin() + static_cast<ptrdiff_t>(pos_),
            in_.begin() + static_cast<ptrdiff_t>(pos_ + len));
  pos_ += static_cast<size_t>(len);
  return b;
}

void WireReader::expectEnd() const {
  if (remaining() != 0) throw WireError("trailing bytes after message");
}

// ---- Frame codec ----

ByteVec encodeFrame(ByteView payload) {
  if (payload.size() > kMaxFrameBytes) throw WireError("payload too large");
  ByteVec frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  putU32(frame, crc32c(payload));
  putU32(frame, static_cast<uint32_t>(payload.size()));
  appendBytes(frame, payload);
  return frame;
}

ByteVec decodeFrame(ByteView frame) {
  if (frame.size() < kFrameHeaderBytes) throw WireError("truncated frame header");
  const uint32_t crc = getU32(frame, 0);
  const uint32_t len = getU32(frame, 4);
  if (len > kMaxFrameBytes) throw WireError("frame length exceeds cap");
  if (frame.size() - kFrameHeaderBytes < len)
    throw WireError("truncated frame payload");
  if (frame.size() - kFrameHeaderBytes > len)
    throw WireError("trailing bytes after frame");
  ByteView payload = frame.subspan(kFrameHeaderBytes, len);
  if (crc32c(payload) != crc) throw WireError("frame CRC mismatch");
  return ByteVec(payload.begin(), payload.end());
}

// ---- Message codecs ----

MsgType peekType(ByteView payload) {
  if (payload.empty()) throw WireError("empty payload");
  const uint8_t t = payload[0];
  const bool request = t >= static_cast<uint8_t>(MsgType::kHello) &&
                       t <= static_cast<uint8_t>(MsgType::kShutdown);
  const bool response = t >= static_cast<uint8_t>(MsgType::kHelloOk) &&
                        t <= static_cast<uint8_t>(MsgType::kError);
  if (!request && !response) throw WireError("unknown message type");
  return static_cast<MsgType>(t);
}

namespace {

ByteVec begin(MsgType t) {
  ByteVec out;
  out.push_back(static_cast<uint8_t>(t));
  return out;
}

WireReader open(ByteView payload, MsgType expect, const char* what) {
  WireReader r(payload);
  if (r.u8() != static_cast<uint8_t>(expect))
    throw WireError(std::string("wrong type byte for ") + what);
  return r;
}

void putStr(ByteVec& out, const std::string& s) {
  putVarint(out, s.size());
  appendBytes(out, toBytes(s));
}

void putBytesField(ByteVec& out, ByteView b) {
  putVarint(out, b.size());
  appendBytes(out, b);
}

/// Decoder for the five messages that are just {type, u64 id}.
uint64_t decodeIdOnly(ByteView payload, MsgType expect, const char* what) {
  WireReader r = open(payload, expect, what);
  const uint64_t id = r.u64();
  r.expectEnd();
  return id;
}

/// Decoder for the three empty messages {type}.
void decodeEmpty(ByteView payload, MsgType expect, const char* what) {
  WireReader r = open(payload, expect, what);
  r.expectEnd();
}

}  // namespace

ByteVec encode(const Hello& m) {
  ByteVec out = begin(MsgType::kHello);
  putU32(out, m.magic);
  putU32(out, m.version);
  putStr(out, m.tenant);
  putStr(out, m.passphrase);
  return out;
}

Hello decodeHello(ByteView payload) {
  WireReader r = open(payload, MsgType::kHello, "Hello");
  Hello m;
  m.magic = r.u32();
  m.version = r.u32();
  m.tenant = r.str(kMaxTenantBytes);
  m.passphrase = r.str(kMaxPassphraseBytes);
  r.expectEnd();
  return m;
}

ByteVec encode(const HelloOk& m) {
  ByteVec out = begin(MsgType::kHelloOk);
  putU32(out, m.version);
  putU64(out, m.maxFrameBytes);
  return out;
}

HelloOk decodeHelloOk(ByteView payload) {
  WireReader r = open(payload, MsgType::kHelloOk, "HelloOk");
  HelloOk m;
  m.version = r.u32();
  m.maxFrameBytes = r.u64();
  r.expectEnd();
  return m;
}

ByteVec encode(const BackupOpen& m) {
  ByteVec out = begin(MsgType::kBackupOpen);
  putStr(out, m.name);
  return out;
}

BackupOpen decodeBackupOpen(ByteView payload) {
  WireReader r = open(payload, MsgType::kBackupOpen, "BackupOpen");
  BackupOpen m;
  m.name = r.str(kMaxNameBytes);
  r.expectEnd();
  return m;
}

ByteVec encode(const BackupOpened& m) {
  ByteVec out = begin(MsgType::kBackupOpened);
  putU64(out, m.backupId);
  return out;
}

BackupOpened decodeBackupOpened(ByteView payload) {
  return {decodeIdOnly(payload, MsgType::kBackupOpened, "BackupOpened")};
}

ByteVec encode(const BackupAppend& m) {
  ByteVec out = begin(MsgType::kBackupAppend);
  putU64(out, m.backupId);
  putBytesField(out, m.data);
  return out;
}

BackupAppend decodeBackupAppend(ByteView payload) {
  WireReader r = open(payload, MsgType::kBackupAppend, "BackupAppend");
  BackupAppend m;
  m.backupId = r.u64();
  m.data = r.bytes(kMaxDataBytes);
  r.expectEnd();
  return m;
}

ByteVec encode(const BackupFinish& m) {
  ByteVec out = begin(MsgType::kBackupFinish);
  putU64(out, m.backupId);
  return out;
}

BackupFinish decodeBackupFinish(ByteView payload) {
  return {decodeIdOnly(payload, MsgType::kBackupFinish, "BackupFinish")};
}

ByteVec encode(const BackupAbort& m) {
  ByteVec out = begin(MsgType::kBackupAbort);
  putU64(out, m.backupId);
  return out;
}

BackupAbort decodeBackupAbort(ByteView payload) {
  return {decodeIdOnly(payload, MsgType::kBackupAbort, "BackupAbort")};
}

ByteVec encode(const BackupDone& m) {
  ByteVec out = begin(MsgType::kBackupDone);
  putVarint(out, m.chunkCount);
  putVarint(out, m.newChunks);
  putVarint(out, m.duplicateChunks);
  putVarint(out, m.crossTenantDuplicates);
  return out;
}

BackupDone decodeBackupDone(ByteView payload) {
  WireReader r = open(payload, MsgType::kBackupDone, "BackupDone");
  BackupDone m;
  m.chunkCount = r.varint();
  m.newChunks = r.varint();
  m.duplicateChunks = r.varint();
  m.crossTenantDuplicates = r.varint();
  r.expectEnd();
  return m;
}

ByteVec encode(const RestoreOpen& m) {
  ByteVec out = begin(MsgType::kRestoreOpen);
  putStr(out, m.name);
  return out;
}

RestoreOpen decodeRestoreOpen(ByteView payload) {
  WireReader r = open(payload, MsgType::kRestoreOpen, "RestoreOpen");
  RestoreOpen m;
  m.name = r.str(kMaxNameBytes);
  r.expectEnd();
  return m;
}

ByteVec encode(const RestoreOpened& m) {
  ByteVec out = begin(MsgType::kRestoreOpened);
  putU64(out, m.restoreId);
  putU64(out, m.size);
  return out;
}

RestoreOpened decodeRestoreOpened(ByteView payload) {
  WireReader r = open(payload, MsgType::kRestoreOpened, "RestoreOpened");
  RestoreOpened m;
  m.restoreId = r.u64();
  m.size = r.u64();
  r.expectEnd();
  return m;
}

ByteVec encode(const RestoreRange& m) {
  ByteVec out = begin(MsgType::kRestoreRange);
  putU64(out, m.restoreId);
  putU64(out, m.offset);
  putU64(out, m.length);
  return out;
}

RestoreRange decodeRestoreRange(ByteView payload) {
  WireReader r = open(payload, MsgType::kRestoreRange, "RestoreRange");
  RestoreRange m;
  m.restoreId = r.u64();
  m.offset = r.u64();
  m.length = r.u64();
  r.expectEnd();
  return m;
}

ByteVec encode(const RestoreData& m) {
  ByteVec out = begin(MsgType::kRestoreData);
  putBytesField(out, m.data);
  return out;
}

RestoreData decodeRestoreData(ByteView payload) {
  WireReader r = open(payload, MsgType::kRestoreData, "RestoreData");
  RestoreData m;
  m.data = r.bytes(kMaxDataBytes);
  r.expectEnd();
  return m;
}

ByteVec encode(const RestoreClose& m) {
  ByteVec out = begin(MsgType::kRestoreClose);
  putU64(out, m.restoreId);
  return out;
}

RestoreClose decodeRestoreClose(ByteView payload) {
  return {decodeIdOnly(payload, MsgType::kRestoreClose, "RestoreClose")};
}

ByteVec encode(const DeleteBackup& m) {
  ByteVec out = begin(MsgType::kDelete);
  putStr(out, m.name);
  return out;
}

DeleteBackup decodeDeleteBackup(ByteView payload) {
  WireReader r = open(payload, MsgType::kDelete, "DeleteBackup");
  DeleteBackup m;
  m.name = r.str(kMaxNameBytes);
  r.expectEnd();
  return m;
}

ByteVec encode(const ListBackups& m) {
  ByteVec out = begin(MsgType::kList);
  putStr(out, m.startAfter);
  return out;
}

ListBackups decodeListBackups(ByteView payload) {
  WireReader r = open(payload, MsgType::kList, "ListBackups");
  ListBackups m;
  m.startAfter = r.str(kMaxNameBytes);
  r.expectEnd();
  return m;
}

ByteVec encode(const ListResult& m) {
  ByteVec out = begin(MsgType::kListResult);
  out.push_back(m.truncated ? 1 : 0);
  putVarint(out, m.names.size());
  for (const std::string& n : m.names) putStr(out, n);
  return out;
}

ListResult decodeListResult(ByteView payload) {
  WireReader r = open(payload, MsgType::kListResult, "ListResult");
  const uint8_t truncated = r.u8();
  if (truncated > 1) throw WireError("bad truncated flag");
  const uint64_t count = r.varint();
  if (count > kMaxListNames) throw WireError("list count exceeds cap");
  // Each name costs at least one length byte, so `count` can never exceed
  // the remaining payload — checked before reserving anything.
  if (count > r.remaining()) throw WireError("list count exceeds payload");
  ListResult m;
  m.truncated = truncated != 0;
  m.names.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) m.names.push_back(r.str(kMaxNameBytes));
  r.expectEnd();
  return m;
}

ByteVec encode(const StatsRequest&) { return begin(MsgType::kStats); }

StatsRequest decodeStatsRequest(ByteView payload) {
  decodeEmpty(payload, MsgType::kStats, "StatsRequest");
  return {};
}

ByteVec encode(const StatsResult& m) {
  ByteVec out = begin(MsgType::kStatsResult);
  putStr(out, m.json);
  return out;
}

StatsResult decodeStatsResult(ByteView payload) {
  WireReader r = open(payload, MsgType::kStatsResult, "StatsResult");
  StatsResult m;
  m.json = r.str(kMaxDataBytes);
  r.expectEnd();
  return m;
}

ByteVec encode(const Shutdown&) { return begin(MsgType::kShutdown); }

Shutdown decodeShutdown(ByteView payload) {
  decodeEmpty(payload, MsgType::kShutdown, "Shutdown");
  return {};
}

ByteVec encode(const Ok&) { return begin(MsgType::kOk); }

Ok decodeOk(ByteView payload) {
  decodeEmpty(payload, MsgType::kOk, "Ok");
  return {};
}

ByteVec encode(const ErrorReply& m) {
  ByteVec out = begin(MsgType::kError);
  putU32(out, static_cast<uint32_t>(m.code));
  putStr(out, m.message);
  return out;
}

ErrorReply decodeErrorReply(ByteView payload) {
  WireReader r = open(payload, MsgType::kError, "ErrorReply");
  ErrorReply m;
  const uint32_t code = r.u32();
  if (code < static_cast<uint32_t>(ErrorCode::kBadRequest) ||
      code > static_cast<uint32_t>(ErrorCode::kAuthFailed))
    throw WireError("unknown error code");
  m.code = static_cast<ErrorCode>(code);
  m.message = r.str(kMaxErrorBytes);
  r.expectEnd();
  return m;
}

}  // namespace freqdedup::server
