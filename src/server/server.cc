#include "server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "chunking/cdc_chunker.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/varint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/thread_pool.h"

namespace freqdedup::server {

namespace {

/// Same key-manager secret as the backup_system tool, so a store written by
/// either is readable by the other (the tenant-isolation tests rely on
/// byte-identical restores across the in-process and remote paths).
constexpr char kServerSecret[] = "backup-system-global-secret";

/// Mid-frame stall bound on accepted sockets: a peer that sends half a
/// frame (or stops reading its response) fails the worker within this
/// budget instead of pinning a pool thread forever.
constexpr time_t kConnTimeoutSec = 60;

/// Per-connection caps on concurrently open streams, so one client cannot
/// pin unbounded session state (recipes, key material) server-side.
constexpr size_t kMaxOpenBackupsPerConn = 64;
constexpr size_t kMaxOpenRestoresPerConn = 64;

struct ServerMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& connectionsOpened = reg.counter("server.connections_opened");
  obs::Counter& connectionsClosed = reg.counter("server.connections_closed");
  obs::Counter& requests = reg.counter("server.requests");
  obs::Counter& requestErrors = reg.counter("server.request_errors");
  obs::Counter& authFailures = reg.counter("server.auth_failures");
  obs::Counter& framesRx = reg.counter("server.frames_rx");
  obs::Counter& framesTx = reg.counter("server.frames_tx");
  obs::Counter& bytesRx = reg.counter("server.bytes_rx");
  obs::Counter& bytesTx = reg.counter("server.bytes_tx");
  obs::Gauge& activeConnections = reg.gauge("server.active_connections");
  obs::Histogram& requestUs = reg.histogram("server.request_us");

  static ServerMetrics& get() {
    static ServerMetrics m;
    return m;
  }
};

}  // namespace

/// One accepted socket. Owned jointly by the poller's list and any worker /
/// deferred-commit callback currently serving it; at most one of those is
/// active at a time (`busy`), so the per-connection state needs no lock.
struct FreqDedupServer::Conn {
  uint64_t id = 0;
  Fd fd;
  std::atomic<bool> busy{false};
  std::atomic<bool> dead{false};
  /// Unix-socket peer with the daemon's uid (or root) per SO_PEERCRED; the
  /// only peers allowed to request shutdown. Never set for TCP.
  bool privileged = false;

  // All fields below are only touched by the single active server thread.
  bool helloDone = false;
  std::string tenant;
  AesKey userKey{};
  /// Seeds the recipe-sealing IV stream. MUST come from OS entropy: a
  /// deterministic seed (connection counter, tenant hash, ...) would replay
  /// the same AES-CTR IV sequence after a daemon restart and break the
  /// sealing under every reused (key, IV) pair.
  Rng rng{secureSeed()};
  uint64_t nextId = 1;
  std::map<uint64_t, std::unique_ptr<BackupSession>> backups;
  struct OpenRestore {
    std::string name;
    RestoreSession session;  // ranges stream on demand; nothing materialized
  };
  std::map<uint64_t, OpenRestore> restores;
};

uint64_t parseByteSize(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("byte size: empty");
  size_t end = 0;
  const uint64_t n = std::stoull(s, &end);
  uint64_t mult = 1;
  if (end + 1 == s.size()) {
    switch (s[end]) {
      case 'k': case 'K': mult = 1024; break;
      case 'm': case 'M': mult = 1024 * 1024; break;
      case 'g': case 'G': mult = 1024 * 1024 * 1024; break;
      default: throw std::invalid_argument("byte size: bad suffix in " + s);
    }
  } else if (end != s.size()) {
    throw std::invalid_argument("byte size: trailing junk in " + s);
  }
  return n * mult;
}

FreqDedupServer::FreqDedupServer(const std::string& storeDir,
                                 ServerOptions options)
    : storeDir_(storeDir),
      options_(std::move(options)),
      bound_(parseAddress(options_.address)),
      store_(makeBackupStore(StoreBackend::kFile, storeDir, options_.store)),
      keyManager_(toBytes(kServerSecret)),
      chunker_(std::make_unique<CdcChunker>()),
      tenants_(options_.quota) {
  client_ = std::make_unique<DedupClient>(*store_, keyManager_, *chunker_,
                                          options_.backupOptions,
                                          options_.restoreOptions);
  tenants_.loadFrom(*store_);
}

FreqDedupServer::~FreqDedupServer() { stop(); }

void FreqDedupServer::start() {
  if (started_.exchange(true))
    throw std::logic_error("FreqDedupServer::start() called twice");
  listener_ = listenOn(bound_);
  if (bound_.kind == Address::Kind::kTcp && bound_.port == 0) {
    // Resolve the ephemeral port so tests/benches can connect.
    sockaddr_storage ss{};
    socklen_t len = sizeof(ss);
    if (::getsockname(listener_.get(), reinterpret_cast<sockaddr*>(&ss),
                      &len) == 0) {
      if (ss.ss_family == AF_INET)
        bound_.port =
            ntohs(reinterpret_cast<sockaddr_in*>(&ss)->sin_port);
      else if (ss.ss_family == AF_INET6)
        bound_.port =
            ntohs(reinterpret_cast<sockaddr_in6*>(&ss)->sin6_port);
    }
  }
  int pipefd[2];
  if (::pipe(pipefd) != 0)
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  wakeRead_ = Fd(pipefd[0]);
  wakeWrite_ = Fd(pipefd[1]);
  ::fcntl(wakeRead_.get(), F_SETFL, O_NONBLOCK);
  pool_ = std::make_unique<ThreadPool>(std::max(1u, options_.threads));
  poller_ = std::thread([this] { pollLoop(); });
}

void FreqDedupServer::stop() {
  std::lock_guard stopLock(stopMu_);
  if (!started_.load()) return;
  stopping_.store(true);
  {
    std::lock_guard lock(shutdownMu_);
    shutdownRequested_.store(true);
  }
  shutdownCv_.notify_all();
  wake();
  if (poller_.joinable()) poller_.join();
  if (pool_) pool_->shutdown();
  {
    // Deferred commit completions run on the store's log syncer thread;
    // wait them out before touching connections or the store.
    std::unique_lock lock(deferredMu_);
    deferredCv_.wait(lock, [this] { return pendingDeferred_ == 0; });
  }
  {
    std::lock_guard lock(connsMu_);
    ServerMetrics& m = ServerMetrics::get();
    for (const auto& conn : conns_) {
      (void)conn;
      m.connectionsClosed.add();
      m.activeConnections.sub();
    }
    conns_.clear();
  }
  if (client_) {
    client_->withStore([](BackupStore& s) {
      s.flush();
      return 0;
    });
  }
  listener_.reset();
  if (bound_.kind == Address::Kind::kUnix) ::unlink(bound_.path.c_str());
}

void FreqDedupServer::waitShutdownRequested() {
  std::unique_lock lock(shutdownMu_);
  // Timed wait instead of a pure cv wait: a requestShutdown() from a signal
  // handler can't notify, so the flag is re-checked every poll interval.
  while (!shutdownRequested_.load())
    shutdownCv_.wait_for(lock, std::chrono::milliseconds(200));
}

void FreqDedupServer::wake() {
  if (!wakeWrite_.valid()) return;
  const uint8_t b = 1;
  [[maybe_unused]] const ssize_t n = ::write(wakeWrite_.get(), &b, 1);
}

void FreqDedupServer::pollLoop() {
  ServerMetrics& m = ServerMetrics::get();
  while (!stopping_.load()) {
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Conn>> polled;
    fds.push_back({wakeRead_.get(), POLLIN, 0});
    fds.push_back({listener_.get(), POLLIN, 0});
    {
      std::lock_guard lock(connsMu_);
      // Sweep connections whose serving thread declared them dead.
      std::erase_if(conns_, [&m](const std::shared_ptr<Conn>& c) {
        const bool gone = c->dead.load() && !c->busy.load();
        if (gone) {
          m.connectionsClosed.add();
          m.activeConnections.sub();
        }
        return gone;
      });
      for (const auto& c : conns_) {
        if (c->busy.load() || c->dead.load()) continue;
        polled.push_back(c);
        fds.push_back({c->fd.get(), POLLIN, 0});
      }
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; stop() will clean up
    }
    if ((fds[0].revents & POLLIN) != 0) {
      uint8_t buf[64];
      while (::read(wakeRead_.get(), buf, sizeof(buf)) > 0) {
      }
    }
    if ((fds[1].revents & POLLIN) != 0) {
      const int cfd = ::accept(listener_.get(), nullptr, nullptr);
      if (cfd >= 0) {
        const timeval tv{kConnTimeoutSec, 0};
        ::setsockopt(cfd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(cfd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        if (bound_.kind == Address::Kind::kTcp) {
          const int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
        auto conn = std::make_shared<Conn>();
        conn->id = nextConnId_.fetch_add(1);
        conn->fd = Fd(cfd);
        if (bound_.kind == Address::Kind::kUnix) {
          ucred cred{};
          socklen_t credLen = sizeof(cred);
          if (::getsockopt(cfd, SOL_SOCKET, SO_PEERCRED, &cred, &credLen) ==
              0)
            conn->privileged = cred.uid == ::geteuid() || cred.uid == 0;
        }
        m.connectionsOpened.add();
        m.activeConnections.add();
        std::lock_guard lock(connsMu_);
        conns_.push_back(std::move(conn));
      }
    }
    for (size_t i = 0; i < polled.size(); ++i) {
      if ((fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::shared_ptr<Conn>& conn = polled[i];
      conn->busy.store(true);
      if (!pool_->submit([this, conn] { handleConn(conn); }))
        conn->busy.store(false);  // pool shut down; stop() owns cleanup
    }
  }
}

void FreqDedupServer::sendReply(const std::shared_ptr<Conn>& conn,
                                ByteView payload) {
  writeFrame(conn->fd.get(), payload);
  ServerMetrics& m = ServerMetrics::get();
  m.framesTx.add();
  m.bytesTx.add(payload.size() + kFrameHeaderBytes);
}

void FreqDedupServer::sendError(const std::shared_ptr<Conn>& conn,
                                ErrorCode code, const std::string& message) {
  ErrorReply reply;
  reply.code = code;
  reply.message = message.substr(0, kMaxErrorBytes);
  sendReply(conn, encode(reply));
}

void FreqDedupServer::rearm(const std::shared_ptr<Conn>& conn) {
  conn->busy.store(false);
  wake();
}

void FreqDedupServer::markDead(const std::shared_ptr<Conn>& conn) {
  conn->dead.store(true);
  conn->busy.store(false);
  wake();
}

void FreqDedupServer::handleConn(const std::shared_ptr<Conn>& conn) {
  ServerMetrics& m = ServerMetrics::get();
  try {
    const std::optional<ByteVec> payload = readFrame(conn->fd.get());
    if (!payload) {  // clean EOF at a frame boundary
      markDead(conn);
      return;
    }
    m.framesRx.add();
    m.bytesRx.add(payload->size() + kFrameHeaderBytes);
    m.requests.add();
    obs::ObsSpan span(&m.requestUs, "server.request", "server");
    if (dispatch(conn, *payload)) return;  // response deferred
  } catch (const WireError& e) {
    // Malformed framing: the stream position is unrecoverable, so answer
    // (best effort) and drop the connection.
    m.requestErrors.add();
    try {
      sendError(conn, ErrorCode::kProtocol, e.what());
    } catch (...) {
    }
    markDead(conn);
    return;
  } catch (const std::exception&) {
    // Socket I/O failure (EOF mid-frame, timeout, reset).
    m.requestErrors.add();
    markDead(conn);
    return;
  }
  if (conn->dead.load()) {
    wake();
    return;
  }
  rearm(conn);
}

bool FreqDedupServer::dispatch(const std::shared_ptr<Conn>& conn,
                               ByteView payload) {
  const MsgType type = peekType(payload);

  if (!conn->helloDone) {
    if (type != MsgType::kHello)
      throw WireError("first frame must be Hello");
    const Hello hello = decodeHello(payload);
    if (hello.magic != kHelloMagic) throw WireError("bad hello magic");
    if (hello.version != kWireVersion) {
      sendError(conn, ErrorCode::kBadRequest,
                "unsupported protocol version " +
                    std::to_string(hello.version));
      markDead(conn);
      return false;
    }
    if (!validTenantId(hello.tenant)) {
      sendError(conn, ErrorCode::kBadRequest, "invalid tenant id");
      markDead(conn);
      return false;
    }
    // The claimed tenant id is only honored once the passphrase matches the
    // tenant's persisted verifier (established first-connect-wins); a remote
    // peer can no longer list/overwrite/delete another tenant's backups by
    // merely naming it in Hello.
    if (!authenticateTenant(hello.tenant, hello.passphrase)) {
      ServerMetrics::get().authFailures.add();
      sendError(conn, ErrorCode::kAuthFailed,
                "tenant authentication failed for \"" + hello.tenant + "\"");
      markDead(conn);
      return false;
    }
    conn->tenant = hello.tenant;
    conn->userKey = userKeyFromPassphrase(hello.passphrase);
    conn->helloDone = true;
    sendReply(conn, encode(HelloOk{}));
    return false;
  }

  try {
    switch (type) {
      case MsgType::kHello:
        throw WireError("duplicate Hello");

      case MsgType::kBackupOpen: {
        const BackupOpen req = decodeBackupOpen(payload);
        if (req.name.empty()) {
          sendError(conn, ErrorCode::kBadRequest, "empty backup name");
          return false;
        }
        if (conn->backups.size() >= kMaxOpenBackupsPerConn) {
          sendError(conn, ErrorCode::kBadRequest,
                    "too many open backups on this connection");
          return false;
        }
        const uint64_t id = conn->nextId++;
        conn->backups.emplace(id, client_->beginBackupHandle(scopedBackupName(
                                      conn->tenant, req.name)));
        sendReply(conn, encode(BackupOpened{id}));
        return false;
      }

      case MsgType::kBackupAppend: {
        const BackupAppend req = decodeBackupAppend(payload);
        const auto it = conn->backups.find(req.backupId);
        if (it == conn->backups.end()) {
          sendError(conn, ErrorCode::kBadRequest, "unknown backup id");
          return false;
        }
        it->second->append(req.data);
        sendReply(conn, encode(Ok{}));
        return false;
      }

      case MsgType::kBackupFinish:
        return handleBackupFinish(conn, payload);

      case MsgType::kBackupAbort: {
        const BackupAbort req = decodeBackupAbort(payload);
        // Dropping the session discards it; any chunks it already stored
        // stay unreferenced until the next GC.
        if (conn->backups.erase(req.backupId) == 0) {
          sendError(conn, ErrorCode::kBadRequest, "unknown backup id");
          return false;
        }
        sendReply(conn, encode(Ok{}));
        return false;
      }

      case MsgType::kRestoreOpen:
        handleRestoreOpen(conn, payload);
        return false;

      case MsgType::kRestoreRange:
        handleRestoreRange(conn, payload);
        return false;

      case MsgType::kRestoreClose: {
        const RestoreClose req = decodeRestoreClose(payload);
        if (conn->restores.erase(req.restoreId) == 0) {
          sendError(conn, ErrorCode::kBadRequest, "unknown restore id");
          return false;
        }
        sendReply(conn, encode(Ok{}));
        return false;
      }

      case MsgType::kDelete:
        handleDelete(conn, payload);
        return false;

      case MsgType::kList:
        handleList(conn, payload);
        return false;

      case MsgType::kStats:
        handleStats(conn);
        return false;

      case MsgType::kShutdown: {
        decodeShutdown(payload);
        if (!options_.allowShutdown) {
          sendError(conn, ErrorCode::kBadRequest,
                    "shutdown disabled on this server");
          return false;
        }
        if (!conn->privileged) {
          // Only a unix-socket peer running as the daemon's user (or root)
          // may stop the daemon; any tenant credential alone must not be
          // able to deny service to every other tenant.
          sendError(conn, ErrorCode::kBadRequest,
                    "shutdown requires a privileged local peer");
          return false;
        }
        sendReply(conn, encode(Ok{}));
        {
          std::lock_guard lock(shutdownMu_);
          shutdownRequested_.store(true);
        }
        shutdownCv_.notify_all();
        return false;
      }

      default:
        throw WireError("request expected, got response-type message");
    }
  } catch (const WireError&) {
    throw;  // framing-level: connection-fatal, handled by handleConn
  } catch (const std::exception& e) {
    // Semantic failure executing a well-formed request: report and keep
    // the connection alive.
    ServerMetrics::get().requestErrors.add();
    sendError(conn, ErrorCode::kServerError, e.what());
    return false;
  }
}

bool FreqDedupServer::handleBackupFinish(const std::shared_ptr<Conn>& conn,
                                         ByteView payload) {
  const BackupFinish req = decodeBackupFinish(payload);
  const auto it = conn->backups.find(req.backupId);
  if (it == conn->backups.end()) {
    sendError(conn, ErrorCode::kBadRequest, "unknown backup id");
    return false;
  }
  const std::unique_ptr<BackupSession> session = std::move(it->second);
  conn->backups.erase(it);
  const std::string scoped = session->objectName();
  const BackupOutcome outcome = session->finish();
  const uint64_t logicalBytes = outcome.fileRecipe.fileSize;

  uint64_t replacedBytes = 0;
  bool replaces = false;
  std::lock_guard commitLock(commitMu_);
  client_->withStore([&](BackupStore& s) {
    replaces = s.backupRefs(scoped).has_value();
    if (const auto blob = s.getBlob(TenantRegistry::usageBlobName(scoped))) {
      size_t offset = 0;
      if (const auto v = getVarint(*blob, offset)) replacedBytes = *v;
    }
    return 0;
  });

  if (const auto err = tenants_.checkQuota(conn->tenant, logicalBytes,
                                           replacedBytes, replaces)) {
    // The rejected stream's chunks are already in the store but
    // unreferenced; the next GC reclaims them.
    tenants_.recordQuotaReject(conn->tenant);
    sendError(conn, ErrorCode::kQuotaExceeded, *err);
    return false;
  }

  const DedupClassification cls = tenants_.recordCommit(
      conn->tenant, outcome.newChunkFps, outcome.duplicateChunkFps,
      logicalBytes, replacedBytes, replaces);
  ByteVec usage;
  putVarint(usage, logicalBytes);
  client_->withStore([&](BackupStore& s) {
    s.putBlob(TenantRegistry::usageBlobName(scoped), usage);
    return 0;
  });

  BackupDone done;
  done.chunkCount = outcome.chunkCount;
  done.newChunks = outcome.newChunks;
  done.duplicateChunks = outcome.duplicateChunks;
  done.crossTenantDuplicates = cls.crossTenantDuplicates;

  {
    std::lock_guard lock(deferredMu_);
    ++pendingDeferred_;
  }
  // The commit is staged synchronously (visible on return); the response
  // waits for the coalesced group sync so the client's BackupDone means
  // "durable". The worker thread is released meanwhile — this is what lets
  // many tenants' commits share one fdatasync.
  client_->commitBackupAsync(
      scoped, outcome, conn->userKey, conn->rng,
      [this, conn, done](bool ok) {
        try {
          if (ok) {
            sendReply(conn, encode(done));
            rearm(conn);
          } else {
            sendError(conn, ErrorCode::kServerError,
                      "commit not durable: metadata log sync failed");
            markDead(conn);
          }
        } catch (...) {
          markDead(conn);
        }
        {
          std::lock_guard lock(deferredMu_);
          --pendingDeferred_;
        }
        deferredCv_.notify_all();
      });
  return true;
}

void FreqDedupServer::handleRestoreOpen(const std::shared_ptr<Conn>& conn,
                                        ByteView payload) {
  const RestoreOpen req = decodeRestoreOpen(payload);
  if (conn->restores.size() >= kMaxOpenRestoresPerConn) {
    sendError(conn, ErrorCode::kBadRequest,
              "too many open restores on this connection");
    return;
  }
  const std::string scoped = scopedBackupName(conn->tenant, req.name);
  const bool exists = client_->withStore([&](BackupStore& s) {
    return s.getBlob(DedupClient::recipeBlobName(scoped)).has_value();
  });
  if (!exists) {
    sendError(conn, ErrorCode::kNotFound, "no such backup: " + req.name);
    return;
  }
  // Opening only loads the recipes; ranges stream chunk batches on demand,
  // so an open restore costs O(recipe), never O(object) — a client opening
  // a terabyte backup no longer makes the daemon materialize it. Chunk
  // verification consequently happens per range: a corrupt chunk surfaces
  // as a kServerError on the RestoreRange that covers it.
  RestoreSession session = client_->beginRestore(scoped, conn->userKey);
  const uint64_t size = session.size();
  const uint64_t id = conn->nextId++;
  conn->restores.emplace(id,
                         Conn::OpenRestore{req.name, std::move(session)});
  tenants_.recordRestore(conn->tenant);
  sendReply(conn, encode(RestoreOpened{id, size}));
}

void FreqDedupServer::handleRestoreRange(const std::shared_ptr<Conn>& conn,
                                         ByteView payload) {
  const RestoreRange req = decodeRestoreRange(payload);
  const auto it = conn->restores.find(req.restoreId);
  if (it == conn->restores.end()) {
    sendError(conn, ErrorCode::kBadRequest, "unknown restore id");
    return;
  }
  RestoreSession& session = it->second.session;
  RestoreData out;
  const uint64_t len =
      std::min(req.length, static_cast<uint64_t>(kMaxDataBytes));
  // offset at/past the end streams nothing — an empty range is the clean
  // EOF signal.
  session.streamRange(req.offset, len,
                      [&out](ByteView bytes) { appendBytes(out.data, bytes); });
  sendReply(conn, encode(out));
}

void FreqDedupServer::handleDelete(const std::shared_ptr<Conn>& conn,
                                   ByteView payload) {
  const DeleteBackup req = decodeDeleteBackup(payload);
  const std::string scoped = scopedBackupName(conn->tenant, req.name);
  const std::string usageName = TenantRegistry::usageBlobName(scoped);
  uint64_t usageBytes = 0;
  client_->withStore([&](BackupStore& s) {
    if (const auto blob = s.getBlob(usageName)) {
      size_t offset = 0;
      if (const auto v = getVarint(*blob, offset)) usageBytes = *v;
    }
    return 0;
  });
  if (!client_->deleteBackup(scoped)) {
    sendError(conn, ErrorCode::kNotFound, "no such backup: " + req.name);
    return;
  }
  client_->withStore([&](BackupStore& s) {
    s.eraseBlob(usageName);
    return 0;
  });
  tenants_.recordDelete(conn->tenant, usageBytes);
  sendReply(conn, encode(Ok{}));
}

void FreqDedupServer::handleList(const std::shared_ptr<Conn>& conn,
                                 ByteView payload) {
  const ListBackups req = decodeListBackups(payload);
  std::vector<std::string> names;
  for (const std::string& scoped : client_->listBackups())
    if (auto bare = unscopeBackupName(conn->tenant, scoped))
      if (*bare > req.startAfter) names.push_back(std::move(*bare));
  std::sort(names.begin(), names.end());
  // One sorted page per reply, bounded by the byte budget so the encoded
  // frame can never outgrow kMaxFrameBytes no matter how many backups a
  // tenant holds; the client continues from names.back() while truncated.
  ListResult out;
  uint64_t budget = options_.listBytesPerReply;
  for (std::string& name : names) {
    const uint64_t cost = name.size() + 10;  // name bytes + varint framing
    if (!out.names.empty() &&
        (cost > budget || out.names.size() >= kMaxListNames)) {
      out.truncated = true;
      break;
    }
    budget -= std::min(budget, cost);
    out.names.push_back(std::move(name));
  }
  sendReply(conn, encode(out));
}

bool FreqDedupServer::authenticateTenant(const std::string& tenant,
                                         const std::string& passphrase) {
  const std::string blobName = authBlobName(tenant);
  std::optional<ByteVec> record = client_->withStore(
      [&](BackupStore& s) { return s.getBlob(blobName); });
  if (record) return checkAuthVerifier(*record, passphrase);
  // First Hello for this tenant: register its verifier. The KDF — the
  // expensive part — runs outside the store lock; the put-if-absent under
  // the lock makes two racing first connects deterministic (one registers,
  // the other re-verifies against the winner's record).
  const ByteVec fresh = makeAuthVerifier(passphrase);
  bool registered = false;
  record = client_->withStore(
      [&](BackupStore& s) -> std::optional<ByteVec> {
        if (auto existing = s.getBlob(blobName)) return existing;
        s.putBlob(blobName, fresh);
        registered = true;
        return std::nullopt;
      });
  if (registered) return true;
  return checkAuthVerifier(*record, passphrase);
}

void FreqDedupServer::handleStats(const std::shared_ptr<Conn>& conn) {
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  snapshot.merge(store_->metricsSnapshot());
  sendReply(conn, encode(StatsResult{snapshot.toJson()}));
}

}  // namespace freqdedup::server
