// freqdedupd — the dedup server daemon.
//
// One FreqDedupServer owns the persistent store, a shared DedupClient and a
// TenantRegistry, and serves many concurrent remote clients over a Unix or
// TCP socket speaking the wire.h protocol. The layering mirrors the
// in-process connection→session split: each accepted socket is one
// authenticated tenant connection that multiplexes any number of backup and
// restore streams (by id) onto DedupClient sessions.
//
// Concurrency model: a single poll()-based event thread watches the
// listener, a self-pipe, and every connection that is not currently being
// served. A readable connection is marked busy and handed to the shared
// request ThreadPool; the worker reads exactly one frame (blocking reads are
// safe — bytes are already in flight), executes the request, writes the
// response, and re-arms the connection through the self-pipe. A connection
// is therefore always serviced by at most one thread, while different
// connections run fully in parallel — session appends serialize only on the
// store's internal chunk lock, and commits pipeline through the async
// group-commit path (commitBackupAsync), so a BackupFinish never holds a
// worker thread hostage on fdatasync: the response is sent from the log
// syncer's completion callback.
//
// Tenancy: the first frame must be a Hello naming the tenant AND presenting
// that tenant's passphrase — verified against a salted-KDF verifier blob
// persisted in the store on the tenant's first Hello (first-connect-wins
// registration; see tenant.h), so a remote peer cannot operate inside
// another tenant's namespace by merely claiming its id. All backup names
// are scoped to "t/<tenant>/..." store-side, quotas are enforced at finish
// (a rejected backup's chunks stay unreferenced and are reclaimed by the
// next GC), and per-tenant counters — including the cross-tenant dedup
// leakage surface — flow into MetricsRegistry::global().
//
// Resource bounds: restores are served by streaming ranges straight off the
// RestoreSession (never materializing the object server-side), and one
// connection may hold at most kMaxOpenBackupsPerConn / kMaxOpenRestoresPerConn
// concurrent streams. Shutdown additionally requires a privileged peer: a
// unix-socket connection whose SO_PEERCRED uid is the daemon's (or root) —
// TCP peers can never shut the daemon down.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/dedup_client.h"
#include "server/socket.h"
#include "server/tenant.h"
#include "storage/backup_store.h"

namespace freqdedup {
class ThreadPool;
}

namespace freqdedup::server {

struct ServerOptions {
  /// "unix:<path>" | "tcp:<host>:<port>" | bare unix path. tcp port 0 binds
  /// an ephemeral port; read it back via boundAddress().
  std::string address;
  /// Request worker threads (concurrent in-flight requests).
  uint32_t threads = 4;
  /// Applied uniformly to every tenant; zero fields mean unlimited.
  TenantQuota quota;
  /// Store geometry, codec, block-cache budget and tiering (passed through
  /// to the file backend).
  StoreOptions store;
  /// Session behavior for all tenants. Defaults to the full defense
  /// (MinHash + scrambling), matching the backup_system tool.
  BackupOptions backupOptions;
  RestoreOptions restoreOptions;
  /// Whether privileged peers (unix-socket, same uid as the daemon or root)
  /// may request daemon shutdown (on for the CLI daemon, off when embedding
  /// the server in tests that manage lifetime). Unprivileged peers — every
  /// TCP connection included — are always refused regardless of this flag.
  bool allowShutdown = true;
  /// Byte budget for one ListResult page (names + framing overhead); a
  /// tenant with more backups gets a truncated page and continues via
  /// ListBackups.startAfter. At least one name is always returned, so tiny
  /// test budgets still make progress.
  uint64_t listBytesPerReply = 1u << 20;
};

class FreqDedupServer {
 public:
  /// Opens (or creates) the store under `storeDir`. Throws
  /// std::runtime_error / std::invalid_argument on store or address errors.
  FreqDedupServer(const std::string& storeDir, ServerOptions options);

  /// Stops and joins everything; pending deferred commits are drained first.
  ~FreqDedupServer();

  FreqDedupServer(const FreqDedupServer&) = delete;
  FreqDedupServer& operator=(const FreqDedupServer&) = delete;

  /// Binds the address and starts the event thread + worker pool. Throws on
  /// bind failure. Call once.
  void start();

  /// Graceful stop: stops accepting, finishes in-flight requests, waits for
  /// deferred commit durability callbacks, flushes the store, closes every
  /// connection. Idempotent; also run by the destructor.
  void stop();

  /// Blocks until a remote Shutdown request arrives, requestShutdown() is
  /// called, or stop() is called. Polls the flag on a short timed wait, so
  /// requestShutdown() is safe from a signal handler (plain atomic store).
  void waitShutdownRequested();

  /// Marks shutdown requested (waking waitShutdownRequested within its poll
  /// interval). Async-signal-safe: one relaxed atomic store, no locks.
  void requestShutdown() { shutdownRequested_.store(true); }

  [[nodiscard]] bool shutdownRequested() const {
    return shutdownRequested_.load();
  }

  /// The listen address with any ephemeral tcp port resolved. Valid after
  /// start().
  [[nodiscard]] const Address& boundAddress() const { return bound_; }

  [[nodiscard]] TenantRegistry& tenants() { return tenants_; }
  [[nodiscard]] BackupStore& store() { return *store_; }

 private:
  struct Conn;

  void pollLoop();
  void wake();
  void handleConn(const std::shared_ptr<Conn>& conn);
  /// Executes one decoded request. Returns true when the response is
  /// deferred (the connection stays busy until a completion callback
  /// finishes it).
  bool dispatch(const std::shared_ptr<Conn>& conn, ByteView payload);
  void sendReply(const std::shared_ptr<Conn>& conn, ByteView payload);
  void sendError(const std::shared_ptr<Conn>& conn, ErrorCode code,
                 const std::string& message);
  void rearm(const std::shared_ptr<Conn>& conn);
  void markDead(const std::shared_ptr<Conn>& conn);

  bool handleBackupFinish(const std::shared_ptr<Conn>& conn, ByteView payload);
  void handleRestoreOpen(const std::shared_ptr<Conn>& conn, ByteView payload);
  void handleRestoreRange(const std::shared_ptr<Conn>& conn, ByteView payload);
  void handleDelete(const std::shared_ptr<Conn>& conn, ByteView payload);
  void handleList(const std::shared_ptr<Conn>& conn, ByteView payload);
  void handleStats(const std::shared_ptr<Conn>& conn);
  /// Verifies (or, on a tenant's first Hello, establishes) the tenant
  /// passphrase verifier. Returns false on mismatch.
  bool authenticateTenant(const std::string& tenant,
                          const std::string& passphrase);

  std::string storeDir_;
  ServerOptions options_;
  Address bound_;
  std::unique_ptr<BackupStore> store_;
  KeyManager keyManager_;
  std::unique_ptr<Chunker> chunker_;
  std::unique_ptr<DedupClient> client_;
  TenantRegistry tenants_;
  std::unique_ptr<ThreadPool> pool_;

  Fd listener_;
  Fd wakeRead_, wakeWrite_;
  std::thread poller_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdownRequested_{false};
  std::atomic<uint64_t> nextConnId_{1};

  std::mutex connsMu_;
  std::vector<std::shared_ptr<Conn>> conns_;

  /// Serializes stop() against concurrent/double calls.
  std::mutex stopMu_;
  /// Serializes the finish-time bookkeeping (quota check → accounting →
  /// commit staging) so two concurrent finishes can't both squeeze past a
  /// nearly-full quota. Appends — the heavy part — stay parallel, and the
  /// deferred durability syncs still coalesce across commits.
  std::mutex commitMu_;

  /// Deferred (async-commit) completions still in flight; stop() drains
  /// them before tearing anything down.
  std::mutex deferredMu_;
  std::condition_variable deferredCv_;
  uint64_t pendingDeferred_ = 0;

  std::mutex shutdownMu_;
  std::condition_variable shutdownCv_;
};

/// Serialization of ServerOptions quota flags used by the CLI:
/// parses "<n>[k|m|g]" into bytes. Throws std::invalid_argument.
uint64_t parseByteSize(const std::string& s);

}  // namespace freqdedup::server
