// Minimal blocking socket layer for the freqdedupd daemon and its remote
// clients: address parsing, listen/connect, and frame-at-a-time I/O over the
// wire.h framing. POSIX only (the rest of the repo already assumes POSIX
// file I/O).
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"
#include "server/wire.h"

namespace freqdedup::server {

/// "unix:<path>" | "tcp:<host>:<port>" | bare path (treated as unix).
struct Address {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // unix socket path
  std::string host;  // tcp host
  uint16_t port = 0;

  [[nodiscard]] std::string str() const;
};

/// Throws std::invalid_argument on an empty or malformed address.
Address parseAddress(const std::string& s);

/// Owning fd wrapper: closes on destruction, movable, not copyable.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Binds and listens. For unix addresses an existing stale socket file is
/// unlinked first. Throws std::runtime_error on failure.
Fd listenOn(const Address& addr, int backlog = 128);

/// Connects (blocking). Throws std::runtime_error on failure.
Fd connectTo(const Address& addr);

/// Reads exactly n bytes. Returns false on clean EOF before the first byte;
/// throws std::runtime_error on mid-read EOF or I/O error.
bool readFull(int fd, uint8_t* buf, size_t n);

/// Writes all n bytes; throws std::runtime_error on error. SIGPIPE is
/// suppressed via MSG_NOSIGNAL / send().
void writeFull(int fd, const uint8_t* buf, size_t n);

/// Reads one complete frame and returns its verified payload. Returns
/// nullopt on clean EOF at a frame boundary; throws WireError on CRC
/// mismatch or oversize length, std::runtime_error on mid-frame EOF or I/O
/// error.
std::optional<ByteVec> readFrame(int fd);

/// Frames and writes one payload.
void writeFrame(int fd, ByteView payload);

}  // namespace freqdedup::server
