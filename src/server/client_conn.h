// Remote client for freqdedupd: one authenticated tenant connection
// speaking the wire.h protocol, with an API shaped after the in-process
// DedupClient so callers (backup_system --remote, tests, benches) can swap
// between the two.
//
// A RemoteDedupClient is a single socket and is NOT thread-safe; open one
// per thread (connections are cheap, and the daemon multiplexes them). All
// methods throw RemoteError when the server answers with a protocol-level
// error, WireError on a malformed response, and std::runtime_error on
// socket failures.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "server/socket.h"
#include "server/wire.h"

namespace freqdedup::server {

/// The server answered with an ErrorReply.
class RemoteError : public std::runtime_error {
 public:
  RemoteError(ErrorCode code, const std::string& message)
      : std::runtime_error("server error " +
                           std::to_string(static_cast<uint32_t>(code)) + ": " +
                           message),
        code_(code) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Streamed delivery of restored bytes, in order (same contract as the
/// in-process ByteSink).
using RemoteByteSink = std::function<void(ByteView)>;

/// Result of one finished backup, as reported by the server.
struct RemoteBackupResult {
  uint64_t chunkCount = 0;
  uint64_t newChunks = 0;
  uint64_t duplicateChunks = 0;
  uint64_t crossTenantDuplicates = 0;
};

/// An open streaming backup (server-side session handle).
class RemoteBackup {
 public:
  RemoteBackup() = default;

  [[nodiscard]] uint64_t id() const { return id_; }

 private:
  friend class RemoteDedupClient;
  explicit RemoteBackup(uint64_t id) : id_(id) {}
  uint64_t id_ = 0;
};

class RemoteDedupClient {
 public:
  /// Connects and performs the Hello handshake. Throws on connection or
  /// handshake failure.
  RemoteDedupClient(const std::string& address, const std::string& tenant,
                    const std::string& passphrase);

  RemoteDedupClient(const RemoteDedupClient&) = delete;
  RemoteDedupClient& operator=(const RemoteDedupClient&) = delete;

  /// Opens a server-side backup session for one object.
  RemoteBackup openBackup(const std::string& name);

  /// Appends bytes to an open backup; internally split into frame-bounded
  /// append requests, so `data` may be arbitrarily large.
  void append(const RemoteBackup& backup, ByteView data);

  /// Finishes and commits the backup. Returns once the server reports the
  /// commit DURABLE (the response rides the server's group commit).
  RemoteBackupResult finishBackup(const RemoteBackup& backup);

  /// Abandons an open backup (its chunks await the server's next GC).
  void abortBackup(const RemoteBackup& backup);

  /// Streams a backup's bytes to `sink` in order; returns the total size.
  uint64_t restore(const std::string& name, const RemoteByteSink& sink);

  /// Materializes a whole backup (convenience for tests/small objects).
  ByteVec restoreAll(const std::string& name);

  /// Deletes a backup in this tenant's namespace. Returns false when no
  /// such backup exists (kNotFound); other errors throw.
  bool deleteBackup(const std::string& name);

  /// Names of this tenant's backups (bare, unscoped).
  std::vector<std::string> listBackups();

  /// The server's merged metrics snapshot as single-line JSON.
  std::string statsJson();

  /// Asks the daemon to shut down (requires the server to allow it).
  void shutdownServer();

  [[nodiscard]] const std::string& tenant() const { return tenant_; }
  [[nodiscard]] const HelloOk& serverHello() const { return serverHello_; }

 private:
  /// Sends one request payload and reads one response payload; throws
  /// RemoteError if the response is an ErrorReply.
  ByteVec roundTrip(ByteView requestPayload);

  Fd fd_;
  std::string tenant_;
  HelloOk serverHello_;
};

}  // namespace freqdedup::server
