#include "server/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/crc32.h"

namespace freqdedup::server {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

std::string Address::str() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Address parseAddress(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("address: empty");
  Address a;
  if (s.rfind("unix:", 0) == 0) {
    a.kind = Address::Kind::kUnix;
    a.path = s.substr(5);
    if (a.path.empty()) throw std::invalid_argument("address: empty unix path");
    return a;
  }
  if (s.rfind("tcp:", 0) == 0) {
    const std::string rest = s.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size())
      throw std::invalid_argument("address: expected tcp:<host>:<port>");
    a.kind = Address::Kind::kTcp;
    a.host = rest.substr(0, colon);
    const std::string portStr = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(portStr.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port > 65535)
      throw std::invalid_argument("address: bad port '" + portStr + "'");
    a.port = static_cast<uint16_t>(port);
    return a;
  }
  // Bare path → unix socket.
  a.kind = Address::Kind::kUnix;
  a.path = s;
  return a;
}

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

sockaddr_un unixSockaddr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sa.sun_path))
    throw std::runtime_error("unix socket path too long: " + path);
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

}  // namespace

Fd listenOn(const Address& addr, int backlog) {
  if (addr.kind == Address::Kind::kUnix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throwErrno("socket(AF_UNIX)");
    const sockaddr_un sa = unixSockaddr(addr.path);
    ::unlink(addr.path.c_str());  // stale socket from a previous run
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
        0)
      throwErrno("bind " + addr.str());
    if (::listen(fd.get(), backlog) != 0) throwErrno("listen " + addr.str());
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string portStr = std::to_string(addr.port);
  const int rc = ::getaddrinfo(addr.host.c_str(), portStr.c_str(), &hints, &res);
  if (rc != 0)
    throw std::runtime_error("getaddrinfo " + addr.str() + ": " +
                             gai_strerror(rc));
  Fd fd;
  std::string lastErr = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd candidate(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) {
      lastErr = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(candidate.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(candidate.get(), ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(candidate.get(), backlog) == 0) {
      fd = std::move(candidate);
      break;
    }
    lastErr = std::strerror(errno);
  }
  ::freeaddrinfo(res);
  if (!fd.valid())
    throw std::runtime_error("listen " + addr.str() + ": " + lastErr);
  return fd;
}

Fd connectTo(const Address& addr) {
  if (addr.kind == Address::Kind::kUnix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throwErrno("socket(AF_UNIX)");
    const sockaddr_un sa = unixSockaddr(addr.path);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
                  sizeof(sa)) != 0)
      throwErrno("connect " + addr.str());
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string portStr = std::to_string(addr.port);
  const int rc = ::getaddrinfo(addr.host.c_str(), portStr.c_str(), &hints, &res);
  if (rc != 0)
    throw std::runtime_error("getaddrinfo " + addr.str() + ": " +
                             gai_strerror(rc));
  Fd fd;
  std::string lastErr = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd candidate(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) {
      lastErr = std::strerror(errno);
      continue;
    }
    if (::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(candidate.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one));
      fd = std::move(candidate);
      break;
    }
    lastErr = std::strerror(errno);
  }
  ::freeaddrinfo(res);
  if (!fd.valid())
    throw std::runtime_error("connect " + addr.str() + ": " + lastErr);
  return fd;
}

bool readFull(int fd, uint8_t* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, buf + done, n - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      throwErrno("read");
    }
    if (got == 0) {
      if (done == 0) return false;
      throw std::runtime_error("read: unexpected EOF mid-record");
    }
    done += static_cast<size_t>(got);
  }
  return true;
}

void writeFull(int fd, const uint8_t* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
#ifdef MSG_NOSIGNAL
    const ssize_t put = ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
#else
    const ssize_t put = ::write(fd, buf + done, n - done);
#endif
    if (put < 0) {
      if (errno == EINTR) continue;
      throwErrno("write");
    }
    done += static_cast<size_t>(put);
  }
}

std::optional<ByteVec> readFrame(int fd) {
  uint8_t header[kFrameHeaderBytes];
  if (!readFull(fd, header, sizeof(header))) return std::nullopt;
  const ByteView hv(header, sizeof(header));
  const uint32_t crc = getU32(hv, 0);
  const uint32_t len = getU32(hv, 4);
  if (len > kMaxFrameBytes) throw WireError("frame length exceeds cap");
  ByteVec payload(len);
  if (len > 0 && !readFull(fd, payload.data(), len))
    throw std::runtime_error("read: EOF inside frame payload");
  if (crc32c(payload) != crc) throw WireError("frame CRC mismatch");
  return payload;
}

void writeFrame(int fd, ByteView payload) {
  const ByteVec frame = encodeFrame(payload);
  writeFull(fd, frame.data(), frame.size());
}

}  // namespace freqdedup::server
