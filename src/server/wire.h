// freqdedupd wire protocol: length-prefixed, CRC-framed request/response
// messages between remote clients and the dedup server daemon.
//
// Framing (identical shape to the WAL/container record framing):
//   [crc32c(payload) u32][payloadLen u32][payload]
// payload = [msgType u8][message fields...]; integers are little-endian
// fixed-width or LEB128 varints, strings and byte blobs are varint-length-
// prefixed. One request frame yields exactly one response frame.
//
// Hardening contract (mirrors the container/recipe parsers): every decoder
//  - validates the leading type byte against the message it decodes,
//  - bounds every count/length against the remaining input BEFORE any
//    allocation or copy,
//  - caps names/tenants/data at protocol limits, and
//  - rejects trailing garbage (a frame must be consumed exactly).
// Violations throw WireError; decoders never read out of bounds and never
// trust a length field further than the bytes actually present.
//
// Conversation: the first frame on a connection must be Hello (magic +
// version + tenant + passphrase); every later request operates inside that
// tenant's namespace. Backup streams are open/append*/finish (or abort);
// restores are open/range*/close so arbitrarily large objects cross the
// socket in bounded frames.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace freqdedup::server {

/// Protocol revision; Hello carries it and the server rejects mismatches.
/// v2: tenant passphrase verification (kAuthFailed) and paginated List
/// (ListBackups.startAfter / ListResult.truncated).
inline constexpr uint32_t kWireVersion = 2;

/// First u32 of a Hello payload body ("FDDP"): lets the server reject a
/// non-protocol peer on the first frame with a clean error.
inline constexpr uint32_t kHelloMagic = 0x50444446;

/// Hard cap on one frame's payload; readers reject larger length fields
/// before allocating anything.
inline constexpr size_t kMaxFrameBytes = 16u << 20;

/// Caps on variable-size fields, enforced by every decoder.
inline constexpr size_t kMaxTenantBytes = 64;
inline constexpr size_t kMaxNameBytes = 4096;
inline constexpr size_t kMaxPassphraseBytes = 1024;
inline constexpr size_t kMaxErrorBytes = 4096;
/// Data bytes per append/restore-data frame (leaves frame headroom).
inline constexpr size_t kMaxDataBytes = kMaxFrameBytes - 4096;
/// Backups one list response may carry.
inline constexpr size_t kMaxListNames = 1u << 20;

/// Malformed or out-of-contract wire input. Connection-fatal on the server
/// (the peer is either broken or hostile).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what)
      : std::runtime_error("wire: " + what) {}
};

enum class MsgType : uint8_t {
  // Requests.
  kHello = 1,
  kBackupOpen = 2,
  kBackupAppend = 3,
  kBackupFinish = 4,
  kBackupAbort = 5,
  kRestoreOpen = 6,
  kRestoreRange = 7,
  kRestoreClose = 8,
  kDelete = 9,
  kList = 10,
  kStats = 11,
  kShutdown = 12,
  // Responses.
  kHelloOk = 64,
  kOk = 65,
  kBackupOpened = 66,
  kBackupDone = 67,
  kRestoreOpened = 68,
  kRestoreData = 69,
  kListResult = 70,
  kStatsResult = 71,
  kError = 72,
};

enum class ErrorCode : uint32_t {
  kBadRequest = 1,     // semantically invalid (unknown id, bad range, ...)
  kNotFound = 2,       // no such backup in this tenant's namespace
  kQuotaExceeded = 3,  // tenant quota (logical bytes or backup count)
  kProtocol = 4,       // malformed frame/message; connection is closed
  kServerError = 5,    // internal failure executing a valid request
  kShuttingDown = 6,   // daemon is draining; retry against a new server
  kAuthFailed = 7,     // Hello passphrase does not match the tenant verifier
};

// ---- Messages ----

struct Hello {
  uint32_t magic = kHelloMagic;
  uint32_t version = kWireVersion;
  std::string tenant;
  std::string passphrase;  // seals/unseals this tenant's recipes server-side
};

struct HelloOk {
  uint32_t version = kWireVersion;
  uint64_t maxFrameBytes = kMaxFrameBytes;
};

struct BackupOpen {
  std::string name;
};

struct BackupOpened {
  uint64_t backupId = 0;
};

struct BackupAppend {
  uint64_t backupId = 0;
  ByteVec data;
};

struct BackupFinish {
  uint64_t backupId = 0;
};

struct BackupAbort {
  uint64_t backupId = 0;
};

struct BackupDone {
  uint64_t chunkCount = 0;
  uint64_t newChunks = 0;
  uint64_t duplicateChunks = 0;
  /// Duplicates first stored by some other tenant — the frequency-analysis
  /// leakage surface of conf_dsn_LiQLZ17's multi-tenant threat model,
  /// reported per backup so clients can see their own exposure.
  uint64_t crossTenantDuplicates = 0;
};

struct RestoreOpen {
  std::string name;
};

struct RestoreOpened {
  uint64_t restoreId = 0;
  uint64_t size = 0;
};

struct RestoreRange {
  uint64_t restoreId = 0;
  uint64_t offset = 0;
  uint64_t length = 0;  // server clamps to kMaxDataBytes and object end
};

struct RestoreData {
  ByteVec data;
};

struct RestoreClose {
  uint64_t restoreId = 0;
};

struct DeleteBackup {
  std::string name;
};

struct ListBackups {
  /// Pagination cursor: only names strictly greater (bytewise) than this are
  /// returned. Empty starts from the beginning.
  std::string startAfter;
};

struct ListResult {
  std::vector<std::string> names;  // sorted ascending within one page
  /// More names follow; re-request with startAfter = names.back(). Keeps
  /// every reply frame-bounded no matter how many backups a tenant owns.
  bool truncated = false;
};

struct StatsRequest {};

struct StatsResult {
  std::string json;  // one merged MetricsSnapshot (global + store registry)
};

struct Shutdown {};

struct Ok {};

struct ErrorReply {
  ErrorCode code = ErrorCode::kServerError;
  std::string message;
};

// ---- Bounds-checked payload reader ----

/// Sequential decoder over one frame payload. Every getter throws WireError
/// instead of reading past the end; length-prefixed fields validate the
/// length against both the remaining bytes and the caller's cap before
/// allocating.
class WireReader {
 public:
  explicit WireReader(ByteView in) : in_(in) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  uint64_t varint();
  std::string str(size_t maxBytes);
  ByteVec bytes(size_t maxBytes);

  [[nodiscard]] size_t remaining() const { return in_.size() - pos_; }

  /// Trailing-garbage rejection: every decoder ends with this.
  void expectEnd() const;

 private:
  ByteView in_;
  size_t pos_ = 0;
};

// ---- Frame codec (pure; socket I/O lives in socket.h) ----

/// Wraps a payload in the [crc][len][payload] frame.
ByteVec encodeFrame(ByteView payload);

/// Unwraps one complete frame; throws WireError on truncation, oversize
/// length, CRC mismatch or trailing bytes after the frame.
ByteVec decodeFrame(ByteView frame);

/// Frame header bytes (crc32c + payloadLen).
inline constexpr size_t kFrameHeaderBytes = 8;

// ---- Message codecs ----

/// Type tag of an encoded payload; throws WireError on an empty payload or
/// an unknown tag.
MsgType peekType(ByteView payload);

ByteVec encode(const Hello& m);
ByteVec encode(const HelloOk& m);
ByteVec encode(const BackupOpen& m);
ByteVec encode(const BackupOpened& m);
ByteVec encode(const BackupAppend& m);
ByteVec encode(const BackupFinish& m);
ByteVec encode(const BackupAbort& m);
ByteVec encode(const BackupDone& m);
ByteVec encode(const RestoreOpen& m);
ByteVec encode(const RestoreOpened& m);
ByteVec encode(const RestoreRange& m);
ByteVec encode(const RestoreData& m);
ByteVec encode(const RestoreClose& m);
ByteVec encode(const DeleteBackup& m);
ByteVec encode(const ListBackups& m);
ByteVec encode(const ListResult& m);
ByteVec encode(const StatsRequest& m);
ByteVec encode(const StatsResult& m);
ByteVec encode(const Shutdown& m);
ByteVec encode(const Ok& m);
ByteVec encode(const ErrorReply& m);

Hello decodeHello(ByteView payload);
HelloOk decodeHelloOk(ByteView payload);
BackupOpen decodeBackupOpen(ByteView payload);
BackupOpened decodeBackupOpened(ByteView payload);
BackupAppend decodeBackupAppend(ByteView payload);
BackupFinish decodeBackupFinish(ByteView payload);
BackupAbort decodeBackupAbort(ByteView payload);
BackupDone decodeBackupDone(ByteView payload);
RestoreOpen decodeRestoreOpen(ByteView payload);
RestoreOpened decodeRestoreOpened(ByteView payload);
RestoreRange decodeRestoreRange(ByteView payload);
RestoreData decodeRestoreData(ByteView payload);
RestoreClose decodeRestoreClose(ByteView payload);
DeleteBackup decodeDeleteBackup(ByteView payload);
ListBackups decodeListBackups(ByteView payload);
ListResult decodeListResult(ByteView payload);
StatsRequest decodeStatsRequest(ByteView payload);
StatsResult decodeStatsResult(ByteView payload);
Shutdown decodeShutdown(ByteView payload);
Ok decodeOk(ByteView payload);
ErrorReply decodeErrorReply(ByteView payload);

}  // namespace freqdedup::server
