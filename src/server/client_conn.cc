#include "server/client_conn.h"

#include <algorithm>

namespace freqdedup::server {

namespace {

/// Bytes per append/range request: comfortably frame-bounded, large enough
/// that framing overhead is noise.
constexpr size_t kIoChunkBytes = 1u << 20;

}  // namespace

RemoteDedupClient::RemoteDedupClient(const std::string& address,
                                     const std::string& tenant,
                                     const std::string& passphrase)
    : fd_(connectTo(parseAddress(address))), tenant_(tenant) {
  Hello hello;
  hello.tenant = tenant;
  hello.passphrase = passphrase;
  serverHello_ = decodeHelloOk(roundTrip(encode(hello)));
  if (serverHello_.version != kWireVersion)
    throw std::runtime_error("server speaks protocol version " +
                             std::to_string(serverHello_.version));
}

ByteVec RemoteDedupClient::roundTrip(ByteView requestPayload) {
  writeFrame(fd_.get(), requestPayload);
  std::optional<ByteVec> response = readFrame(fd_.get());
  if (!response)
    throw std::runtime_error("server closed the connection mid-request");
  if (peekType(*response) == MsgType::kError) {
    const ErrorReply err = decodeErrorReply(*response);
    throw RemoteError(err.code, err.message);
  }
  return std::move(*response);
}

RemoteBackup RemoteDedupClient::openBackup(const std::string& name) {
  BackupOpen req;
  req.name = name;
  return RemoteBackup(decodeBackupOpened(roundTrip(encode(req))).backupId);
}

void RemoteDedupClient::append(const RemoteBackup& backup, ByteView data) {
  size_t offset = 0;
  // An empty append is still one request (the server treats it as a no-op),
  // so callers get a response for every call.
  do {
    const size_t len = std::min(kIoChunkBytes, data.size() - offset);
    BackupAppend req;
    req.backupId = backup.id();
    req.data.assign(data.begin() + static_cast<ptrdiff_t>(offset),
                    data.begin() + static_cast<ptrdiff_t>(offset + len));
    decodeOk(roundTrip(encode(req)));
    offset += len;
  } while (offset < data.size());
}

RemoteBackupResult RemoteDedupClient::finishBackup(const RemoteBackup& backup) {
  BackupFinish req;
  req.backupId = backup.id();
  const BackupDone done = decodeBackupDone(roundTrip(encode(req)));
  return {done.chunkCount, done.newChunks, done.duplicateChunks,
          done.crossTenantDuplicates};
}

void RemoteDedupClient::abortBackup(const RemoteBackup& backup) {
  BackupAbort req;
  req.backupId = backup.id();
  decodeOk(roundTrip(encode(req)));
}

uint64_t RemoteDedupClient::restore(const std::string& name,
                                    const RemoteByteSink& sink) {
  RestoreOpen openReq;
  openReq.name = name;
  const RestoreOpened opened =
      decodeRestoreOpened(roundTrip(encode(openReq)));
  uint64_t offset = 0;
  while (offset < opened.size) {
    RestoreRange rangeReq;
    rangeReq.restoreId = opened.restoreId;
    rangeReq.offset = offset;
    rangeReq.length = kIoChunkBytes;
    const RestoreData chunk =
        decodeRestoreData(roundTrip(encode(rangeReq)));
    if (chunk.data.empty())
      throw std::runtime_error("restore: server returned a short object");
    sink(chunk.data);
    offset += chunk.data.size();
  }
  RestoreClose closeReq;
  closeReq.restoreId = opened.restoreId;
  decodeOk(roundTrip(encode(closeReq)));
  return opened.size;
}

ByteVec RemoteDedupClient::restoreAll(const std::string& name) {
  ByteVec out;
  restore(name, [&out](ByteView bytes) { appendBytes(out, bytes); });
  return out;
}

bool RemoteDedupClient::deleteBackup(const std::string& name) {
  DeleteBackup req;
  req.name = name;
  try {
    decodeOk(roundTrip(encode(req)));
    return true;
  } catch (const RemoteError& e) {
    if (e.code() == ErrorCode::kNotFound) return false;
    throw;
  }
}

std::vector<std::string> RemoteDedupClient::listBackups() {
  // The server pages its reply (sorted names, bounded bytes per frame);
  // follow the continuation cursor until the page is complete.
  std::vector<std::string> all;
  ListBackups req;
  while (true) {
    const ListResult page = decodeListResult(roundTrip(encode(req)));
    all.insert(all.end(), page.names.begin(), page.names.end());
    if (!page.truncated) return all;
    if (page.names.empty())
      throw std::runtime_error("list: truncated page without names");
    req.startAfter = all.back();
  }
}

std::string RemoteDedupClient::statsJson() {
  return decodeStatsResult(roundTrip(encode(StatsRequest{}))).json;
}

void RemoteDedupClient::shutdownServer() {
  decodeOk(roundTrip(encode(Shutdown{})));
}

}  // namespace freqdedup::server
