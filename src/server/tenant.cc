#include "server/tenant.h"

#include <algorithm>

#include "common/hash.h"
#include "common/rng.h"
#include "common/varint.h"
#include "obs/metrics.h"
#include "server/wire.h"  // kMaxTenantBytes

namespace freqdedup::server {

namespace {

constexpr char kScopedPrefix[] = "t/";
constexpr char kUsagePrefix[] = "tenantu:";
constexpr char kAuthPrefix[] = "tenanta:";

constexpr size_t kAuthSaltBytes = 16;
constexpr size_t kAuthDigestBytes = 32;
/// Iterated-HMAC stretching: ~milliseconds per Hello, chosen so the KDF is
/// an annoyance for online guessing without making tests crawl.
constexpr int kAuthKdfIterations = 10000;

Digest authDigest(ByteView salt, const std::string& passphrase) {
  Digest d = hmacSha256(salt, toBytes("tenant-auth:" + passphrase));
  for (int i = 1; i < kAuthKdfIterations; ++i) d = hmacSha256(salt, d.view());
  return d;
}

}  // namespace

bool validTenantId(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > kMaxTenantBytes) return false;
  for (const char c : tenant)
    if (c == '/' || c == '\0') return false;
  return true;
}

std::string scopedBackupName(const std::string& tenant,
                             const std::string& name) {
  return kScopedPrefix + tenant + "/" + name;
}

std::optional<std::string> unscopeBackupName(const std::string& tenant,
                                             const std::string& scoped) {
  const std::string prefix = kScopedPrefix + tenant + "/";
  if (scoped.rfind(prefix, 0) != 0) return std::nullopt;
  return scoped.substr(prefix.size());
}

std::string TenantRegistry::usageBlobName(const std::string& scopedName) {
  return kUsagePrefix + scopedName;
}

std::string authBlobName(const std::string& tenant) {
  return kAuthPrefix + tenant;
}

ByteVec makeAuthVerifier(const std::string& passphrase) {
  ByteVec record(kAuthSaltBytes);
  secureRandomBytes(record.data(), kAuthSaltBytes);
  const Digest d =
      authDigest(ByteView(record.data(), kAuthSaltBytes), passphrase);
  appendBytes(record, d.view());
  return record;
}

bool checkAuthVerifier(ByteView record, const std::string& passphrase) {
  if (record.size() != kAuthSaltBytes + kAuthDigestBytes) return false;
  const Digest d =
      authDigest(record.subspan(0, kAuthSaltBytes), passphrase);
  if (d.size != kAuthDigestBytes) return false;
  // Constant-time comparison: accumulate every byte difference so the
  // branch depends only on the final OR, never on a prefix match.
  uint8_t diff = 0;
  for (size_t i = 0; i < kAuthDigestBytes; ++i)
    diff |= static_cast<uint8_t>(record[kAuthSaltBytes + i] ^ d.bytes[i]);
  return diff == 0;
}

void TenantRegistry::loadFrom(BackupStore& store) {
  std::lock_guard lock(mu_);
  // Backup counts and Bloom filters from scoped manifests.
  for (const std::string& scoped : store.listBackups()) {
    if (scoped.rfind(kScopedPrefix, 0) != 0) continue;  // unscoped legacy name
    const size_t slash = scoped.find('/', sizeof(kScopedPrefix) - 1);
    if (slash == std::string::npos) continue;
    const std::string tenant =
        scoped.substr(sizeof(kScopedPrefix) - 1,
                      slash - (sizeof(kScopedPrefix) - 1));
    Tenant& t = tenantLocked(tenant);
    t.backups++;
    if (const auto refs = store.backupRefs(scoped))
      for (const Fp fp : *refs) t.seen.add(fp);
    // Logical bytes from the per-backup usage blob (absent for stores
    // written before quotas existed: those backups cost 0 toward the byte
    // quota, which only ever under-counts).
    if (const auto blob = store.getBlob(usageBlobName(scoped))) {
      size_t offset = 0;
      if (const auto bytes = getVarint(*blob, offset))
        t.logicalBytes += *bytes;
    }
  }
  for (const auto& [tenant, t] : tenants_) setUsageGauges(tenant, *t);
}

std::optional<std::string> TenantRegistry::checkQuota(
    const std::string& tenant, uint64_t logicalBytes, uint64_t replacedBytes,
    bool replacesExisting) {
  std::lock_guard lock(mu_);
  Tenant& t = tenantLocked(tenant);
  if (quota_.maxBackups != 0 && !replacesExisting &&
      t.backups + 1 > quota_.maxBackups)
    return "tenant backup quota exceeded (" + std::to_string(quota_.maxBackups) +
           " backups)";
  const uint64_t credit = std::min(replacedBytes, t.logicalBytes);
  if (quota_.maxLogicalBytes != 0 &&
      t.logicalBytes - credit + logicalBytes > quota_.maxLogicalBytes)
    return "tenant logical-byte quota exceeded (" +
           std::to_string(quota_.maxLogicalBytes) + " bytes)";
  return std::nullopt;
}

DedupClassification TenantRegistry::recordCommit(
    const std::string& tenant, std::span<const Fp> newFps,
    std::span<const Fp> duplicateFps, uint64_t logicalBytes,
    uint64_t replacedBytes, bool replacesExisting) {
  DedupClassification out;
  out.newChunks = newFps.size();
  {
    std::lock_guard lock(mu_);
    Tenant& t = tenantLocked(tenant);
    for (const Fp fp : duplicateFps) {
      if (t.seen.maybeContains(fp))
        out.intraTenantDuplicates++;
      else
        out.crossTenantDuplicates++;
    }
    for (const Fp fp : newFps) t.seen.add(fp);
    for (const Fp fp : duplicateFps) t.seen.add(fp);
    t.logicalBytes -= std::min(replacedBytes, t.logicalBytes);
    t.logicalBytes += logicalBytes;
    if (!replacesExisting) t.backups++;
    setUsageGauges(tenant, t);
  }
  bumpCounter(tenant, "chunks", newFps.size() + duplicateFps.size());
  bumpCounter(tenant, "dedup_hits", duplicateFps.size());
  bumpCounter(tenant, "cross_tenant_dedup_hits", out.crossTenantDuplicates);
  bumpCounter(tenant, "backups_committed", 1);
  return out;
}

void TenantRegistry::recordDelete(const std::string& tenant,
                                  uint64_t logicalBytes) {
  {
    std::lock_guard lock(mu_);
    Tenant& t = tenantLocked(tenant);
    t.logicalBytes -= std::min(logicalBytes, t.logicalBytes);
    if (t.backups > 0) t.backups--;
    setUsageGauges(tenant, t);
  }
  bumpCounter(tenant, "backups_deleted", 1);
}

void TenantRegistry::recordRestore(const std::string& tenant) {
  bumpCounter(tenant, "restores", 1);
}

void TenantRegistry::recordQuotaReject(const std::string& tenant) {
  bumpCounter(tenant, "quota_rejects", 1);
}

uint64_t TenantRegistry::logicalBytes(const std::string& tenant) {
  std::lock_guard lock(mu_);
  return tenantLocked(tenant).logicalBytes;
}

uint64_t TenantRegistry::backupCount(const std::string& tenant) {
  std::lock_guard lock(mu_);
  return tenantLocked(tenant).backups;
}

TenantRegistry::Tenant& TenantRegistry::tenantLocked(
    const std::string& tenant) {
  auto& slot = tenants_[tenant];
  if (!slot) slot = std::make_unique<Tenant>();
  return *slot;
}

void TenantRegistry::bumpCounter(const std::string& tenant, const char* name,
                                 uint64_t n) {
  if (n == 0) return;
  obs::MetricsRegistry::global()
      .counter("tenant." + tenant + "." + name)
      .add(n);
}

void TenantRegistry::setUsageGauges(const std::string& tenant,
                                    const Tenant& t) {
  // Gauges are sharded adders, not settable levels: track the level by
  // applying the delta from the last published value.
  auto& reg = obs::MetricsRegistry::global();
  auto publish = [&](const char* name, int64_t value) {
    auto& g = reg.gauge("tenant." + tenant + "." + name);
    g.add(value - g.value());
  };
  publish("logical_bytes", static_cast<int64_t>(t.logicalBytes));
  publish("backups", static_cast<int64_t>(t.backups));
}

}  // namespace freqdedup::server
