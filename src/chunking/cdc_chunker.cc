#include "chunking/cdc_chunker.h"

#include <bit>

#include "common/check.h"

namespace freqdedup {

CdcChunker::CdcChunker(const CdcParams& params) : params_(params) {
  FDD_CHECK_MSG(std::has_single_bit(params_.avgSize),
                "avgSize must be a power of two");
  FDD_CHECK_MSG(params_.minSize >= params_.windowSize,
                "minSize must cover the Rabin window");
  FDD_CHECK_MSG(params_.minSize <= params_.avgSize &&
                    params_.avgSize <= params_.maxSize,
                "require minSize <= avgSize <= maxSize");
  mask_ = params_.avgSize - 1;
}

std::vector<ChunkSpan> CdcChunker::split(ByteView data) const {
  std::vector<ChunkSpan> chunks;
  if (data.empty()) return chunks;
  chunks.reserve(data.size() / params_.avgSize + 1);

  RabinWindow window(params_.windowSize, params_.poly);
  size_t start = 0;
  size_t pos = 0;
  while (pos < data.size()) {
    const uint64_t fp = window.slide(data[pos]);
    ++pos;
    const size_t len = pos - start;
    const bool atPattern =
        len >= params_.minSize && (fp & mask_) == mask_;
    const bool atMax = len >= params_.maxSize;
    if (atPattern || atMax) {
      chunks.push_back({start, static_cast<uint32_t>(len)});
      start = pos;
      window.reset();
    }
  }
  if (start < data.size()) {
    chunks.push_back({start, static_cast<uint32_t>(data.size() - start)});
  }
  return chunks;
}

}  // namespace freqdedup
