#include "chunking/cdc_chunker.h"

#include <bit>
#include <stdexcept>
#include <utility>

namespace freqdedup {

namespace {

/// Incremental CDC: the rolling window and the current chunk's bytes carry
/// across push() calls, so boundaries land exactly where split() puts them
/// regardless of append granularity.
class CdcChunkStream final : public ChunkStream {
 public:
  CdcChunkStream(const CdcParams& params, uint64_t mask, ChunkSink sink)
      : params_(params),
        mask_(mask),
        sink_(std::move(sink)),
        window_(params.windowSize, params.poly) {
    pending_.reserve(params_.maxSize);
  }

  void push(ByteView data) override {
    // Boundary detection scans the caller's buffer directly; only the
    // carry-over partial chunk at the end of the push is copied. A chunk
    // that completes within one push and has no carried prefix is emitted
    // as a view straight into `data` (zero-copy).
    size_t start = 0;  // begin of the not-yet-emitted run within `data`
    for (size_t pos = 0; pos < data.size(); ++pos) {
      const uint64_t fp = window_.slide(data[pos]);
      const size_t len = pending_.size() + (pos + 1 - start);
      const bool atPattern = len >= params_.minSize && (fp & mask_) == mask_;
      if (atPattern || len >= params_.maxSize) {
        if (pending_.empty()) {
          sink_(data.subspan(start, pos + 1 - start));
        } else {
          appendBytes(pending_, data.subspan(start, pos + 1 - start));
          sink_(ByteView(pending_.data(), pending_.size()));
          pending_.clear();
        }
        start = pos + 1;
        window_.reset();
      }
    }
    if (start < data.size()) appendBytes(pending_, data.subspan(start));
  }

  void flush() override {
    if (!pending_.empty()) {
      sink_(ByteView(pending_.data(), pending_.size()));
      pending_.clear();
    }
    window_.reset();  // a fresh object starts from a clean window
  }

 private:

  CdcParams params_;
  uint64_t mask_;
  ChunkSink sink_;
  RabinWindow window_;
  ByteVec pending_;  // bytes of the chunk under construction (<= maxSize)
};

}  // namespace

CdcChunker::CdcChunker(const CdcParams& params) : params_(params) {
  if (params_.windowSize == 0)
    throw std::invalid_argument("CdcParams: windowSize must be > 0");
  if (params_.avgSize == 0 || !std::has_single_bit(params_.avgSize))
    throw std::invalid_argument(
        "CdcParams: avgSize must be a non-zero power of two");
  if (params_.minSize < params_.windowSize)
    throw std::invalid_argument(
        "CdcParams: minSize must cover the Rabin window");
  if (params_.minSize > params_.avgSize || params_.avgSize > params_.maxSize)
    throw std::invalid_argument(
        "CdcParams: require minSize <= avgSize <= maxSize");
  mask_ = params_.avgSize - 1;
}

std::vector<ChunkSpan> CdcChunker::split(ByteView data) const {
  std::vector<ChunkSpan> chunks;
  if (data.empty()) return chunks;
  chunks.reserve(data.size() / params_.avgSize + 1);

  RabinWindow window(params_.windowSize, params_.poly);
  size_t start = 0;
  size_t pos = 0;
  while (pos < data.size()) {
    const uint64_t fp = window.slide(data[pos]);
    ++pos;
    const size_t len = pos - start;
    const bool atPattern =
        len >= params_.minSize && (fp & mask_) == mask_;
    const bool atMax = len >= params_.maxSize;
    if (atPattern || atMax) {
      chunks.push_back({start, static_cast<uint32_t>(len)});
      start = pos;
      window.reset();
    }
  }
  if (start < data.size()) {
    chunks.push_back({start, static_cast<uint32_t>(data.size() - start)});
  }
  return chunks;
}

std::unique_ptr<ChunkStream> CdcChunker::makeStream(ChunkSink sink) const {
  return std::make_unique<CdcChunkStream>(params_, mask_, std::move(sink));
}

}  // namespace freqdedup
