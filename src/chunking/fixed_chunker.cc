#include "chunking/fixed_chunker.h"

#include "common/check.h"

namespace freqdedup {

FixedChunker::FixedChunker(uint32_t chunkSize) : chunkSize_(chunkSize) {
  FDD_CHECK(chunkSize > 0);
}

std::vector<ChunkSpan> FixedChunker::split(ByteView data) const {
  std::vector<ChunkSpan> chunks;
  chunks.reserve(data.size() / chunkSize_ + 1);
  for (size_t off = 0; off < data.size(); off += chunkSize_) {
    const auto size =
        static_cast<uint32_t>(std::min<size_t>(chunkSize_, data.size() - off));
    chunks.push_back({off, size});
  }
  return chunks;
}

}  // namespace freqdedup
