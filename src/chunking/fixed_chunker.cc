#include "chunking/fixed_chunker.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace freqdedup {

namespace {

class FixedChunkStream final : public ChunkStream {
 public:
  FixedChunkStream(uint32_t chunkSize, ChunkSink sink)
      : chunkSize_(chunkSize), sink_(std::move(sink)) {
    pending_.reserve(chunkSize_);
  }

  void push(ByteView data) override {
    while (!data.empty()) {
      if (pending_.empty() && data.size() >= chunkSize_) {
        // Full chunk available in the caller's buffer: emit without copying.
        sink_(data.first(chunkSize_));
        data = data.subspan(chunkSize_);
        continue;
      }
      const size_t take =
          std::min<size_t>(chunkSize_ - pending_.size(), data.size());
      appendBytes(pending_, data.first(take));
      data = data.subspan(take);
      if (pending_.size() == chunkSize_) emit();
    }
  }

  void flush() override {
    if (!pending_.empty()) emit();
  }

 private:
  void emit() {
    sink_(ByteView(pending_.data(), pending_.size()));
    pending_.clear();
  }

  uint32_t chunkSize_;
  ChunkSink sink_;
  ByteVec pending_;
};

}  // namespace

FixedChunker::FixedChunker(uint32_t chunkSize) : chunkSize_(chunkSize) {
  if (chunkSize == 0)
    throw std::invalid_argument("FixedChunker: chunkSize must be > 0");
}

std::vector<ChunkSpan> FixedChunker::split(ByteView data) const {
  std::vector<ChunkSpan> chunks;
  chunks.reserve(data.size() / chunkSize_ + 1);
  for (size_t off = 0; off < data.size(); off += chunkSize_) {
    const auto size =
        static_cast<uint32_t>(std::min<size_t>(chunkSize_, data.size() - off));
    chunks.push_back({off, size});
  }
  return chunks;
}

std::unique_ptr<ChunkStream> FixedChunker::makeStream(ChunkSink sink) const {
  return std::make_unique<FixedChunkStream>(chunkSize_, std::move(sink));
}

}  // namespace freqdedup
