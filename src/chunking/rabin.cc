#include "chunking/rabin.h"

#include <bit>

#include "common/check.h"

namespace freqdedup {

int polyDegree(uint64_t p) {
  FDD_CHECK(p != 0);
  return 63 - std::countl_zero(p);
}

uint64_t polyMod(uint64_t hi, uint64_t lo, uint64_t d) {
  FDD_CHECK(d != 0);
  const int k = polyDegree(d);
  // Cancel set bits from the top of the 128-bit value downwards: a set bit at
  // combined position p (>= k) is cleared by xoring d shifted left by p - k.
  for (int i = 63; i >= 0; --i) {
    if (hi & (1ULL << i)) {
      const int s = 64 + i - k;  // shift of d within the 128-bit value
      if (s >= 64) {
        hi ^= d << (s - 64);
      } else {
        hi ^= d >> (64 - s);
        lo ^= d << s;
      }
    }
  }
  for (int i = 63; i >= k; --i) {
    if (lo & (1ULL << i)) lo ^= d << (i - k);
  }
  return lo;
}

uint64_t polyMulMod(uint64_t x, uint64_t y, uint64_t d) {
  // Schoolbook carry-less multiply into a 128-bit accumulator.
  uint64_t hi = 0;
  uint64_t lo = 0;
  for (int i = 0; i < 64; ++i) {
    if (y & (1ULL << i)) {
      lo ^= x << i;
      if (i > 0) hi ^= x >> (64 - i);
    }
  }
  return polyMod(hi, lo, d);
}

RabinWindow::RabinWindow(uint32_t windowSize, uint64_t poly)
    : poly_(poly), buf_(windowSize, 0) {
  FDD_CHECK_MSG(windowSize >= 2, "window too small");
  const int k = polyDegree(poly_);
  FDD_CHECK_MSG(k > 8, "polynomial degree must exceed 8");
  shift_ = k - 8;
  // appendTable_[j] folds the top byte j (about to overflow past degree k)
  // back into the fingerprint: T[j] = (j << k) mod poly, with the raw shifted
  // bits OR-ed in so append8 can use a single xor.
  const uint64_t t1 = polyMod(0, 1ULL << k, poly_);
  for (uint64_t j = 0; j < 256; ++j) {
    appendTable_[j] = polyMulMod(j, t1, poly_) | (j << k);
  }
  // expireTable_[b] = b * x^(8*(windowSize-1)) mod poly — the contribution
  // the oldest byte still has in the fingerprint at the moment it leaves the
  // window (it entered windowSize-1 appends ago).
  uint64_t sizeshift = 1;
  for (uint32_t i = 1; i < windowSize; ++i) sizeshift = append8(sizeshift, 0);
  for (uint64_t b = 0; b < 256; ++b) {
    expireTable_[b] = polyMulMod(b, sizeshift, poly_);
  }
}

uint64_t RabinWindow::append8(uint64_t fp, uint8_t b) const {
  return ((fp << 8) | b) ^ appendTable_[fp >> shift_];
}

uint64_t RabinWindow::slide(uint8_t in) {
  const uint8_t out = buf_[pos_];
  buf_[pos_] = in;
  pos_ = (pos_ + 1) % buf_.size();
  fp_ = append8(fp_ ^ expireTable_[out], in);
  return fp_;
}

void RabinWindow::reset() {
  std::fill(buf_.begin(), buf_.end(), 0);
  pos_ = 0;
  fp_ = 0;
}

}  // namespace freqdedup
