// Content-defined chunking with Rabin fingerprinting.
//
// Cuts a chunk boundary where the rolling Rabin fingerprint matches a content
// pattern (fp mod avgSize == avgSize-1), subject to configured minimum and
// maximum chunk sizes — the scheme described in Section 2.1 of the paper.
// Boundaries depend only on local content, so insertions/deletions shift
// chunk boundaries only locally (content-shift robustness).
#pragma once

#include <memory>

#include "chunking/chunker.h"
#include "chunking/rabin.h"

namespace freqdedup {

struct CdcParams {
  uint32_t minSize = 2048;
  uint32_t avgSize = 8192;   // must be a power of two
  uint32_t maxSize = 16384;
  uint32_t windowSize = 48;
  uint64_t poly = kDefaultRabinPoly;
};

class CdcChunker final : public Chunker {
 public:
  /// Throws std::invalid_argument on out-of-range parameters (zero sizes,
  /// non-power-of-two avgSize, minSize below the window, min > avg > max).
  explicit CdcChunker(const CdcParams& params = {});

  [[nodiscard]] std::vector<ChunkSpan> split(ByteView data) const override;

  [[nodiscard]] std::unique_ptr<ChunkStream> makeStream(
      ChunkSink sink) const override;

  [[nodiscard]] const CdcParams& params() const { return params_; }

 private:
  CdcParams params_;
  uint64_t mask_;
};

}  // namespace freqdedup
