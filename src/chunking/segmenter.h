// Variable-size segmentation over a chunk stream.
//
// Segments group adjacent chunks into ~1 MB units; they are the scope of both
// MinHash encryption (Algorithm 4) and scrambling (Algorithm 5). The boundary
// rule follows Sparse Indexing [Lillibridge et al., FAST'09], as prescribed in
// Section 7.1 of the paper: a boundary is placed after a chunk when
//   (i) the running segment size is at least minBytes AND the chunk's
//       fingerprint modulo a divisor equals divisor-1, or
//  (ii) including the next chunk would exceed maxBytes.
// The divisor controls the average segment size: with avgChunkBytes-sized
// chunks, divisor = avgBytes / avgChunkBytes gives segments of ~avgBytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/fingerprint.h"

namespace freqdedup {

struct SegmentParams {
  uint64_t minBytes = 512 * 1024;
  uint64_t avgBytes = 1024 * 1024;
  uint64_t maxBytes = 2 * 1024 * 1024;
  /// Expected average chunk size of the stream; used to derive the divisor.
  uint64_t avgChunkBytes = 8192;

  [[nodiscard]] uint64_t divisor() const {
    const uint64_t d = avgBytes / avgChunkBytes;
    return d == 0 ? 1 : d;
  }
};

/// A segment as a half-open range [begin, end) of record indices.
struct Segment {
  size_t begin = 0;
  size_t end = 0;

  [[nodiscard]] size_t count() const { return end - begin; }
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Splits `records` into consecutive, exhaustive segments.
std::vector<Segment> segmentRecords(std::span<const ChunkRecord> records,
                                    const SegmentParams& params = {});

/// Minimum fingerprint of a segment (Algorithm 4, line 5). Requires a
/// non-empty segment.
Fp segmentMinFingerprint(std::span<const ChunkRecord> records,
                         const Segment& seg);

}  // namespace freqdedup
