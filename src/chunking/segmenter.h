// Variable-size segmentation over a chunk stream.
//
// Segments group adjacent chunks into ~1 MB units; they are the scope of both
// MinHash encryption (Algorithm 4) and scrambling (Algorithm 5). The boundary
// rule follows Sparse Indexing [Lillibridge et al., FAST'09], as prescribed in
// Section 7.1 of the paper: a boundary is placed after a chunk when
//   (i) the running segment size is at least minBytes AND the chunk's
//       fingerprint modulo a divisor equals divisor-1, or
//  (ii) including the next chunk would exceed maxBytes.
// The divisor controls the average segment size: with avgChunkBytes-sized
// chunks, divisor = avgBytes / avgChunkBytes gives segments of ~avgBytes.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/fingerprint.h"

namespace freqdedup {

struct SegmentParams {
  uint64_t minBytes = 512 * 1024;
  uint64_t avgBytes = 1024 * 1024;
  uint64_t maxBytes = 2 * 1024 * 1024;
  /// Expected average chunk size of the stream; used to derive the divisor.
  uint64_t avgChunkBytes = 8192;

  [[nodiscard]] uint64_t divisor() const {
    const uint64_t d = avgBytes / avgChunkBytes;
    return d == 0 ? 1 : d;
  }

  /// Throws std::invalid_argument on out-of-range parameters (zero sizes or
  /// minBytes <= avgBytes <= maxBytes violated).
  void validate() const;
};

/// A segment as a half-open range [begin, end) of record indices.
struct Segment {
  size_t begin = 0;
  size_t end = 0;

  [[nodiscard]] size_t count() const { return end - begin; }
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Receives each completed segment. Segments arrive in order and exhaustively
/// cover the pushed records.
using SegmentSink = std::function<void(const Segment&)>;

/// Incremental segmentation over an append-only record stream.
///
/// Applies the same Sparse-Indexing boundary rule as segmentRecords() (which
/// is implemented on top of this class), so pushing records one at a time
/// yields exactly the batch segmentation. A single push() can emit up to two
/// segments: the open segment is closed *before* admitting a record that
/// would overflow maxBytes, and *after* admitting a record that matches the
/// fingerprint pattern. finish() closes the final segment; record indices
/// keep counting across finish() so one segmenter can span multiple flushes.
class StreamSegmenter {
 public:
  /// Throws std::invalid_argument on invalid params (see
  /// SegmentParams::validate).
  StreamSegmenter(const SegmentParams& params, SegmentSink sink);

  void push(const ChunkRecord& record);

  /// Closes the open segment, if any.
  void finish();

  /// Total records pushed so far (== end of the last emitted segment once
  /// finish() has run).
  [[nodiscard]] size_t recordCount() const { return next_; }

 private:
  void close();

  SegmentParams params_;
  uint64_t divisor_;
  SegmentSink sink_;
  size_t begin_ = 0;   // first record of the open segment
  size_t next_ = 0;    // index the next pushed record will get
  uint64_t acc_ = 0;   // bytes accumulated in the open segment
};

/// Splits `records` into consecutive, exhaustive segments.
std::vector<Segment> segmentRecords(std::span<const ChunkRecord> records,
                                    const SegmentParams& params = {});

/// Minimum fingerprint of a segment (Algorithm 4, line 5). Requires a
/// non-empty segment.
Fp segmentMinFingerprint(std::span<const ChunkRecord> records,
                         const Segment& seg);

}  // namespace freqdedup
