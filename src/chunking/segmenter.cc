#include "chunking/segmenter.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/check.h"

namespace freqdedup {

void SegmentParams::validate() const {
  if (minBytes == 0)
    throw std::invalid_argument("SegmentParams: minBytes must be > 0");
  if (avgChunkBytes == 0)
    throw std::invalid_argument("SegmentParams: avgChunkBytes must be > 0");
  if (minBytes > avgBytes || avgBytes > maxBytes)
    throw std::invalid_argument(
        "SegmentParams: require minBytes <= avgBytes <= maxBytes");
}

StreamSegmenter::StreamSegmenter(const SegmentParams& params, SegmentSink sink)
    : params_(params), sink_(std::move(sink)) {
  params_.validate();
  divisor_ = params_.divisor();
}

void StreamSegmenter::push(const ChunkRecord& record) {
  // Close before admitting a record that would overflow maxBytes — the
  // stream form of the batch rule's one-record lookahead.
  if (next_ > begin_ && acc_ + record.size > params_.maxBytes) close();
  acc_ += record.size;
  ++next_;
  if (acc_ >= params_.minBytes && (record.fp % divisor_) == divisor_ - 1)
    close();
}

void StreamSegmenter::finish() {
  if (next_ > begin_) close();
}

void StreamSegmenter::close() {
  sink_({begin_, next_});
  begin_ = next_;
  acc_ = 0;
}

std::vector<Segment> segmentRecords(std::span<const ChunkRecord> records,
                                    const SegmentParams& params) {
  std::vector<Segment> segments;
  StreamSegmenter segmenter(
      params, [&segments](const Segment& seg) { segments.push_back(seg); });
  for (const ChunkRecord& record : records) segmenter.push(record);
  segmenter.finish();
  return segments;
}

Fp segmentMinFingerprint(std::span<const ChunkRecord> records,
                         const Segment& seg) {
  FDD_CHECK_MSG(seg.begin < seg.end && seg.end <= records.size(),
                "empty or out-of-range segment");
  Fp minFp = records[seg.begin].fp;
  for (size_t i = seg.begin + 1; i < seg.end; ++i)
    minFp = std::min(minFp, records[i].fp);
  return minFp;
}

}  // namespace freqdedup
