#include "chunking/segmenter.h"

#include <algorithm>

#include "common/check.h"

namespace freqdedup {

std::vector<Segment> segmentRecords(std::span<const ChunkRecord> records,
                                    const SegmentParams& params) {
  FDD_CHECK(params.minBytes > 0);
  FDD_CHECK(params.minBytes <= params.avgBytes &&
            params.avgBytes <= params.maxBytes);
  const uint64_t divisor = params.divisor();

  std::vector<Segment> segments;
  size_t begin = 0;
  uint64_t acc = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    acc += records[i].size;
    const bool atPattern =
        acc >= params.minBytes && (records[i].fp % divisor) == divisor - 1;
    const bool nextOverflows =
        i + 1 < records.size() && acc + records[i + 1].size > params.maxBytes;
    const bool last = i + 1 == records.size();
    if (atPattern || nextOverflows || last) {
      segments.push_back({begin, i + 1});
      begin = i + 1;
      acc = 0;
    }
  }
  return segments;
}

Fp segmentMinFingerprint(std::span<const ChunkRecord> records,
                         const Segment& seg) {
  FDD_CHECK_MSG(seg.begin < seg.end && seg.end <= records.size(),
                "empty or out-of-range segment");
  Fp minFp = records[seg.begin].fp;
  for (size_t i = seg.begin + 1; i < seg.end; ++i)
    minFp = std::min(minFp, records[i].fp);
  return minFp;
}

}  // namespace freqdedup
