// Rabin fingerprinting over GF(2) polynomials.
//
// Implements the rolling hash used by content-defined chunking
// (Section 2.1 of the paper; Rabin 1981, as popularized by LBFS). A window of
// the last `window` bytes is fingerprinted as a polynomial modulo a fixed
// irreducible polynomial; appending a byte and expiring the oldest byte are
// both O(1) via precomputed tables.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace freqdedup {

/// Degree-53 irreducible polynomial (the LBFS default).
inline constexpr uint64_t kDefaultRabinPoly = 0x3DA3358B4DC173ULL;

/// Degree of a polynomial (index of the highest set bit). Requires p != 0.
int polyDegree(uint64_t p);

/// (x, y) interpreted as polynomials over GF(2): returns x*y mod d.
uint64_t polyMulMod(uint64_t x, uint64_t y, uint64_t d);

/// Reduces the 128-bit polynomial (hi*2^64 + lo) modulo d.
uint64_t polyMod(uint64_t hi, uint64_t lo, uint64_t d);

/// Rolling Rabin fingerprint over a fixed-size byte window.
class RabinWindow {
 public:
  explicit RabinWindow(uint32_t windowSize = 48,
                       uint64_t poly = kDefaultRabinPoly);

  /// Slides one byte into the window (expiring the oldest) and returns the
  /// updated fingerprint.
  uint64_t slide(uint8_t in);

  /// Resets the window to all-zero bytes and fingerprint 0.
  void reset();

  [[nodiscard]] uint64_t fingerprint() const { return fp_; }
  [[nodiscard]] uint32_t windowSize() const {
    return static_cast<uint32_t>(buf_.size());
  }

 private:
  uint64_t append8(uint64_t fp, uint8_t b) const;

  uint64_t poly_;
  int shift_;
  uint64_t appendTable_[256];
  uint64_t expireTable_[256];
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
  uint64_t fp_ = 0;
};

}  // namespace freqdedup
