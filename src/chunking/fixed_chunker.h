// Fixed-size chunking (the paper's VM dataset uses 4 KB fixed-size chunks).
#pragma once

#include "chunking/chunker.h"

namespace freqdedup {

class FixedChunker final : public Chunker {
 public:
  /// Throws std::invalid_argument when chunkSize is zero.
  explicit FixedChunker(uint32_t chunkSize = 4096);

  [[nodiscard]] std::vector<ChunkSpan> split(ByteView data) const override;

  [[nodiscard]] std::unique_ptr<ChunkStream> makeStream(
      ChunkSink sink) const override;

  [[nodiscard]] uint32_t chunkSize() const { return chunkSize_; }

 private:
  uint32_t chunkSize_;
};

}  // namespace freqdedup
