// Chunking interfaces.
//
// A chunker partitions a byte stream into chunks; deduplication then operates
// on chunk granularity (Section 2.1). Two families are provided, matching the
// paper's datasets: content-defined chunking with min/avg/max bounds (FSL,
// synthetic) and fixed-size chunking (VM).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace freqdedup {

/// A chunk as a [offset, offset+size) view into the chunked buffer.
struct ChunkSpan {
  size_t offset = 0;
  uint32_t size = 0;

  friend bool operator==(const ChunkSpan&, const ChunkSpan&) = default;
};

class Chunker {
 public:
  virtual ~Chunker() = default;

  /// Splits `data` into consecutive, exhaustive, non-overlapping chunks.
  /// An empty input yields no chunks.
  [[nodiscard]] virtual std::vector<ChunkSpan> split(ByteView data) const = 0;
};

/// Extracts the bytes of one chunk.
inline ByteView chunkBytes(ByteView data, const ChunkSpan& c) {
  return data.subspan(c.offset, c.size);
}

}  // namespace freqdedup
