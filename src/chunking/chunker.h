// Chunking interfaces.
//
// A chunker partitions a byte stream into chunks; deduplication then operates
// on chunk granularity (Section 2.1). Two families are provided, matching the
// paper's datasets: content-defined chunking with min/avg/max bounds (FSL,
// synthetic) and fixed-size chunking (VM).
//
// Chunking comes in two equivalent forms: the one-shot split() over a
// complete buffer, and an incremental ChunkStream (makeStream()) that accepts
// the same bytes in arbitrary-granularity appends and emits the identical
// chunk sequence — the basis of the session-based streaming client, which
// never holds a whole object in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.h"

namespace freqdedup {

/// A chunk as a [offset, offset+size) view into the chunked buffer.
struct ChunkSpan {
  size_t offset = 0;
  uint32_t size = 0;

  friend bool operator==(const ChunkSpan&, const ChunkSpan&) = default;
};

/// Receives each completed chunk's bytes. The view is only valid for the
/// duration of the call; copy it to retain the chunk.
using ChunkSink = std::function<void(ByteView chunk)>;

/// Incremental chunking over an append-only byte stream.
///
/// Guarantee: for any partition of a buffer into push() calls (including one
/// byte at a time), the emitted chunk sequence is byte-identical to
/// Chunker::split() over the whole buffer. flush() emits the trailing partial
/// chunk (ending the current object) and resets the stream so it can chunk
/// the next object.
class ChunkStream {
 public:
  virtual ~ChunkStream() = default;

  /// Appends bytes; invokes the sink once per completed chunk.
  virtual void push(ByteView data) = 0;

  /// Ends the object: emits the final partial chunk, if any, and resets the
  /// stream state for the next object.
  virtual void flush() = 0;
};

class Chunker {
 public:
  virtual ~Chunker() = default;

  /// Splits `data` into consecutive, exhaustive, non-overlapping chunks.
  /// An empty input yields no chunks.
  [[nodiscard]] virtual std::vector<ChunkSpan> split(ByteView data) const = 0;

  /// Creates an incremental stream equivalent to split() (see ChunkStream).
  [[nodiscard]] virtual std::unique_ptr<ChunkStream> makeStream(
      ChunkSink sink) const = 0;
};

/// Extracts the bytes of one chunk.
inline ByteView chunkBytes(ByteView data, const ChunkSpan& c) {
  return data.subspan(c.offset, c.size);
}

}  // namespace freqdedup
