// Lillibridge-style snapshot chain over real content (the paper's Synthetic
// dataset, Section 5.1): starting from an initial snapshot, each subsequent
// snapshot randomly picks a fraction of files, modifies a fraction of their
// content in place, and adds a fixed amount of new data. Snapshots are
// chunked with real content-defined chunking to produce backup traces.
#pragma once

#include <vector>

#include "chunking/chunker.h"
#include "datagen/file_corpus.h"
#include "trace/backup_trace.h"

namespace freqdedup {

struct SnapshotGenParams {
  uint64_t seed = 13;
  int snapshots = 10;            // snapshots derived from the initial one
  double fileModifyProb = 0.02;  // paper: 2 % of files per snapshot
  double contentModFrac = 0.025; // paper: 2.5 % of a picked file's content
  uint64_t newBytesPerSnapshot = 2ULL * 1024 * 1024;  // paper: 10 MB, scaled
  uint32_t newFileBytes = 256 * 1024;
};

/// Applies one snapshot step in place; returns the number of modified files.
size_t mutateSnapshot(FileCorpus& corpus, const SnapshotGenParams& params,
                      Rng& rng, int snapshotIndex);

/// Chunks one snapshot (files concatenated in name order) into a backup
/// trace using the provided chunker; fingerprints are truncated SHA-256 of
/// chunk content.
BackupTrace chunkSnapshot(const FileCorpus& corpus, const Chunker& chunker,
                          const std::string& label,
                          int fpBits = kFullFpBits);

/// Generates the whole synthetic dataset: the initial snapshot (index 0, the
/// publicly available image in the paper's threat model) followed by
/// `params.snapshots` derived snapshots. Returns traces only; use the
/// `keepFinalSnapshot` output to also retain the last snapshot's content for
/// content-pipeline experiments.
Dataset generateSyntheticDataset(const CorpusParams& corpusParams,
                                 const SnapshotGenParams& params,
                                 const Chunker& chunker,
                                 FileCorpus* keepFinalSnapshot = nullptr);

}  // namespace freqdedup
