// FSL-like backup trace generator.
//
// Substitutes for the paper's FSL Fslhomes dataset (Section 5.1): several
// users' home directories, snapshotted as monthly full backups, variable-size
// chunks (8 KB average, 48-bit fingerprints). The generator is a file-level
// evolution model reproducing the workload properties the paper's results
// depend on:
//   - chunk locality: each file is a stable chunk sequence; backups
//     concatenate files in stable order; modifications hit few clustered
//     regions (Section 1);
//   - skewed frequency: a Zipf-weighted pool of "hot" chunk contents recurs
//     across files (Figure 1), and some files exist in near-duplicate copies
//     (giving both intra-backup duplication and frequency ties);
//   - monthly churn: files are modified/deleted/created between backups, so
//     older auxiliary backups share less content with the latest backup.
// All randomness derives from the seed; the same params yield the same
// dataset on every platform.
#pragma once

#include <cstdint>

#include "trace/backup_trace.h"

namespace freqdedup {

struct FslGenParams {
  uint64_t seed = 42;
  int users = 6;
  int backups = 5;  // monthly full backups (paper: Jan 22 .. May 21)
  int filesPerUser = 160;

  // File sizes in chunks: lognormal, clamped.
  double logChunksMu = 3.3;     // median ~27 chunks (~220 KB at 8 KB)
  double logChunksSigma = 1.1;
  uint32_t minFileChunks = 2;
  uint32_t maxFileChunks = 3000;

  // Chunk sizes: shifted-exponential approximation of Rabin CDC output.
  uint32_t minChunkBytes = 2048;
  uint32_t avgChunkBytes = 8192;
  uint32_t maxChunkBytes = 16384;

  // Intra-backup duplication. Duplicate content recurs as multi-chunk
  // *motifs* (shared templates, headers, embedded libraries): when a fresh
  // chunk slot rolls "hot", a whole Zipf-weighted motif sequence is inserted.
  // Motifs both skew the frequency distribution (Figure 1) and create the
  // frequency ties among motif neighbors that limit rank-pairing accuracy in
  // real traces (Section 4.1).
  // Motifs concentrate in shared content: personal documents rarely embed
  // globally popular sequences, while shared trees are full of them. The
  // imbalance controls how often the locality walk meets pure frequency
  // ties (count-1 contexts) versus dominant, correctly-rankable edges.
  double hotChunkProbShared = 0.07;    // motif rate inside shared templates
  double hotChunkProbPersonal = 0.008; // motif rate inside personal files
  size_t hotPoolSize = 500;            // number of distinct motifs

  // A handful of super-hot chunks (the paper's ~30 chunks occurring >10^4
  // times, Figure 1). They are embedded *inside* motifs (correlated
  // popularity: the most frequent chunk's neighbors are themselves popular,
  // with distinctive counts), plus lightly scattered everywhere.
  size_t superChunkCount = 12;
  double superInMotifProb = 0.5;  // motif carries one super chunk
  double superScatterProb = 0.006; // stray super chunk at any fresh slot
  double hotZipfAlpha = 1.05;
  // Motif lengths are heavy-tailed (lognormal): most motifs are a few
  // chunks (shared headers), but the popular tail is hundreds of chunks long
  // (shared application bundles, caches) — these long runs are what let the
  // locality walk ride dominant co-occurrence edges far from its seed.
  double motifLenMu = 1.2;
  double motifLenSigma = 1.6;
  uint32_t motifMaxLen = 400;
  double fileCopyProb = 0.20;   // file born with a near-duplicate copy
  double copyDivergence = 0.06; // fraction of diverged chunks in the copy

  // Cross-user shared files (dotfiles, shared datasets, checked-out trees):
  // identical chunk sequences across users that then evolve independently.
  // These form the medium-frequency "skeleton" (chunk frequencies ~ number
  // of users) that the locality-based attack crawls via dominant
  // co-occurrence counts.
  size_t sharedTemplateFiles = 150;
  // Shared files are big (project checkouts, media libraries): identical
  // runs must span multiple MinHash segments so that segment interiors align
  // across users — with runs shorter than a segment, every copy would land
  // under a different segment minimum and cross-user deduplication would
  // collapse (the paper's combined defense costs <= 3.6 % saving, which
  // requires long aligned duplicate runs).
  double templateLogChunksMu = 4.8;   // median ~120 chunks (~1 MB)
  double templateLogChunksSigma = 0.9;
  // Per-template adoption probability is itself random (uniform in
  // [adoptProbMin, adoptProbMax]): different shared files live in different
  // numbers of home directories. The resulting *distinct* co-occurrence
  // counts act as matching signatures for rank-pairing — uniform adoption
  // would make every cross-file tie a coin flip.
  double adoptProbMin = 0.25;
  double adoptProbMax = 1.0;
  /// Shared trees (system files, media, checkouts) are modified far less
  /// often than personal documents; per-user edits to shared files are what
  /// make MinHash segments diverge across users, so this multiplier directly
  /// controls the defense's storage cost (paper: <= 3.6 % saving loss).
  double sharedModifyFactor = 0.1;

  // Monthly evolution.
  double fileModifyProb = 0.50;      // file touched between backups
  double modifyRegionFrac = 0.16;    // mean fraction of chunks per touched file
  double wholeFileRewriteProb = 0.06;
  double fileDeleteProb = 0.03;
  double fileCreateFrac = 0.06;      // new files per backup per user
};

/// Generates the full monthly-backup dataset (labels "Jan 22" .. "May 21"
/// for the default five backups).
Dataset generateFslDataset(const FslGenParams& params = {});

}  // namespace freqdedup
