// VM-like backup trace generator.
//
// Substitutes for the paper's course VM dataset (Section 5.1): weekly
// snapshots of students' virtual machine disk images, 4 KB fixed-size chunks,
// zero-filled chunks already removed. The model captures the dataset's three
// defining behaviours:
//   - all students start from the same base image, so cross-user redundancy
//     dominates and the dedup ratio is very high;
//   - weekly changes are in-place block rewrites (disk images do not shift
//     content), split between student-specific edits and course-wide shared
//     updates (everyone installs the same packages);
//   - a heavy-churn window mid-course rewrites most of each image
//     ("users have heavy activities during these weeks"), which is what
//     makes auxiliary backups before the window useless against targets
//     after it (Figures 5(c), 6(c), 7(c)).
#pragma once

#include <cstdint>

#include "trace/backup_trace.h"

namespace freqdedup {

struct VmGenParams {
  uint64_t seed = 7;
  int users = 8;
  int weeks = 13;
  uint32_t chunkBytes = 4096;
  size_t baseImageChunks = 24'000;  // ~94 MB image at 4 KB

  double initialDivergence = 0.01;  // students diverge slightly at week 1

  // Weekly churn as a fraction of the image.
  double lightModFrac = 0.02;
  double heavyModFrac = 0.95;
  int heavyWeekFirst = 5;  // transitions INTO weeks [first, last] are heavy
  int heavyWeekLast = 8;

  /// Fraction of a week's modifications that are course-wide (identical
  /// content and position for every student).
  double sharedUpdateFrac = 0.85;

  double newDataFrac = 0.005;  // image growth per week

  /// Mean length (in chunks) of a contiguous modified region. Edits come in
  /// few large regions (new files / package payloads written contiguously),
  /// not scattered single-block patches — scattered edits would perturb
  /// every MinHash segment's minimum and inflate the defense's storage cost.
  double meanRegionChunks = 512.0;

  // Intra-image duplication: common multi-chunk motifs (shared library
  // pages, templates) recurring inside and across images.
  double hotChunkProb = 0.03;
  size_t hotPoolSize = 800;
  double hotZipfAlpha = 1.05;
  double motifLenMu = 1.2;   // lognormal motif lengths (heavy tail)
  double motifLenSigma = 1.6;
  uint32_t motifMaxLen = 400;
};

/// Generates the weekly dataset (labels "week 1" .. "week N").
Dataset generateVmDataset(const VmGenParams& params = {});

}  // namespace freqdedup
