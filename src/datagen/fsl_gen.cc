#include "datagen/fsl_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace freqdedup {

namespace {

struct FileState {
  uint64_t id = 0;  // stable ordering key (directory-walk position)
  bool shared = false;  // copy of a cross-user template
  std::vector<ChunkRecord> chunks;
};

class FslWorld {
 public:
  explicit FslWorld(const FslGenParams& params)
      : params_(params),
        rng_(params.seed),
        hotZipf_(params.hotPoolSize, params.hotZipfAlpha),
        superZipf_(std::max<size_t>(1, params.superChunkCount), 1.9) {
    superChunks_.reserve(params_.superChunkCount);
    for (size_t i = 0; i < params_.superChunkCount; ++i)
      superChunks_.push_back(freshUniqueChunk());
    hotPool_.reserve(params_.hotPoolSize);
    for (size_t i = 0; i < params_.hotPoolSize; ++i) {
      std::vector<ChunkRecord> motif;
      const size_t len = std::clamp<size_t>(
          static_cast<size_t>(1.0 + rng_.lognormal(params_.motifLenMu,
                                                   params_.motifLenSigma)),
          1, params_.motifMaxLen);
      motif.reserve(len);
      for (size_t k = 0; k < len; ++k) motif.push_back(freshUniqueChunk());
      if (!superChunks_.empty() && rng_.bernoulli(params_.superInMotifProb)) {
        motif[rng_.pickIndex(motif.size())] =
            superChunks_[superZipf_.sample(rng_)];
      }
      hotPool_.push_back(std::move(motif));
    }
  }

  Dataset generate() {
    Dataset dataset;
    dataset.name = "fsl-like";
    static const char* kLabels[] = {"Jan 22", "Feb 22", "Mar 22", "Apr 21",
                                    "May 21"};
    for (int u = 0; u < params_.users; ++u) users_.push_back(initialUser());
    for (int b = 0; b < params_.backups; ++b) {
      if (b > 0) {
        for (auto& user : users_) evolveUser(user);
      }
      BackupTrace backup;
      backup.label = b < 5 ? kLabels[b] : "backup " + std::to_string(b + 1);
      for (const auto& user : users_) {
        for (const FileState& file : user) {
          backup.records.insert(backup.records.end(), file.chunks.begin(),
                                file.chunks.end());
        }
      }
      dataset.backups.push_back(std::move(backup));
    }
    return dataset;
  }

 private:
  uint32_t sampleChunkSize() {
    const double mean =
        static_cast<double>(params_.avgChunkBytes - params_.minChunkBytes);
    const double extra = rng_.exponential(1.0 / std::max(1.0, mean));
    const auto size = static_cast<uint32_t>(
        static_cast<double>(params_.minChunkBytes) + extra);
    return std::clamp(size, params_.minChunkBytes, params_.maxChunkBytes);
  }

  ChunkRecord freshUniqueChunk() {
    return ChunkRecord{rng_.next(), sampleChunkSize()};
  }

  /// Appends one fresh slot's worth of content: usually one unique chunk,
  /// sometimes a hot motif *prefix*. Prefix (rather than whole-motif)
  /// insertion makes frequencies strictly decrease along a motif — real
  /// traces have a singular most-frequent chunk, not a plateau of exact
  /// ties — while preserving the strong adjacency that lets the
  /// locality-based attack crawl through popular content.
  void appendFresh(std::vector<ChunkRecord>& out, double hotProb) {
    if (!superChunks_.empty() && rng_.bernoulli(params_.superScatterProb)) {
      // Zipf-weighted: super-chunk frequencies stay well separated, keeping
      // their global frequency ranks stable across backups (the paper's
      // premise for seeding with u top-frequency pairs).
      out.push_back(superChunks_[superZipf_.sample(rng_)]);
      return;
    }
    if (rng_.bernoulli(hotProb)) {
      const auto& motif = hotPool_[hotZipf_.sample(rng_)];
      // Prefix length proportional to the motif: long motifs usually recur
      // nearly whole (bundles are copied in full), short ones vary more.
      const double meanPrefix =
          std::max(1.0, 0.7 * static_cast<double>(motif.size()));
      const size_t len = std::clamp<size_t>(
          1 + rng_.geometric(1.0 / meanPrefix), 1, motif.size());
      out.insert(out.end(), motif.begin(),
                 motif.begin() + static_cast<ptrdiff_t>(len));
      return;
    }
    out.push_back(freshUniqueChunk());
  }

  size_t sampleFileChunkCount(double mu, double sigma) {
    const double n = rng_.lognormal(mu, sigma);
    return std::clamp<size_t>(static_cast<size_t>(n), params_.minFileChunks,
                              params_.maxFileChunks);
  }

  FileState freshFile(double hotProb) {
    return freshFileSized(hotProb, params_.logChunksMu,
                          params_.logChunksSigma);
  }

  FileState freshFileSized(double hotProb, double mu, double sigma) {
    FileState file;
    file.id = nextFileId_++;
    const size_t n = sampleFileChunkCount(mu, sigma);
    file.chunks.reserve(n);
    while (file.chunks.size() < n) appendFresh(file.chunks, hotProb);
    return file;
  }

  /// A near-duplicate of `original` with a small diverged region.
  FileState copyOf(const FileState& original) {
    FileState copy;
    copy.id = nextFileId_++;
    copy.chunks = original.chunks;
    const auto diverged = static_cast<size_t>(
        params_.copyDivergence * static_cast<double>(copy.chunks.size()));
    if (diverged > 0 && !copy.chunks.empty()) {
      const size_t start = rng_.pickIndex(copy.chunks.size());
      for (size_t k = 0; k < diverged; ++k)
        copy.chunks[(start + k) % copy.chunks.size()] = freshUniqueChunk();
    }
    return copy;
  }

  std::vector<FileState> initialUser() {
    if (templates_.empty() && params_.sharedTemplateFiles > 0) {
      templates_.reserve(params_.sharedTemplateFiles);
      templateAdoptProb_.reserve(params_.sharedTemplateFiles);
      for (size_t t = 0; t < params_.sharedTemplateFiles; ++t) {
        templates_.push_back(
            freshFileSized(params_.hotChunkProbShared,
                           params_.templateLogChunksMu,
                           params_.templateLogChunksSigma)
                .chunks);
        templateAdoptProb_.push_back(
            params_.adoptProbMin +
            rng_.uniformReal() * (params_.adoptProbMax - params_.adoptProbMin));
      }
    }
    std::vector<FileState> files;
    files.reserve(static_cast<size_t>(params_.filesPerUser) * 2 +
                  templates_.size());
    // Shared files first (they sit at stable positions in every user's walk
    // order); each user's copy evolves independently afterwards.
    for (size_t t = 0; t < templates_.size(); ++t) {
      if (!rng_.bernoulli(templateAdoptProb_[t])) continue;
      FileState file;
      file.id = nextFileId_++;
      file.shared = true;
      file.chunks = templates_[t];
      files.push_back(std::move(file));
    }
    for (int f = 0; f < params_.filesPerUser; ++f) {
      files.push_back(freshFile(params_.hotChunkProbPersonal));
      if (rng_.bernoulli(params_.fileCopyProb))
        files.push_back(copyOf(files.back()));
    }
    return files;
  }

  /// Clustered in-place modification of one file (the paper's chunk-locality
  /// premise: changes appear in few clustered regions).
  void modifyFile(FileState& file) {
    if (file.chunks.empty()) return;
    const int regions = 1 + static_cast<int>(rng_.bernoulli(0.3));
    for (int r = 0; r < regions; ++r) {
      if (file.chunks.empty()) break;  // every chunk deleted by a prior region
      const double meanLen = std::max(
          1.0, params_.modifyRegionFrac *
                   static_cast<double>(file.chunks.size()) /
                   static_cast<double>(regions));
      const size_t len = std::max<uint64_t>(
          1, rng_.geometric(1.0 / (meanLen + 1.0)));
      const size_t start = rng_.pickIndex(file.chunks.size());
      std::vector<ChunkRecord> updated;
      updated.reserve(file.chunks.size() + 2);
      const size_t end = std::min(file.chunks.size(), start + len);
      updated.insert(updated.end(), file.chunks.begin(),
                     file.chunks.begin() + static_cast<ptrdiff_t>(start));
      for (size_t i = start; i < end; ++i) {
        const double roll = rng_.uniformReal();
        if (roll < 0.92) {
          // content replaced in place (CDC boundaries resync, so chunk
          // counts usually hold)
          appendFresh(updated, params_.hotChunkProbPersonal);
        } else if (roll < 0.96) {
          // deletion: chunk vanishes
        } else {
          appendFresh(updated, params_.hotChunkProbPersonal);  // insertion
          appendFresh(updated, params_.hotChunkProbPersonal);
        }
      }
      updated.insert(updated.end(),
                     file.chunks.begin() + static_cast<ptrdiff_t>(end),
                     file.chunks.end());
      file.chunks = std::move(updated);
    }
  }

  void evolveUser(std::vector<FileState>& files) {
    std::vector<FileState> survivors;
    survivors.reserve(files.size());
    for (FileState& file : files) {
      const double factor = file.shared ? params_.sharedModifyFactor : 1.0;
      if (rng_.bernoulli(params_.fileDeleteProb * factor)) continue;
      if (rng_.bernoulli(params_.wholeFileRewriteProb * factor)) {
        FileState rewritten = freshFile(params_.hotChunkProbPersonal);
        rewritten.id = file.id;  // same path, new content
        survivors.push_back(std::move(rewritten));
        continue;
      }
      const double modifyProb =
          file.shared ? params_.fileModifyProb * params_.sharedModifyFactor
                      : params_.fileModifyProb;
      if (rng_.bernoulli(modifyProb)) modifyFile(file);
      survivors.push_back(std::move(file));
    }
    const auto created = static_cast<int>(
        params_.fileCreateFrac * static_cast<double>(params_.filesPerUser));
    for (int f = 0; f < created; ++f) {
      survivors.push_back(freshFile(params_.hotChunkProbPersonal));
      if (rng_.bernoulli(params_.fileCopyProb))
        survivors.push_back(copyOf(survivors.back()));
    }
    std::sort(survivors.begin(), survivors.end(),
              [](const FileState& a, const FileState& b) {
                return a.id < b.id;
              });
    files = std::move(survivors);
  }

  FslGenParams params_;
  Rng rng_;
  ZipfTable hotZipf_;
  ZipfTable superZipf_;
  std::vector<ChunkRecord> superChunks_;
  std::vector<std::vector<ChunkRecord>> hotPool_;
  std::vector<std::vector<ChunkRecord>> templates_;
  std::vector<double> templateAdoptProb_;
  std::vector<std::vector<FileState>> users_;
  uint64_t nextFileId_ = 1;
};

}  // namespace

Dataset generateFslDataset(const FslGenParams& params) {
  FDD_CHECK(params.users > 0 && params.backups > 0);
  return FslWorld(params).generate();
}

}  // namespace freqdedup
