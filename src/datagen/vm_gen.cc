#include "datagen/vm_gen.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace freqdedup {

namespace {

class VmWorld {
 public:
  explicit VmWorld(const VmGenParams& params)
      : params_(params),
        rng_(params.seed),
        hotZipf_(params.hotPoolSize, params.hotZipfAlpha) {
    hotPool_.reserve(params_.hotPoolSize);
    for (size_t i = 0; i < params_.hotPoolSize; ++i) {
      std::vector<Fp> motif(std::clamp<size_t>(
          static_cast<size_t>(1.0 + rng_.lognormal(params_.motifLenMu,
                                                   params_.motifLenSigma)),
          1, params_.motifMaxLen));
      for (auto& fp : motif) fp = rng_.next();
      hotPool_.push_back(std::move(motif));
    }
  }

  Dataset generate() {
    Dataset dataset;
    dataset.name = "vm-like";

    // The shared base image all students clone.
    std::vector<Fp> base = freshContent(params_.baseImageChunks);

    std::vector<std::vector<Fp>> images(static_cast<size_t>(params_.users),
                                        base);
    for (auto& image : images) diverge(image, params_.initialDivergence);

    for (int week = 1; week <= params_.weeks; ++week) {
      if (week > 1) evolveWeek(images, week);
      BackupTrace backup;
      backup.label = "week " + std::to_string(week);
      for (const auto& image : images) {
        for (const Fp fp : image)
          backup.records.push_back({fp, params_.chunkBytes});
      }
      dataset.backups.push_back(std::move(backup));
    }
    return dataset;
  }

 private:
  /// Fresh content of exactly `n` chunks: unique fingerprints interleaved
  /// with whole hot motifs.
  std::vector<Fp> freshContent(size_t n) {
    std::vector<Fp> out;
    out.reserve(n + params_.motifMaxLen);
    while (out.size() < n) {
      if (rng_.bernoulli(params_.hotChunkProb)) {
        // Motif *prefixes*: frequencies strictly decrease along a motif, so
        // the trace has a singular most-frequent chunk rather than a plateau
        // of exact ties (see fsl_gen.cc for the rationale).
        const auto& motif = hotPool_[hotZipf_.sample(rng_)];
        const double meanPrefix =
            std::max(1.0, 0.7 * static_cast<double>(motif.size()));
        const size_t len = std::clamp<size_t>(
            1 + rng_.geometric(1.0 / meanPrefix), 1, motif.size());
        out.insert(out.end(), motif.begin(),
                   motif.begin() + static_cast<ptrdiff_t>(len));
      } else {
        out.push_back(rng_.next());
      }
    }
    out.resize(n);
    return out;
  }

  /// Replaces a fraction of the image with fresh per-image content, in
  /// clustered regions.
  void diverge(std::vector<Fp>& image, double fraction) {
    const auto count = static_cast<size_t>(
        fraction * static_cast<double>(image.size()));
    const std::vector<size_t> positions =
        clusteredPositions(count, image.size());
    const std::vector<Fp> content = freshContent(positions.size());
    for (size_t i = 0; i < positions.size(); ++i)
      image[positions[i]] = content[i];
  }

  /// Picks clustered regions totalling ~`count` positions within [0, limit).
  std::vector<size_t> clusteredPositions(size_t count, size_t limit) {
    std::vector<size_t> positions;
    positions.reserve(count);
    while (positions.size() < count) {
      const size_t start = rng_.pickIndex(limit);
      const size_t len = std::min<size_t>(
          1 + rng_.geometric(1.0 / params_.meanRegionChunks),
          count - positions.size());
      for (size_t k = 0; k < len; ++k)
        positions.push_back((start + k) % limit);
    }
    return positions;
  }

  void evolveWeek(std::vector<std::vector<Fp>>& images, int week) {
    const bool heavy =
        week >= params_.heavyWeekFirst + 1 && week <= params_.heavyWeekLast + 1;
    const double modFrac = heavy ? params_.heavyModFrac : params_.lightModFrac;
    const size_t baseLimit = params_.baseImageChunks;

    // Course-wide shared update: same positions, same new content for all.
    const auto sharedCount = static_cast<size_t>(
        params_.sharedUpdateFrac * modFrac * static_cast<double>(baseLimit));
    const std::vector<size_t> sharedPositions =
        clusteredPositions(sharedCount, baseLimit);
    const std::vector<Fp> sharedContent =
        freshContent(sharedPositions.size());
    for (auto& image : images) {
      for (size_t i = 0; i < sharedPositions.size(); ++i)
        image[sharedPositions[i]] = sharedContent[i];
    }

    // Student-specific edits: distinct positions and content per user.
    const auto personalCount = static_cast<size_t>(
        (1.0 - params_.sharedUpdateFrac) * modFrac *
        static_cast<double>(baseLimit));
    for (auto& image : images) {
      const std::vector<size_t> positions =
          clusteredPositions(personalCount, baseLimit);
      const std::vector<Fp> content = freshContent(positions.size());
      for (size_t i = 0; i < positions.size(); ++i)
        image[positions[i]] = content[i];
    }

    // Weekly image growth (downloads, build artifacts): mostly shared
    // course data, placed at the tail of every image.
    const auto growth = static_cast<size_t>(
        params_.newDataFrac * static_cast<double>(baseLimit));
    const std::vector<Fp> sharedTail = freshContent(growth);
    for (auto& image : images) {
      for (const Fp fp : sharedTail) {
        if (rng_.bernoulli(params_.sharedUpdateFrac)) {
          image.push_back(fp);
        } else {
          image.push_back(rng_.next());
        }
      }
    }
  }

  VmGenParams params_;
  Rng rng_;
  ZipfTable hotZipf_;
  std::vector<std::vector<Fp>> hotPool_;
};

}  // namespace

Dataset generateVmDataset(const VmGenParams& params) {
  FDD_CHECK(params.users > 0 && params.weeks > 0);
  FDD_CHECK(params.heavyWeekFirst <= params.heavyWeekLast);
  return VmWorld(params).generate();
}

}  // namespace freqdedup
