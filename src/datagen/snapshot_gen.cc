#include "datagen/snapshot_gen.h"

#include <algorithm>

#include "common/check.h"

namespace freqdedup {

namespace {

ByteVec randomBytes(Rng& rng, size_t n) {
  ByteVec bytes(n);
  size_t i = 0;
  while (i + 8 <= n) {
    const uint64_t word = rng.next();
    for (size_t j = 0; j < 8; ++j)
      bytes[i + j] = static_cast<uint8_t>(word >> (8 * j));
    i += 8;
  }
  for (uint64_t word = rng.next(); i < n; ++i, word >>= 8)
    bytes[i] = static_cast<uint8_t>(word);
  return bytes;
}

}  // namespace

size_t mutateSnapshot(FileCorpus& corpus, const SnapshotGenParams& params,
                      Rng& rng, int snapshotIndex) {
  size_t modified = 0;
  for (auto& [name, content] : corpus) {
    if (!rng.bernoulli(params.fileModifyProb) || content.empty()) continue;
    ++modified;
    // Modify contentModFrac of the file in one clustered region (changes to
    // backups "often appear in few clustered regions", Section 1).
    const auto len = std::max<size_t>(
        1, static_cast<size_t>(params.contentModFrac *
                               static_cast<double>(content.size())));
    const size_t start = rng.pickIndex(content.size());
    const ByteVec patch = randomBytes(rng, std::min(len, content.size()));
    for (size_t k = 0; k < patch.size(); ++k)
      content[(start + k) % content.size()] = patch[k];
  }

  // Add new data as fresh files.
  uint64_t added = 0;
  int serial = 0;
  while (added < params.newBytesPerSnapshot) {
    const uint64_t size =
        std::min<uint64_t>(params.newFileBytes,
                           params.newBytesPerSnapshot - added);
    char name[48];
    snprintf(name, sizeof(name), "new%02d_%04d.dat", snapshotIndex, serial++);
    corpus.emplace(name, randomBytes(rng, static_cast<size_t>(size)));
    added += size;
  }
  return modified;
}

BackupTrace chunkSnapshot(const FileCorpus& corpus, const Chunker& chunker,
                          const std::string& label, int fpBits) {
  BackupTrace backup;
  backup.label = label;
  for (const auto& [name, content] : corpus) {
    const std::vector<ChunkSpan> spans = chunker.split(content);
    for (const ChunkSpan& span : spans) {
      const ByteView bytes = chunkBytes(content, span);
      backup.records.push_back({fpOfContent(bytes, fpBits), span.size});
    }
  }
  return backup;
}

Dataset generateSyntheticDataset(const CorpusParams& corpusParams,
                                 const SnapshotGenParams& params,
                                 const Chunker& chunker,
                                 FileCorpus* keepFinalSnapshot) {
  FDD_CHECK(params.snapshots >= 1);
  Dataset dataset;
  dataset.name = "synthetic";

  FileCorpus corpus = generateCorpus(corpusParams);
  dataset.backups.push_back(chunkSnapshot(corpus, chunker, "snapshot 0"));

  Rng rng(params.seed);
  for (int s = 1; s <= params.snapshots; ++s) {
    mutateSnapshot(corpus, params, rng, s);
    dataset.backups.push_back(
        chunkSnapshot(corpus, chunker, "snapshot " + std::to_string(s)));
  }
  if (keepFinalSnapshot != nullptr) *keepFinalSnapshot = std::move(corpus);
  return dataset;
}

}  // namespace freqdedup
