// Synthetic content corpus with realistic duplication structure.
//
// Substitutes for the paper's Ubuntu 14.04 initial snapshot (Section 5.1):
// a tree of files whose bytes are spliced from a pool of shared source
// blocks, so that content-defined chunking finds genuine intra- and
// inter-file duplicates — the property the synthetic dataset's ~90 % storage
// saving depends on.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"

namespace freqdedup {

/// File name -> content, ordered by name (deterministic walk order — files
/// are concatenated in this order when a snapshot is chunked into a backup
/// stream).
using FileCorpus = std::map<std::string, ByteVec>;

struct CorpusParams {
  uint64_t seed = 11;
  int fileCount = 520;
  uint64_t targetBytes = 96ULL * 1024 * 1024;

  // Source-block pool: files are built by splicing these shared blocks.
  size_t poolBlocks = 240;
  uint32_t poolBlockMin = 8 * 1024;
  uint32_t poolBlockMax = 96 * 1024;
  /// Probability that a spliced block is fresh random bytes instead of a
  /// pool block (unique content).
  double freshBlockProb = 0.35;
  /// Probability that a pool block is lightly mutated when spliced (models
  /// near-duplicate files).
  double mutateBlockProb = 0.20;
  /// Zipf exponent for pool-block reuse: popular blocks recur far more than
  /// unpopular ones, giving the skewed, rank-stable frequency distribution
  /// real images have (Figure 1).
  double poolZipfAlpha = 1.1;
};

/// Generates the initial snapshot.
FileCorpus generateCorpus(const CorpusParams& params = {});

/// Total content bytes of a corpus.
uint64_t corpusBytes(const FileCorpus& corpus);

}  // namespace freqdedup
