#include "datagen/file_corpus.h"

#include <algorithm>

#include "common/check.h"

namespace freqdedup {

namespace {

ByteVec randomBytes(Rng& rng, size_t n) {
  ByteVec bytes(n);
  size_t i = 0;
  while (i + 8 <= n) {
    const uint64_t word = rng.next();
    for (size_t j = 0; j < 8; ++j)
      bytes[i + j] = static_cast<uint8_t>(word >> (8 * j));
    i += 8;
  }
  for (uint64_t word = rng.next(); i < n; ++i, word >>= 8)
    bytes[i] = static_cast<uint8_t>(word);
  return bytes;
}

}  // namespace

FileCorpus generateCorpus(const CorpusParams& params) {
  FDD_CHECK(params.fileCount > 0 && params.poolBlocks > 0);
  Rng rng(params.seed);
  const ZipfTable poolZipf(params.poolBlocks, params.poolZipfAlpha);

  std::vector<ByteVec> pool;
  pool.reserve(params.poolBlocks);
  for (size_t i = 0; i < params.poolBlocks; ++i) {
    const size_t size = static_cast<size_t>(
        rng.uniformInt(params.poolBlockMin, params.poolBlockMax));
    pool.push_back(randomBytes(rng, size));
  }

  const uint64_t bytesPerFile =
      params.targetBytes / static_cast<uint64_t>(params.fileCount);

  FileCorpus corpus;
  for (int f = 0; f < params.fileCount; ++f) {
    // Heavy-tailed file sizes around the mean.
    const double scale = std::min(8.0, rng.lognormal(0.0, 0.8));
    const auto target = static_cast<uint64_t>(
        scale * static_cast<double>(bytesPerFile));
    ByteVec content;
    content.reserve(target + params.poolBlockMax);
    while (content.size() < target) {
      if (rng.bernoulli(params.freshBlockProb)) {
        const size_t size = static_cast<size_t>(
            rng.uniformInt(params.poolBlockMin, params.poolBlockMax));
        const ByteVec fresh = randomBytes(rng, size);
        appendBytes(content, fresh);
      } else {
        ByteVec block = pool[poolZipf.sample(rng)];
        // Half of the reuses splice only a prefix of the block: chunk
        // frequencies then strictly decrease along the block, so the trace
        // has a singular, rank-stable most-frequent chunk rather than a
        // plateau of exact ties (cf. the motif prefixes in fsl_gen.cc).
        if (rng.bernoulli(0.5) && block.size() > params.poolBlockMin) {
          block.resize(static_cast<size_t>(rng.uniformInt(
              params.poolBlockMin / 2, block.size())));
        }
        if (rng.bernoulli(params.mutateBlockProb)) {
          // Point mutation: overwrite a short random run.
          const size_t at = rng.pickIndex(block.size());
          const size_t len =
              std::min<size_t>(block.size() - at,
                               static_cast<size_t>(rng.uniformInt(16, 512)));
          const ByteVec patch = randomBytes(rng, len);
          std::copy(patch.begin(), patch.end(),
                    block.begin() + static_cast<ptrdiff_t>(at));
        }
        appendBytes(content, block);
      }
    }
    char name[32];
    snprintf(name, sizeof(name), "file%05d.dat", f);
    corpus.emplace(name, std::move(content));
  }
  return corpus;
}

uint64_t corpusBytes(const FileCorpus& corpus) {
  uint64_t total = 0;
  for (const auto& [name, content] : corpus) total += content.size();
  return total;
}

}  // namespace freqdedup
