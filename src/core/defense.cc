#include "core/defense.h"

#include <deque>

#include "common/check.h"
#include "common/hash.h"

namespace freqdedup {

namespace {

Fp cipherFpMle(Fp plainFp, int fpBits) {
  ByteVec msg = toBytes("mle");
  putU64(msg, plainFp);
  return fpFromDigest(sha256(msg), fpBits);
}

Fp cipherFpMinHash(Fp minFp, Fp plainFp, int fpBits) {
  // Section 7.1: concatenate the segment's minimum fingerprint with the chunk
  // fingerprint, hash, and truncate to the trace's fingerprint width.
  ByteVec msg = toBytes("mh");
  putU64(msg, minFp);
  putU64(msg, plainFp);
  return fpFromDigest(sha256(msg), fpBits);
}

}  // namespace

EncryptedTrace mleEncryptTrace(std::span<const ChunkRecord> plain,
                               int fpBits) {
  EncryptedTrace out;
  out.records.reserve(plain.size());
  out.truth.reserve(plain.size());
  std::unordered_map<Fp, Fp, FpHash> cache;
  cache.reserve(plain.size());
  for (const ChunkRecord& r : plain) {
    auto [it, inserted] = cache.try_emplace(r.fp, 0);
    if (inserted) it->second = cipherFpMle(r.fp, fpBits);
    out.records.push_back({it->second, r.size});
    out.truth.emplace(it->second, r.fp);
  }
  return out;
}

std::vector<ChunkRecord> scrambleTrace(std::span<const ChunkRecord> records,
                                       const SegmentParams& params,
                                       Rng& rng) {
  const std::vector<Segment> segments = segmentRecords(records, params);
  std::vector<ChunkRecord> out;
  out.reserve(records.size());
  std::deque<ChunkRecord> scrambled;
  for (const Segment& seg : segments) {
    scrambled.clear();
    for (size_t i = seg.begin; i < seg.end; ++i) {
      // Algorithm 5, lines 7-12: odd random number -> front, else back.
      if (rng.next() & 1) {
        scrambled.push_front(records[i]);
      } else {
        scrambled.push_back(records[i]);
      }
    }
    out.insert(out.end(), scrambled.begin(), scrambled.end());
  }
  FDD_CHECK(out.size() == records.size());
  return out;
}

EncryptedTrace minHashEncryptTrace(std::span<const ChunkRecord> plain,
                                   const DefenseConfig& config) {
  // Segmentation is computed on the original order; scrambling permutes only
  // within segments, so the segment boundaries and minima are unchanged
  // (Section 6.2: "to be compatible with MinHash encryption, scrambling
  // works on a per-segment basis").
  const std::vector<Segment> segments =
      segmentRecords(plain, config.segment);
  Rng rng(config.scrambleSeed);

  EncryptedTrace out;
  out.records.reserve(plain.size());
  out.truth.reserve(plain.size());
  std::deque<size_t> order;
  for (const Segment& seg : segments) {
    const Fp minFp = segmentMinFingerprint(plain, seg);
    order.clear();
    for (size_t i = seg.begin; i < seg.end; ++i) {
      if (config.scramble && (rng.next() & 1)) {
        order.push_front(i);
      } else {
        order.push_back(i);
      }
    }
    for (const size_t i : order) {
      const Fp cfp = cipherFpMinHash(minFp, plain[i].fp, config.fpBits);
      out.records.push_back({cfp, plain[i].size});
      out.truth.emplace(cfp, plain[i].fp);
    }
  }
  FDD_CHECK(out.records.size() == plain.size());
  return out;
}

}  // namespace freqdedup
