#include "core/defense.h"

#include <deque>
#include <limits>

#include "analysis/stream_index.h"
#include "common/check.h"
#include "common/hash.h"
#include "pipeline/thread_pool.h"

namespace freqdedup {

namespace {

Fp cipherFpMle(Fp plainFp, int fpBits) {
  ByteVec msg = toBytes("mle");
  putU64(msg, plainFp);
  return fpFromDigest(sha256(msg), fpBits);
}

Fp cipherFpMinHash(Fp minFp, Fp plainFp, int fpBits) {
  // Section 7.1: concatenate the segment's minimum fingerprint with the chunk
  // fingerprint, hash, and truncate to the trace's fingerprint width.
  ByteVec msg = toBytes("mh");
  putU64(msg, minFp);
  putU64(msg, plainFp);
  return fpFromDigest(sha256(msg), fpBits);
}

}  // namespace

EncryptedTrace mleEncryptTrace(std::span<const ChunkRecord> plain, int fpBits,
                               uint32_t threads) {
  // MLE is one-to-one per unique plaintext fingerprint: intern the stream,
  // derive each unique chunk's ciphertext fingerprint in parallel, then emit
  // the stream through the dense column.
  const analysis::ChunkStreamIndex stream =
      analysis::ChunkStreamIndex::build(plain);
  std::vector<Fp> cipherFps(stream.uniqueCount());
  parallelFor(threads, cipherFps.size(), [&](size_t begin, size_t end) {
    for (size_t id = begin; id < end; ++id) {
      cipherFps[id] =
          cipherFpMle(stream.fpOf(static_cast<analysis::ChunkId>(id)), fpBits);
    }
  });

  EncryptedTrace out;
  out.records.reserve(plain.size());
  out.truth.reserve(stream.uniqueCount());
  for (size_t i = 0; i < plain.size(); ++i) {
    const analysis::ChunkId id = stream.ids()[i];
    out.records.push_back({cipherFps[id], plain[i].size});
    out.truth.emplace(cipherFps[id], plain[i].fp);
  }
  return out;
}

std::vector<ChunkRecord> scrambleTrace(std::span<const ChunkRecord> records,
                                       const SegmentParams& params,
                                       Rng& rng) {
  const std::vector<Segment> segments = segmentRecords(records, params);
  std::vector<ChunkRecord> out;
  out.reserve(records.size());
  std::deque<ChunkRecord> scrambled;
  for (const Segment& seg : segments) {
    scrambled.clear();
    for (size_t i = seg.begin; i < seg.end; ++i) {
      // Algorithm 5, lines 7-12: odd random number -> front, else back.
      if (rng.next() & 1) {
        scrambled.push_front(records[i]);
      } else {
        scrambled.push_back(records[i]);
      }
    }
    out.insert(out.end(), scrambled.begin(), scrambled.end());
  }
  FDD_CHECK(out.size() == records.size());
  return out;
}

EncryptedTrace minHashEncryptTrace(std::span<const ChunkRecord> plain,
                                   const DefenseConfig& config) {
  // Record indices are stored as uint32 (same bound the stream interner
  // enforces).
  FDD_CHECK(plain.size() < std::numeric_limits<uint32_t>::max());
  // Segmentation is computed on the original order; scrambling permutes only
  // within segments, so the segment boundaries and minima are unchanged
  // (Section 6.2: "to be compatible with MinHash encryption, scrambling
  // works on a per-segment basis").
  const std::vector<Segment> segments = segmentRecords(plain, config.segment);
  Rng rng(config.scrambleSeed);

  // Serial pass: fix the output order (the scramble RNG stream is strictly
  // sequential) and each output position's segment minimum.
  std::vector<uint32_t> source;  // output position -> plain record index
  std::vector<Fp> minFpAt;       // output position -> segment minimum
  source.reserve(plain.size());
  minFpAt.reserve(plain.size());
  std::deque<size_t> order;
  for (const Segment& seg : segments) {
    const Fp minFp = segmentMinFingerprint(plain, seg);
    order.clear();
    for (size_t i = seg.begin; i < seg.end; ++i) {
      if (config.scramble && (rng.next() & 1)) {
        order.push_front(i);
      } else {
        order.push_back(i);
      }
    }
    for (const size_t i : order) {
      source.push_back(static_cast<uint32_t>(i));
      minFpAt.push_back(minFp);
    }
  }
  FDD_CHECK(source.size() == plain.size());

  // Parallel pass: the per-chunk SHA-256 re-keying, which dominates the
  // cost, is independent per output position.
  std::vector<Fp> cipherFps(plain.size());
  parallelFor(config.threads, plain.size(), [&](size_t begin, size_t end) {
    for (size_t pos = begin; pos < end; ++pos) {
      cipherFps[pos] = cipherFpMinHash(minFpAt[pos], plain[source[pos]].fp,
                                       config.fpBits);
    }
  });

  EncryptedTrace out;
  out.records.reserve(plain.size());
  out.truth.reserve(plain.size());
  for (size_t pos = 0; pos < plain.size(); ++pos) {
    const ChunkRecord& src = plain[source[pos]];
    out.records.push_back({cipherFps[pos], src.size});
    out.truth.emplace(cipherFps[pos], src.fp);
  }
  return out;
}

}  // namespace freqdedup
