// The COUNT step shared by all attacks (Algorithms 1 and 2).
//
// From a logical chunk stream, builds:
//   freq  — F_X : fingerprint -> occurrence count;
//   left  — L_X : fingerprint -> (left-neighbor fingerprint -> co-occurrence
//           count), i.e. how often each chunk directly precedes X;
//   right — R_X : the symmetric right-neighbor table;
//   sizeOf — fingerprint -> chunk size (the advanced attack's size channel).
#pragma once

#include <span>
#include <unordered_map>

#include "common/fingerprint.h"
#include "trace/backup_trace.h"

namespace freqdedup {

using CoOccurrenceMap = std::unordered_map<Fp, uint64_t, FpHash>;
using NeighborTable = std::unordered_map<Fp, CoOccurrenceMap, FpHash>;

struct FrequencyTables {
  FrequencyMap freq;
  NeighborTable left;
  NeighborTable right;
  SizeMap sizeOf;
};

/// Builds the frequency tables of a stream. Neighbor tables are only filled
/// when `withNeighbors` is set (the basic attack does not need them).
FrequencyTables countChunks(std::span<const ChunkRecord> records,
                            bool withNeighbors);

}  // namespace freqdedup
