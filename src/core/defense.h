// Trace-level encryption and the paper's defenses (Section 6), simulated on
// fingerprints exactly as the paper's own evaluation does (Section 7.1),
// since the FSL/VM traces carry no chunk content:
//
//  - MLE baseline: deterministic one-to-one fingerprint mapping
//    (cipher fp = trunc(SHA-256("mle" || plain fp))), preserving sizes.
//  - MinHash encryption: segment the stream, compute each segment's minimum
//    fingerprint h, and map every chunk to
//    cipher fp = trunc(SHA-256("mh" || h || plain fp)). Identical plaintext
//    chunks under the same h deduplicate; under different h they do not.
//  - Scrambling: Algorithm 5's per-segment front/back shuffle, applied to the
//    plaintext order before encryption.
//
// Every encryption records the ground-truth cipher->plain mapping, which the
// evaluation uses to score attacks (the simulator knows the truth; the
// simulated adversary of course does not).
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "chunking/segmenter.h"
#include "common/rng.h"
#include "trace/backup_trace.h"

namespace freqdedup {

struct EncryptedTrace {
  std::vector<ChunkRecord> records;          // ciphertext stream
  std::unordered_map<Fp, Fp, FpHash> truth;  // cipher fp -> plain fp
};

/// Deterministic MLE at trace level: one-to-one fingerprint mapping. The
/// per-unique-chunk fingerprint derivations run on `threads` workers; the
/// output is identical at every thread count.
EncryptedTrace mleEncryptTrace(std::span<const ChunkRecord> plain,
                               int fpBits = kFslFpBits,
                               uint32_t threads = 1);

struct DefenseConfig {
  SegmentParams segment;
  bool scramble = false;  // apply Algorithm 5 within each segment
  uint64_t scrambleSeed = 1;
  int fpBits = kFslFpBits;
  /// Worker threads for the per-chunk fingerprint derivations (the
  /// segmentation and scramble order stay serial so the RNG stream — and
  /// hence the output — is identical at every thread count).
  uint32_t threads = 1;
};

/// MinHash encryption (optionally preceded by per-segment scrambling).
EncryptedTrace minHashEncryptTrace(std::span<const ChunkRecord> plain,
                                   const DefenseConfig& config);

/// Scrambling alone (Algorithm 5): returns the reordered stream.
std::vector<ChunkRecord> scrambleTrace(std::span<const ChunkRecord> records,
                                       const SegmentParams& params, Rng& rng);

}  // namespace freqdedup
