// FREQ-ANALYSIS: rank-pairing frequency analysis.
//
// Sorts ciphertext-side and plaintext-side frequency maps and pairs entries
// of equal rank (Algorithm 1/2). The advanced variant (Algorithm 3) first
// classifies chunks by size in AES blocks (ceil(size/16)) and rank-pairs
// within each size class, exploiting that deterministic block-cipher
// encryption preserves the block count of a chunk.
//
// Ties (equal frequency) are broken by ascending fingerprint. This makes
// every attack deterministic and mirrors the practical reality the paper
// notes in Section 4.1: tie order is arbitrary with respect to the true
// ciphertext-plaintext correspondence, so ties genuinely hurt accuracy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/freq_tables.h"

namespace freqdedup {

/// An inferred (ciphertext fingerprint, plaintext fingerprint) pair.
struct InferredPair {
  Fp cipher = 0;
  Fp plain = 0;

  friend bool operator==(const InferredPair&, const InferredPair&) = default;
};

/// Frequency-map entries sorted by (count desc, fingerprint asc).
std::vector<std::pair<Fp, uint64_t>> sortByFrequency(
    const CoOccurrenceMap& freq);

/// Pairs the top-x ciphertext and plaintext chunks rank by rank
/// (x capped at min{|cipher|, |plain|}).
std::vector<InferredPair> freqAnalysis(const CoOccurrenceMap& cipherFreq,
                                       const CoOccurrenceMap& plainFreq,
                                       size_t x);

/// Size-aware frequency analysis (Algorithm 3): rank-pairs the top-x chunks
/// within each size class of ceil(size/16) blocks. Chunks whose size is
/// unknown to the given size map are skipped.
std::vector<InferredPair> freqAnalysisSized(const CoOccurrenceMap& cipherFreq,
                                            const CoOccurrenceMap& plainFreq,
                                            size_t x,
                                            const SizeMap& cipherSizes,
                                            const SizeMap& plainSizes);

/// Size class of a chunk: number of 16-byte AES blocks (Algorithm 3 line 18).
[[nodiscard]] constexpr uint32_t sizeClassOf(uint32_t sizeBytes) {
  return (sizeBytes + 15) / 16;
}

}  // namespace freqdedup
