// FREQ-ANALYSIS: rank-pairing frequency analysis.
//
// Sorts ciphertext-side and plaintext-side frequency maps and pairs entries
// of equal rank (Algorithm 1/2). The advanced variant (Algorithm 3) first
// classifies chunks by size in AES blocks (ceil(size/16), see
// common/fingerprint.h) and rank-pairs within each size class, exploiting
// that deterministic block-cipher encryption preserves the block count of a
// chunk.
//
// Ties (equal frequency) are broken by ascending fingerprint. This makes
// every attack deterministic and mirrors the practical reality the paper
// notes in Section 4.1: tie order is arbitrary with respect to the true
// ciphertext-plaintext correspondence, so ties genuinely hurt accuracy.
//
// These map-based helpers remain the generic, small-input API (and the
// reference the analysis engine's golden tests check against); bulk attack
// runs go through src/analysis/, which does the same rank pairing over
// columnar per-stream indexes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fingerprint.h"

namespace freqdedup {

/// An inferred (ciphertext fingerprint, plaintext fingerprint) pair.
struct InferredPair {
  Fp cipher = 0;
  Fp plain = 0;

  friend bool operator==(const InferredPair&, const InferredPair&) = default;
};

/// The top-k frequency-map entries by (count desc, fingerprint asc), via a
/// partial sort (k is capped at the map size; k >= size is a full sort).
std::vector<std::pair<Fp, uint64_t>> topByFrequency(const FrequencyMap& freq,
                                                    size_t k);

/// All frequency-map entries sorted by (count desc, fingerprint asc).
std::vector<std::pair<Fp, uint64_t>> sortByFrequency(const FrequencyMap& freq);

/// Pairs the top-x ciphertext and plaintext chunks rank by rank
/// (x capped at min{|cipher|, |plain|}).
std::vector<InferredPair> freqAnalysis(const FrequencyMap& cipherFreq,
                                       const FrequencyMap& plainFreq,
                                       size_t x);

/// Size-aware frequency analysis (Algorithm 3): rank-pairs the top-x chunks
/// within each size class of ceil(size/16) blocks. Chunks whose size is
/// unknown to the given size map are skipped.
std::vector<InferredPair> freqAnalysisSized(const FrequencyMap& cipherFreq,
                                            const FrequencyMap& plainFreq,
                                            size_t x,
                                            const SizeMap& cipherSizes,
                                            const SizeMap& plainSizes);

}  // namespace freqdedup
