#include "core/storage_saving.h"

namespace freqdedup {

SavingPoint CumulativeDedup::addBackup(std::span<const ChunkRecord> records,
                                       std::string label) {
  for (const ChunkRecord& r : records) {
    logicalBytes_ += r.size;
    if (seen_.emplace(r.fp, 0).second) physicalBytes_ += r.size;
  }
  SavingPoint point;
  point.label = std::move(label);
  point.logicalBytes = logicalBytes_;
  point.physicalBytes = physicalBytes_;
  if (logicalBytes_ > 0 && physicalBytes_ > 0) {
    point.savingPct = 100.0 * (1.0 - static_cast<double>(physicalBytes_) /
                                         static_cast<double>(logicalBytes_));
    point.dedupRatio = static_cast<double>(logicalBytes_) /
                       static_cast<double>(physicalBytes_);
  }
  return point;
}

}  // namespace freqdedup
