#include "core/freq_analysis.h"

#include <algorithm>

namespace freqdedup {

std::vector<std::pair<Fp, uint64_t>> sortByFrequency(
    const CoOccurrenceMap& freq) {
  std::vector<std::pair<Fp, uint64_t>> sorted(freq.begin(), freq.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return sorted;
}

std::vector<InferredPair> freqAnalysis(const CoOccurrenceMap& cipherFreq,
                                       const CoOccurrenceMap& plainFreq,
                                       size_t x) {
  const auto cipherSorted = sortByFrequency(cipherFreq);
  const auto plainSorted = sortByFrequency(plainFreq);
  const size_t n = std::min({x, cipherSorted.size(), plainSorted.size()});
  std::vector<InferredPair> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pairs.push_back({cipherSorted[i].first, plainSorted[i].first});
  }
  return pairs;
}

namespace {

/// Buckets a frequency map by size class (Algorithm 3, CLASSIFY).
std::unordered_map<uint32_t, CoOccurrenceMap> classifyBySize(
    const CoOccurrenceMap& freq, const SizeMap& sizes) {
  std::unordered_map<uint32_t, CoOccurrenceMap> buckets;
  for (const auto& [fp, count] : freq) {
    const auto it = sizes.find(fp);
    if (it == sizes.end()) continue;  // size unknown: cannot classify
    buckets[sizeClassOf(it->second)].emplace(fp, count);
  }
  return buckets;
}

}  // namespace

std::vector<InferredPair> freqAnalysisSized(const CoOccurrenceMap& cipherFreq,
                                            const CoOccurrenceMap& plainFreq,
                                            size_t x,
                                            const SizeMap& cipherSizes,
                                            const SizeMap& plainSizes) {
  const auto cipherBuckets = classifyBySize(cipherFreq, cipherSizes);
  const auto plainBuckets = classifyBySize(plainFreq, plainSizes);

  // Deterministic result order: iterate size classes in ascending order.
  std::vector<uint32_t> classes;
  classes.reserve(cipherBuckets.size());
  for (const auto& [sizeClass, bucket] : cipherBuckets) {
    if (plainBuckets.contains(sizeClass)) classes.push_back(sizeClass);
  }
  std::sort(classes.begin(), classes.end());

  std::vector<InferredPair> pairs;
  for (const uint32_t sizeClass : classes) {
    const auto classPairs = freqAnalysis(cipherBuckets.at(sizeClass),
                                         plainBuckets.at(sizeClass), x);
    pairs.insert(pairs.end(), classPairs.begin(), classPairs.end());
  }
  return pairs;
}

}  // namespace freqdedup
