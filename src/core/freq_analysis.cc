#include "core/freq_analysis.h"

#include <algorithm>
#include <unordered_map>

namespace freqdedup {

namespace {

constexpr auto kByFrequency = [](const std::pair<Fp, uint64_t>& a,
                                 const std::pair<Fp, uint64_t>& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
};

}  // namespace

std::vector<std::pair<Fp, uint64_t>> topByFrequency(const FrequencyMap& freq,
                                                    size_t k) {
  std::vector<std::pair<Fp, uint64_t>> entries(freq.begin(), freq.end());
  if (k < entries.size()) {
    // Only the top-k prefix is consumed: a partial sort with the same
    // (count desc, fp asc) tie-break yields it in O(n log k).
    std::partial_sort(entries.begin(),
                      entries.begin() + static_cast<ptrdiff_t>(k),
                      entries.end(), kByFrequency);
    entries.resize(k);
  } else {
    std::sort(entries.begin(), entries.end(), kByFrequency);
  }
  return entries;
}

std::vector<std::pair<Fp, uint64_t>> sortByFrequency(
    const FrequencyMap& freq) {
  return topByFrequency(freq, freq.size());
}

std::vector<InferredPair> freqAnalysis(const FrequencyMap& cipherFreq,
                                       const FrequencyMap& plainFreq,
                                       size_t x) {
  const size_t n = std::min({x, cipherFreq.size(), plainFreq.size()});
  const auto cipherTop = topByFrequency(cipherFreq, n);
  const auto plainTop = topByFrequency(plainFreq, n);
  std::vector<InferredPair> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pairs.push_back({cipherTop[i].first, plainTop[i].first});
  }
  return pairs;
}

namespace {

/// Buckets a frequency map by size class (Algorithm 3, CLASSIFY).
std::unordered_map<uint32_t, FrequencyMap> classifyBySize(
    const FrequencyMap& freq, const SizeMap& sizes) {
  std::unordered_map<uint32_t, FrequencyMap> buckets;
  for (const auto& [fp, count] : freq) {
    const auto it = sizes.find(fp);
    if (it == sizes.end()) continue;  // size unknown: cannot classify
    buckets[sizeClassOf(it->second)].emplace(fp, count);
  }
  return buckets;
}

}  // namespace

std::vector<InferredPair> freqAnalysisSized(const FrequencyMap& cipherFreq,
                                            const FrequencyMap& plainFreq,
                                            size_t x,
                                            const SizeMap& cipherSizes,
                                            const SizeMap& plainSizes) {
  const auto cipherBuckets = classifyBySize(cipherFreq, cipherSizes);
  const auto plainBuckets = classifyBySize(plainFreq, plainSizes);

  // Deterministic result order: iterate size classes in ascending order.
  std::vector<uint32_t> classes;
  classes.reserve(cipherBuckets.size());
  for (const auto& [sizeClass, bucket] : cipherBuckets) {
    if (plainBuckets.contains(sizeClass)) classes.push_back(sizeClass);
  }
  std::sort(classes.begin(), classes.end());

  std::vector<InferredPair> pairs;
  for (const uint32_t sizeClass : classes) {
    const auto classPairs = freqAnalysis(cipherBuckets.at(sizeClass),
                                         plainBuckets.at(sizeClass), x);
    pairs.insert(pairs.end(), classPairs.begin(), classPairs.end());
  }
  return pairs;
}

}  // namespace freqdedup
