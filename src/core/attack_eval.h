// Attack scoring and leakage simulation.
//
// The severity metric is the paper's inference rate (Section 4): the number
// of unique ciphertext chunks of the target backup whose original plaintext
// chunk is inferred correctly, over the total number of unique ciphertext
// chunks in the target backup.
#pragma once

#include <span>
#include <vector>

#include "core/attacks.h"
#include "core/defense.h"

namespace freqdedup {

/// Unique ciphertext fingerprints of a stream, in first-appearance order.
std::vector<Fp> uniqueFingerprints(std::span<const ChunkRecord> records);

/// Inference rate of an attack result against the encrypted target backup.
/// Returns a fraction in [0, 1].
double inferenceRate(const AttackResult& result, const EncryptedTrace& target);

/// Number of correctly inferred unique ciphertext chunks.
uint64_t correctInferences(const AttackResult& result,
                           const EncryptedTrace& target);

/// Samples leaked ciphertext-plaintext pairs for known-plaintext mode: a
/// uniform sample of unique ciphertext chunks of the target, paired with
/// their true plaintext chunks. `leakageRate` is the ratio of leaked pairs to
/// unique ciphertext chunks in the target (Section 5.3.3).
std::vector<InferredPair> sampleLeakedPairs(const EncryptedTrace& target,
                                            double leakageRate, Rng& rng);

}  // namespace freqdedup
