// The paper's three inference attacks (Section 4).
//
// Given the ciphertext chunk stream C of the latest backup and the plaintext
// chunk stream M of a prior backup (the auxiliary information), each attack
// outputs a set T of inferred ciphertext-plaintext fingerprint pairs.
//
//  - Basic attack (Algorithm 1): global rank-pairing frequency analysis.
//  - Locality-based attack (Algorithm 2): starts from an inferred seed set G
//    (top-u frequency pairs in ciphertext-only mode, or leaked pairs in
//    known-plaintext mode) and repeatedly applies frequency analysis to the
//    left/right neighbor tables of each inferred pair, exploiting chunk
//    locality; G is a FIFO queue bounded by w, and each neighbor analysis
//    returns the top-v pairs.
//  - Advanced locality-based attack (Algorithm 3): same control flow with
//    every frequency-analysis call replaced by the size-classified variant.
//
// These entry points are thin wrappers over analysis::AttackEngine
// (src/analysis/), which runs the COUNT and neighbor-table steps over
// columnar, sharded per-stream indexes. Results are bit-identical at every
// thread count: all tie-breaking is by (count desc, fingerprint asc) and the
// walk order is fixed by the algorithm, never by scheduling.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/freq_analysis.h"

namespace freqdedup {

enum class AttackMode {
  kCiphertextOnly,  // adversary knows C and M only
  kKnownPlaintext   // adversary additionally knows some leaked (C, M) pairs
};

struct AttackConfig {
  size_t u = 1;        // seed pairs from frequency analysis (ciphertext-only)
  size_t v = 15;       // pairs returned per neighbor analysis
  size_t w = 200'000;  // maximum size of the inferred FIFO set G
  AttackMode mode = AttackMode::kCiphertextOnly;
  bool sizeAware = false;  // true = advanced locality-based attack
  /// Worker threads for the COUNT / neighbor-index build phases. The
  /// inference result does not depend on this value.
  uint32_t threads = 1;
  /// Memory budget (bytes) for the index builds' intermediate state; when an
  /// in-memory build would exceed it, the build spills partitioned
  /// intermediates under `spillDir` (empty = system temp directory) and
  /// streams them back shard by shard. 0 = unlimited. The inference result
  /// does not depend on the budget either — only the build pipeline does.
  uint64_t memBudgetBytes = 0;
  std::string spillDir;
  /// Known-plaintext mode: leaked pairs about the target backup. Pairs whose
  /// ciphertext chunk is absent from C or whose plaintext chunk is absent
  /// from M are ignored (Algorithm 2, line 7).
  std::vector<InferredPair> leakedPairs;
};

struct AttackResult {
  /// T: inferred mapping, ciphertext fingerprint -> plaintext fingerprint.
  std::unordered_map<Fp, Fp, FpHash> inferred;
  /// Number of (C, M) pairs dequeued from G during the walk.
  uint64_t processedPairs = 0;
};

/// Algorithm 1. `sizeAware` applies the Algorithm-3 frequency analysis to the
/// global frequency maps (size-classified basic attack).
AttackResult basicAttack(std::span<const ChunkRecord> cipher,
                         std::span<const ChunkRecord> plain,
                         bool sizeAware = false, uint32_t threads = 1);

/// Algorithms 2 and 3 (select with config.sizeAware).
AttackResult localityAttack(std::span<const ChunkRecord> cipher,
                            std::span<const ChunkRecord> plain,
                            const AttackConfig& config);

}  // namespace freqdedup
