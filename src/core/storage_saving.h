// Cumulative storage-saving accounting (Section 7.3, Figure 11).
//
// Backups are added in creation order; after each backup the storage saving
// is the percentage of the cumulative logical bytes removed by deduplication
// (metadata excluded, as in the paper).
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fingerprint.h"

namespace freqdedup {

struct SavingPoint {
  std::string label;
  uint64_t logicalBytes = 0;   // cumulative
  uint64_t physicalBytes = 0;  // cumulative after deduplication
  double savingPct = 0.0;      // 100 * (1 - physical/logical)
  double dedupRatio = 0.0;     // logical / physical
};

/// Streaming cumulative deduplication accounting.
class CumulativeDedup {
 public:
  /// Adds one backup's chunk stream; returns the updated cumulative point.
  SavingPoint addBackup(std::span<const ChunkRecord> records,
                        std::string label = {});

  [[nodiscard]] uint64_t logicalBytes() const { return logicalBytes_; }
  [[nodiscard]] uint64_t physicalBytes() const { return physicalBytes_; }
  [[nodiscard]] size_t uniqueChunks() const { return seen_.size(); }

 private:
  std::unordered_map<Fp, char, FpHash> seen_;
  uint64_t logicalBytes_ = 0;
  uint64_t physicalBytes_ = 0;
};

}  // namespace freqdedup
