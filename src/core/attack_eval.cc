#include "core/attack_eval.h"

#include <cmath>

#include "analysis/stream_index.h"
#include "common/check.h"

namespace freqdedup {

std::vector<Fp> uniqueFingerprints(std::span<const ChunkRecord> records) {
  // The interner's fingerprint column is exactly the unique fingerprints in
  // first-appearance order.
  analysis::FpInterner interner;
  interner.reserve(records.size());
  for (const ChunkRecord& r : records) interner.intern(r.fp);
  return interner.fps();
}

uint64_t correctInferences(const AttackResult& result,
                           const EncryptedTrace& target) {
  uint64_t correct = 0;
  for (const Fp cfp : uniqueFingerprints(target.records)) {
    const auto inferredIt = result.inferred.find(cfp);
    if (inferredIt == result.inferred.end()) continue;
    const auto truthIt = target.truth.find(cfp);
    FDD_CHECK_MSG(truthIt != target.truth.end(),
                  "target trace lacks ground truth for its own chunk");
    if (inferredIt->second == truthIt->second) ++correct;
  }
  return correct;
}

double inferenceRate(const AttackResult& result,
                     const EncryptedTrace& target) {
  const std::vector<Fp> unique = uniqueFingerprints(target.records);
  if (unique.empty()) return 0.0;
  return static_cast<double>(correctInferences(result, target)) /
         static_cast<double>(unique.size());
}

std::vector<InferredPair> sampleLeakedPairs(const EncryptedTrace& target,
                                            double leakageRate, Rng& rng) {
  FDD_CHECK(leakageRate >= 0.0 && leakageRate <= 1.0);
  std::vector<Fp> unique = uniqueFingerprints(target.records);
  const auto count = static_cast<size_t>(
      std::llround(leakageRate * static_cast<double>(unique.size())));
  rng.shuffle(std::span<Fp>(unique));
  std::vector<InferredPair> leaked;
  leaked.reserve(count);
  for (size_t i = 0; i < count && i < unique.size(); ++i) {
    const auto truthIt = target.truth.find(unique[i]);
    FDD_CHECK(truthIt != target.truth.end());
    leaked.push_back({unique[i], truthIt->second});
  }
  return leaked;
}

}  // namespace freqdedup
