#include "core/freq_tables.h"

namespace freqdedup {

FrequencyTables countChunks(std::span<const ChunkRecord> records,
                            bool withNeighbors) {
  FrequencyTables tables;
  tables.freq.reserve(records.size());
  tables.sizeOf.reserve(records.size());
  if (withNeighbors) {
    tables.left.reserve(records.size());
    tables.right.reserve(records.size());
  }
  for (size_t i = 0; i < records.size(); ++i) {
    const ChunkRecord& r = records[i];
    ++tables.freq[r.fp];
    tables.sizeOf.emplace(r.fp, r.size);
    if (!withNeighbors) continue;
    if (i > 0) ++tables.left[r.fp][records[i - 1].fp];
    if (i + 1 < records.size()) ++tables.right[r.fp][records[i + 1].fp];
  }
  return tables;
}

}  // namespace freqdedup
