#include "core/attacks.h"

#include <deque>

#include "common/check.h"

namespace freqdedup {

AttackResult basicAttack(std::span<const ChunkRecord> cipher,
                         std::span<const ChunkRecord> plain, bool sizeAware) {
  const FrequencyTables fc = countChunks(cipher, /*withNeighbors=*/false);
  const FrequencyTables fm = countChunks(plain, /*withNeighbors=*/false);
  const size_t all = std::max(fc.freq.size(), fm.freq.size());
  const std::vector<InferredPair> pairs =
      sizeAware ? freqAnalysisSized(fc.freq, fm.freq, all, fc.sizeOf,
                                    fm.sizeOf)
                : freqAnalysis(fc.freq, fm.freq, all);
  AttackResult result;
  result.inferred.reserve(pairs.size());
  for (const InferredPair& p : pairs) result.inferred.emplace(p.cipher, p.plain);
  return result;
}

namespace {

/// Runs one neighbor-table frequency analysis (plain or size-classified).
std::vector<InferredPair> neighborAnalysis(const NeighborTable& cipherTable,
                                           const NeighborTable& plainTable,
                                           Fp cipherFp, Fp plainFp, size_t v,
                                           bool sizeAware,
                                           const SizeMap& cipherSizes,
                                           const SizeMap& plainSizes) {
  const auto cIt = cipherTable.find(cipherFp);
  const auto mIt = plainTable.find(plainFp);
  if (cIt == cipherTable.end() || mIt == plainTable.end()) return {};
  if (sizeAware) {
    return freqAnalysisSized(cIt->second, mIt->second, v, cipherSizes,
                             plainSizes);
  }
  return freqAnalysis(cIt->second, mIt->second, v);
}

}  // namespace

AttackResult localityAttack(std::span<const ChunkRecord> cipher,
                            std::span<const ChunkRecord> plain,
                            const AttackConfig& config) {
  FDD_CHECK_MSG(config.mode == AttackMode::kKnownPlaintext ||
                    config.u >= 1,
                "ciphertext-only mode needs u >= 1");
  const FrequencyTables fc = countChunks(cipher, /*withNeighbors=*/true);
  const FrequencyTables fm = countChunks(plain, /*withNeighbors=*/true);

  AttackResult result;
  std::deque<InferredPair> g;  // the inferred FIFO set G

  // Initialization of G (Algorithm 2, lines 4-8).
  if (config.mode == AttackMode::kCiphertextOnly) {
    const std::vector<InferredPair> seeds =
        config.sizeAware ? freqAnalysisSized(fc.freq, fm.freq, config.u,
                                             fc.sizeOf, fm.sizeOf)
                         : freqAnalysis(fc.freq, fm.freq, config.u);
    for (const InferredPair& p : seeds) g.push_back(p);
  } else {
    for (const InferredPair& p : config.leakedPairs) {
      if (!fc.freq.contains(p.cipher)) continue;
      // Every leaked pair about C counts as known/inferred (Section 5.3.3:
      // the reported inference rate includes the leaked chunks), but only
      // pairs whose plaintext chunk also appears in M can seed the walk
      // (Algorithm 2, line 7).
      result.inferred.emplace(p.cipher, p.plain);
      if (fm.freq.contains(p.plain)) g.push_back(p);
    }
  }
  for (const InferredPair& p : g) result.inferred.emplace(p.cipher, p.plain);

  // Main loop (Algorithm 2, lines 10-22).
  while (!g.empty()) {
    const InferredPair current = g.front();
    g.pop_front();
    ++result.processedPairs;

    for (const bool leftSide : {true, false}) {
      const NeighborTable& cipherTable = leftSide ? fc.left : fc.right;
      const NeighborTable& plainTable = leftSide ? fm.left : fm.right;
      const std::vector<InferredPair> found = neighborAnalysis(
          cipherTable, plainTable, current.cipher, current.plain, config.v,
          config.sizeAware, fc.sizeOf, fm.sizeOf);
      for (const InferredPair& p : found) {
        // Only accept the first inference for any ciphertext chunk.
        if (result.inferred.emplace(p.cipher, p.plain).second) {
          if (g.size() <= config.w) g.push_back(p);
        }
      }
    }
  }
  return result;
}

}  // namespace freqdedup
