#include "core/attacks.h"

#include "analysis/attack_engine.h"

namespace freqdedup {

AttackResult basicAttack(std::span<const ChunkRecord> cipher,
                         std::span<const ChunkRecord> plain, bool sizeAware,
                         uint32_t threads) {
  analysis::AttackEngine engine =
      analysis::AttackEngine::fromRecords(cipher, plain, {.threads = threads});
  return engine.basicAttack(sizeAware);
}

AttackResult localityAttack(std::span<const ChunkRecord> cipher,
                            std::span<const ChunkRecord> plain,
                            const AttackConfig& config) {
  analysis::AnalysisOptions options;
  options.threads = config.threads;
  options.budget.memoryBytes = config.memBudgetBytes;
  options.budget.spillDir = config.spillDir;
  analysis::AttackEngine engine =
      analysis::AttackEngine::fromRecords(cipher, plain, options);
  return engine.localityAttack(config);
}

}  // namespace freqdedup
