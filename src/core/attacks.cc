#include "core/attacks.h"

#include "analysis/attack_engine.h"

namespace freqdedup {

AttackResult basicAttack(std::span<const ChunkRecord> cipher,
                         std::span<const ChunkRecord> plain, bool sizeAware,
                         uint32_t threads) {
  analysis::AttackEngine engine =
      analysis::AttackEngine::fromRecords(cipher, plain, {threads});
  return engine.basicAttack(sizeAware);
}

AttackResult localityAttack(std::span<const ChunkRecord> cipher,
                            std::span<const ChunkRecord> plain,
                            const AttackConfig& config) {
  analysis::AttackEngine engine =
      analysis::AttackEngine::fromRecords(cipher, plain, {config.threads});
  return engine.localityAttack(config);
}

}  // namespace freqdedup
