// AES-256-CTR wrappers over OpenSSL EVP.
//
// Encrypted deduplication requires *deterministic* symmetric encryption:
// identical (key, plaintext) pairs must produce identical ciphertexts so
// duplicates remain detectable (Section 2.2). CTR mode with an IV derived
// deterministically from the key gives exactly that, and preserves plaintext
// length — which is what the advanced locality-based attack exploits (the
// ciphertext has the same number of 16-byte blocks as the plaintext).
//
// Security note: reusing a (key, IV) pair is only safe here because an MLE
// key is itself a deterministic function of the chunk content, so a repeated
// (key, IV) pair always encrypts the *same* plaintext.
#pragma once

#include <array>

#include "common/bytes.h"

namespace freqdedup {

inline constexpr size_t kAesKeyBytes = 32;
inline constexpr size_t kAesIvBytes = 16;
inline constexpr size_t kAesBlockBytes = 16;

using AesKey = std::array<uint8_t, kAesKeyBytes>;
using AesIv = std::array<uint8_t, kAesIvBytes>;

/// AES-256-CTR encryption. Output length equals input length.
ByteVec aesCtrEncrypt(const AesKey& key, const AesIv& iv, ByteView plaintext);

/// AES-256-CTR decryption (CTR is an involution, provided for readability).
ByteVec aesCtrDecrypt(const AesKey& key, const AesIv& iv, ByteView ciphertext);

/// Derives the deterministic per-key IV: first 16 bytes of SHA-256(key).
AesIv deterministicIv(const AesKey& key);

}  // namespace freqdedup
