// Content-level MinHash encryption (Algorithm 4).
//
// Partitions a sequence of plaintext chunks into segments and encrypts every
// chunk of a segment under one key derived from the segment's minimum
// fingerprint. By Broder's theorem, highly similar segments across backups
// share the same minimum fingerprint with high probability, so most
// duplicates still deduplicate — while a small fraction of identical chunks
// land in segments with different minima and encrypt differently, disturbing
// the ciphertext frequency ranking that frequency analysis relies on.
//
// This is the real-bytes implementation used by the content pipeline; the
// trace-level simulation used for the FSL/VM figure reproduction lives in
// src/core/defense.h.
#pragma once

#include <vector>

#include "chunking/segmenter.h"
#include "crypto/key_manager.h"
#include "crypto/mle.h"

namespace freqdedup {

struct MinHashEncryptedChunk {
  ByteVec ciphertext;
  AesKey key{};       // per-chunk key material for the key recipe
  Fp plainFp = 0;     // fingerprint of the plaintext chunk
  Fp cipherFp = 0;    // fingerprint of the ciphertext chunk (dedup identity)
  size_t segmentIndex = 0;
};

struct MinHashEncryptionResult {
  std::vector<MinHashEncryptedChunk> chunks;
  std::vector<Segment> segments;
};

class MinHashEncryptor {
 public:
  /// The key manager must outlive the encryptor.
  MinHashEncryptor(const KeyManager& keyManager,
                   SegmentParams segmentParams = {});

  /// Encrypts a logical sequence of plaintext chunks. Chunk order is
  /// preserved (scrambling, when used, is applied by the caller first).
  [[nodiscard]] MinHashEncryptionResult encrypt(
      const std::vector<ByteVec>& plainChunks) const;

  /// Decrypts one chunk given its key recipe entry.
  [[nodiscard]] static ByteVec decrypt(const MinHashEncryptedChunk& chunk);

  [[nodiscard]] const SegmentParams& segmentParams() const {
    return segmentParams_;
  }

 private:
  const KeyManager* keyManager_;
  SegmentParams segmentParams_;
};

}  // namespace freqdedup
