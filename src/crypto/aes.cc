#include "crypto/aes.h"

#include <openssl/evp.h>

#include <memory>
#include <stdexcept>

#include "common/hash.h"

namespace freqdedup {

namespace {

struct CipherCtxDeleter {
  void operator()(EVP_CIPHER_CTX* ctx) const { EVP_CIPHER_CTX_free(ctx); }
};

ByteVec ctrApply(const AesKey& key, const AesIv& iv, ByteView input) {
  std::unique_ptr<EVP_CIPHER_CTX, CipherCtxDeleter> ctx(EVP_CIPHER_CTX_new());
  if (!ctx) throw std::runtime_error("EVP_CIPHER_CTX_new failed");
  if (EVP_EncryptInit_ex(ctx.get(), EVP_aes_256_ctr(), nullptr, key.data(),
                         iv.data()) != 1)
    throw std::runtime_error("EVP_EncryptInit_ex failed");
  ByteVec out(input.size());
  int outLen = 0;
  if (!input.empty() &&
      EVP_EncryptUpdate(ctx.get(), out.data(), &outLen, input.data(),
                        static_cast<int>(input.size())) != 1)
    throw std::runtime_error("EVP_EncryptUpdate failed");
  int finalLen = 0;
  if (EVP_EncryptFinal_ex(ctx.get(), out.data() + outLen, &finalLen) != 1)
    throw std::runtime_error("EVP_EncryptFinal_ex failed");
  out.resize(static_cast<size_t>(outLen + finalLen));
  return out;
}

}  // namespace

ByteVec aesCtrEncrypt(const AesKey& key, const AesIv& iv, ByteView plaintext) {
  return ctrApply(key, iv, plaintext);
}

ByteVec aesCtrDecrypt(const AesKey& key, const AesIv& iv, ByteView ciphertext) {
  return ctrApply(key, iv, ciphertext);
}

AesIv deterministicIv(const AesKey& key) {
  const Digest d = sha256(ByteView(key.data(), key.size()));
  AesIv iv{};
  std::copy(d.bytes.begin(), d.bytes.begin() + kAesIvBytes, iv.begin());
  return iv;
}

}  // namespace freqdedup
